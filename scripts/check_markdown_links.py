#!/usr/bin/env python3
"""Fails when an intra-repo markdown link points at a missing file.

Scans every *.md in the repository (skipping build directories) for
inline links/images `[text](target)`. External targets (scheme or
mailto) and pure in-page anchors (#...) are ignored; everything else is
resolved relative to the containing file (or the repo root for
/-prefixed targets) and must exist. Keeps docs/ from rotting silently —
wired into the CI `docs` job.
"""

import os
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git", "build", "build-rel", "build-asan", "build-tsan",
             "build-debug", ".claude"}


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def markdown_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path: str, root: str):
    errors = []
    with open(path, encoding="utf-8") as f:
        text = f.read()
    # Strip fenced code blocks: their bracket/paren sequences are code,
    # not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK.finditer(text):
        target = match.group(1)
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # http:, mailto:
            continue
        if target.startswith("#"):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        if target.startswith("/"):
            resolved = os.path.join(root, target.lstrip("/"))
        else:
            resolved = os.path.join(os.path.dirname(path), target)
        if not os.path.exists(resolved):
            rel = os.path.relpath(path, root)
            errors.append(f"{rel}: broken link -> {match.group(1)}")
    return errors


def main() -> int:
    root = repo_root()
    errors = []
    count = 0
    for path in markdown_files(root):
        count += 1
        errors.extend(check_file(path, root))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {count} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
