//===- datasets/Benchmark.h - A program to optimize -------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Benchmark is one program plus the metadata needed to run it: the URI
/// ("benchmark://cbench-v1/qsort"), the IR text, whether it is runnable
/// (per the paper, only cBench and csmith support the runtime target), and
/// the inputs for the entry point.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_DATASETS_BENCHMARK_H
#define COMPILER_GYM_DATASETS_BENCHMARK_H

#include "util/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace compiler_gym {
namespace datasets {

/// One program plus run configuration.
struct Benchmark {
  std::string Uri;
  std::string IrText;
  bool Runnable = false;
  std::vector<int64_t> Inputs; ///< Arguments for @main.
};

/// Splits "benchmark://cbench-v1/qsort" into dataset
/// ("benchmark://cbench-v1") and benchmark name ("qsort"). The benchmark
/// part may be empty (dataset-only URI).
Status parseBenchmarkUri(const std::string &Uri, std::string &DatasetOut,
                         std::string &NameOut);

} // namespace datasets
} // namespace compiler_gym

#endif // COMPILER_GYM_DATASETS_BENCHMARK_H
