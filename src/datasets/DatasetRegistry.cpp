//===- datasets/DatasetRegistry.cpp ---------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "datasets/DatasetRegistry.h"

#include "datasets/CuratedSuites.h"
#include "datasets/StressGenerator.h"
#include "util/Hash.h"

using namespace compiler_gym;
using namespace compiler_gym::datasets;

namespace {

/// Builds a generator-backed dataset with the style preset for its name.
std::unique_ptr<Dataset> makeStyled(const std::string &Name,
                                    const std::string &Description,
                                    bool Runnable, uint64_t Count,
                                    int SizeScaleJitter = 0) {
  ProgramStyle Style = styleForDataset(Name);
  return std::make_unique<GeneratedDataset>(
      Name, Description, Runnable, Count,
      [Style, Name, SizeScaleJitter](uint64_t Seed,
                                     const std::string &ModuleName) {
        ProgramStyle S = Style;
        if (SizeScaleJitter > 0)
          S.SizeScale +=
              static_cast<int>(hashCombine(fnv1a(Name), Seed) %
                               static_cast<uint64_t>(SizeScaleJitter));
        return generateProgram(hashCombine(fnv1a(Name), Seed), S, ModuleName);
      });
}

/// Problem sizes for the loop_tool environment: benchmarks are pointwise
/// additions of the named element count (no IR payload).
class LoopToolDataset : public Dataset {
public:
  LoopToolDataset()
      : Dataset("benchmark://loop_tool-v0",
                "Pointwise CUDA loop-nest tuning problems",
                /*Runnable=*/true) {}

  uint64_t size() const override { return Sizes.size(); }

  std::vector<std::string> benchmarkNames(size_t Limit) const override {
    std::vector<std::string> Out;
    for (size_t I = 0; I < Sizes.size() && I < Limit; ++I)
      Out.push_back(std::to_string(Sizes[I]));
    return Out;
  }

  StatusOr<Benchmark> benchmark(const std::string &BmName) const override {
    char *End = nullptr;
    int64_t N = std::strtoll(BmName.c_str(), &End, 10);
    if (BmName.empty() || End != BmName.c_str() + BmName.size() || N <= 0)
      return notFound("no benchmark '" + BmName + "' in " + name());
    Benchmark Out;
    Out.Uri = name() + "/" + BmName;
    Out.Runnable = true;
    Out.Inputs = {N};
    return Out;
  }

private:
  std::vector<int64_t> Sizes = {1 << 10, 1 << 14, 1 << 17, 1 << 20,
                                1 << 22, 1 << 24};
};

/// cBench members, with per-program size/shape tuned so that step-time
/// spread matches the paper's Fig 6 (crc32 tiny ... ghostscript huge).
std::vector<CuratedDataset::Member> cbenchMembers() {
  auto mk = [](const std::string &Name, int SizeScale,
               double LoopDensity, double FloatFrac,
               bool Recursive = false) {
    CuratedDataset::Member M;
    M.Name = Name;
    M.Seed = fnv1a("cbench/" + Name);
    M.Style = styleForDataset("benchmark://mibench-v1"); // Embedded-ish base.
    M.Style.SizeScale = SizeScale;
    M.Style.LoopDensity = LoopDensity;
    M.Style.FloatFrac = FloatFrac;
    M.Style.Recursive = Recursive;
    M.Style.MaxFunctions = 3 + SizeScale / 2;
    return M;
  };
  return {
      mk("adpcm", 2, 0.6, 0.0),        mk("bitcount", 1, 0.7, 0.0),
      mk("blowfish", 4, 0.5, 0.0),     mk("bzip2", 10, 0.5, 0.0),
      mk("crc32", 1, 0.8, 0.0),        mk("dijkstra", 2, 0.7, 0.0),
      mk("ghostscript", 90, 0.35, 0.2), mk("gsm", 6, 0.55, 0.1),
      mk("ispell", 6, 0.4, 0.0),       mk("jpeg-c", 16, 0.55, 0.25),
      mk("jpeg-d", 14, 0.55, 0.25),    mk("lame", 20, 0.5, 0.5),
      mk("mad", 8, 0.5, 0.35),         mk("patricia", 2, 0.4, 0.0, true),
      mk("qsort", 2, 0.5, 0.0, true),  mk("rijndael", 5, 0.6, 0.0),
      mk("sha", 2, 0.7, 0.0),          mk("stringsearch", 1, 0.6, 0.0),
      mk("susan", 9, 0.6, 0.15),       mk("tiff2bw", 7, 0.6, 0.1),
      mk("tiff2rgba", 7, 0.6, 0.1),    mk("tiffdither", 8, 0.6, 0.1),
      mk("tiffmedian", 8, 0.6, 0.1),
  };
}

std::vector<CuratedDataset::Member> chstoneMembers() {
  auto mk = [](const std::string &Name, int SizeScale) {
    CuratedDataset::Member M;
    M.Name = Name;
    M.Seed = fnv1a("chstone/" + Name);
    M.Style = styleForDataset("benchmark://chstone-v0");
    M.Style.SizeScale = SizeScale;
    return M;
  };
  return {mk("adpcm", 2),  mk("aes", 4),    mk("blowfish", 3),
          mk("dfadd", 2),  mk("dfdiv", 2),  mk("dfmul", 2),
          mk("dfsin", 3),  mk("gsm", 3),    mk("jpeg", 6),
          mk("mips", 4),   mk("motion", 2), mk("sha", 2)};
}

} // namespace

const DatasetRegistry &DatasetRegistry::instance() {
  static DatasetRegistry Registry;
  return Registry;
}

DatasetRegistry::DatasetRegistry() {
  // Counts follow Table I of the paper.
  Datasets.push_back(makeStyled("benchmark://anghabench-v1",
                                "Compilable C functions mined from GitHub",
                                /*Runnable=*/false, 1041333));
  Datasets.push_back(makeStyled("benchmark://blas-v0",
                                "Basic linear algebra kernels",
                                /*Runnable=*/false, 300));
  Datasets.push_back(std::make_unique<CuratedDataset>(
      "benchmark://cbench-v1", "Collective Benchmark runnable suite",
      /*Runnable=*/true, cbenchMembers()));
  Datasets.push_back(std::make_unique<CuratedDataset>(
      "benchmark://chstone-v0", "High-level synthesis kernels",
      /*Runnable=*/false, chstoneMembers()));
  Datasets.push_back(makeStyled("benchmark://clgen-v0",
                                "Synthesized OpenCL-style kernels",
                                /*Runnable=*/false, 996));
  Datasets.push_back(makeStyled("benchmark://csmith-v0",
                                "Random C program generator",
                                /*Runnable=*/true, 1ull << 32,
                                /*SizeScaleJitter=*/3));
  Datasets.push_back(makeStyled("benchmark://github-v0",
                                "Open-source C programs",
                                /*Runnable=*/false, 49738));
  Datasets.push_back(makeStyled("benchmark://linux-v0",
                                "Linux kernel objects",
                                /*Runnable=*/false, 13894));
  Datasets.push_back(std::make_unique<GeneratedDataset>(
      "benchmark://llvm-stress-v0", "Random IR stress generator",
      /*Runnable=*/false, 1ull << 32,
      [](uint64_t Seed, const std::string &ModuleName) {
        return generateStressProgram(Seed, 1 + static_cast<int>(Seed % 4),
                                     ModuleName);
      }));
  Datasets.push_back(makeStyled("benchmark://mibench-v1",
                                "Embedded benchmark suite",
                                /*Runnable=*/false, 40));
  Datasets.push_back(makeStyled("benchmark://npb-v0",
                                "NAS parallel benchmarks",
                                /*Runnable=*/false, 122));
  Datasets.push_back(makeStyled("benchmark://opencv-v0",
                                "Computer vision kernels",
                                /*Runnable=*/false, 442));
  Datasets.push_back(makeStyled("benchmark://poj104-v1",
                                "Programming-contest solutions",
                                /*Runnable=*/false, 49816));
  Datasets.push_back(makeStyled("benchmark://tensorflow-v0",
                                "Machine-learning framework objects",
                                /*Runnable=*/false, 1985));
  Datasets.push_back(std::make_unique<LoopToolDataset>());
}

const Dataset *DatasetRegistry::dataset(const std::string &Uri) const {
  for (const auto &D : Datasets)
    if (D->name() == Uri)
      return D.get();
  return nullptr;
}

StatusOr<Benchmark> DatasetRegistry::resolve(const std::string &Uri) const {
  std::string DatasetUri, BmName;
  CG_RETURN_IF_ERROR(parseBenchmarkUri(Uri, DatasetUri, BmName));
  const Dataset *D = dataset(DatasetUri);
  if (!D)
    return notFound("unknown dataset '" + DatasetUri + "'");
  if (BmName.empty()) {
    std::vector<std::string> Names = D->benchmarkNames(1);
    if (Names.empty())
      return notFound("dataset '" + DatasetUri + "' is empty");
    BmName = Names.front();
  }
  return D->benchmark(BmName);
}
