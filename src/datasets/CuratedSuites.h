//===- datasets/CuratedSuites.h - Table I dataset definitions ---*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete Dataset implementations: generator-backed suites with
/// per-dataset program styles, and the curated named suites (cbench-v1,
/// chstone-v0) whose members have individually tuned size/shape parameters
/// (crc32 is tiny, ghostscript is huge — Fig 6 depends on this spread).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_DATASETS_CURATEDSUITES_H
#define COMPILER_GYM_DATASETS_CURATEDSUITES_H

#include "datasets/CsmithGenerator.h"
#include "datasets/Dataset.h"

#include <functional>
#include <memory>

namespace compiler_gym {
namespace datasets {

/// A dataset whose benchmarks are seeds of a program generator.
class GeneratedDataset : public Dataset {
public:
  using GenerateFn = std::function<std::unique_ptr<ir::Module>(
      uint64_t Seed, const std::string &ModuleName)>;

  GeneratedDataset(std::string Name, std::string Description, bool Runnable,
                   uint64_t Count, GenerateFn Generate)
      : Dataset(std::move(Name), std::move(Description), Runnable),
        Count(Count), Generate(std::move(Generate)) {}

  uint64_t size() const override { return Count; }
  std::vector<std::string> benchmarkNames(size_t Limit) const override;
  StatusOr<Benchmark> benchmark(const std::string &BmName) const override;

private:
  uint64_t Count;
  GenerateFn Generate;
};

/// A dataset with a fixed list of named members, each with its own
/// generator configuration.
class CuratedDataset : public Dataset {
public:
  struct Member {
    std::string Name;
    uint64_t Seed;
    ProgramStyle Style;
  };

  CuratedDataset(std::string Name, std::string Description, bool Runnable,
                 std::vector<Member> Members)
      : Dataset(std::move(Name), std::move(Description), Runnable),
        Members(std::move(Members)) {}

  uint64_t size() const override { return Members.size(); }
  std::vector<std::string> benchmarkNames(size_t Limit) const override;
  StatusOr<Benchmark> benchmark(const std::string &BmName) const override;

private:
  std::vector<Member> Members;
};

/// The per-dataset style presets (exposed for tests and docs).
ProgramStyle styleForDataset(const std::string &DatasetName);

} // namespace datasets
} // namespace compiler_gym

#endif // COMPILER_GYM_DATASETS_CURATEDSUITES_H
