//===- datasets/Dataset.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "datasets/Dataset.h"

using namespace compiler_gym;
using namespace compiler_gym::datasets;

Dataset::~Dataset() = default;

StatusOr<Benchmark> Dataset::randomBenchmark(Rng &Gen) const {
  uint64_t N = size();
  if (N == 0)
    return notFound("dataset '" + name() + "' is empty");
  // Enumerating millions of names just to pick one would defeat the lazy
  // design; sample an index and fetch by position within a bounded window.
  uint64_t Index = Gen.bounded(N);
  std::vector<std::string> Names =
      benchmarkNames(static_cast<size_t>(std::min<uint64_t>(N, Index + 1)));
  if (Names.empty())
    return notFound("dataset '" + name() + "' yielded no names");
  return benchmark(Names[std::min<size_t>(Names.size() - 1,
                                          static_cast<size_t>(Index))]);
}
