//===- datasets/CuratedSuites.cpp -----------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "datasets/CuratedSuites.h"

#include "ir/Printer.h"
#include "util/Hash.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::datasets;

std::vector<std::string> GeneratedDataset::benchmarkNames(size_t Limit) const {
  size_t N = static_cast<size_t>(std::min<uint64_t>(Limit, size()));
  std::vector<std::string> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Out.push_back(std::to_string(I));
  return Out;
}

StatusOr<Benchmark> GeneratedDataset::benchmark(
    const std::string &BmName) const {
  char *End = nullptr;
  uint64_t Index = std::strtoull(BmName.c_str(), &End, 10);
  if (BmName.empty() || End != BmName.c_str() + BmName.size() ||
      Index >= size())
    return notFound("no benchmark '" + BmName + "' in " + name());
  std::unique_ptr<ir::Module> M = Generate(Index, BmName);
  Benchmark Out;
  Out.Uri = name() + "/" + BmName;
  Out.IrText = ir::printModule(*M);
  Out.Runnable = runnable();
  Out.Inputs = {static_cast<int64_t>(Index % 13) + 1};
  return Out;
}

std::vector<std::string> CuratedDataset::benchmarkNames(size_t Limit) const {
  std::vector<std::string> Out;
  for (size_t I = 0; I < Members.size() && I < Limit; ++I)
    Out.push_back(Members[I].Name);
  return Out;
}

StatusOr<Benchmark> CuratedDataset::benchmark(const std::string &BmName) const {
  auto It = std::find_if(Members.begin(), Members.end(),
                         [&](const Member &M) { return M.Name == BmName; });
  if (It == Members.end())
    return notFound("no benchmark '" + BmName + "' in " + name());
  std::unique_ptr<ir::Module> M =
      generateProgram(It->Seed, It->Style, It->Name);
  Benchmark Out;
  Out.Uri = name() + "/" + BmName;
  Out.IrText = ir::printModule(*M);
  Out.Runnable = runnable();
  Out.Inputs = {static_cast<int64_t>(fnv1a(BmName) % 11) + 1};
  return Out;
}

ProgramStyle datasets::styleForDataset(const std::string &DatasetName) {
  ProgramStyle S;
  if (DatasetName.find("csmith") != std::string::npos) {
    // Balanced synthetic C: the canonical training distribution.
    S.Segments = 5;
    S.LoopDensity = 0.4;
    S.BranchDensity = 0.3;
    S.CallDensity = 0.2;
    S.FloatFrac = 0.15;
  } else if (DatasetName.find("anghabench") != std::string::npos) {
    // Small single functions mined from C repos: little control flow.
    S.MinFunctions = 0;
    S.MaxFunctions = 1;
    S.Segments = 3;
    S.LoopDensity = 0.25;
    S.BranchDensity = 0.45;
    S.CallDensity = 0.05;
  } else if (DatasetName.find("blas") != std::string::npos) {
    // Dense float loop nests.
    S.FloatFrac = 0.7;
    S.LoopDensity = 0.8;
    S.MaxLoopDepth = 3;
    S.MaxLoopTrip = 24;
    S.BranchDensity = 0.05;
    S.MemDensity = 0.5;
    S.Segments = 3;
  } else if (DatasetName.find("npb") != std::string::npos) {
    // NAS parallel benchmarks: big float loop nests with branches.
    S.FloatFrac = 0.6;
    S.LoopDensity = 0.7;
    S.MaxLoopDepth = 3;
    S.MaxLoopTrip = 16;
    S.MemDensity = 0.45;
    S.Segments = 6;
    S.SizeScale = 2;
  } else if (DatasetName.find("chstone") != std::string::npos) {
    // Hardware-synthesis kernels: bit-twiddling heavy.
    S.FloatFrac = 0.02;
    S.LoopDensity = 0.5;
    S.MemDensity = 0.35;
    S.StmtsPerRun = 8;
    S.Segments = 6;
    S.SizeScale = 2;
  } else if (DatasetName.find("clgen") != std::string::npos) {
    // Short synthetic OpenCL-ish kernels.
    S.MinFunctions = 0;
    S.MaxFunctions = 1;
    S.Segments = 2;
    S.LoopDensity = 0.6;
    S.MaxLoopDepth = 1;
    S.MemDensity = 0.5;
    S.FloatFrac = 0.5;
  } else if (DatasetName.find("github") != std::string::npos) {
    // Many small functions, call-dense, branchy.
    S.MinFunctions = 3;
    S.MaxFunctions = 8;
    S.CallDensity = 0.35;
    S.BranchDensity = 0.45;
    S.LoopDensity = 0.2;
    S.Segments = 3;
  } else if (DatasetName.find("linux") != std::string::npos) {
    // Kernel code: branch mazes, integer only, moderate size.
    S.FloatFrac = 0.0;
    S.BranchDensity = 0.6;
    S.MaxIfDepth = 3;
    S.LoopDensity = 0.2;
    S.Segments = 5;
    S.SizeScale = 2;
  } else if (DatasetName.find("mibench") != std::string::npos) {
    // Embedded benchmarks: small, integer, loopy.
    S.FloatFrac = 0.05;
    S.LoopDensity = 0.55;
    S.Segments = 4;
  } else if (DatasetName.find("opencv") != std::string::npos) {
    // Image kernels: loop nests + float mixes, larger.
    S.FloatFrac = 0.4;
    S.LoopDensity = 0.65;
    S.MaxLoopDepth = 3;
    S.MemDensity = 0.5;
    S.Segments = 5;
    S.SizeScale = 3;
  } else if (DatasetName.find("poj104") != std::string::npos) {
    // Student solutions: small, branchy, recursive.
    S.Recursive = true;
    S.Segments = 3;
    S.BranchDensity = 0.4;
    S.LoopDensity = 0.35;
  } else if (DatasetName.find("tensorflow") != std::string::npos) {
    // Large flat arithmetic with deep call graphs.
    S.MinFunctions = 4;
    S.MaxFunctions = 10;
    S.CallDensity = 0.3;
    S.FloatFrac = 0.55;
    S.Segments = 6;
    S.SizeScale = 4;
    S.LoopDensity = 0.35;
  }
  return S;
}
