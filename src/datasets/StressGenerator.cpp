//===- datasets/StressGenerator.cpp ---------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "datasets/StressGenerator.h"

#include "ir/IRBuilder.h"
#include "util/Rng.h"

#include <array>

using namespace compiler_gym;
using namespace compiler_gym::datasets;
using namespace compiler_gym::ir;

namespace {

/// Pools of live values by type, grown as instructions are emitted.
struct ValuePools {
  std::vector<Value *> I64s, I32s, F64s, I1s;

  std::vector<Value *> &poolFor(Type Ty) {
    switch (Ty) {
    case Type::I32:
      return I32s;
    case Type::F64:
      return F64s;
    case Type::I1:
      return I1s;
    default:
      return I64s;
    }
  }
};

Value *pickOrConst(ValuePools &Pools, Module &M, Rng &Gen, Type Ty) {
  auto &Pool = Pools.poolFor(Ty);
  if (!Pool.empty() && !Gen.chance(0.2))
    return Pool[Gen.bounded(Pool.size())];
  if (Ty == Type::F64)
    return M.getConstFloat(Gen.uniform(-16.0, 16.0));
  return M.getConstInt(Ty, Gen.range(Ty == Type::I1 ? 0 : -64,
                                     Ty == Type::I1 ? 1 : 256));
}

void emitSoup(Module &M, IRBuilder &B, ValuePools &Pools, Rng &Gen,
              int Count) {
  for (int I = 0; I < Count; ++I) {
    switch (Gen.bounded(10)) {
    case 0: { // i32 arithmetic.
      static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                   Opcode::Xor, Opcode::And, Opcode::Or};
      Value *A = pickOrConst(Pools, M, Gen, Type::I32);
      Value *C = pickOrConst(Pools, M, Gen, Type::I32);
      Pools.I32s.push_back(
          B.createBinary(Ops[Gen.bounded(std::size(Ops))], A, C));
      break;
    }
    case 1:
    case 2:
    case 3: { // i64 arithmetic (the bulk).
      static const Opcode Ops[] = {Opcode::Add, Opcode::Sub,  Opcode::Mul,
                                   Opcode::Xor, Opcode::And,  Opcode::Or,
                                   Opcode::Shl, Opcode::LShr, Opcode::AShr};
      Opcode Op = Ops[Gen.bounded(std::size(Ops))];
      Value *A = pickOrConst(Pools, M, Gen, Type::I64);
      Value *C = (Op == Opcode::Shl || Op == Opcode::LShr ||
                  Op == Opcode::AShr)
                     ? M.getConstInt(Type::I64, Gen.range(0, 63))
                     : pickOrConst(Pools, M, Gen, Type::I64);
      Pools.I64s.push_back(B.createBinary(Op, A, C));
      break;
    }
    case 4: { // Floats.
      static const Opcode Ops[] = {Opcode::FAdd, Opcode::FSub, Opcode::FMul,
                                   Opcode::FDiv};
      Value *A = pickOrConst(Pools, M, Gen, Type::F64);
      Value *C = pickOrConst(Pools, M, Gen, Type::F64);
      Pools.F64s.push_back(
          B.createBinary(Ops[Gen.bounded(std::size(Ops))], A, C));
      break;
    }
    case 5: { // Comparisons.
      Value *A = pickOrConst(Pools, M, Gen, Type::I64);
      Value *C = pickOrConst(Pools, M, Gen, Type::I64);
      static const Pred Preds[] = {Pred::EQ, Pred::NE, Pred::LT,
                                   Pred::LE, Pred::GT, Pred::GE};
      Pools.I1s.push_back(
          B.createICmp(Preds[Gen.bounded(std::size(Preds))], A, C));
      break;
    }
    case 6: { // Casts: the stress signature.
      switch (Gen.bounded(4)) {
      case 0:
        Pools.I32s.push_back(B.createCast(
            Opcode::Trunc, pickOrConst(Pools, M, Gen, Type::I64),
            Type::I32));
        break;
      case 1:
        Pools.I64s.push_back(B.createCast(
            Opcode::SExt, pickOrConst(Pools, M, Gen, Type::I32), Type::I64));
        break;
      case 2:
        Pools.F64s.push_back(B.createCast(
            Opcode::SIToFP, pickOrConst(Pools, M, Gen, Type::I64),
            Type::F64));
        break;
      default:
        Pools.I64s.push_back(B.createCast(
            Opcode::FPToSI, pickOrConst(Pools, M, Gen, Type::F64),
            Type::I64));
        break;
      }
      break;
    }
    case 7: { // Selects.
      Value *Cond = pickOrConst(Pools, M, Gen, Type::I1);
      Value *A = pickOrConst(Pools, M, Gen, Type::I64);
      Value *C = pickOrConst(Pools, M, Gen, Type::I64);
      Pools.I64s.push_back(B.createSelect(Cond, A, C));
      break;
    }
    case 8: { // Bool algebra.
      Value *A = pickOrConst(Pools, M, Gen, Type::I1);
      Value *C = pickOrConst(Pools, M, Gen, Type::I1);
      static const Opcode Ops[] = {Opcode::And, Opcode::Or, Opcode::Xor};
      Pools.I1s.push_back(
          B.createBinary(Ops[Gen.bounded(std::size(Ops))], A, C));
      break;
    }
    default: { // i64 div/rem with safe constant divisors.
      Value *A = pickOrConst(Pools, M, Gen, Type::I64);
      Value *C = M.getConstInt(Type::I64, Gen.range(2, 17));
      Pools.I64s.push_back(B.createBinary(
          Gen.chance(0.5) ? Opcode::SDiv : Opcode::SRem, A, C));
      break;
    }
    }
  }
}

} // namespace

std::unique_ptr<Module>
datasets::generateStressProgram(uint64_t Seed, int SizeScale,
                                const std::string &Name) {
  Rng Gen(Seed ^ 0x57E55E5Full);
  auto M = std::make_unique<Module>(Name);
  Function *Main = M->createFunction("main", Type::I64);
  Argument *N = Main->addArgument(Type::I64, "n");

  // Forward-only CFG: a chain of diamonds, each full of instruction soup.
  int Diamonds = std::max(1, static_cast<int>(Gen.range(2, 4)) * SizeScale);
  int SoupPerBlock = 12;

  ValuePools Pools;
  Pools.I64s.push_back(N);

  BasicBlock *Cur = Main->createBlock("entry");
  IRBuilder B(Cur);
  emitSoup(*M, B, Pools, Gen, SoupPerBlock);

  for (int D = 0; D < Diamonds; ++D) {
    // Values defined in diamond arms are not added to pools (they would
    // not dominate downstream uses); only merge-phis escape.
    Value *Cond = pickOrConst(Pools, *M, Gen, Type::I1);
    BasicBlock *L = Main->createBlock("d" + std::to_string(D) + ".l");
    BasicBlock *R = Main->createBlock("d" + std::to_string(D) + ".r");
    BasicBlock *J = Main->createBlock("d" + std::to_string(D) + ".j");
    B.createCondBr(Cond, L, R);

    ValuePools ArmPools = Pools;
    B.setInsertPoint(L);
    size_t I64Mark = ArmPools.I64s.size();
    emitSoup(*M, B, ArmPools, Gen, SoupPerBlock / 2);
    Value *LOut = ArmPools.I64s.size() > I64Mark
                      ? ArmPools.I64s.back()
                      : pickOrConst(Pools, *M, Gen, Type::I64);
    B.createBr(J);

    ValuePools ArmPools2 = Pools;
    B.setInsertPoint(R);
    size_t I64Mark2 = ArmPools2.I64s.size();
    emitSoup(*M, B, ArmPools2, Gen, SoupPerBlock / 2);
    Value *ROut = ArmPools2.I64s.size() > I64Mark2
                      ? ArmPools2.I64s.back()
                      : pickOrConst(Pools, *M, Gen, Type::I64);
    B.createBr(J);

    B.setInsertPoint(J);
    Instruction *Phi = B.createPhi(Type::I64);
    Phi->addIncoming(LOut, L);
    Phi->addIncoming(ROut, R);
    Pools.I64s.push_back(Phi);
    emitSoup(*M, B, Pools, Gen, SoupPerBlock);
    Cur = J;
  }

  // Fold the live i64 pool into the return value.
  Value *Acc = M->getConstInt(Type::I64, 0);
  for (size_t I = 0; I < Pools.I64s.size(); I += 3)
    Acc = B.createBinary(Opcode::Xor, Acc, Pools.I64s[I]);
  B.createRet(Acc);
  return M;
}
