//===- datasets/Benchmark.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "datasets/Benchmark.h"

using namespace compiler_gym;
using namespace compiler_gym::datasets;

Status datasets::parseBenchmarkUri(const std::string &Uri,
                                   std::string &DatasetOut,
                                   std::string &NameOut) {
  const std::string Scheme = "benchmark://";
  if (Uri.rfind(Scheme, 0) != 0)
    return invalidArgument("benchmark URI must start with 'benchmark://': " +
                           Uri);
  size_t Slash = Uri.find('/', Scheme.size());
  if (Slash == std::string::npos) {
    DatasetOut = Uri;
    NameOut.clear();
    return Status::ok();
  }
  DatasetOut = Uri.substr(0, Slash);
  NameOut = Uri.substr(Slash + 1);
  return Status::ok();
}
