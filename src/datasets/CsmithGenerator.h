//===- datasets/CsmithGenerator.h - Random program generator ----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Csmith-style random program generator over the mini-IR. Programs are
/// emitted in "clang -O0" style — all locals live in stack slots — so the
/// pass library has realistic work to do (mem2reg first, then everything
/// else). All generated programs terminate: loops are constant-counted
/// do-while nests and recursion is depth-bounded by construction, and all
/// memory accesses are mask-aligned in-bounds, so differential testing has
/// a well-defined reference behaviour.
///
/// A ProgramStyle bundle parameterizes the generator; each dataset in
/// Table I maps to its own style (loop-heavy NPB, bit-twiddling CHStone,
/// call-dense GitHub, ...), giving the cross-dataset generalization
/// experiments (Tables VI/VII) genuinely distinct domains.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_DATASETS_CSMITHGENERATOR_H
#define COMPILER_GYM_DATASETS_CSMITHGENERATOR_H

#include "ir/Module.h"
#include "util/Rng.h"

#include <memory>

namespace compiler_gym {
namespace datasets {

/// Knobs controlling the statistical shape of generated programs.
struct ProgramStyle {
  int MinFunctions = 1;   ///< Leaf functions besides main.
  int MaxFunctions = 4;
  int Segments = 4;       ///< Top-level code segments in each body.
  int MaxLoopDepth = 2;
  int MaxLoopTrip = 16;   ///< Constant loop trip counts in [1, MaxLoopTrip].
  int MaxIfDepth = 2;
  int StmtsPerRun = 5;    ///< Straight-line statements per segment.
  int LocalVars = 6;
  int NumGlobals = 2;
  int GlobalSizeLog2 = 6; ///< Arrays of 2^k words (mask-indexed: in bounds).
  double FloatFrac = 0.2; ///< Fraction of f64 locals.
  double LoopDensity = 0.45;
  double BranchDensity = 0.30;
  double CallDensity = 0.15;
  double MemDensity = 0.25;
  double SelectFrac = 0.08;
  bool Recursive = false; ///< Emit one depth-bounded recursive function.
  int SizeScale = 1;      ///< Multiplies Segments (program size lever).
};

/// Generates a module from \p Seed with the given style. Deterministic:
/// same seed and style, same program.
std::unique_ptr<ir::Module> generateProgram(uint64_t Seed,
                                            const ProgramStyle &Style,
                                            const std::string &ModuleName);

} // namespace datasets
} // namespace compiler_gym

#endif // COMPILER_GYM_DATASETS_CSMITHGENERATOR_H
