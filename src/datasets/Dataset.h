//===- datasets/Dataset.h - Benchmark collections ---------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dataset: a named collection of benchmarks that can be enumerated,
/// random-sampled, and fetched by name — the §III-B1 dataset API. Datasets
/// here are backed by deterministic program generators (see DESIGN.md's
/// substitution notes), so "millions of benchmarks" enumerate lazily with
/// no storage cost, like the paper's generator-backed datasets.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_DATASETS_DATASET_H
#define COMPILER_GYM_DATASETS_DATASET_H

#include "datasets/Benchmark.h"
#include "util/Rng.h"

#include <memory>
#include <string>
#include <vector>

namespace compiler_gym {
namespace datasets {

/// Abstract collection of benchmarks.
class Dataset {
public:
  Dataset(std::string Name, std::string Description, bool Runnable)
      : Name(std::move(Name)), Description(std::move(Description)),
        Runnable(Runnable) {}
  virtual ~Dataset();

  /// Dataset URI, e.g. "benchmark://cbench-v1".
  const std::string &name() const { return Name; }
  const std::string &description() const { return Description; }

  /// Whether benchmarks support the runtime reward (paper: only cBench and
  /// csmith do).
  bool runnable() const { return Runnable; }

  /// Number of benchmarks in the dataset.
  virtual uint64_t size() const = 0;

  /// Up to \p Limit benchmark names, in a stable order.
  virtual std::vector<std::string> benchmarkNames(size_t Limit) const = 0;

  /// Fetches one benchmark by name.
  virtual StatusOr<Benchmark> benchmark(const std::string &BmName) const = 0;

  /// A uniformly random benchmark.
  StatusOr<Benchmark> randomBenchmark(Rng &Gen) const;

private:
  std::string Name;
  std::string Description;
  bool Runnable;
};

} // namespace datasets
} // namespace compiler_gym

#endif // COMPILER_GYM_DATASETS_DATASET_H
