//===- datasets/StressGenerator.h - llvm-stress analogue --------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An llvm-stress-style generator: wild, dense instruction soup over a
/// forward-only (DAG) CFG, with deep expression chains, odd type mixes and
/// heavy cast traffic. No stack slots and no loops — a deliberately
/// different statistical domain from the csmith-style generator (Table VI
/// shows agents transfer poorly to llvm-stress, which this preserves).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_DATASETS_STRESSGENERATOR_H
#define COMPILER_GYM_DATASETS_STRESSGENERATOR_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace compiler_gym {
namespace datasets {

/// Generates a stress module from \p Seed. \p SizeScale multiplies the
/// instruction budget (default bodies are a few hundred instructions).
std::unique_ptr<ir::Module> generateStressProgram(uint64_t Seed,
                                                  int SizeScale,
                                                  const std::string &Name);

} // namespace datasets
} // namespace compiler_gym

#endif // COMPILER_GYM_DATASETS_STRESSGENERATOR_H
