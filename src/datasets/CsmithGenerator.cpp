//===- datasets/CsmithGenerator.cpp ---------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "datasets/CsmithGenerator.h"

#include "ir/IRBuilder.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::datasets;
using namespace compiler_gym::ir;

namespace {

/// Builder state for one generated function.
class FunctionGenerator {
public:
  FunctionGenerator(Module &M, Function &F, Rng &Gen,
                    const ProgramStyle &Style,
                    const std::vector<Function *> &Callees)
      : M(M), F(F), Gen(Gen), Style(Style), Callees(Callees) {}

  void run() {
    BasicBlock *Entry = F.createBlock("entry");
    B.setInsertPoint(Entry);

    // Locals as stack slots, -O0 style.
    int NumLocals = std::max(2, Style.LocalVars);
    for (int I = 0; I < NumLocals; ++I) {
      // Guarantee at least one i64 local, and one f64 local when the style
      // uses floats at all, so operand selection never crosses types.
      bool IsFloat = I == 1 ? Style.FloatFrac > 0.0
                            : (I == 0 ? false
                                      : Gen.uniform() < Style.FloatFrac);
      Type Ty = IsFloat ? Type::F64 : Type::I64;
      Instruction *Slot = B.createAlloca(1);
      Slot->setName("l" + std::to_string(I) + ".addr");
      Locals.push_back({Slot, Ty});
    }
    // Initialize locals from constants and arguments.
    for (size_t I = 0; I < Locals.size(); ++I) {
      Value *Init;
      if (I < F.numArgs() && F.arg(I)->type() == Locals[I].Ty) {
        Init = F.arg(I);
      } else if (Locals[I].Ty == Type::F64) {
        Init = M.getConstFloat(Gen.uniform(-8.0, 8.0));
      } else {
        Init = M.getConstInt(Type::I64, Gen.range(-32, 96));
      }
      B.createStore(Init, Locals[I].Slot);
    }

    int Segments = std::max(1, Style.Segments * Style.SizeScale);
    for (int S = 0; S < Segments; ++S)
      emitSegment(Style.MaxLoopDepth, Style.MaxIfDepth);

    emitReturn();
  }

private:
  struct Local {
    Instruction *Slot;
    Type Ty;
  };

  Value *loadLocal(const Local &L) { return B.createLoad(L.Ty, L.Slot); }

  const Local &randomLocal(Type Ty) {
    // Find a local of the requested type; fall back to any.
    for (int Attempt = 0; Attempt < 8; ++Attempt) {
      const Local &L = Locals[Gen.bounded(Locals.size())];
      if (L.Ty == Ty)
        return L;
    }
    for (const Local &L : Locals)
      if (L.Ty == Ty)
        return L;
    return Locals[0];
  }

  /// A random i64 operand: local load or constant.
  Value *intOperand() {
    if (Gen.chance(0.25))
      return M.getConstInt(Type::I64, Gen.range(-16, 64));
    return loadLocal(randomLocal(Type::I64));
  }

  Value *floatOperand() {
    if (Gen.chance(0.25))
      return M.getConstFloat(Gen.uniform(-4.0, 4.0));
    return loadLocal(randomLocal(Type::F64));
  }

  /// One straight-line statement: compute something, store it to a local.
  void emitStatement() {
    double Roll = Gen.uniform();
    if (Roll < Style.CallDensity && !Callees.empty()) {
      emitCall();
      return;
    }
    if (Roll < Style.CallDensity + Style.MemDensity &&
        !F.parent()->globals().empty()) {
      emitGlobalAccess();
      return;
    }
    const Local &Dst = Locals[Gen.bounded(Locals.size())];
    Value *Result = Dst.Ty == Type::F64 ? emitFloatExpr() : emitIntExpr();
    B.createStore(Result, Dst.Slot);
  }

  Value *emitIntExpr() {
    Value *A = intOperand();
    Value *B1 = intOperand();
    if (Gen.uniform() < Style.SelectFrac) {
      Value *Cond = B.createICmp(randomPred(), A, intOperand());
      return B.createSelect(Cond, A, B1);
    }
    static const Opcode IntOps[] = {Opcode::Add, Opcode::Add, Opcode::Sub,
                                    Opcode::Mul, Opcode::And, Opcode::Or,
                                    Opcode::Xor, Opcode::Shl, Opcode::AShr,
                                    Opcode::SDiv, Opcode::SRem};
    Opcode Op = IntOps[Gen.bounded(std::size(IntOps))];
    if (Op == Opcode::Shl || Op == Opcode::AShr) {
      // Bounded shift amounts keep results tame.
      B1 = M.getConstInt(Type::I64, Gen.range(1, 7));
    } else if (Op == Opcode::SDiv || Op == Opcode::SRem) {
      // Non-zero constant divisors: no trap, still foldable.
      B1 = M.getConstInt(Type::I64, Gen.range(2, 9));
    }
    return B.createBinary(Op, A, B1);
  }

  Value *emitFloatExpr() {
    Value *A = floatOperand();
    Value *B1 = floatOperand();
    static const Opcode FloatOps[] = {Opcode::FAdd, Opcode::FSub,
                                      Opcode::FMul, Opcode::FDiv};
    return B.createBinary(FloatOps[Gen.bounded(std::size(FloatOps))], A, B1);
  }

  Pred randomPred() {
    static const Pred Preds[] = {Pred::EQ, Pred::NE, Pred::LT,
                                 Pred::LE, Pred::GT, Pred::GE};
    return Preds[Gen.bounded(std::size(Preds))];
  }

  void emitCall() {
    Function *Callee = Callees[Gen.bounded(Callees.size())];
    bool BoundedArg = Callee->name().rfind("rec", 0) == 0;
    std::vector<Value *> Args;
    for (size_t A = 0; A < Callee->numArgs(); ++A) {
      if (Callee->arg(A)->type() == Type::F64) {
        Args.push_back(floatOperand());
        continue;
      }
      Value *Arg = intOperand();
      if (BoundedArg) // Keep recursion depth small and non-negative.
        Arg = B.createBinary(Opcode::And, Arg,
                             M.getConstInt(Type::I64, 15));
      Args.push_back(Arg);
    }
    Instruction *R = B.createCall(Callee, std::move(Args));
    if (R->type() == Type::I64)
      B.createStore(R, randomLocal(Type::I64).Slot);
    else if (R->type() == Type::F64)
      B.createStore(R, randomLocal(Type::F64).Slot);
  }

  void emitGlobalAccess() {
    const auto &Globals = F.parent()->globals();
    GlobalVariable *G = Globals[Gen.bounded(Globals.size())].get();
    // Mask-aligned index: always in bounds.
    Value *Idx = B.createBinary(
        Opcode::And, intOperand(),
        M.getConstInt(Type::I64, static_cast<int64_t>(G->sizeWords()) - 1));
    Instruction *Ptr = B.createGep(G, Idx);
    if (Gen.chance(0.5)) {
      B.createStore(intOperand(), Ptr);
    } else {
      Instruction *L = B.createLoad(Type::I64, Ptr);
      B.createStore(L, randomLocal(Type::I64).Slot);
    }
  }

  /// One code segment: a loop nest, an if/else region, or a run of
  /// straight-line statements.
  void emitSegment(int LoopBudget, int IfBudget) {
    double Roll = Gen.uniform();
    if (LoopBudget > 0 && Roll < Style.LoopDensity) {
      emitLoop(LoopBudget, IfBudget);
      return;
    }
    if (IfBudget > 0 && Roll < Style.LoopDensity + Style.BranchDensity) {
      emitIfElse(LoopBudget, IfBudget);
      return;
    }
    int N = 1 + static_cast<int>(Gen.bounded(
                    static_cast<uint64_t>(Style.StmtsPerRun)));
    for (int I = 0; I < N; ++I)
      emitStatement();
  }

  /// Counted do-while loop (rotated form — the shape loop-unroll handles):
  ///   i = 0; do { body; i += 1 } while (i < N)
  void emitLoop(int LoopBudget, int IfBudget) {
    int64_t Trip = Gen.range(2, std::max(2, Style.MaxLoopTrip));
    Instruction *IVar = B.createAlloca(1);
    IVar->setName("i.addr");
    B.createStore(M.getConstInt(Type::I64, 0), IVar);

    BasicBlock *Body = F.createBlock("loop.body");
    BasicBlock *Exit = F.createBlock("loop.exit");
    B.createBr(Body);

    B.setInsertPoint(Body);
    int N = 1 + static_cast<int>(Gen.bounded(
                    static_cast<uint64_t>(Style.StmtsPerRun)));
    for (int I = 0; I < N; ++I) {
      // Inner control flow nests by recursion on the body.
      if (LoopBudget > 1 && Gen.chance(0.25)) {
        emitLoop(LoopBudget - 1, IfBudget);
      } else if (IfBudget > 0 && Gen.chance(0.2)) {
        emitIfElse(0, IfBudget - 1); // No loops inside branchy subregions.
      } else {
        emitStatement();
      }
    }
    // Induction update + latch.
    Instruction *IVal = B.createLoad(Type::I64, IVar);
    Instruction *Next =
        B.createBinary(Opcode::Add, IVal, M.getConstInt(Type::I64, 1));
    B.createStore(Next, IVar);
    Instruction *Cond =
        B.createICmp(Pred::LT, Next, M.getConstInt(Type::I64, Trip));
    // Latch must target the loop body's *header*, which is the block the
    // loop began in; after nested regions the insert point moved, so the
    // backedge goes to Body only when the body is a single block. With
    // nested regions the backedge targets Body and the intermediate
    // blocks flow naturally into the latch.
    B.createCondBr(Cond, Body, Exit);
    B.setInsertPoint(Exit);
  }

  void emitIfElse(int LoopBudget, int IfBudget) {
    Value *Cond = B.createICmp(randomPred(), intOperand(), intOperand());
    BasicBlock *ThenBB = F.createBlock("if.then");
    BasicBlock *ElseBB = F.createBlock("if.else");
    BasicBlock *MergeBB = F.createBlock("if.end");
    B.createCondBr(Cond, ThenBB, ElseBB);

    B.setInsertPoint(ThenBB);
    emitSegment(LoopBudget, IfBudget - 1);
    B.createBr(MergeBB);

    B.setInsertPoint(ElseBB);
    if (Gen.chance(0.6))
      emitSegment(LoopBudget, IfBudget - 1);
    B.createBr(MergeBB);

    B.setInsertPoint(MergeBB);
  }

  void emitReturn() {
    if (F.returnType() == Type::Void) {
      B.createRet();
      return;
    }
    if (F.returnType() == Type::F64) {
      Value *Acc = floatOperand();
      Acc = B.createBinary(Opcode::FAdd, Acc, floatOperand());
      B.createRet(Acc);
      return;
    }
    Value *Acc = intOperand();
    for (int I = 0; I < 2; ++I)
      Acc = B.createBinary(Opcode::Add, Acc, intOperand());
    B.createRet(Acc);
  }

  Module &M;
  Function &F;
  Rng &Gen;
  const ProgramStyle &Style;
  const std::vector<Function *> &Callees;
  IRBuilder B;
  std::vector<Local> Locals;
};

/// Emits a depth-bounded recursive function:
///   f(n): if (n <= 0) return seed; return f(n-1) * a + b
Function *emitRecursiveFunction(Module &M, Rng &Gen, int Index) {
  Function *F = M.createFunction("rec" + std::to_string(Index), Type::I64);
  Argument *N = F->addArgument(Type::I64, "n");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Base = F->createBlock("base");
  BasicBlock *Rec = F->createBlock("rec");
  IRBuilder B(Entry);
  Instruction *IsBase =
      B.createICmp(Pred::LE, N, M.getConstInt(Type::I64, 0));
  B.createCondBr(IsBase, Base, Rec);
  B.setInsertPoint(Base);
  B.createRet(M.getConstInt(Type::I64, Gen.range(1, 9)));
  B.setInsertPoint(Rec);
  Instruction *Dec =
      B.createBinary(Opcode::Sub, N, M.getConstInt(Type::I64, 1));
  Instruction *Call = B.createCall(F, {Dec});
  Instruction *Scaled = B.createBinary(
      Opcode::Mul, Call, M.getConstInt(Type::I64, Gen.range(2, 5)));
  Instruction *Out = B.createBinary(Opcode::Add, Scaled,
                                    M.getConstInt(Type::I64, Gen.range(0, 7)));
  B.createRet(Out);
  return F;
}

} // namespace

std::unique_ptr<Module>
datasets::generateProgram(uint64_t Seed, const ProgramStyle &Style,
                          const std::string &ModuleName) {
  Rng Gen(Seed ^ 0xC0FFEE123456789ull);
  auto M = std::make_unique<Module>(ModuleName);

  for (int G = 0; G < Style.NumGlobals; ++G)
    M->createGlobal("g" + std::to_string(G),
                    1u << std::clamp(Style.GlobalSizeLog2, 1, 12));

  // Leaf functions (pure-ish arithmetic helpers).
  std::vector<Function *> Callees;
  int NumFns = static_cast<int>(
      Gen.range(Style.MinFunctions, std::max(Style.MinFunctions,
                                             Style.MaxFunctions)));
  for (int I = 0; I < NumFns; ++I) {
    bool Float = Gen.uniform() < Style.FloatFrac;
    Function *F = M->createFunction("leaf" + std::to_string(I),
                                    Float ? Type::F64 : Type::I64);
    int Arity = static_cast<int>(Gen.range(1, 3));
    for (int A = 0; A < Arity; ++A)
      F->addArgument(Float ? Type::F64 : Type::I64,
                     "a" + std::to_string(A));
    ProgramStyle LeafStyle = Style;
    LeafStyle.Segments = 2;
    LeafStyle.SizeScale = 1;
    LeafStyle.MaxLoopDepth = std::min(Style.MaxLoopDepth, 1);
    LeafStyle.CallDensity = 0.0; // Leaves call nothing: no cycles.
    LeafStyle.LocalVars = 4;
    FunctionGenerator(*M, *F, Gen, LeafStyle, {}).run();
    Callees.push_back(F);
  }

  if (Style.Recursive)
    Callees.push_back(emitRecursiveFunction(*M, Gen, 0));

  // Main.
  Function *Main = M->createFunction("main", Type::I64);
  Main->addArgument(Type::I64, "argn");
  FunctionGenerator(*M, *Main, Gen, Style, Callees).run();

  return M;
}
