//===- datasets/DatasetRegistry.h - All built-in datasets -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The registry of benchmark datasets shipped with the LLVM environment,
/// mirroring Table I of the paper: anghabench, blas, cbench, chstone,
/// clgen, csmith, github, linux, llvm-stress, mibench, npb, opencv,
/// poj104, tensorflow. Each is backed by a deterministic generator with a
/// dataset-specific program style (see CuratedSuites.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_DATASETS_DATASETREGISTRY_H
#define COMPILER_GYM_DATASETS_DATASETREGISTRY_H

#include "datasets/Dataset.h"

#include <memory>
#include <vector>

namespace compiler_gym {
namespace datasets {

/// Immutable singleton over all built-in datasets.
class DatasetRegistry {
public:
  static const DatasetRegistry &instance();

  /// Finds a dataset by URI ("benchmark://cbench-v1"); nullptr if unknown.
  const Dataset *dataset(const std::string &Uri) const;

  /// Resolves a full benchmark URI ("benchmark://cbench-v1/qsort"). A
  /// dataset-only URI resolves to the dataset's first benchmark.
  StatusOr<Benchmark> resolve(const std::string &Uri) const;

  /// All datasets, in registration order.
  const std::vector<std::unique_ptr<Dataset>> &datasets() const {
    return Datasets;
  }

private:
  DatasetRegistry();
  std::vector<std::unique_ptr<Dataset>> Datasets;
};

} // namespace datasets
} // namespace compiler_gym

#endif // COMPILER_GYM_DATASETS_DATASETREGISTRY_H
