//===- rl/Dqn.h - APEX-style prioritized DQN --------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Double DQN with prioritized experience replay and a target network —
/// the single-process core of APEX (Horgan et al., ICML'18), the third
/// Table VI agent. (The paper runs RLlib's distributed APEX; the learning
/// rule is identical, the actor fleet is not.)
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_DQN_H
#define COMPILER_GYM_RL_DQN_H

#include "rl/Agent.h"
#include "rl/Nn.h"
#include "rl/ReplayBuffer.h"

namespace compiler_gym {
namespace rl {

/// DQN hyperparameters.
struct DqnConfig {
  size_t ObsDim = 0;
  size_t NumActions = 0;
  size_t HiddenSize = 64;
  size_t ReplayCapacity = 20000;
  size_t BatchSize = 64;
  size_t LearnEverySteps = 4;
  size_t TargetSyncEverySteps = 500;
  size_t WarmupSteps = 200;
  double Gamma = 0.99;
  double LearningRate = 1e-3;
  double EpsilonStart = 1.0;
  double EpsilonEnd = 0.05;
  double EpsilonDecaySteps = 5000;
  size_t MaxEpisodeSteps = 45;
  uint64_t Seed = 0xD05EEDull;
};

class DqnAgent : public Agent {
public:
  explicit DqnAgent(const DqnConfig &Config);

  std::string name() const override { return "APEX-DQN"; }
  Status train(core::Env &E, int NumEpisodes,
               const ProgressFn &Progress = {}) override;
  int act(const std::vector<float> &Obs) override;
  size_t maxEpisodeSteps() const override { return Config.MaxEpisodeSteps; }

private:
  void learnStep();
  double epsilon() const;

  DqnConfig Config;
  Mlp Q;
  Mlp QTarget;
  AdamOptimizer Optimizer;
  PrioritizedReplayBuffer Replay;
  Rng Gen;
  size_t TotalSteps = 0;
  size_t Updates = 0;
};

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_DQN_H
