//===- rl/Tensor.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/Tensor.h"

#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::rl;

Matrix Matrix::xavier(size_t Rows, size_t Cols, Rng &Gen) {
  Matrix M(Rows, Cols);
  float Bound = std::sqrt(6.0f / static_cast<float>(Rows + Cols));
  for (float &V : M.data())
    V = static_cast<float>(Gen.uniform(-Bound, Bound));
  return M;
}

Matrix rl::matmul(const Matrix &A, const Matrix &B) {
  assert(A.cols() == B.rows() && "matmul shape mismatch");
  Matrix Out(A.rows(), B.cols());
  for (size_t I = 0; I < A.rows(); ++I) {
    const float *ARow = A.rowPtr(I);
    float *ORow = Out.rowPtr(I);
    for (size_t K = 0; K < A.cols(); ++K) {
      float AV = ARow[K];
      if (AV == 0.0f)
        continue;
      const float *BRow = B.rowPtr(K);
      for (size_t J = 0; J < B.cols(); ++J)
        ORow[J] += AV * BRow[J];
    }
  }
  return Out;
}

Matrix rl::matmulTransA(const Matrix &A, const Matrix &B) {
  assert(A.rows() == B.rows() && "matmulTransA shape mismatch");
  Matrix Out(A.cols(), B.cols());
  for (size_t K = 0; K < A.rows(); ++K) {
    const float *ARow = A.rowPtr(K);
    const float *BRow = B.rowPtr(K);
    for (size_t I = 0; I < A.cols(); ++I) {
      float AV = ARow[I];
      if (AV == 0.0f)
        continue;
      float *ORow = Out.rowPtr(I);
      for (size_t J = 0; J < B.cols(); ++J)
        ORow[J] += AV * BRow[J];
    }
  }
  return Out;
}

Matrix rl::matmulTransB(const Matrix &A, const Matrix &B) {
  assert(A.cols() == B.cols() && "matmulTransB shape mismatch");
  Matrix Out(A.rows(), B.rows());
  for (size_t I = 0; I < A.rows(); ++I) {
    const float *ARow = A.rowPtr(I);
    float *ORow = Out.rowPtr(I);
    for (size_t J = 0; J < B.rows(); ++J) {
      const float *BRow = B.rowPtr(J);
      float Acc = 0.0f;
      for (size_t K = 0; K < A.cols(); ++K)
        Acc += ARow[K] * BRow[K];
      ORow[J] = Acc;
    }
  }
  return Out;
}

void rl::addBiasRows(Matrix &M, const Matrix &Bias) {
  assert(Bias.rows() == 1 && Bias.cols() == M.cols() && "bias shape");
  for (size_t I = 0; I < M.rows(); ++I) {
    float *Row = M.rowPtr(I);
    const float *B = Bias.rowPtr(0);
    for (size_t J = 0; J < M.cols(); ++J)
      Row[J] += B[J];
  }
}

Matrix rl::sumRows(const Matrix &M) {
  Matrix Out(1, M.cols());
  for (size_t I = 0; I < M.rows(); ++I) {
    const float *Row = M.rowPtr(I);
    float *O = Out.rowPtr(0);
    for (size_t J = 0; J < M.cols(); ++J)
      O[J] += Row[J];
  }
  return Out;
}
