//===- rl/Ppo.h - Proximal Policy Optimization ------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PPO (Schulman et al., 2017): clipped-surrogate policy gradient with GAE
/// advantages — the strongest of the four agents in the paper's Table VI.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_PPO_H
#define COMPILER_GYM_RL_PPO_H

#include "rl/Agent.h"
#include "rl/Nn.h"

namespace compiler_gym {
namespace rl {

/// PPO hyperparameters.
struct PpoConfig {
  size_t ObsDim = 0;       ///< Required.
  size_t NumActions = 0;   ///< Required.
  size_t HiddenSize = 64;
  size_t EpisodesPerBatch = 4;
  int EpochsPerBatch = 4;
  double Gamma = 0.99;
  double GaeLambda = 0.95;
  double ClipEps = 0.2;
  double LearningRate = 3e-4;
  double EntropyCoef = 0.01;
  double ValueCoef = 0.5;
  size_t MaxEpisodeSteps = 45;
  uint64_t Seed = 0xAB5EED;
};

/// The PPO agent.
class PpoAgent : public Agent {
public:
  explicit PpoAgent(const PpoConfig &Config);

  std::string name() const override { return "PPO"; }
  Status train(core::Env &E, int NumEpisodes,
               const ProgressFn &Progress = {}) override;
  int act(const std::vector<float> &Obs) override;
  size_t maxEpisodeSteps() const override { return Config.MaxEpisodeSteps; }

  /// Stochastic policy logits (exposed for tests).
  std::vector<float> logits(const std::vector<float> &Obs);

private:
  void update(const std::vector<Trajectory> &Batch);

  PpoConfig Config;
  Mlp Policy;
  Mlp Value;
  AdamOptimizer Optimizer;
  Rng Gen;
};

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_PPO_H
