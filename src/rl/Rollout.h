//===- rl/Rollout.h - Trajectory collection ----------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trajectory containers and collection helpers shared by the agents:
/// run a policy in an Env for one episode, record (obs, action, reward,
/// logprob, value), and compute returns / GAE advantages.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_ROLLOUT_H
#define COMPILER_GYM_RL_ROLLOUT_H

#include "core/Env.h"
#include "rl/Distributions.h"
#include "runtime/EnvPool.h"

#include <functional>
#include <vector>

namespace compiler_gym {
namespace rl {

/// One collected episode.
struct Trajectory {
  std::vector<std::vector<float>> Observations; ///< o_0 .. o_{T-1}.
  std::vector<int> Actions;
  std::vector<double> Rewards;
  std::vector<double> LogProbs;  ///< Behaviour-policy log pi(a|o).
  std::vector<double> Values;    ///< Critic value estimates V(o_t).
  double TotalReward = 0.0;

  size_t length() const { return Actions.size(); }
};

/// Policy interface for collection: returns logits for an observation.
using PolicyFn = std::function<std::vector<float>(const std::vector<float> &)>;
/// Critic interface: value estimate for an observation.
using ValueFn = std::function<double(const std::vector<float> &)>;

/// Runs one episode of at most \p MaxSteps in \p E, sampling from
/// \p Policy. The env's default observation space must be Int64List
/// (Autophase/InstCount, possibly wrapped with a histogram).
StatusOr<Trajectory> collectEpisode(core::Env &E, const PolicyFn &Policy,
                                    const ValueFn &Value, size_t MaxSteps,
                                    Rng &Gen);

/// Parallel experience collection: runs \p Episodes episodes across the
/// pool's workers and returns the trajectories in episode order. \p Policy
/// and \p Value are shared by all workers and must be thread-safe (pure
/// functions of the observation — the common case for inference-only
/// collection). Each worker samples from its own RNG stream derived from
/// \p Seed, so a run is deterministic for a fixed worker count, up to the
/// nondeterministic assignment of episodes to workers.
StatusOr<std::vector<Trajectory>> collectEpisodes(runtime::EnvPool &Pool,
                                                  const PolicyFn &Policy,
                                                  const ValueFn &Value,
                                                  size_t MaxSteps,
                                                  size_t Episodes,
                                                  uint64_t Seed = 1);

/// Discounted returns-to-go.
std::vector<double> discountedReturns(const std::vector<double> &Rewards,
                                      double Gamma);

/// Generalized advantage estimation; Values has one entry per step
/// (bootstrap value 0 at episode end — compiler episodes are truncated by
/// TimeLimit with near-zero tail rewards).
std::vector<double> gaeAdvantages(const std::vector<double> &Rewards,
                                  const std::vector<double> &Values,
                                  double Gamma, double Lambda);

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_ROLLOUT_H
