//===- rl/ReplayBuffer.h - Prioritized experience replay --------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A prioritized replay buffer (proportional variant) for the APEX-style
/// DQN agent. Priorities follow |TD error| + eps with alpha exponent and
/// importance-sampling weights, as in Horgan et al. (ICML'18), minus the
/// distributed actors (single-process here).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_REPLAYBUFFER_H
#define COMPILER_GYM_RL_REPLAYBUFFER_H

#include "util/Rng.h"

#include <cstddef>
#include <vector>

namespace compiler_gym {
namespace rl {

/// One transition.
struct Transition {
  std::vector<float> Obs;
  int Action = 0;
  double Reward = 0.0;
  std::vector<float> NextObs;
  bool Done = false;
};

/// Fixed-capacity ring buffer with proportional prioritized sampling.
class PrioritizedReplayBuffer {
public:
  PrioritizedReplayBuffer(size_t Capacity, double Alpha = 0.6,
                          double Beta = 0.4)
      : Capacity(Capacity), Alpha(Alpha), Beta(Beta) {}

  void add(Transition T, double Priority = 1.0);

  size_t size() const { return Items.size(); }

  struct Sample {
    std::vector<size_t> Indices;
    std::vector<double> Weights; ///< Importance-sampling weights (max 1).
  };

  /// Samples \p N indices proportional to priority^alpha.
  Sample sample(size_t N, Rng &Gen) const;

  const Transition &at(size_t Index) const { return Items[Index]; }

  /// Updates priorities after a learning step.
  void updatePriority(size_t Index, double Priority);

private:
  size_t Capacity;
  double Alpha;
  double Beta;
  size_t Next = 0;
  std::vector<Transition> Items;
  std::vector<double> Priorities;
};

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_REPLAYBUFFER_H
