//===- rl/Agent.h - Common agent interface ----------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface shared by the four algorithms of Table VI (PPO, A2C,
/// APEX-DQN, IMPALA): train on an environment, then act greedily for
/// evaluation. Mirrors how the paper swaps RLlib trainers by changing one
/// parameter (Listing 2).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_AGENT_H
#define COMPILER_GYM_RL_AGENT_H

#include "core/Env.h"
#include "rl/Rollout.h"

#include <functional>
#include <string>

namespace compiler_gym {
namespace rl {

/// Progress callback: (episode index, episode total reward).
using ProgressFn = std::function<void(int, double)>;

/// A trainable policy.
class Agent {
public:
  virtual ~Agent();

  virtual std::string name() const = 0;

  /// Trains for \p NumEpisodes episodes on \p E (episodes are bounded by
  /// the env's TimeLimit wrapper).
  virtual Status train(core::Env &E, int NumEpisodes,
                       const ProgressFn &Progress = {}) = 0;

  /// Greedy action for evaluation.
  virtual int act(const std::vector<float> &Obs) = 0;

  /// Maximum episode length used during evaluation rollouts.
  virtual size_t maxEpisodeSteps() const { return 45; }
};

/// Evaluates \p A greedily for one episode on \p E; returns total reward.
StatusOr<double> evaluateEpisode(core::Env &E, Agent &A, size_t MaxSteps);

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_AGENT_H
