//===- rl/Ggnn.h - Gated graph network cost model ----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A graph neural network regressor over ProGraML program graphs,
/// reproducing the paper's Fig 8 experiment: learn to predict a program's
/// instruction count from its graph using the State Transition Dataset.
/// Message passing uses per-flow (control/data/call) linear messages and a
/// tanh node update, unrolled for a fixed number of rounds with shared
/// weights and trained end-to-end with Adam (a tanh-updated simplification
/// of Li et al.'s GRU-updated GGNN; the propagation structure is the
/// same).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_GGNN_H
#define COMPILER_GYM_RL_GGNN_H

#include "analysis/ProGraML.h"
#include "rl/Nn.h"

namespace compiler_gym {
namespace rl {

/// GGNN hyperparameters.
struct GgnnConfig {
  size_t Hidden = 32;
  int Rounds = 2;        ///< Message-passing rounds (paper: two).
  size_t VocabSize = 96; ///< Node-embedding rows (hashed node features).
  double LearningRate = 2e-3;
  uint64_t Seed = 0x66AA;
};

/// Graph-level scalar regressor.
class GgnnRegressor {
public:
  explicit GgnnRegressor(const GgnnConfig &Config);

  /// Sets target normalization (fit on the training split).
  void setNormalization(double Mean, double Std);

  /// Predicts the (denormalized) target for \p G.
  double predict(const analysis::ProgramGraph &G);

  /// One SGD step on (G, Target); returns the squared normalized error.
  double trainStep(const analysis::ProgramGraph &G, double Target);

private:
  struct ForwardCache {
    std::vector<int> NodeVocab;       ///< Embedding row per node.
    std::vector<Matrix> H;            ///< Node states per round (0..R).
    std::vector<Matrix> Pre;          ///< Pre-activations per round (1..R).
    Matrix Pooled;                    ///< (1 x Hidden) mean pool.
    double Output = 0.0;              ///< Normalized prediction.
  };

  void forward(const analysis::ProgramGraph &G, ForwardCache &Cache);
  void backward(const analysis::ProgramGraph &G, const ForwardCache &Cache,
                double dOutput);

  int vocabOf(const analysis::ProgramGraph::Node &Node) const;

  GgnnConfig Config;
  Param Embedding;                       ///< (Vocab x Hidden).
  Param WSelf, BSelf;                    ///< Node update.
  std::vector<Param> WFlow;              ///< One per edge flow (3).
  Param WOut, BOut;                      ///< Readout.
  AdamOptimizer Optimizer;
  double TargetMean = 0.0;
  double TargetStd = 1.0;
};

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_GGNN_H
