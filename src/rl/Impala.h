//===- rl/Impala.h - V-trace actor-critic -----------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IMPALA (Espeholt et al., ICML'18): off-policy actor-critic with V-trace
/// importance-weighted corrections — the fourth Table VI agent. The
/// distributed actor fleet is emulated by collecting rollouts with a
/// periodically synchronized behaviour snapshot of the policy, so learner
/// and actors genuinely diverge (which is what V-trace corrects).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_IMPALA_H
#define COMPILER_GYM_RL_IMPALA_H

#include "rl/Agent.h"
#include "rl/Nn.h"

namespace compiler_gym {
namespace rl {

/// IMPALA hyperparameters.
struct ImpalaConfig {
  size_t ObsDim = 0;
  size_t NumActions = 0;
  size_t HiddenSize = 64;
  size_t EpisodesPerBatch = 4;
  size_t SyncEveryEpisodes = 12; ///< Behaviour-policy staleness.
  double Gamma = 0.99;
  double RhoMax = 1.0; ///< V-trace clipping.
  double CMax = 1.0;
  double LearningRate = 6e-4;
  double EntropyCoef = 0.01;
  double ValueCoef = 0.5;
  size_t MaxEpisodeSteps = 45;
  uint64_t Seed = 0x1337A1A;
};

class ImpalaAgent : public Agent {
public:
  explicit ImpalaAgent(const ImpalaConfig &Config);

  std::string name() const override { return "IMPALA"; }
  Status train(core::Env &E, int NumEpisodes,
               const ProgressFn &Progress = {}) override;
  int act(const std::vector<float> &Obs) override;
  size_t maxEpisodeSteps() const override { return Config.MaxEpisodeSteps; }

private:
  void update(const std::vector<Trajectory> &Batch);

  ImpalaConfig Config;
  Mlp Policy;          ///< Learner policy.
  Mlp BehaviourPolicy; ///< Stale actor snapshot.
  Mlp Value;
  AdamOptimizer Optimizer;
  Rng Gen;
  size_t EpisodesSinceSync = 0;
};

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_IMPALA_H
