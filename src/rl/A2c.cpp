//===- rl/A2c.cpp ---------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/A2c.h"

#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::rl;

A2cAgent::A2cAgent(const A2cConfig &Config)
    : Config(Config),
      Policy({Config.ObsDim, Config.HiddenSize, Config.NumActions},
             Activation::Tanh, Config.Seed),
      Value({Config.ObsDim, Config.HiddenSize, 1}, Activation::Tanh,
            Config.Seed ^ 0x1234),
      Optimizer(Config.LearningRate), Gen(Config.Seed ^ 0x99) {
  assert(Config.ObsDim > 0 && Config.NumActions > 0 &&
         "A2cConfig requires ObsDim and NumActions");
}

int A2cAgent::act(const std::vector<float> &Obs) {
  return argmax(Policy.forward1(Obs));
}

Status A2cAgent::train(core::Env &E, int NumEpisodes,
                       const ProgressFn &Progress) {
  PolicyFn PolicyCall = [this](const std::vector<float> &Obs) {
    return Policy.forward1(Obs);
  };
  ValueFn ValueCall = [this](const std::vector<float> &Obs) {
    return static_cast<double>(Value.forward1(Obs)[0]);
  };
  int Collected = 0;
  while (Collected < NumEpisodes) {
    std::vector<Trajectory> Batch;
    for (size_t B = 0;
         B < Config.EpisodesPerBatch && Collected < NumEpisodes; ++B) {
      CG_ASSIGN_OR_RETURN(
          Trajectory Traj,
          collectEpisode(E, PolicyCall, ValueCall, Config.MaxEpisodeSteps,
                         Gen));
      if (Progress)
        Progress(Collected, Traj.TotalReward);
      ++Collected;
      Batch.push_back(std::move(Traj));
    }
    update(Batch);
  }
  return Status::ok();
}

void A2cAgent::update(const std::vector<Trajectory> &Batch) {
  std::vector<const std::vector<float> *> Obs;
  std::vector<int> Actions;
  std::vector<double> Advantages, Returns;
  for (const Trajectory &Traj : Batch) {
    std::vector<double> Ret = discountedReturns(Traj.Rewards, Config.Gamma);
    for (size_t T = 0; T < Traj.length(); ++T) {
      Obs.push_back(&Traj.Observations[T]);
      Actions.push_back(Traj.Actions[T]);
      Returns.push_back(Ret[T]);
      Advantages.push_back(Ret[T] - Traj.Values[T]);
    }
  }
  size_t N = Obs.size();
  if (N == 0)
    return;

  Matrix X(N, Config.ObsDim);
  for (size_t I = 0; I < N; ++I)
    std::copy(Obs[I]->begin(), Obs[I]->end(), X.rowPtr(I));

  Matrix Logits = Policy.forward(X);
  Matrix dLogits(N, Config.NumActions);
  for (size_t I = 0; I < N; ++I) {
    std::vector<float> Row(Logits.rowPtr(I),
                           Logits.rowPtr(I) + Config.NumActions);
    std::vector<double> P = softmax(Row);
    double H = 0.0;
    for (double Pi : P)
      if (Pi > 1e-12)
        H -= Pi * std::log(Pi);
    for (size_t J = 0; J < Config.NumActions; ++J) {
      double OneHot = (static_cast<int>(J) == Actions[I]) ? 1.0 : 0.0;
      double G = -Advantages[I] * (OneHot - P[J]);
      G += Config.EntropyCoef * P[J] * (std::log(std::max(P[J], 1e-12)) + H);
      dLogits.at(I, J) = static_cast<float>(G / static_cast<double>(N));
    }
  }
  Policy.backward(dLogits);

  Matrix V = Value.forward(X);
  Matrix dV(N, 1);
  for (size_t I = 0; I < N; ++I)
    dV.at(I, 0) = static_cast<float>(
        Config.ValueCoef * 2.0 *
        (static_cast<double>(V.at(I, 0)) - Returns[I]) /
        static_cast<double>(N));
  Value.backward(dV);

  std::vector<Param *> All = Policy.params();
  std::vector<Param *> ValueParams = Value.params();
  All.insert(All.end(), ValueParams.begin(), ValueParams.end());
  Optimizer.step(All);
}
