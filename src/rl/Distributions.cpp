//===- rl/Distributions.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/Distributions.h"

#include <algorithm>
#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::rl;

std::vector<double> rl::softmax(const std::vector<float> &Logits) {
  double Max = *std::max_element(Logits.begin(), Logits.end());
  std::vector<double> Out(Logits.size());
  double Sum = 0.0;
  for (size_t I = 0; I < Logits.size(); ++I) {
    Out[I] = std::exp(static_cast<double>(Logits[I]) - Max);
    Sum += Out[I];
  }
  for (double &P : Out)
    P /= Sum;
  return Out;
}

double rl::logProb(const std::vector<float> &Logits, int Index) {
  double Max = *std::max_element(Logits.begin(), Logits.end());
  double Sum = 0.0;
  for (float L : Logits)
    Sum += std::exp(static_cast<double>(L) - Max);
  return static_cast<double>(Logits[Index]) - Max - std::log(Sum);
}

double rl::entropy(const std::vector<float> &Logits) {
  std::vector<double> P = softmax(Logits);
  double H = 0.0;
  for (double Pi : P)
    if (Pi > 1e-12)
      H -= Pi * std::log(Pi);
  return H;
}

int rl::sampleCategorical(const std::vector<float> &Logits, Rng &Gen) {
  std::vector<double> P = softmax(Logits);
  double Target = Gen.uniform();
  double Acc = 0.0;
  for (size_t I = 0; I < P.size(); ++I) {
    Acc += P[I];
    if (Target < Acc)
      return static_cast<int>(I);
  }
  return static_cast<int>(P.size()) - 1;
}

int rl::argmax(const std::vector<float> &Logits) {
  return static_cast<int>(
      std::max_element(Logits.begin(), Logits.end()) - Logits.begin());
}

std::vector<float> rl::squashObservation(const std::vector<int64_t> &Raw) {
  std::vector<float> Out(Raw.size());
  for (size_t I = 0; I < Raw.size(); ++I) {
    double V = static_cast<double>(Raw[I]);
    Out[I] = static_cast<float>(V >= 0 ? std::log1p(V) : -std::log1p(-V));
  }
  return Out;
}
