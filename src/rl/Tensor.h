//===- rl/Tensor.h - Minimal matrix math ------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small row-major float matrix with the handful of operations the RL
/// stack needs (matmul, transpose-matmul, elementwise math). Deliberately
/// minimal: the paper outsources RL to RLlib; this repo implements the four
/// algorithms of Table VI from scratch on this substrate.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_TENSOR_H
#define COMPILER_GYM_RL_TENSOR_H

#include "util/Rng.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace compiler_gym {
namespace rl {

/// Row-major 2-D float matrix.
class Matrix {
public:
  Matrix() = default;
  Matrix(size_t Rows, size_t Cols, float Fill = 0.0f)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  bool empty() const { return Data.empty(); }

  float &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  float at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  float *rowPtr(size_t R) { return Data.data() + R * NumCols; }
  const float *rowPtr(size_t R) const { return Data.data() + R * NumCols; }

  std::vector<float> &data() { return Data; }
  const std::vector<float> &data() const { return Data; }

  void fill(float V) { std::fill(Data.begin(), Data.end(), V); }

  /// Xavier-uniform initialization.
  static Matrix xavier(size_t Rows, size_t Cols, Rng &Gen);

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<float> Data;
};

/// Out = A (m x k) * B (k x n).
Matrix matmul(const Matrix &A, const Matrix &B);
/// Out = A^T (k x m)^T=(m x k)... A is (k x m); result (m x n) = A^T * B.
Matrix matmulTransA(const Matrix &A, const Matrix &B);
/// Out (m x k) = A (m x n) * B^T where B is (k x n).
Matrix matmulTransB(const Matrix &A, const Matrix &B);

/// In-place: adds row vector \p Bias (1 x n) to every row of \p M.
void addBiasRows(Matrix &M, const Matrix &Bias);

/// Column-sum of M into a (1 x n) matrix (bias gradient).
Matrix sumRows(const Matrix &M);

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_TENSOR_H
