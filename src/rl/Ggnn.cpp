//===- rl/Ggnn.cpp --------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/Ggnn.h"

#include "util/Hash.h"

#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::rl;
using analysis::ProgramGraph;

GgnnRegressor::GgnnRegressor(const GgnnConfig &Config)
    : Config(Config),
      Embedding([&] {
        Rng Gen(Config.Seed);
        return Param(Matrix::xavier(Config.VocabSize, Config.Hidden, Gen));
      }()),
      WSelf([&] {
        Rng Gen(Config.Seed ^ 1);
        return Param(Matrix::xavier(Config.Hidden, Config.Hidden, Gen));
      }()),
      BSelf(Param(Matrix(1, Config.Hidden))),
      WOut([&] {
        Rng Gen(Config.Seed ^ 2);
        return Param(Matrix::xavier(Config.Hidden, 1, Gen));
      }()),
      BOut(Param(Matrix(1, 1))), Optimizer(Config.LearningRate) {
  for (int F = 0; F < 3; ++F) {
    Rng Gen(Config.Seed ^ (0x10 + F));
    WFlow.emplace_back(Matrix::xavier(Config.Hidden, Config.Hidden, Gen));
  }
}

void GgnnRegressor::setNormalization(double Mean, double Std) {
  TargetMean = Mean;
  TargetStd = Std > 1e-9 ? Std : 1.0;
}

int GgnnRegressor::vocabOf(const ProgramGraph::Node &Node) const {
  uint64_t H = hashCombine(static_cast<uint64_t>(Node.Kind) * 977,
                           static_cast<uint64_t>(Node.Feature));
  return static_cast<int>(H % Config.VocabSize);
}

void GgnnRegressor::forward(const ProgramGraph &G, ForwardCache &Cache) {
  size_t N = G.numNodes();
  Cache.NodeVocab.resize(N);
  Matrix H0(N, Config.Hidden);
  for (size_t V = 0; V < N; ++V) {
    Cache.NodeVocab[V] = vocabOf(G.Nodes[V]);
    const float *Row = Embedding.Value.rowPtr(Cache.NodeVocab[V]);
    std::copy(Row, Row + Config.Hidden, H0.rowPtr(V));
  }
  Cache.H.clear();
  Cache.Pre.clear();
  Cache.H.push_back(std::move(H0));

  for (int Round = 0; Round < Config.Rounds; ++Round) {
    const Matrix &H = Cache.H.back();
    // Messages per flow: for every edge u->v, msg[v] += H[u] @ WFlow[f].
    // Computed as (H @ WFlow) gathered over edges.
    Matrix Pre = matmul(H, WSelf.Value);
    addBiasRows(Pre, BSelf.Value);
    std::vector<Matrix> HW;
    for (int F = 0; F < 3; ++F)
      HW.push_back(matmul(H, WFlow[F].Value));
    for (const ProgramGraph::Edge &E : G.Edges) {
      const float *Src = HW[static_cast<int>(E.Flow)].rowPtr(E.Source);
      float *Dst = Pre.rowPtr(E.Target);
      for (size_t K = 0; K < Config.Hidden; ++K)
        Dst[K] += Src[K];
    }
    Cache.Pre.push_back(Pre);
    Matrix HNext = Pre;
    for (float &V : HNext.data())
      V = std::tanh(V);
    Cache.H.push_back(std::move(HNext));
  }

  // Mean-pool readout.
  const Matrix &HFinal = Cache.H.back();
  Cache.Pooled = Matrix(1, Config.Hidden);
  for (size_t V = 0; V < N; ++V) {
    const float *Row = HFinal.rowPtr(V);
    float *P = Cache.Pooled.rowPtr(0);
    for (size_t K = 0; K < Config.Hidden; ++K)
      P[K] += Row[K];
  }
  for (float &V : Cache.Pooled.data())
    V /= static_cast<float>(std::max<size_t>(1, N));
  Matrix Out = matmul(Cache.Pooled, WOut.Value);
  Cache.Output = static_cast<double>(Out.at(0, 0)) +
                 static_cast<double>(BOut.Value.at(0, 0));
}

void GgnnRegressor::backward(const ProgramGraph &G,
                             const ForwardCache &Cache, double dOutput) {
  size_t N = G.numNodes();
  // Readout.
  BOut.Grad.at(0, 0) += static_cast<float>(dOutput);
  for (size_t K = 0; K < Config.Hidden; ++K)
    WOut.Grad.at(K, 0) += static_cast<float>(dOutput) *
                          Cache.Pooled.at(0, K);
  Matrix dH(N, Config.Hidden);
  float PoolScale =
      static_cast<float>(dOutput) / static_cast<float>(std::max<size_t>(1, N));
  for (size_t V = 0; V < N; ++V) {
    float *Row = dH.rowPtr(V);
    for (size_t K = 0; K < Config.Hidden; ++K)
      Row[K] = PoolScale * WOut.Value.at(K, 0);
  }

  // Unrolled rounds, in reverse.
  for (int Round = Config.Rounds - 1; Round >= 0; --Round) {
    const Matrix &Pre = Cache.Pre[Round];
    const Matrix &H = Cache.H[Round];
    // Through tanh.
    Matrix dPre = dH;
    for (size_t I = 0; I < dPre.data().size(); ++I) {
      float T = std::tanh(Pre.data()[I]);
      dPre.data()[I] *= 1.0f - T * T;
    }
    // Self path.
    Matrix dWSelf = matmulTransA(H, dPre);
    for (size_t I = 0; I < dWSelf.data().size(); ++I)
      WSelf.Grad.data()[I] += dWSelf.data()[I];
    Matrix dBSelf = sumRows(dPre);
    for (size_t I = 0; I < dBSelf.data().size(); ++I)
      BSelf.Grad.data()[I] += dBSelf.data()[I];
    Matrix dHPrev = matmulTransB(dPre, WSelf.Value);
    // Message paths: gather dPre[target] into per-flow pseudo-batches.
    for (int F = 0; F < 3; ++F) {
      Matrix dMsgAtSource(N, Config.Hidden);
      bool Any = false;
      for (const ProgramGraph::Edge &E : G.Edges) {
        if (static_cast<int>(E.Flow) != F)
          continue;
        Any = true;
        const float *Src = dPre.rowPtr(E.Target);
        float *Dst = dMsgAtSource.rowPtr(E.Source);
        for (size_t K = 0; K < Config.Hidden; ++K)
          Dst[K] += Src[K];
      }
      if (!Any)
        continue;
      // dWFlow += H^T dMsgAtSource ; dHPrev += dMsgAtSource WFlow^T.
      Matrix dW = matmulTransA(H, dMsgAtSource);
      for (size_t I = 0; I < dW.data().size(); ++I)
        WFlow[F].Grad.data()[I] += dW.data()[I];
      Matrix dVia = matmulTransB(dMsgAtSource, WFlow[F].Value);
      for (size_t I = 0; I < dVia.data().size(); ++I)
        dHPrev.data()[I] += dVia.data()[I];
    }
    dH = std::move(dHPrev);
  }

  // Embedding rows.
  for (size_t V = 0; V < N; ++V) {
    float *Row = Embedding.Grad.rowPtr(Cache.NodeVocab[V]);
    const float *Src = dH.rowPtr(V);
    for (size_t K = 0; K < Config.Hidden; ++K)
      Row[K] += Src[K];
  }
}

double GgnnRegressor::predict(const ProgramGraph &G) {
  ForwardCache Cache;
  forward(G, Cache);
  return Cache.Output * TargetStd + TargetMean;
}

double GgnnRegressor::trainStep(const ProgramGraph &G, double Target) {
  ForwardCache Cache;
  forward(G, Cache);
  double NormTarget = (Target - TargetMean) / TargetStd;
  double Err = Cache.Output - NormTarget;
  backward(G, Cache, 2.0 * Err);
  std::vector<Param *> Params = {&Embedding, &WSelf, &BSelf, &WOut, &BOut};
  for (Param &P : WFlow)
    Params.push_back(&P);
  Optimizer.step(Params);
  return Err * Err;
}
