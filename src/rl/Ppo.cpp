//===- rl/Ppo.cpp ---------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/Ppo.h"

#include <algorithm>
#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::rl;

Agent::~Agent() = default;

StatusOr<double> rl::evaluateEpisode(core::Env &E, Agent &A,
                                     size_t MaxSteps) {
  CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
  std::vector<float> State = squashObservation(Obs.Ints);
  double Total = 0.0;
  for (size_t Step = 0; Step < MaxSteps; ++Step) {
    int Action = A.act(State);
    CG_ASSIGN_OR_RETURN(core::StepResult R, E.step(Action));
    Total += R.Reward;
    State = squashObservation(R.Obs.Ints);
    if (R.Done)
      break;
  }
  return Total;
}

PpoAgent::PpoAgent(const PpoConfig &Config)
    : Config(Config),
      Policy({Config.ObsDim, Config.HiddenSize, Config.HiddenSize,
              Config.NumActions},
             Activation::Tanh, Config.Seed),
      Value({Config.ObsDim, Config.HiddenSize, 1}, Activation::Tanh,
            Config.Seed ^ 0x5A5A5A5A),
      Optimizer(Config.LearningRate), Gen(Config.Seed ^ 0x77) {
  assert(Config.ObsDim > 0 && Config.NumActions > 0 &&
         "PpoConfig requires ObsDim and NumActions");
}

std::vector<float> PpoAgent::logits(const std::vector<float> &Obs) {
  return Policy.forward1(Obs);
}

int PpoAgent::act(const std::vector<float> &Obs) {
  return argmax(Policy.forward1(Obs));
}

Status PpoAgent::train(core::Env &E, int NumEpisodes,
                       const ProgressFn &Progress) {
  PolicyFn PolicyCall = [this](const std::vector<float> &Obs) {
    return Policy.forward1(Obs);
  };
  ValueFn ValueCall = [this](const std::vector<float> &Obs) {
    return static_cast<double>(Value.forward1(Obs)[0]);
  };

  int Collected = 0;
  while (Collected < NumEpisodes) {
    std::vector<Trajectory> Batch;
    for (size_t B = 0;
         B < Config.EpisodesPerBatch && Collected < NumEpisodes; ++B) {
      CG_ASSIGN_OR_RETURN(
          Trajectory Traj,
          collectEpisode(E, PolicyCall, ValueCall, Config.MaxEpisodeSteps,
                         Gen));
      if (Progress)
        Progress(Collected, Traj.TotalReward);
      ++Collected;
      Batch.push_back(std::move(Traj));
    }
    update(Batch);
  }
  return Status::ok();
}

void PpoAgent::update(const std::vector<Trajectory> &Batch) {
  // Flatten the batch.
  std::vector<const std::vector<float> *> Obs;
  std::vector<int> Actions;
  std::vector<double> OldLogProbs, Advantages, Returns;
  for (const Trajectory &Traj : Batch) {
    std::vector<double> Adv = gaeAdvantages(Traj.Rewards, Traj.Values,
                                            Config.Gamma, Config.GaeLambda);
    std::vector<double> Ret = discountedReturns(Traj.Rewards, Config.Gamma);
    for (size_t T = 0; T < Traj.length(); ++T) {
      Obs.push_back(&Traj.Observations[T]);
      Actions.push_back(Traj.Actions[T]);
      OldLogProbs.push_back(Traj.LogProbs[T]);
      Advantages.push_back(Adv[T]);
      Returns.push_back(Ret[T]);
    }
  }
  size_t N = Obs.size();
  if (N == 0)
    return;

  // Advantage normalization.
  double Mean = 0.0, Var = 0.0;
  for (double A : Advantages)
    Mean += A;
  Mean /= static_cast<double>(N);
  for (double A : Advantages)
    Var += (A - Mean) * (A - Mean);
  double Std = std::sqrt(Var / static_cast<double>(N)) + 1e-8;
  for (double &A : Advantages)
    A = (A - Mean) / Std;

  Matrix X(N, Config.ObsDim);
  for (size_t I = 0; I < N; ++I)
    std::copy(Obs[I]->begin(), Obs[I]->end(), X.rowPtr(I));

  std::vector<Param *> PolicyParams = Policy.params();
  std::vector<Param *> ValueParams = Value.params();
  std::vector<Param *> AllParams = PolicyParams;
  AllParams.insert(AllParams.end(), ValueParams.begin(), ValueParams.end());

  for (int Epoch = 0; Epoch < Config.EpochsPerBatch; ++Epoch) {
    // Policy pass.
    Matrix Logits = Policy.forward(X);
    Matrix dLogits(N, Config.NumActions);
    for (size_t I = 0; I < N; ++I) {
      std::vector<float> Row(Logits.rowPtr(I),
                             Logits.rowPtr(I) + Config.NumActions);
      std::vector<double> P = softmax(Row);
      double NewLp = logProb(Row, Actions[I]);
      // The exp can overflow after several epochs on the same batch; a
      // hard clamp keeps the surrogate gradient finite (standard practice).
      double Ratio = std::min(20.0, std::exp(NewLp - OldLogProbs[I]));
      double A = Advantages[I];
      bool Clipped = (A > 0 && Ratio > 1.0 + Config.ClipEps) ||
                     (A < 0 && Ratio < 1.0 - Config.ClipEps);
      double Scale = Clipped ? 0.0 : Ratio * A;
      double H = 0.0;
      for (double Pi : P)
        if (Pi > 1e-12)
          H -= Pi * std::log(Pi);
      for (size_t J = 0; J < Config.NumActions; ++J) {
        double OneHot = (static_cast<int>(J) == Actions[I]) ? 1.0 : 0.0;
        // Clipped surrogate (ascent -> negative for descent).
        double G = -Scale * (OneHot - P[J]);
        // Entropy bonus: descend -EntropyCoef * H.
        G += Config.EntropyCoef * P[J] * (std::log(std::max(P[J], 1e-12)) +
                                          H);
        dLogits.at(I, J) = static_cast<float>(G / static_cast<double>(N));
      }
    }
    Policy.backward(dLogits);

    // Value pass.
    Matrix V = Value.forward(X);
    Matrix dV(N, 1);
    for (size_t I = 0; I < N; ++I)
      dV.at(I, 0) = static_cast<float>(
          Config.ValueCoef * 2.0 *
          (static_cast<double>(V.at(I, 0)) - Returns[I]) /
          static_cast<double>(N));
    Value.backward(dV);

    Optimizer.step(AllParams);
  }
}
