//===- rl/QLearning.h - Tabular Q-learning ----------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tabular Q-learning over hashed observations — the paper ships a
/// Q-learning code sample alongside the heavyweight agents; this is that
/// sample's engine, and doubles as a sanity baseline in tests.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_QLEARNING_H
#define COMPILER_GYM_RL_QLEARNING_H

#include "rl/Agent.h"

#include <unordered_map>

namespace compiler_gym {
namespace rl {

/// Tabular Q-learning configuration.
struct QLearningConfig {
  size_t NumActions = 0;
  double Gamma = 0.95;
  double LearningRate = 0.2;
  double Epsilon = 0.15;
  size_t MaxEpisodeSteps = 20;
  uint64_t Seed = 0x9L;
};

class QLearningAgent : public Agent {
public:
  explicit QLearningAgent(const QLearningConfig &Config);

  std::string name() const override { return "Q-learning"; }
  Status train(core::Env &E, int NumEpisodes,
               const ProgressFn &Progress = {}) override;
  int act(const std::vector<float> &Obs) override;
  size_t maxEpisodeSteps() const override { return Config.MaxEpisodeSteps; }

  size_t tableSize() const { return Table.size(); }

private:
  uint64_t key(const std::vector<float> &Obs) const;
  std::vector<double> &row(uint64_t Key);

  QLearningConfig Config;
  std::unordered_map<uint64_t, std::vector<double>> Table;
  Rng Gen;
};

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_QLEARNING_H
