//===- rl/Distributions.h - Categorical policy math -------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Softmax/categorical utilities shared by the policy-gradient agents:
/// numerically stable softmax, log-prob, entropy, and sampling.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_DISTRIBUTIONS_H
#define COMPILER_GYM_RL_DISTRIBUTIONS_H

#include "util/Rng.h"

#include <vector>

namespace compiler_gym {
namespace rl {

/// Numerically stable softmax.
std::vector<double> softmax(const std::vector<float> &Logits);

/// log softmax(Logits)[Index].
double logProb(const std::vector<float> &Logits, int Index);

/// Entropy of softmax(Logits).
double entropy(const std::vector<float> &Logits);

/// Samples an index from softmax(Logits).
int sampleCategorical(const std::vector<float> &Logits, Rng &Gen);

/// Index of the largest logit.
int argmax(const std::vector<float> &Logits);

/// Observation preprocessing shared by all agents: log1p squashing keeps
/// the counter-valued features (Autophase/InstCount) in a sane range.
std::vector<float> squashObservation(const std::vector<int64_t> &Raw);

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_DISTRIBUTIONS_H
