//===- rl/Impala.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/Impala.h"

#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::rl;

ImpalaAgent::ImpalaAgent(const ImpalaConfig &Config)
    : Config(Config),
      Policy({Config.ObsDim, Config.HiddenSize, Config.NumActions},
             Activation::Tanh, Config.Seed),
      BehaviourPolicy({Config.ObsDim, Config.HiddenSize, Config.NumActions},
                      Activation::Tanh, Config.Seed),
      Value({Config.ObsDim, Config.HiddenSize, 1}, Activation::Tanh,
            Config.Seed ^ 0xBEE),
      Optimizer(Config.LearningRate), Gen(Config.Seed ^ 0x44) {
  assert(Config.ObsDim > 0 && Config.NumActions > 0 &&
         "ImpalaConfig requires ObsDim and NumActions");
  BehaviourPolicy.copyFrom(Policy);
}

int ImpalaAgent::act(const std::vector<float> &Obs) {
  return argmax(Policy.forward1(Obs));
}

Status ImpalaAgent::train(core::Env &E, int NumEpisodes,
                          const ProgressFn &Progress) {
  PolicyFn Behaviour = [this](const std::vector<float> &Obs) {
    return BehaviourPolicy.forward1(Obs);
  };
  ValueFn ValueCall = [this](const std::vector<float> &Obs) {
    return static_cast<double>(Value.forward1(Obs)[0]);
  };
  int Collected = 0;
  while (Collected < NumEpisodes) {
    std::vector<Trajectory> Batch;
    for (size_t B = 0;
         B < Config.EpisodesPerBatch && Collected < NumEpisodes; ++B) {
      CG_ASSIGN_OR_RETURN(
          Trajectory Traj,
          collectEpisode(E, Behaviour, ValueCall, Config.MaxEpisodeSteps,
                         Gen));
      if (Progress)
        Progress(Collected, Traj.TotalReward);
      ++Collected;
      ++EpisodesSinceSync;
      Batch.push_back(std::move(Traj));
    }
    update(Batch);
    if (EpisodesSinceSync >= Config.SyncEveryEpisodes) {
      BehaviourPolicy.copyFrom(Policy);
      EpisodesSinceSync = 0;
    }
  }
  return Status::ok();
}

void ImpalaAgent::update(const std::vector<Trajectory> &Batch) {
  // Assemble all timesteps, computing V-trace targets per trajectory.
  std::vector<const std::vector<float> *> Obs;
  std::vector<int> Actions;
  std::vector<double> PgAdvantages, VtraceTargets;

  for (const Trajectory &Traj : Batch) {
    size_t T = Traj.length();
    if (T == 0)
      continue;
    // Current-policy log-probs and values.
    std::vector<double> Rho(T), Values(T);
    for (size_t I = 0; I < T; ++I) {
      std::vector<float> Logits = Policy.forward1(Traj.Observations[I]);
      double NewLp = logProb(Logits, Traj.Actions[I]);
      Rho[I] = std::min(Config.RhoMax, std::exp(NewLp - Traj.LogProbs[I]));
      Values[I] = Traj.Values[I];
    }
    // V-trace recursion (bootstrap value 0 at episode end).
    std::vector<double> Vs(T);
    double NextVs = 0.0, NextValue = 0.0;
    for (size_t I = T; I-- > 0;) {
      double C = std::min(Config.CMax, Rho[I]);
      double Delta =
          Rho[I] * (Traj.Rewards[I] + Config.Gamma * NextValue - Values[I]);
      Vs[I] = Values[I] + Delta +
              Config.Gamma * C * (NextVs - NextValue);
      NextVs = Vs[I];
      NextValue = Values[I];
    }
    for (size_t I = 0; I < T; ++I) {
      double NextVsI = (I + 1 < T) ? Vs[I + 1] : 0.0;
      Obs.push_back(&Traj.Observations[I]);
      Actions.push_back(Traj.Actions[I]);
      PgAdvantages.push_back(
          Rho[I] * (Traj.Rewards[I] + Config.Gamma * NextVsI - Values[I]));
      VtraceTargets.push_back(Vs[I]);
    }
  }
  size_t N = Obs.size();
  if (N == 0)
    return;

  Matrix X(N, Config.ObsDim);
  for (size_t I = 0; I < N; ++I)
    std::copy(Obs[I]->begin(), Obs[I]->end(), X.rowPtr(I));

  Matrix Logits = Policy.forward(X);
  Matrix dLogits(N, Config.NumActions);
  for (size_t I = 0; I < N; ++I) {
    std::vector<float> Row(Logits.rowPtr(I),
                           Logits.rowPtr(I) + Config.NumActions);
    std::vector<double> P = softmax(Row);
    double H = 0.0;
    for (double Pi : P)
      if (Pi > 1e-12)
        H -= Pi * std::log(Pi);
    for (size_t J = 0; J < Config.NumActions; ++J) {
      double OneHot = (static_cast<int>(J) == Actions[I]) ? 1.0 : 0.0;
      double G = -PgAdvantages[I] * (OneHot - P[J]);
      G += Config.EntropyCoef * P[J] * (std::log(std::max(P[J], 1e-12)) + H);
      dLogits.at(I, J) = static_cast<float>(G / static_cast<double>(N));
    }
  }
  Policy.backward(dLogits);

  Matrix V = Value.forward(X);
  Matrix dV(N, 1);
  for (size_t I = 0; I < N; ++I)
    dV.at(I, 0) = static_cast<float>(
        Config.ValueCoef * 2.0 *
        (static_cast<double>(V.at(I, 0)) - VtraceTargets[I]) /
        static_cast<double>(N));
  Value.backward(dV);

  std::vector<Param *> All = Policy.params();
  std::vector<Param *> ValueParams = Value.params();
  All.insert(All.end(), ValueParams.begin(), ValueParams.end());
  Optimizer.step(All);
}
