//===- rl/ReplayBuffer.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/ReplayBuffer.h"

#include <algorithm>
#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::rl;

void PrioritizedReplayBuffer::add(Transition T, double Priority) {
  Priority = std::max(1e-6, Priority);
  if (Items.size() < Capacity) {
    Items.push_back(std::move(T));
    Priorities.push_back(Priority);
    return;
  }
  Items[Next] = std::move(T);
  Priorities[Next] = Priority;
  Next = (Next + 1) % Capacity;
}

PrioritizedReplayBuffer::Sample
PrioritizedReplayBuffer::sample(size_t N, Rng &Gen) const {
  Sample Out;
  if (Items.empty())
    return Out;
  std::vector<double> Weights(Priorities.size());
  double Total = 0.0;
  for (size_t I = 0; I < Priorities.size(); ++I) {
    Weights[I] = std::pow(Priorities[I], Alpha);
    Total += Weights[I];
  }
  double MaxWeight = 0.0;
  for (size_t K = 0; K < N; ++K) {
    size_t Index = Gen.weightedIndex(Weights);
    double P = Weights[Index] / Total;
    double W = std::pow(static_cast<double>(Items.size()) * P, -Beta);
    Out.Indices.push_back(Index);
    Out.Weights.push_back(W);
    MaxWeight = std::max(MaxWeight, W);
  }
  if (MaxWeight > 0.0)
    for (double &W : Out.Weights)
      W /= MaxWeight;
  return Out;
}

void PrioritizedReplayBuffer::updatePriority(size_t Index, double Priority) {
  if (Index < Priorities.size())
    Priorities[Index] = std::max(1e-6, Priority);
}
