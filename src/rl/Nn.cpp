//===- rl/Nn.cpp ----------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/Nn.h"

#include <algorithm>
#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::rl;

void AdamOptimizer::step(std::vector<Param *> &Params) {
  ++T;
  double B1c = 1.0 - std::pow(B1, static_cast<double>(T));
  double B2c = 1.0 - std::pow(B2, static_cast<double>(T));
  for (Param *P : Params) {
    auto &V = P->Value.data();
    auto &G = P->Grad.data();
    auto &M = P->AdamM.data();
    auto &S = P->AdamV.data();
    for (size_t I = 0; I < V.size(); ++I) {
      // Defensive element clip: one exploding batch must not poison the
      // Adam moments (NaNs would freeze the policy permanently).
      double Gi = G[I];
      if (!std::isfinite(Gi))
        Gi = 0.0;
      Gi = std::clamp(Gi, -100.0, 100.0);
      M[I] = static_cast<float>(B1 * M[I] + (1.0 - B1) * Gi);
      S[I] = static_cast<float>(B2 * S[I] + (1.0 - B2) * Gi * Gi);
      double MHat = M[I] / B1c;
      double VHat = S[I] / B2c;
      V[I] -= static_cast<float>(Lr * MHat / (std::sqrt(VHat) + Eps));
    }
    P->zeroGrad();
  }
}

Matrix Linear::forward(const Matrix &X) {
  LastX = X;
  Matrix Pre = matmul(X, W.Value);
  addBiasRows(Pre, B.Value);
  LastPre = Pre;
  switch (Act) {
  case Activation::Tanh:
    for (float &V : Pre.data())
      V = std::tanh(V);
    break;
  case Activation::Relu:
    for (float &V : Pre.data())
      V = V > 0.0f ? V : 0.0f;
    break;
  case Activation::None:
    break;
  }
  return Pre;
}

Matrix Linear::backward(const Matrix &dY) {
  Matrix dPre = dY;
  switch (Act) {
  case Activation::Tanh:
    for (size_t I = 0; I < dPre.data().size(); ++I) {
      float T = std::tanh(LastPre.data()[I]);
      dPre.data()[I] *= 1.0f - T * T;
    }
    break;
  case Activation::Relu:
    for (size_t I = 0; I < dPre.data().size(); ++I)
      if (LastPre.data()[I] <= 0.0f)
        dPre.data()[I] = 0.0f;
    break;
  case Activation::None:
    break;
  }
  // Accumulate parameter grads.
  Matrix dW = matmulTransA(LastX, dPre);
  for (size_t I = 0; I < dW.data().size(); ++I)
    W.Grad.data()[I] += dW.data()[I];
  Matrix dB = sumRows(dPre);
  for (size_t I = 0; I < dB.data().size(); ++I)
    B.Grad.data()[I] += dB.data()[I];
  return matmulTransB(dPre, W.Value);
}

Mlp::Mlp(const std::vector<size_t> &Sizes, Activation Hidden, uint64_t Seed) {
  Rng Gen(Seed);
  assert(Sizes.size() >= 2 && "MLP needs at least input and output sizes");
  for (size_t I = 0; I + 1 < Sizes.size(); ++I) {
    bool IsLast = I + 2 == Sizes.size();
    Layers.emplace_back(Sizes[I], Sizes[I + 1],
                        IsLast ? Activation::None : Hidden, Gen);
  }
}

Matrix Mlp::forward(const Matrix &X) {
  Matrix Cur = X;
  for (Linear &L : Layers)
    Cur = L.forward(Cur);
  return Cur;
}

Matrix Mlp::backward(const Matrix &dY) {
  Matrix Cur = dY;
  for (size_t I = Layers.size(); I-- > 0;)
    Cur = Layers[I].backward(Cur);
  return Cur;
}

std::vector<Param *> Mlp::params() {
  std::vector<Param *> Out;
  for (Linear &L : Layers) {
    Out.push_back(&L.W);
    Out.push_back(&L.B);
  }
  return Out;
}

void Mlp::copyFrom(const Mlp &Other) {
  assert(Layers.size() == Other.Layers.size() && "MLP shape mismatch");
  for (size_t I = 0; I < Layers.size(); ++I) {
    Layers[I].W.Value = Other.Layers[I].W.Value;
    Layers[I].B.Value = Other.Layers[I].B.Value;
  }
}

std::vector<float> Mlp::forward1(const std::vector<float> &X) {
  Matrix In(1, X.size());
  std::copy(X.begin(), X.end(), In.data().begin());
  Matrix Out = forward(In);
  return Out.data();
}
