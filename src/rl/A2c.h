//===- rl/A2c.h - Advantage Actor-Critic ------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synchronous advantage actor-critic (A2C, the synchronous form of Mnih
/// et al.'s A3C) — one of the four Table VI agents: single-epoch policy
/// gradient with bootstrapped advantages, no ratio clipping.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_A2C_H
#define COMPILER_GYM_RL_A2C_H

#include "rl/Agent.h"
#include "rl/Nn.h"

namespace compiler_gym {
namespace rl {

/// A2C hyperparameters.
struct A2cConfig {
  size_t ObsDim = 0;
  size_t NumActions = 0;
  size_t HiddenSize = 64;
  size_t EpisodesPerBatch = 4;
  double Gamma = 0.99;
  double LearningRate = 7e-4;
  double EntropyCoef = 0.01;
  double ValueCoef = 0.5;
  size_t MaxEpisodeSteps = 45;
  uint64_t Seed = 0xA2C5EED;
};

class A2cAgent : public Agent {
public:
  explicit A2cAgent(const A2cConfig &Config);

  std::string name() const override { return "A2C"; }
  Status train(core::Env &E, int NumEpisodes,
               const ProgressFn &Progress = {}) override;
  int act(const std::vector<float> &Obs) override;
  size_t maxEpisodeSteps() const override { return Config.MaxEpisodeSteps; }

private:
  void update(const std::vector<Trajectory> &Batch);

  A2cConfig Config;
  Mlp Policy;
  Mlp Value;
  AdamOptimizer Optimizer;
  Rng Gen;
};

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_A2C_H
