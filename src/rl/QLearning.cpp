//===- rl/QLearning.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/QLearning.h"

#include "util/Hash.h"

#include <algorithm>
#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::rl;

QLearningAgent::QLearningAgent(const QLearningConfig &Config)
    : Config(Config), Gen(Config.Seed) {
  assert(Config.NumActions > 0 && "QLearningConfig requires NumActions");
}

uint64_t QLearningAgent::key(const std::vector<float> &Obs) const {
  // Coarse discretization keeps the table small: round to one decimal.
  uint64_t H = 0xCBF29CE484222325ull;
  for (float V : Obs) {
    int64_t Q = static_cast<int64_t>(std::lround(V * 10.0f));
    H = hashCombine(H, static_cast<uint64_t>(Q));
  }
  return H;
}

std::vector<double> &QLearningAgent::row(uint64_t Key) {
  auto It = Table.find(Key);
  if (It != Table.end())
    return It->second;
  return Table.emplace(Key, std::vector<double>(Config.NumActions, 0.0))
      .first->second;
}

int QLearningAgent::act(const std::vector<float> &Obs) {
  std::vector<double> &Q = row(key(Obs));
  return static_cast<int>(std::max_element(Q.begin(), Q.end()) - Q.begin());
}

Status QLearningAgent::train(core::Env &E, int NumEpisodes,
                             const ProgressFn &Progress) {
  for (int Episode = 0; Episode < NumEpisodes; ++Episode) {
    CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
    std::vector<float> State = squashObservation(Obs.Ints);
    double Total = 0.0;
    for (size_t Step = 0; Step < Config.MaxEpisodeSteps; ++Step) {
      uint64_t Key = key(State);
      int Action = Gen.chance(Config.Epsilon)
                       ? static_cast<int>(Gen.bounded(Config.NumActions))
                       : act(State);
      CG_ASSIGN_OR_RETURN(core::StepResult R, E.step(Action));
      std::vector<float> Next = squashObservation(R.Obs.Ints);
      std::vector<double> &NextQ = row(key(Next));
      double Best = *std::max_element(NextQ.begin(), NextQ.end());
      std::vector<double> &Q = row(Key);
      double Target = R.Reward + (R.Done ? 0.0 : Config.Gamma * Best);
      Q[Action] += Config.LearningRate * (Target - Q[Action]);
      Total += R.Reward;
      State = std::move(Next);
      if (R.Done)
        break;
    }
    if (Progress)
      Progress(Episode, Total);
  }
  return Status::ok();
}
