//===- rl/Dqn.cpp ---------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/Dqn.h"

#include <algorithm>
#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::rl;

DqnAgent::DqnAgent(const DqnConfig &Config)
    : Config(Config),
      Q({Config.ObsDim, Config.HiddenSize, Config.HiddenSize,
         Config.NumActions},
        Activation::Relu, Config.Seed),
      QTarget({Config.ObsDim, Config.HiddenSize, Config.HiddenSize,
               Config.NumActions},
              Activation::Relu, Config.Seed),
      Optimizer(Config.LearningRate),
      Replay(Config.ReplayCapacity), Gen(Config.Seed ^ 0xE1) {
  assert(Config.ObsDim > 0 && Config.NumActions > 0 &&
         "DqnConfig requires ObsDim and NumActions");
  QTarget.copyFrom(Q);
}

double DqnAgent::epsilon() const {
  double Frac = std::min(1.0, static_cast<double>(TotalSteps) /
                                  Config.EpsilonDecaySteps);
  return Config.EpsilonStart +
         Frac * (Config.EpsilonEnd - Config.EpsilonStart);
}

int DqnAgent::act(const std::vector<float> &Obs) {
  return argmax(Q.forward1(Obs));
}

Status DqnAgent::train(core::Env &E, int NumEpisodes,
                       const ProgressFn &Progress) {
  for (int Episode = 0; Episode < NumEpisodes; ++Episode) {
    CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
    std::vector<float> State = squashObservation(Obs.Ints);
    double Total = 0.0;
    for (size_t Step = 0; Step < Config.MaxEpisodeSteps; ++Step) {
      int Action;
      if (Gen.chance(epsilon()))
        Action = static_cast<int>(Gen.bounded(Config.NumActions));
      else
        Action = argmax(Q.forward1(State));
      CG_ASSIGN_OR_RETURN(core::StepResult R, E.step(Action));
      std::vector<float> Next = squashObservation(R.Obs.Ints);
      Replay.add({State, Action, R.Reward, Next, R.Done},
                 /*Priority=*/1.0 + std::abs(R.Reward));
      Total += R.Reward;
      State = std::move(Next);
      ++TotalSteps;
      if (TotalSteps >= Config.WarmupSteps &&
          TotalSteps % Config.LearnEverySteps == 0)
        learnStep();
      if (R.Done)
        break;
    }
    if (Progress)
      Progress(Episode, Total);
  }
  return Status::ok();
}

void DqnAgent::learnStep() {
  size_t N = std::min(Config.BatchSize, Replay.size());
  if (N == 0)
    return;
  PrioritizedReplayBuffer::Sample S = Replay.sample(N, Gen);

  Matrix X(N, Config.ObsDim), XNext(N, Config.ObsDim);
  for (size_t I = 0; I < N; ++I) {
    const Transition &T = Replay.at(S.Indices[I]);
    std::copy(T.Obs.begin(), T.Obs.end(), X.rowPtr(I));
    std::copy(T.NextObs.begin(), T.NextObs.end(), XNext.rowPtr(I));
  }

  // Double DQN targets: argmax from the online net, value from the target.
  Matrix QNextOnline = Q.forward(XNext);
  Matrix QNextTarget = QTarget.forward(XNext);
  std::vector<double> Targets(N);
  for (size_t I = 0; I < N; ++I) {
    const Transition &T = Replay.at(S.Indices[I]);
    double Target = T.Reward;
    if (!T.Done) {
      std::vector<float> Row(QNextOnline.rowPtr(I),
                             QNextOnline.rowPtr(I) + Config.NumActions);
      int Best = argmax(Row);
      Target += Config.Gamma *
                static_cast<double>(QNextTarget.at(I, Best));
    }
    Targets[I] = Target;
  }

  Matrix QValues = Q.forward(X); // Re-forward to cache activations for X.
  Matrix dQ(N, Config.NumActions);
  for (size_t I = 0; I < N; ++I) {
    const Transition &T = Replay.at(S.Indices[I]);
    double Td = static_cast<double>(QValues.at(I, T.Action)) - Targets[I];
    Replay.updatePriority(S.Indices[I], std::abs(Td));
    dQ.at(I, T.Action) = static_cast<float>(
        S.Weights[I] * 2.0 * Td / static_cast<double>(N));
  }
  Q.backward(dQ);
  std::vector<Param *> Params = Q.params();
  Optimizer.step(Params);

  if (++Updates % Config.TargetSyncEverySteps == 0)
    QTarget.copyFrom(Q);
}
