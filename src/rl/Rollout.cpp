//===- rl/Rollout.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/Rollout.h"

#include "util/Hash.h"

using namespace compiler_gym;
using namespace compiler_gym::rl;

namespace {

/// The shared policy-rollout loop over an already-reset environment whose
/// initial observation squashed to \p State.
StatusOr<Trajectory> runEpisode(core::Env &E, const rl::PolicyFn &Policy,
                                const rl::ValueFn &Value, size_t MaxSteps,
                                Rng &Gen, std::vector<float> State) {
  Trajectory Traj;
  for (size_t Step = 0; Step < MaxSteps; ++Step) {
    std::vector<float> Logits = Policy(State);
    int Action = sampleCategorical(Logits, Gen);
    double Lp = logProb(Logits, Action);
    double V = Value ? Value(State) : 0.0;

    CG_ASSIGN_OR_RETURN(core::StepResult R, E.step(Action));
    Traj.Observations.push_back(State);
    Traj.Actions.push_back(Action);
    Traj.Rewards.push_back(R.Reward);
    Traj.LogProbs.push_back(Lp);
    Traj.Values.push_back(V);
    Traj.TotalReward += R.Reward;
    State = squashObservation(R.Obs.Ints);
    if (R.Done)
      break;
  }
  return Traj;
}

} // namespace

StatusOr<Trajectory> rl::collectEpisode(core::Env &E, const PolicyFn &Policy,
                                        const ValueFn &Value, size_t MaxSteps,
                                        Rng &Gen) {
  CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
  return runEpisode(E, Policy, Value, MaxSteps, Gen,
                    squashObservation(Obs.Ints));
}

StatusOr<std::vector<Trajectory>>
rl::collectEpisodes(runtime::EnvPool &Pool, const PolicyFn &Policy,
                    const ValueFn &Value, size_t MaxSteps, size_t Episodes,
                    uint64_t Seed) {
  std::vector<Trajectory> Out(Episodes);
  // One RNG stream per worker; worker W's episodes are sampled only from
  // Gens[W], on W's pool thread.
  std::vector<Rng> Gens;
  Gens.reserve(Pool.size());
  for (size_t W = 0; W < Pool.size(); ++W)
    Gens.emplace_back(hashCombine(Seed, W + 1));
  CG_RETURN_IF_ERROR(Pool.collect(
      Episodes,
      [&](size_t W, size_t Episode, core::CompilerEnv &E,
          const service::Observation &Obs) -> Status {
        CG_ASSIGN_OR_RETURN(Out[Episode],
                            runEpisode(E, Policy, Value, MaxSteps, Gens[W],
                                       squashObservation(Obs.Ints)));
        return Status::ok();
      }));
  return Out;
}

std::vector<double> rl::discountedReturns(const std::vector<double> &Rewards,
                                          double Gamma) {
  std::vector<double> Returns(Rewards.size());
  double Acc = 0.0;
  for (size_t I = Rewards.size(); I-- > 0;) {
    Acc = Rewards[I] + Gamma * Acc;
    Returns[I] = Acc;
  }
  return Returns;
}

std::vector<double> rl::gaeAdvantages(const std::vector<double> &Rewards,
                                      const std::vector<double> &Values,
                                      double Gamma, double Lambda) {
  std::vector<double> Adv(Rewards.size());
  double Acc = 0.0;
  for (size_t I = Rewards.size(); I-- > 0;) {
    double NextValue = (I + 1 < Values.size()) ? Values[I + 1] : 0.0;
    double Delta = Rewards[I] + Gamma * NextValue - Values[I];
    Acc = Delta + Gamma * Lambda * Acc;
    Adv[I] = Acc;
  }
  return Adv;
}
