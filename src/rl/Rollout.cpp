//===- rl/Rollout.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/Rollout.h"

using namespace compiler_gym;
using namespace compiler_gym::rl;

StatusOr<Trajectory> rl::collectEpisode(core::Env &E, const PolicyFn &Policy,
                                        const ValueFn &Value, size_t MaxSteps,
                                        Rng &Gen) {
  Trajectory Traj;
  CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
  std::vector<float> State = squashObservation(Obs.Ints);
  for (size_t Step = 0; Step < MaxSteps; ++Step) {
    std::vector<float> Logits = Policy(State);
    int Action = sampleCategorical(Logits, Gen);
    double Lp = logProb(Logits, Action);
    double V = Value ? Value(State) : 0.0;

    CG_ASSIGN_OR_RETURN(core::StepResult R, E.step(Action));
    Traj.Observations.push_back(State);
    Traj.Actions.push_back(Action);
    Traj.Rewards.push_back(R.Reward);
    Traj.LogProbs.push_back(Lp);
    Traj.Values.push_back(V);
    Traj.TotalReward += R.Reward;
    State = squashObservation(R.Obs.Ints);
    if (R.Done)
      break;
  }
  return Traj;
}

std::vector<double> rl::discountedReturns(const std::vector<double> &Rewards,
                                          double Gamma) {
  std::vector<double> Returns(Rewards.size());
  double Acc = 0.0;
  for (size_t I = Rewards.size(); I-- > 0;) {
    Acc = Rewards[I] + Gamma * Acc;
    Returns[I] = Acc;
  }
  return Returns;
}

std::vector<double> rl::gaeAdvantages(const std::vector<double> &Rewards,
                                      const std::vector<double> &Values,
                                      double Gamma, double Lambda) {
  std::vector<double> Adv(Rewards.size());
  double Acc = 0.0;
  for (size_t I = Rewards.size(); I-- > 0;) {
    double NextValue = (I + 1 < Values.size()) ? Values[I + 1] : 0.0;
    double Delta = Rewards[I] + Gamma * NextValue - Values[I];
    Acc = Delta + Gamma * Lambda * Acc;
    Adv[I] = Acc;
  }
  return Adv;
}
