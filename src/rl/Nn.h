//===- rl/Nn.h - MLPs with manual backprop and Adam --------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feedforward networks for the RL agents: Linear layers, tanh/ReLU
/// activations, explicit backward passes, and an Adam optimizer. Networks
/// are deterministic given their seed.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RL_NN_H
#define COMPILER_GYM_RL_NN_H

#include "rl/Tensor.h"

#include <memory>
#include <vector>

namespace compiler_gym {
namespace rl {

/// A trainable parameter with gradient and Adam state.
struct Param {
  Matrix Value;
  Matrix Grad;
  Matrix AdamM;
  Matrix AdamV;

  explicit Param(Matrix V)
      : Value(std::move(V)), Grad(Value.rows(), Value.cols()),
        AdamM(Value.rows(), Value.cols()), AdamV(Value.rows(), Value.cols()) {}

  void zeroGrad() { Grad.fill(0.0f); }
};

/// Adam update over a set of parameters.
class AdamOptimizer {
public:
  explicit AdamOptimizer(double LearningRate = 1e-3, double Beta1 = 0.9,
                         double Beta2 = 0.999, double Epsilon = 1e-8)
      : Lr(LearningRate), B1(Beta1), B2(Beta2), Eps(Epsilon) {}

  /// Applies one update to every param in \p Params and clears grads.
  void step(std::vector<Param *> &Params);

  void setLearningRate(double NewLr) { Lr = NewLr; }

private:
  double Lr, B1, B2, Eps;
  int64_t T = 0;
};

/// Activation kinds.
enum class Activation { Tanh, Relu, None };

/// y = act(x W + b), with cached inputs for backward.
class Linear {
public:
  Linear(size_t In, size_t Out, Activation Act, Rng &Gen)
      : W(Matrix::xavier(In, Out, Gen)), B(Matrix(1, Out)), Act(Act) {}

  /// Forward over a batch (rows = samples).
  Matrix forward(const Matrix &X);

  /// Backward: dY is the loss gradient at this layer's output; returns the
  /// gradient at the input. Accumulates into W.Grad/B.Grad.
  Matrix backward(const Matrix &dY);

  Param W;
  Param B;

private:
  Activation Act;
  Matrix LastX;   ///< Cached input.
  Matrix LastPre; ///< Cached pre-activation.
};

/// A stack of Linear layers: hidden layers use \p Hidden activation, the
/// final layer is linear.
class Mlp {
public:
  Mlp(const std::vector<size_t> &Sizes, Activation Hidden, uint64_t Seed);

  Matrix forward(const Matrix &X);
  /// Backward from output gradient; returns input gradient.
  Matrix backward(const Matrix &dY);

  std::vector<Param *> params();

  /// Copies parameter values from \p Other (target networks).
  void copyFrom(const Mlp &Other);

  /// Convenience: forward over one sample.
  std::vector<float> forward1(const std::vector<float> &X);

private:
  std::vector<Linear> Layers;
};

} // namespace rl
} // namespace compiler_gym

#endif // COMPILER_GYM_RL_NN_H
