//===- core/CompilerEnv.h - The client-side environment ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CompilerEnv: the frontend environment over a compiler service — the
/// C++ analogue of the paper's Listing 1 object. It owns the RPC client,
/// surfaces the backend's typed space catalogue through the views API,
/// computes rewards from backend observations, tracks episode state, and
/// implements the runtime's fault-tolerance contract: when the backend
/// crashes or hangs, the env restarts the service and replays its action
/// history transparently (§IV-B).
///
/// A step() can request any number of observation spaces and reward
/// spaces; everything — actions, observations, reward metrics — travels in
/// a single RPC, and the results land in the view caches so post-step
/// queries are free.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_COMPILERENV_H
#define COMPILER_GYM_CORE_COMPILERENV_H

#include "core/Env.h"
#include "core/EnvState.h"
#include "core/Space.h"
#include "service/ServiceClient.h"

#include <atomic>
#include <memory>
#include <optional>
#include <unordered_map>

namespace compiler_gym {
namespace core {

/// Construction options (the keyword arguments of make()).
struct CompilerEnvOptions {
  std::string CompilerName = "llvm";  ///< Backend service name.
  std::string EnvId = "llvm-v0";      ///< Frontend identifier.
  std::string BenchmarkUri = "benchmark://cbench-v1/qsort";
  std::string ObservationSpace = "Autophase"; ///< Default obs; "" = none.
  std::string RewardSpace = "IrInstructionCount"; ///< "" = no reward.
  std::string ActionSpaceName;        ///< "" = backend default.
  service::FaultPlan Faults;          ///< Backend fault injection (tests).
  service::ClientOptions Client;
  service::TransportFaults TransportFaultPlan; ///< Channel fault injection.
  bool UseFlakyTransport = false;
};

/// The concrete Gym environment over a compiler service.
class CompilerEnv : public Env {
public:
  /// Creates an env with a dedicated backend service (one "process").
  static StatusOr<std::unique_ptr<CompilerEnv>>
  create(const CompilerEnvOptions &Opts);

  /// Attaches an env to an existing service shard (runtime::ServiceBroker):
  /// the service and transport are shared with other environments, but the
  /// env gets a private ServiceClient so call policy and telemetry stay
  /// per-env. Shared-service envs treat "session vanished" (another env or
  /// the broker restarted the shard) as recoverable: they re-establish the
  /// session and replay their action history instead of failing.
  static StatusOr<std::unique_ptr<CompilerEnv>>
  attach(const CompilerEnvOptions &Opts,
         std::shared_ptr<service::CompilerService> Service,
         std::shared_ptr<service::Transport> Channel);

  /// Connects an env to a remote service over \p Channel (typically a
  /// net::SocketTransport dialed at a gateway or standalone server). The
  /// env has no in-process service handle: crash recovery degrades to
  /// session re-establishment (snapshot restore, then action replay) and
  /// never attempts a local restart — the far end heals itself. Auth, if
  /// any, rides in Opts.Client.AuthToken.
  static StatusOr<std::unique_ptr<CompilerEnv>>
  connect(const CompilerEnvOptions &Opts,
          std::shared_ptr<service::Transport> Channel);

  ~CompilerEnv() override;

  // -- Env interface ---------------------------------------------------------
  using Env::step;
  StatusOr<service::Observation> reset() override;
  StatusOr<StepResult> step(const std::vector<int> &Actions) override;
  const service::ActionSpace &actionSpace() const override { return Space; }
  size_t episodeLength() const override { return State.Actions.size(); }
  double episodeReward() const override { return State.CumulativeReward; }
  uint64_t stateEpoch() const override { return Epoch; }
  StatusOr<std::vector<service::Observation>>
  rawObservations(const std::vector<std::string> &Spaces) override;

  // -- Multi-space steps (§III-B5) -------------------------------------------
  /// Applies the actions and additionally returns the named observation
  /// spaces (backend or derived) and reward spaces, all computed against
  /// the post-step state in the same single RPC.
  StatusOr<StepResult>
  step(const std::vector<int> &Actions,
       const std::vector<std::string> &ObsSpaces,
       const std::vector<std::string> &RewardSpaces = {});

  /// Steps the GCC-style direct action space: one action carrying a full
  /// choice vector. Supports the same multi-space selection as step().
  StatusOr<StepResult>
  stepDirect(const std::vector<int64_t> &Choices,
             const std::vector<std::string> &ObsSpaces = {},
             const std::vector<std::string> &RewardSpaces = {});

  // -- CompilerGym extensions -------------------------------------------------
  /// Switches benchmark for the next reset(). The switch is *pending* until
  /// reset() applies it: benchmark() keeps reporting the URI the episode
  /// actually runs on (recovery replays also use the applied URI).
  void setBenchmark(const std::string &Uri) { PendingBenchmarkUri = Uri; }
  /// The benchmark the current episode runs on (the last applied URI).
  const std::string &benchmark() const { return Opts.BenchmarkUri; }
  /// The URI the next reset() will switch to.
  const std::string &pendingBenchmark() const { return PendingBenchmarkUri; }

  /// Switches the default observation space returned by reset()/step().
  Status setObservationSpace(const std::string &Name);
  const std::string &observationSpace() const {
    return Opts.ObservationSpace;
  }

  /// Switches the active reward space (takes effect immediately). Switching
  /// mid-episode re-primes the space's bookkeeping from a fresh metric
  /// observation, so the next step's delta is relative to the current
  /// state, never to another metric's last value.
  Status setRewardSpace(const std::string &Name);
  const std::string &rewardSpace() const { return Opts.RewardSpace; }

  /// Lightweight deep copy (§III-B6): the backend forks the session; the
  /// clone shares the service but owns independent state, including copies
  /// of the space registry, view caches and reward bookkeeping.
  StatusOr<std::unique_ptr<CompilerEnv>> fork();

  /// Cross-service fork: re-points this env at \p Parent's exact state —
  /// benchmark, episode history, reward bookkeeping and view caches —
  /// without stepping the parent. Starts a fresh session restored from the
  /// parent's content-addressed snapshot (O(1) in module size, zero
  /// actions replayed); when no snapshot survives, falls back to replaying
  /// the parent's action history. Unlike fork(), which shares the parent's
  /// service and client, rebase() keeps this env's own service/client, so
  /// rebased envs step concurrently with each other and with the parent
  /// (EnvPool candidate fan-out). The parent is only read, never mutated,
  /// and concurrent rebases from one parent are safe.
  Status rebase(CompilerEnv &Parent);

  /// Current serializable episode state.
  const EnvState &state() const { return State; }

  /// Writes the current IR ("Ir" observation) to \p Path, the analogue of
  /// env.write_bitcode() in Listing 1.
  Status writeIr(const std::string &Path);

  /// Fault-tolerance telemetry. Relaxed atomic: recoveries happen on
  /// pool worker threads while EnvPool::stats() reads from the caller.
  uint64_t serviceRecoveries() const {
    return Recoveries.load(std::memory_order_relaxed);
  }
  service::ServiceClient &client() { return *Client; }

  /// Wire-delta telemetry: observation replies that arrived as deltas and
  /// were reconstructed against a retained base.
  uint64_t deltaRepliesReceived() const { return DeltaReplies; }

private:
  CompilerEnv(CompilerEnvOptions Opts,
              std::shared_ptr<service::CompilerService> Service,
              std::shared_ptr<service::ServiceClient> Client);

  /// The backend spaces one step RPC must carry, plus the requested
  /// obs/reward space lists it will demux afterwards.
  struct StepPlan {
    std::vector<std::string> Wire; ///< Deduped backend spaces for the RPC.
    std::vector<std::string> ObsSpaces;
    std::vector<std::string> RewardSpaces;
  };

  /// Validates the requested spaces and computes the wire set: the default
  /// observation space, every requested observation space's backend
  /// closure, and each reward space's metric (plus baseline while the
  /// space is unprimed).
  StatusOr<StepPlan> planStep(const std::vector<std::string> &ObsSpaces,
                              const std::vector<std::string> &RewardSpaces);

  /// Starts a backend session for the applied benchmark and refreshes the
  /// registry's backend space catalogue. A nonzero \p RestoreStateKey asks
  /// the backend to restore that snapshot state; \p Restored (optional)
  /// reports whether it did — when false the session sits at the initial
  /// state and the caller must replay.
  Status startSession(uint64_t RestoreStateKey = 0, bool *Restored = nullptr);

  /// Restarts the crashed/hung service and re-establishes the episode
  /// state: from the backend's snapshot of the last step's state key when
  /// one survives (zero actions replayed), else by replaying the episode.
  Status recover();

  /// Issues \p Req with recovery-and-retry: a recoverable failure
  /// (crash/hang/session loss) restarts the service, replays the episode,
  /// refreshes the session id and retries, for a few rounds. The single
  /// copy of the recovery-retry invariant for step-shaped RPCs. Also the
  /// single copy of the wire-delta handshake: retained base keys are
  /// advertised on the request, and delta replies are reconstructed to
  /// full observations before the reply is returned.
  StatusOr<service::StepReply> callStepWithRecovery(service::StepRequest Req);

  /// Reconstructs delta-encoded reply observations against WireBases and
  /// retains each delta-eligible full value (with its state key) as the
  /// base for the next request.
  Status settleWireObservations(service::StepReply &Reply);

  /// Issues one step RPC (actions + the plan's wire spaces) with
  /// recovery-and-retry. On return the actions have been applied by the
  /// backend — callers commit them to the episode history *before*
  /// demuxing, so a failing derived-space computation cannot desync the
  /// recorded episode from the live session.
  StatusOr<service::StepReply>
  stepRpcWithRecovery(std::vector<service::Action> Actions,
                      const StepPlan &Plan);

  /// Advances the epoch (when actions ran), primes the observation view
  /// from the reply, and demuxes the default observation, the requested
  /// spaces and — when \p SettleRewards — the active + requested reward
  /// spaces. reset() passes false: it primes bookkeeping instead, so
  /// absolute reward spaces (loop_tool FLOPs) do not pay their initial
  /// measurement into the episode reward.
  StatusOr<StepResult> demuxReply(service::StepReply Reply,
                                  const StepPlan &Plan, bool HadActions,
                                  bool SettleRewards);

  CompilerEnvOptions Opts;
  std::shared_ptr<service::CompilerService> Service;
  std::shared_ptr<service::ServiceClient> Client;
  service::ActionSpace Space;
  uint64_t SessionId = 0;
  bool SessionLive = false;
  EnvState State;
  /// Bumped on reset and every state-changing step; the views key their
  /// caches on it.
  uint64_t Epoch = 0;
  std::atomic<uint64_t> Recoveries{0};
  bool SharedService = false; ///< attach()-ed to a broker shard.
  std::string PendingBenchmarkUri; ///< Applied by the next reset().
  std::vector<service::Action> DirectHistory; ///< For replay (direct space).
  /// SessionStateKey of the last committed step reply (content-addressed).
  /// Names the snapshot a recovery restores instead of replaying; 0 until
  /// the first step (or when the backend has no state identity).
  uint64_t LastStateKey = 0;
  std::optional<datasets::Benchmark> CachedBenchmark; ///< Resolve cache.
  /// Client half of the wire-delta handshake: per delta-eligible space,
  /// the newest full observation received, carrying its StateKey. Keys are
  /// content-addressed (module hash + benchmark URI), so entries stay
  /// valid across fork(), reset() to the same benchmark, and
  /// crash-recovery replay.
  std::unordered_map<std::string, service::Observation> WireBases;
  uint64_t DeltaReplies = 0;
};

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_COMPILERENV_H
