//===- core/CompilerEnv.h - The client-side environment ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CompilerEnv: the frontend environment over a compiler service — the
/// C++ analogue of the paper's Listing 1 object. It owns the RPC client,
/// computes rewards from backend observations, tracks episode state, and
/// implements the runtime's fault-tolerance contract: when the backend
/// crashes or hangs, the env restarts the service and replays its action
/// history transparently (§IV-B).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_COMPILERENV_H
#define COMPILER_GYM_CORE_COMPILERENV_H

#include "core/Env.h"
#include "core/EnvState.h"
#include "core/Space.h"
#include "service/ServiceClient.h"

#include <memory>
#include <optional>

namespace compiler_gym {
namespace core {

/// Construction options (the keyword arguments of make()).
struct CompilerEnvOptions {
  std::string CompilerName = "llvm";  ///< Backend service name.
  std::string EnvId = "llvm-v0";      ///< Frontend identifier.
  std::string BenchmarkUri = "benchmark://cbench-v1/qsort";
  std::string ObservationSpace = "Autophase"; ///< Default obs; "" = none.
  std::string RewardSpace = "IrInstructionCount"; ///< "" = no reward.
  std::string ActionSpaceName;        ///< "" = backend default.
  service::FaultPlan Faults;          ///< Backend fault injection (tests).
  service::ClientOptions Client;
  service::TransportFaults TransportFaultPlan; ///< Channel fault injection.
  bool UseFlakyTransport = false;
};

/// The concrete Gym environment over a compiler service.
class CompilerEnv : public Env {
public:
  /// Creates an env with a dedicated backend service (one "process").
  static StatusOr<std::unique_ptr<CompilerEnv>>
  create(const CompilerEnvOptions &Opts);

  /// Attaches an env to an existing service shard (runtime::ServiceBroker):
  /// the service and transport are shared with other environments, but the
  /// env gets a private ServiceClient so call policy and telemetry stay
  /// per-env. Shared-service envs treat "session vanished" (another env or
  /// the broker restarted the shard) as recoverable: they re-establish the
  /// session and replay their action history instead of failing.
  static StatusOr<std::unique_ptr<CompilerEnv>>
  attach(const CompilerEnvOptions &Opts,
         std::shared_ptr<service::CompilerService> Service,
         std::shared_ptr<service::Transport> Channel);

  ~CompilerEnv() override;

  // -- Env interface ---------------------------------------------------------
  using Env::step;
  StatusOr<service::Observation> reset() override;
  StatusOr<StepResult> step(const std::vector<int> &Actions) override;
  const service::ActionSpace &actionSpace() const override { return Space; }
  StatusOr<service::Observation> observe(const std::string &Space) override;
  size_t episodeLength() const override { return State.Actions.size(); }
  double episodeReward() const override { return State.CumulativeReward; }

  // -- CompilerGym extensions -------------------------------------------------
  /// Switches benchmark for the next reset().
  void setBenchmark(const std::string &Uri) { Opts.BenchmarkUri = Uri; }
  const std::string &benchmark() const { return Opts.BenchmarkUri; }

  /// Switches the reward space (takes effect immediately).
  Status setRewardSpace(const std::string &Name);

  /// Lightweight deep copy (§III-B6): the backend forks the session; the
  /// clone shares the service but owns independent state.
  StatusOr<std::unique_ptr<CompilerEnv>> fork();

  /// Steps the GCC-style direct action space: one action carrying a full
  /// choice vector.
  StatusOr<StepResult> stepDirect(const std::vector<int64_t> &Choices);

  /// Current serializable episode state.
  const EnvState &state() const { return State; }

  /// Writes the current IR ("Ir" observation) to \p Path, the analogue of
  /// env.write_bitcode() in Listing 1.
  Status writeIr(const std::string &Path);

  /// Fault-tolerance telemetry.
  uint64_t serviceRecoveries() const { return Recoveries; }
  service::ServiceClient &client() { return *Client; }

private:
  CompilerEnv(CompilerEnvOptions Opts,
              std::shared_ptr<service::CompilerService> Service,
              std::shared_ptr<service::ServiceClient> Client);

  /// Starts a fresh backend session for the current benchmark.
  Status startSession();

  /// Restarts the crashed/hung service and replays the episode.
  Status recover();

  /// One step RPC (no recovery). Empty action list = observation only.
  StatusOr<service::StepReply>
  stepRpc(const std::vector<service::Action> &Actions);

  /// Issues a step with recovery-and-retry on backend death.
  StatusOr<StepResult>
  stepWithRecovery(const std::vector<service::Action> &Actions);

  /// Computes the reward from a step reply's trailing observations.
  double rewardFromMetrics(double MetricValue);

  CompilerEnvOptions Opts;
  std::shared_ptr<service::CompilerService> Service;
  std::shared_ptr<service::ServiceClient> Client;
  service::ActionSpace Space;
  std::vector<service::ObservationSpaceInfo> ObsSpaces;
  std::optional<RewardSpec> Reward;
  uint64_t SessionId = 0;
  bool SessionLive = false;
  EnvState State;
  // Reward bookkeeping.
  double InitialMetric = 0.0;
  double PreviousMetric = 0.0;
  double BaselineMetric = 0.0;
  bool HaveBaseline = false;
  uint64_t Recoveries = 0;
  bool SharedService = false; ///< attach()-ed to a broker shard.
  std::vector<service::Action> DirectHistory; ///< For replay (direct space).
  std::optional<datasets::Benchmark> CachedBenchmark; ///< Resolve cache.
};

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_COMPILERENV_H
