//===- core/Leaderboard.h - Result aggregation ------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A file-backed leaderboard for aggregating and ranking results, the
/// offline analogue of the paper's public leaderboards: submissions carry
/// a technique name, the serialized EnvState that produced the result, and
/// the wall time spent. Submissions replay-validate before ranking.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_LEADERBOARD_H
#define COMPILER_GYM_CORE_LEADERBOARD_H

#include "core/EnvState.h"

#include <string>
#include <vector>

namespace compiler_gym {
namespace core {

/// One leaderboard entry.
struct LeaderboardEntry {
  std::string Technique;
  EnvState State;
  double WalltimeSeconds = 0.0;
  bool Validated = false;
};

/// CSV-file-backed leaderboard.
class Leaderboard {
public:
  explicit Leaderboard(std::string Path) : Path(std::move(Path)) {}

  /// Appends a submission.
  Status submit(const LeaderboardEntry &Entry);

  /// Loads all entries.
  StatusOr<std::vector<LeaderboardEntry>> entries() const;

  /// Entries for one benchmark, best (highest cumulative reward) first.
  StatusOr<std::vector<LeaderboardEntry>>
  ranking(const std::string &BenchmarkUri) const;

private:
  std::string Path;
};

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_LEADERBOARD_H
