//===- core/Views.h - Typed observation & reward views ----------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The views API of §III-B: `env.observation()["Ir"]` and
/// `env.reward()["IrInstructionCountOz"]`, the C++ analogue of the Python
/// frontend's ObservationView / RewardView.
///
/// ObservationView hands out typed ObservationValues, fetching lazily and
/// caching per state epoch: querying the same space twice between actions
/// costs one RPC, and spaces returned by a multi-space step() are primed
/// into the cache so post-step queries are free. Derived spaces registered
/// client-side compute through the view, so their base fetches batch and
/// cache the same way.
///
/// RewardView tracks per-reward-space bookkeeping (initial / previous /
/// baseline metric values). Each get() pays the reward accumulated since
/// that space's previous get() — the first query after reset() primes the
/// space and pays zero (or the raw metric for absolute rewards).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_VIEWS_H
#define COMPILER_GYM_CORE_VIEWS_H

#include "core/Space.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace compiler_gym {
namespace core {

class Env;

/// Lazily-fetching, epoch-cached typed observation access.
///
/// Epoch semantics: every cached entry is keyed on the owner env's
/// stateEpoch(), which advances on reset() and on every state-changing
/// step. The first access after an epoch advance drops the stale entries;
/// a value is therefore never served across a state change. (This is the
/// frontend epoch; the wire-level delta handshake keys on the backend's
/// content-addressed state key and lives in CompilerEnv, below this
/// cache — views only ever see fully reconstructed observations.)
///
/// Thread-safety: none. A view belongs to one Env and must be used from
/// the thread driving that env, like the env itself.
class ObservationView {
public:
  explicit ObservationView(Env &Owner) : Owner(Owner) {}

  ObservationView(const ObservationView &) = delete;
  ObservationView &operator=(const ObservationView &) = delete;

  /// Typed fetch of one space (backend or derived). Cached until the next
  /// action/reset changes the environment's state epoch; nondeterministic
  /// spaces (Runtime, flops) are snapshotted once per epoch — use
  /// Env::rawObservations() to force a fresh measurement.
  StatusOr<ObservationValue> get(const std::string &Space);
  StatusOr<ObservationValue> operator[](const std::string &Space) {
    return get(Space);
  }

  /// Fetches all uncached backend spaces among \p Spaces in a single RPC
  /// and computes requested derived spaces, priming the cache.
  Status prefetch(const std::vector<std::string> &Spaces);

  /// All known observation spaces (backend + derived).
  std::vector<SpaceInfo> spaces() const;

  /// Registers a client-side derived observation space. \p Dependencies
  /// names the spaces \p Fn reads; multi-space step() requests prefetch
  /// them in the same RPC.
  Status registerDerived(SpaceInfo Info, std::vector<std::string> Dependencies,
                         DerivedObservationFn Fn);
  Status unregisterDerived(const std::string &Name);

  /// Inserts \p Obs as the value of \p Space for the current state epoch
  /// (step()/reset() plumbing: reply observations land here so post-step
  /// view queries are cache hits).
  void prime(const std::string &Space, service::Observation Obs);

  /// Copies the cached values and epoch cursor from \p Other (fork()).
  void copyCacheFrom(const ObservationView &Other);

  /// Telemetry: queries served without an RPC or derived recompute.
  uint64_t cacheHits() const { return Hits; }

private:
  /// Drops stale entries when the owner's state epoch has advanced.
  void syncEpoch();
  ObservationValue wrap(const std::string &Space,
                        service::Observation Obs) const;
  /// Takes the spec by value: the user callback runs against this view and
  /// may re-enter the registry (register/unregister), which can reallocate
  /// the registry's storage under a reference.
  StatusOr<ObservationValue> computeDerived(DerivedObservationSpec D);

  Env &Owner;
  uint64_t CacheEpoch = 0;
  std::unordered_map<std::string, ObservationValue> Cache;
  std::vector<std::string> DerivedInFlight; ///< Cycle guard.
  uint64_t Hits = 0;
};

/// Per-space reward accounting over the observation view.
///
/// Thread-safety: none — same single-thread contract as ObservationView.
/// Bookkeeping is keyed per reward space, not per epoch: books persist
/// across steps (that is what makes delta rewards deltas) and are cleared
/// by reset() / re-primed by setRewardSpace().
class RewardView {
public:
  explicit RewardView(Env &Owner) : Owner(Owner) {}

  RewardView(const RewardView &) = delete;
  RewardView &operator=(const RewardView &) = delete;

  /// The reward accumulated under \p Space since this space's previous
  /// get() (or since it was primed). The first query of a space primes it:
  /// delta rewards pay 0, absolute rewards pay the raw metric.
  StatusOr<double> get(const std::string &Space);
  StatusOr<double> operator[](const std::string &Space) { return get(Space); }

  /// Registers / removes a user reward space (delegates to the registry).
  Status registerReward(RewardSpec Spec);
  Status unregisterReward(const std::string &Name);

  /// All known reward spaces (builtin + registered).
  std::vector<RewardSpec> spaces() const;

  /// Seeds \p Space's bookkeeping from the current state so the next get()
  /// pays the reward relative to here. \p Force re-primes an already-primed
  /// space (setRewardSpace() uses this when switching metrics mid-episode).
  Status prime(const std::string &Space, bool Force = false);
  bool primed(const std::string &Space) const {
    return Books.count(Space) != 0;
  }

  /// Clears all bookkeeping (reset()).
  void resetBookkeeping() { Books.clear(); }

  /// Copies bookkeeping from \p Other (fork()).
  void copyBooksFrom(const RewardView &Other) { Books = Other.Books; }

private:
  struct Book {
    double Initial = 0.0;
    double Previous = 0.0;
    double Baseline = 0.0;
  };

  /// Scalar value of a metric observation via the observation view.
  StatusOr<double> metricValue(const std::string &ObsSpace);
  StatusOr<Book *> findOrPrime(const RewardSpec &Spec, double Current,
                               bool Force);

  Env &Owner;
  std::unordered_map<std::string, Book> Books;
};

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_VIEWS_H
