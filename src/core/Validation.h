//===- core/Validation.h - Result validation --------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two validation layers of §III-B:
///  * replay validation (§III-B3) — re-executes a serialized EnvState on a
///    fresh environment and checks that rewards and final-state hashes
///    reproduce. This is the machinery that detects nondeterministic
///    compiler passes (gvn-sink);
///  * semantics validation (§III-B4) — differential-tests the optimized
///    program against the unoptimized benchmark in the IR interpreter
///    (LLVM environments only).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_VALIDATION_H
#define COMPILER_GYM_CORE_VALIDATION_H

#include "core/EnvState.h"
#include "core/Registry.h"

namespace compiler_gym {
namespace core {

/// Outcome of validating one EnvState.
struct StateValidationResult {
  bool RewardValidated = false;
  bool HashValidated = false;     ///< Same final IR hash on both replays.
  bool SemanticsValidated = false;
  bool SemanticsChecked = false;  ///< False when the env has no IR.
  std::string Error;

  bool ok() const {
    return RewardValidated && HashValidated &&
           (!SemanticsChecked || SemanticsValidated);
  }
};

/// Replays \p State twice on fresh environments and cross-checks rewards,
/// final state hashes, and (for LLVM envs) program semantics.
StatusOr<StateValidationResult> validateState(const EnvState &State,
                                              double RewardTolerance = 1e-9);

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_VALIDATION_H
