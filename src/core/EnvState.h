//===- core/EnvState.h - Episode state serialization ------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializable episode state (§III-B2): benchmark, action history and
/// cumulative reward. States round-trip through a single text line and can
/// be replayed for reproducibility validation (§III-B3) — the mechanism
/// that caught LLVM's nondeterministic -gvn-sink in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_ENVSTATE_H
#define COMPILER_GYM_CORE_ENVSTATE_H

#include "util/Status.h"

#include <string>
#include <vector>

namespace compiler_gym {
namespace core {

/// A saved episode.
struct EnvState {
  std::string EnvId;        ///< e.g. "llvm-v0".
  std::string BenchmarkUri;
  std::string RewardSpace;
  std::string ObservationSpace; ///< Active default observation space.
  std::vector<int> Actions;
  double CumulativeReward = 0.0;

  /// Single-line text form:
  /// "envId|benchmark|reward-space|obs-space|r|a0,a1,...". Lines from
  /// before the observation-space field (5 fields) still deserialize.
  std::string serialize() const;
  static StatusOr<EnvState> deserialize(const std::string &Line);

  bool operator==(const EnvState &Other) const = default;
};

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_ENVSTATE_H
