//===- core/Wrappers.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Wrappers.h"

using namespace compiler_gym;
using namespace compiler_gym::core;

void ActionSubset::rebuildSpace() {
  const service::ActionSpace &InnerSpace = Inner->actionSpace();
  Space.Name = InnerSpace.Name + "-subset";
  Space.ActionNames.clear();
  for (int Idx : Subset) {
    if (Idx >= 0 && static_cast<size_t>(Idx) < InnerSpace.ActionNames.size())
      Space.ActionNames.push_back(InnerSpace.ActionNames[Idx]);
    else
      Space.ActionNames.push_back("<invalid>");
  }
}
