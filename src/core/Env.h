//===- core/Env.h - The Gym environment interface ---------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gym.Env-equivalent interface (§III-A): reset / step / spaces, with
/// the CompilerGym extensions — multi-action (batched) steps and lazily
/// selected observation spaces (§III-B5). Wrappers (Wrappers.h) compose
/// over this interface just like gym.Wrapper.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_ENV_H
#define COMPILER_GYM_CORE_ENV_H

#include "service/Message.h"

#include <memory>
#include <string>
#include <vector>

namespace compiler_gym {
namespace core {

/// Result of one (possibly batched) step.
struct StepResult {
  service::Observation Obs; ///< The env's default observation space value.
  double Reward = 0.0;
  bool Done = false;
  std::string Info;
};

/// Abstract Gym-style environment.
class Env {
public:
  virtual ~Env();

  /// Starts a new episode; returns the initial observation.
  virtual StatusOr<service::Observation> reset() = 0;

  /// Applies the actions (one RPC for the whole batch) and returns the new
  /// observation/reward/done.
  virtual StatusOr<StepResult> step(const std::vector<int> &Actions) = 0;

  /// Single-action convenience.
  StatusOr<StepResult> step(int Action) {
    return step(std::vector<int>{Action});
  }

  /// The current action space.
  virtual const service::ActionSpace &actionSpace() const = 0;

  /// Computes an arbitrary observation of the current state (lazy
  /// observation selection).
  virtual StatusOr<service::Observation> observe(const std::string &Space) = 0;

  /// Number of actions taken this episode.
  virtual size_t episodeLength() const = 0;

  /// Cumulative reward this episode.
  virtual double episodeReward() const = 0;
};

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_ENV_H
