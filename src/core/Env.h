//===- core/Env.h - The Gym environment interface ---------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gym.Env-equivalent interface (§III-A): reset / step / spaces, with
/// the CompilerGym extensions — multi-action (batched) steps, lazily
/// selected multi-space observations fetched in one RPC (§III-B5), and the
/// typed ObservationView / RewardView frontend (`env.observation()["Ir"]`,
/// `env.reward()["IrInstructionCountOz"]`). Wrappers (Wrappers.h) compose
/// over this interface just like gym.Wrapper.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_ENV_H
#define COMPILER_GYM_CORE_ENV_H

#include "core/Space.h"
#include "core/Views.h"
#include "service/Message.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace compiler_gym {
namespace core {

/// Result of one (possibly batched, possibly multi-space) step.
struct StepResult {
  service::Observation Obs; ///< The env's default observation space value.
  double Reward = 0.0;      ///< The env's active reward space.
  bool Done = false;
  std::string Info;
  /// Extra observation spaces requested for this step, in request order —
  /// all fetched in the same RPC as the actions.
  std::vector<std::pair<std::string, ObservationValue>> Observations;
  /// Reward spaces requested for this step, in request order.
  std::vector<std::pair<std::string, double>> Rewards;
};

/// Abstract Gym-style environment.
class Env {
public:
  virtual ~Env();

  /// Starts a new episode; returns the initial observation.
  virtual StatusOr<service::Observation> reset() = 0;

  /// Applies the actions (one RPC for the whole batch) and returns the new
  /// observation/reward/done.
  virtual StatusOr<StepResult> step(const std::vector<int> &Actions) = 0;

  /// Single-action convenience.
  StatusOr<StepResult> step(int Action) {
    return step(std::vector<int>{Action});
  }

  /// The current action space.
  virtual const service::ActionSpace &actionSpace() const = 0;

  /// Number of actions taken this episode.
  virtual size_t episodeLength() const = 0;

  /// Cumulative reward this episode.
  virtual double episodeReward() const = 0;

  // -- Typed views (§III-B) --------------------------------------------------

  /// Typed, lazily-fetching observation access: `env.observation()["Ir"]`.
  virtual ObservationView &observation() { return ObsView; }

  /// Per-space reward access: `env.reward()["IrInstructionCountOz"]`.
  virtual RewardView &reward() { return RewView; }

  /// The environment's space catalogue (backend + derived + rewards).
  virtual SpaceRegistry &spaceRegistry() { return Registry; }
  const SpaceRegistry &spaceRegistry() const {
    return const_cast<Env *>(this)->spaceRegistry();
  }

  /// Monotonic counter that advances whenever the environment state may
  /// have changed (reset or action). The views key their caches on it.
  virtual uint64_t stateEpoch() const = 0;

  /// The multi-space primitive behind the views: computes the named backend
  /// spaces against the current state in a single RPC, bypassing every
  /// client-side cache. Returns one observation per requested space, in
  /// request order.
  virtual StatusOr<std::vector<service::Observation>>
  rawObservations(const std::vector<std::string> &Spaces) = 0;

protected:
  SpaceRegistry Registry;

private:
  ObservationView ObsView{*this};
  RewardView RewView{*this};
};

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_ENV_H
