//===- core/Validation.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Validation.h"

#include "analysis/Rewards.h"
#include "datasets/DatasetRegistry.h"
#include "ir/Parser.h"

#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::core;

namespace {

struct ReplayOutcome {
  double CumulativeReward = 0.0;
  std::string FinalIrHash; ///< Empty for non-IR environments.
  std::string FinalIr;
};

StatusOr<ReplayOutcome> replay(const EnvState &State) {
  MakeOptions Opts;
  Opts.Benchmark = State.BenchmarkUri;
  Opts.ObservationSpace = "none";
  Opts.RewardSpace =
      State.RewardSpace.empty() ? "none" : State.RewardSpace;
  CG_ASSIGN_OR_RETURN(std::unique_ptr<CompilerEnv> Env,
                      make(State.EnvId, Opts));
  CG_ASSIGN_OR_RETURN(service::Observation Init, Env->reset());
  (void)Init;
  ReplayOutcome Out;
  for (int A : State.Actions) {
    CG_ASSIGN_OR_RETURN(StepResult R, Env->step(A));
    Out.CumulativeReward += R.Reward;
    if (R.Done)
      break;
  }
  // IR-based envs expose a state hash; others have no hashable state. One
  // prefetch RPC covers both spaces.
  if (Env->observation().prefetch({"IrHash", "Ir"}).isOk()) {
    CG_ASSIGN_OR_RETURN(ObservationValue Hash,
                        Env->observation().get("IrHash"));
    CG_ASSIGN_OR_RETURN(Out.FinalIrHash, Hash.asString());
    CG_ASSIGN_OR_RETURN(ObservationValue Ir, Env->observation().get("Ir"));
    CG_ASSIGN_OR_RETURN(Out.FinalIr, Ir.asString());
  }
  return Out;
}

} // namespace

StatusOr<StateValidationResult>
core::validateState(const EnvState &State, double RewardTolerance) {
  StateValidationResult Result;

  CG_ASSIGN_OR_RETURN(ReplayOutcome First, replay(State));
  CG_ASSIGN_OR_RETURN(ReplayOutcome Second, replay(State));

  // Reward reproducibility vs the recorded value (nondeterministic reward
  // spaces like Runtime cannot be validated exactly; use the two replays'
  // agreement to set the bar).
  double ReplayGap =
      std::abs(First.CumulativeReward - Second.CumulativeReward);
  double RecordGap = std::abs(First.CumulativeReward - State.CumulativeReward);
  Result.RewardValidated =
      RecordGap <= std::max(RewardTolerance, ReplayGap * 4 + RewardTolerance);
  if (!Result.RewardValidated)
    Result.Error += "cumulative reward mismatch: recorded " +
                    std::to_string(State.CumulativeReward) + ", replayed " +
                    std::to_string(First.CumulativeReward) + "; ";

  // State-hash reproducibility across independent replays: this is what
  // catches nondeterministic passes.
  Result.HashValidated = First.FinalIrHash == Second.FinalIrHash;
  if (!Result.HashValidated)
    Result.Error += "nondeterminism: two replays produced different final "
                    "states (" + First.FinalIrHash + " vs " +
                    Second.FinalIrHash + "); ";

  // Semantics validation (differential testing) for IR environments.
  if (!First.FinalIr.empty()) {
    Result.SemanticsChecked = true;
    StatusOr<datasets::Benchmark> Bench =
        datasets::DatasetRegistry::instance().resolve(State.BenchmarkUri);
    if (Bench.isOk() && !Bench->IrText.empty()) {
      StatusOr<std::unique_ptr<ir::Module>> Ref =
          ir::parseModule(Bench->IrText);
      StatusOr<std::unique_ptr<ir::Module>> Opt =
          ir::parseModule(First.FinalIr);
      if (Ref.isOk() && Opt.isOk()) {
        ir::InterpreterOptions IOpts;
        IOpts.Args = Bench->Inputs;
        analysis::ValidationResult Diff =
            analysis::validateSemantics(**Ref, **Opt, IOpts);
        Result.SemanticsValidated = Diff.Ok;
        if (!Diff.Ok)
          Result.Error += "semantics: " + Diff.Error + "; ";
      } else {
        Result.Error += "semantics: could not parse IR for differential "
                        "testing; ";
      }
    } else {
      Result.SemanticsChecked = false;
    }
  }
  return Result;
}
