//===- core/TransitionDatabase.h - State transition dataset -----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The State Transition Dataset (§III-F, Fig 4): a relational store with
/// three tables —
///   Steps(benchmark_uri, actions[], state_id, end_of_episode, rewards[])
///   Observations(state_id, compressed_ir, instcounts[], autophase[])
///   StateTransitions(state_id, action, next_state_id, rewards[])
/// — written asynchronously by a logging wrapper during environment use,
/// de-duplicated and joined by a post-processing pass, and read back for
/// offline learning (the Fig 8 GGNN cost model trains from it).
///
/// Tables are tab-separated files in a directory; fields that are lists
/// are comma-separated. Simple, append-only, and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_TRANSITIONDATABASE_H
#define COMPILER_GYM_CORE_TRANSITIONDATABASE_H

#include "core/Env.h"
#include "core/Wrappers.h"
#include "util/Status.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

namespace compiler_gym {
namespace core {

/// One Steps-table row.
struct StepsRow {
  std::string BenchmarkUri;
  std::vector<int> Actions;
  std::string StateId; ///< Hex digest of the state.
  bool EndOfEpisode = false;
  std::vector<double> Rewards;
};

/// One Observations-table row.
struct ObservationsRow {
  std::string StateId;
  std::string CompressedIr; ///< Stored verbatim (hex-escaped on disk).
  std::vector<int64_t> InstCounts;
  std::vector<int64_t> Autophase;
};

/// One StateTransitions-table row.
struct TransitionsRow {
  std::string StateId;
  int Action = 0;
  std::string NextStateId;
  std::vector<double> Rewards;
};

/// Append-oriented store over a directory, with an async writer thread so
/// logging does not block the environment loop (§III-F "asynchronously
/// populates").
class TransitionDatabase {
public:
  explicit TransitionDatabase(std::string Directory);
  ~TransitionDatabase();

  const std::string &directory() const { return Dir; }

  /// Queues rows for the background writer.
  void appendStep(StepsRow Row);
  void appendObservation(ObservationsRow Row);

  /// Blocks until every queued row is on disk.
  Status flush();

  /// Post-processing: de-duplicates Observations and derives the
  /// StateTransitions table from consecutive Steps rows.
  Status buildTransitions();

  // -- Readers ----------------------------------------------------------------
  StatusOr<std::vector<StepsRow>> readSteps() const;
  StatusOr<std::vector<ObservationsRow>> readObservations() const;
  StatusOr<std::vector<TransitionsRow>> readTransitions() const;

private:
  void writerLoop();

  std::string Dir;
  std::mutex Mutex;
  std::condition_variable Ready;
  std::deque<std::string> StepLines;
  std::deque<std::string> ObsLines;
  bool Stopping = false;
  bool WriterIdle = true;
  std::condition_variable Idle;
  Status WriterStatus;
  std::thread Writer;
};

/// Wrapper that logs every step of the wrapped env into a database
/// (the §III-F logging wrapper). Logs the Steps and Observations tables;
/// call db->buildTransitions() afterwards.
class TransitionLogger : public EnvWrapper {
public:
  using Env::step;

  TransitionLogger(std::unique_ptr<Env> Inner, TransitionDatabase *Db,
                   std::function<std::string(Env &)> StateIdFn);

  /// Tags subsequent rows with the benchmark URI being optimized.
  void setBenchmarkUri(std::string Uri) { BenchmarkUri = std::move(Uri); }

  StatusOr<service::Observation> reset() override;
  StatusOr<StepResult> step(const std::vector<int> &Actions) override;

private:
  void logState(const std::vector<int> &NewActions, double Reward, bool Done);

  TransitionDatabase *Db;
  std::function<std::string(Env &)> StateIdFn;
  std::string BenchmarkUri;
  std::vector<int> EpisodeActions;
  std::vector<double> EpisodeRewards;
};

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_TRANSITIONDATABASE_H
