//===- core/CompilerEnv.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CompilerEnv.h"

#include "datasets/DatasetRegistry.h"
#include "util/Logging.h"

#include <algorithm>
#include <cmath>
#include <fstream>

using namespace compiler_gym;
using namespace compiler_gym::core;
using namespace compiler_gym::service;

namespace {

/// Session loss: the session id is gone because the shard was restarted
/// underneath us (by the broker monitor or another env's recovery).
bool isSessionLoss(const Status &S) {
  return S.code() == StatusCode::NotFound &&
         S.message().rfind("no session", 0) == 0;
}

/// Failures the environment can transparently recover from by restarting
/// the service and replaying its action history (§IV-B).
bool isRecoverableFailure(const Status &S) {
  return S.code() == StatusCode::Aborted ||
         S.code() == StatusCode::DeadlineExceeded ||
         S.code() == StatusCode::Unavailable || isSessionLoss(S);
}

} // namespace

CompilerEnv::CompilerEnv(CompilerEnvOptions Opts,
                         std::shared_ptr<CompilerService> Service,
                         std::shared_ptr<ServiceClient> Client)
    : Opts(std::move(Opts)), Service(std::move(Service)),
      Client(std::move(Client)) {}

CompilerEnv::~CompilerEnv() {
  if (SessionLive)
    (void)Client->endSession(SessionId);
}

StatusOr<std::unique_ptr<CompilerEnv>>
CompilerEnv::create(const CompilerEnvOptions &Opts) {
  auto Service = std::make_shared<CompilerService>(Opts.Faults);
  std::shared_ptr<ServiceClient> Client;
  if (Opts.UseFlakyTransport) {
    auto Base = std::make_shared<QueueTransport>(
        [Service](const std::string &Bytes) { return Service->handle(Bytes); });
    auto Flaky = std::make_shared<FlakyTransport>(Base,
                                                  Opts.TransportFaultPlan);
    Client = std::make_shared<ServiceClient>(Service, Flaky, Opts.Client);
  } else {
    Client = std::make_shared<ServiceClient>(Service, Opts.Client);
  }
  std::unique_ptr<CompilerEnv> Env(
      new CompilerEnv(Opts, std::move(Service), std::move(Client)));
  if (!Opts.RewardSpace.empty()) {
    CG_ASSIGN_OR_RETURN(RewardSpec Spec,
                        rewardSpec(Opts.CompilerName, Opts.RewardSpace));
    Env->Reward = Spec;
  }
  Env->State.EnvId = Opts.EnvId;
  Env->State.RewardSpace = Opts.RewardSpace;
  return Env;
}

StatusOr<std::unique_ptr<CompilerEnv>>
CompilerEnv::attach(const CompilerEnvOptions &Opts,
                    std::shared_ptr<CompilerService> Service,
                    std::shared_ptr<Transport> Channel) {
  auto Client = std::make_shared<ServiceClient>(Service, std::move(Channel),
                                                Opts.Client);
  std::unique_ptr<CompilerEnv> Env(
      new CompilerEnv(Opts, std::move(Service), std::move(Client)));
  Env->SharedService = true;
  if (!Opts.RewardSpace.empty()) {
    CG_ASSIGN_OR_RETURN(RewardSpec Spec,
                        rewardSpec(Opts.CompilerName, Opts.RewardSpace));
    Env->Reward = Spec;
  }
  Env->State.EnvId = Opts.EnvId;
  Env->State.RewardSpace = Opts.RewardSpace;
  return Env;
}

Status CompilerEnv::setRewardSpace(const std::string &Name) {
  if (Name.empty()) {
    Reward.reset();
    State.RewardSpace.clear();
    return Status::ok();
  }
  CG_ASSIGN_OR_RETURN(RewardSpec Spec, rewardSpec(Opts.CompilerName, Name));
  Reward = Spec;
  Opts.RewardSpace = Name;
  State.RewardSpace = Name;
  return Status::ok();
}

Status CompilerEnv::startSession() {
  // Benchmark resolution can be expensive (generator-backed datasets build
  // the whole program); cache it so repeated resets stay O(1).
  if (!CachedBenchmark || CachedBenchmark->Uri != Opts.BenchmarkUri) {
    CG_ASSIGN_OR_RETURN(
        datasets::Benchmark Bench,
        datasets::DatasetRegistry::instance().resolve(Opts.BenchmarkUri));
    // Dataset-only URIs resolve to their first member; key the cache by
    // the resolved URI only when it matches the request.
    CachedBenchmark = std::move(Bench);
    if (CachedBenchmark->Uri != Opts.BenchmarkUri)
      CachedBenchmark->Uri = Opts.BenchmarkUri;
  }
  StartSessionRequest Req;
  Req.CompilerName = Opts.CompilerName;
  Req.Bench = *CachedBenchmark;
  Req.ActionSpaceName = Opts.ActionSpaceName;
  CG_ASSIGN_OR_RETURN(StartSessionReply Reply, Client->startSession(Req));
  SessionId = Reply.SessionId;
  SessionLive = true;
  Space = Reply.Space;
  ObsSpaces = Reply.ObservationSpaces;
  return Status::ok();
}

StatusOr<StepReply>
CompilerEnv::stepRpc(const std::vector<Action> &Actions) {
  StepRequest Req;
  Req.SessionId = SessionId;
  Req.Actions = Actions;
  if (!Opts.ObservationSpace.empty())
    Req.ObservationSpaces.push_back(Opts.ObservationSpace);
  if (Reward) {
    Req.ObservationSpaces.push_back(Reward->MetricObservation);
    if (!Reward->BaselineObservation.empty() && !HaveBaseline)
      Req.ObservationSpaces.push_back(Reward->BaselineObservation);
  }
  return Client->step(Req);
}

StatusOr<Observation> CompilerEnv::reset() {
  if (SessionLive) {
    (void)Client->endSession(SessionId);
    SessionLive = false;
  }
  State.Actions.clear();
  State.CumulativeReward = 0.0;
  State.BenchmarkUri = Opts.BenchmarkUri;
  DirectHistory.clear();
  HaveBaseline = false;

  Status Started = startSession();
  for (int Round = 0; !Started.isOk() && Round < 4; ++Round) {
    if (!isRecoverableFailure(Started))
      return Started;
    ++Recoveries;
    if (!SharedService || Service->crashed())
      Client->restartService();
    Started = startSession();
  }
  CG_RETURN_IF_ERROR(Started);

  // Observation-only step fetches the initial observation and seeds the
  // reward bookkeeping.
  StatusOr<StepReply> ReplyOr = stepRpc({});
  for (int Round = 0; !ReplyOr.isOk() && Round < 4; ++Round) {
    if (!isRecoverableFailure(ReplyOr.status()))
      return ReplyOr.status();
    CG_RETURN_IF_ERROR(recover()); // Episode is empty: replays nothing.
    ReplyOr = stepRpc({});
  }
  if (!ReplyOr.isOk())
    return ReplyOr.status();
  StepReply Reply = ReplyOr.takeValue();
  size_t Cursor = 0;
  Observation InitialObs;
  if (!Opts.ObservationSpace.empty() && Cursor < Reply.Observations.size())
    InitialObs = Reply.Observations[Cursor++];
  if (Reward) {
    if (Cursor >= Reply.Observations.size())
      return internalError("reset reply missing reward metric observation");
    const Observation &Metric = Reply.Observations[Cursor++];
    PreviousMetric = Metric.Type == ObservationType::DoubleValue
                         ? Metric.DoubleValue
                         : static_cast<double>(Metric.IntValue);
    InitialMetric = PreviousMetric;
    if (!Reward->BaselineObservation.empty()) {
      if (Cursor >= Reply.Observations.size())
        return internalError("reset reply missing baseline observation");
      const Observation &Baseline = Reply.Observations[Cursor++];
      BaselineMetric = Baseline.Type == ObservationType::DoubleValue
                           ? Baseline.DoubleValue
                           : static_cast<double>(Baseline.IntValue);
      HaveBaseline = true;
    }
  }
  return InitialObs;
}

double CompilerEnv::rewardFromMetrics(double MetricValue) {
  if (!Reward)
    return 0.0;
  if (!Reward->Delta) {
    PreviousMetric = MetricValue;
    return MetricValue; // Absolute signal (loop_tool FLOPs).
  }
  double Delta = PreviousMetric - MetricValue;
  PreviousMetric = MetricValue;
  if (!Reward->BaselineObservation.empty()) {
    double TotalGain = InitialMetric - BaselineMetric;
    if (TotalGain <= 0.0)
      TotalGain = std::max(1.0, std::abs(BaselineMetric) * 0.01);
    return Delta / TotalGain;
  }
  return Delta;
}

Status CompilerEnv::recover() {
  ++Recoveries;
  CG_LOG_INFO << "backend failure detected; restarting service and "
                 "replaying " << State.Actions.size() << " actions";
  SessionLive = false;
  // Replay the whole episode in one batched, observation-free request.
  std::vector<Action> Replay;
  if (!DirectHistory.empty()) {
    Replay = DirectHistory;
  } else {
    Replay.reserve(State.Actions.size());
    for (int A : State.Actions) {
      Action Act;
      Act.Index = A;
      Replay.push_back(Act);
    }
  }
  Status Last = Status::ok();
  uint64_t StaleSession = SessionId;
  for (int Attempt = 0; Attempt < 4; ++Attempt) {
    // On a private service a restart is always safe. On a broker shard it
    // kills every other env's session on that shard, so only restart when
    // the service really is down; otherwise (hang, or the broker already
    // restarted it) just re-establish our session on the running service.
    if (!SharedService || Service->crashed()) {
      Client->restartService();
      StaleSession = 0; // Restart collected every session.
    } else if (StaleSession) {
      // No restart happens, so reap our abandoned session — otherwise a
      // hang-type recovery leaks it (module and all) in the shard's map.
      (void)Client->endSession(StaleSession);
      StaleSession = 0;
    }
    Last = startSession();
    if (!Last.isOk()) {
      if (isRecoverableFailure(Last))
        continue; // The service died again under us; restart and retry.
      return Last;
    }
    if (Replay.empty())
      return Status::ok();
    StepRequest Req;
    Req.SessionId = SessionId;
    Req.Actions = Replay;
    StatusOr<StepReply> Reply = Client->step(Req);
    if (Reply.isOk())
      return Status::ok();
    Last = Reply.status();
    if (!isRecoverableFailure(Last))
      return Last;
    SessionLive = false;
  }
  return Last;
}

StatusOr<StepResult>
CompilerEnv::stepWithRecovery(const std::vector<Action> &Actions) {
  StatusOr<StepReply> Reply = stepRpc(Actions);
  // Backend died, hung, or our session was collected in a shard restart:
  // recover and retry. On a shared shard a retry can race another env's
  // recovery restarting the service again, so allow a few rounds.
  for (int Round = 0; !Reply.isOk() && Round < 4; ++Round) {
    if (!isRecoverableFailure(Reply.status()))
      return Reply.status();
    CG_RETURN_IF_ERROR(recover());
    Reply = stepRpc(Actions);
  }
  if (!Reply.isOk())
    return Reply.status();

  StepResult Out;
  Out.Done = Reply->EndOfSession;
  if (Reply->ActionSpaceChanged)
    Space = Reply->NewSpace;
  size_t Cursor = 0;
  if (!Opts.ObservationSpace.empty() &&
      Cursor < Reply->Observations.size())
    Out.Obs = Reply->Observations[Cursor++];
  if (Reward) {
    if (Cursor >= Reply->Observations.size())
      return internalError("step reply missing reward metric observation");
    const Observation &Metric = Reply->Observations[Cursor++];
    double MetricValue = Metric.Type == ObservationType::DoubleValue
                             ? Metric.DoubleValue
                             : static_cast<double>(Metric.IntValue);
    if (!Reward->BaselineObservation.empty() && !HaveBaseline &&
        Cursor < Reply->Observations.size()) {
      const Observation &Baseline = Reply->Observations[Cursor++];
      BaselineMetric = Baseline.Type == ObservationType::DoubleValue
                           ? Baseline.DoubleValue
                           : static_cast<double>(Baseline.IntValue);
      HaveBaseline = true;
    }
    Out.Reward = rewardFromMetrics(MetricValue);
    State.CumulativeReward += Out.Reward;
  }
  return Out;
}

StatusOr<StepResult> CompilerEnv::step(const std::vector<int> &Actions) {
  if (!SessionLive)
    return failedPrecondition("call reset() before step()");
  std::vector<Action> Acts;
  Acts.reserve(Actions.size());
  for (int A : Actions) {
    Action Act;
    Act.Index = A;
    Acts.push_back(Act);
  }
  StatusOr<StepResult> Result = stepWithRecovery(Acts);
  if (Result.isOk())
    State.Actions.insert(State.Actions.end(), Actions.begin(), Actions.end());
  return Result;
}

StatusOr<StepResult>
CompilerEnv::stepDirect(const std::vector<int64_t> &Choices) {
  if (!SessionLive)
    return failedPrecondition("call reset() before step()");
  Action Act;
  Act.Index = 0;
  Act.Values = Choices;
  StatusOr<StepResult> Result = stepWithRecovery({Act});
  if (Result.isOk()) {
    State.Actions.push_back(0);
    DirectHistory.push_back(Act);
  }
  return Result;
}

StatusOr<Observation> CompilerEnv::observe(const std::string &SpaceName) {
  if (!SessionLive)
    return failedPrecondition("call reset() before observe()");
  StepRequest Req;
  Req.SessionId = SessionId;
  Req.ObservationSpaces.push_back(SpaceName);
  StatusOr<StepReply> Reply = Client->step(Req);
  for (int Round = 0; !Reply.isOk() && Round < 4; ++Round) {
    if (!isRecoverableFailure(Reply.status()))
      return Reply.status();
    CG_RETURN_IF_ERROR(recover());
    Req.SessionId = SessionId; // Recovery created a fresh session.
    Reply = Client->step(Req);
  }
  if (!Reply.isOk())
    return Reply.status();
  if (Reply->Observations.empty())
    return internalError("observe reply carried no observation");
  return Reply->Observations.front();
}

StatusOr<std::unique_ptr<CompilerEnv>> CompilerEnv::fork() {
  if (!SessionLive)
    return failedPrecondition("call reset() before fork()");
  CG_ASSIGN_OR_RETURN(uint64_t NewSession, Client->fork(SessionId));
  std::unique_ptr<CompilerEnv> Clone(
      new CompilerEnv(Opts, Service, Client));
  Clone->Space = Space;
  Clone->ObsSpaces = ObsSpaces;
  Clone->Reward = Reward;
  Clone->SessionId = NewSession;
  Clone->SessionLive = true;
  Clone->State = State;
  Clone->InitialMetric = InitialMetric;
  Clone->PreviousMetric = PreviousMetric;
  Clone->BaselineMetric = BaselineMetric;
  Clone->HaveBaseline = HaveBaseline;
  Clone->DirectHistory = DirectHistory;
  return Clone;
}

Status CompilerEnv::writeIr(const std::string &Path) {
  CG_ASSIGN_OR_RETURN(Observation Ir, observe("Ir"));
  std::ofstream Out(Path);
  if (!Out)
    return internalError("cannot open '" + Path + "' for writing");
  Out << Ir.Str;
  return Status::ok();
}
