//===- core/CompilerEnv.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CompilerEnv.h"

#include "datasets/DatasetRegistry.h"
#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"
#include "util/Logging.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <thread>
#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::core;
using namespace compiler_gym::service;

namespace {

telemetry::Counter &recoveriesTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_env_recoveries_total", {},
      "Crash/hang recoveries performed by frontend environments");
  return C;
}

telemetry::Counter &replayedActionsTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_env_replayed_actions_total", {},
      "Actions replayed into fresh sessions during recovery");
  return C;
}

telemetry::Counter &deltaRepliesReceivedTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_env_delta_replies_total", {},
      "Observation replies received as deltas and reconstructed");
  return C;
}

/// Session loss: the session id is gone because the shard was restarted
/// underneath us (by the broker monitor or another env's recovery).
bool isSessionLoss(const Status &S) {
  return S.code() == StatusCode::NotFound &&
         S.message().rfind("no session", 0) == 0;
}

/// Failures the environment can transparently recover from by restarting
/// the service and replaying its action history (§IV-B).
bool isRecoverableFailure(const Status &S) {
  return S.code() == StatusCode::Aborted ||
         S.code() == StatusCode::DeadlineExceeded ||
         S.code() == StatusCode::Unavailable || isSessionLoss(S);
}

} // namespace

CompilerEnv::CompilerEnv(CompilerEnvOptions Opts,
                         std::shared_ptr<CompilerService> Service,
                         std::shared_ptr<ServiceClient> Client)
    : Opts(std::move(Opts)), Service(std::move(Service)),
      Client(std::move(Client)) {
  PendingBenchmarkUri = this->Opts.BenchmarkUri;
}

CompilerEnv::~CompilerEnv() {
  if (SessionLive)
    (void)Client->endSession(SessionId);
}

StatusOr<std::unique_ptr<CompilerEnv>>
CompilerEnv::create(const CompilerEnvOptions &Opts) {
  auto Service = std::make_shared<CompilerService>(Opts.Faults);
  std::shared_ptr<ServiceClient> Client;
  if (Opts.UseFlakyTransport) {
    auto Base = std::make_shared<QueueTransport>(
        [Service](const std::string &Bytes) { return Service->handle(Bytes); });
    auto Flaky = std::make_shared<FlakyTransport>(Base,
                                                  Opts.TransportFaultPlan);
    Client = std::make_shared<ServiceClient>(Service, Flaky, Opts.Client);
  } else {
    Client = std::make_shared<ServiceClient>(Service, Opts.Client);
  }
  std::unique_ptr<CompilerEnv> Env(
      new CompilerEnv(Opts, std::move(Service), std::move(Client)));
  Env->Registry.setBuiltinRewards(rewardSpecsFor(Opts.CompilerName));
  if (!Opts.RewardSpace.empty() && !Env->Registry.reward(Opts.RewardSpace))
    return notFound("no reward space '" + Opts.RewardSpace +
                    "' for compiler '" + Opts.CompilerName + "'");
  Env->State.EnvId = Opts.EnvId;
  Env->State.RewardSpace = Opts.RewardSpace;
  Env->State.ObservationSpace = Opts.ObservationSpace;
  return Env;
}

StatusOr<std::unique_ptr<CompilerEnv>>
CompilerEnv::attach(const CompilerEnvOptions &Opts,
                    std::shared_ptr<CompilerService> Service,
                    std::shared_ptr<Transport> Channel) {
  auto Client = std::make_shared<ServiceClient>(Service, std::move(Channel),
                                                Opts.Client);
  std::unique_ptr<CompilerEnv> Env(
      new CompilerEnv(Opts, std::move(Service), std::move(Client)));
  Env->SharedService = true;
  Env->Registry.setBuiltinRewards(rewardSpecsFor(Opts.CompilerName));
  if (!Opts.RewardSpace.empty() && !Env->Registry.reward(Opts.RewardSpace))
    return notFound("no reward space '" + Opts.RewardSpace +
                    "' for compiler '" + Opts.CompilerName + "'");
  Env->State.EnvId = Opts.EnvId;
  Env->State.RewardSpace = Opts.RewardSpace;
  Env->State.ObservationSpace = Opts.ObservationSpace;
  return Env;
}

StatusOr<std::unique_ptr<CompilerEnv>>
CompilerEnv::connect(const CompilerEnvOptions &Opts,
                     std::shared_ptr<Transport> Channel) {
  // A remote env is a shared-service env with no in-process service
  // handle: session loss is recoverable (re-establish and restore/replay),
  // and restarts are the far end's job.
  return attach(Opts, /*Service=*/nullptr, std::move(Channel));
}

Status CompilerEnv::setObservationSpace(const std::string &Name) {
  if (!Name.empty() && SessionLive && !Registry.observationSpace(Name))
    return notFound("no observation space '" + Name + "'");
  Opts.ObservationSpace = Name;
  State.ObservationSpace = Name;
  return Status::ok();
}

Status CompilerEnv::setRewardSpace(const std::string &Name) {
  if (Name.empty()) {
    Opts.RewardSpace.clear();
    State.RewardSpace.clear();
    return Status::ok();
  }
  if (!Registry.reward(Name))
    return notFound("no reward space '" + Name + "' for compiler '" +
                    Opts.CompilerName + "'");
  // Mid-episode switch: re-prime from a fresh metric observation *before*
  // committing the switch — a failed prime (e.g. Runtime on a non-runnable
  // benchmark) must leave the previous space active. Without the re-prime,
  // the previous space's last metric value would seed the new space's
  // delta, paying a nonsense first reward.
  if (SessionLive)
    CG_RETURN_IF_ERROR(reward().prime(Name, /*Force=*/true));
  Opts.RewardSpace = Name;
  State.RewardSpace = Name;
  return Status::ok();
}

Status CompilerEnv::startSession(uint64_t RestoreStateKey, bool *Restored) {
  // Benchmark resolution can be expensive (generator-backed datasets build
  // the whole program); cache it so repeated resets stay O(1).
  if (!CachedBenchmark || CachedBenchmark->Uri != Opts.BenchmarkUri) {
    CG_ASSIGN_OR_RETURN(
        datasets::Benchmark Bench,
        datasets::DatasetRegistry::instance().resolve(Opts.BenchmarkUri));
    // Dataset-only URIs resolve to their first member; key the cache by
    // the resolved URI only when it matches the request.
    CachedBenchmark = std::move(Bench);
    if (CachedBenchmark->Uri != Opts.BenchmarkUri)
      CachedBenchmark->Uri = Opts.BenchmarkUri;
  }
  StartSessionRequest Req;
  Req.CompilerName = Opts.CompilerName;
  Req.Bench = *CachedBenchmark;
  Req.ActionSpaceName = Opts.ActionSpaceName;
  Req.RestoreStateKey = RestoreStateKey;
  CG_ASSIGN_OR_RETURN(StartSessionReply Reply, Client->startSession(Req));
  SessionId = Reply.SessionId;
  SessionLive = true;
  Space = Reply.Space;
  Registry.setBackendSpaces(Reply.ObservationSpaces);
  bool DidRestore = RestoreStateKey != 0 && Reply.Restored;
  if (!DidRestore)
    LastStateKey = 0; // The session sits at the benchmark's initial state.
  if (Restored)
    *Restored = DidRestore;
  return Status::ok();
}

StatusOr<CompilerEnv::StepPlan>
CompilerEnv::planStep(const std::vector<std::string> &ObsSpaces,
                      const std::vector<std::string> &RewardSpaces) {
  StepPlan Plan;
  Plan.ObsSpaces = ObsSpaces;
  Plan.RewardSpaces = RewardSpaces;

  auto addObservation = [&](const std::string &Name) -> Status {
    if (!Registry.observationSpace(Name))
      return notFound("no observation space '" + Name + "'");
    Registry.backendClosure(Name, Plan.Wire); // Dedups into the wire set.
    return Status::ok();
  };
  auto addReward = [&](const std::string &Name) -> Status {
    const RewardSpec *Spec = Registry.reward(Name);
    if (!Spec)
      return notFound("no reward space '" + Name + "'");
    CG_RETURN_IF_ERROR(addObservation(Spec->MetricObservation));
    // The baseline is only needed while the space is unprimed: priming
    // copies it into the book.
    if (!Spec->BaselineObservation.empty() && !reward().primed(Name))
      CG_RETURN_IF_ERROR(addObservation(Spec->BaselineObservation));
    return Status::ok();
  };

  if (!Opts.ObservationSpace.empty())
    CG_RETURN_IF_ERROR(addObservation(Opts.ObservationSpace));
  for (const std::string &Name : ObsSpaces)
    CG_RETURN_IF_ERROR(addObservation(Name));
  if (!Opts.RewardSpace.empty()) {
    // The active space can disappear from the registry (unregisterReward
    // of a user space): fail with the cure, not a bare NotFound.
    if (Status S = addReward(Opts.RewardSpace); !S.isOk())
      return failedPrecondition(
          "active reward space '" + Opts.RewardSpace +
          "' is no longer registered; call setRewardSpace() (" +
          S.message() + ")");
  }
  for (const std::string &Name : RewardSpaces)
    CG_RETURN_IF_ERROR(addReward(Name));
  return Plan;
}

Status CompilerEnv::recover() {
  CG_TRACE_SPAN("env.recover", "core");
  Recoveries.fetch_add(1, std::memory_order_relaxed);
  recoveriesTotal().inc();
  CG_LOG_INFO_FOR("env", SessionId)
      << "backend failure detected; restarting service (snapshot key "
      << LastStateKey << ", " << State.Actions.size()
      << " actions in replay fallback)";
  SessionLive = false;
  // Replay the whole episode in one batched, observation-free request.
  std::vector<Action> Replay;
  if (!DirectHistory.empty()) {
    Replay = DirectHistory;
  } else {
    Replay.reserve(State.Actions.size());
    for (int A : State.Actions) {
      Action Act;
      Act.Index = A;
      Replay.push_back(Act);
    }
  }
  Status Last = Status::ok();
  uint64_t StaleSession = SessionId;
  for (int Attempt = 0; Attempt < 4; ++Attempt) {
    // A remote fleet heals on its own schedule (broker monitor sweep), not
    // ours: pace the re-establishment attempts so they don't all land
    // inside the crash-to-restart window.
    if (Attempt && !Service)
      std::this_thread::sleep_for(std::chrono::milliseconds(10 * Attempt));
    // On a private service a restart is always safe. On a broker shard it
    // kills every other env's session on that shard, so only restart when
    // the service really is down; otherwise (hang, or the broker already
    // restarted it) just re-establish our session on the running service.
    // Remote envs (null Service) never restart anything: the server fleet
    // recovers itself, we just re-establish the session.
    if (Service && (!SharedService || Service->crashed())) {
      Client->restartService();
      StaleSession = 0; // Restart collected every session.
    } else if (StaleSession) {
      // No restart happens, so reap our abandoned session — otherwise a
      // hang-type recovery leaks it (module and all) in the shard's map.
      (void)Client->endSession(StaleSession);
      StaleSession = 0;
    }
    bool Restored = false;
    Last = startSession(LastStateKey, &Restored);
    if (!Last.isOk()) {
      if (isRecoverableFailure(Last))
        continue; // The service died again under us; restart and retry.
      return Last;
    }
    if (Restored) {
      // The backend restored our exact state from its snapshot store:
      // recovery is done, with zero actions replayed.
      CG_LOG_INFO_FOR("env", SessionId)
          << "restored state " << LastStateKey << " from snapshot";
      return Status::ok();
    }
    if (Replay.empty())
      return Status::ok();
    replayedActionsTotal().inc(Replay.size());
    StepRequest Req;
    Req.SessionId = SessionId;
    Req.Actions = Replay;
    StatusOr<StepReply> Reply = Client->step(Req);
    if (Reply.isOk())
      return Status::ok();
    Last = Reply.status();
    if (!isRecoverableFailure(Last))
      return Last;
    SessionLive = false;
  }
  return Last;
}

Status CompilerEnv::settleWireObservations(StepReply &Reply) {
  size_t N = std::min(Reply.ObservationNames.size(),
                      Reply.Observations.size());
  // Phase 1: reconstruct every delta against the *pre-request* bases.
  // Retention waits until phase 2 — a request naming the same space twice
  // gets two deltas against the same advertised base, so settling must
  // not replace the base between them.
  for (size_t I = 0; I < N; ++I) {
    Observation &Obs = Reply.Observations[I];
    const std::string &Name = Reply.ObservationNames[I];
    if (!Obs.IsDelta)
      continue;
    auto It = WireBases.find(Name);
    // The service only deltas against a key this env advertised, so a
    // missing or mismatched base is a protocol violation, not a cache
    // miss to paper over.
    if (It == WireBases.end() || It->second.StateKey != Obs.BaseKey)
      return internalError("delta reply for '" + Name +
                           "' does not match any retained base");
    telemetry::SpanScope DeltaSpan("delta.apply", "core");
    CG_ASSIGN_OR_RETURN(Observation Full,
                        applyObservationDelta(It->second, Obs));
    Obs = std::move(Full);
    ++DeltaReplies;
    deltaRepliesReceivedTotal().inc();
  }
  // Phase 2: retain the new full values as bases for the next request.
  for (size_t I = 0; I < N; ++I) {
    const Observation &Obs = Reply.Observations[I];
    if (Obs.StateKey == 0 || !deltaEligible(Obs.Type))
      continue;
    auto It = WireBases.find(Reply.ObservationNames[I]);
    if (It == WireBases.end())
      WireBases.emplace(Reply.ObservationNames[I], Obs);
    else if (It->second.StateKey != Obs.StateKey)
      It->second = Obs; // Same key = same content: skip the copy.
  }
  return Status::ok();
}

StatusOr<StepReply> CompilerEnv::callStepWithRecovery(StepRequest Req) {
  Req.SessionId = SessionId;
  // Advertise the retained full values' keys so the service may answer
  // with deltas. The vector is sent even when every key is 0 (first
  // fetch): a non-empty key vector is how a client declares it speaks
  // the handshake, which tells the service to retain reply values as
  // future delta bases. Costs 8 bytes per space.
  Req.ObservationBaseKeys.clear();
  for (const std::string &Name : Req.ObservationSpaces) {
    auto It = WireBases.find(Name);
    Req.ObservationBaseKeys.push_back(
        It != WireBases.end() ? It->second.StateKey : 0);
  }
  // Backend died, hung, or our session was collected in a shard restart:
  // recover and retry. On a shared shard a retry can race another env's
  // recovery restarting the service again, so allow a few rounds.
  // (Retained base keys stay valid: they are content-addressed and the
  // replay reconstructs the same state; the restarted service simply
  // answers the retry with full payloads.)
  Status LastError = Status::ok();
  bool PhantomActions = false;
  for (int Round = 0; Round < 5; ++Round) {
    if (Round > 0) {
      Status Recovered = recover();
      if (!Recovered.isOk()) {
        // Recovery itself can fail with a recoverable error (the restore
        // or replay raced another fault): that burns a round, it does not
        // abandon the RPC.
        if (!isRecoverableFailure(Recovered))
          return Recovered;
        LastError = Recovered;
        continue;
      }
      Req.SessionId = SessionId; // Recovery created a fresh session.
    }
    PhantomActions = false;
    StatusOr<StepReply> Reply = Client->step(Req);
    if (!Reply.isOk()) {
      if (!isRecoverableFailure(Reply.status()))
        return Reply.status();
      LastError = Reply.status();
      continue;
    }
    Status Settled = settleWireObservations(*Reply);
    if (Settled.isOk()) {
      // Only a committed reply may move the recovery anchor: after a
      // failed settle the caller never commits these actions, and
      // recovery must restore the last *committed* state.
      if (Reply->SessionStateKey)
        LastStateKey = Reply->SessionStateKey;
      return Reply;
    }
    // The RPC succeeded — the backend HAS applied the actions — but the
    // reply's deltas cannot be reconstructed (corrupted in transport, or
    // a lost base). Returning the error here would desync the episode:
    // the caller only commits actions on success. Instead drop the
    // suspect bases and go through recovery, which replays the committed
    // history and re-issues this request for full payloads.
    CG_LOG_INFO_FOR("env", SessionId)
        << "unreconstructable delta reply (" << Settled.message()
        << "); dropping wire bases and recovering";
    WireBases.clear();
    std::fill(Req.ObservationBaseKeys.begin(), Req.ObservationBaseKeys.end(),
              static_cast<uint64_t>(0));
    LastError = Settled;
    PhantomActions = true;
  }
  // Out of rounds. If the final round's RPC succeeded but its reply could
  // not be settled, the live session holds actions the caller will never
  // commit — resynchronize it to the committed history before surfacing
  // the error, so the next step() does not build on phantom state.
  if (PhantomActions)
    CG_RETURN_IF_ERROR(recover());
  return LastError;
}

StatusOr<StepReply>
CompilerEnv::stepRpcWithRecovery(std::vector<Action> Actions,
                                 const StepPlan &Plan) {
  StepRequest Req;
  Req.Actions = std::move(Actions);
  Req.ObservationSpaces = Plan.Wire;
  return callStepWithRecovery(std::move(Req));
}

StatusOr<StepResult> CompilerEnv::demuxReply(StepReply Reply,
                                             const StepPlan &Plan,
                                             bool HadActions,
                                             bool SettleRewards) {
  StepResult Out;
  Out.Done = Reply.EndOfSession;
  if (Reply.ActionSpaceChanged)
    Space = Reply.NewSpace;

  // The actions changed the state: advance the epoch, then land the
  // reply's observations in the view cache so every demux below — default
  // observation, requested spaces, reward metrics — is a cache hit.
  if (HadActions)
    ++Epoch;
  size_t N = std::min(Reply.ObservationNames.size(),
                      Reply.Observations.size());
  // The default observation demuxes straight off the reply (one copy
  // instead of a round-trip through the cache).
  bool HaveDefaultObs = false;
  for (size_t I = 0; I < N; ++I) {
    if (!HaveDefaultObs && Reply.ObservationNames[I] == Opts.ObservationSpace) {
      Out.Obs = Reply.Observations[I];
      HaveDefaultObs = true;
    }
    observation().prime(Reply.ObservationNames[I],
                        std::move(Reply.Observations[I]));
  }
  if (!Opts.ObservationSpace.empty() && !HaveDefaultObs) {
    // Derived default space: compute through the view.
    CG_ASSIGN_OR_RETURN(ObservationValue V,
                        observation().get(Opts.ObservationSpace));
    Out.Obs = V.raw();
  }
  for (const std::string &Name : Plan.ObsSpaces) {
    CG_ASSIGN_OR_RETURN(ObservationValue V, observation().get(Name));
    Out.Observations.emplace_back(Name, std::move(V));
  }

  if (!SettleRewards)
    return Out;
  // Each reward space settles exactly once per step, even when the active
  // space is also requested explicitly (a second get() would pay zero).
  std::unordered_map<std::string, double> Settled;
  auto settle = [&](const std::string &Name) -> StatusOr<double> {
    auto It = Settled.find(Name);
    if (It != Settled.end())
      return It->second;
    CG_ASSIGN_OR_RETURN(double R, reward().get(Name));
    Settled.emplace(Name, R);
    return R;
  };
  if (!Opts.RewardSpace.empty()) {
    CG_ASSIGN_OR_RETURN(Out.Reward, settle(Opts.RewardSpace));
    State.CumulativeReward += Out.Reward;
  }
  for (const std::string &Name : Plan.RewardSpaces) {
    CG_ASSIGN_OR_RETURN(double R, settle(Name));
    Out.Rewards.emplace_back(Name, R);
  }
  return Out;
}

StatusOr<Observation> CompilerEnv::reset() {
  CG_TRACE_SPAN("env.reset", "core");
  if (SessionLive) {
    (void)Client->endSession(SessionId);
    SessionLive = false;
  }
  Opts.BenchmarkUri = PendingBenchmarkUri; // Apply the pending switch.
  State.Actions.clear();
  State.CumulativeReward = 0.0;
  State.BenchmarkUri = Opts.BenchmarkUri;
  DirectHistory.clear();
  reward().resetBookkeeping();

  Status Started = startSession();
  for (int Round = 0; !Started.isOk() && Round < 4; ++Round) {
    if (!isRecoverableFailure(Started))
      return Started;
    Recoveries.fetch_add(1, std::memory_order_relaxed);
    recoveriesTotal().inc();
    if (Service && (!SharedService || Service->crashed()))
      Client->restartService();
    Started = startSession();
  }
  CG_RETURN_IF_ERROR(Started);
  ++Epoch; // Fresh episode state; invalidates the view caches.

  // Observation-free step fetches the initial observation; the active
  // reward space's bookkeeping is primed (not settled) from the same
  // reply, so the episode starts at reward 0 for absolute spaces too.
  CG_ASSIGN_OR_RETURN(StepPlan Plan, planStep({}, {}));
  CG_ASSIGN_OR_RETURN(StepReply Reply, stepRpcWithRecovery({}, Plan));
  CG_ASSIGN_OR_RETURN(StepResult R,
                      demuxReply(std::move(Reply), Plan, /*HadActions=*/false,
                                 /*SettleRewards=*/false));
  if (!Opts.RewardSpace.empty())
    CG_RETURN_IF_ERROR(reward().prime(Opts.RewardSpace));
  return R.Obs;
}

StatusOr<StepResult> CompilerEnv::step(const std::vector<int> &Actions) {
  return step(Actions, {}, {});
}

StatusOr<StepResult>
CompilerEnv::step(const std::vector<int> &Actions,
                  const std::vector<std::string> &ObsSpaces,
                  const std::vector<std::string> &RewardSpaces) {
  if (!SessionLive)
    return failedPrecondition("call reset() before step()");
  CG_TRACE_SPAN("env.step", "core");
  CG_ASSIGN_OR_RETURN(StepPlan Plan, planStep(ObsSpaces, RewardSpaces));
  std::vector<Action> Acts;
  Acts.reserve(Actions.size());
  for (int A : Actions) {
    Action Act;
    Act.Index = A;
    Acts.push_back(Act);
  }
  CG_ASSIGN_OR_RETURN(StepReply Reply,
                      stepRpcWithRecovery(std::move(Acts), Plan));
  // The backend applied the actions: commit them to the episode history
  // before demuxing, so a failing derived space cannot desync the record.
  State.Actions.insert(State.Actions.end(), Actions.begin(), Actions.end());
  return demuxReply(std::move(Reply), Plan, !Actions.empty(),
                    /*SettleRewards=*/true);
}

StatusOr<StepResult>
CompilerEnv::stepDirect(const std::vector<int64_t> &Choices,
                        const std::vector<std::string> &ObsSpaces,
                        const std::vector<std::string> &RewardSpaces) {
  if (!SessionLive)
    return failedPrecondition("call reset() before step()");
  CG_TRACE_SPAN("env.step_direct", "core");
  CG_ASSIGN_OR_RETURN(StepPlan Plan, planStep(ObsSpaces, RewardSpaces));
  Action Act;
  Act.Index = 0;
  Act.Values = Choices;
  CG_ASSIGN_OR_RETURN(StepReply Reply, stepRpcWithRecovery({Act}, Plan));
  // Committed before demux; see step().
  State.Actions.push_back(0);
  DirectHistory.push_back(std::move(Act));
  return demuxReply(std::move(Reply), Plan, /*HadActions=*/true,
                    /*SettleRewards=*/true);
}

StatusOr<std::vector<Observation>>
CompilerEnv::rawObservations(const std::vector<std::string> &Spaces) {
  if (!SessionLive)
    return failedPrecondition("call reset() before observing");
  if (Spaces.empty())
    return std::vector<Observation>{};
  CG_TRACE_SPAN("env.observe", "core");
  StepRequest Req;
  Req.ObservationSpaces = Spaces;
  StatusOr<StepReply> Reply = callStepWithRecovery(std::move(Req));
  if (!Reply.isOk())
    return Reply.status();
  if (Reply->Observations.size() != Spaces.size())
    return internalError("observation reply carried " +
                         std::to_string(Reply->Observations.size()) +
                         " observations for " +
                         std::to_string(Spaces.size()) + " spaces");
  return std::move(Reply->Observations);
}

StatusOr<std::unique_ptr<CompilerEnv>> CompilerEnv::fork() {
  if (!SessionLive)
    return failedPrecondition("call reset() before fork()");
  CG_TRACE_SPAN("env.fork", "core");
  CG_ASSIGN_OR_RETURN(uint64_t NewSession, Client->fork(SessionId));
  std::unique_ptr<CompilerEnv> Clone(
      new CompilerEnv(Opts, Service, Client));
  Clone->Space = Space;
  Clone->Registry = Registry;
  Clone->SessionId = NewSession;
  Clone->SessionLive = true;
  Clone->SharedService = SharedService;
  Clone->State = State;
  Clone->Epoch = Epoch;
  Clone->PendingBenchmarkUri = PendingBenchmarkUri;
  Clone->DirectHistory = DirectHistory;
  // Content-addressed, and the fork sits at the same state: the clone can
  // snapshot-recover without ever having stepped.
  Clone->LastStateKey = LastStateKey;
  // Wire bases are content-addressed, so the clone can delta against the
  // parent's retained values immediately.
  Clone->WireBases = WireBases;
  Clone->observation().copyCacheFrom(observation());
  Clone->reward().copyBooksFrom(reward());
  return Clone;
}

Status CompilerEnv::rebase(CompilerEnv &Parent) {
  if (&Parent == this)
    return invalidArgument("rebase: parent must be a different env");
  if (!Parent.SessionLive)
    return failedPrecondition("rebase: parent has no live session");
  CG_TRACE_SPAN("env.rebase", "core");
  // Reap the current session first: rebase replaces it wholesale, and an
  // abandoned session would leak (module and all) in the shard's map.
  if (SessionLive) {
    (void)Client->endSession(SessionId);
    SessionLive = false;
  }
  Opts.BenchmarkUri = Parent.Opts.BenchmarkUri;
  PendingBenchmarkUri = Parent.PendingBenchmarkUri;
  Opts.ObservationSpace = Parent.Opts.ObservationSpace;
  Opts.RewardSpace = Parent.Opts.RewardSpace;
  CachedBenchmark = Parent.CachedBenchmark;
  // Carries the parent's user-registered spaces; startSession() refreshes
  // the backend half from the new session's catalogue.
  Registry = Parent.Registry;
  bool Restored = false;
  CG_RETURN_IF_ERROR(startSession(Parent.LastStateKey, &Restored));
  State = Parent.State;
  DirectHistory = Parent.DirectHistory;
  if (!Restored) {
    // No snapshot survives for the parent's state (parent never stepped,
    // or the store evicted it): replay its history, observation-free.
    std::vector<Action> Replay;
    if (!DirectHistory.empty()) {
      Replay = DirectHistory;
    } else {
      Replay.reserve(State.Actions.size());
      for (int A : State.Actions) {
        Action Act;
        Act.Index = A;
        Replay.push_back(Act);
      }
    }
    if (!Replay.empty()) {
      replayedActionsTotal().inc(Replay.size());
      StepRequest Req;
      Req.SessionId = SessionId;
      Req.Actions = Replay;
      CG_ASSIGN_OR_RETURN(StepReply Reply, Client->step(Req));
      (void)Reply;
    }
  }
  // Content-addressed: the session now sits at the parent's state, so the
  // parent's key names it regardless of how we got here.
  LastStateKey = Parent.LastStateKey;
  Epoch = Parent.Epoch;
  WireBases = Parent.WireBases;
  observation().copyCacheFrom(Parent.observation());
  reward().copyBooksFrom(Parent.reward());
  return Status::ok();
}

Status CompilerEnv::writeIr(const std::string &Path) {
  CG_ASSIGN_OR_RETURN(ObservationValue Ir, observation().get("Ir"));
  CG_ASSIGN_OR_RETURN(std::string Text, Ir.asString());
  std::ofstream Out(Path);
  if (!Out)
    return internalError("cannot open '" + Path + "' for writing");
  Out << Text;
  return Status::ok();
}
