//===- core/Registry.h - make("llvm-v0") ------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The environment registry and make() entry point, mirroring
/// compiler_gym.make() from Listing 1:
///
/// \code
///   auto Env = core::make("llvm-v0", {
///       .Benchmark = "benchmark://cbench-v1/qsort",
///       .ObservationSpace = "Autophase",
///       .RewardSpace = "IrInstructionCount",
///   });
/// \endcode
///
/// Registered ids: "llvm-v0", "llvm-autophase-ic-v0", "llvm-ic-v0",
/// "gcc-v0", "loop_tool-v0".
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_REGISTRY_H
#define COMPILER_GYM_CORE_REGISTRY_H

#include "core/CompilerEnv.h"

namespace compiler_gym {
namespace core {

/// Optional overrides for make().
struct MakeOptions {
  std::string Benchmark;        ///< "" = env default.
  std::string ObservationSpace; ///< "" = env default.
  std::string RewardSpace;      ///< "" = env default.
  std::string ActionSpaceName;  ///< "" = backend default.
  service::FaultPlan Faults;
  service::ClientOptions Client;
  service::TransportFaults TransportFaultPlan;
  bool UseFlakyTransport = false;
};

/// Instantiates a registered environment.
StatusOr<std::unique_ptr<CompilerEnv>> make(const std::string &EnvId,
                                            const MakeOptions &Opts = {});

/// Translates an environment id plus overrides into the concrete
/// CompilerEnvOptions make() would use, without instantiating anything.
/// Registers the builtin compilers as a side effect. runtime::EnvPool uses
/// this to attach many environments onto shared ServiceBroker shards.
StatusOr<CompilerEnvOptions> resolveMakeOptions(const std::string &EnvId,
                                                const MakeOptions &Opts = {});

/// All registered environment ids.
std::vector<std::string> registeredEnvironments();

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_REGISTRY_H
