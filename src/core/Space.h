//===- core/Space.h - Frontend space & reward descriptors -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frontend-side descriptors: the reward-space table mapping reward names
/// to the backend observations they are computed from. Rewards are deltas
/// of a metric observation between consecutive states (optionally scaled
/// by the gains of the compiler's default pipeline), or raw measurements
/// (loop_tool FLOPs) — exactly the three reward styles of §V.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_SPACE_H
#define COMPILER_GYM_CORE_SPACE_H

#include "util/Status.h"

#include <string>
#include <vector>

namespace compiler_gym {
namespace core {

/// How a reward is derived from backend observations.
struct RewardSpec {
  std::string Name;
  /// Observation supplying the per-step metric value.
  std::string MetricObservation;
  /// Optional observation supplying the default-pipeline baseline used for
  /// scaling (e.g. "IrInstructionCountOz"); empty = unscaled.
  std::string BaselineObservation;
  /// Delta rewards pay (previous - current); absolute rewards pay the raw
  /// metric (higher is better), used by loop_tool's FLOPs signal.
  bool Delta = true;
};

/// Reward specs available for an environment family ("llvm", "gcc",
/// "loop_tool").
std::vector<RewardSpec> rewardSpecsFor(const std::string &CompilerName);

/// Finds a reward spec by name; NotFound if the family lacks it.
StatusOr<RewardSpec> rewardSpec(const std::string &CompilerName,
                                const std::string &RewardName);

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_SPACE_H
