//===- core/Space.h - Frontend space & reward descriptors -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frontend-side typed space descriptors (§III-B):
///  * SpaceInfo       — name/dtype/shape/range descriptor of an observation
///                      space, published by the backend session or
///                      registered client-side (Derived);
///  * ObservationValue — a typed value with checked accessors, what the
///                      views hand out instead of a raw service::Observation;
///  * RewardSpec      — how a reward is derived from metric observations:
///                      deltas of a metric between consecutive states
///                      (optionally scaled by default-pipeline gains), raw
///                      measurements (loop_tool FLOPs), or a user-supplied
///                      combiner for derived rewards;
///  * SpaceRegistry   — per-environment catalogue of backend spaces,
///                      client-registered derived observations and reward
///                      spaces.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_SPACE_H
#define COMPILER_GYM_CORE_SPACE_H

#include "service/Message.h"
#include "util/Status.h"

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace compiler_gym {
namespace core {

class ObservationView;

/// Typed observation-space descriptor: the backend-published fields
/// (name, dtype, shape, range, determinism/platform flags) plus whether the
/// space is computed client-side from other spaces.
struct SpaceInfo : service::ObservationSpaceInfo {
  bool Derived = false;
};

/// A typed observation value. Wraps the wire Observation with its space
/// descriptor and checked accessors: asking for the wrong dtype is an
/// InvalidArgument, never a silent zero. The payload is an immutable
/// shared buffer, so copying an ObservationValue (view cache hits,
/// StepResult plumbing, fork) never copies the observation itself.
class ObservationValue {
public:
  /// Empty value (Int64Value 0 with no space name); what default-constructed
  /// slots in containers hold before assignment.
  ObservationValue() : Obs(emptyObservation()) {}
  /// Wraps \p Obs (already reconstructed to a full payload — the views
  /// never hand out wire deltas) under \p Info's descriptor.
  ObservationValue(SpaceInfo Info, service::Observation Obs)
      : Info(std::move(Info)),
        Obs(std::make_shared<const service::Observation>(std::move(Obs))) {}

  /// Name of the space this value belongs to.
  const std::string &space() const { return Info.Name; }
  /// The payload dtype (matches which as*() accessor succeeds).
  service::ObservationType type() const { return Info.Type; }
  /// Full descriptor (shape/range/determinism included).
  const SpaceInfo &info() const { return Info; }
  /// The underlying wire observation (immutable, shared across copies).
  const service::Observation &raw() const { return *Obs; }

  /// Checked accessors (exact dtype match).
  StatusOr<int64_t> asInt64() const;
  StatusOr<double> asDouble() const;
  StatusOr<std::vector<int64_t>> asInt64List() const;
  StatusOr<std::vector<double>> asDoubleList() const;
  StatusOr<std::string> asString() const;   ///< String payloads.
  StatusOr<std::string> asBinary() const;   ///< Binary payloads.

  /// Any scalar numeric space (Int64Value or DoubleValue) as a double —
  /// what reward metrics use.
  StatusOr<double> asScalar() const;

private:
  Status mismatch(const char *Requested) const;
  static const std::shared_ptr<const service::Observation> &
  emptyObservation();

  SpaceInfo Info;
  std::shared_ptr<const service::Observation> Obs;
};

/// Computes a derived observation from base observations fetched through
/// the view (fetches are cached, and declared dependencies ride the step
/// RPC, so a well-declared derived space costs zero extra RPCs).
using DerivedObservationFn =
    std::function<StatusOr<service::Observation>(ObservationView &)>;

/// A client-side derived observation space.
struct DerivedObservationSpec {
  SpaceInfo Info; ///< Info.Derived is forced true on registration.
  /// Backend (or derived) spaces this computation reads; requesting the
  /// derived space in a step() prefetches these in the same RPC.
  std::vector<std::string> Dependencies;
  DerivedObservationFn Compute;
};

/// How a reward is derived from observations.
struct RewardSpec {
  std::string Name;
  /// Observation supplying the per-step metric value (may name a derived
  /// observation space).
  std::string MetricObservation;
  /// Optional observation supplying the default-pipeline baseline used for
  /// scaling (e.g. "IrInstructionCountOz"); empty = unscaled.
  std::string BaselineObservation;
  /// Delta rewards pay (previous - current); absolute rewards pay the raw
  /// metric (higher is better), used by loop_tool's FLOPs signal.
  bool Delta = true;
  /// Optional client-side combiner overriding the builtin delta/absolute
  /// formulas: reward = Combiner(Current, Previous, Initial, Baseline).
  /// Previous == Current on the first evaluation after (re)priming, and
  /// Baseline is 0 when BaselineObservation is empty. This is how derived
  /// rewards (normalized, ratio, composite) are expressed.
  std::function<double(double Current, double Previous, double Initial,
                       double Baseline)>
      Combiner;
};

/// Builtin reward specs for an environment family ("llvm", "gcc",
/// "loop_tool"); seeds each env's SpaceRegistry.
std::vector<RewardSpec> rewardSpecsFor(const std::string &CompilerName);

/// Finds a builtin reward spec by name; NotFound if the family lacks it.
StatusOr<RewardSpec> rewardSpec(const std::string &CompilerName,
                                const std::string &RewardName);

/// Per-environment space catalogue: the backend-published observation
/// spaces (refreshed on session start), client-registered derived
/// observation spaces, and the reward-space table (builtin + registered).
///
/// Thread-safety: none — the registry belongs to one env and is only
/// mutated from that env's thread (like the views that read it).
/// Registration may reallocate internal storage, so pointers returned by
/// observationSpace()/derived()/reward() are invalidated by any
/// register/unregister/setBackendSpaces call.
class SpaceRegistry {
public:
  /// Replaces the backend-published spaces (called on session start; derived
  /// registrations survive).
  void setBackendSpaces(const std::vector<service::ObservationSpaceInfo> &S);

  /// All observation spaces, backend first, then derived.
  std::vector<SpaceInfo> observationSpaces() const;

  /// Descriptor lookup (backend or derived); nullptr when unknown.
  const SpaceInfo *observationSpace(const std::string &Name) const;
  bool hasBackendSpace(const std::string &Name) const;
  /// True before any session has published spaces (and nothing derived
  /// has been registered).
  bool empty() const { return Backend.empty() && Derived_.empty(); }

  /// Registers a client-side derived observation space. InvalidArgument on
  /// a missing name/compute function or a name collision with any backend
  /// or derived space.
  Status registerDerivedObservation(DerivedObservationSpec Spec);
  /// Removes a derived space; NotFound for unknown or backend names.
  Status unregisterDerivedObservation(const std::string &Name);
  /// Spec lookup for a derived space; nullptr for backend/unknown names.
  const DerivedObservationSpec *derived(const std::string &Name) const;

  /// Appends to \p Out the backend spaces \p Name transitively reads:
  /// itself for a backend space, the declared dependency closure for a
  /// derived one. Deduplicates against what is already in \p Out, so
  /// repeated calls build a wire set. Unknown names and dependency cycles
  /// contribute nothing.
  void backendClosure(const std::string &Name,
                      std::vector<std::string> &Out) const;

  /// Seeds the builtin reward table for the env's compiler family
  /// (construction-time; replaces any previous builtins, keeps user
  /// registrations).
  void setBuiltinRewards(std::vector<RewardSpec> Specs);
  /// Registers a user reward space. InvalidArgument on a missing
  /// name/metric or a name collision with a builtin or user space.
  Status registerReward(RewardSpec Spec);
  /// Removes a *user* reward space; unregistering a builtin is
  /// InvalidArgument, an unknown name NotFound.
  Status unregisterReward(const std::string &Name);
  /// Spec lookup (builtin or user); nullptr when unknown.
  const RewardSpec *reward(const std::string &Name) const;
  /// All reward specs, builtins first.
  std::vector<RewardSpec> rewardSpaces() const;

private:
  std::vector<SpaceInfo> Backend;
  std::unordered_map<std::string, size_t> BackendIndex;
  std::vector<DerivedObservationSpec> Derived_;
  std::vector<RewardSpec> Rewards;
  size_t NumBuiltinRewards = 0;
};

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_SPACE_H
