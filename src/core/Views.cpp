//===- core/Views.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Views.h"

#include "core/Env.h"

#include <algorithm>
#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::core;

// -- ObservationView ----------------------------------------------------------

void ObservationView::syncEpoch() {
  uint64_t Epoch = Owner.stateEpoch();
  if (Epoch != CacheEpoch) {
    Cache.clear();
    CacheEpoch = Epoch;
  }
}

ObservationValue ObservationView::wrap(const std::string &Space,
                                       service::Observation Obs) const {
  const SpaceRegistry &Reg = Owner.spaceRegistry();
  if (const SpaceInfo *Info = Reg.observationSpace(Space))
    return ObservationValue(*Info, std::move(Obs));
  // Registry not yet populated (no session): synthesize a descriptor from
  // the payload so typed accessors still work.
  SpaceInfo Info;
  Info.Name = Space;
  Info.Type = Obs.Type;
  return ObservationValue(std::move(Info), std::move(Obs));
}

StatusOr<ObservationValue>
ObservationView::computeDerived(DerivedObservationSpec D) {
  if (std::find(DerivedInFlight.begin(), DerivedInFlight.end(),
                D.Info.Name) != DerivedInFlight.end())
    return internalError("derived observation space '" + D.Info.Name +
                         "' depends on itself");
  DerivedInFlight.push_back(D.Info.Name);
  StatusOr<service::Observation> Obs = D.Compute(*this);
  DerivedInFlight.pop_back();
  if (!Obs.isOk())
    return Obs.status();
  service::Observation Value = Obs.takeValue();
  Value.Type = D.Info.Type; // The descriptor, not the fn, owns the dtype.
  return ObservationValue(D.Info, std::move(Value));
}

StatusOr<ObservationValue> ObservationView::get(const std::string &Space) {
  syncEpoch();
  if (auto It = Cache.find(Space); It != Cache.end()) {
    ++Hits;
    return It->second;
  }
  SpaceRegistry &Reg = Owner.spaceRegistry();
  if (const DerivedObservationSpec *D = Reg.derived(Space)) {
    CG_ASSIGN_OR_RETURN(ObservationValue V, computeDerived(*D));
    Cache.emplace(Space, V);
    return V;
  }
  if (!Reg.hasBackendSpace(Space) && !Reg.empty())
    return notFound("no observation space '" + Space + "'");
  CG_ASSIGN_OR_RETURN(std::vector<service::Observation> Obs,
                      Owner.rawObservations({Space}));
  if (Obs.size() != 1)
    return internalError("expected 1 observation, got " +
                         std::to_string(Obs.size()));
  ObservationValue V = wrap(Space, std::move(Obs.front()));
  syncEpoch(); // The RPC may have advanced the epoch (recovery).
  Cache.emplace(Space, V);
  return V;
}

Status ObservationView::prefetch(const std::vector<std::string> &Spaces) {
  syncEpoch();
  SpaceRegistry &Reg = Owner.spaceRegistry();
  // Backend closure of everything requested, minus what is already cached.
  std::vector<std::string> Wire;
  for (const std::string &Space : Spaces) {
    if (!Reg.observationSpace(Space))
      return notFound("no observation space '" + Space + "'");
    Reg.backendClosure(Space, Wire);
  }
  std::vector<std::string> Fetch;
  for (const std::string &Name : Wire) // Already deduped by the closure.
    if (!Cache.count(Name))
      Fetch.push_back(Name);
  if (!Fetch.empty()) {
    CG_ASSIGN_OR_RETURN(std::vector<service::Observation> Obs,
                        Owner.rawObservations(Fetch));
    if (Obs.size() != Fetch.size())
      return internalError("observation reply size mismatch");
    syncEpoch();
    for (size_t I = 0; I < Fetch.size(); ++I)
      Cache.emplace(Fetch[I], wrap(Fetch[I], std::move(Obs[I])));
  }
  // Materialize requested derived spaces from the primed cache.
  for (const std::string &Space : Spaces)
    if (Reg.derived(Space))
      CG_RETURN_IF_ERROR(get(Space).status());
  return Status::ok();
}

std::vector<SpaceInfo> ObservationView::spaces() const {
  return Owner.spaceRegistry().observationSpaces();
}

Status ObservationView::registerDerived(SpaceInfo Info,
                                        std::vector<std::string> Dependencies,
                                        DerivedObservationFn Fn) {
  DerivedObservationSpec Spec;
  Spec.Info = std::move(Info);
  Spec.Dependencies = std::move(Dependencies);
  Spec.Compute = std::move(Fn);
  return Owner.spaceRegistry().registerDerivedObservation(std::move(Spec));
}

Status ObservationView::unregisterDerived(const std::string &Name) {
  Cache.erase(Name);
  return Owner.spaceRegistry().unregisterDerivedObservation(Name);
}

void ObservationView::prime(const std::string &Space,
                            service::Observation Obs) {
  syncEpoch();
  Cache.insert_or_assign(Space, wrap(Space, std::move(Obs)));
}

void ObservationView::copyCacheFrom(const ObservationView &Other) {
  Cache = Other.Cache;
  CacheEpoch = Other.CacheEpoch;
}

// -- RewardView ---------------------------------------------------------------

StatusOr<double> RewardView::metricValue(const std::string &ObsSpace) {
  CG_ASSIGN_OR_RETURN(ObservationValue V, Owner.observation().get(ObsSpace));
  return V.asScalar();
}

StatusOr<RewardView::Book *> RewardView::findOrPrime(const RewardSpec &Spec,
                                                     double Current,
                                                     bool Force) {
  auto It = Books.find(Spec.Name);
  if (It != Books.end() && !Force)
    return &It->second;
  Book B;
  B.Initial = B.Previous = Current;
  if (!Spec.BaselineObservation.empty()) {
    CG_ASSIGN_OR_RETURN(B.Baseline, metricValue(Spec.BaselineObservation));
  }
  return &(Books.insert_or_assign(Spec.Name, B).first->second);
}

StatusOr<double> RewardView::get(const std::string &Space) {
  const RewardSpec *Found = Owner.spaceRegistry().reward(Space);
  if (!Found)
    return notFound("no reward space '" + Space + "'");
  // Copy the spec: metricValue() may run a derived-space callback that
  // re-enters the registry and reallocates its storage.
  RewardSpec Spec = *Found;
  CG_ASSIGN_OR_RETURN(double Current, metricValue(Spec.MetricObservation));
  CG_ASSIGN_OR_RETURN(Book *B, findOrPrime(Spec, Current, /*Force=*/false));

  double Out;
  if (Spec.Combiner) {
    Out = Spec.Combiner(Current, B->Previous, B->Initial, B->Baseline);
  } else if (!Spec.Delta) {
    Out = Current; // Absolute signal (loop_tool FLOPs).
  } else {
    double Delta = B->Previous - Current;
    if (!Spec.BaselineObservation.empty()) {
      double TotalGain = B->Initial - B->Baseline;
      if (TotalGain <= 0.0)
        TotalGain = std::max(1.0, std::abs(B->Baseline) * 0.01);
      Out = Delta / TotalGain;
    } else {
      Out = Delta;
    }
  }
  B->Previous = Current;
  return Out;
}

Status RewardView::registerReward(RewardSpec Spec) {
  return Owner.spaceRegistry().registerReward(std::move(Spec));
}

Status RewardView::unregisterReward(const std::string &Name) {
  Books.erase(Name);
  return Owner.spaceRegistry().unregisterReward(Name);
}

std::vector<RewardSpec> RewardView::spaces() const {
  return Owner.spaceRegistry().rewardSpaces();
}

Status RewardView::prime(const std::string &Space, bool Force) {
  const RewardSpec *Found = Owner.spaceRegistry().reward(Space);
  if (!Found)
    return notFound("no reward space '" + Space + "'");
  if (!Force && Books.count(Space))
    return Status::ok();
  RewardSpec Spec = *Found; // See get(): callbacks may re-enter the registry.
  CG_ASSIGN_OR_RETURN(double Current, metricValue(Spec.MetricObservation));
  return findOrPrime(Spec, Current, Force).status();
}
