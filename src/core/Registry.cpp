//===- core/Registry.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Registry.h"

#include "envs/gcc/GccSession.h"
#include "envs/llvm/LlvmSession.h"
#include "envs/loop_tool/LoopToolSession.h"

using namespace compiler_gym;
using namespace compiler_gym::core;

namespace {

/// Environment-id presets.
struct EnvPreset {
  const char *EnvId;
  const char *Compiler;
  const char *DefaultBenchmark;
  const char *DefaultObservation;
  const char *DefaultReward;
};

const EnvPreset Presets[] = {
    {"llvm-v0", "llvm", "benchmark://cbench-v1/qsort", "Autophase",
     "IrInstructionCount"},
    // The id used in the paper's Listing 2.
    {"llvm-autophase-ic-v0", "llvm", "benchmark://cbench-v1/qsort",
     "Autophase", "IrInstructionCountOz"},
    {"llvm-ic-v0", "llvm", "benchmark://cbench-v1/qsort", "",
     "IrInstructionCount"},
    {"gcc-v0", "gcc", "benchmark://chstone-v0/adpcm", "Choices",
     "ObjSizeBytes"},
    {"loop_tool-v0", "loop_tool", "benchmark://loop_tool-v0/1048576",
     "action_state", "flops"},
};

} // namespace

StatusOr<CompilerEnvOptions>
core::resolveMakeOptions(const std::string &EnvId, const MakeOptions &Opts) {
  envs::registerLlvmEnvironment();
  envs::registerGccEnvironment();
  envs::registerLoopToolEnvironment();

  for (const EnvPreset &P : Presets) {
    if (EnvId != P.EnvId)
      continue;
    CompilerEnvOptions EnvOpts;
    EnvOpts.CompilerName = P.Compiler;
    EnvOpts.EnvId = EnvId;
    EnvOpts.BenchmarkUri =
        Opts.Benchmark.empty() ? P.DefaultBenchmark : Opts.Benchmark;
    // "" = preset default; the literal "none" disables the space.
    EnvOpts.ObservationSpace = Opts.ObservationSpace.empty()
                                   ? P.DefaultObservation
                                   : Opts.ObservationSpace;
    if (EnvOpts.ObservationSpace == "none")
      EnvOpts.ObservationSpace.clear();
    EnvOpts.RewardSpace =
        Opts.RewardSpace.empty() ? P.DefaultReward : Opts.RewardSpace;
    if (EnvOpts.RewardSpace == "none")
      EnvOpts.RewardSpace.clear();
    EnvOpts.ActionSpaceName = Opts.ActionSpaceName;
    EnvOpts.Faults = Opts.Faults;
    EnvOpts.Client = Opts.Client;
    EnvOpts.TransportFaultPlan = Opts.TransportFaultPlan;
    EnvOpts.UseFlakyTransport = Opts.UseFlakyTransport;
    return EnvOpts;
  }
  return notFound("no environment '" + EnvId +
                  "'; known: llvm-v0, llvm-autophase-ic-v0, llvm-ic-v0, "
                  "gcc-v0, loop_tool-v0");
}

StatusOr<std::unique_ptr<CompilerEnv>>
core::make(const std::string &EnvId, const MakeOptions &Opts) {
  CG_ASSIGN_OR_RETURN(CompilerEnvOptions EnvOpts,
                      resolveMakeOptions(EnvId, Opts));
  return CompilerEnv::create(EnvOpts);
}

std::vector<std::string> core::registeredEnvironments() {
  std::vector<std::string> Out;
  for (const EnvPreset &P : Presets)
    Out.push_back(P.EnvId);
  return Out;
}
