//===- core/Leaderboard.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Leaderboard.h"

#include "util/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

using namespace compiler_gym;
using namespace compiler_gym::core;

Status Leaderboard::submit(const LeaderboardEntry &Entry) {
  std::ofstream Out(Path, std::ios::app);
  if (!Out)
    return internalError("cannot open leaderboard '" + Path + "'");
  char WalltimeBuf[32];
  std::snprintf(WalltimeBuf, sizeof(WalltimeBuf), "%.6f",
                Entry.WalltimeSeconds);
  // The EnvState serialization uses '|'; the leaderboard row uses ';'.
  Out << Entry.Technique << ';' << WalltimeBuf << ';'
      << (Entry.Validated ? 1 : 0) << ';' << Entry.State.serialize() << '\n';
  return Status::ok();
}

StatusOr<std::vector<LeaderboardEntry>> Leaderboard::entries() const {
  std::ifstream In(Path);
  if (!In)
    return std::vector<LeaderboardEntry>{}; // No submissions yet.
  std::vector<LeaderboardEntry> Out;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::vector<std::string> Fields = splitString(Line, ';');
    if (Fields.size() != 4)
      continue;
    LeaderboardEntry Entry;
    Entry.Technique = Fields[0];
    Entry.WalltimeSeconds = std::strtod(Fields[1].c_str(), nullptr);
    Entry.Validated = Fields[2] == "1";
    StatusOr<EnvState> State = EnvState::deserialize(Fields[3]);
    if (!State.isOk())
      continue;
    Entry.State = State.takeValue();
    Out.push_back(std::move(Entry));
  }
  return Out;
}

StatusOr<std::vector<LeaderboardEntry>>
Leaderboard::ranking(const std::string &BenchmarkUri) const {
  CG_ASSIGN_OR_RETURN(std::vector<LeaderboardEntry> All, entries());
  std::vector<LeaderboardEntry> Filtered;
  for (LeaderboardEntry &E : All)
    if (E.State.BenchmarkUri == BenchmarkUri)
      Filtered.push_back(std::move(E));
  std::stable_sort(Filtered.begin(), Filtered.end(),
                   [](const LeaderboardEntry &A, const LeaderboardEntry &B) {
                     return A.State.CumulativeReward >
                            B.State.CumulativeReward;
                   });
  return Filtered;
}
