//===- core/EnvState.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/EnvState.h"

#include "util/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace compiler_gym;
using namespace compiler_gym::core;

std::string EnvState::serialize() const {
  char RewardBuf[32];
  std::snprintf(RewardBuf, sizeof(RewardBuf), "%.17g", CumulativeReward);
  std::string Out = EnvId + "|" + BenchmarkUri + "|" + RewardSpace + "|" +
                    RewardBuf + "|";
  for (size_t I = 0; I < Actions.size(); ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(Actions[I]);
  }
  return Out;
}

StatusOr<EnvState> EnvState::deserialize(const std::string &Line) {
  std::vector<std::string> Fields = splitString(Line, '|');
  if (Fields.size() != 5)
    return invalidArgument("malformed EnvState line (need 5 '|' fields)");
  EnvState Out;
  Out.EnvId = Fields[0];
  Out.BenchmarkUri = Fields[1];
  Out.RewardSpace = Fields[2];
  Out.CumulativeReward = std::strtod(Fields[3].c_str(), nullptr);
  if (!Fields[4].empty()) {
    for (const std::string &Tok : splitString(Fields[4], ',')) {
      char *End = nullptr;
      long A = std::strtol(Tok.c_str(), &End, 10);
      if (Tok.empty() || End != Tok.c_str() + Tok.size())
        return invalidArgument("malformed action '" + Tok + "'");
      Out.Actions.push_back(static_cast<int>(A));
    }
  }
  return Out;
}
