//===- core/EnvState.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/EnvState.h"

#include "util/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace compiler_gym;
using namespace compiler_gym::core;

std::string EnvState::serialize() const {
  char RewardBuf[32];
  std::snprintf(RewardBuf, sizeof(RewardBuf), "%.17g", CumulativeReward);
  std::string Out = EnvId + "|" + BenchmarkUri + "|" + RewardSpace + "|" +
                    ObservationSpace + "|" + RewardBuf + "|";
  for (size_t I = 0; I < Actions.size(); ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(Actions[I]);
  }
  return Out;
}

StatusOr<EnvState> EnvState::deserialize(const std::string &Line) {
  std::vector<std::string> Fields = splitString(Line, '|');
  // 6 fields since the views API; 5-field lines predate the
  // observation-space field and parse with it empty.
  if (Fields.size() != 5 && Fields.size() != 6)
    return invalidArgument("malformed EnvState line (need 5 or 6 '|' fields)");
  bool Legacy = Fields.size() == 5;
  EnvState Out;
  Out.EnvId = Fields[0];
  Out.BenchmarkUri = Fields[1];
  Out.RewardSpace = Fields[2];
  if (!Legacy)
    Out.ObservationSpace = Fields[3];
  const std::string &Reward = Fields[Legacy ? 3 : 4];
  Out.CumulativeReward = std::strtod(Reward.c_str(), nullptr);
  const std::string &Acts = Fields[Legacy ? 4 : 5];
  if (!Acts.empty()) {
    for (const std::string &Tok : splitString(Acts, ',')) {
      char *End = nullptr;
      long A = std::strtol(Tok.c_str(), &End, 10);
      if (Tok.empty() || End != Tok.c_str() + Tok.size())
        return invalidArgument("malformed action '" + Tok + "'");
      Out.Actions.push_back(static_cast<int>(A));
    }
  }
  return Out;
}
