//===- core/Space.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Space.h"

using namespace compiler_gym;
using namespace compiler_gym::core;

std::vector<RewardSpec> core::rewardSpecsFor(const std::string &CompilerName) {
  if (CompilerName == "llvm") {
    return {
        {"IrInstructionCount", "IrInstructionCount", "", true},
        {"IrInstructionCountOz", "IrInstructionCount",
         "IrInstructionCountOz", true},
        {"ObjectTextSizeBytes", "ObjectTextSizeBytes", "", true},
        {"ObjectTextSizeOz", "ObjectTextSizeBytes", "ObjectTextSizeOz",
         true},
        {"Runtime", "Runtime", "", true},
        {"RuntimeO3", "Runtime", "RuntimeO3", true},
    };
  }
  if (CompilerName == "gcc") {
    return {
        {"AsmSizeBytes", "AsmSizeBytes", "", true},
        {"ObjSizeBytes", "ObjSizeBytes", "", true},
        {"ObjSizeOs", "ObjSizeBytes", "ObjSizeOs", true},
    };
  }
  if (CompilerName == "loop_tool") {
    return {
        {"flops", "flops", "", false},
    };
  }
  return {};
}

StatusOr<RewardSpec> core::rewardSpec(const std::string &CompilerName,
                                      const std::string &RewardName) {
  for (const RewardSpec &Spec : rewardSpecsFor(CompilerName))
    if (Spec.Name == RewardName)
      return Spec;
  return notFound("no reward space '" + RewardName + "' for compiler '" +
                  CompilerName + "'");
}
