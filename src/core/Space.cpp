//===- core/Space.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Space.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::core;
using service::ObservationType;

namespace {

const char *typeName(ObservationType Ty) {
  switch (Ty) {
  case ObservationType::Int64List:
    return "Int64List";
  case ObservationType::DoubleList:
    return "DoubleList";
  case ObservationType::String:
    return "String";
  case ObservationType::Binary:
    return "Binary";
  case ObservationType::Int64Value:
    return "Int64Value";
  case ObservationType::DoubleValue:
    return "DoubleValue";
  }
  return "?";
}

} // namespace

// -- ObservationValue ---------------------------------------------------------

const std::shared_ptr<const service::Observation> &
ObservationValue::emptyObservation() {
  static const std::shared_ptr<const service::Observation> Empty =
      std::make_shared<const service::Observation>();
  return Empty;
}

Status ObservationValue::mismatch(const char *Requested) const {
  return invalidArgument("observation space '" + Info.Name + "' holds " +
                         typeName(Info.Type) + ", not " + Requested);
}

StatusOr<int64_t> ObservationValue::asInt64() const {
  if (Info.Type != ObservationType::Int64Value)
    return mismatch("Int64Value");
  return Obs->IntValue;
}

StatusOr<double> ObservationValue::asDouble() const {
  if (Info.Type != ObservationType::DoubleValue)
    return mismatch("DoubleValue");
  return Obs->DoubleValue;
}

StatusOr<std::vector<int64_t>> ObservationValue::asInt64List() const {
  if (Info.Type != ObservationType::Int64List)
    return mismatch("Int64List");
  return Obs->Ints;
}

StatusOr<std::vector<double>> ObservationValue::asDoubleList() const {
  if (Info.Type != ObservationType::DoubleList)
    return mismatch("DoubleList");
  return Obs->Doubles;
}

StatusOr<std::string> ObservationValue::asString() const {
  if (Info.Type != ObservationType::String)
    return mismatch("String");
  return Obs->Str;
}

StatusOr<std::string> ObservationValue::asBinary() const {
  if (Info.Type != ObservationType::Binary)
    return mismatch("Binary");
  return Obs->Str;
}

StatusOr<double> ObservationValue::asScalar() const {
  if (Info.Type == ObservationType::Int64Value)
    return static_cast<double>(Obs->IntValue);
  if (Info.Type == ObservationType::DoubleValue)
    return Obs->DoubleValue;
  return mismatch("a numeric scalar");
}

// -- Builtin reward tables ----------------------------------------------------

std::vector<RewardSpec> core::rewardSpecsFor(const std::string &CompilerName) {
  auto spec = [](const char *Name, const char *Metric, const char *Baseline,
                 bool Delta) {
    RewardSpec S;
    S.Name = Name;
    S.MetricObservation = Metric;
    S.BaselineObservation = Baseline;
    S.Delta = Delta;
    return S;
  };
  if (CompilerName == "llvm") {
    return {
        spec("IrInstructionCount", "IrInstructionCount", "", true),
        spec("IrInstructionCountOz", "IrInstructionCount",
             "IrInstructionCountOz", true),
        spec("ObjectTextSizeBytes", "ObjectTextSizeBytes", "", true),
        spec("ObjectTextSizeOz", "ObjectTextSizeBytes", "ObjectTextSizeOz",
             true),
        spec("Runtime", "Runtime", "", true),
        spec("RuntimeO3", "Runtime", "RuntimeO3", true),
    };
  }
  if (CompilerName == "gcc") {
    return {
        spec("AsmSizeBytes", "AsmSizeBytes", "", true),
        spec("ObjSizeBytes", "ObjSizeBytes", "", true),
        spec("ObjSizeOs", "ObjSizeBytes", "ObjSizeOs", true),
    };
  }
  if (CompilerName == "loop_tool") {
    return {
        spec("flops", "flops", "", false),
    };
  }
  return {};
}

StatusOr<RewardSpec> core::rewardSpec(const std::string &CompilerName,
                                      const std::string &RewardName) {
  for (const RewardSpec &Spec : rewardSpecsFor(CompilerName))
    if (Spec.Name == RewardName)
      return Spec;
  return notFound("no reward space '" + RewardName + "' for compiler '" +
                  CompilerName + "'");
}

// -- SpaceRegistry ------------------------------------------------------------

void SpaceRegistry::setBackendSpaces(
    const std::vector<service::ObservationSpaceInfo> &S) {
  Backend.clear();
  BackendIndex.clear();
  Backend.reserve(S.size());
  for (const service::ObservationSpaceInfo &Info : S) {
    SpaceInfo Out;
    static_cast<service::ObservationSpaceInfo &>(Out) = Info;
    Out.Derived = false;
    BackendIndex.emplace(Out.Name, Backend.size());
    Backend.push_back(std::move(Out));
  }
}

std::vector<SpaceInfo> SpaceRegistry::observationSpaces() const {
  std::vector<SpaceInfo> Out = Backend;
  for (const DerivedObservationSpec &D : Derived_)
    Out.push_back(D.Info);
  return Out;
}

const SpaceInfo *
SpaceRegistry::observationSpace(const std::string &Name) const {
  auto It = BackendIndex.find(Name);
  if (It != BackendIndex.end())
    return &Backend[It->second];
  for (const DerivedObservationSpec &D : Derived_)
    if (D.Info.Name == Name)
      return &D.Info;
  return nullptr;
}

bool SpaceRegistry::hasBackendSpace(const std::string &Name) const {
  return BackendIndex.count(Name) != 0;
}

Status SpaceRegistry::registerDerivedObservation(DerivedObservationSpec Spec) {
  if (Spec.Info.Name.empty())
    return invalidArgument("derived observation space needs a name");
  if (!Spec.Compute)
    return invalidArgument("derived observation space '" + Spec.Info.Name +
                           "' needs a compute function");
  if (observationSpace(Spec.Info.Name))
    return invalidArgument("observation space '" + Spec.Info.Name +
                           "' already exists");
  Spec.Info.Derived = true;
  Derived_.push_back(std::move(Spec));
  return Status::ok();
}

Status SpaceRegistry::unregisterDerivedObservation(const std::string &Name) {
  auto It = std::find_if(
      Derived_.begin(), Derived_.end(),
      [&](const DerivedObservationSpec &D) { return D.Info.Name == Name; });
  if (It == Derived_.end())
    return notFound("no derived observation space '" + Name + "'");
  Derived_.erase(It);
  return Status::ok();
}

const DerivedObservationSpec *
SpaceRegistry::derived(const std::string &Name) const {
  for (const DerivedObservationSpec &D : Derived_)
    if (D.Info.Name == Name)
      return &D;
  return nullptr;
}

namespace {

void closureImpl(const SpaceRegistry &Reg, const std::string &Name,
                 std::vector<std::string> &Out,
                 std::vector<std::string> &Visited) {
  if (std::find(Visited.begin(), Visited.end(), Name) != Visited.end())
    return;
  Visited.push_back(Name);
  if (Reg.hasBackendSpace(Name)) {
    if (std::find(Out.begin(), Out.end(), Name) == Out.end())
      Out.push_back(Name);
    return;
  }
  if (const DerivedObservationSpec *D = Reg.derived(Name))
    for (const std::string &Dep : D->Dependencies)
      closureImpl(Reg, Dep, Out, Visited);
}

} // namespace

void SpaceRegistry::backendClosure(const std::string &Name,
                                   std::vector<std::string> &Out) const {
  std::vector<std::string> Visited;
  closureImpl(*this, Name, Out, Visited);
}

void SpaceRegistry::setBuiltinRewards(std::vector<RewardSpec> Specs) {
  // Keep user registrations, replace the builtin prefix.
  std::vector<RewardSpec> User(Rewards.begin() + NumBuiltinRewards,
                               Rewards.end());
  Rewards = std::move(Specs);
  NumBuiltinRewards = Rewards.size();
  for (RewardSpec &S : User)
    Rewards.push_back(std::move(S));
}

Status SpaceRegistry::registerReward(RewardSpec Spec) {
  if (Spec.Name.empty())
    return invalidArgument("reward space needs a name");
  if (Spec.MetricObservation.empty())
    return invalidArgument("reward space '" + Spec.Name +
                           "' needs a metric observation");
  if (reward(Spec.Name))
    return invalidArgument("reward space '" + Spec.Name +
                           "' already exists");
  Rewards.push_back(std::move(Spec));
  return Status::ok();
}

Status SpaceRegistry::unregisterReward(const std::string &Name) {
  for (size_t I = NumBuiltinRewards; I < Rewards.size(); ++I) {
    if (Rewards[I].Name == Name) {
      Rewards.erase(Rewards.begin() + I);
      return Status::ok();
    }
  }
  if (reward(Name))
    return invalidArgument("cannot unregister builtin reward space '" +
                           Name + "'");
  return notFound("no reward space '" + Name + "'");
}

const RewardSpec *SpaceRegistry::reward(const std::string &Name) const {
  for (const RewardSpec &S : Rewards)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

std::vector<RewardSpec> SpaceRegistry::rewardSpaces() const { return Rewards; }
