//===- core/Wrappers.h - Environment wrappers -------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composable environment wrappers (§III-C), mirroring gym.Wrapper and the
/// CompilerGym wrapper suite:
///  * TimeLimit            — caps episode length (Listing 2);
///  * CycleOverBenchmarks  — iterates a benchmark list across resets
///                           (Listing 2);
///  * ActionSubset         — restricts the action space to a subset (the
///                           paper's RL setup uses 42 of the 124 actions);
///  * ObservationHistogram — concatenates the observation with a histogram
///                           of the agent's previous actions (the
///                           "w. hist" variants of Fig 9).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_CORE_WRAPPERS_H
#define COMPILER_GYM_CORE_WRAPPERS_H

#include "core/Env.h"

#include <functional>
#include <memory>

namespace compiler_gym {
namespace core {

/// Base wrapper: forwards everything to the wrapped env.
class EnvWrapper : public Env {
public:
  using Env::step;

  explicit EnvWrapper(std::unique_ptr<Env> Inner) : Inner(std::move(Inner)) {}

  StatusOr<service::Observation> reset() override { return Inner->reset(); }
  StatusOr<StepResult> step(const std::vector<int> &Actions) override {
    return Inner->step(Actions);
  }
  const service::ActionSpace &actionSpace() const override {
    return Inner->actionSpace();
  }
  size_t episodeLength() const override { return Inner->episodeLength(); }
  double episodeReward() const override { return Inner->episodeReward(); }

  // Views, registry and the observation primitive live on the innermost
  // env: every wrapper layer shares one cache and one space catalogue.
  ObservationView &observation() override { return Inner->observation(); }
  RewardView &reward() override { return Inner->reward(); }
  SpaceRegistry &spaceRegistry() override { return Inner->spaceRegistry(); }
  uint64_t stateEpoch() const override { return Inner->stateEpoch(); }
  StatusOr<std::vector<service::Observation>>
  rawObservations(const std::vector<std::string> &Spaces) override {
    return Inner->rawObservations(Spaces);
  }

  Env &inner() { return *Inner; }

protected:
  std::unique_ptr<Env> Inner;
};

/// Ends the episode after a fixed number of steps.
class TimeLimit : public EnvWrapper {
public:
  using Env::step;

  TimeLimit(std::unique_ptr<Env> Inner, size_t MaxSteps)
      : EnvWrapper(std::move(Inner)), MaxSteps(MaxSteps) {}

  StatusOr<service::Observation> reset() override {
    Steps = 0;
    return Inner->reset();
  }

  StatusOr<StepResult> step(const std::vector<int> &Actions) override {
    CG_ASSIGN_OR_RETURN(StepResult R, Inner->step(Actions));
    Steps += Actions.size();
    if (Steps >= MaxSteps)
      R.Done = true;
    return R;
  }

private:
  size_t MaxSteps;
  size_t Steps = 0;
};

/// Cycles through a list of benchmark URIs, one per reset. Requires the
/// inner env to be a CompilerEnv (or a wrapper chain over one exposing
/// setBenchmark through resetToBenchmark).
class CycleOverBenchmarks : public EnvWrapper {
public:
  CycleOverBenchmarks(std::unique_ptr<Env> Inner,
                      std::vector<std::string> Uris,
                      std::function<void(Env &, const std::string &)>
                          SetBenchmark)
      : EnvWrapper(std::move(Inner)), Uris(std::move(Uris)),
        SetBenchmark(std::move(SetBenchmark)) {}

  StatusOr<service::Observation> reset() override {
    if (!Uris.empty()) {
      SetBenchmark(*Inner, Uris[Next]);
      Next = (Next + 1) % Uris.size();
    }
    return Inner->reset();
  }

private:
  std::vector<std::string> Uris;
  std::function<void(Env &, const std::string &)> SetBenchmark;
  size_t Next = 0;
};

/// Exposes a subset of the wrapped env's actions as a dense [0, n) space.
class ActionSubset : public EnvWrapper {
public:
  using Env::step;

  ActionSubset(std::unique_ptr<Env> Inner, std::vector<int> Subset)
      : EnvWrapper(std::move(Inner)), Subset(std::move(Subset)) {
    rebuildSpace();
  }

  StatusOr<StepResult> step(const std::vector<int> &Actions) override {
    std::vector<int> Mapped;
    Mapped.reserve(Actions.size());
    for (int A : Actions) {
      if (A < 0 || static_cast<size_t>(A) >= Subset.size())
        return outOfRange("subset action " + std::to_string(A) +
                          " out of range");
      Mapped.push_back(Subset[A]);
    }
    return Inner->step(Mapped);
  }

  const service::ActionSpace &actionSpace() const override { return Space; }

private:
  void rebuildSpace();

  std::vector<int> Subset;
  service::ActionSpace Space;
};

/// Appends a (normalized) histogram of previous actions to Int64List
/// observations, the Fig 9 "w. hist" feature. The histogram is scaled by
/// HistScale to stay in integer range.
class ObservationHistogram : public EnvWrapper {
public:
  using Env::step;

  explicit ObservationHistogram(std::unique_ptr<Env> Inner,
                                int64_t HistScale = 100)
      : EnvWrapper(std::move(Inner)), HistScale(HistScale) {}

  StatusOr<service::Observation> reset() override {
    Histogram.assign(Inner->actionSpace().size(), 0);
    TotalActions = 0;
    CG_ASSIGN_OR_RETURN(service::Observation Obs, Inner->reset());
    appendHistogram(Obs);
    return Obs;
  }

  StatusOr<StepResult> step(const std::vector<int> &Actions) override {
    CG_ASSIGN_OR_RETURN(StepResult R, Inner->step(Actions));
    for (int A : Actions) {
      if (A >= 0 && static_cast<size_t>(A) < Histogram.size())
        ++Histogram[A];
      ++TotalActions;
    }
    appendHistogram(R.Obs);
    return R;
  }

private:
  void appendHistogram(service::Observation &Obs) const {
    for (int64_t Count : Histogram)
      Obs.Ints.push_back(TotalActions == 0
                             ? 0
                             : Count * HistScale / TotalActions);
  }

  std::vector<int64_t> Histogram;
  int64_t TotalActions = 0;
  int64_t HistScale;
};

} // namespace core
} // namespace compiler_gym

#endif // COMPILER_GYM_CORE_WRAPPERS_H
