//===- core/TransitionDatabase.cpp ----------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/TransitionDatabase.h"

#include "util/StringUtils.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace compiler_gym;
using namespace compiler_gym::core;

namespace {

std::string joinInts(const std::vector<int> &V) {
  std::string Out;
  for (size_t I = 0; I < V.size(); ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(V[I]);
  }
  return Out;
}

std::string joinInt64s(const std::vector<int64_t> &V) {
  std::string Out;
  for (size_t I = 0; I < V.size(); ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(V[I]);
  }
  return Out;
}

std::string joinDoubles(const std::vector<double> &V) {
  std::string Out;
  char Buf[32];
  for (size_t I = 0; I < V.size(); ++I) {
    if (I)
      Out += ',';
    std::snprintf(Buf, sizeof(Buf), "%.17g", V[I]);
    Out += Buf;
  }
  return Out;
}

std::vector<int> parseInts(const std::string &S) {
  std::vector<int> Out;
  if (S.empty())
    return Out;
  for (const std::string &Tok : splitString(S, ','))
    Out.push_back(static_cast<int>(std::strtol(Tok.c_str(), nullptr, 10)));
  return Out;
}

std::vector<int64_t> parseInt64s(const std::string &S) {
  std::vector<int64_t> Out;
  if (S.empty())
    return Out;
  for (const std::string &Tok : splitString(S, ','))
    Out.push_back(std::strtoll(Tok.c_str(), nullptr, 10));
  return Out;
}

std::vector<double> parseDoubles(const std::string &S) {
  std::vector<double> Out;
  if (S.empty())
    return Out;
  for (const std::string &Tok : splitString(S, ','))
    Out.push_back(std::strtod(Tok.c_str(), nullptr));
  return Out;
}

/// Escapes tabs/newlines/backslashes so payloads fit a TSV cell.
std::string escapeCell(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\t':
      Out += "\\t";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\\':
      Out += "\\\\";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string unescapeCell(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 == S.size()) {
      Out += S[I];
      continue;
    }
    ++I;
    switch (S[I]) {
    case 't':
      Out += '\t';
      break;
    case 'n':
      Out += '\n';
      break;
    default:
      Out += S[I];
    }
  }
  return Out;
}

StatusOr<std::vector<std::vector<std::string>>>
readTsv(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return notFound("cannot open '" + Path + "'");
  std::vector<std::vector<std::string>> Rows;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    Rows.push_back(splitString(Line, '\t'));
  }
  return Rows;
}

} // namespace

TransitionDatabase::TransitionDatabase(std::string Directory)
    : Dir(std::move(Directory)) {
  // The directory must exist before the writer thread opens its streams.
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  Writer = std::thread([this] { writerLoop(); });
}

TransitionDatabase::~TransitionDatabase() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Ready.notify_all();
  Writer.join();
}

void TransitionDatabase::appendStep(StepsRow Row) {
  std::string Line = escapeCell(Row.BenchmarkUri) + '\t' +
                     joinInts(Row.Actions) + '\t' + Row.StateId + '\t' +
                     (Row.EndOfEpisode ? "1" : "0") + '\t' +
                     joinDoubles(Row.Rewards);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    StepLines.push_back(std::move(Line));
    WriterIdle = false;
  }
  Ready.notify_one();
}

void TransitionDatabase::appendObservation(ObservationsRow Row) {
  std::string Line = Row.StateId + '\t' + escapeCell(Row.CompressedIr) +
                     '\t' + joinInt64s(Row.InstCounts) + '\t' +
                     joinInt64s(Row.Autophase);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ObsLines.push_back(std::move(Line));
    WriterIdle = false;
  }
  Ready.notify_one();
}

void TransitionDatabase::writerLoop() {
  std::ofstream Steps(Dir + "/steps.tsv", std::ios::app);
  std::ofstream Obs(Dir + "/observations.tsv", std::ios::app);
  for (;;) {
    std::deque<std::string> StepBatch, ObsBatch;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Ready.wait(Lock, [this] {
        return Stopping || !StepLines.empty() || !ObsLines.empty();
      });
      StepBatch.swap(StepLines);
      ObsBatch.swap(ObsLines);
      if (Stopping && StepBatch.empty() && ObsBatch.empty())
        return;
    }
    for (const std::string &Line : StepBatch)
      Steps << Line << '\n';
    for (const std::string &Line : ObsBatch)
      Obs << Line << '\n';
    Steps.flush();
    Obs.flush();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (StepLines.empty() && ObsLines.empty()) {
        WriterIdle = true;
        Idle.notify_all();
      }
      if (!Steps || !Obs)
        WriterStatus = internalError("transition database write failed");
    }
  }
}

Status TransitionDatabase::flush() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] {
    return WriterIdle && StepLines.empty() && ObsLines.empty();
  });
  return WriterStatus;
}

Status TransitionDatabase::buildTransitions() {
  CG_RETURN_IF_ERROR(flush());
  CG_ASSIGN_OR_RETURN(std::vector<StepsRow> Steps, readSteps());

  // Consecutive Steps rows within one episode define transitions; an
  // episode restarts when the action list is not an extension of the
  // previous one.
  std::ofstream Out(Dir + "/transitions.tsv", std::ios::trunc);
  if (!Out)
    return internalError("cannot write transitions table");
  std::set<std::string> Seen; // Dedup on (state, action, next).
  for (size_t I = 1; I < Steps.size(); ++I) {
    const StepsRow &Prev = Steps[I - 1];
    const StepsRow &Cur = Steps[I];
    if (Cur.BenchmarkUri != Prev.BenchmarkUri ||
        Cur.Actions.size() != Prev.Actions.size() + 1 ||
        !std::equal(Prev.Actions.begin(), Prev.Actions.end(),
                    Cur.Actions.begin()))
      continue;
    int Action = Cur.Actions.back();
    std::string Key =
        Prev.StateId + ':' + std::to_string(Action) + ':' + Cur.StateId;
    if (!Seen.insert(Key).second)
      continue;
    double Reward = Cur.Rewards.empty() ? 0.0 : Cur.Rewards.back();
    Out << Prev.StateId << '\t' << Action << '\t' << Cur.StateId << '\t'
        << joinDoubles({Reward}) << '\n';
  }
  return Status::ok();
}

StatusOr<std::vector<StepsRow>> TransitionDatabase::readSteps() const {
  CG_ASSIGN_OR_RETURN(auto Rows, readTsv(Dir + "/steps.tsv"));
  std::vector<StepsRow> Out;
  for (const auto &Fields : Rows) {
    if (Fields.size() != 5)
      continue;
    StepsRow Row;
    Row.BenchmarkUri = unescapeCell(Fields[0]);
    Row.Actions = parseInts(Fields[1]);
    Row.StateId = Fields[2];
    Row.EndOfEpisode = Fields[3] == "1";
    Row.Rewards = parseDoubles(Fields[4]);
    Out.push_back(std::move(Row));
  }
  return Out;
}

StatusOr<std::vector<ObservationsRow>>
TransitionDatabase::readObservations() const {
  CG_ASSIGN_OR_RETURN(auto Rows, readTsv(Dir + "/observations.tsv"));
  std::vector<ObservationsRow> Out;
  std::set<std::string> Seen; // De-duplicated by state id on read.
  for (const auto &Fields : Rows) {
    if (Fields.size() != 4)
      continue;
    if (!Seen.insert(Fields[0]).second)
      continue;
    ObservationsRow Row;
    Row.StateId = Fields[0];
    Row.CompressedIr = unescapeCell(Fields[1]);
    Row.InstCounts = parseInt64s(Fields[2]);
    Row.Autophase = parseInt64s(Fields[3]);
    Out.push_back(std::move(Row));
  }
  return Out;
}

StatusOr<std::vector<TransitionsRow>>
TransitionDatabase::readTransitions() const {
  CG_ASSIGN_OR_RETURN(auto Rows, readTsv(Dir + "/transitions.tsv"));
  std::vector<TransitionsRow> Out;
  for (const auto &Fields : Rows) {
    if (Fields.size() != 4)
      continue;
    TransitionsRow Row;
    Row.StateId = Fields[0];
    Row.Action = static_cast<int>(std::strtol(Fields[1].c_str(), nullptr,
                                              10));
    Row.NextStateId = Fields[2];
    Row.Rewards = parseDoubles(Fields[3]);
    Out.push_back(std::move(Row));
  }
  return Out;
}

// -- TransitionLogger ---------------------------------------------------------

TransitionLogger::TransitionLogger(std::unique_ptr<Env> Inner,
                                   TransitionDatabase *Db,
                                   std::function<std::string(Env &)> StateIdFn)
    : EnvWrapper(std::move(Inner)), Db(Db), StateIdFn(std::move(StateIdFn)) {}

StatusOr<service::Observation> TransitionLogger::reset() {
  CG_ASSIGN_OR_RETURN(service::Observation Obs, Inner->reset());
  EpisodeActions.clear();
  EpisodeRewards.clear();
  logState({}, 0.0, false);
  return Obs;
}

StatusOr<StepResult> TransitionLogger::step(const std::vector<int> &Actions) {
  CG_ASSIGN_OR_RETURN(StepResult R, Inner->step(Actions));
  logState(Actions, R.Reward, R.Done);
  return R;
}

void TransitionLogger::logState(const std::vector<int> &NewActions,
                                double Reward, bool Done) {
  EpisodeActions.insert(EpisodeActions.end(), NewActions.begin(),
                        NewActions.end());
  EpisodeRewards.push_back(Reward);
  std::string StateId = StateIdFn(*Inner);

  StepsRow Row;
  Row.BenchmarkUri = BenchmarkUri;
  Row.Actions = EpisodeActions;
  Row.StateId = StateId;
  Row.EndOfEpisode = Done;
  Row.Rewards = EpisodeRewards;
  Db->appendStep(std::move(Row));

  ObservationsRow ObsRow;
  ObsRow.StateId = StateId;
  // One RPC for all three logged spaces (ignore errors: non-IR envs lack
  // them, and the row columns just stay empty).
  ObservationView &View = Inner->observation();
  (void)View.prefetch({"Ir", "InstCount", "Autophase"});
  if (StatusOr<ObservationValue> Ir = View.get("Ir"); Ir.isOk())
    ObsRow.CompressedIr = Ir->raw().Str;
  if (StatusOr<ObservationValue> Ic = View.get("InstCount"); Ic.isOk())
    ObsRow.InstCounts = Ic->raw().Ints;
  if (StatusOr<ObservationValue> Ap = View.get("Autophase"); Ap.isOk())
    ObsRow.Autophase = Ap->raw().Ints;
  Db->appendObservation(std::move(ObsRow));
}
