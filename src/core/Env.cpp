//===- core/Env.cpp -------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Env.h"

using namespace compiler_gym;
using namespace compiler_gym::core;

Env::~Env() = default;
