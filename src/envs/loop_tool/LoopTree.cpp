//===- envs/loop_tool/LoopTree.cpp ----------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "envs/loop_tool/LoopTree.h"

#include <algorithm>
#include <sstream>

using namespace compiler_gym;
using namespace compiler_gym::envs;

LoopTree::LoopTree(int64_t NumElements) : N(std::max<int64_t>(1, NumElements)) {
  Loops.push_back({N, false});
}

bool LoopTree::toggleMode() {
  Mode = Mode == CursorMode::Move ? CursorMode::Modify : CursorMode::Move;
  return true;
}

bool LoopTree::cursorUp() {
  if (Mode == CursorMode::Move) {
    if (Cursor == 0)
      return false;
    --Cursor;
    return true;
  }
  Loops[Cursor].Size += 1;
  rebalance(Cursor);
  return true;
}

bool LoopTree::cursorDown() {
  if (Mode == CursorMode::Move) {
    if (Cursor + 1 >= static_cast<int>(Loops.size()))
      return false;
    ++Cursor;
    return true;
  }
  if (Loops[Cursor].Size <= 1)
    return false;
  Loops[Cursor].Size -= 1;
  rebalance(Cursor);
  return true;
}

bool LoopTree::thread() {
  Loops[Cursor].Threaded = !Loops[Cursor].Threaded;
  return true;
}

bool LoopTree::split() {
  if (Loops[Cursor].Size < 2)
    return false;
  int64_t Outer = (Loops[Cursor].Size + 1) / 2;
  Loop Inner{2, false};
  Loops[Cursor].Size = Outer;
  Loops.insert(Loops.begin() + Cursor + 1, Inner);
  return true;
}

void LoopTree::rebalance(int ChangedIndex) {
  // The outermost loop other than the changed one absorbs the difference
  // so that coverage >= N with minimal overshoot.
  int Parent = ChangedIndex == 0 && Loops.size() > 1 ? 1 : 0;
  if (Parent == ChangedIndex)
    return; // Single loop: its size is its size.
  int64_t Others = 1;
  for (size_t I = 0; I < Loops.size(); ++I)
    if (static_cast<int>(I) != Parent)
      Others *= std::max<int64_t>(1, Loops[I].Size);
  Loops[Parent].Size = std::max<int64_t>(1, (N + Others - 1) / Others);
}

int64_t LoopTree::totalThreads() const {
  int64_t T = 1;
  for (const Loop &L : Loops)
    if (L.Threaded)
      T *= std::max<int64_t>(1, L.Size);
  return T;
}

int64_t LoopTree::coverage() const {
  int64_t C = 1;
  for (const Loop &L : Loops)
    C *= std::max<int64_t>(1, L.Size);
  return C;
}

std::string LoopTree::dump() const {
  std::ostringstream OS;
  std::string Indent;
  char Var = 'a';
  for (size_t I = 0; I < Loops.size(); ++I) {
    OS << Indent << "for " << Var << std::string(I, '\'') << " in "
       << Loops[I].Size << " : L" << I;
    if (Loops[I].Threaded)
      OS << " [thread]";
    if (static_cast<int>(I) == Cursor)
      OS << (Mode == CursorMode::Move ? "  <- cursor" : "  <- cursor [mod]");
    OS << '\n';
    Indent += "  ";
  }
  OS << Indent << "%0[a] <- read()\n";
  OS << Indent << "%1[a] <- read()\n";
  OS << Indent << "%2[a] <- add(%0, %1)\n";
  OS << Indent << "%3[a] <- write(%2)\n";
  return OS.str();
}
