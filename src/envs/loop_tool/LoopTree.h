//===- envs/loop_tool/LoopTree.h - Loop nest state --------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop_tool environment's state (§V-C): a loop nest over a pointwise
/// addition `%2[a] <- add(%0, %1)` of N elements, manipulated through a
/// cursor-based action space:
///   * toggle-mode — switch the cursor between Move and Modify;
///   * up / down   — Move mode: shift the cursor outward/inward.
///                   Modify mode: up grows the cursor's loop size by one
///                   (the parent re-sizes to accommodate, tail handled by
///                   the cost model); down shrinks it;
///   * thread      — schedule the cursor's loop across CUDA threads;
///   * split       — (extended space) split the cursor's loop in two,
///                   deepening the hierarchy.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ENVS_LOOP_TOOL_LOOPTREE_H
#define COMPILER_GYM_ENVS_LOOP_TOOL_LOOPTREE_H

#include <cstdint>
#include <string>
#include <vector>

namespace compiler_gym {
namespace envs {

/// One level of the loop nest.
struct Loop {
  int64_t Size = 1;
  bool Threaded = false;
};

/// Cursor modes.
enum class CursorMode { Move = 0, Modify = 1 };

/// The mutable loop-nest state.
class LoopTree {
public:
  /// Pointwise addition over \p NumElements.
  explicit LoopTree(int64_t NumElements);

  int64_t numElements() const { return N; }
  const std::vector<Loop> &loops() const { return Loops; }
  int cursor() const { return Cursor; }
  CursorMode mode() const { return Mode; }

  // -- Actions (all return true if the state changed) -----------------------
  bool toggleMode();
  bool cursorUp();   ///< Move: outward. Modify: grow loop size by one.
  bool cursorDown(); ///< Move: inward. Modify: shrink loop size by one.
  bool thread();     ///< Toggle threading annotation at the cursor.
  bool split();      ///< Split the cursor's loop (inner factor 2).

  /// Total threads launched (product of threaded loop sizes).
  int64_t totalThreads() const;

  /// Elements each innermost iteration covers = product of all sizes; the
  /// tail inefficiency is (coverage - N) / coverage when positive.
  int64_t coverage() const;

  /// Textual dump in the paper's Listing 4 style.
  std::string dump() const;

private:
  /// After a size change, re-derives the outermost unthreaded loop extent
  /// so the nest still covers N ("changing the size of the parent loop to
  /// accommodate the new inner size").
  void rebalance(int ChangedIndex);

  int64_t N;
  std::vector<Loop> Loops;
  int Cursor = 0;
  CursorMode Mode = CursorMode::Move;
};

} // namespace envs
} // namespace compiler_gym

#endif // COMPILER_GYM_ENVS_LOOP_TOOL_LOOPTREE_H
