//===- envs/loop_tool/GpuModel.cpp ----------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "envs/loop_tool/GpuModel.h"

#include <algorithm>
#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::envs;

double envs::theoreticalPeakFlops(const GpuDescriptor &Gpu) {
  return Gpu.MemoryBandwidthBytesPerSec / Gpu.BytesPerElement;
}

double envs::modelFlops(const LoopTree &Tree, const GpuDescriptor &Gpu) {
  const double N = static_cast<double>(Tree.numElements());
  const double Threads = static_cast<double>(Tree.totalThreads());
  const double Coverage = static_cast<double>(Tree.coverage());

  // Wasted work from overshoot (tail iterations past N).
  const double TailEfficiency = std::min(1.0, N / std::max(1.0, Coverage));

  if (Threads <= 1.0) {
    // Serial execution on one CUDA thread.
    double Seconds = Gpu.KernelLaunchSeconds +
                     Coverage * Gpu.SerialElementSeconds;
    return N / Seconds * TailEfficiency / std::max(1.0, Coverage / N);
  }

  const double ElemPerThread = Coverage / Threads;

  // Occupancy: throughput ramps with resident warps. Sub-warp remainders
  // waste lanes; saturation near 25% of max resident threads.
  double WarpQuant =
      std::floor(Threads / Gpu.WarpSize) * Gpu.WarpSize / Threads;
  if (Threads < Gpu.WarpSize)
    WarpQuant = Threads / Gpu.WarpSize; // Partial single warp.
  const double Saturation =
      std::min(1.0, std::pow(Threads / (0.25 * Gpu.MaxResidentThreads), 0.7));

  // Per-thread instruction overhead: too few elements per thread wastes
  // issue slots on loop scaffolding; extremely many mildly serializes
  // (less latency hiding). Sweet spot is a wide band around 2..1024.
  double IlpFactor = 1.0;
  if (ElemPerThread < 2.0)
    IlpFactor = 0.65 + 0.175 * ElemPerThread;
  else if (ElemPerThread > 1024.0)
    IlpFactor = std::max(0.5, std::pow(1024.0 / ElemPerThread, 0.3));

  // Scheduler cliff past ~100k threads (Fig 7's drop): block scheduling
  // overhead grows once the resident-thread budget is oversubscribed.
  double CliffFactor = 1.0;
  if (Threads > Gpu.SchedulerCliffThreads) {
    double Over = std::min(1.0, (Threads - Gpu.SchedulerCliffThreads) /
                                    Gpu.SchedulerCliffThreads);
    CliffFactor = 1.0 - Gpu.SchedulerCliffPenalty * Over;
  }

  const double Efficiency = Gpu.MaxEfficiency * WarpQuant * Saturation *
                            IlpFactor * CliffFactor * TailEfficiency;
  const double SteadyRate = theoreticalPeakFlops(Gpu) *
                            std::clamp(Efficiency, 0.0, 1.0);

  const double Seconds = Gpu.KernelLaunchSeconds +
                         Threads * Gpu.PerThreadSetupSeconds +
                         Coverage / std::max(SteadyRate, 1.0);
  return N / Seconds;
}

double envs::measureFlops(const LoopTree &Tree, Rng &Gen,
                          const GpuDescriptor &Gpu) {
  double Noise = 1.0 + Gen.gaussian(0.0, 0.02);
  return modelFlops(Tree, Gpu) * std::max(0.5, Noise);
}
