//===- envs/loop_tool/GpuModel.h - GP100 roofline model ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An analytic performance model of a Pascal GP100 GPU running the
/// pointwise-addition loop nest. No GPU is available offline, so this
/// model substitutes for CUDA execution (see DESIGN.md). It reproduces the
/// qualitative landscape of the paper's Fig 7:
///   * bandwidth-bound plateau at roughly 73% of the theoretical peak
///     (~6.0e10 FLOP/s for 2 x 4-byte reads + 1 write at 720 GB/s);
///   * steep under-occupancy penalty for small thread counts;
///   * a performance drop past ~100k threads (scheduling overhead);
///   * tail losses when the nest overshoots N;
///   * multiplicative measurement noise (benchmarking is nondeterministic).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ENVS_LOOP_TOOL_GPUMODEL_H
#define COMPILER_GYM_ENVS_LOOP_TOOL_GPUMODEL_H

#include "envs/loop_tool/LoopTree.h"
#include "util/Rng.h"

namespace compiler_gym {
namespace envs {

/// GP100-flavoured machine constants.
struct GpuDescriptor {
  double MemoryBandwidthBytesPerSec = 720e9; ///< HBM2.
  double BytesPerElement = 12.0;  ///< Two 4-byte reads + one 4-byte write.
  int NumSms = 56;
  int WarpSize = 32;
  int MaxResidentThreads = 56 * 2048;
  double KernelLaunchSeconds = 3e-6;
  double PerThreadSetupSeconds = 2e-10;  ///< Block scheduling amortized.
  double SerialElementSeconds = 2.2e-9;  ///< Single-thread element time.
  double SchedulerCliffThreads = 1.0e5;  ///< Fig 7's ~100k-thread drop.
  double SchedulerCliffPenalty = 0.45;   ///< Fractional throughput loss.
  double MaxEfficiency = 0.735;          ///< Paper: 73.5% of peak at best.
};

/// Theoretical peak FLOP/s for the pointwise problem (bandwidth bound).
double theoreticalPeakFlops(const GpuDescriptor &Gpu = {});

/// Deterministic FLOPs estimate for executing \p Tree.
double modelFlops(const LoopTree &Tree, const GpuDescriptor &Gpu = {});

/// Noisy "benchmark measurement" of \p Tree (2% multiplicative noise).
double measureFlops(const LoopTree &Tree, Rng &Gen,
                    const GpuDescriptor &Gpu = {});

} // namespace envs
} // namespace compiler_gym

#endif // COMPILER_GYM_ENVS_LOOP_TOOL_GPUMODEL_H
