//===- envs/loop_tool/LoopToolSession.h - CUDA tuning backend ---*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop_tool environment backend (§V-C). Benchmarks name the problem
/// size (elements of the pointwise addition); actions drive the
/// cursor-based loop-nest editor; the reward signal is simulated-GPU
/// FLOPs, platform-dependent and nondeterministic like real benchmarking.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ENVS_LOOP_TOOL_LOOPTOOLSESSION_H
#define COMPILER_GYM_ENVS_LOOP_TOOL_LOOPTOOLSESSION_H

#include "envs/loop_tool/GpuModel.h"
#include "envs/loop_tool/LoopTree.h"
#include "service/CompilationSession.h"

#include <memory>
#include <optional>

namespace compiler_gym {
namespace envs {

/// Registers the "loop_tool" compiler with the service runtime.
void registerLoopToolEnvironment();

class LoopToolSession : public service::CompilationSession {
public:
  LoopToolSession();

  std::vector<service::ActionSpace> getActionSpaces() override;
  std::vector<service::ObservationSpaceInfo> getObservationSpaces() override;
  Status init(const service::ActionSpace &Space,
              const datasets::Benchmark &Bench) override;
  Status applyAction(const service::Action &A, bool &EndOfEpisode,
                     bool &ActionSpaceChanged) override;
  Status computeObservation(const service::ObservationSpaceInfo &Space,
                            service::Observation &Out) override;
  StatusOr<std::unique_ptr<CompilationSession>> fork() override;

  /// Action name lists (shared with tests).
  static const std::vector<std::string> &baseActions();
  static const std::vector<std::string> &extendedActions();

private:
  std::optional<LoopTree> Tree;
  bool ExtendedSpace = false;
  Rng NoiseGen{0x6F00D5};
};

} // namespace envs
} // namespace compiler_gym

#endif // COMPILER_GYM_ENVS_LOOP_TOOL_LOOPTOOLSESSION_H
