//===- envs/loop_tool/LoopToolSession.cpp ---------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "envs/loop_tool/LoopToolSession.h"

#include "util/Hash.h"

#include <mutex>

using namespace compiler_gym;
using namespace compiler_gym::envs;
using namespace compiler_gym::service;

const std::vector<std::string> &LoopToolSession::baseActions() {
  static const std::vector<std::string> Actions = {"toggle-mode", "up",
                                                   "down", "thread"};
  return Actions;
}

const std::vector<std::string> &LoopToolSession::extendedActions() {
  static const std::vector<std::string> Actions = {"toggle-mode", "up",
                                                   "down", "thread", "split"};
  return Actions;
}

LoopToolSession::LoopToolSession() = default;

std::vector<ActionSpace> LoopToolSession::getActionSpaces() {
  ActionSpace Base;
  Base.Name = "loop_tool-v0";
  Base.ActionNames = baseActions();
  ActionSpace Extended;
  Extended.Name = "loop_tool-split-v0";
  Extended.ActionNames = extendedActions();
  return {Base, Extended};
}

std::vector<ObservationSpaceInfo> LoopToolSession::getObservationSpaces() {
  ObservationSpaceInfo State;
  State.Name = "action_state";
  State.Type = ObservationType::Int64List;
  State.Shape = {4}; // cursor, mode, loop count, total threads.
  State.RangeMin = 0.0;
  ObservationSpaceInfo TreeDump;
  TreeDump.Name = "loop_tree";
  TreeDump.Type = ObservationType::String;
  ObservationSpaceInfo Flops;
  Flops.Name = "flops";
  Flops.Type = ObservationType::DoubleValue;
  Flops.RangeMin = 0.0;
  Flops.Deterministic = false;
  Flops.PlatformDependent = true;
  return {State, TreeDump, Flops};
}

Status LoopToolSession::init(const ActionSpace &Space,
                             const datasets::Benchmark &Bench) {
  ExtendedSpace = Space.Name == "loop_tool-split-v0";
  int64_t N = Bench.Inputs.empty() ? (1 << 20) : Bench.Inputs[0];
  if (N <= 0)
    return invalidArgument("loop_tool benchmark size must be positive");
  Tree.emplace(N);
  NoiseGen.reseed(fnv1a(Bench.Uri) ^ 0xD00DFEEDull);
  return Status::ok();
}

Status LoopToolSession::applyAction(const Action &A, bool &EndOfEpisode,
                                    bool &ActionSpaceChanged) {
  EndOfEpisode = false;
  ActionSpaceChanged = false;
  if (!Tree)
    return failedPrecondition("session not initialized");
  const auto &Names = ExtendedSpace ? extendedActions() : baseActions();
  if (A.Index < 0 || static_cast<size_t>(A.Index) >= Names.size())
    return outOfRange("loop_tool action " + std::to_string(A.Index) +
                      " out of range");
  const std::string &Name = Names[A.Index];
  if (Name == "toggle-mode")
    Tree->toggleMode();
  else if (Name == "up")
    Tree->cursorUp();
  else if (Name == "down")
    Tree->cursorDown();
  else if (Name == "thread")
    Tree->thread();
  else if (Name == "split")
    Tree->split();
  return Status::ok();
}

Status LoopToolSession::computeObservation(const ObservationSpaceInfo &Space,
                                           Observation &Out) {
  if (!Tree)
    return failedPrecondition("session not initialized");
  Out.Type = Space.Type;
  if (Space.Name == "action_state") {
    Out.Ints = {static_cast<int64_t>(Tree->cursor()),
                static_cast<int64_t>(Tree->mode()),
                static_cast<int64_t>(Tree->loops().size()),
                Tree->totalThreads()};
    return Status::ok();
  }
  if (Space.Name == "loop_tree") {
    Out.Str = Tree->dump();
    return Status::ok();
  }
  if (Space.Name == "flops") {
    Out.DoubleValue = measureFlops(*Tree, NoiseGen);
    return Status::ok();
  }
  return notFound("unknown observation space '" + Space.Name + "'");
}

StatusOr<std::unique_ptr<CompilationSession>> LoopToolSession::fork() {
  auto Clone = std::make_unique<LoopToolSession>();
  Clone->Tree = Tree;
  Clone->ExtendedSpace = ExtendedSpace;
  Clone->NoiseGen = NoiseGen.split();
  return StatusOr<std::unique_ptr<CompilationSession>>(std::move(Clone));
}

void envs::registerLoopToolEnvironment() {
  static std::once_flag Flag;
  std::call_once(Flag, [] {
    service::registerCompilationSession(
        "loop_tool", [] { return std::make_unique<LoopToolSession>(); });
  });
}
