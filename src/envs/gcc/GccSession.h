//===- envs/gcc/GccSession.h - Flag-tuning backend --------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GCC flag-tuning environment backend (§V-B). Environment state is
/// the *choice vector* over the 502-option command line, not the IR: each
/// observation recompiles the benchmark from source under the current
/// flags, exactly like the paper's GCC environment. Two action spaces:
/// "gcc-categorical-v0" (the per-value/±delta list) and "gcc-direct-v0"
/// (one step carries the whole choice vector in Action::Values).
///
/// Observations: asm text, object bytes, instruction count, choices,
/// AsmSizeBytes / ObjSizeBytes (reward bases vs -Os).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ENVS_GCC_GCCSESSION_H
#define COMPILER_GYM_ENVS_GCC_GCCSESSION_H

#include "envs/gcc/OptionSpec.h"
#include "ir/Module.h"
#include "service/CompilationSession.h"

#include <memory>

namespace compiler_gym {
namespace envs {

/// Registers the "gcc" compiler with the service runtime. Idempotent.
void registerGccEnvironment();

class GccSession : public service::CompilationSession {
public:
  GccSession();

  std::vector<service::ActionSpace> getActionSpaces() override;
  std::vector<service::ObservationSpaceInfo> getObservationSpaces() override;
  Status init(const service::ActionSpace &Space,
              const datasets::Benchmark &Bench) override;
  Status applyAction(const service::Action &A, bool &EndOfEpisode,
                     bool &ActionSpaceChanged) override;
  Status computeObservation(const service::ObservationSpaceInfo &Space,
                            service::Observation &Out) override;
  StatusOr<std::unique_ptr<CompilationSession>> fork() override;

  /// The option space singleton (shared by tests and benches).
  static const GccOptionSpace &optionSpace();

private:
  Status recompileIfNeeded();

  bool DirectSpace = false;
  std::unique_ptr<ir::Module> Source;   ///< Pristine parsed benchmark.
  std::unique_ptr<ir::Module> Compiled; ///< Result under current choices.
  std::vector<int64_t> Choices;
  bool Dirty = true;
  int64_t BaselineOsSize = -1; ///< -Os object size, for scaled rewards.
};

} // namespace envs
} // namespace compiler_gym

#endif // COMPILER_GYM_ENVS_GCC_GCCSESSION_H
