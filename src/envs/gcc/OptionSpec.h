//===- envs/gcc/OptionSpec.h - GCC command-line space -----------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GCC optimization space (§V-B): a data-driven table of command-line
/// options mirroring the structure the paper extracts from `gcc --help`:
/// one -O<n> selector, a bank of -f<flag>/-fno-<flag> tri-state flags, and
/// a bank of --param name=value options with per-param value lists. The
/// table has 502 options total, like GCC 11.2.0 in the paper.
///
/// Two action spaces are derived from the table (§V-B "Actions"):
///  * the *direct* space — one integer choice per option;
///  * the *categorical* space — for options with cardinality < 10, one
///    action per (option, value) pair; for larger options, +/-1, +/-10,
///    +/-100, +/-1000 adjustment actions.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ENVS_GCC_OPTIONSPEC_H
#define COMPILER_GYM_ENVS_GCC_OPTIONSPEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace compiler_gym {
namespace envs {

/// One command-line option.
struct GccOption {
  enum class Kind {
    OLevel, ///< -O0..-Oz selector.
    Flag,   ///< -f<name> tri-state: unset / on / off.
    Param,  ///< --param <name>=<value-index>.
  };
  Kind OptKind = Kind::Flag;
  std::string Name;
  int64_t Cardinality = 3;   ///< Number of choices (choice 0 = default).
  /// For Param options, the concrete value for each choice index.
  std::vector<int64_t> ParamValues;
  /// The pass (or knob) this option controls; empty = placebo (most GCC
  /// flags do not affect a given program either).
  std::string ControlledPass;
};

/// One categorical action over the option bank.
struct GccAction {
  int32_t OptionIndex = 0;
  bool IsDelta = false;  ///< Adjustment (+=Delta) vs absolute (=SetTo).
  int64_t Delta = 0;
  int64_t SetTo = 0;
  std::string Name;      ///< Human-readable ("-ftree-gvn", "param[3] += 10").
};

/// The full option table plus derived action list.
class GccOptionSpace {
public:
  /// Builds the option table for a "gcc version"; 11 gives the full
  /// 502-option table, earlier versions expose fewer params (the paper
  /// notes GCC 5's space is smaller).
  explicit GccOptionSpace(int GccVersion = 11);

  const std::vector<GccOption> &options() const { return Options; }
  const std::vector<GccAction> &actions() const { return Actions; }

  /// log10 of the number of distinct configurations.
  double log10SpaceSize() const;

  /// The default choice vector (all zeros).
  std::vector<int64_t> defaultChoices() const {
    return std::vector<int64_t>(Options.size(), 0);
  }

  /// Applies categorical action \p ActionIndex to \p Choices (clamping).
  /// Returns false for out-of-range action indices.
  bool applyAction(size_t ActionIndex, std::vector<int64_t> &Choices) const;

  /// Translates a choice vector into the pass pipeline + knobs it encodes.
  struct CompilePlan {
    std::string OLevel = "-O0";
    std::vector<std::string> ExtraPasses;
    std::vector<std::string> DisabledPasses;
    int PipelineRounds = 1;
    unsigned InlineThreshold = 0; ///< 0: from -O level.
    unsigned UnrollTripLimit = 0;
  };
  CompilePlan plan(const std::vector<int64_t> &Choices) const;

private:
  std::vector<GccOption> Options;
  std::vector<GccAction> Actions;
};

} // namespace envs
} // namespace compiler_gym

#endif // COMPILER_GYM_ENVS_GCC_OPTIONSPEC_H
