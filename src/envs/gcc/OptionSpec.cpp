//===- envs/gcc/OptionSpec.cpp --------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "envs/gcc/OptionSpec.h"

#include "passes/PassRegistry.h"

#include <algorithm>
#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::envs;

GccOptionSpace::GccOptionSpace(int GccVersion) {
  // -- Option 0: the -O level selector (7 choices incl. "unset"). ---------
  {
    GccOption O;
    O.OptKind = GccOption::Kind::OLevel;
    O.Name = "-O";
    O.Cardinality = 7; // unset, -O0, -O1, -O2, -O3, -Os, -Oz.
    Options.push_back(O);
  }

  // -- 242 tri-state flags. -----------------------------------------------
  // Real flags first: one per registered pass (the flag gates that pass).
  std::vector<std::string> PassNames =
      passes::PassRegistry::instance().defaultActionNames();
  size_t RealFlags = 0;
  for (const std::string &PassName : PassNames) {
    if (PassName.find('<') != std::string::npos)
      continue; // Parameterized passes are controlled via --param below.
    GccOption O;
    O.OptKind = GccOption::Kind::Flag;
    O.Name = "-f" + PassName;
    O.Cardinality = 3;
    O.ControlledPass = PassName;
    Options.push_back(O);
    ++RealFlags;
  }
  // Placebo flags with GCC-flavoured names fill the bank to 242. Most GCC
  // flags do nothing for any particular program; an agent must learn to
  // ignore them, which is part of what makes the space hard.
  static const char *PlaceboStems[] = {
      "align-functions",   "align-jumps",      "align-labels",
      "branch-count-reg",  "caller-saves",     "code-hoisting",
      "combine-stack-adjustments", "compare-elim", "cprop-registers",
      "crossjumping",      "cse-follow-jumps", "dce-fast",
      "defer-pop",         "delayed-branch",   "devirtualize",
      "expensive-optimizations", "forward-propagate", "gcse-after-reload",
      "guess-branch-probability", "hoist-adjacent-loads", "if-conversion",
      "if-conversion2",    "indirect-inlining", "ipa-bit-cp",
      "ipa-cp",            "ipa-icf",          "ipa-modref",
      "ipa-profile",       "ipa-pure-const",   "ipa-ra",
      "ipa-reference",     "ipa-sra",          "ira-hoist-pressure",
      "isolate-erroneous-paths", "ivopts",     "jump-tables",
      "lifetime-dse",      "live-range-shrinkage", "loop-interchange",
      "lra-remat",         "modulo-sched",     "move-loop-invariants",
      "omit-frame-pointer", "optimize-sibling-calls", "partial-inlining",
      "peephole2",         "plt",              "predictive-commoning",
      "prefetch-loop-arrays", "ree",           "rename-registers",
      "reorder-blocks",    "reorder-functions", "rerun-cse-after-loop",
      "sched-critical-path-heuristic", "sched-dep-count-heuristic",
      "sched-interblock",  "sched-last-insn-heuristic", "sched-pressure",
      "sched-rank-heuristic", "sched-spec",    "sched-spec-insn-heuristic",
      "sched-stalled-insns", "schedule-fusion", "schedule-insns",
      "schedule-insns2",   "section-anchors",  "sel-sched-pipelining",
      "shrink-wrap",       "signed-zeros",     "split-ivs-in-unroller",
      "split-loops",       "split-paths",      "split-wide-types",
      "ssa-backprop",      "ssa-phiopt",       "stdarg-opt",
      "store-merging",     "strict-aliasing",  "thread-jumps",
      "tracer",            "tree-bit-ccp",     "tree-builtin-call-dce",
      "tree-ccp",          "tree-ch",          "tree-coalesce-vars",
      "tree-copy-prop",    "tree-cselim",      "tree-dominator-opts",
      "tree-dse",          "tree-forwprop",    "tree-fre",
      "tree-loop-distribute-patterns", "tree-loop-distribution",
      "tree-loop-if-convert", "tree-loop-im",  "tree-loop-ivcanon",
      "tree-loop-optimize", "tree-loop-vectorize", "tree-partial-pre",
      "tree-phiprop",      "tree-pre",         "tree-pta",
      "tree-reassoc",      "tree-scev-cprop",  "tree-sink",
      "tree-slp-vectorize", "tree-slsr",       "tree-sra",
      "tree-switch-conversion", "tree-tail-merge", "tree-ter",
      "tree-vectorize",    "tree-vrp",         "unconstrained-commons",
      "unroll-all-loops",  "unswitch-loops",   "unwind-tables",
      "variable-expansion-in-unroller", "vect-cost-model", "web",
      "wrapv",             "peel-loops",       "finite-loops",
      "fast-math",         "float-store",      "keep-inline-functions",
      "merge-constants",   "pack-struct",      "short-enums",
      "single-precision-constant", "stack-protector", "trapv",
  };
  size_t PlaceboNeeded = 242 > RealFlags ? 242 - RealFlags : 0;
  for (size_t I = 0; I < PlaceboNeeded; ++I) {
    GccOption O;
    O.OptKind = GccOption::Kind::Flag;
    std::string Stem = PlaceboStems[I % std::size(PlaceboStems)];
    if (I >= std::size(PlaceboStems))
      Stem += "-" + std::to_string(I / std::size(PlaceboStems));
    O.Name = "-f" + Stem;
    O.Cardinality = 3;
    Options.push_back(O);
  }

  // -- 259 --param options, totalling 502 with the -O selector and the 242
  // flags (GCC 5 reports far fewer params, per the paper). ------------------
  size_t NumParams = GccVersion >= 11 ? 259 : 64;
  auto addParam = [&](const std::string &Name, std::vector<int64_t> Values,
                      const std::string &Controls = "") {
    GccOption O;
    O.OptKind = GccOption::Kind::Param;
    O.Name = "--param " + Name;
    O.ParamValues = std::move(Values);
    O.Cardinality = static_cast<int64_t>(O.ParamValues.size());
    O.ControlledPass = Controls;
    Options.push_back(O);
  };
  // Meaningful params: inline threshold, unroll limit, pipeline rounds.
  addParam("inline-unit-growth",
           {0, 10, 20, 35, 50, 75, 100, 150, 225, 300, 450, 600},
           "inline-threshold");
  addParam("max-unrolled-insns", {0, 2, 4, 8, 16, 32, 64, 128},
           "unroll-trip");
  addParam("passes-rounds", {1, 2, 3, 4}, "pipeline-rounds");
  // The rest: placebo params with wide numeric ranges, as in real GCC.
  size_t ParamsSoFar = 3;
  for (size_t I = ParamsSoFar; I < NumParams; ++I) {
    std::vector<int64_t> Values;
    // Ranges vary per param, like GCC's (some booleans, some huge).
    size_t Cardinality = 2 + (I * 7) % 99;
    for (size_t V = 0; V < Cardinality; ++V)
      Values.push_back(static_cast<int64_t>(V * (1 + I % 10)));
    addParam("placebo-param-" + std::to_string(I), std::move(Values));
  }

  // -- Derived categorical action list. -------------------------------------
  for (size_t OptIdx = 0; OptIdx < Options.size(); ++OptIdx) {
    const GccOption &O = Options[OptIdx];
    if (O.Cardinality < 10) {
      for (int64_t V = 0; V < O.Cardinality; ++V) {
        GccAction A;
        A.OptionIndex = static_cast<int32_t>(OptIdx);
        A.SetTo = V;
        A.Name = O.Name + "=" + std::to_string(V);
        Actions.push_back(A);
      }
      continue;
    }
    for (int64_t Delta : {1, -1, 10, -10, 100, -100, 1000, -1000}) {
      GccAction A;
      A.OptionIndex = static_cast<int32_t>(OptIdx);
      A.IsDelta = true;
      A.Delta = Delta;
      A.Name = O.Name + (Delta > 0 ? "+=" : "-=") +
               std::to_string(std::abs(Delta));
      Actions.push_back(A);
    }
  }
}

double GccOptionSpace::log10SpaceSize() const {
  double Log = 0.0;
  for (const GccOption &O : Options)
    Log += std::log10(static_cast<double>(O.Cardinality));
  return Log;
}

bool GccOptionSpace::applyAction(size_t ActionIndex,
                                 std::vector<int64_t> &Choices) const {
  if (ActionIndex >= Actions.size() || Choices.size() != Options.size())
    return false;
  const GccAction &A = Actions[ActionIndex];
  const GccOption &O = Options[A.OptionIndex];
  int64_t &Choice = Choices[A.OptionIndex];
  if (A.IsDelta)
    Choice = std::clamp<int64_t>(Choice + A.Delta, 0, O.Cardinality - 1);
  else
    Choice = std::clamp<int64_t>(A.SetTo, 0, O.Cardinality - 1);
  return true;
}

GccOptionSpace::CompilePlan
GccOptionSpace::plan(const std::vector<int64_t> &Choices) const {
  CompilePlan Plan;
  static const char *Levels[] = {"-O0", "-O0", "-O1", "-O2",
                                 "-O3", "-Os", "-Oz"};
  for (size_t I = 0; I < Options.size() && I < Choices.size(); ++I) {
    const GccOption &O = Options[I];
    int64_t Choice = std::clamp<int64_t>(Choices[I], 0, O.Cardinality - 1);
    switch (O.OptKind) {
    case GccOption::Kind::OLevel:
      Plan.OLevel = Levels[Choice];
      break;
    case GccOption::Kind::Flag:
      if (O.ControlledPass.empty())
        break;
      if (Choice == 1)
        Plan.ExtraPasses.push_back(O.ControlledPass);
      else if (Choice == 2)
        Plan.DisabledPasses.push_back(O.ControlledPass);
      break;
    case GccOption::Kind::Param: {
      if (O.ControlledPass.empty())
        break;
      int64_t V = O.ParamValues[static_cast<size_t>(Choice)];
      if (O.ControlledPass == "inline-threshold")
        Plan.InlineThreshold = static_cast<unsigned>(V);
      else if (O.ControlledPass == "unroll-trip")
        Plan.UnrollTripLimit = static_cast<unsigned>(V);
      else if (O.ControlledPass == "pipeline-rounds")
        Plan.PipelineRounds = static_cast<int>(V);
      break;
    }
    }
  }
  return Plan;
}
