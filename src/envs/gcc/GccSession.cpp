//===- envs/gcc/GccSession.cpp --------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "envs/gcc/GccSession.h"

#include "ir/Lowering.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/PassManager.h"
#include "passes/Pipelines.h"

#include <algorithm>
#include <mutex>

using namespace compiler_gym;
using namespace compiler_gym::envs;
using namespace compiler_gym::service;

const GccOptionSpace &GccSession::optionSpace() {
  static GccOptionSpace Space(11);
  return Space;
}

GccSession::GccSession() = default;

std::vector<ActionSpace> GccSession::getActionSpaces() {
  const GccOptionSpace &Spec = optionSpace();
  ActionSpace Categorical;
  Categorical.Name = "gcc-categorical-v0";
  Categorical.ActionNames.reserve(Spec.actions().size());
  for (const GccAction &A : Spec.actions())
    Categorical.ActionNames.push_back(A.Name);

  ActionSpace Direct;
  Direct.Name = "gcc-direct-v0";
  Direct.ActionNames = {"set-choices"}; // Values carried in Action::Values.
  return {Categorical, Direct};
}

std::vector<ObservationSpaceInfo> GccSession::getObservationSpaces() {
  auto info = [](const char *Name, ObservationType Ty) {
    ObservationSpaceInfo O;
    O.Name = Name;
    O.Type = Ty;
    if (Ty == ObservationType::Int64Value)
      O.RangeMin = 0.0; // All scalar spaces here are sizes/counts.
    O.Deterministic = true;
    O.PlatformDependent = Ty != ObservationType::Int64List;
    return O;
  };
  ObservationSpaceInfo Choices = info("Choices", ObservationType::Int64List);
  const std::vector<GccOption> &Options = optionSpace().options();
  Choices.Shape = {static_cast<int64_t>(Options.size())};
  Choices.RangeMin = 0.0;
  int64_t MaxCardinality = 0;
  for (const GccOption &O : Options)
    MaxCardinality = std::max(MaxCardinality, O.Cardinality);
  Choices.RangeMax = static_cast<double>(MaxCardinality - 1);
  return {
      info("InstructionCount", ObservationType::Int64Value),
      Choices,
      info("Rtl", ObservationType::String),
      info("Asm", ObservationType::String),
      info("Obj", ObservationType::Binary),
      info("AsmSizeBytes", ObservationType::Int64Value),
      info("ObjSizeBytes", ObservationType::Int64Value),
      info("ObjSizeOs", ObservationType::Int64Value),
  };
}

Status GccSession::init(const ActionSpace &Space,
                        const datasets::Benchmark &Bench) {
  DirectSpace = Space.Name == "gcc-direct-v0";
  CG_ASSIGN_OR_RETURN(Source, ir::parseModule(Bench.IrText));
  Choices = optionSpace().defaultChoices();
  Dirty = true;
  Compiled.reset();
  BaselineOsSize = -1;
  return Status::ok();
}

Status GccSession::applyAction(const Action &A, bool &EndOfEpisode,
                               bool &ActionSpaceChanged) {
  EndOfEpisode = false;
  ActionSpaceChanged = false;
  if (!Source)
    return failedPrecondition("session not initialized");
  const GccOptionSpace &Spec = optionSpace();
  if (DirectSpace) {
    if (A.Values.size() != Spec.options().size())
      return invalidArgument(
          "direct action needs " + std::to_string(Spec.options().size()) +
          " choices, got " + std::to_string(A.Values.size()));
    Choices = A.Values;
    for (size_t I = 0; I < Choices.size(); ++I)
      Choices[I] = std::clamp<int64_t>(Choices[I], 0,
                                       Spec.options()[I].Cardinality - 1);
  } else {
    if (A.Index < 0 || static_cast<size_t>(A.Index) >= Spec.actions().size())
      return outOfRange("gcc action " + std::to_string(A.Index) +
                        " out of range");
    Spec.applyAction(static_cast<size_t>(A.Index), Choices);
  }
  Dirty = true;
  return Status::ok();
}

Status GccSession::recompileIfNeeded() {
  if (!Dirty && Compiled)
    return Status::ok();
  GccOptionSpace::CompilePlan Plan = optionSpace().plan(Choices);
  // Structural share: the pipeline copy-on-writes the functions it
  // actually changes; untouched functions stay physically shared with
  // Source.
  Compiled = Source->share();

  CG_ASSIGN_OR_RETURN(std::vector<std::string> Pipeline,
                      passes::pipelineForLevel(Plan.OLevel));
  // Flags edit the -O pipeline: -fno-* removes, -f* appends.
  for (const std::string &Disabled : Plan.DisabledPasses)
    Pipeline.erase(std::remove(Pipeline.begin(), Pipeline.end(), Disabled),
                   Pipeline.end());
  for (const std::string &Extra : Plan.ExtraPasses)
    if (std::find(Pipeline.begin(), Pipeline.end(), Extra) == Pipeline.end())
      Pipeline.push_back(Extra);
  if (Plan.InlineThreshold > 0)
    Pipeline.push_back("inline<" + std::to_string(std::min(
                           450u, Plan.InlineThreshold)) + ">");
  if (Plan.UnrollTripLimit > 1)
    Pipeline.push_back("loop-unroll<" + std::to_string(std::min(
                           128u, Plan.UnrollTripLimit)) + ">");

  // Parameterized pass names must exist in the registry; the values in the
  // option table are chosen from the registered grid, so lookups succeed —
  // guard anyway to fail loud on spec drift.
  for (const std::string &Name : Pipeline)
    if (!passes::PassRegistry::instance().contains(Name))
      return internalError("gcc option spec references unknown pass '" +
                           Name + "'");

  CG_ASSIGN_OR_RETURN(
      bool Changed,
      passes::runPipelineToFixpoint(*Compiled, Pipeline,
                                    std::max(1, Plan.PipelineRounds)));
  (void)Changed;
  Dirty = false;
  return Status::ok();
}

Status GccSession::computeObservation(const ObservationSpaceInfo &Space,
                                      Observation &Out) {
  if (!Source)
    return failedPrecondition("session not initialized");
  Out.Type = Space.Type;
  const std::string &Name = Space.Name;
  if (Name == "Choices") {
    Out.Ints = Choices;
    return Status::ok();
  }
  CG_RETURN_IF_ERROR(recompileIfNeeded());
  if (Name == "InstructionCount") {
    Out.IntValue = static_cast<int64_t>(Compiled->instructionCount());
    return Status::ok();
  }
  if (Name == "Rtl") {
    Out.Str = ir::printModule(*Compiled);
    return Status::ok();
  }
  ir::LoweredModule Lowered =
      ir::lowerModule(*Compiled, ir::TargetDescriptor(),
                      /*EmitText=*/Name == "Asm" || Name == "AsmSizeBytes");
  if (Name == "Asm") {
    Out.Str = Lowered.Assembly;
    return Status::ok();
  }
  if (Name == "Obj") {
    Out.Str = Lowered.ObjectBytes;
    return Status::ok();
  }
  if (Name == "AsmSizeBytes") {
    Out.IntValue = static_cast<int64_t>(Lowered.Assembly.size());
    return Status::ok();
  }
  if (Name == "ObjSizeBytes") {
    Out.IntValue = static_cast<int64_t>(Lowered.ObjectBytes.size());
    return Status::ok();
  }
  if (Name == "ObjSizeOs") {
    if (BaselineOsSize < 0) {
      std::unique_ptr<ir::Module> Baseline = Source->share();
      CG_RETURN_IF_ERROR(passes::runOptimizationLevel(*Baseline, "-Os"));
      BaselineOsSize = static_cast<int64_t>(
          ir::lowerModule(*Baseline).ObjectBytes.size());
    }
    Out.IntValue = BaselineOsSize;
    return Status::ok();
  }
  return notFound("unknown observation space '" + Name + "'");
}

StatusOr<std::unique_ptr<CompilationSession>> GccSession::fork() {
  auto Clone = std::make_unique<GccSession>();
  Clone->DirectSpace = DirectSpace;
  Clone->Source = Source ? Source->share() : nullptr;
  Clone->Compiled = Compiled ? Compiled->share() : nullptr;
  Clone->Choices = Choices;
  Clone->Dirty = Dirty;
  Clone->BaselineOsSize = BaselineOsSize;
  return StatusOr<std::unique_ptr<CompilationSession>>(std::move(Clone));
}

void envs::registerGccEnvironment() {
  static std::once_flag Flag;
  std::call_once(Flag, [] {
    service::registerCompilationSession(
        "gcc", [] { return std::make_unique<GccSession>(); });
  });
}
