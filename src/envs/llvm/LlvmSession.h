//===- envs/llvm/LlvmSession.h - Phase ordering backend ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LLVM phase-ordering environment backend (§V-A): actions are
/// optimization passes applied *incrementally* to an in-memory module —
/// the design that gives CompilerGym its 27x speedup over
/// recompile-from-scratch baselines (Table II). Environment initialization
/// is O(1) amortized through a process-wide cache of parsed benchmarks.
///
/// Observation spaces: Ir, InstCount, Autophase, Inst2vec, Programl,
/// IrInstructionCount, IrInstructionCountOz, ObjectTextSizeBytes,
/// ObjectTextSizeOz, Runtime, IrHash.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ENVS_LLVM_LLVMSESSION_H
#define COMPILER_GYM_ENVS_LLVM_LLVMSESSION_H

#include "service/CompilationSession.h"

#include "ir/Module.h"
#include "util/Rng.h"

#include <memory>

namespace compiler_gym {
namespace envs {

/// Registers the "llvm" compiler with the service runtime. Idempotent.
void registerLlvmEnvironment();

/// The LLVM-like backend session.
class LlvmSession : public service::CompilationSession {
public:
  LlvmSession();

  std::vector<service::ActionSpace> getActionSpaces() override;
  std::vector<service::ObservationSpaceInfo> getObservationSpaces() override;
  Status init(const service::ActionSpace &Space,
              const datasets::Benchmark &Bench) override;
  Status applyAction(const service::Action &A, bool &EndOfEpisode,
                     bool &ActionSpaceChanged) override;
  Status computeObservation(const service::ObservationSpaceInfo &Space,
                            service::Observation &Out) override;
  StatusOr<std::unique_ptr<CompilationSession>> fork() override;
  uint64_t stateKey() override;

  /// Exposed for white-box tests.
  const ir::Module *module() const { return Mod.get(); }

  /// Process-wide parsed-benchmark cache statistics (Table II ablation).
  static uint64_t cacheHits();
  static uint64_t cacheMisses();
  static void clearBenchmarkCache();

private:
  Status computeBaselines();

  std::vector<std::string> ActionNames;
  std::unique_ptr<ir::Module> Mod;
  datasets::Benchmark Bench;
  Rng NoiseGen{0xB0A710AD};
  // Lazily computed -Oz / -O3 baselines for scaled rewards.
  int64_t OzInstructionCount = -1;
  int64_t OzTextSize = -1;
  double O3Runtime = -1.0;
};

} // namespace envs
} // namespace compiler_gym

#endif // COMPILER_GYM_ENVS_LLVM_LLVMSESSION_H
