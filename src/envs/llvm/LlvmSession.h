//===- envs/llvm/LlvmSession.h - Phase ordering backend ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LLVM phase-ordering environment backend (§V-A): actions are
/// optimization passes applied *incrementally* to an in-memory module —
/// the design that gives CompilerGym its 27x speedup over
/// recompile-from-scratch baselines (Table II). Environment initialization
/// is O(1) amortized through a process-wide cache of parsed benchmarks.
///
/// The session keeps a stateful passes::PassManager across step() calls:
/// pass objects are constructed once, and the AnalysisManager carries
/// dominator trees, loop info and per-function feature vectors between
/// actions, invalidating only what each pass reports clobbered. Repeated
/// observations of an unchanged module are memoized per session (keyed on
/// an action-epoch counter), and the module StateHash behind stateKey() is
/// cached so the runtime's shared ObservationCache can deduplicate across
/// sessions without re-printing the module on every request.
///
/// Observation spaces: Ir, InstCount, Autophase, Inst2vec, Programl,
/// IrInstructionCount, IrInstructionCountOz, ObjectTextSizeBytes,
/// ObjectTextSizeOz, Runtime, IrHash.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ENVS_LLVM_LLVMSESSION_H
#define COMPILER_GYM_ENVS_LLVM_LLVMSESSION_H

#include "service/CompilationSession.h"

#include "ir/Module.h"
#include "passes/PassManager.h"
#include "util/Rng.h"

#include <memory>
#include <optional>
#include <unordered_map>

namespace compiler_gym {
namespace envs {

/// Registers the "llvm" compiler with the service runtime. Idempotent.
void registerLlvmEnvironment();

/// The LLVM-like backend session.
class LlvmSession : public service::CompilationSession {
public:
  LlvmSession();

  std::vector<service::ActionSpace> getActionSpaces() override;
  std::vector<service::ObservationSpaceInfo> getObservationSpaces() override;
  Status init(const service::ActionSpace &Space,
              const datasets::Benchmark &Bench) override;
  Status applyAction(const service::Action &A, bool &EndOfEpisode,
                     bool &ActionSpaceChanged) override;
  Status computeObservation(const service::ObservationSpaceInfo &Space,
                            service::Observation &Out) override;
  StatusOr<std::unique_ptr<CompilationSession>> fork() override;
  uint64_t stateKey() override;
  bool restore(uint64_t StateKey) override;

  /// Exposed for white-box tests.
  const ir::Module *module() const { return Mod.get(); }
  /// The session's pass manager (analysis-cache telemetry in tests/bench);
  /// nullptr before init().
  passes::PassManager *passManager() { return PM.get(); }
  /// Memoized-observation hits for this session (test/bench telemetry).
  uint64_t observationMemoHits() const { return ObsMemoHits; }

  /// Process-wide parsed-benchmark cache statistics (Table II ablation).
  static uint64_t cacheHits();
  static uint64_t cacheMisses();
  static void clearBenchmarkCache();

private:
  Status computeBaselines();
  /// Cooperative-cancellation rollback: reverts the module to the last
  /// state a client saw committed (the last stateKey() exposure, whose
  /// snapshot the store retains) so no partial batch mutation escapes a
  /// cancelled request, then returns DeadlineExceeded carrying \p Why.
  Status cancelRollback(const std::string &Why);
  Status computeObservationUncached(int SpaceId,
                                    const service::ObservationSpaceInfo &Space,
                                    service::Observation &Out);
  /// Resets per-episode derived state (pass manager, memo, state key).
  void rebindModule();

  std::vector<std::string> ActionNames;
  std::unique_ptr<ir::Module> Mod;
  /// Stateful pipeline executor bound to Mod (replaces the per-call
  /// runPass free function on the step hot path).
  std::unique_ptr<passes::PassManager> PM;
  datasets::Benchmark Bench;
  Rng NoiseGen{0xB0A710AD};

  /// Monotonic epoch: bumped every time an action changes the module.
  uint64_t ModEpoch = 0;
  /// Module state key, computed lazily once per epoch.
  std::optional<uint64_t> CachedStateKey;
  /// The last state key handed out through stateKey()/restore(): the state
  /// the client believes committed, and the rollback target when a
  /// cancelled action must not leak partial mutations. 0 before the first
  /// exposure (rollback then re-parses the benchmark).
  uint64_t LastExposedKey = 0;
  /// Deterministic observations memoized for the current epoch:
  /// space id -> (epoch, observation).
  std::unordered_map<int, std::pair<uint64_t, service::Observation>> ObsMemo;
  uint64_t ObsMemoHits = 0;

  // Lazily computed -Oz / -O3 baselines for scaled rewards.
  int64_t OzInstructionCount = -1;
  int64_t OzTextSize = -1;
  double O3Runtime = -1.0;
};

} // namespace envs
} // namespace compiler_gym

#endif // COMPILER_GYM_ENVS_LLVM_LLVMSESSION_H
