//===- envs/llvm/LlvmSession.cpp ------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "envs/llvm/LlvmSession.h"

#include "analysis/Autophase.h"
#include "analysis/InstCount.h"
#include "analysis/Inst2vec.h"
#include "analysis/ProGraML.h"
#include "analysis/Rewards.h"
#include "fault/FaultRegistry.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Snapshot.h"
#include "passes/Pipelines.h"
#include "telemetry/MetricsRegistry.h"
#include "util/Hash.h"

#include <iterator>
#include <list>
#include <mutex>
#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::envs;
using namespace compiler_gym::service;

namespace {

/// Process-wide LRU cache of parsed benchmark modules. A cache hit turns
/// environment initialization into a clone — the O(1)-amortized init the
/// paper measures in Table II.
class BenchmarkCache {
public:
  static BenchmarkCache &instance() {
    static BenchmarkCache Cache;
    return Cache;
  }

  std::unique_ptr<ir::Module> parse(const datasets::Benchmark &Bench,
                                    Status &Err) {
    uint64_t Key = hashCombine(fnv1a(Bench.Uri), fnv1a(Bench.IrText));
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      auto It = Map.find(Key);
      if (It != Map.end()) {
        ++Hits;
        Lru.splice(Lru.begin(), Lru, It->second.LruIt);
        // Structural sharing: the session's module aliases the cached
        // master's function payloads; the pass layer copies a function
        // on first write. Init cost drops from O(|module|) to
        // O(#functions).
        return It->second.Mod->share();
      }
      ++Misses;
    }
    StatusOr<std::unique_ptr<ir::Module>> Parsed =
        ir::parseModule(Bench.IrText);
    if (!Parsed.isOk()) {
      Err = Parsed.status();
      return nullptr;
    }
    std::unique_ptr<ir::Module> Mod = Parsed.takeValue();
    std::unique_ptr<ir::Module> Shared = Mod->share();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Lru.push_front(Key);
      Map[Key] = Entry{std::move(Mod), Lru.begin()};
      while (Map.size() > Capacity) {
        Map.erase(Lru.back());
        Lru.pop_back();
      }
    }
    return Shared;
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Map.clear();
    Lru.clear();
    Hits = Misses = 0;
  }

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  struct Entry {
    std::unique_ptr<ir::Module> Mod;
    std::list<uint64_t>::iterator LruIt;
  };
  static constexpr size_t Capacity = 64;
  std::mutex Mutex;
  std::unordered_map<uint64_t, Entry> Map;
  std::list<uint64_t> Lru;
  uint64_t Hits = 0, Misses = 0;
};

/// Observation-space ids: dense indices into the dispatch and memo tables.
enum LlvmObs : int {
  ObsIr = 0,
  ObsIrHash,
  ObsInstCount,
  ObsAutophase,
  ObsInst2vec,
  ObsPrograml,
  ObsIrInstructionCount,
  ObsIrInstructionCountOz,
  ObsObjectTextSizeBytes,
  ObsObjectTextSizeOz,
  ObsRuntime,
  ObsRuntimeO3,
};

/// Single source of truth for the observation spaces: the advertised list
/// (typed descriptors with shape/range where statically known), the
/// name->handler dispatch table and the memoization policy all derive
/// from this table, so adding a space is exactly one entry here plus its
/// case in computeObservationUncached.
struct SpaceDesc {
  const char *Name;
  LlvmObs Id;
  ObservationType Type;
  bool Deterministic;
  bool PlatformDependent;
  int64_t ShapeDim;   ///< Fixed vector length; 0 = scalar/dynamic.
  bool NonNegative;   ///< Element range is [0, +inf).
};

constexpr SpaceDesc SpaceTable[] = {
    {"Ir", ObsIr, ObservationType::String, true, false, 0, false},
    {"IrHash", ObsIrHash, ObservationType::String, true, false, 0, false},
    {"InstCount", ObsInstCount, ObservationType::Int64List, true, false,
     analysis::InstCountDims, true},
    {"Autophase", ObsAutophase, ObservationType::Int64List, true, false,
     analysis::AutophaseDims, true},
    {"Inst2vec", ObsInst2vec, ObservationType::DoubleList, true, false, 0,
     false},
    {"Programl", ObsPrograml, ObservationType::Binary, true, false, 0,
     false},
    {"IrInstructionCount", ObsIrInstructionCount,
     ObservationType::Int64Value, true, false, 0, true},
    {"IrInstructionCountOz", ObsIrInstructionCountOz,
     ObservationType::Int64Value, true, false, 0, true},
    {"ObjectTextSizeBytes", ObsObjectTextSizeBytes,
     ObservationType::Int64Value, true, true, 0, true},
    {"ObjectTextSizeOz", ObsObjectTextSizeOz, ObservationType::Int64Value,
     true, true, 0, true},
    {"Runtime", ObsRuntime, ObservationType::DoubleValue, false, true, 0,
     true},
    {"RuntimeO3", ObsRuntimeO3, ObservationType::DoubleValue, false, true,
     0, true},
};

/// Name -> table index, built once per process.
const std::unordered_map<std::string, int> &spaceIndex() {
  static const std::unordered_map<std::string, int> Index = [] {
    std::unordered_map<std::string, int> M;
    for (int I = 0; I < static_cast<int>(std::size(SpaceTable)); ++I)
      M.emplace(SpaceTable[I].Name, I);
    return M;
  }();
  return Index;
}

std::vector<ObservationSpaceInfo> llvmObservationSpaces() {
  // Built once; getObservationSpaces() is called per step-with-observation
  // request in CompilerService, so callers get a copy of this static list
  // instead of twelve rebuilt-and-allocated entries each time.
  static const std::vector<ObservationSpaceInfo> Spaces = [] {
    std::vector<ObservationSpaceInfo> S;
    S.reserve(std::size(SpaceTable));
    for (const SpaceDesc &D : SpaceTable) {
      ObservationSpaceInfo O;
      O.Name = D.Name;
      O.Type = D.Type;
      if (D.ShapeDim > 0)
        O.Shape = {D.ShapeDim};
      if (D.NonNegative)
        O.RangeMin = 0.0;
      O.Deterministic = D.Deterministic;
      O.PlatformDependent = D.PlatformDependent;
      S.push_back(std::move(O));
    }
    return S;
  }();
  return Spaces;
}

} // namespace

LlvmSession::LlvmSession() = default;

uint64_t LlvmSession::cacheHits() { return BenchmarkCache::instance().hits(); }
uint64_t LlvmSession::cacheMisses() {
  return BenchmarkCache::instance().misses();
}
void LlvmSession::clearBenchmarkCache() { BenchmarkCache::instance().clear(); }

std::vector<ActionSpace> LlvmSession::getActionSpaces() {
  ActionSpace Space;
  Space.Name = "llvm-passes-v0";
  Space.ActionNames = passes::PassRegistry::instance().defaultActionNames();
  return {Space};
}

std::vector<ObservationSpaceInfo> LlvmSession::getObservationSpaces() {
  return llvmObservationSpaces();
}

void LlvmSession::rebindModule() {
  PM = Mod ? std::make_unique<passes::PassManager>(*Mod) : nullptr;
  ModEpoch = 0;
  CachedStateKey.reset();
  ObsMemo.clear();
}

Status LlvmSession::init(const ActionSpace &Space,
                         const datasets::Benchmark &Bench) {
  ActionNames = Space.ActionNames;
  this->Bench = Bench;
  Status Err;
  Mod = BenchmarkCache::instance().parse(Bench, Err);
  if (!Mod)
    return Err;
  rebindModule();
  NoiseGen.reseed(fnv1a(Bench.Uri) ^ 0x9E3779B97F4A7C15ull);
  return Status::ok();
}

Status LlvmSession::applyAction(const Action &A, bool &EndOfEpisode,
                                bool &ActionSpaceChanged) {
  EndOfEpisode = false;
  ActionSpaceChanged = false;
  if (!Mod)
    return failedPrecondition("session not initialized");
  if (A.Index < 0 || static_cast<size_t>(A.Index) >= ActionNames.size())
    return outOfRange("action " + std::to_string(A.Index) +
                      " out of range [0, " +
                      std::to_string(ActionNames.size()) + ")");
  // Cooperative cancellation: a token is attached only while an RPC with a
  // deadline (or a watchdog abort) is in flight; the fault-free path costs
  // a null check and two pointer stores.
  const util::CancelToken *Tok = cancelToken();
  if (Tok && Tok->poll())
    return cancelRollback("action cancelled before execution");
  PM->setCancelToken(Tok);
  StatusOr<bool> R = PM->run(ActionNames[A.Index]);
  PM->setCancelToken(nullptr);
  if (!R.isOk()) {
    // A deadline abort may have left a partially transformed module
    // (FunctionPass stops between functions); revert to the last
    // committed state so the cancelled request has no observable effect.
    if (R.status().code() == StatusCode::DeadlineExceeded)
      return cancelRollback(R.status().message());
    return R.status();
  }
  if (*R) {
    ++ModEpoch;
    CachedStateKey.reset();
  }
  return Status::ok();
}

Status LlvmSession::cancelRollback(const std::string &Why) {
  // The last stateKey() exposure published a snapshot (stateKey() does so
  // for every new key), so restoring it is an O(#functions) share — no
  // per-action defensive copies on the fault-free path. Before any
  // exposure the initial state is the committed one: re-parse (a
  // benchmark-cache hit).
  if (!LastExposedKey || !restore(LastExposedKey)) {
    Status Err;
    Mod = BenchmarkCache::instance().parse(Bench, Err);
    rebindModule();
  }
  return deadlineExceeded(Why);
}

Status LlvmSession::computeBaselines() {
  if (OzInstructionCount >= 0)
    return Status::ok();
  Status Err;
  std::unique_ptr<ir::Module> Fresh =
      BenchmarkCache::instance().parse(Bench, Err);
  if (!Fresh)
    return Err;
  // Share, not clone: the -Oz / -O3 pipelines copy-on-write what they
  // actually touch.
  std::unique_ptr<ir::Module> O3 = Fresh->share();
  CG_RETURN_IF_ERROR(passes::runOptimizationLevel(*Fresh, "-Oz"));
  OzInstructionCount = analysis::codeSize(*Fresh);
  OzTextSize = analysis::binarySize(*Fresh);
  if (Bench.Runnable) {
    CG_RETURN_IF_ERROR(passes::runOptimizationLevel(*O3, "-O3"));
    analysis::RuntimeOptions ROpts;
    ROpts.Interp.Args = Bench.Inputs;
    CG_ASSIGN_OR_RETURN(O3Runtime, analysis::measureRuntime(*O3, NoiseGen,
                                                            ROpts));
  }
  return Status::ok();
}

Status LlvmSession::computeObservation(const ObservationSpaceInfo &Space,
                                       Observation &Out) {
  if (!Mod)
    return failedPrecondition("session not initialized");
  const auto &Index = spaceIndex();
  auto It = Index.find(Space.Name);
  if (It == Index.end())
    return notFound("unknown observation space '" + Space.Name + "'");
  const SpaceDesc &Desc = SpaceTable[It->second];
  Out.Type = Space.Type;

  // Session-level memo: a deterministic observation of an unchanged module
  // is a lookup, not a recompute. (The runtime's shared ObservationCache
  // deduplicates *across* sessions via stateKey(); this handles the
  // overwhelmingly common within-session repeat without hashing at all.)
  if (Desc.Deterministic) {
    auto MemoIt = ObsMemo.find(Desc.Id);
    if (MemoIt != ObsMemo.end() && MemoIt->second.first == ModEpoch) {
      Out = MemoIt->second.second;
      Out.Type = Space.Type;
      ++ObsMemoHits;
      static telemetry::Counter &MemoHits =
          telemetry::MetricsRegistry::global().counter(
              "cg_session_obs_memo_hits_total", {},
              "Within-session deterministic observation memo hits");
      MemoHits.inc();
      return Status::ok();
    }
  }

  CG_RETURN_IF_ERROR(computeObservationUncached(Desc.Id, Space, Out));
  if (Desc.Deterministic)
    ObsMemo[Desc.Id] = {ModEpoch, Out};
  return Status::ok();
}

Status
LlvmSession::computeObservationUncached(int SpaceId,
                                        const ObservationSpaceInfo &Space,
                                        Observation &Out) {
  switch (static_cast<LlvmObs>(SpaceId)) {
  case ObsIr:
    Out.Str = ir::printModule(*Mod);
    return Status::ok();
  case ObsIrHash:
    Out.Str = Mod->hash().hex();
    return Status::ok();
  case ObsInstCount:
    // Served from the per-function feature cache: only functions dirtied
    // since the last request are recounted.
    Out.Ints = PM->analysisManager().features().instCount(*Mod);
    return Status::ok();
  case ObsAutophase:
    Out.Ints = PM->analysisManager().features().autophase(*Mod);
    return Status::ok();
  case ObsInst2vec: {
    // Per-function embedding segments: only dirtied functions re-embed.
    const std::vector<float> &E = PM->analysisManager().features().inst2vec(*Mod);
    Out.Doubles.assign(E.begin(), E.end());
    return Status::ok();
  }
  case ObsPrograml:
    // Assembled from per-function graph fragments (v2 encoding): only
    // dirtied functions rebuild their subgraph, and the serialized bytes
    // stay stable outside the changed function's region, which keeps
    // wire deltas small.
    Out.Str = PM->analysisManager().features().programl(*Mod);
    return Status::ok();
  case ObsIrInstructionCount:
    Out.IntValue = analysis::codeSize(*Mod);
    return Status::ok();
  case ObsObjectTextSizeBytes:
    Out.IntValue = analysis::binarySize(*Mod);
    return Status::ok();
  case ObsIrInstructionCountOz:
    CG_RETURN_IF_ERROR(computeBaselines());
    Out.IntValue = OzInstructionCount;
    return Status::ok();
  case ObsObjectTextSizeOz:
    CG_RETURN_IF_ERROR(computeBaselines());
    Out.IntValue = OzTextSize;
    return Status::ok();
  case ObsRuntime: {
    if (!Bench.Runnable)
      return failedPrecondition("benchmark '" + Bench.Uri +
                                "' is not runnable");
    analysis::RuntimeOptions ROpts;
    ROpts.Interp.Args = Bench.Inputs;
    CG_ASSIGN_OR_RETURN(Out.DoubleValue,
                        analysis::measureRuntime(*Mod, NoiseGen, ROpts));
    return Status::ok();
  }
  case ObsRuntimeO3:
    if (!Bench.Runnable)
      return failedPrecondition("benchmark '" + Bench.Uri +
                                "' is not runnable");
    CG_RETURN_IF_ERROR(computeBaselines());
    Out.DoubleValue = O3Runtime;
    return Status::ok();
  }
  return notFound("unknown observation space '" + Space.Name + "'");
}

uint64_t LlvmSession::stateKey() {
  if (!Mod)
    return 0;
  if (!CachedStateKey) {
    // Benchmark URI disambiguates baseline-relative observations (e.g.
    // IrInstructionCountOz) between benchmarks whose IR happens to
    // coincide. Hashing prints the module, so the digest is cached per
    // action epoch rather than recomputed per request.
    uint64_t Key = hashCombine(fnv1a(Bench.Uri), Mod->hash().low64());
    CachedStateKey = Key ? Key : 1;
    // Every newly keyed state is published as a restorable snapshot: a
    // frozen structural share, O(#functions) to publish. This is what a
    // recovering environment restores instead of replaying its actions.
    ir::SnapshotStore::global().put(*CachedStateKey, Mod->share(),
                                    Bench.Uri);
  }
  LastExposedKey = *CachedStateKey;
  return *CachedStateKey;
}

bool LlvmSession::restore(uint64_t StateKey) {
  if (!StateKey)
    return false;
  // Chaos hook: error/crash rules simulate a lost or unreadable snapshot,
  // pushing the recovering client onto the replay path.
  if (fault::FaultAction F = CG_FAULT_POINT("snapshot.restore", cancelToken()))
    if (F.isError() || F.isCrash() || F.isCorrupt())
      return false;
  std::optional<ir::Snapshot> Snap = ir::SnapshotStore::global().get(StateKey);
  if (!Snap)
    return false;
  Mod = Snap->Mod->share();
  rebindModule();
  // The restored module is bit-identical to the state the key addresses;
  // skip re-printing it to recover the digest.
  CachedStateKey = StateKey;
  LastExposedKey = StateKey;
  return true;
}

StatusOr<std::unique_ptr<CompilationSession>> LlvmSession::fork() {
  static telemetry::Histogram &ForkLatency =
      telemetry::MetricsRegistry::global().histogram(
          "cg_env_fork_latency_us", {},
          "Environment fork latency (structural share + cache adoption)");
  telemetry::ScopedTimerUs Timer(ForkLatency);
  auto Clone = std::make_unique<LlvmSession>();
  Clone->ActionNames = ActionNames;
  Clone->Bench = Bench;
  // O(#functions): the fork aliases every function payload; divergence is
  // paid lazily, per mutated function, by the pass layer's copy-on-write.
  Clone->Mod = Mod ? Mod->share() : nullptr;
  Clone->rebindModule();
  if (PM && Clone->PM) {
    // Shared clean payloads mean the parent's cached dominator trees,
    // loop sets and feature vectors remain valid in the child.
    Clone->PM->analysisManager().adoptFrom(PM->analysisManager());
  }
  Clone->ModEpoch = ModEpoch;
  Clone->CachedStateKey = CachedStateKey;
  Clone->LastExposedKey = LastExposedKey;
  Clone->ObsMemo = ObsMemo;
  Clone->NoiseGen = NoiseGen.split();
  Clone->OzInstructionCount = OzInstructionCount;
  Clone->OzTextSize = OzTextSize;
  Clone->O3Runtime = O3Runtime;
  return StatusOr<std::unique_ptr<CompilationSession>>(std::move(Clone));
}

void envs::registerLlvmEnvironment() {
  static std::once_flag Flag;
  std::call_once(Flag, [] {
    service::registerCompilationSession(
        "llvm", [] { return std::make_unique<LlvmSession>(); });
  });
}
