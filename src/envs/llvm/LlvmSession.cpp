//===- envs/llvm/LlvmSession.cpp ------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "envs/llvm/LlvmSession.h"

#include "analysis/Autophase.h"
#include "analysis/InstCount.h"
#include "analysis/Inst2vec.h"
#include "analysis/ProGraML.h"
#include "analysis/Rewards.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/PassManager.h"
#include "passes/Pipelines.h"
#include "util/Hash.h"

#include <list>
#include <mutex>
#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::envs;
using namespace compiler_gym::service;

namespace {

/// Process-wide LRU cache of parsed benchmark modules. A cache hit turns
/// environment initialization into a clone — the O(1)-amortized init the
/// paper measures in Table II.
class BenchmarkCache {
public:
  static BenchmarkCache &instance() {
    static BenchmarkCache Cache;
    return Cache;
  }

  std::unique_ptr<ir::Module> parse(const datasets::Benchmark &Bench,
                                    Status &Err) {
    uint64_t Key = hashCombine(fnv1a(Bench.Uri), fnv1a(Bench.IrText));
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      auto It = Map.find(Key);
      if (It != Map.end()) {
        ++Hits;
        Lru.splice(Lru.begin(), Lru, It->second.LruIt);
        return It->second.Mod->clone();
      }
      ++Misses;
    }
    StatusOr<std::unique_ptr<ir::Module>> Parsed =
        ir::parseModule(Bench.IrText);
    if (!Parsed.isOk()) {
      Err = Parsed.status();
      return nullptr;
    }
    std::unique_ptr<ir::Module> Mod = Parsed.takeValue();
    std::unique_ptr<ir::Module> Clone = Mod->clone();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Lru.push_front(Key);
      Map[Key] = Entry{std::move(Mod), Lru.begin()};
      while (Map.size() > Capacity) {
        Map.erase(Lru.back());
        Lru.pop_back();
      }
    }
    return Clone;
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Map.clear();
    Lru.clear();
    Hits = Misses = 0;
  }

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  struct Entry {
    std::unique_ptr<ir::Module> Mod;
    std::list<uint64_t>::iterator LruIt;
  };
  static constexpr size_t Capacity = 64;
  std::mutex Mutex;
  std::unordered_map<uint64_t, Entry> Map;
  std::list<uint64_t> Lru;
  uint64_t Hits = 0, Misses = 0;
};

std::vector<ObservationSpaceInfo> llvmObservationSpaces() {
  auto info = [](const char *Name, ObservationType Ty, bool Deterministic,
                 bool Platform) {
    ObservationSpaceInfo O;
    O.Name = Name;
    O.Type = Ty;
    O.Deterministic = Deterministic;
    O.PlatformDependent = Platform;
    return O;
  };
  return {
      info("Ir", ObservationType::String, true, false),
      info("IrHash", ObservationType::String, true, false),
      info("InstCount", ObservationType::Int64List, true, false),
      info("Autophase", ObservationType::Int64List, true, false),
      info("Inst2vec", ObservationType::DoubleList, true, false),
      info("Programl", ObservationType::Binary, true, false),
      info("IrInstructionCount", ObservationType::Int64Value, true, false),
      info("IrInstructionCountOz", ObservationType::Int64Value, true, false),
      info("ObjectTextSizeBytes", ObservationType::Int64Value, true, true),
      info("ObjectTextSizeOz", ObservationType::Int64Value, true, true),
      info("Runtime", ObservationType::DoubleValue, false, true),
      info("RuntimeO3", ObservationType::DoubleValue, false, true),
  };
}

} // namespace

LlvmSession::LlvmSession() = default;

uint64_t LlvmSession::cacheHits() { return BenchmarkCache::instance().hits(); }
uint64_t LlvmSession::cacheMisses() {
  return BenchmarkCache::instance().misses();
}
void LlvmSession::clearBenchmarkCache() { BenchmarkCache::instance().clear(); }

std::vector<ActionSpace> LlvmSession::getActionSpaces() {
  ActionSpace Space;
  Space.Name = "llvm-passes-v0";
  Space.ActionNames = passes::PassRegistry::instance().defaultActionNames();
  return {Space};
}

std::vector<ObservationSpaceInfo> LlvmSession::getObservationSpaces() {
  return llvmObservationSpaces();
}

Status LlvmSession::init(const ActionSpace &Space,
                         const datasets::Benchmark &Bench) {
  ActionNames = Space.ActionNames;
  this->Bench = Bench;
  Status Err;
  Mod = BenchmarkCache::instance().parse(Bench, Err);
  if (!Mod)
    return Err;
  NoiseGen.reseed(fnv1a(Bench.Uri) ^ 0x9E3779B97F4A7C15ull);
  return Status::ok();
}

Status LlvmSession::applyAction(const Action &A, bool &EndOfEpisode,
                                bool &ActionSpaceChanged) {
  EndOfEpisode = false;
  ActionSpaceChanged = false;
  if (!Mod)
    return failedPrecondition("session not initialized");
  if (A.Index < 0 || static_cast<size_t>(A.Index) >= ActionNames.size())
    return outOfRange("action " + std::to_string(A.Index) +
                      " out of range [0, " +
                      std::to_string(ActionNames.size()) + ")");
  CG_ASSIGN_OR_RETURN(bool Changed,
                      passes::runPass(*Mod, ActionNames[A.Index]));
  (void)Changed;
  return Status::ok();
}

Status LlvmSession::computeBaselines() {
  if (OzInstructionCount >= 0)
    return Status::ok();
  Status Err;
  std::unique_ptr<ir::Module> Fresh =
      BenchmarkCache::instance().parse(Bench, Err);
  if (!Fresh)
    return Err;
  std::unique_ptr<ir::Module> O3 = Fresh->clone();
  CG_RETURN_IF_ERROR(passes::runOptimizationLevel(*Fresh, "-Oz"));
  OzInstructionCount = analysis::codeSize(*Fresh);
  OzTextSize = analysis::binarySize(*Fresh);
  if (Bench.Runnable) {
    CG_RETURN_IF_ERROR(passes::runOptimizationLevel(*O3, "-O3"));
    analysis::RuntimeOptions ROpts;
    ROpts.Interp.Args = Bench.Inputs;
    CG_ASSIGN_OR_RETURN(O3Runtime, analysis::measureRuntime(*O3, NoiseGen,
                                                            ROpts));
  }
  return Status::ok();
}

Status LlvmSession::computeObservation(const ObservationSpaceInfo &Space,
                                       Observation &Out) {
  if (!Mod)
    return failedPrecondition("session not initialized");
  Out.Type = Space.Type;
  const std::string &Name = Space.Name;
  if (Name == "Ir") {
    Out.Str = ir::printModule(*Mod);
    return Status::ok();
  }
  if (Name == "IrHash") {
    Out.Str = Mod->hash().hex();
    return Status::ok();
  }
  if (Name == "InstCount") {
    Out.Ints = analysis::instCount(*Mod);
    return Status::ok();
  }
  if (Name == "Autophase") {
    Out.Ints = analysis::autophase(*Mod);
    return Status::ok();
  }
  if (Name == "Inst2vec") {
    std::vector<float> E = analysis::inst2vec(*Mod);
    Out.Doubles.assign(E.begin(), E.end());
    return Status::ok();
  }
  if (Name == "Programl") {
    Out.Str = analysis::serializeGraph(analysis::buildProgramGraph(*Mod));
    return Status::ok();
  }
  if (Name == "IrInstructionCount") {
    Out.IntValue = analysis::codeSize(*Mod);
    return Status::ok();
  }
  if (Name == "ObjectTextSizeBytes") {
    Out.IntValue = analysis::binarySize(*Mod);
    return Status::ok();
  }
  if (Name == "IrInstructionCountOz") {
    CG_RETURN_IF_ERROR(computeBaselines());
    Out.IntValue = OzInstructionCount;
    return Status::ok();
  }
  if (Name == "ObjectTextSizeOz") {
    CG_RETURN_IF_ERROR(computeBaselines());
    Out.IntValue = OzTextSize;
    return Status::ok();
  }
  if (Name == "Runtime") {
    if (!Bench.Runnable)
      return failedPrecondition("benchmark '" + Bench.Uri +
                                "' is not runnable");
    analysis::RuntimeOptions ROpts;
    ROpts.Interp.Args = Bench.Inputs;
    CG_ASSIGN_OR_RETURN(Out.DoubleValue,
                        analysis::measureRuntime(*Mod, NoiseGen, ROpts));
    return Status::ok();
  }
  if (Name == "RuntimeO3") {
    if (!Bench.Runnable)
      return failedPrecondition("benchmark '" + Bench.Uri +
                                "' is not runnable");
    CG_RETURN_IF_ERROR(computeBaselines());
    Out.DoubleValue = O3Runtime;
    return Status::ok();
  }
  return notFound("unknown observation space '" + Name + "'");
}

uint64_t LlvmSession::stateKey() {
  if (!Mod)
    return 0;
  // Benchmark URI disambiguates baseline-relative observations (e.g.
  // IrInstructionCountOz) between benchmarks whose IR happens to coincide.
  uint64_t Key = hashCombine(fnv1a(Bench.Uri), Mod->hash().low64());
  return Key ? Key : 1;
}

StatusOr<std::unique_ptr<CompilationSession>> LlvmSession::fork() {
  auto Clone = std::make_unique<LlvmSession>();
  Clone->ActionNames = ActionNames;
  Clone->Bench = Bench;
  Clone->Mod = Mod ? Mod->clone() : nullptr;
  Clone->NoiseGen = NoiseGen.split();
  Clone->OzInstructionCount = OzInstructionCount;
  Clone->OzTextSize = OzTextSize;
  Clone->O3Runtime = O3Runtime;
  return StatusOr<std::unique_ptr<CompilationSession>>(std::move(Clone));
}

void envs::registerLlvmEnvironment() {
  static std::once_flag Flag;
  std::call_once(Flag, [] {
    service::registerCompilationSession(
        "llvm", [] { return std::make_unique<LlvmSession>(); });
  });
}
