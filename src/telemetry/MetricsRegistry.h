//===- telemetry/MetricsRegistry.h - Fleet metrics registry -----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide metrics registry: labeled counters, gauges, and
/// log2-bucketed latency histograms for the service fleet (step latency,
/// cache hit rates, shard recoveries, wire bytes — the quantities the
/// paper reports in Tables II/III, made continuously inspectable).
///
/// Hot-path design: a metric handle is looked up once (function-local
/// static at the instrumentation site) and then incremented with a single
/// relaxed atomic add into a per-thread stripe, so concurrent writers on
/// different threads do not contend on one cache line. snapshot() merges
/// the stripes. The registry-wide enabled flag turns every write into a
/// relaxed load + branch, which is what the overhead bench uses as its
/// no-telemetry baseline.
///
/// Exports: Prometheus text exposition format (renderPrometheus) and a
/// JSON document (renderJson) for runtime introspection.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_TELEMETRY_METRICSREGISTRY_H
#define COMPILER_GYM_TELEMETRY_METRICSREGISTRY_H

#include "util/Timer.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace compiler_gym {
namespace telemetry {

/// Metric labels as ordered key/value pairs. Order is preserved in the
/// rendered output; (name, labels) identifies one time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

constexpr size_t kStripes = 16;

/// Stable per-thread stripe index in [0, kStripes).
unsigned threadStripe();

struct alignas(64) StripedCell {
  std::atomic<uint64_t> V{0};
};

struct alignas(64) StripedSum {
  std::atomic<double> V{0.0};
};

/// Default enable flag for metrics constructed outside a registry.
inline std::atomic<bool> AlwaysEnabled{true};

} // namespace detail

/// Monotonic counter. Writes are relaxed adds into per-thread stripes;
/// value() merges them (monotone but not linearizable, which is fine for
/// telemetry).
class Counter {
public:
  explicit Counter(const std::atomic<bool> *Enabled = &detail::AlwaysEnabled)
      : Enabled(Enabled) {}

  void inc(uint64_t N = 1) {
    if (!Enabled->load(std::memory_order_relaxed))
      return;
    Cells[detail::threadStripe()].V.fetch_add(N, std::memory_order_relaxed);
  }

  uint64_t value() const {
    uint64_t Sum = 0;
    for (const detail::StripedCell &C : Cells)
      Sum += C.V.load(std::memory_order_relaxed);
    return Sum;
  }

  Counter(const Counter &) = delete;
  Counter &operator=(const Counter &) = delete;

private:
  const std::atomic<bool> *Enabled;
  std::array<detail::StripedCell, detail::kStripes> Cells;
};

/// Last-write-wins instantaneous value (e.g. pool size, live sessions).
class Gauge {
public:
  explicit Gauge(const std::atomic<bool> *Enabled = &detail::AlwaysEnabled)
      : Enabled(Enabled) {}

  void set(int64_t V) {
    if (Enabled->load(std::memory_order_relaxed))
      Value.store(V, std::memory_order_relaxed);
  }
  void add(int64_t N) {
    if (Enabled->load(std::memory_order_relaxed))
      Value.fetch_add(N, std::memory_order_relaxed);
  }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

  Gauge(const Gauge &) = delete;
  Gauge &operator=(const Gauge &) = delete;

private:
  const std::atomic<bool> *Enabled;
  std::atomic<int64_t> Value{0};
};

/// Log2-bucketed latency histogram in microseconds. Bucket I holds samples
/// with value <= 2^I us (I in [0, 24]); the last bucket is +Inf. One
/// striped cell row per thread stripe, merged on snapshot.
class Histogram {
public:
  /// 25 finite buckets (1us .. ~16.8s) plus +Inf.
  static constexpr size_t kBuckets = 26;

  explicit Histogram(const std::atomic<bool> *Enabled = &detail::AlwaysEnabled)
      : Enabled(Enabled) {}

  void observeUs(double Us) {
    if (!Enabled->load(std::memory_order_relaxed))
      return;
    uint64_t V = Us <= 0 ? 0 : static_cast<uint64_t>(Us);
    size_t Idx =
        V <= 1 ? 0 : static_cast<size_t>(std::bit_width(V - 1));
    if (Idx >= kBuckets)
      Idx = kBuckets - 1;
    unsigned S = detail::threadStripe();
    Buckets[S][Idx].fetch_add(1, std::memory_order_relaxed);
    Sum[S].V.fetch_add(Us, std::memory_order_relaxed);
  }

  /// Upper bound of bucket \p I in microseconds; UINT64_MAX for +Inf.
  static uint64_t bucketUpperBoundUs(size_t I) {
    return I + 1 < kBuckets ? (uint64_t{1} << I) : UINT64_MAX;
  }

  /// Per-bucket (non-cumulative) counts, merged across stripes.
  std::array<uint64_t, kBuckets> bucketCounts() const {
    std::array<uint64_t, kBuckets> Out{};
    for (const auto &Row : Buckets)
      for (size_t I = 0; I < kBuckets; ++I)
        Out[I] += Row[I].load(std::memory_order_relaxed);
    return Out;
  }

  uint64_t count() const {
    uint64_t N = 0;
    for (uint64_t C : bucketCounts())
      N += C;
    return N;
  }

  double sumUs() const {
    double S = 0;
    for (const detail::StripedSum &C : Sum)
      S += C.V.load(std::memory_order_relaxed);
    return S;
  }

  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

private:
  const std::atomic<bool> *Enabled;
  std::array<std::array<std::atomic<uint64_t>, kBuckets>, detail::kStripes>
      Buckets{};
  std::array<detail::StripedSum, detail::kStripes> Sum;
};

/// Observes the elapsed scope time into a histogram on destruction.
class ScopedTimerUs {
public:
  explicit ScopedTimerUs(Histogram &H) : H(H) {}
  ~ScopedTimerUs() { H.observeUs(Watch.elapsedUs()); }

  ScopedTimerUs(const ScopedTimerUs &) = delete;
  ScopedTimerUs &operator=(const ScopedTimerUs &) = delete;

private:
  Histogram &H;
  Stopwatch Watch;
};

// -- Snapshot -----------------------------------------------------------------

struct CounterSample {
  std::string Name;
  Labels L;
  std::string Help;
  uint64_t Value = 0;
};

struct GaugeSample {
  std::string Name;
  Labels L;
  std::string Help;
  int64_t Value = 0;
};

struct HistogramSample {
  std::string Name;
  Labels L;
  std::string Help;
  std::array<uint64_t, Histogram::kBuckets> Buckets{};
  uint64_t Count = 0;
  double SumUs = 0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> Counters;
  std::vector<GaugeSample> Gauges;
  std::vector<HistogramSample> Histograms;
};

// -- Registry -----------------------------------------------------------------

/// Owns metrics and hands out stable references: a returned Counter& is
/// valid for the registry's lifetime, so call sites cache it in a
/// function-local static and never touch the registry mutex again.
class MetricsRegistry {
public:
  MetricsRegistry() = default;

  /// The process-wide registry all built-in instrumentation reports to
  /// (leaky singleton: never destroyed, safe during static teardown).
  static MetricsRegistry &global();

  Counter &counter(const std::string &Name, const Labels &L = {},
                   const std::string &Help = "");
  Gauge &gauge(const std::string &Name, const Labels &L = {},
               const std::string &Help = "");
  Histogram &histogram(const std::string &Name, const Labels &L = {},
                       const std::string &Help = "");

  /// Runtime kill switch: when disabled every write through metrics owned
  /// by this registry is a relaxed load + branch and nothing else.
  void setEnabled(bool E) { Enabled.store(E, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Consistent-enough point-in-time merge of every registered series.
  MetricsSnapshot snapshot() const;

  /// Prometheus text exposition format (HELP/TYPE + samples; histograms
  /// as cumulative _bucket{le=...}/_sum/_count).
  std::string renderPrometheus() const;

  /// The same snapshot as a JSON document for runtime introspection.
  std::string renderJson() const;

  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

private:
  template <typename MetricT> struct Entry {
    std::string Name;
    Labels L;
    std::string Help;
    MetricT Metric;
    Entry(std::string Name, Labels L, std::string Help,
          const std::atomic<bool> *Enabled)
        : Name(std::move(Name)), L(std::move(L)), Help(std::move(Help)),
          Metric(Enabled) {}
  };

  template <typename MetricT>
  MetricT &lookup(std::vector<std::unique_ptr<Entry<MetricT>>> &Family,
                  std::unordered_map<std::string, size_t> &Index,
                  const std::string &Name, const Labels &L,
                  const std::string &Help);

  std::atomic<bool> Enabled{true};
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<Entry<Counter>>> Counters;
  std::vector<std::unique_ptr<Entry<Gauge>>> Gauges;
  std::vector<std::unique_ptr<Entry<Histogram>>> Histograms;
  std::unordered_map<std::string, size_t> CounterIndex;
  std::unordered_map<std::string, size_t> GaugeIndex;
  std::unordered_map<std::string, size_t> HistogramIndex;
};

} // namespace telemetry
} // namespace compiler_gym

#endif // COMPILER_GYM_TELEMETRY_METRICSREGISTRY_H
