//===- telemetry/Trace.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Trace.h"

#include "util/Logging.h"

#include <cinttypes>
#include <cstdio>

using namespace compiler_gym;
using namespace compiler_gym::telemetry;

namespace {

/// Sentinel trace id marking "inside an unsampled trace": children skip
/// span creation instead of re-rolling the sampling decision or rooting
/// disconnected traces.
constexpr uint64_t kSuppressed = UINT64_MAX;

TraceContext &tlContext() {
  thread_local TraceContext Ctx;
  return Ctx;
}

uint32_t threadOrdinal() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Tid = Next.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

uint64_t traceIdForLogs() {
  uint64_t Id = tlContext().TraceId;
  return Id == kSuppressed ? 0 : Id;
}

} // namespace

TraceContext telemetry::currentTraceContext() {
  TraceContext Ctx = tlContext();
  if (Ctx.TraceId == kSuppressed)
    return {};
  return Ctx;
}

Tracer::Tracer() : Epoch(std::chrono::steady_clock::now()) {
  // Log lines carry trace=0x... once a trace is active on their thread;
  // installed here so util/ never depends on telemetry/.
  setLogTraceIdProvider(&traceIdForLogs);
}

Tracer &Tracer::global() {
  static Tracer *T = new Tracer();
  return *T;
}

bool Tracer::sampleRoot() {
  uint32_t N = SampleN.load(std::memory_order_relaxed);
  if (N <= 1)
    return true;
  return RootSeq.fetch_add(1, std::memory_order_relaxed) % N == 0;
}

uint64_t Tracer::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void Tracer::setCapacity(size_t Cap) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Capacity = Cap;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.clear();
  Dropped.store(0, std::memory_order_relaxed);
}

size_t Tracer::spanCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.size();
}

void Tracer::record(SpanRecord R) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Events.size() >= Capacity) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Events.push_back(std::move(R));
}

std::vector<SpanRecord> Tracer::snapshotSpans() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events;
}

static void escapeInto(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '\\' || C == '"')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
}

std::string Tracer::exportChromeTrace() const {
  std::vector<SpanRecord> Spans = snapshotSpans();
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char Buf[256];
  bool First = true;
  for (const SpanRecord &S : Spans) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    escapeInto(Out, S.Name);
    Out += "\",\"cat\":\"";
    escapeInto(Out, S.Cat);
    std::snprintf(Buf, sizeof(Buf),
                  "\",\"ph\":\"X\",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
                  ",\"pid\":1,\"tid\":%u,\"args\":{\"trace\":\"0x%" PRIx64
                  "\",\"span\":\"0x%" PRIx64 "\",\"parent\":\"0x%" PRIx64
                  "\"}}",
                  S.StartUs, S.DurUs, S.ThreadId, S.TraceId, S.SpanId,
                  S.ParentId);
    Out += Buf;
  }
  Out += "]}";
  return Out;
}

// -- SpanScope ----------------------------------------------------------------

bool SpanScope::begin(const char *Cat) {
  Tracer &T = Tracer::global();
  if (!T.enabled())
    return false;
  TraceContext &Ctx = tlContext();
  if (Ctx.TraceId == kSuppressed)
    return false;
  if (Ctx.TraceId == 0) {
    // Root span: roll the sampling dice once for the whole trace.
    if (!T.sampleRoot()) {
      Saved = Ctx;
      Ctx = {kSuppressed, 0};
      Restore = true;
      return false;
    }
    Rec.TraceId = T.newId();
  } else {
    Rec.TraceId = Ctx.TraceId;
  }
  Rec.ParentId = Ctx.SpanId;
  Rec.SpanId = T.newId();
  Rec.Cat = Cat;
  Rec.ThreadId = threadOrdinal();
  Rec.StartUs = T.nowUs();
  Saved = Ctx;
  Ctx = {Rec.TraceId, Rec.SpanId};
  Restore = true;
  Active = true;
  return true;
}

SpanScope::~SpanScope() {
  if (Restore)
    tlContext() = Saved;
  if (!Active)
    return;
  Tracer &T = Tracer::global();
  Rec.DurUs = T.nowUs() - Rec.StartUs;
  T.record(std::move(Rec));
}

// -- TraceBinding -------------------------------------------------------------

TraceBinding::TraceBinding(uint64_t TraceId, uint64_t ParentSpanId) {
  if (!Tracer::global().enabled())
    return;
  TraceContext &Ctx = tlContext();
  Saved = Ctx;
  Ctx = TraceId ? TraceContext{TraceId, ParentSpanId}
                : TraceContext{kSuppressed, 0};
  Restore = true;
}

TraceBinding::~TraceBinding() {
  if (Restore)
    tlContext() = Saved;
}
