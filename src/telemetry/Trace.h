//===- telemetry/Trace.h - Step-RPC lifecycle span tracer -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight distributed-style span tracer for the step-RPC lifecycle:
/// client call -> transport -> CompilerService dispatch -> pass pipeline ->
/// analysis/feature lookups -> serialization/delta encoding.
///
/// Spans form a tree via a thread-local (trace id, current span id)
/// context. The client stamps its context into the RequestEnvelope
/// (Message.h), and CompilerService rebinds it on the dispatcher thread
/// with a TraceBinding, so client-side and service-side spans stitch into
/// one trace even though they run on different threads. The completed
/// buffer exports as Chrome trace-event JSON, loadable in Perfetto or
/// chrome://tracing.
///
/// Cost model: tracing is off by default. A disabled SpanScope is a
/// relaxed load and a branch; call sites that build dynamic span names
/// guard the string construction on Tracer::enabled(). A sampling knob
/// (setSampleEveryN) keeps the buffer bounded under sustained load by
/// recording every Nth root span; the suppressed roots also suppress
/// their children, so sampled traces are always complete.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_TELEMETRY_TRACE_H
#define COMPILER_GYM_TELEMETRY_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace compiler_gym {
namespace telemetry {

/// The ambient trace identity of the calling thread. TraceId == 0 means
/// no sampled trace is active (what gets stamped into a RequestEnvelope).
struct TraceContext {
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
};

/// Returns the calling thread's current context (zeros when tracing is
/// off, no span is open, or the active root was sampled out).
TraceContext currentTraceContext();

/// One completed span.
struct SpanRecord {
  std::string Name;
  const char *Cat = "";
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
  uint64_t ParentId = 0; ///< 0 = root span.
  uint32_t ThreadId = 0; ///< Small stable per-thread ordinal.
  uint64_t StartUs = 0;  ///< Steady-clock us since tracer construction.
  uint64_t DurUs = 0;
};

/// Collects completed spans into a bounded buffer.
class Tracer {
public:
  Tracer();

  /// The process-wide tracer all CG_TRACE_SPAN sites report to (leaky
  /// singleton, shared by client and service so cross-thread spans land
  /// in one buffer with one clock).
  static Tracer &global();

  void setEnabled(bool E) { Enabled.store(E, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Sampling knob: record every Nth root span (1 = all). Children follow
  /// their root's decision.
  void setSampleEveryN(uint32_t N) {
    SampleN.store(N ? N : 1, std::memory_order_relaxed);
  }
  uint32_t sampleEveryN() const {
    return SampleN.load(std::memory_order_relaxed);
  }

  /// Buffer cap; spans past it are dropped (counted in droppedSpans()).
  void setCapacity(size_t Cap);
  /// Drops all buffered spans (keeps enabled/sampling settings).
  void clear();

  size_t spanCount() const;
  uint64_t droppedSpans() const {
    return Dropped.load(std::memory_order_relaxed);
  }

  /// Structured copy of the buffer, for tests and programmatic analysis.
  std::vector<SpanRecord> snapshotSpans() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}), Perfetto-loadable.
  /// Trace/span/parent ids ride in each event's "args".
  std::string exportChromeTrace() const;

  // Internal plumbing used by SpanScope/TraceBinding.
  uint64_t newId() { return NextId.fetch_add(1, std::memory_order_relaxed); }
  bool sampleRoot();
  uint64_t nowUs() const;
  void record(SpanRecord R);

  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

private:
  std::atomic<bool> Enabled{false};
  std::atomic<uint32_t> SampleN{1};
  std::atomic<uint64_t> NextId{1};
  std::atomic<uint64_t> RootSeq{0};
  std::atomic<uint64_t> Dropped{0};
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mutex;
  size_t Capacity = size_t{1} << 18;
  std::vector<SpanRecord> Events;
};

/// RAII span: opens on construction (when tracing is on and the trace is
/// sampled), records on destruction, and maintains the thread-local
/// context so nested scopes become child spans.
class SpanScope {
public:
  /// Literal-name form: no allocation unless the span is recorded.
  SpanScope(const char *Name, const char *Cat) {
    if (begin(Cat))
      Rec.Name = Name;
  }
  /// Dynamic-name form. Guard the string build on Tracer::enabled() at the
  /// call site so a disabled tracer costs no allocation:
  ///   SpanScope S(T.enabled() ? "pass:" + Name : std::string(), "passes");
  SpanScope(std::string Name, const char *Cat) {
    if (begin(Cat))
      Rec.Name = std::move(Name);
  }
  ~SpanScope();

  bool active() const { return Active; }
  uint64_t traceId() const { return Rec.TraceId; }
  uint64_t spanId() const { return Rec.SpanId; }

  SpanScope(const SpanScope &) = delete;
  SpanScope &operator=(const SpanScope &) = delete;

private:
  bool begin(const char *Cat);

  bool Active = false;
  bool Restore = false;
  TraceContext Saved;
  SpanRecord Rec;
};

/// RAII adoption of a propagated trace context, used on the service side:
/// CompilerService binds the (TraceId, SpanId) decoded from the request
/// envelope so its spans stitch under the client's RPC span. TraceId == 0
/// (client not tracing, or root sampled out) suppresses span creation for
/// the scope instead of starting a disconnected trace.
class TraceBinding {
public:
  TraceBinding(uint64_t TraceId, uint64_t ParentSpanId);
  ~TraceBinding();

  TraceBinding(const TraceBinding &) = delete;
  TraceBinding &operator=(const TraceBinding &) = delete;

private:
  bool Restore = false;
  TraceContext Saved;
};

} // namespace telemetry
} // namespace compiler_gym

#define CG_TELEMETRY_CONCAT_IMPL(A, B) A##B
#define CG_TELEMETRY_CONCAT(A, B) CG_TELEMETRY_CONCAT_IMPL(A, B)

/// Opens a span covering the rest of the enclosing scope.
#define CG_TRACE_SPAN(Name, Cat)                                             \
  ::compiler_gym::telemetry::SpanScope CG_TELEMETRY_CONCAT(                  \
      CgTraceSpan_, __LINE__)(Name, Cat)

#endif // COMPILER_GYM_TELEMETRY_TRACE_H
