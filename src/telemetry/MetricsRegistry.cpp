//===- telemetry/MetricsRegistry.cpp --------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/MetricsRegistry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

using namespace compiler_gym;
using namespace compiler_gym::telemetry;

unsigned telemetry::detail::threadStripe() {
  static std::atomic<unsigned> NextStripe{0};
  thread_local unsigned Stripe =
      NextStripe.fetch_add(1, std::memory_order_relaxed) &
      (detail::kStripes - 1);
  return Stripe;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

/// One series per (name, labels): the key flattens both with unprintable
/// separators so label values containing '{' or ',' cannot collide.
static std::string seriesKey(const std::string &Name, const Labels &L) {
  std::string Key = Name;
  for (const auto &KV : L) {
    Key += '\x1f';
    Key += KV.first;
    Key += '\x1e';
    Key += KV.second;
  }
  return Key;
}

template <typename MetricT>
MetricT &MetricsRegistry::lookup(
    std::vector<std::unique_ptr<Entry<MetricT>>> &Family,
    std::unordered_map<std::string, size_t> &Index, const std::string &Name,
    const Labels &L, const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Key = seriesKey(Name, L);
  auto It = Index.find(Key);
  if (It != Index.end())
    return Family[It->second]->Metric;
  Family.push_back(
      std::make_unique<Entry<MetricT>>(Name, L, Help, &Enabled));
  Index.emplace(std::move(Key), Family.size() - 1);
  return Family.back()->Metric;
}

Counter &MetricsRegistry::counter(const std::string &Name, const Labels &L,
                                  const std::string &Help) {
  return lookup(Counters, CounterIndex, Name, L, Help);
}

Gauge &MetricsRegistry::gauge(const std::string &Name, const Labels &L,
                              const std::string &Help) {
  return lookup(Gauges, GaugeIndex, Name, L, Help);
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      const Labels &L,
                                      const std::string &Help) {
  return lookup(Histograms, HistogramIndex, Name, L, Help);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot Snap;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &E : Counters)
    Snap.Counters.push_back({E->Name, E->L, E->Help, E->Metric.value()});
  for (const auto &E : Gauges)
    Snap.Gauges.push_back({E->Name, E->L, E->Help, E->Metric.value()});
  for (const auto &E : Histograms) {
    HistogramSample S;
    S.Name = E->Name;
    S.L = E->L;
    S.Help = E->Help;
    S.Buckets = E->Metric.bucketCounts();
    for (uint64_t C : S.Buckets)
      S.Count += C;
    S.SumUs = E->Metric.sumUs();
    Snap.Histograms.push_back(std::move(S));
  }
  return Snap;
}

static void escapeInto(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '\\' || C == '"')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
}

/// Renders {k="v",...} including an optional extra label (used for le=).
static std::string labelBlock(const Labels &L, const char *ExtraKey = nullptr,
                              const std::string &ExtraVal = "") {
  if (L.empty() && !ExtraKey)
    return "";
  std::string Out = "{";
  bool First = true;
  for (const auto &KV : L) {
    if (!First)
      Out += ',';
    First = false;
    Out += KV.first;
    Out += "=\"";
    escapeInto(Out, KV.second);
    Out += '"';
  }
  if (ExtraKey) {
    if (!First)
      Out += ',';
    Out += ExtraKey;
    Out += "=\"";
    escapeInto(Out, ExtraVal);
    Out += '"';
  }
  Out += '}';
  return Out;
}

template <typename SampleT>
static void emitHeader(std::string &Out, const SampleT &S, const char *Type,
                       std::unordered_map<std::string, bool> &Emitted) {
  if (Emitted.emplace(S.Name, true).second) {
    if (!S.Help.empty())
      Out += "# HELP " + S.Name + " " + S.Help + "\n";
    Out += "# TYPE " + S.Name + " ";
    Out += Type;
    Out += '\n';
  }
}

std::string MetricsRegistry::renderPrometheus() const {
  MetricsSnapshot Snap = snapshot();
  // Exposition format requires every sample of a family to be contiguous;
  // registration order interleaves families when a family's series were
  // first touched at different times. Stable sort groups by name while
  // keeping each family's series in registration order.
  auto ByName = [](const auto &A, const auto &B) { return A.Name < B.Name; };
  std::stable_sort(Snap.Counters.begin(), Snap.Counters.end(), ByName);
  std::stable_sort(Snap.Gauges.begin(), Snap.Gauges.end(), ByName);
  std::stable_sort(Snap.Histograms.begin(), Snap.Histograms.end(), ByName);
  std::string Out;
  std::unordered_map<std::string, bool> Emitted;
  char Buf[64];
  for (const CounterSample &S : Snap.Counters) {
    emitHeader(Out, S, "counter", Emitted);
    std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", S.Value);
    Out += S.Name + labelBlock(S.L) + Buf;
  }
  for (const GaugeSample &S : Snap.Gauges) {
    emitHeader(Out, S, "gauge", Emitted);
    std::snprintf(Buf, sizeof(Buf), " %" PRId64 "\n", S.Value);
    Out += S.Name + labelBlock(S.L) + Buf;
  }
  for (const HistogramSample &S : Snap.Histograms) {
    emitHeader(Out, S, "histogram", Emitted);
    uint64_t Cum = 0;
    for (size_t I = 0; I < Histogram::kBuckets; ++I) {
      Cum += S.Buckets[I];
      std::string Le;
      if (I + 1 == Histogram::kBuckets) {
        Le = "+Inf";
      } else {
        std::snprintf(Buf, sizeof(Buf), "%" PRIu64,
                      Histogram::bucketUpperBoundUs(I));
        Le = Buf;
      }
      std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", Cum);
      Out += S.Name + "_bucket" + labelBlock(S.L, "le", Le) + Buf;
    }
    std::snprintf(Buf, sizeof(Buf), " %.3f\n", S.SumUs);
    Out += S.Name + "_sum" + labelBlock(S.L) + Buf;
    std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", S.Count);
    Out += S.Name + "_count" + labelBlock(S.L) + Buf;
  }
  return Out;
}

static void jsonLabels(std::string &Out, const Labels &L) {
  Out += "\"labels\":{";
  bool First = true;
  for (const auto &KV : L) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    escapeInto(Out, KV.first);
    Out += "\":\"";
    escapeInto(Out, KV.second);
    Out += '"';
  }
  Out += '}';
}

std::string MetricsRegistry::renderJson() const {
  MetricsSnapshot Snap = snapshot();
  std::string Out = "{\"counters\":[";
  char Buf[64];
  bool First = true;
  for (const CounterSample &S : Snap.Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    escapeInto(Out, S.Name);
    Out += "\",";
    jsonLabels(Out, S.L);
    std::snprintf(Buf, sizeof(Buf), ",\"value\":%" PRIu64 "}", S.Value);
    Out += Buf;
  }
  Out += "],\"gauges\":[";
  First = true;
  for (const GaugeSample &S : Snap.Gauges) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    escapeInto(Out, S.Name);
    Out += "\",";
    jsonLabels(Out, S.L);
    std::snprintf(Buf, sizeof(Buf), ",\"value\":%" PRId64 "}", S.Value);
    Out += Buf;
  }
  Out += "],\"histograms\":[";
  First = true;
  for (const HistogramSample &S : Snap.Histograms) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    escapeInto(Out, S.Name);
    Out += "\",";
    jsonLabels(Out, S.L);
    std::snprintf(Buf, sizeof(Buf), ",\"count\":%" PRIu64 ",\"sum_us\":%.3f",
                  S.Count, S.SumUs);
    Out += Buf;
    Out += ",\"buckets\":[";
    uint64_t Cum = 0;
    for (size_t I = 0; I < Histogram::kBuckets; ++I) {
      Cum += S.Buckets[I];
      if (I)
        Out += ',';
      if (I + 1 == Histogram::kBuckets)
        std::snprintf(Buf, sizeof(Buf), "{\"le\":\"+Inf\",\"count\":%" PRIu64
                                        "}",
                      Cum);
      else
        std::snprintf(Buf, sizeof(Buf),
                      "{\"le\":\"%" PRIu64 "\",\"count\":%" PRIu64 "}",
                      Histogram::bucketUpperBoundUs(I), Cum);
      Out += Buf;
    }
    Out += "]}";
  }
  Out += "]}";
  return Out;
}
