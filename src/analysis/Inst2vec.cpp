//===- analysis/Inst2vec.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Inst2vec.h"

#include "util/Hash.h"
#include "util/Rng.h"

#include <mutex>
#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::analysis;
using namespace compiler_gym::ir;

std::string analysis::inst2vecStatement(const Instruction &I) {
  // Canonicalization mirrors inst2vec preprocessing: identifiers are
  // abstracted away, structure is kept.
  std::string S = opcodeName(I.opcode());
  S += ' ';
  S += typeName(I.type());
  if (I.opcode() == Opcode::ICmp || I.opcode() == Opcode::FCmp) {
    S += ' ';
    S += predName(I.pred());
  }
  for (const Value *Op : I.operands()) {
    S += ' ';
    if (const auto *C = dyn_cast<Constant>(Op)) {
      S += "<const:";
      S += typeName(C->type());
      S += '>';
    } else if (isa<GlobalVariable>(Op)) {
      S += "<global>";
    } else if (isa<FunctionRef>(Op)) {
      S += "<func>";
    } else if (isa<BasicBlock>(Op)) {
      S += "<label>";
    } else {
      S += "<id:";
      S += typeName(Op->type());
      S += '>';
    }
  }
  return S;
}

namespace {

/// Embedding table: lazily materialized per vocabulary key, deterministic
/// across processes (seeded by the key's hash). Shared by all modules,
/// like a pretrained vocabulary would be.
class EmbeddingTable {
public:
  const std::vector<float> &lookup(const std::string &Statement) {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Table.find(Statement);
    if (It != Table.end())
      return It->second;
    Rng Gen(fnv1a(Statement));
    std::vector<float> Embedding(Inst2vecDims);
    for (float &X : Embedding)
      X = static_cast<float>(Gen.gaussian() * 0.1);
    return Table.emplace(Statement, std::move(Embedding)).first->second;
  }

private:
  std::mutex Mutex;
  std::unordered_map<std::string, std::vector<float>> Table;
};

EmbeddingTable &embeddingTable() {
  static EmbeddingTable Table;
  return Table;
}

} // namespace

std::vector<float> analysis::inst2vecFunction(const Function &F) {
  std::vector<float> Out;
  Out.reserve(F.instructionCount() * Inst2vecDims);
  F.forEachInstruction([&](BasicBlock &, Instruction &I) {
    const std::vector<float> &E =
        embeddingTable().lookup(inst2vecStatement(I));
    Out.insert(Out.end(), E.begin(), E.end());
  });
  return Out;
}

std::vector<float> analysis::inst2vec(const Module &M) {
  std::vector<float> Out;
  for (const auto &F : M.functions()) {
    std::vector<float> Seg = inst2vecFunction(*F);
    Out.insert(Out.end(), Seg.begin(), Seg.end());
  }
  return Out;
}
