//===- analysis/FeatureCache.h - Incremental feature vectors ----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental maintenance of the InstCount and Autophase observation
/// spaces. Both are per-function decomposable: every dimension is either a
/// sum of per-function contributions, a max over functions (InstCount's
/// max-block-size), or a module-level count (functions, globals). The cache
/// keeps one feature vector per function and recomputes only functions an
/// optimization pass invalidated, so an observation after a single-function
/// transform costs one function scan plus a cheap aggregation instead of a
/// whole-module rescan (the per-observation cost the paper's Table III
/// measures on the step hot path).
///
/// Invalidation is driven externally — the pass layer's AnalysisManager
/// forwards PreservedAnalyses reports here. The cache is also self-healing
/// against function-set changes: aggregation drops entries for functions no
/// longer in the module and creates dirty entries for new ones.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ANALYSIS_FEATURECACHE_H
#define COMPILER_GYM_ANALYSIS_FEATURECACHE_H

#include "analysis/Autophase.h"
#include "analysis/InstCount.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace compiler_gym {
namespace analysis {

/// Lazily maintained per-function feature vectors for one module.
class FeatureCache {
public:
  /// The aggregated 70-D InstCount vector; byte-equal to
  /// analysis::instCount(M) computed from scratch.
  const std::vector<int64_t> &instCount(const ir::Module &M);

  /// The aggregated 56-D Autophase vector; byte-equal to
  /// analysis::autophase(M) computed from scratch.
  const std::vector<int64_t> &autophase(const ir::Module &M);

  /// Marks one function's vectors stale (a pass changed its body).
  void invalidateFunction(const ir::Function *F);

  /// Drops a function's entry entirely (the function was erased).
  void functionErased(const ir::Function *F);

  /// Marks everything stale (module-level transform).
  void invalidateAll();

  /// Verification hooks: the cached per-function vector when valid, else
  /// nullptr. Used by the pass layer's preservation checker to compare
  /// cache contents against a from-scratch recount.
  const std::vector<int64_t> *cachedInstCount(const ir::Function *F) const;
  const std::vector<int64_t> *cachedAutophase(const ir::Function *F) const;

  // -- Telemetry -----------------------------------------------------------
  /// Observation requests served.
  uint64_t requests() const { return Requests; }
  /// Per-function vector recomputations (the work invalidation saves).
  uint64_t functionRecomputes() const { return FunctionRecomputes; }
  /// Aggregate rebuilds (cheap sums; counted separately from scans).
  uint64_t aggregations() const { return Aggregations; }

private:
  struct PerFunction {
    std::vector<int64_t> InstCount;
    std::vector<int64_t> Autophase;
    bool InstCountValid = false;
    bool AutophaseValid = false;
  };

  /// Refreshes the function-entry map against the module's current function
  /// set and recomputes dirty per-function vectors for one feature kind.
  /// Returns true if anything changed (=> aggregate must be rebuilt).
  bool refresh(const ir::Module &M, bool WantInstCount);

  std::unordered_map<const ir::Function *, PerFunction> Funcs;
  std::vector<int64_t> InstCountAgg;
  std::vector<int64_t> AutophaseAgg;
  bool InstCountAggValid = false;
  bool AutophaseAggValid = false;

  uint64_t Requests = 0;
  uint64_t FunctionRecomputes = 0;
  uint64_t Aggregations = 0;
};

} // namespace analysis
} // namespace compiler_gym

#endif // COMPILER_GYM_ANALYSIS_FEATURECACHE_H
