//===- analysis/FeatureCache.h - Incremental feature vectors ----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental maintenance of the per-function-decomposable observation
/// spaces: InstCount, Autophase, Inst2vec and ProGraML. Each keeps one
/// artifact per function and recomputes only functions an optimization
/// pass invalidated, so an observation after a single-function transform
/// costs one function scan plus a cheap aggregation instead of a
/// whole-module rescan (the per-observation cost the paper's Table III
/// measures on the step hot path):
///  * InstCount/Autophase — per-function count vectors, aggregated by
///    sum/max (see InstCount.h).
///  * Inst2vec — per-function embedding segments, aggregated by
///    concatenation in module function order.
///  * ProGraML — per-function GraphFragments with symbolic cross-function
///    references, assembled into the byte-stable v2 wire encoding
///    (see ProGraML.h).
///
/// Invalidation is driven externally — the pass layer's AnalysisManager
/// forwards PreservedAnalyses reports here. The cache is also self-healing
/// against function-set changes: aggregation drops entries for functions no
/// longer in the module and creates dirty entries for new ones. Not
/// thread-safe; one cache per session, like one module per session.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ANALYSIS_FEATURECACHE_H
#define COMPILER_GYM_ANALYSIS_FEATURECACHE_H

#include "analysis/Autophase.h"
#include "analysis/InstCount.h"
#include "analysis/Inst2vec.h"
#include "analysis/ProGraML.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace compiler_gym {
namespace analysis {

/// Which artifact families an invalidation hits. Counts (InstCount,
/// Autophase) are order-insensitive; layout artifacts (Inst2vec, ProGraML)
/// also change under pure reordering. The pass layer maps its
/// AK_Features/AK_Layout preservation bits onto this mask.
enum FeatureSet : unsigned {
  FS_Counts = 1u << 0,
  FS_Layout = 1u << 1,
  FS_All = FS_Counts | FS_Layout,
};

/// Lazily maintained per-function observation artifacts for one module.
class FeatureCache {
public:
  /// The aggregated 70-D InstCount vector; byte-equal to
  /// analysis::instCount(M) computed from scratch.
  const std::vector<int64_t> &instCount(const ir::Module &M);

  /// The aggregated 56-D Autophase vector; byte-equal to
  /// analysis::autophase(M) computed from scratch.
  const std::vector<int64_t> &autophase(const ir::Module &M);

  /// The concatenated (#instructions x 200) embedding matrix; bit-equal to
  /// analysis::inst2vec(M) computed from scratch.
  const std::vector<float> &inst2vec(const ir::Module &M);

  /// The serialized ProGraML graph (v2 fragment-sectioned encoding);
  /// deserializeGraph(result) equals buildProgramGraph(M). The returned
  /// bytes are byte-stable outside regions owned by changed functions,
  /// which is what makes delta-encoded Programl replies small.
  const std::string &programl(const ir::Module &M);

  /// Marks one function's artifacts in \p Mask stale (a pass changed its
  /// body; FS_Layout alone for pure reorderings).
  void invalidateFunction(const ir::Function *F, unsigned Mask = FS_All);

  /// Drops a function's entry entirely (the function was erased).
  void functionErased(const ir::Function *F);

  /// Rekeys \p From's cached artifacts to \p To after a copy-on-write
  /// payload replacement. The copy is structurally identical at rekey
  /// time, so every value-based artifact (count vectors, embedding
  /// segment, graph fragment — whose cross-function references are
  /// symbolic) stays valid under the new key, and the aggregates are not
  /// disturbed. Also used in reverse when a planned mutation turned out
  /// to be a no-op and the original shared payload is reinstated.
  void functionReplaced(const ir::Function *From, const ir::Function *To);

  /// Marks every function's artifacts in \p Mask stale (module-level
  /// transform).
  void invalidateAll(unsigned Mask = FS_All);

  /// Verification hooks: the cached per-function artifact when valid, else
  /// nullptr. Used by the pass layer's preservation checker to compare
  /// cache contents against a from-scratch recount.
  const std::vector<int64_t> *cachedInstCount(const ir::Function *F) const;
  const std::vector<int64_t> *cachedAutophase(const ir::Function *F) const;
  const std::vector<float> *cachedInst2vec(const ir::Function *F) const;
  const GraphFragment *cachedGraphFragment(const ir::Function *F) const;

  // -- Telemetry -----------------------------------------------------------
  /// Observation requests served.
  uint64_t requests() const { return Requests; }
  /// Per-function artifact recomputations (the work invalidation saves).
  uint64_t functionRecomputes() const { return FunctionRecomputes; }
  /// Aggregate rebuilds (cheap sums/concats; counted separately from
  /// scans).
  uint64_t aggregations() const { return Aggregations; }

private:
  enum class Kind { InstCount, Autophase, Inst2vec, Programl };

  struct PerFunction {
    std::vector<int64_t> InstCount;
    std::vector<int64_t> Autophase;
    std::vector<float> Inst2vec;
    GraphFragment Graph;
    bool InstCountValid = false;
    bool AutophaseValid = false;
    bool Inst2vecValid = false;
    bool GraphValid = false;
  };

  /// Refreshes the function-entry map against the module's current function
  /// set and recomputes dirty per-function artifacts for one feature kind.
  /// Returns true if anything changed (=> aggregate must be rebuilt).
  bool refresh(const ir::Module &M, Kind K);

  std::unordered_map<const ir::Function *, PerFunction> Funcs;
  std::vector<int64_t> InstCountAgg;
  std::vector<int64_t> AutophaseAgg;
  std::vector<float> Inst2vecAgg;
  /// Layout of Inst2vecAgg at the last aggregation: function order and
  /// each function's segment start. When an invalidation dirtied some
  /// functions but the function sequence is unchanged, the aggregate is
  /// patched in place (memcpy/splice of the dirty windows) instead of
  /// re-concatenated — the clean prefix is never touched, which is what
  /// pushes the one-dirty path well past the whole-module rescan.
  std::vector<const ir::Function *> Inst2vecOrder;
  std::vector<size_t> Inst2vecOffsets; ///< Parallel to Inst2vecOrder.
  std::string ProgramlAgg;
  bool InstCountAggValid = false;
  bool AutophaseAggValid = false;
  bool Inst2vecAggValid = false;
  bool ProgramlAggValid = false;

  uint64_t Requests = 0;
  uint64_t FunctionRecomputes = 0;
  uint64_t Aggregations = 0;
};

} // namespace analysis
} // namespace compiler_gym

#endif // COMPILER_GYM_ANALYSIS_FEATURECACHE_H
