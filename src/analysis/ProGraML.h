//===- analysis/ProGraML.h - Graph program representation -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ProGraML observation space (Cummins et al., ICML'21): a directed
/// multigraph over instructions, values and functions with typed,
/// positional edges for control flow, data flow and calls. This is the
/// most expensive observation space (Table III) and the input to the
/// GGNN cost model of Fig 8.
///
/// Two build paths produce the same graph:
///  * buildProgramGraph — the whole-module reference builder.
///  * per-function GraphFragments assembled by assembleGraphFragments —
///    the incremental path behind analysis::FeatureCache. A fragment
///    references everything outside its function symbolically (callees,
///    globals, constants by identity), so a one-function edit invalidates
///    exactly one fragment and the assembled wire encoding is byte-stable
///    everywhere else — which is what makes serialized ProGraML replies
///    delta-friendly on the RPC wire.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ANALYSIS_PROGRAML_H
#define COMPILER_GYM_ANALYSIS_PROGRAML_H

#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace compiler_gym {
namespace analysis {

/// A ProGraML-style program graph.
struct ProgramGraph {
  enum class NodeKind { Instruction, Variable, Constant, Function };
  enum class EdgeFlow { Control, Data, Call };

  struct Node {
    NodeKind Kind;
    std::string Text;  ///< Canonical token (opcode, type, or symbol).
    int32_t Feature;   ///< Small integer feature (opcode or type index).

    bool operator==(const Node &O) const {
      return Kind == O.Kind && Text == O.Text && Feature == O.Feature;
    }
  };
  struct Edge {
    int32_t Source;
    int32_t Target;
    EdgeFlow Flow;
    int32_t Position; ///< Operand position for data edges, else 0.

    bool operator==(const Edge &O) const {
      return Source == O.Source && Target == O.Target && Flow == O.Flow &&
             Position == O.Position;
    }
  };

  std::vector<Node> Nodes;
  std::vector<Edge> Edges;

  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const { return Edges.size(); }

  bool operator==(const ProgramGraph &O) const {
    return Nodes == O.Nodes && Edges == O.Edges;
  }
};

/// Builds the graph for \p M.
ProgramGraph buildProgramGraph(const ir::Module &M);

/// Compact serialization (for the transition database and RPC transport).
/// Emits the flat v1 encoding; deserializeGraph accepts both v1 and the
/// fragment-sectioned v2 encoding produced by assembleGraphFragments.
std::string serializeGraph(const ProgramGraph &G);
bool deserializeGraph(const std::string &Bytes, ProgramGraph &Out);

// -- Incremental per-function decomposition -----------------------------------

/// One function's contribution to the program graph, cached by
/// analysis::FeatureCache and stitched back together by
/// assembleGraphFragments. Everything inside the function (instruction
/// nodes, control edges, intra-function data edges) is encoded in Bytes
/// with *local* indices; references that cross the function boundary are
/// symbolic (pointer identity resolved at assembly time), so a fragment
/// stays valid while other functions change around it.
struct GraphFragment {
  uint32_t NumInsts = 0;
  /// Local-coordinate chunk payload (see ProGraML.cpp for the layout).
  /// Copied verbatim into the v2 wire encoding — the byte-stability that
  /// wire-level observation deltas rely on.
  std::string Bytes;
  /// Called functions by name, in first-use order. Symbolic like the
  /// IR's own FunctionRefs, so a fragment survives copy-on-write function
  /// replacement in forked modules.
  std::vector<std::string> Callees;
  /// Referenced globals, in first-use order (identity only).
  std::vector<const ir::GlobalVariable *> Globals;
  /// Referenced constants with their type feature, in first-use order.
  /// The type is captured at build time so assembly never dereferences
  /// the (module-uniqued, never-freed) Constant pointer.
  std::vector<std::pair<const ir::Constant *, int32_t>> Constants;
};

/// Builds \p F's fragment (one function scan).
GraphFragment buildGraphFragment(const ir::Function &F);

/// Assembles per-function fragments (parallel to M.functions()) into the
/// v2 wire encoding. deserializeGraph(result) reconstructs a graph
/// bit-identical to buildProgramGraph(M). Every fragment must be
/// up-to-date and reference only entities present in \p M — the
/// FeatureCache guarantees this by rebuilding stale fragments first.
std::string assembleGraphFragments(const ir::Module &M,
                                   const std::vector<const GraphFragment *> &Frags);

} // namespace analysis
} // namespace compiler_gym

#endif // COMPILER_GYM_ANALYSIS_PROGRAML_H
