//===- analysis/ProGraML.h - Graph program representation -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ProGraML observation space (Cummins et al., ICML'21): a directed
/// multigraph over instructions, values and functions with typed,
/// positional edges for control flow, data flow and calls. This is the
/// most expensive observation space (Table III) and the input to the
/// GGNN cost model of Fig 8.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ANALYSIS_PROGRAML_H
#define COMPILER_GYM_ANALYSIS_PROGRAML_H

#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace compiler_gym {
namespace analysis {

/// A ProGraML-style program graph.
struct ProgramGraph {
  enum class NodeKind { Instruction, Variable, Constant, Function };
  enum class EdgeFlow { Control, Data, Call };

  struct Node {
    NodeKind Kind;
    std::string Text;  ///< Canonical token (opcode, type, or symbol).
    int32_t Feature;   ///< Small integer feature (opcode or type index).
  };
  struct Edge {
    int32_t Source;
    int32_t Target;
    EdgeFlow Flow;
    int32_t Position; ///< Operand position for data edges, else 0.
  };

  std::vector<Node> Nodes;
  std::vector<Edge> Edges;

  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const { return Edges.size(); }
};

/// Builds the graph for \p M.
ProgramGraph buildProgramGraph(const ir::Module &M);

/// Compact serialization (for the transition database and RPC transport).
std::string serializeGraph(const ProgramGraph &G);
bool deserializeGraph(const std::string &Bytes, ProgramGraph &Out);

} // namespace analysis
} // namespace compiler_gym

#endif // COMPILER_GYM_ANALYSIS_PROGRAML_H
