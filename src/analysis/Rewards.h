//===- analysis/Rewards.h - Reward signal providers -------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three optimization targets of the LLVM environment (§V-A):
///   * code size      — IR instruction count (deterministic, platform-free);
///   * binary size    — .text bytes from the lowering model (deterministic,
///                      platform-dependent via TargetDescriptor);
///   * runtime        — interpreter cycle model plus multiplicative
///                      measurement noise (platform-dependent and
///                      nondeterministic, like wall time).
/// Rewards are deltas of these metrics between consecutive states,
/// optionally scaled against the compiler's default pipelines (-Oz for
/// size, -O3 for runtime), exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ANALYSIS_REWARDS_H
#define COMPILER_GYM_ANALYSIS_REWARDS_H

#include "ir/Interpreter.h"
#include "ir/Lowering.h"
#include "ir/Module.h"
#include "util/Rng.h"
#include "util/Status.h"

namespace compiler_gym {
namespace analysis {

/// IR instruction count ("IrInstructionCount").
int64_t codeSize(const ir::Module &M);

/// .text size in bytes ("ObjectTextSizeBytes").
int64_t binarySize(const ir::Module &M,
                   const ir::TargetDescriptor &Target = {});

/// Options for runtime measurement.
struct RuntimeOptions {
  ir::InterpreterOptions Interp;
  double NoiseStddev = 0.02; ///< Multiplicative gaussian noise (~2%, like
                             ///< real wall-time measurements).
  int Repetitions = 1;       ///< Median-of-N, as the paper's protocol.
};

/// Simulated wall seconds for running \p M's entry point. Noise is drawn
/// from \p Gen; a trapped execution yields a large penalty time so agents
/// and autotuners steer away from broken binaries.
StatusOr<double> measureRuntime(const ir::Module &M, Rng &Gen,
                                const RuntimeOptions &Opts = {});

/// Result of a semantics validation run (differential testing, §III-B4).
struct ValidationResult {
  bool Ok = false;
  std::string Error; ///< Populated on mismatch/trap divergence.
};

/// Differential test: runs \p Reference and \p Optimized on the same inputs
/// and compares observable behaviour (return value + global memory).
ValidationResult validateSemantics(const ir::Module &Reference,
                                   const ir::Module &Optimized,
                                   const ir::InterpreterOptions &Opts = {});

} // namespace analysis
} // namespace compiler_gym

#endif // COMPILER_GYM_ANALYSIS_REWARDS_H
