//===- analysis/ProGraML.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ProGraML.h"

#include <cstring>
#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::analysis;
using namespace compiler_gym::ir;

ProgramGraph analysis::buildProgramGraph(const Module &M) {
  ProgramGraph G;
  std::unordered_map<const Value *, int32_t> NodeOf;

  auto addNode = [&](ProgramGraph::NodeKind Kind, std::string Text,
                     int32_t Feature) {
    G.Nodes.push_back({Kind, std::move(Text), Feature});
    return static_cast<int32_t>(G.Nodes.size() - 1);
  };
  auto addEdge = [&](int32_t Src, int32_t Dst, ProgramGraph::EdgeFlow Flow,
                     int32_t Pos) {
    G.Edges.push_back({Src, Dst, Flow, Pos});
  };

  // Function nodes first (call edges reference them).
  std::unordered_map<const Function *, int32_t> FnNode;
  for (const auto &F : M.functions())
    FnNode[F.get()] = addNode(ProgramGraph::NodeKind::Function, F->name(), 0);

  // Variable nodes for globals and arguments.
  for (const auto &Gl : M.globals())
    NodeOf[Gl.get()] = addNode(ProgramGraph::NodeKind::Variable, "global",
                               static_cast<int32_t>(Type::Ptr));
  for (const auto &F : M.functions())
    for (size_t A = 0; A < F->numArgs(); ++A)
      NodeOf[F->arg(A)] =
          addNode(ProgramGraph::NodeKind::Variable, "arg",
                  static_cast<int32_t>(F->arg(A)->type()));

  // Instruction nodes.
  for (const auto &F : M.functions()) {
    F->forEachInstruction([&](BasicBlock &, Instruction &I) {
      NodeOf[&I] = addNode(ProgramGraph::NodeKind::Instruction,
                           opcodeName(I.opcode()),
                           static_cast<int32_t>(I.opcode()));
    });
  }

  // Control edges: within a block consecutive instructions; terminator to
  // the first instruction of each successor. Entry gets a call edge from
  // the function node.
  for (const auto &F : M.functions()) {
    if (!F->empty() && !F->entry()->empty())
      addEdge(FnNode[F.get()], NodeOf.at(F->entry()->front()),
              ProgramGraph::EdgeFlow::Call, 0);
    for (const auto &BB : F->blocks()) {
      for (size_t I = 0; I + 1 < BB->size(); ++I)
        addEdge(NodeOf.at(BB->instructions()[I].get()),
                NodeOf.at(BB->instructions()[I + 1].get()),
                ProgramGraph::EdgeFlow::Control, 0);
      Instruction *Term = BB->terminator();
      if (!Term)
        continue;
      int32_t Pos = 0;
      for (BasicBlock *Succ : BB->successors())
        if (!Succ->empty())
          addEdge(NodeOf.at(Term), NodeOf.at(Succ->front()),
                  ProgramGraph::EdgeFlow::Control, Pos++);
    }
  }

  // Data edges: operand values to the consuming instruction, with operand
  // position. Constants materialize nodes on first use. Call edges connect
  // call sites to callee function nodes and back.
  std::unordered_map<const Value *, int32_t> ConstNode;
  for (const auto &F : M.functions()) {
    F->forEachInstruction([&](BasicBlock &, Instruction &I) {
      int32_t Me = NodeOf.at(&I);
      for (size_t Op = 0; Op < I.numOperands(); ++Op) {
        const Value *V = I.operand(Op);
        if (const auto *C = dyn_cast<Constant>(V)) {
          auto It = ConstNode.find(C);
          int32_t CN;
          if (It != ConstNode.end()) {
            CN = It->second;
          } else {
            CN = addNode(ProgramGraph::NodeKind::Constant, typeName(C->type()),
                         static_cast<int32_t>(C->type()));
            ConstNode[C] = CN;
          }
          addEdge(CN, Me, ProgramGraph::EdgeFlow::Data,
                  static_cast<int32_t>(Op));
          continue;
        }
        if (const auto *FR = dyn_cast<FunctionRef>(V)) {
          addEdge(Me, FnNode.at(FR->function()), ProgramGraph::EdgeFlow::Call,
                  0);
          continue;
        }
        if (isa<BasicBlock>(V))
          continue; // Control already modeled.
        auto It = NodeOf.find(V);
        if (It != NodeOf.end())
          addEdge(It->second, Me, ProgramGraph::EdgeFlow::Data,
                  static_cast<int32_t>(Op));
      }
    });
  }
  return G;
}

namespace {

void appendI32(std::string &Out, int32_t V) {
  char Buf[4];
  std::memcpy(Buf, &V, 4);
  Out.append(Buf, 4);
}

bool readI32(const std::string &In, size_t &Cursor, int32_t &V) {
  if (Cursor + 4 > In.size())
    return false;
  std::memcpy(&V, In.data() + Cursor, 4);
  Cursor += 4;
  return true;
}

} // namespace

std::string analysis::serializeGraph(const ProgramGraph &G) {
  std::string Out;
  appendI32(Out, static_cast<int32_t>(G.Nodes.size()));
  appendI32(Out, static_cast<int32_t>(G.Edges.size()));
  for (const auto &N : G.Nodes) {
    appendI32(Out, static_cast<int32_t>(N.Kind));
    appendI32(Out, N.Feature);
    appendI32(Out, static_cast<int32_t>(N.Text.size()));
    Out += N.Text;
  }
  for (const auto &E : G.Edges) {
    appendI32(Out, E.Source);
    appendI32(Out, E.Target);
    appendI32(Out, static_cast<int32_t>(E.Flow));
    appendI32(Out, E.Position);
  }
  return Out;
}

bool analysis::deserializeGraph(const std::string &Bytes, ProgramGraph &Out) {
  Out.Nodes.clear();
  Out.Edges.clear();
  size_t Cursor = 0;
  int32_t NumNodes, NumEdges;
  if (!readI32(Bytes, Cursor, NumNodes) || !readI32(Bytes, Cursor, NumEdges))
    return false;
  if (NumNodes < 0 || NumEdges < 0)
    return false;
  Out.Nodes.reserve(NumNodes);
  for (int32_t I = 0; I < NumNodes; ++I) {
    int32_t Kind, Feature, Len;
    if (!readI32(Bytes, Cursor, Kind) || !readI32(Bytes, Cursor, Feature) ||
        !readI32(Bytes, Cursor, Len))
      return false;
    if (Len < 0 || Cursor + static_cast<size_t>(Len) > Bytes.size())
      return false;
    Out.Nodes.push_back({static_cast<ProgramGraph::NodeKind>(Kind),
                         Bytes.substr(Cursor, Len), Feature});
    Cursor += Len;
  }
  Out.Edges.reserve(NumEdges);
  for (int32_t I = 0; I < NumEdges; ++I) {
    int32_t Src, Dst, Flow, Pos;
    if (!readI32(Bytes, Cursor, Src) || !readI32(Bytes, Cursor, Dst) ||
        !readI32(Bytes, Cursor, Flow) || !readI32(Bytes, Cursor, Pos))
      return false;
    Out.Edges.push_back({Src, Dst, static_cast<ProgramGraph::EdgeFlow>(Flow),
                         Pos});
  }
  return true;
}
