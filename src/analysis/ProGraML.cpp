//===- analysis/ProGraML.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ProGraML.h"

#include <cstring>
#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::analysis;
using namespace compiler_gym::ir;

ProgramGraph analysis::buildProgramGraph(const Module &M) {
  ProgramGraph G;
  std::unordered_map<const Value *, int32_t> NodeOf;

  auto addNode = [&](ProgramGraph::NodeKind Kind, std::string Text,
                     int32_t Feature) {
    G.Nodes.push_back({Kind, std::move(Text), Feature});
    return static_cast<int32_t>(G.Nodes.size() - 1);
  };
  auto addEdge = [&](int32_t Src, int32_t Dst, ProgramGraph::EdgeFlow Flow,
                     int32_t Pos) {
    G.Edges.push_back({Src, Dst, Flow, Pos});
  };

  // Function nodes first (call edges reference them, by name: call
  // operands are symbolic so they resolve against this module's current
  // function set).
  std::unordered_map<std::string, int32_t> FnNode;
  for (const auto &F : M.functions())
    FnNode[F->name()] = addNode(ProgramGraph::NodeKind::Function, F->name(), 0);

  // Variable nodes for globals and arguments.
  for (const auto &Gl : M.globals())
    NodeOf[Gl.get()] = addNode(ProgramGraph::NodeKind::Variable, "global",
                               static_cast<int32_t>(Type::Ptr));
  for (const auto &F : M.functions())
    for (size_t A = 0; A < F->numArgs(); ++A)
      NodeOf[F->arg(A)] =
          addNode(ProgramGraph::NodeKind::Variable, "arg",
                  static_cast<int32_t>(F->arg(A)->type()));

  // Instruction nodes.
  for (const auto &F : M.functions()) {
    F->forEachInstruction([&](BasicBlock &, Instruction &I) {
      NodeOf[&I] = addNode(ProgramGraph::NodeKind::Instruction,
                           opcodeName(I.opcode()),
                           static_cast<int32_t>(I.opcode()));
    });
  }

  // Control edges: within a block consecutive instructions; terminator to
  // the first instruction of each successor. Entry gets a call edge from
  // the function node.
  for (const auto &F : M.functions()) {
    if (!F->empty() && !F->entry()->empty())
      addEdge(FnNode[F->name()], NodeOf.at(F->entry()->front()),
              ProgramGraph::EdgeFlow::Call, 0);
    for (const auto &BB : F->blocks()) {
      for (size_t I = 0; I + 1 < BB->size(); ++I)
        addEdge(NodeOf.at(BB->instructions()[I].get()),
                NodeOf.at(BB->instructions()[I + 1].get()),
                ProgramGraph::EdgeFlow::Control, 0);
      Instruction *Term = BB->terminator();
      if (!Term)
        continue;
      int32_t Pos = 0;
      for (BasicBlock *Succ : BB->successors())
        if (!Succ->empty())
          addEdge(NodeOf.at(Term), NodeOf.at(Succ->front()),
                  ProgramGraph::EdgeFlow::Control, Pos++);
    }
  }

  // Data edges: operand values to the consuming instruction, with operand
  // position. Constants materialize nodes on first use. Call edges connect
  // call sites to callee function nodes and back.
  std::unordered_map<const Value *, int32_t> ConstNode;
  for (const auto &F : M.functions()) {
    F->forEachInstruction([&](BasicBlock &, Instruction &I) {
      int32_t Me = NodeOf.at(&I);
      for (size_t Op = 0; Op < I.numOperands(); ++Op) {
        const Value *V = I.operand(Op);
        if (const auto *C = dyn_cast<Constant>(V)) {
          auto It = ConstNode.find(C);
          int32_t CN;
          if (It != ConstNode.end()) {
            CN = It->second;
          } else {
            CN = addNode(ProgramGraph::NodeKind::Constant, typeName(C->type()),
                         static_cast<int32_t>(C->type()));
            ConstNode[C] = CN;
          }
          addEdge(CN, Me, ProgramGraph::EdgeFlow::Data,
                  static_cast<int32_t>(Op));
          continue;
        }
        if (const auto *FR = dyn_cast<FunctionRef>(V)) {
          auto FnIt = FnNode.find(FR->calleeName());
          if (FnIt != FnNode.end())
            addEdge(Me, FnIt->second, ProgramGraph::EdgeFlow::Call, 0);
          continue;
        }
        if (isa<BasicBlock>(V))
          continue; // Control already modeled.
        auto It = NodeOf.find(V);
        if (It != NodeOf.end())
          addEdge(It->second, Me, ProgramGraph::EdgeFlow::Data,
                  static_cast<int32_t>(Op));
      }
    });
  }
  return G;
}

namespace {

void appendI32(std::string &Out, int32_t V) {
  char Buf[4];
  std::memcpy(Buf, &V, 4);
  Out.append(Buf, 4);
}

bool readI32(const std::string &In, size_t &Cursor, int32_t &V) {
  if (Cursor + 4 > In.size())
    return false;
  std::memcpy(&V, In.data() + Cursor, 4);
  Cursor += 4;
  return true;
}

/// Version tag of the fragment-sectioned encoding. Negative so a v1 buffer
/// (which starts with a non-negative node count) can never be mistaken
/// for v2.
constexpr int32_t GraphFormatV2 = -2;

/// Cross-function reference kinds inside a fragment's data-edge records.
enum RefKind : int32_t {
  RefInst = 0,   ///< Local instruction index.
  RefArg = 1,    ///< Own argument index.
  RefGlobal = 2, ///< Index into the fragment's Globals list.
  RefConst = 3,  ///< Index into the fragment's Constants list.
  RefCallee = 4, ///< Index into the fragment's Callees list.
};

bool validOpcodeFeature(int32_t F) { return F >= 0 && F < ir::NumOpcodes; }
bool validTypeFeature(int32_t F) {
  return F >= 0 && F <= static_cast<int32_t>(Type::FunctionTy);
}

} // namespace

std::string analysis::serializeGraph(const ProgramGraph &G) {
  std::string Out;
  appendI32(Out, static_cast<int32_t>(G.Nodes.size()));
  appendI32(Out, static_cast<int32_t>(G.Edges.size()));
  for (const auto &N : G.Nodes) {
    appendI32(Out, static_cast<int32_t>(N.Kind));
    appendI32(Out, N.Feature);
    appendI32(Out, static_cast<int32_t>(N.Text.size()));
    Out += N.Text;
  }
  for (const auto &E : G.Edges) {
    appendI32(Out, E.Source);
    appendI32(Out, E.Target);
    appendI32(Out, static_cast<int32_t>(E.Flow));
    appendI32(Out, E.Position);
  }
  return Out;
}

namespace {

/// Parsed form of one fragment's local-coordinate byte payload.
struct ParsedFragment {
  std::vector<int32_t> Opcodes;
  bool HasEntry = false;
  int32_t EntryDst = 0;
  struct CtrlEdge {
    int32_t Src, Dst, Pos;
  };
  std::vector<CtrlEdge> Control;
  struct DataRec {
    int32_t Me, Kind, Ref, Pos;
  };
  std::vector<DataRec> Data;
};

bool parseFragmentBytes(const std::string &In, ParsedFragment &F) {
  size_t Cursor = 0;
  int32_t NumInsts;
  if (!readI32(In, Cursor, NumInsts) || NumInsts < 0 ||
      Cursor + static_cast<size_t>(NumInsts) * 4 > In.size())
    return false;
  F.Opcodes.resize(NumInsts);
  for (int32_t I = 0; I < NumInsts; ++I) {
    if (!readI32(In, Cursor, F.Opcodes[I]) ||
        !validOpcodeFeature(F.Opcodes[I]))
      return false;
  }
  int32_t HasEntry;
  if (!readI32(In, Cursor, HasEntry) || (HasEntry != 0 && HasEntry != 1))
    return false;
  F.HasEntry = HasEntry == 1;
  if (F.HasEntry) {
    if (!readI32(In, Cursor, F.EntryDst) || F.EntryDst < 0 ||
        F.EntryDst >= NumInsts)
      return false;
  }
  int32_t NumCtrl;
  if (!readI32(In, Cursor, NumCtrl) || NumCtrl < 0 ||
      Cursor + static_cast<size_t>(NumCtrl) * 12 > In.size())
    return false;
  F.Control.resize(NumCtrl);
  for (auto &E : F.Control) {
    if (!readI32(In, Cursor, E.Src) || !readI32(In, Cursor, E.Dst) ||
        !readI32(In, Cursor, E.Pos))
      return false;
    if (E.Src < 0 || E.Src >= NumInsts || E.Dst < 0 || E.Dst >= NumInsts)
      return false;
  }
  int32_t NumData;
  if (!readI32(In, Cursor, NumData) || NumData < 0 ||
      Cursor + static_cast<size_t>(NumData) * 16 > In.size())
    return false;
  F.Data.resize(NumData);
  for (auto &R : F.Data) {
    if (!readI32(In, Cursor, R.Me) || !readI32(In, Cursor, R.Kind) ||
        !readI32(In, Cursor, R.Ref) || !readI32(In, Cursor, R.Pos))
      return false;
    if (R.Me < 0 || R.Me >= NumInsts || R.Kind < RefInst ||
        R.Kind > RefCallee || R.Ref < 0)
      return false;
    if (R.Kind == RefInst && R.Ref >= NumInsts)
      return false;
  }
  return Cursor == In.size();
}

bool readCountedI32s(const std::string &In, size_t &Cursor,
                     std::vector<int32_t> &Out) {
  int32_t N;
  if (!readI32(In, Cursor, N) || N < 0 ||
      Cursor + static_cast<size_t>(N) * 4 > In.size())
    return false;
  Out.resize(N);
  for (auto &V : Out)
    if (!readI32(In, Cursor, V))
      return false;
  return true;
}

/// Decodes the fragment-sectioned v2 encoding (assembleGraphFragments).
/// Reconstructs the exact node/edge ordering of buildProgramGraph.
bool deserializeGraphV2(const std::string &Bytes, ProgramGraph &Out) {
  size_t Cursor = 4; // Past the version tag.
  int32_t NumFunctions;
  // Every encoded function record occupies >= 16 bytes (name + arg +
  // ref-table headers + fragment length); bounding the count before the
  // vector allocation keeps a malformed payload from forcing a ~200x
  // memory amplification.
  if (!readI32(Bytes, Cursor, NumFunctions) || NumFunctions < 0 ||
      static_cast<size_t>(NumFunctions) > Bytes.size() / 16)
    return false;

  struct FnInfo {
    std::string Name;
    std::vector<int32_t> ArgTypes;
    std::vector<int32_t> Callees;   ///< Global function indices.
    std::vector<int32_t> Globals;   ///< Global-variable indices.
    std::vector<int32_t> Constants; ///< Global constant ids.
    ParsedFragment Frag;
  };
  std::vector<FnInfo> Fns(NumFunctions);
  for (auto &F : Fns) {
    int32_t NameLen;
    if (!readI32(Bytes, Cursor, NameLen) || NameLen < 0 ||
        Cursor + static_cast<size_t>(NameLen) > Bytes.size())
      return false;
    F.Name = Bytes.substr(Cursor, NameLen);
    Cursor += NameLen;
    if (!readCountedI32s(Bytes, Cursor, F.ArgTypes))
      return false;
    for (int32_t T : F.ArgTypes)
      if (!validTypeFeature(T))
        return false;
  }
  int32_t NumGlobals;
  if (!readI32(Bytes, Cursor, NumGlobals) || NumGlobals < 0 ||
      static_cast<size_t>(NumGlobals) > Bytes.size())
    return false;
  std::vector<int32_t> ConstTypes;
  if (!readCountedI32s(Bytes, Cursor, ConstTypes))
    return false;
  for (int32_t T : ConstTypes)
    if (!validTypeFeature(T))
      return false;
  for (auto &F : Fns) {
    if (!readCountedI32s(Bytes, Cursor, F.Callees) ||
        !readCountedI32s(Bytes, Cursor, F.Globals) ||
        !readCountedI32s(Bytes, Cursor, F.Constants))
      return false;
    for (int32_t C : F.Callees)
      if (C < 0 || C >= NumFunctions)
        return false;
    for (int32_t G : F.Globals)
      if (G < 0 || G >= NumGlobals)
        return false;
    for (int32_t C : F.Constants)
      if (C < 0 || static_cast<size_t>(C) >= ConstTypes.size())
        return false;
    int32_t FragLen;
    if (!readI32(Bytes, Cursor, FragLen) || FragLen < 0 ||
        Cursor + static_cast<size_t>(FragLen) > Bytes.size())
      return false;
    if (!parseFragmentBytes(Bytes.substr(Cursor, FragLen), F.Frag))
      return false;
    Cursor += FragLen;
    // Local references must stay inside the declared tables.
    for (const auto &R : F.Frag.Data) {
      if (R.Kind == RefArg && static_cast<size_t>(R.Ref) >= F.ArgTypes.size())
        return false;
      if (R.Kind == RefGlobal &&
          static_cast<size_t>(R.Ref) >= F.Globals.size())
        return false;
      if (R.Kind == RefConst &&
          static_cast<size_t>(R.Ref) >= F.Constants.size())
        return false;
      if (R.Kind == RefCallee &&
          static_cast<size_t>(R.Ref) >= F.Callees.size())
        return false;
    }
  }
  if (Cursor != Bytes.size())
    return false;

  // Node index bases, mirroring buildProgramGraph's emission order:
  // functions, globals, args (per function), instructions (per function),
  // constants (first-use order == global id order).
  const int32_t GlobalBase = NumFunctions;
  std::vector<int32_t> ArgBase(Fns.size()), InstBase(Fns.size());
  int32_t Next = GlobalBase + NumGlobals;
  for (size_t I = 0; I < Fns.size(); ++I) {
    ArgBase[I] = Next;
    Next += static_cast<int32_t>(Fns[I].ArgTypes.size());
  }
  for (size_t I = 0; I < Fns.size(); ++I) {
    InstBase[I] = Next;
    Next += static_cast<int32_t>(Fns[I].Frag.Opcodes.size());
  }
  const int32_t ConstBase = Next;

  Out.Nodes.clear();
  Out.Edges.clear();
  Out.Nodes.reserve(ConstBase + ConstTypes.size());
  for (auto &F : Fns)
    Out.Nodes.push_back(
        {ProgramGraph::NodeKind::Function, std::move(F.Name), 0});
  for (int32_t G = 0; G < NumGlobals; ++G)
    Out.Nodes.push_back({ProgramGraph::NodeKind::Variable, "global",
                         static_cast<int32_t>(Type::Ptr)});
  for (const auto &F : Fns)
    for (int32_t T : F.ArgTypes)
      Out.Nodes.push_back({ProgramGraph::NodeKind::Variable, "arg", T});
  for (const auto &F : Fns)
    for (int32_t Op : F.Frag.Opcodes)
      Out.Nodes.push_back({ProgramGraph::NodeKind::Instruction,
                           opcodeName(static_cast<Opcode>(Op)), Op});
  for (int32_t T : ConstTypes)
    Out.Nodes.push_back({ProgramGraph::NodeKind::Constant,
                         typeName(static_cast<Type>(T)), T});

  // Control phase, then data/call phase — each in function order.
  for (size_t I = 0; I < Fns.size(); ++I) {
    const ParsedFragment &Frag = Fns[I].Frag;
    if (Frag.HasEntry)
      Out.Edges.push_back({static_cast<int32_t>(I),
                           InstBase[I] + Frag.EntryDst,
                           ProgramGraph::EdgeFlow::Call, 0});
    for (const auto &E : Frag.Control)
      Out.Edges.push_back({InstBase[I] + E.Src, InstBase[I] + E.Dst,
                           ProgramGraph::EdgeFlow::Control, E.Pos});
  }
  for (size_t I = 0; I < Fns.size(); ++I) {
    const FnInfo &F = Fns[I];
    for (const auto &R : F.Frag.Data) {
      int32_t Me = InstBase[I] + R.Me;
      switch (R.Kind) {
      case RefInst:
        Out.Edges.push_back(
            {InstBase[I] + R.Ref, Me, ProgramGraph::EdgeFlow::Data, R.Pos});
        break;
      case RefArg:
        Out.Edges.push_back(
            {ArgBase[I] + R.Ref, Me, ProgramGraph::EdgeFlow::Data, R.Pos});
        break;
      case RefGlobal:
        Out.Edges.push_back({GlobalBase + F.Globals[R.Ref], Me,
                             ProgramGraph::EdgeFlow::Data, R.Pos});
        break;
      case RefConst:
        Out.Edges.push_back({ConstBase + F.Constants[R.Ref], Me,
                             ProgramGraph::EdgeFlow::Data, R.Pos});
        break;
      case RefCallee:
        Out.Edges.push_back(
            {Me, F.Callees[R.Ref], ProgramGraph::EdgeFlow::Call, 0});
        break;
      }
    }
  }
  return true;
}

} // namespace

GraphFragment analysis::buildGraphFragment(const Function &F) {
  GraphFragment Out;
  std::unordered_map<const Instruction *, int32_t> LocalIdx;
  std::vector<int32_t> Opcodes;
  F.forEachInstruction([&](BasicBlock &, Instruction &I) {
    LocalIdx[&I] = static_cast<int32_t>(Opcodes.size());
    Opcodes.push_back(static_cast<int32_t>(I.opcode()));
  });
  Out.NumInsts = static_cast<uint32_t>(Opcodes.size());

  std::string &B = Out.Bytes;
  appendI32(B, static_cast<int32_t>(Opcodes.size()));
  for (int32_t Op : Opcodes)
    appendI32(B, Op);

  bool HasEntry = !F.empty() && !F.entry()->empty();
  appendI32(B, HasEntry ? 1 : 0);
  if (HasEntry)
    appendI32(B, LocalIdx.at(F.entry()->front()));

  // Control edges, in buildProgramGraph's emission order.
  std::string Ctrl;
  int32_t NumCtrl = 0;
  for (const auto &BB : F.blocks()) {
    for (size_t I = 0; I + 1 < BB->size(); ++I) {
      appendI32(Ctrl, LocalIdx.at(BB->instructions()[I].get()));
      appendI32(Ctrl, LocalIdx.at(BB->instructions()[I + 1].get()));
      appendI32(Ctrl, 0);
      ++NumCtrl;
    }
    Instruction *Term = BB->terminator();
    if (!Term)
      continue;
    int32_t Pos = 0;
    for (BasicBlock *Succ : BB->successors())
      if (!Succ->empty()) {
        appendI32(Ctrl, LocalIdx.at(Term));
        appendI32(Ctrl, LocalIdx.at(Succ->front()));
        appendI32(Ctrl, Pos++);
        ++NumCtrl;
      }
  }
  appendI32(B, NumCtrl);
  B += Ctrl;

  // Data/call records, with symbolic cross-function references in
  // first-use order.
  std::unordered_map<const Value *, int32_t> ConstIdx, GlobalIdx;
  std::unordered_map<std::string, int32_t> CalleeIdx;
  std::string Data;
  int32_t NumData = 0;
  auto record = [&](int32_t Me, int32_t Kind, int32_t Ref, int32_t Pos) {
    appendI32(Data, Me);
    appendI32(Data, Kind);
    appendI32(Data, Ref);
    appendI32(Data, Pos);
    ++NumData;
  };
  F.forEachInstruction([&](BasicBlock &, Instruction &I) {
    int32_t Me = LocalIdx.at(&I);
    for (size_t Op = 0; Op < I.numOperands(); ++Op) {
      const Value *V = I.operand(Op);
      if (const auto *C = dyn_cast<Constant>(V)) {
        auto [It, New] =
            ConstIdx.try_emplace(C, static_cast<int32_t>(Out.Constants.size()));
        if (New)
          Out.Constants.emplace_back(C, static_cast<int32_t>(C->type()));
        record(Me, RefConst, It->second, static_cast<int32_t>(Op));
        continue;
      }
      if (const auto *FR = dyn_cast<FunctionRef>(V)) {
        auto [It, New] = CalleeIdx.try_emplace(
            FR->calleeName(), static_cast<int32_t>(Out.Callees.size()));
        if (New)
          Out.Callees.push_back(FR->calleeName());
        record(Me, RefCallee, It->second, 0);
        continue;
      }
      if (isa<BasicBlock>(V))
        continue; // Control already modeled.
      if (const auto *A = dyn_cast<Argument>(V)) {
        if (A->parent() == &F)
          record(Me, RefArg, static_cast<int32_t>(A->index()),
                 static_cast<int32_t>(Op));
        continue;
      }
      if (const auto *G = dyn_cast<GlobalVariable>(V)) {
        auto [It, New] = GlobalIdx.try_emplace(
            G, static_cast<int32_t>(Out.Globals.size()));
        if (New)
          Out.Globals.push_back(G);
        record(Me, RefGlobal, It->second, static_cast<int32_t>(Op));
        continue;
      }
      if (const auto *Inst = dyn_cast<Instruction>(V)) {
        auto It = LocalIdx.find(Inst);
        if (It != LocalIdx.end())
          record(Me, RefInst, It->second, static_cast<int32_t>(Op));
      }
    }
  });
  appendI32(B, NumData);
  B += Data;
  return Out;
}

std::string
analysis::assembleGraphFragments(const Module &M,
                                 const std::vector<const GraphFragment *> &Frags) {
  assert(Frags.size() == M.functions().size() &&
         "one fragment per module function");
  std::string Out;
  appendI32(Out, GraphFormatV2);
  appendI32(Out, static_cast<int32_t>(M.functions().size()));
  std::unordered_map<std::string, int32_t> FnIdx;
  for (size_t I = 0; I < M.functions().size(); ++I) {
    const Function &F = *M.functions()[I];
    FnIdx[F.name()] = static_cast<int32_t>(I);
    appendI32(Out, static_cast<int32_t>(F.name().size()));
    Out += F.name();
    appendI32(Out, static_cast<int32_t>(F.numArgs()));
    for (size_t A = 0; A < F.numArgs(); ++A)
      appendI32(Out, static_cast<int32_t>(F.arg(A)->type()));
  }
  std::unordered_map<const Value *, int32_t> GlobalIdx;
  appendI32(Out, static_cast<int32_t>(M.globals().size()));
  for (size_t G = 0; G < M.globals().size(); ++G)
    GlobalIdx[M.globals()[G].get()] = static_cast<int32_t>(G);

  // Constants get module-wide ids in first-use order across fragments —
  // the same order buildProgramGraph materializes constant nodes in.
  std::unordered_map<const Constant *, int32_t> ConstId;
  std::string ConstTypes;
  int32_t NumConsts = 0;
  for (const GraphFragment *Frag : Frags)
    for (const auto &[C, TypeFeature] : Frag->Constants)
      if (ConstId.try_emplace(C, NumConsts).second) {
        appendI32(ConstTypes, TypeFeature);
        ++NumConsts;
      }
  appendI32(Out, NumConsts);
  Out += ConstTypes;

  for (const GraphFragment *Frag : Frags) {
    appendI32(Out, static_cast<int32_t>(Frag->Callees.size()));
    for (const std::string &Callee : Frag->Callees)
      appendI32(Out, FnIdx.at(Callee));
    appendI32(Out, static_cast<int32_t>(Frag->Globals.size()));
    for (const GlobalVariable *G : Frag->Globals)
      appendI32(Out, GlobalIdx.at(G));
    appendI32(Out, static_cast<int32_t>(Frag->Constants.size()));
    for (const auto &[C, TypeFeature] : Frag->Constants)
      appendI32(Out, ConstId.at(C));
    appendI32(Out, static_cast<int32_t>(Frag->Bytes.size()));
    Out += Frag->Bytes;
  }
  return Out;
}

bool analysis::deserializeGraph(const std::string &Bytes, ProgramGraph &Out) {
  Out.Nodes.clear();
  Out.Edges.clear();
  size_t Cursor = 0;
  int32_t NumNodes, NumEdges;
  if (!readI32(Bytes, Cursor, NumNodes))
    return false;
  if (NumNodes == GraphFormatV2)
    return deserializeGraphV2(Bytes, Out);
  if (!readI32(Bytes, Cursor, NumEdges))
    return false;
  if (NumNodes < 0 || NumEdges < 0)
    return false;
  Out.Nodes.reserve(NumNodes);
  for (int32_t I = 0; I < NumNodes; ++I) {
    int32_t Kind, Feature, Len;
    if (!readI32(Bytes, Cursor, Kind) || !readI32(Bytes, Cursor, Feature) ||
        !readI32(Bytes, Cursor, Len))
      return false;
    if (Len < 0 || Cursor + static_cast<size_t>(Len) > Bytes.size())
      return false;
    Out.Nodes.push_back({static_cast<ProgramGraph::NodeKind>(Kind),
                         Bytes.substr(Cursor, Len), Feature});
    Cursor += Len;
  }
  Out.Edges.reserve(NumEdges);
  for (int32_t I = 0; I < NumEdges; ++I) {
    int32_t Src, Dst, Flow, Pos;
    if (!readI32(Bytes, Cursor, Src) || !readI32(Bytes, Cursor, Dst) ||
        !readI32(Bytes, Cursor, Flow) || !readI32(Bytes, Cursor, Pos))
      return false;
    Out.Edges.push_back({Src, Dst, static_cast<ProgramGraph::EdgeFlow>(Flow),
                         Pos});
  }
  return true;
}
