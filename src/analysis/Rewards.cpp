//===- analysis/Rewards.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Rewards.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::analysis;
using namespace compiler_gym::ir;

int64_t analysis::codeSize(const Module &M) {
  return static_cast<int64_t>(M.instructionCount());
}

int64_t analysis::binarySize(const Module &M, const TargetDescriptor &Target) {
  return static_cast<int64_t>(
      lowerModule(M, Target, /*EmitText=*/false).TextSizeBytes);
}

StatusOr<double> analysis::measureRuntime(const Module &M, Rng &Gen,
                                          const RuntimeOptions &Opts) {
  std::vector<double> Samples;
  Samples.reserve(static_cast<size_t>(std::max(1, Opts.Repetitions)));
  for (int Rep = 0; Rep < std::max(1, Opts.Repetitions); ++Rep) {
    CG_ASSIGN_OR_RETURN(ExecutionResult R, interpret(M, Opts.Interp));
    double Seconds = R.simulatedSeconds();
    if (!R.Completed) {
      // A trapped/diverging binary: heavily penalized, still measurable.
      Seconds = static_cast<double>(Opts.Interp.MaxInstructions) / 2.5e9 * 10;
    }
    double Noise = 1.0 + Gen.gaussian(0.0, Opts.NoiseStddev);
    Samples.push_back(Seconds * std::max(0.5, Noise));
  }
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

ValidationResult
analysis::validateSemantics(const Module &Reference, const Module &Optimized,
                            const InterpreterOptions &Opts) {
  ValidationResult Out;
  StatusOr<ExecutionResult> Ref = interpret(Reference, Opts);
  StatusOr<ExecutionResult> Opt = interpret(Optimized, Opts);
  if (!Ref.isOk() || !Opt.isOk()) {
    Out.Error = "execution setup failed: " +
                (Ref.isOk() ? Opt.status() : Ref.status()).toString();
    return Out;
  }
  if (Ref->Completed != Opt->Completed) {
    Out.Error = std::string("completion divergence: reference ") +
                (Ref->Completed ? "completed" : ("trapped: " +
                                                 Ref->TrapReason)) +
                ", optimized " +
                (Opt->Completed ? "completed" : ("trapped: " +
                                                 Opt->TrapReason));
    return Out;
  }
  if (Ref->Completed && Ref->OutputHash != Opt->OutputHash) {
    Out.Error = "output divergence: observable state hashes differ";
    return Out;
  }
  Out.Ok = true;
  return Out;
}
