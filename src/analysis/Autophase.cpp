//===- analysis/Autophase.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Autophase.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::analysis;
using namespace compiler_gym::ir;

namespace {

/// The 56 feature slots. Kept as an enum so the extractor and the name
/// table cannot drift apart.
enum Feature {
  BBCount = 0,         // Number of basic blocks.
  BBOneSucc,           // Blocks with exactly one successor.
  BBTwoSucc,           // Blocks with two successors.
  BBOnePred,           // Blocks with exactly one predecessor.
  BBTwoPred,           // Blocks with two predecessors.
  BBMorePreds,         // Blocks with more than two predecessors.
  BBNoSucc,            // Blocks with no successors (returns).
  BBBeginPhi,          // Blocks that begin with a phi.
  BBArgsPhiGt5,        // Blocks with >5 total phi args.
  BBArgsPhi15,         // Blocks with 1..5 total phi args.
  BBInstLt15,          // Blocks with fewer than 15 instructions.
  BBInst15to500,       // Blocks with 15..500 instructions.
  BBInstGt500,         // Blocks with more than 500 instructions.
  CfgEdges,            // Total CFG edges.
  CriticalEdges,       // Edges whose source has >1 succ and dest >1 pred.
  Branches,            // Unconditional branches.
  CondBranches,        // Conditional branches.
  PhiCount,            // Phi nodes.
  PhiArgCount,         // Total phi incoming arcs.
  BBPhiCount03,        // Blocks with 1..3 phis.
  BBPhiCountGt3,       // Blocks with >3 phis.
  InstCountTotal,      // Total instructions.
  LoadCount,
  StoreCount,
  AllocaCount,
  GepCount,
  CallCount,
  RetCount,
  SelectCount,
  IntBinopCount,       // add/sub/mul/div/rem.
  BitBinopCount,       // and/or/xor/shifts.
  FloatBinopCount,     // fadd..fdiv.
  AddCount,
  SubCount,
  MulCount,
  DivRemCount,
  AndCount,
  OrCount,
  XorCount,
  ShlCount,
  ShrCount,            // lshr + ashr.
  ICmpCount,
  FCmpCount,
  CastCount,
  ZextCount,
  SextTruncCount,
  BinopConstOperand,   // Binary ops with a constant operand.
  BinopSameOperands,   // Binary ops with both operands identical.
  CallArgsCount,       // Total call args.
  CallsRetInt,         // Calls returning an integer.
  CallsRetVoid,        // Calls returning void.
  FunctionCount,
  GlobalCount,
  MemInstCount,        // load + store + alloca + gep.
  UncondBrDominated,   // Blocks whose single pred ends in an uncond br.
  OneUseInstCount,     // Instructions with exactly one use.
};
static_assert(OneUseInstCount == AutophaseDims - 1,
              "feature enum must cover exactly 56 dims");

const char *FeatureNames[AutophaseDims] = {
    "bb_count",         "bb_one_succ",      "bb_two_succ",
    "bb_one_pred",      "bb_two_pred",      "bb_more_preds",
    "bb_no_succ",       "bb_begin_phi",     "bb_phi_args_gt5",
    "bb_phi_args_1to5", "bb_inst_lt15",     "bb_inst_15to500",
    "bb_inst_gt500",    "cfg_edges",        "critical_edges",
    "branches",         "cond_branches",    "phi_count",
    "phi_arg_count",    "bb_phi_1to3",      "bb_phi_gt3",
    "inst_count",       "load_count",       "store_count",
    "alloca_count",     "gep_count",        "call_count",
    "ret_count",        "select_count",     "int_binop_count",
    "bit_binop_count",  "float_binop_count", "add_count",
    "sub_count",        "mul_count",        "divrem_count",
    "and_count",        "or_count",         "xor_count",
    "shl_count",        "shr_count",        "icmp_count",
    "fcmp_count",       "cast_count",       "zext_count",
    "sext_trunc_count", "binop_const_operand", "binop_same_operands",
    "call_args_count",  "calls_ret_int",    "calls_ret_void",
    "function_count",   "global_count",     "mem_inst_count",
    "uncond_br_dominated", "one_use_inst_count",
};

} // namespace

const char *analysis::autophaseFeatureName(int Dim) {
  if (Dim < 0 || Dim >= AutophaseDims)
    return "?";
  return FeatureNames[Dim];
}

std::vector<int64_t> analysis::autophaseFunction(const ir::Function &F) {
  std::vector<int64_t> V(AutophaseDims, 0);
  {
    auto UseCounts = F.computeUseCounts();
    // One adjacency pass: per-block predecessor lists (the naive per-block
    // predecessors() scan would make this extractor quadratic in blocks).
    std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Preds;
    for (const auto &BBPtr : F.blocks()) {
      std::unordered_set<BasicBlock *> Seen;
      for (BasicBlock *Succ : BBPtr->successors())
        if (Seen.insert(Succ).second)
          Preds[Succ].push_back(BBPtr.get());
    }
    for (const auto &BBPtr : F.blocks()) {
      const BasicBlock &BB = *BBPtr;
      ++V[BBCount];
      std::vector<BasicBlock *> Succs = BB.successors();
      const std::vector<BasicBlock *> &BlockPreds = Preds[&BB];
      if (Succs.size() == 1)
        ++V[BBOneSucc];
      else if (Succs.size() == 2)
        ++V[BBTwoSucc];
      else if (Succs.empty())
        ++V[BBNoSucc];
      if (BlockPreds.size() == 1) {
        ++V[BBOnePred];
        Instruction *PredTerm = BlockPreds[0]->terminator();
        if (PredTerm && PredTerm->opcode() == Opcode::Br)
          ++V[UncondBrDominated];
      } else if (BlockPreds.size() == 2) {
        ++V[BBTwoPred];
      } else if (BlockPreds.size() > 2) {
        ++V[BBMorePreds];
      }
      V[CfgEdges] += static_cast<int64_t>(Succs.size());
      if (Succs.size() > 1)
        for (BasicBlock *Succ : Succs)
          if (Preds[Succ].size() > 1)
            ++V[CriticalEdges];

      size_t NumPhis = BB.firstNonPhi();
      int64_t PhiArgs = 0;
      for (size_t I = 0; I < NumPhis; ++I)
        PhiArgs += BB.instructions()[I]->numIncoming();
      if (NumPhis > 0)
        ++V[BBBeginPhi];
      if (PhiArgs > 5)
        ++V[BBArgsPhiGt5];
      else if (PhiArgs >= 1)
        ++V[BBArgsPhi15];
      if (NumPhis >= 1 && NumPhis <= 3)
        ++V[BBPhiCount03];
      else if (NumPhis > 3)
        ++V[BBPhiCountGt3];
      if (BB.size() < 15)
        ++V[BBInstLt15];
      else if (BB.size() <= 500)
        ++V[BBInst15to500];
      else
        ++V[BBInstGt500];

      for (const auto &I : BB.instructions()) {
        ++V[InstCountTotal];
        if (UseCounts.count(I.get()) && UseCounts.at(I.get()) == 1)
          ++V[OneUseInstCount];
        switch (I->opcode()) {
        case Opcode::Br:
          ++V[Branches];
          break;
        case Opcode::CondBr:
          ++V[CondBranches];
          break;
        case Opcode::Phi:
          ++V[PhiCount];
          V[PhiArgCount] += I->numIncoming();
          break;
        case Opcode::Load:
          ++V[LoadCount];
          ++V[MemInstCount];
          break;
        case Opcode::Store:
          ++V[StoreCount];
          ++V[MemInstCount];
          break;
        case Opcode::Alloca:
          ++V[AllocaCount];
          ++V[MemInstCount];
          break;
        case Opcode::Gep:
          ++V[GepCount];
          ++V[MemInstCount];
          break;
        case Opcode::Call:
          ++V[CallCount];
          V[CallArgsCount] += I->numCallArgs();
          if (isIntegerType(I->type()))
            ++V[CallsRetInt];
          else if (I->type() == Type::Void)
            ++V[CallsRetVoid];
          break;
        case Opcode::Ret:
          ++V[RetCount];
          break;
        case Opcode::Select:
          ++V[SelectCount];
          break;
        case Opcode::Add:
          ++V[AddCount];
          break;
        case Opcode::Sub:
          ++V[SubCount];
          break;
        case Opcode::Mul:
          ++V[MulCount];
          break;
        case Opcode::SDiv:
        case Opcode::SRem:
          ++V[DivRemCount];
          break;
        case Opcode::And:
          ++V[AndCount];
          break;
        case Opcode::Or:
          ++V[OrCount];
          break;
        case Opcode::Xor:
          ++V[XorCount];
          break;
        case Opcode::Shl:
          ++V[ShlCount];
          break;
        case Opcode::LShr:
        case Opcode::AShr:
          ++V[ShrCount];
          break;
        case Opcode::ICmp:
          ++V[ICmpCount];
          break;
        case Opcode::FCmp:
          ++V[FCmpCount];
          break;
        case Opcode::ZExt:
          ++V[ZextCount];
          ++V[CastCount];
          break;
        case Opcode::SExt:
        case Opcode::Trunc:
          ++V[SextTruncCount];
          ++V[CastCount];
          break;
        case Opcode::SIToFP:
        case Opcode::FPToSI:
        case Opcode::PtrToInt:
        case Opcode::IntToPtr:
          ++V[CastCount];
          break;
        default:
          break;
        }
        if (I->isIntArith())
          ++V[IntBinopCount];
        else if (I->isBitwise())
          ++V[BitBinopCount];
        else if (I->isFloatArith())
          ++V[FloatBinopCount];
        if (I->isBinaryOp()) {
          if (isa<Constant>(I->operand(0)) || isa<Constant>(I->operand(1)))
            ++V[BinopConstOperand];
          if (I->operand(0) == I->operand(1))
            ++V[BinopSameOperands];
        }
      }
    }
  }
  return V;
}

void analysis::accumulateAutophase(std::vector<int64_t> &Agg,
                                   const std::vector<int64_t> &FV) {
  for (int D = 0; D < AutophaseDims; ++D) {
    if (D == FunctionCount || D == GlobalCount)
      continue; // Module-level; set by finalizeAutophase.
    Agg[D] += FV[D];
  }
}

void analysis::finalizeAutophase(std::vector<int64_t> &Agg, const Module &M) {
  Agg[FunctionCount] = static_cast<int64_t>(M.functions().size());
  Agg[GlobalCount] = static_cast<int64_t>(M.globals().size());
}

std::vector<int64_t> analysis::autophase(const Module &M) {
  std::vector<int64_t> V(AutophaseDims, 0);
  for (const auto &F : M.functions())
    accumulateAutophase(V, autophaseFunction(*F));
  finalizeAutophase(V, M);
  return V;
}
