//===- analysis/InstCount.h - 70-D counter features --------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The InstCount observation space: a 70-dimensional int64 vector of static
/// program counters, mirroring the paper's LLVM InstCount space (Table III
/// row 2). Layout:
///   [0]      total instructions
///   [1]      total basic blocks
///   [2]      total functions
///   [3..37]  static count per opcode (NumOpcodes = 35 opcodes)
///   [38..42] instruction results by type: i1, i32, i64, f64, ptr
///   [43]     CFG edges
///   [44]     function arguments
///   [45]     globals
///   [46]     constant operand references
///   [47]     total phi incoming arcs
///   [48]     total call arguments
///   [49]     maximum block size
///   [50..69] reserved (zero), keeping the 70-D contract
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ANALYSIS_INSTCOUNT_H
#define COMPILER_GYM_ANALYSIS_INSTCOUNT_H

#include "ir/Module.h"

#include <cstdint>
#include <vector>

namespace compiler_gym {
namespace analysis {

constexpr int InstCountDims = 70;

/// Computes the InstCount feature vector for \p M.
std::vector<int64_t> instCount(const ir::Module &M);

/// Per-function InstCount contribution. Module-level dims ([2] functions,
/// [45] globals) are left zero; dim [49] holds the function's own max
/// block size. Aggregate with accumulateInstCount + finalizeInstCount.
std::vector<int64_t> instCountFunction(const ir::Function &F);

/// Folds one per-function contribution (from instCountFunction) into
/// \p Agg: dim 49 (max block size) aggregates with max, module-level dims
/// (2: functions, 45: globals) are skipped, everything else sums.
void accumulateInstCount(std::vector<int64_t> &Agg,
                         const std::vector<int64_t> &FV);

/// Fills the module-level dims of \p Agg from \p M (function and global
/// counts). Call once after accumulating every function.
void finalizeInstCount(std::vector<int64_t> &Agg, const ir::Module &M);

} // namespace analysis
} // namespace compiler_gym

#endif // COMPILER_GYM_ANALYSIS_INSTCOUNT_H
