//===- analysis/InstCount.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/InstCount.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::analysis;
using namespace compiler_gym::ir;

std::vector<int64_t> analysis::instCountFunction(const Function &F) {
  std::vector<int64_t> V(InstCountDims, 0);
  V[44] += static_cast<int64_t>(F.numArgs());
  for (const auto &BB : F.blocks()) {
    ++V[1];
    V[49] = std::max<int64_t>(V[49], static_cast<int64_t>(BB->size()));
    V[43] += static_cast<int64_t>(BB->successors().size());
    for (const auto &I : BB->instructions()) {
      ++V[0];
      ++V[3 + static_cast<int>(I->opcode())];
      switch (I->type()) {
      case Type::I1:
        ++V[38];
        break;
      case Type::I32:
        ++V[39];
        break;
      case Type::I64:
        ++V[40];
        break;
      case Type::F64:
        ++V[41];
        break;
      case Type::Ptr:
        ++V[42];
        break;
      default:
        break;
      }
      for (const Value *Op : I->operands())
        if (isa<Constant>(Op))
          ++V[46];
      if (I->opcode() == Opcode::Phi)
        V[47] += I->numIncoming();
      if (I->opcode() == Opcode::Call)
        V[48] += I->numCallArgs();
    }
  }
  return V;
}

void analysis::accumulateInstCount(std::vector<int64_t> &Agg,
                                   const std::vector<int64_t> &FV) {
  for (int D = 0; D < InstCountDims; ++D) {
    if (D == 2 || D == 45)
      continue; // Module-level; set by finalizeInstCount.
    if (D == 49)
      Agg[D] = std::max(Agg[D], FV[D]);
    else
      Agg[D] += FV[D];
  }
}

void analysis::finalizeInstCount(std::vector<int64_t> &Agg, const Module &M) {
  Agg[2] = static_cast<int64_t>(M.functions().size());
  Agg[45] = static_cast<int64_t>(M.globals().size());
}

std::vector<int64_t> analysis::instCount(const Module &M) {
  std::vector<int64_t> V(InstCountDims, 0);
  for (const auto &F : M.functions())
    accumulateInstCount(V, instCountFunction(*F));
  finalizeInstCount(V, M);
  return V;
}
