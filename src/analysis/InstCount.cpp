//===- analysis/InstCount.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/InstCount.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::analysis;
using namespace compiler_gym::ir;

std::vector<int64_t> analysis::instCount(const Module &M) {
  std::vector<int64_t> V(InstCountDims, 0);
  V[2] = static_cast<int64_t>(M.functions().size());
  V[45] = static_cast<int64_t>(M.globals().size());

  for (const auto &F : M.functions()) {
    V[44] += static_cast<int64_t>(F->numArgs());
    for (const auto &BB : F->blocks()) {
      ++V[1];
      V[49] = std::max<int64_t>(V[49], static_cast<int64_t>(BB->size()));
      V[43] += static_cast<int64_t>(BB->successors().size());
      for (const auto &I : BB->instructions()) {
        ++V[0];
        ++V[3 + static_cast<int>(I->opcode())];
        switch (I->type()) {
        case Type::I1:
          ++V[38];
          break;
        case Type::I32:
          ++V[39];
          break;
        case Type::I64:
          ++V[40];
          break;
        case Type::F64:
          ++V[41];
          break;
        case Type::Ptr:
          ++V[42];
          break;
        default:
          break;
        }
        for (const Value *Op : I->operands())
          if (isa<Constant>(Op))
            ++V[46];
        if (I->opcode() == Opcode::Phi)
          V[47] += I->numIncoming();
        if (I->opcode() == Opcode::Call)
          V[48] += I->numCallArgs();
      }
    }
  }
  return V;
}
