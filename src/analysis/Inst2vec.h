//===- analysis/Inst2vec.h - Sequential embedding space ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inst2vec observation space: one 200-dimensional float vector per
/// instruction (Ben-Nun et al., NeurIPS'18). The original uses pretrained
/// skip-gram embeddings over an LLVM IR vocabulary; we reproduce the space
/// shape and cost profile with deterministic hash-seeded embeddings over a
/// canonicalized statement vocabulary (opcode + operand kinds + types).
/// Like the paper's (Table III), this is one of the two expensive
/// observation spaces: cost scales with program length x embedding width.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ANALYSIS_INST2VEC_H
#define COMPILER_GYM_ANALYSIS_INST2VEC_H

#include "ir/Module.h"

#include <vector>

namespace compiler_gym {
namespace analysis {

constexpr int Inst2vecDims = 200;

/// Row-major (#instructions x 200) embedding matrix for \p M.
std::vector<float> inst2vec(const ir::Module &M);

/// \p F's rows of the embedding matrix (instructions in block order).
/// Concatenating per-function segments in module function order is
/// bit-identical to inst2vec(M) — the decomposition analysis::FeatureCache
/// exploits to recompute only dirtied functions.
std::vector<float> inst2vecFunction(const ir::Function &F);

/// The canonicalized statement string an instruction embeds as (the
/// "vocabulary key"); exposed for tests and the explorer.
std::string inst2vecStatement(const ir::Instruction &I);

} // namespace analysis
} // namespace compiler_gym

#endif // COMPILER_GYM_ANALYSIS_INST2VEC_H
