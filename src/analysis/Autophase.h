//===- analysis/Autophase.h - 56-D structural features ----------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Autophase observation space: a 56-dimensional int64 vector of
/// structural program features, following Haj-Ali et al. (MLSys'20) as
/// shipped in CompilerGym (Table III row 3). Unlike InstCount's flat
/// opcode histogram, Autophase encodes CFG shape (edge/predecessor
/// structure, phi density, critical edges), which is why the paper's Fig 9
/// finds it the stronger representation for RL.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_ANALYSIS_AUTOPHASE_H
#define COMPILER_GYM_ANALYSIS_AUTOPHASE_H

#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace compiler_gym {
namespace analysis {

constexpr int AutophaseDims = 56;

/// Computes the Autophase feature vector for \p M.
std::vector<int64_t> autophase(const ir::Module &M);

/// Per-function Autophase contribution. Module-level dims (function and
/// global counts) are left zero. Aggregate with accumulateAutophase +
/// finalizeAutophase.
std::vector<int64_t> autophaseFunction(const ir::Function &F);

/// Folds one per-function contribution (from autophaseFunction) into
/// \p Agg: module-level dims (function/global counts) are skipped,
/// everything else sums.
void accumulateAutophase(std::vector<int64_t> &Agg,
                         const std::vector<int64_t> &FV);

/// Fills the module-level dims of \p Agg from \p M. Call once after
/// accumulating every function.
void finalizeAutophase(std::vector<int64_t> &Agg, const ir::Module &M);

/// Human-readable name of feature \p Dim (for the explorer tools).
const char *autophaseFeatureName(int Dim);

} // namespace analysis
} // namespace compiler_gym

#endif // COMPILER_GYM_ANALYSIS_AUTOPHASE_H
