//===- analysis/FeatureCache.cpp ------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/FeatureCache.h"

#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::analysis;
using namespace compiler_gym::ir;

bool FeatureCache::refresh(const Module &M, bool WantInstCount) {
  bool ChangedSet = false;

  // Reconcile the entry map with the module's current function set: new
  // functions get dirty entries, entries for erased functions are dropped
  // (pointer identity only — never dereferenced). This keeps the cache
  // correct even if a transform forgot an explicit erasure notification.
  std::unordered_set<const Function *> Current;
  Current.reserve(M.functions().size());
  for (const auto &F : M.functions()) {
    Current.insert(F.get());
    if (Funcs.try_emplace(F.get()).second)
      ChangedSet = true;
  }
  if (Funcs.size() != Current.size()) {
    for (auto It = Funcs.begin(); It != Funcs.end();) {
      if (!Current.count(It->first)) {
        It = Funcs.erase(It);
        ChangedSet = true;
      } else {
        ++It;
      }
    }
  }

  bool Recomputed = false;
  for (const auto &F : M.functions()) {
    PerFunction &Entry = Funcs.at(F.get());
    if (WantInstCount && !Entry.InstCountValid) {
      Entry.InstCount = instCountFunction(*F);
      Entry.InstCountValid = true;
      ++FunctionRecomputes;
      Recomputed = true;
    } else if (!WantInstCount && !Entry.AutophaseValid) {
      Entry.Autophase = autophaseFunction(*F);
      Entry.AutophaseValid = true;
      ++FunctionRecomputes;
      Recomputed = true;
    }
  }
  return ChangedSet || Recomputed;
}

const std::vector<int64_t> &FeatureCache::instCount(const Module &M) {
  ++Requests;
  // O(1) fast path: nothing invalidated since the last aggregation and the
  // function set has not changed size. (Every notification path —
  // invalidateFunction, functionErased, invalidateAll — clears the flag,
  // so a stale hit would require an unnotified same-size function swap,
  // which the preservation verifier rejects in checked builds.)
  if (InstCountAggValid && Funcs.size() == M.functions().size())
    return InstCountAgg;
  if (refresh(M, /*WantInstCount=*/true) || !InstCountAggValid) {
    InstCountAgg.assign(InstCountDims, 0);
    for (const auto &F : M.functions())
      accumulateInstCount(InstCountAgg, Funcs.at(F.get()).InstCount);
    finalizeInstCount(InstCountAgg, M);
    InstCountAggValid = true;
    ++Aggregations;
  }
  return InstCountAgg;
}

const std::vector<int64_t> &FeatureCache::autophase(const Module &M) {
  ++Requests;
  if (AutophaseAggValid && Funcs.size() == M.functions().size())
    return AutophaseAgg;
  if (refresh(M, /*WantInstCount=*/false) || !AutophaseAggValid) {
    AutophaseAgg.assign(AutophaseDims, 0);
    for (const auto &F : M.functions())
      accumulateAutophase(AutophaseAgg, Funcs.at(F.get()).Autophase);
    finalizeAutophase(AutophaseAgg, M);
    AutophaseAggValid = true;
    ++Aggregations;
  }
  return AutophaseAgg;
}

const std::vector<int64_t> *
FeatureCache::cachedInstCount(const Function *F) const {
  auto It = Funcs.find(F);
  return It != Funcs.end() && It->second.InstCountValid ? &It->second.InstCount
                                                        : nullptr;
}

const std::vector<int64_t> *
FeatureCache::cachedAutophase(const Function *F) const {
  auto It = Funcs.find(F);
  return It != Funcs.end() && It->second.AutophaseValid ? &It->second.Autophase
                                                        : nullptr;
}

void FeatureCache::invalidateFunction(const Function *F) {
  auto It = Funcs.find(F);
  if (It != Funcs.end()) {
    It->second.InstCountValid = false;
    It->second.AutophaseValid = false;
  }
  InstCountAggValid = false;
  AutophaseAggValid = false;
}

void FeatureCache::functionErased(const Function *F) {
  Funcs.erase(F);
  InstCountAggValid = false;
  AutophaseAggValid = false;
}

void FeatureCache::invalidateAll() {
  for (auto &[F, Entry] : Funcs) {
    Entry.InstCountValid = false;
    Entry.AutophaseValid = false;
  }
  InstCountAggValid = false;
  AutophaseAggValid = false;
}
