//===- analysis/FeatureCache.cpp ------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/FeatureCache.h"

#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"

#include <algorithm>
#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::analysis;
using namespace compiler_gym::ir;

namespace {

/// Process-wide mirrors of the per-cache counters (requests() etc. stay as
/// the per-instance views).
telemetry::Counter &featureRequestsTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_feature_requests_total", {}, "Module-level feature requests");
  return C;
}

telemetry::Counter &featureRecomputesTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_feature_recomputes_total", {},
      "Per-function feature segment recomputations");
  return C;
}

telemetry::Counter &featureAggregationsTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_feature_aggregations_total", {},
      "Module-level feature aggregate rebuilds");
  return C;
}

telemetry::Counter &featureInvalidations(bool ModuleScope) {
  static telemetry::MetricsRegistry &M = telemetry::MetricsRegistry::global();
  static const char *Help = "Feature cache invalidation notifications";
  static telemetry::Counter &Function = M.counter(
      "cg_feature_invalidations_total", {{"scope", "function"}}, Help);
  static telemetry::Counter &Module = M.counter(
      "cg_feature_invalidations_total", {{"scope", "module"}}, Help);
  return ModuleScope ? Module : Function;
}

} // namespace

bool FeatureCache::refresh(const Module &M, Kind K) {
  bool ChangedSet = false;

  // Reconcile the entry map with the module's current function set: new
  // functions get dirty entries, entries for erased functions are dropped
  // (pointer identity only — never dereferenced). This keeps the cache
  // correct even if a transform forgot an explicit erasure notification.
  std::unordered_set<const Function *> Current;
  Current.reserve(M.functions().size());
  for (const auto &F : M.functions()) {
    Current.insert(F.get());
    if (Funcs.try_emplace(F.get()).second)
      ChangedSet = true;
  }
  if (Funcs.size() != Current.size()) {
    for (auto It = Funcs.begin(); It != Funcs.end();) {
      if (!Current.count(It->first)) {
        It = Funcs.erase(It);
        ChangedSet = true;
      } else {
        ++It;
      }
    }
  }

  bool Recomputed = false;
  for (const auto &F : M.functions()) {
    PerFunction &Entry = Funcs.at(F.get());
    bool Fresh = false;
    switch (K) {
    case Kind::InstCount:
      if (!Entry.InstCountValid) {
        Entry.InstCount = instCountFunction(*F);
        Entry.InstCountValid = Fresh = true;
      }
      break;
    case Kind::Autophase:
      if (!Entry.AutophaseValid) {
        Entry.Autophase = autophaseFunction(*F);
        Entry.AutophaseValid = Fresh = true;
      }
      break;
    case Kind::Inst2vec:
      if (!Entry.Inst2vecValid) {
        Entry.Inst2vec = inst2vecFunction(*F);
        Entry.Inst2vecValid = Fresh = true;
      }
      break;
    case Kind::Programl:
      // A clean fragment can still hold a symbolic reference to a
      // function or global that has since been erased (the erasing
      // transform should have dirtied the referencing function;
      // self-heal if it did not). Constants need no check — the module
      // pools only ever grow.
      if (Entry.GraphValid) {
        for (const std::string &Callee : Entry.Graph.Callees)
          if (!M.findFunction(Callee)) {
            Entry.GraphValid = false;
            break;
          }
        if (Entry.GraphValid && !Entry.Graph.Globals.empty()) {
          std::unordered_set<const GlobalVariable *> Globals;
          Globals.reserve(M.globals().size());
          for (const auto &G : M.globals())
            Globals.insert(G.get());
          for (const GlobalVariable *G : Entry.Graph.Globals)
            if (!Globals.count(G)) {
              Entry.GraphValid = false;
              break;
            }
        }
      }
      if (!Entry.GraphValid) {
        Entry.Graph = buildGraphFragment(*F);
        Entry.GraphValid = Fresh = true;
      }
      break;
    }
    if (Fresh) {
      ++FunctionRecomputes;
      featureRecomputesTotal().inc();
      Recomputed = true;
    }
  }
  return ChangedSet || Recomputed;
}

const std::vector<int64_t> &FeatureCache::instCount(const Module &M) {
  CG_TRACE_SPAN("feature:InstCount", "analysis");
  ++Requests;
  featureRequestsTotal().inc();
  // O(1) fast path: nothing invalidated since the last aggregation and the
  // function set has not changed size. (Every notification path —
  // invalidateFunction, functionErased, invalidateAll — clears the flag,
  // so a stale hit would require an unnotified same-size function swap,
  // which the preservation verifier rejects in checked builds.)
  if (InstCountAggValid && Funcs.size() == M.functions().size())
    return InstCountAgg;
  if (refresh(M, Kind::InstCount) || !InstCountAggValid) {
    InstCountAgg.assign(InstCountDims, 0);
    for (const auto &F : M.functions())
      accumulateInstCount(InstCountAgg, Funcs.at(F.get()).InstCount);
    finalizeInstCount(InstCountAgg, M);
    InstCountAggValid = true;
    ++Aggregations;
    featureAggregationsTotal().inc();
  }
  return InstCountAgg;
}

const std::vector<int64_t> &FeatureCache::autophase(const Module &M) {
  CG_TRACE_SPAN("feature:Autophase", "analysis");
  ++Requests;
  featureRequestsTotal().inc();
  if (AutophaseAggValid && Funcs.size() == M.functions().size())
    return AutophaseAgg;
  if (refresh(M, Kind::Autophase) || !AutophaseAggValid) {
    AutophaseAgg.assign(AutophaseDims, 0);
    for (const auto &F : M.functions())
      accumulateAutophase(AutophaseAgg, Funcs.at(F.get()).Autophase);
    finalizeAutophase(AutophaseAgg, M);
    AutophaseAggValid = true;
    ++Aggregations;
    featureAggregationsTotal().inc();
  }
  return AutophaseAgg;
}

const std::vector<float> &FeatureCache::inst2vec(const Module &M) {
  CG_TRACE_SPAN("feature:Inst2vec", "analysis");
  ++Requests;
  featureRequestsTotal().inc();
  if (Inst2vecAggValid && Funcs.size() == M.functions().size())
    return Inst2vecAgg;

  // Snapshot which functions are dirty *before* refresh recomputes their
  // segments: these are the aggregate windows that need patching.
  std::unordered_set<const Function *> DirtyFns;
  for (const auto &F : M.functions()) {
    auto It = Funcs.find(F.get());
    if (It == Funcs.end() || !It->second.Inst2vecValid)
      DirtyFns.insert(F.get());
  }

  if (!refresh(M, Kind::Inst2vec) && Inst2vecAggValid)
    return Inst2vecAgg;

  // In-place splice: valid whenever the previous aggregate covered the
  // same function sequence (every invalidation path only clears flags, so
  // Inst2vecAgg still holds the last layout's content verbatim). Clean
  // segments stay untouched; each dirty window is memcpy'd (same length)
  // or spliced (length change shifts the tail once). A fully-dirty module
  // gains nothing from patching, so it takes the rebuild path.
  size_t N = M.functions().size();
  bool CanSplice = Inst2vecOrder.size() == N && !DirtyFns.empty() &&
                   DirtyFns.size() < N;
  for (size_t I = 0; CanSplice && I < N; ++I)
    CanSplice = Inst2vecOrder[I] == M.functions()[I].get();

  if (CanSplice) {
    ptrdiff_t Shift = 0;
    for (size_t I = 0; I < N; ++I) {
      const Function *F = Inst2vecOrder[I];
      size_t Start = Inst2vecOffsets[I] + Shift;
      if (!DirtyFns.count(F)) {
        Inst2vecOffsets[I] = Start;
        continue;
      }
      // Offsets[I+1] is still the pre-splice layout, so it needs the
      // running Shift; the vector's current size already includes it.
      size_t OldEnd =
          I + 1 < N ? Inst2vecOffsets[I + 1] + Shift : Inst2vecAgg.size();
      const std::vector<float> &Seg = Funcs.at(F).Inst2vec;
      size_t OldLen = OldEnd - Start;
      if (Seg.size() == OldLen) {
        std::copy(Seg.begin(), Seg.end(), Inst2vecAgg.begin() + Start);
      } else if (Seg.size() < OldLen) {
        std::copy(Seg.begin(), Seg.end(), Inst2vecAgg.begin() + Start);
        Inst2vecAgg.erase(Inst2vecAgg.begin() + Start + Seg.size(),
                          Inst2vecAgg.begin() + OldEnd);
      } else {
        std::copy(Seg.begin(), Seg.begin() + OldLen,
                  Inst2vecAgg.begin() + Start);
        Inst2vecAgg.insert(Inst2vecAgg.begin() + OldEnd,
                           Seg.begin() + OldLen, Seg.end());
      }
      Inst2vecOffsets[I] = Start;
      Shift += static_cast<ptrdiff_t>(Seg.size()) -
               static_cast<ptrdiff_t>(OldLen);
    }
  } else {
    size_t Total = 0;
    for (const auto &F : M.functions())
      Total += Funcs.at(F.get()).Inst2vec.size();
    Inst2vecAgg.clear();
    Inst2vecAgg.reserve(Total);
    Inst2vecOrder.resize(N);
    Inst2vecOffsets.resize(N);
    for (size_t I = 0; I < N; ++I) {
      const std::vector<float> &Seg = Funcs.at(M.functions()[I].get()).Inst2vec;
      Inst2vecOrder[I] = M.functions()[I].get();
      Inst2vecOffsets[I] = Inst2vecAgg.size();
      Inst2vecAgg.insert(Inst2vecAgg.end(), Seg.begin(), Seg.end());
    }
  }
  Inst2vecAggValid = true;
  ++Aggregations;
  featureAggregationsTotal().inc();
  return Inst2vecAgg;
}

const std::string &FeatureCache::programl(const Module &M) {
  CG_TRACE_SPAN("feature:Programl", "analysis");
  ++Requests;
  featureRequestsTotal().inc();
  if (ProgramlAggValid && Funcs.size() == M.functions().size())
    return ProgramlAgg;
  if (refresh(M, Kind::Programl) || !ProgramlAggValid) {
    std::vector<const GraphFragment *> Frags;
    Frags.reserve(M.functions().size());
    for (const auto &F : M.functions())
      Frags.push_back(&Funcs.at(F.get()).Graph);
    ProgramlAgg = assembleGraphFragments(M, Frags);
    ProgramlAggValid = true;
    ++Aggregations;
    featureAggregationsTotal().inc();
  }
  return ProgramlAgg;
}

const std::vector<int64_t> *
FeatureCache::cachedInstCount(const Function *F) const {
  auto It = Funcs.find(F);
  return It != Funcs.end() && It->second.InstCountValid ? &It->second.InstCount
                                                        : nullptr;
}

const std::vector<int64_t> *
FeatureCache::cachedAutophase(const Function *F) const {
  auto It = Funcs.find(F);
  return It != Funcs.end() && It->second.AutophaseValid ? &It->second.Autophase
                                                        : nullptr;
}

const std::vector<float> *
FeatureCache::cachedInst2vec(const Function *F) const {
  auto It = Funcs.find(F);
  return It != Funcs.end() && It->second.Inst2vecValid ? &It->second.Inst2vec
                                                       : nullptr;
}

const GraphFragment *
FeatureCache::cachedGraphFragment(const Function *F) const {
  auto It = Funcs.find(F);
  return It != Funcs.end() && It->second.GraphValid ? &It->second.Graph
                                                    : nullptr;
}

void FeatureCache::invalidateFunction(const Function *F, unsigned Mask) {
  featureInvalidations(false).inc();
  auto It = Funcs.find(F);
  if (It != Funcs.end()) {
    if (Mask & FS_Counts) {
      It->second.InstCountValid = false;
      It->second.AutophaseValid = false;
    }
    if (Mask & FS_Layout) {
      It->second.Inst2vecValid = false;
      It->second.GraphValid = false;
    }
  }
  if (Mask & FS_Counts) {
    InstCountAggValid = false;
    AutophaseAggValid = false;
  }
  if (Mask & FS_Layout) {
    Inst2vecAggValid = false;
    ProgramlAggValid = false;
  }
}

void FeatureCache::functionReplaced(const Function *From, const Function *To) {
  auto It = Funcs.find(From);
  if (It != Funcs.end()) {
    PerFunction E = std::move(It->second);
    Funcs.erase(It);
    Funcs[To] = std::move(E); // Overwrites a stale entry if the address
                              // was reused by a previous function's copy.
  }
  // Keep the splice layout pointing at the live payload so the in-place
  // Inst2vec patch path still recognizes an unchanged function sequence.
  for (auto &F : Inst2vecOrder)
    if (F == From)
      F = To;
}

void FeatureCache::functionErased(const Function *F) {
  Funcs.erase(F);
  InstCountAggValid = false;
  AutophaseAggValid = false;
  Inst2vecAggValid = false;
  ProgramlAggValid = false;
}

void FeatureCache::invalidateAll(unsigned Mask) {
  featureInvalidations(true).inc();
  for (auto &[F, Entry] : Funcs) {
    if (Mask & FS_Counts) {
      Entry.InstCountValid = false;
      Entry.AutophaseValid = false;
    }
    if (Mask & FS_Layout) {
      Entry.Inst2vecValid = false;
      Entry.GraphValid = false;
    }
  }
  if (Mask & FS_Counts) {
    InstCountAggValid = false;
    AutophaseAggValid = false;
  }
  if (Mask & FS_Layout) {
    Inst2vecAggValid = false;
    ProgramlAggValid = false;
  }
}
