//===- fault/ChaosTransport.h - Registry-driven flaky transport -*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FlakyTransport generalized onto the fault registry: instead of a fixed
/// per-transport probability table, ChaosTransport consults the named
/// fault points "transport.round_trip" (request direction) and
/// "transport.reply" (response direction) on every call, so one seeded
/// FaultPlanSpec can coordinate network faults with service / gateway /
/// snapshot faults in a single deterministic schedule.
///
/// Kind mapping at the request point:
///   Error   — returned as-is (e.g. Unavailable = connection reset,
///             DeadlineExceeded = reply dropped on the floor).
///   Delay   — added latency (executed by the registry; cancellation-aware
///             when the rule allows).
///   Crash   — mapped to Unavailable ("peer vanished mid-call").
///   Corrupt — the *reply* bytes are corrupted (flipped byte, or truncation
///             when the reply is a single byte), exercising the client's
///             garbled-reply retry path.
///
/// FlakyTransport itself is left untouched — its seeded draw streams are
/// load-bearing for existing tests — and composes with this wrapper.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_FAULT_CHAOSTRANSPORT_H
#define COMPILER_GYM_FAULT_CHAOSTRANSPORT_H

#include "service/Transport.h"

#include <memory>

namespace compiler_gym {
namespace fault {

/// Transport wrapper whose faults come from the global FaultRegistry.
/// Pass-through (one relaxed load of overhead) when no plan is armed.
class ChaosTransport : public service::Transport {
public:
  explicit ChaosTransport(std::shared_ptr<service::Transport> Inner)
      : Inner(std::move(Inner)) {}

  StatusOr<std::string> roundTrip(const std::string &RequestBytes,
                                  int TimeoutMs) override;

private:
  std::shared_ptr<service::Transport> Inner;
};

} // namespace fault
} // namespace compiler_gym

#endif // COMPILER_GYM_FAULT_CHAOSTRANSPORT_H
