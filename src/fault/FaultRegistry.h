//===- fault/FaultRegistry.h - Deterministic fault injection ----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named fault points for deterministic chaos
/// testing. Production code marks interesting failure sites with
///
///   auto F = CG_FAULT_POINT("service.apply_actions", Token);
///   if (F.isError()) return F.Error;
///
/// and pays a single relaxed atomic load when no plan is installed (the
/// macro compiles to a no-op branch). Tests install a seeded FaultPlanSpec
/// whose rules inject crash / delay / error / corrupt actions at chosen
/// points; the same seed always yields the same fault schedule, so a chaos
/// soak that fails is replayable bit-for-bit.
///
/// Draw stability (the PR 8 FlakyTransport guarantee, generalized): each
/// rule owns an independent RNG stream seeded from (plan seed, rule index),
/// and rules whose probability is degenerate (<= 0 or >= 1) consume no
/// draws at all. Adding, disabling, or re-ordering unrelated rules can
/// therefore never shift the fault schedule of the rules you kept —
/// the property that makes seeded chaos plans composable.
///
/// Known fault points (see docs/robustness.md for the catalogue):
///   service.handle        — before dispatch in CompilerService::handleLocked
///   service.apply_actions — per action inside the Step loop
///   passes.run            — before each pass in PassManager::run
///   snapshot.restore      — in LlvmSession::restore before the store lookup
///   gateway.backend_call  — around the gateway's shard round-trip
///   transport.round_trip  — in fault::ChaosTransport around any Transport
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_FAULT_FAULTREGISTRY_H
#define COMPILER_GYM_FAULT_FAULTREGISTRY_H

#include "util/CancelToken.h"
#include "util/Rng.h"
#include "util/Status.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace compiler_gym {
namespace fault {

/// What an armed rule does when it fires.
enum class FaultKind {
  Crash,   ///< Simulate a backend crash (site marks the service crashed).
  Delay,   ///< Sleep DelayMs at the point (cancellation-aware by default).
  Error,   ///< Return a typed Status (Code/Message) from the point.
  Corrupt, ///< Site-specific data corruption (e.g. flip a reply byte).
};

const char *faultKindName(FaultKind K);

/// One injection rule bound to a named fault point.
struct FaultRule {
  std::string Point;                  ///< Fault-point name this rule arms.
  FaultKind Kind = FaultKind::Error;  ///< Action on fire.
  /// Fire probability per eligible hit. Degenerate values consume no RNG
  /// draws: <= 0 never fires (a disabled rule), >= 1 always fires.
  double Probability = 1.0;
  uint64_t AfterHits = 0; ///< Skip this many hits before becoming eligible.
  uint64_t MaxFires = 0;  ///< Stop after this many fires (0 = unlimited).
  int DelayMs = 0;        ///< Delay faults: how long to stall.
  /// Delay faults: poll the site's cancel token while stalling (default).
  /// false simulates a wedge — a non-cooperative stall only the broker
  /// watchdog can clear.
  bool CancelAware = true;
  StatusCode Code = StatusCode::Unavailable; ///< Error faults: status code.
  std::string Message;                       ///< Error faults: message.
};

/// A complete seeded chaos plan. Same spec => same fault schedule.
struct FaultPlanSpec {
  uint64_t Seed = 0x5EED;
  std::vector<FaultRule> Rules;
};

/// The outcome of evaluating a fault point. Delay faults are executed by
/// the registry itself (cancellation-aware when the rule allows and the
/// site passed a token); Crash/Error/Corrupt are returned for the site to
/// interpret.
struct FaultAction {
  bool Fired = false;
  FaultKind Kind = FaultKind::Error;
  Status Error; ///< Populated for Error faults.

  explicit operator bool() const { return Fired; }
  bool isCrash() const { return Fired && Kind == FaultKind::Crash; }
  bool isError() const { return Fired && Kind == FaultKind::Error; }
  bool isCorrupt() const { return Fired && Kind == FaultKind::Corrupt; }
};

/// Process-wide fault-point registry. Thread-safe; the disarmed fast path
/// is a single relaxed atomic load.
class FaultRegistry {
public:
  static FaultRegistry &global();

  /// Installs \p Plan, replacing any previous plan and resetting all hit /
  /// fire counters. Rules' RNG streams are seeded from (Plan.Seed, index).
  void install(const FaultPlanSpec &Plan);

  /// Removes the installed plan; every fault point returns to the no-op
  /// fast path.
  void clear();

  /// True when a plan with at least one rule is installed.
  bool armed() const { return Armed.load(std::memory_order_acquire); }

  /// Evaluates the named point. Counts the hit, fires at most one rule
  /// (first armed rule wins, in plan order), executes Delay faults in
  /// place, and returns the action for the site to interpret. \p Cancel
  /// may be null.
  FaultAction evaluate(const char *Point, const util::CancelToken *Cancel);

  /// Times a named point was reached while a plan was armed.
  uint64_t hits(const std::string &Point) const;
  /// Times any rule fired at the named point.
  uint64_t fires(const std::string &Point) const;
  /// Total fires across all points (chaos-soak "every failure was typed"
  /// accounting).
  uint64_t totalFires() const;

private:
  struct RuleState {
    FaultRule Rule;
    Rng Draws{0};
    uint64_t Hits = 0;
    uint64_t Fires = 0;
  };

  mutable std::mutex M;
  std::atomic<bool> Armed{false};
  std::unordered_map<std::string, std::vector<size_t>> ByPoint;
  std::vector<RuleState> Rules;
  std::unordered_map<std::string, uint64_t> PointHits;
  std::unordered_map<std::string, uint64_t> PointFires;
};

/// Fault-point entry helper: no-op branch (one relaxed load) when no plan
/// is installed.
inline FaultAction faultPoint(const char *Point,
                              const util::CancelToken *Cancel = nullptr) {
  FaultRegistry &R = FaultRegistry::global();
  if (!R.armed())
    return {};
  return R.evaluate(Point, Cancel);
}

/// Canonical spelling for marking a fault point in production code.
#define CG_FAULT_POINT(PointName, CancelTok)                                   \
  (::compiler_gym::fault::faultPoint((PointName), (CancelTok)))

} // namespace fault
} // namespace compiler_gym

#endif // COMPILER_GYM_FAULT_FAULTREGISTRY_H
