//===- fault/ChaosTransport.cpp - Registry-driven flaky transport ---------===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fault/ChaosTransport.h"

#include "fault/FaultRegistry.h"

namespace compiler_gym {
namespace fault {

StatusOr<std::string>
ChaosTransport::roundTrip(const std::string &RequestBytes, int TimeoutMs) {
  FaultAction Req = CG_FAULT_POINT("transport.round_trip", nullptr);
  if (Req.isError())
    return Req.Error;
  if (Req.isCrash())
    return unavailable("injected transport disconnect");

  StatusOr<std::string> Reply = Inner->roundTrip(RequestBytes, TimeoutMs);
  if (!Reply.isOk())
    return Reply;

  FaultAction Resp = CG_FAULT_POINT("transport.reply", nullptr);
  if (Resp.isError())
    return Resp.Error;
  if (Resp.isCrash())
    return unavailable("injected transport disconnect (reply)");
  if (Req.isCorrupt() || Resp.isCorrupt()) {
    std::string Garbled = std::move(*Reply);
    if (Garbled.size() > 1)
      Garbled[Garbled.size() / 2] ^= 0x5A;
    else
      Garbled.clear();
    return Garbled;
  }
  return Reply;
}

} // namespace fault
} // namespace compiler_gym
