//===- fault/FaultRegistry.cpp - Deterministic fault injection ------------===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fault/FaultRegistry.h"

#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"

namespace compiler_gym {
namespace fault {

namespace {

telemetry::Counter &injectedTotal(FaultKind K) {
  // One series per kind; handles cached so the hot path never touches the
  // registry mutex.
  static telemetry::Counter &Crash = telemetry::MetricsRegistry::global().counter(
      "cg_fault_injected_total", {{"kind", "crash"}},
      "Faults fired by the chaos registry");
  static telemetry::Counter &Delay = telemetry::MetricsRegistry::global().counter(
      "cg_fault_injected_total", {{"kind", "delay"}},
      "Faults fired by the chaos registry");
  static telemetry::Counter &Error = telemetry::MetricsRegistry::global().counter(
      "cg_fault_injected_total", {{"kind", "error"}},
      "Faults fired by the chaos registry");
  static telemetry::Counter &Corrupt =
      telemetry::MetricsRegistry::global().counter(
          "cg_fault_injected_total", {{"kind", "corrupt"}},
          "Faults fired by the chaos registry");
  switch (K) {
  case FaultKind::Crash:
    return Crash;
  case FaultKind::Delay:
    return Delay;
  case FaultKind::Error:
    return Error;
  case FaultKind::Corrupt:
    return Corrupt;
  }
  return Error;
}

/// Mixes the plan seed with the rule index so each rule owns an
/// independent stream: re-seeding one rule can never perturb another.
uint64_t ruleSeed(uint64_t PlanSeed, size_t Index) {
  return PlanSeed ^ (0x9E3779B97F4A7C15ull * (Index + 1));
}

} // namespace

const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Crash:
    return "crash";
  case FaultKind::Delay:
    return "delay";
  case FaultKind::Error:
    return "error";
  case FaultKind::Corrupt:
    return "corrupt";
  }
  return "unknown";
}

FaultRegistry &FaultRegistry::global() {
  static FaultRegistry *R = new FaultRegistry();
  return *R;
}

void FaultRegistry::install(const FaultPlanSpec &Plan) {
  // Pre-register the per-kind fire counters (PR 6 convention): a scrape
  // taken before the first fault fires still shows the zero-valued series.
  for (FaultKind K : {FaultKind::Crash, FaultKind::Delay, FaultKind::Error,
                      FaultKind::Corrupt})
    (void)injectedTotal(K);

  std::lock_guard<std::mutex> Lock(M);
  Rules.clear();
  ByPoint.clear();
  PointHits.clear();
  PointFires.clear();
  Rules.reserve(Plan.Rules.size());
  for (size_t I = 0; I < Plan.Rules.size(); ++I) {
    RuleState S;
    S.Rule = Plan.Rules[I];
    S.Draws.reseed(ruleSeed(Plan.Seed, I));
    ByPoint[S.Rule.Point].push_back(Rules.size());
    Rules.push_back(std::move(S));
  }
  Armed.store(!Rules.empty(), std::memory_order_release);
}

void FaultRegistry::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Armed.store(false, std::memory_order_release);
  Rules.clear();
  ByPoint.clear();
}

FaultAction FaultRegistry::evaluate(const char *Point,
                                    const util::CancelToken *Cancel) {
  FaultRule Fired;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Armed.load(std::memory_order_relaxed))
      return {};
    ++PointHits[Point];
    auto It = ByPoint.find(Point);
    if (It == ByPoint.end())
      return {};
    bool DidFire = false;
    for (size_t Idx : It->second) {
      RuleState &S = Rules[Idx];
      ++S.Hits;
      if (S.Hits <= S.Rule.AfterHits)
        continue;
      if (S.Rule.MaxFires && S.Fires >= S.Rule.MaxFires)
        continue;
      // Draw stability: degenerate probabilities consume no RNG draws, so
      // a disabled (P <= 0) or always-on (P >= 1) rule never shifts the
      // streams of probabilistic rules sharing the plan.
      if (S.Rule.Probability <= 0.0)
        continue;
      if (S.Rule.Probability < 1.0 && !S.Draws.chance(S.Rule.Probability))
        continue;
      ++S.Fires;
      ++PointFires[S.Rule.Point];
      Fired = S.Rule;
      DidFire = true;
      break;
    }
    if (!DidFire)
      return {};
  }

  injectedTotal(Fired.Kind).inc();
  telemetry::SpanScope Span("fault." + std::string(faultKindName(Fired.Kind)),
                            Point);

  FaultAction A;
  A.Fired = true;
  A.Kind = Fired.Kind;
  switch (Fired.Kind) {
  case FaultKind::Delay:
    // Executed in place, outside the registry mutex. CancelAware rules
    // poll the site's token so an armed deadline cuts the stall short
    // within one poll interval; CancelAware=false simulates a wedge that
    // only the broker watchdog can clear.
    util::cancellableSleepMs(Fired.CancelAware ? Cancel : nullptr,
                             Fired.DelayMs);
    break;
  case FaultKind::Error:
    A.Error = Status(Fired.Code, Fired.Message.empty()
                                     ? std::string("injected fault at ") + Point
                                     : Fired.Message);
    break;
  case FaultKind::Crash:
  case FaultKind::Corrupt:
    break;
  }
  return A;
}

uint64_t FaultRegistry::hits(const std::string &Point) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = PointHits.find(Point);
  return It == PointHits.end() ? 0 : It->second;
}

uint64_t FaultRegistry::fires(const std::string &Point) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = PointFires.find(Point);
  return It == PointFires.end() ? 0 : It->second;
}

uint64_t FaultRegistry::totalFires() const {
  std::lock_guard<std::mutex> Lock(M);
  uint64_t N = 0;
  for (const auto &KV : PointFires)
    N += KV.second;
  return N;
}

} // namespace fault
} // namespace compiler_gym
