//===- runtime/ObservationCache.cpp ---------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ObservationCache.h"

#include "util/Hash.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::runtime;

ObservationCache::ObservationCache(ObservationCacheOptions Opts)
    : Opts(Opts), Stripes(std::max<size_t>(1, Opts.NumStripes)) {
  this->Opts.NumStripes = Stripes.size();
  this->Opts.CapacityPerStripe = std::max<size_t>(1, Opts.CapacityPerStripe);
}

uint64_t ObservationCache::entryKey(uint64_t StateKey,
                                    const std::string &SpaceName) {
  return hashCombine(StateKey, fnv1a(SpaceName));
}

bool ObservationCache::lookup(uint64_t StateKey, const std::string &SpaceName,
                              service::Observation &Out) {
  uint64_t Key = entryKey(StateKey, SpaceName);
  Stripe &S = stripeFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Map.find(Key);
  if (It == S.Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second); // Promote to MRU.
  Out = It->second->Obs;
  Hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ObservationCache::insert(uint64_t StateKey, const std::string &SpaceName,
                              const service::Observation &Obs) {
  uint64_t Key = entryKey(StateKey, SpaceName);
  Stripe &S = stripeFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Map.find(Key);
  if (It != S.Map.end()) {
    // Another worker computed it concurrently; refresh recency only.
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return;
  }
  S.Lru.push_front(Entry{Key, Obs});
  S.Map.emplace(Key, S.Lru.begin());
  if (S.Lru.size() > Opts.CapacityPerStripe) {
    S.Map.erase(S.Lru.back().Key);
    S.Lru.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t ObservationCache::size() const {
  size_t Total = 0;
  for (const Stripe &S : Stripes) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Total += S.Lru.size();
  }
  return Total;
}

void ObservationCache::clear() {
  for (Stripe &S : Stripes) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Lru.clear();
    S.Map.clear();
  }
}
