//===- runtime/ObservationCache.cpp ---------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ObservationCache.h"

#include "telemetry/MetricsRegistry.h"
#include "util/Hash.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::runtime;

namespace {

// Process-wide mirrors of the per-instance counters: one cache is usually
// shared by a whole broker, but several can coexist (tests, pools); the
// registry series aggregates across all of them.
telemetry::Counter &cacheEvent(const char *Kind) {
  static telemetry::MetricsRegistry &M = telemetry::MetricsRegistry::global();
  static const char *Help = "Cross-session observation cache events";
  static telemetry::Counter &Hits =
      M.counter("cg_obs_cache_events_total", {{"event", "hit"}}, Help);
  static telemetry::Counter &Misses =
      M.counter("cg_obs_cache_events_total", {{"event", "miss"}}, Help);
  static telemetry::Counter &Evictions =
      M.counter("cg_obs_cache_events_total", {{"event", "eviction"}}, Help);
  if (Kind[0] == 'h')
    return Hits;
  if (Kind[0] == 'm')
    return Misses;
  return Evictions;
}

} // namespace

ObservationCache::ObservationCache(ObservationCacheOptions Opts)
    : Opts(Opts), Stripes(std::max<size_t>(1, Opts.NumStripes)) {
  this->Opts.NumStripes = Stripes.size();
  this->Opts.CapacityPerStripe = std::max<size_t>(1, Opts.CapacityPerStripe);
}

uint64_t ObservationCache::entryKey(uint64_t StateKey,
                                    const std::string &SpaceName) {
  return hashCombine(StateKey, fnv1a(SpaceName));
}

bool ObservationCache::lookup(uint64_t StateKey, const std::string &SpaceName,
                              service::Observation &Out) {
  uint64_t Key = entryKey(StateKey, SpaceName);
  Stripe &S = stripeFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Map.find(Key);
  if (It == S.Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    cacheEvent("miss").inc();
    return false;
  }
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second); // Promote to MRU.
  Out = It->second->Obs;
  Hits.fetch_add(1, std::memory_order_relaxed);
  cacheEvent("hit").inc();
  return true;
}

void ObservationCache::insert(uint64_t StateKey, const std::string &SpaceName,
                              const service::Observation &Obs) {
  uint64_t Key = entryKey(StateKey, SpaceName);
  Stripe &S = stripeFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Map.find(Key);
  if (It != S.Map.end()) {
    // Another worker computed it concurrently; refresh recency only.
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return;
  }
  S.Lru.push_front(Entry{Key, Obs});
  S.Map.emplace(Key, S.Lru.begin());
  if (S.Lru.size() > Opts.CapacityPerStripe) {
    S.Map.erase(S.Lru.back().Key);
    S.Lru.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
    cacheEvent("eviction").inc();
  }
}

size_t ObservationCache::size() const {
  size_t Total = 0;
  for (const Stripe &S : Stripes) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Total += S.Lru.size();
  }
  return Total;
}

void ObservationCache::clear() {
  for (Stripe &S : Stripes) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Lru.clear();
    S.Map.clear();
  }
}
