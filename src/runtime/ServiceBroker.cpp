//===- runtime/ServiceBroker.cpp ------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ServiceBroker.h"

#include "telemetry/MetricsRegistry.h"
#include "util/Logging.h"

#include <algorithm>
#include <cassert>

using namespace compiler_gym;
using namespace compiler_gym::runtime;

namespace {

telemetry::Counter &shardRestartsTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_broker_shard_restarts_total", {},
      "Crashed service shards relaunched by broker monitors");
  return C;
}

} // namespace

ServiceBroker::ServiceBroker(BrokerOptions Opts) : Opts(Opts) {
  // Touch the restart counter so the series scrapes as zero before the
  // first crash instead of being absent.
  shardRestartsTotal();
  size_t N = std::max<size_t>(1, Opts.NumShards);
  if (this->Opts.EnableObservationCache)
    ObsCache = std::make_shared<ObservationCache>(this->Opts.Cache);
  Shards.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Shards.push_back(makeShard());
  if (this->Opts.MonitorIntervalMs > 0)
    Monitor = std::thread([this] { monitorLoop(); });
}

std::unique_ptr<ServiceBroker::Shard> ServiceBroker::makeShard() {
  auto S = std::make_unique<Shard>();
  S->Service = std::make_shared<service::CompilerService>(Opts.Faults);
  if (ObsCache)
    S->Service->setObservationCache(ObsCache);
  // One dispatcher thread per shard: the process boundary of the paper's
  // per-environment service, so shards execute requests concurrently.
  std::shared_ptr<service::CompilerService> Service = S->Service;
  S->Channel = std::make_shared<service::QueueTransport>(
      [Service](const std::string &Bytes) { return Service->handle(Bytes); });
  return S;
}

size_t ServiceBroker::addShard() {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  Shards.push_back(makeShard());
  return Shards.size() - 1;
}

ServiceBroker::~ServiceBroker() {
  {
    std::lock_guard<std::mutex> Lock(MonitorMutex);
    Stopping = true;
  }
  MonitorWake.notify_all();
  if (Monitor.joinable())
    Monitor.join();
}

size_t ServiceBroker::acquireShard() {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  // Least-loaded routing. Load changes under us are benign: the worst case
  // is a briefly imbalanced assignment, not an incorrect one.
  size_t Best = 0;
  size_t BestLoad = Shards[0]->Load.load(std::memory_order_relaxed);
  for (size_t I = 1; I < Shards.size(); ++I) {
    size_t L = Shards[I]->Load.load(std::memory_order_relaxed);
    if (L < BestLoad) {
      Best = I;
      BestLoad = L;
    }
  }
  Shards[Best]->Load.fetch_add(1, std::memory_order_relaxed);
  return Best;
}

void ServiceBroker::releaseShard(size_t Index) {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  assert(Index < Shards.size() && "bad shard index");
  Shards[Index]->Load.fetch_sub(1, std::memory_order_relaxed);
}

std::shared_ptr<service::ServiceClient>
ServiceBroker::makeClient(size_t Index) {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  assert(Index < Shards.size() && "bad shard index");
  return std::make_shared<service::ServiceClient>(
      Shards[Index]->Service, Shards[Index]->Channel, Opts.Client);
}

std::shared_ptr<service::CompilerService>
ServiceBroker::shardService(size_t Index) {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  assert(Index < Shards.size() && "bad shard index");
  return Shards[Index]->Service;
}

std::shared_ptr<service::Transport>
ServiceBroker::shardTransport(size_t Index) {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  assert(Index < Shards.size() && "bad shard index");
  return Shards[Index]->Channel;
}

size_t ServiceBroker::shardLoad(size_t Index) const {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  assert(Index < Shards.size() && "bad shard index");
  return Shards[Index]->Load.load(std::memory_order_relaxed);
}

size_t ServiceBroker::checkShards() {
  // Snapshot the services, then probe without holding the structure lock:
  // restart() resets session state and should not serialize against
  // routing.
  std::vector<std::shared_ptr<service::CompilerService>> Services;
  {
    std::lock_guard<std::mutex> Lock(ShardsMutex);
    Services.reserve(Shards.size());
    for (auto &S : Shards)
      Services.push_back(S->Service);
  }
  size_t Restarted = 0;
  for (size_t I = 0; I < Services.size(); ++I) {
    if (!Services[I]->crashed())
      continue;
    CG_LOG_INFO_FOR("broker", 0) << "shard " << I << " crashed; restarting";
    Services[I]->restart();
    ++Restarted;
  }
  if (Restarted) {
    Restarts.fetch_add(Restarted, std::memory_order_relaxed);
    shardRestartsTotal().inc(Restarted);
  }
  return Restarted;
}

void ServiceBroker::monitorLoop() {
  std::unique_lock<std::mutex> Lock(MonitorMutex);
  while (!Stopping) {
    MonitorWake.wait_for(Lock,
                         std::chrono::milliseconds(Opts.MonitorIntervalMs),
                         [this] { return Stopping; });
    if (Stopping)
      return;
    Lock.unlock();
    checkShards();
    Lock.lock();
  }
}
