//===- runtime/ServiceBroker.cpp ------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ServiceBroker.h"

#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"
#include "util/Logging.h"

#include <algorithm>
#include <cassert>

using namespace compiler_gym;
using namespace compiler_gym::runtime;

namespace {

telemetry::Counter &shardRestartsTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_broker_shard_restarts_total", {},
      "Crashed service shards relaunched by broker monitors");
  return C;
}

telemetry::Counter &hungRestartsTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_broker_hung_restarts_total", {},
      "Wedged service shards force-restarted by the watchdog");
  return C;
}

} // namespace

ServiceBroker::ServiceBroker(BrokerOptions Opts) : Opts(Opts) {
  // Touch the restart counters so both series scrape as zero before the
  // first crash/wedge instead of being absent.
  shardRestartsTotal();
  hungRestartsTotal();
  size_t N = std::max<size_t>(1, Opts.NumShards);
  if (this->Opts.EnableObservationCache)
    ObsCache = std::make_shared<ObservationCache>(this->Opts.Cache);
  Shards.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Shards.push_back(makeShard());
  if (this->Opts.MonitorIntervalMs > 0)
    Monitor = std::thread([this] { monitorLoop(); });
}

std::unique_ptr<ServiceBroker::Shard> ServiceBroker::makeShard() {
  auto S = std::make_unique<Shard>();
  S->Service = std::make_shared<service::CompilerService>(Opts.Faults);
  if (ObsCache)
    S->Service->setObservationCache(ObsCache);
  // One dispatcher thread per shard: the process boundary of the paper's
  // per-environment service, so shards execute requests concurrently.
  std::shared_ptr<service::CompilerService> Service = S->Service;
  S->Channel = std::make_shared<service::QueueTransport>(
      [Service](const std::string &Bytes) { return Service->handle(Bytes); });
  S->WatchTicks = S->Service->progressTicks();
  S->WatchSince = std::chrono::steady_clock::now();
  return S;
}

size_t ServiceBroker::addShard() {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  Shards.push_back(makeShard());
  return Shards.size() - 1;
}

ServiceBroker::~ServiceBroker() {
  {
    std::lock_guard<std::mutex> Lock(MonitorMutex);
    Stopping = true;
  }
  MonitorWake.notify_all();
  if (Monitor.joinable())
    Monitor.join();
}

size_t ServiceBroker::acquireShard() {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  // Least-loaded routing. Load changes under us are benign: the worst case
  // is a briefly imbalanced assignment, not an incorrect one.
  size_t Best = 0;
  size_t BestLoad = Shards[0]->Load.load(std::memory_order_relaxed);
  for (size_t I = 1; I < Shards.size(); ++I) {
    size_t L = Shards[I]->Load.load(std::memory_order_relaxed);
    if (L < BestLoad) {
      Best = I;
      BestLoad = L;
    }
  }
  Shards[Best]->Load.fetch_add(1, std::memory_order_relaxed);
  return Best;
}

void ServiceBroker::releaseShard(size_t Index) {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  assert(Index < Shards.size() && "bad shard index");
  Shards[Index]->Load.fetch_sub(1, std::memory_order_relaxed);
}

std::shared_ptr<service::ServiceClient>
ServiceBroker::makeClient(size_t Index) {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  assert(Index < Shards.size() && "bad shard index");
  return std::make_shared<service::ServiceClient>(
      Shards[Index]->Service, Shards[Index]->Channel, Opts.Client);
}

std::shared_ptr<service::CompilerService>
ServiceBroker::shardService(size_t Index) {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  assert(Index < Shards.size() && "bad shard index");
  return Shards[Index]->Service;
}

std::shared_ptr<service::Transport>
ServiceBroker::shardTransport(size_t Index) {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  assert(Index < Shards.size() && "bad shard index");
  return Shards[Index]->Channel;
}

size_t ServiceBroker::shardLoad(size_t Index) const {
  std::lock_guard<std::mutex> Lock(ShardsMutex);
  assert(Index < Shards.size() && "bad shard index");
  return Shards[Index]->Load.load(std::memory_order_relaxed);
}

size_t ServiceBroker::checkShards() {
  // Phase 1 under the structure lock: run the hung-shard watchdog (which
  // may replace shard slots) and snapshot the crashed services. Phase 2
  // restarts the crashed ones unlocked: restart() resets session state and
  // should not serialize against routing.
  std::vector<std::shared_ptr<service::CompilerService>> Crashed;
  size_t Hung = 0;
  std::chrono::steady_clock::time_point Now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> Lock(ShardsMutex);
    for (size_t I = 0; I < Shards.size(); ++I) {
      Shard &S = *Shards[I];
      if (S.Service->crashed()) {
        Crashed.push_back(S.Service);
        S.WatchTicks = S.Service->progressTicks();
        S.WatchSince = Now;
        continue;
      }
      if (Opts.StallWindowMs <= 0)
        continue;
      uint64_t Ticks = S.Service->progressTicks();
      if (!S.Service->busy() || Ticks != S.WatchTicks) {
        S.WatchTicks = Ticks;
        S.WatchSince = Now;
        continue;
      }
      if (Now - S.WatchSince < std::chrono::milliseconds(Opts.StallWindowMs))
        continue;
      // Wedged: busy for a full stall window with a standing-still
      // heartbeat. The stuck op owns the service mutex and the dispatcher
      // thread, so an in-place restart would block behind it; poison the
      // old service (abort flag for cancel-aware code, crashed so queued
      // ops bounce Aborted) and swap a fresh service/transport into the
      // slot. The retired pair goes to the graveyard — destroying the
      // QueueTransport joins its wedged dispatcher, which must not stall
      // the monitor.
      telemetry::SpanScope WatchdogSpan("watchdog.force_restart", "broker");
      CG_LOG_INFO_FOR("broker", 0)
          << "shard " << I << " wedged (no heartbeat progress for "
          << Opts.StallWindowMs << "ms); force-restarting";
      S.Service->requestAbort();
      S.Service->markCrashed();
      std::unique_ptr<Shard> Fresh = makeShard();
      Graveyard.emplace_back(std::move(S.Service), std::move(S.Channel));
      S.Service = std::move(Fresh->Service);
      S.Channel = std::move(Fresh->Channel);
      S.WatchTicks = S.Service->progressTicks();
      S.WatchSince = Now;
      ++Hung;
    }
  }
  size_t Restarted = 0;
  for (size_t I = 0; I < Crashed.size(); ++I) {
    CG_LOG_INFO_FOR("broker", 0) << "crashed shard service; restarting";
    Crashed[I]->restart();
    ++Restarted;
  }
  if (Restarted) {
    Restarts.fetch_add(Restarted, std::memory_order_relaxed);
    shardRestartsTotal().inc(Restarted);
  }
  if (Hung) {
    HungRestarts.fetch_add(Hung, std::memory_order_relaxed);
    hungRestartsTotal().inc(Hung);
  }
  return Restarted + Hung;
}

void ServiceBroker::monitorLoop() {
  std::unique_lock<std::mutex> Lock(MonitorMutex);
  while (!Stopping) {
    MonitorWake.wait_for(Lock,
                         std::chrono::milliseconds(Opts.MonitorIntervalMs),
                         [this] { return Stopping; });
    if (Stopping)
      return;
    Lock.unlock();
    checkShards();
    Lock.lock();
  }
}
