//===- runtime/ObservationCache.h - Sharded observation LRU -----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, mutex-striped LRU cache of computed observations, keyed by
/// (session state hash, observation space). Pool workers repeatedly visit
/// identical compiler states — every reset() of the same benchmark, every
/// shared action prefix across search candidates — and the expensive
/// feature extractors (Autophase, InstCount, ProGraML) recompute the same
/// vectors each time. One cache instance is shared by every shard of a
/// ServiceBroker; striping keeps the shards from serializing on a single
/// mutex.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RUNTIME_OBSERVATIONCACHE_H
#define COMPILER_GYM_RUNTIME_OBSERVATIONCACHE_H

#include "service/CompilerService.h"

#include <atomic>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace compiler_gym {
namespace runtime {

struct ObservationCacheOptions {
  size_t NumStripes = 16;        ///< Lock stripes (power of two preferred).
  size_t CapacityPerStripe = 256; ///< Entries per stripe before LRU eviction.
};

/// Thread-safe sharded LRU over (stateKey, observation space) -> Observation.
class ObservationCache : public service::ObservationCacheBase {
public:
  explicit ObservationCache(ObservationCacheOptions Opts = {});

  bool lookup(uint64_t StateKey, const std::string &SpaceName,
              service::Observation &Out) override;
  void insert(uint64_t StateKey, const std::string &SpaceName,
              const service::Observation &Obs) override;

  /// Telemetry (relaxed counters; exact totals once traffic quiesces).
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }

  /// Total entries across all stripes (takes every stripe lock).
  size_t size() const;
  size_t capacity() const { return Opts.NumStripes * Opts.CapacityPerStripe; }

  void clear();

private:
  struct Entry {
    uint64_t Key;
    service::Observation Obs;
  };
  struct Stripe {
    mutable std::mutex Mutex;
    std::list<Entry> Lru; ///< Front = most recently used.
    std::unordered_map<uint64_t, std::list<Entry>::iterator> Map;
  };

  Stripe &stripeFor(uint64_t Key) {
    return Stripes[Key % Stripes.size()];
  }
  const Stripe &stripeFor(uint64_t Key) const {
    return Stripes[Key % Stripes.size()];
  }
  static uint64_t entryKey(uint64_t StateKey, const std::string &SpaceName);

  ObservationCacheOptions Opts;
  std::vector<Stripe> Stripes;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
};

} // namespace runtime
} // namespace compiler_gym

#endif // COMPILER_GYM_RUNTIME_OBSERVATIONCACHE_H
