//===- runtime/EnvPool.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/EnvPool.h"

#include "datasets/DatasetRegistry.h"
#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"
#include "util/Logging.h"
#include "util/Timer.h"

#include <algorithm>
#include <atomic>
#include <limits>

using namespace compiler_gym;
using namespace compiler_gym::runtime;

namespace {

telemetry::Counter &stepsTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_pool_steps_total", {}, "Actions executed through EnvPool");
  return C;
}

telemetry::Counter &episodesTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_pool_episodes_total", {}, "Episodes completed through EnvPool");
  return C;
}

telemetry::Histogram &queueWaitUs() {
  static telemetry::Histogram &H =
      telemetry::MetricsRegistry::global().histogram(
          "cg_pool_queue_wait_us", {},
          "Latency from work submission to worker pickup (us)");
  return H;
}

telemetry::Counter &fanoutForksTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_pool_fanout_forks_total", {},
      "Candidate forks (snapshot rebases + session forks) in "
      "evaluateContinuations");
  return C;
}

} // namespace

EnvPool::EnvPool(EnvPoolOptions Opts, std::unique_ptr<ServiceBroker> Broker)
    : Opts(std::move(Opts)), Broker(std::move(Broker)) {}

EnvPool::~EnvPool() {
  // Envs must die before the broker: their destructors issue EndSession
  // RPCs over the broker's transports.
  Envs.clear();
  for (size_t Shard : ShardOf)
    Broker->releaseShard(Shard);
}

StatusOr<std::unique_ptr<EnvPool>> EnvPool::create(EnvPoolOptions Opts) {
  Opts.NumWorkers = std::max<size_t>(1, Opts.NumWorkers);
  if (Opts.Broker.NumShards == 0)
    Opts.Broker.NumShards = Opts.NumWorkers;

  CG_ASSIGN_OR_RETURN(core::CompilerEnvOptions EnvOpts,
                      core::resolveMakeOptions(Opts.EnvId, Opts.Make));
  EnvOpts.Client = Opts.Broker.Client;

  // Build the benchmark list: explicit URIs win, then a dataset expansion.
  std::vector<std::string> Benchmarks = Opts.Benchmarks;
  if (Benchmarks.empty() && !Opts.DatasetUri.empty()) {
    const datasets::Dataset *Ds =
        datasets::DatasetRegistry::instance().dataset(Opts.DatasetUri);
    if (!Ds)
      return notFound("no dataset '" + Opts.DatasetUri + "'");
    size_t Limit = Opts.MaxDatasetBenchmarks
                       ? Opts.MaxDatasetBenchmarks
                       : std::numeric_limits<size_t>::max();
    for (const std::string &Name : Ds->benchmarkNames(Limit))
      Benchmarks.push_back(Ds->name() + "/" + Name);
    if (Benchmarks.empty())
      return invalidArgument("dataset '" + Opts.DatasetUri +
                             "' has no benchmarks");
  }

  auto Broker = std::make_unique<ServiceBroker>(Opts.Broker);
  std::unique_ptr<EnvPool> Pool(
      new EnvPool(std::move(Opts), std::move(Broker)));
  const EnvPoolOptions &O = Pool->Opts;

  Pool->BenchmarkSlices.resize(O.NumWorkers);
  Pool->BenchmarkCursor.assign(O.NumWorkers, 0);
  for (size_t I = 0; I < Benchmarks.size(); ++I)
    Pool->BenchmarkSlices[I % O.NumWorkers].push_back(Benchmarks[I]);
  // Workers whose slice came up empty (more workers than benchmarks) wrap
  // around the full list so every worker has work.
  if (!Benchmarks.empty())
    for (std::vector<std::string> &Slice : Pool->BenchmarkSlices)
      if (Slice.empty())
        Slice = Benchmarks;

  Pool->Envs.reserve(O.NumWorkers);
  Pool->ShardOf.reserve(O.NumWorkers);
  for (size_t W = 0; W < O.NumWorkers; ++W) {
    size_t Shard = Pool->Broker->acquireShard();
    Pool->ShardOf.push_back(Shard);
    core::CompilerEnvOptions WorkerOpts = EnvOpts;
    if (!Pool->BenchmarkSlices[W].empty())
      WorkerOpts.BenchmarkUri = Pool->BenchmarkSlices[W].front();
    CG_ASSIGN_OR_RETURN(std::unique_ptr<core::CompilerEnv> Env,
                        core::CompilerEnv::attach(
                            WorkerOpts, Pool->Broker->shardService(Shard),
                            Pool->Broker->shardTransport(Shard)));
    Pool->Envs.push_back(std::move(Env));
  }
  Pool->Workers = std::make_unique<ThreadPool>(O.NumWorkers);
  return Pool;
}

std::string EnvPool::nextBenchmark(size_t Worker) {
  const std::vector<std::string> &Slice = BenchmarkSlices[Worker];
  if (Slice.empty())
    return std::string();
  std::lock_guard<std::mutex> Lock(CursorMutex);
  std::string Uri = Slice[BenchmarkCursor[Worker] % Slice.size()];
  ++BenchmarkCursor[Worker];
  return Uri;
}

Status EnvPool::forEachWorker(const std::function<Status(size_t)> &Fn) {
  std::vector<std::future<void>> Futures;
  Futures.reserve(Envs.size());
  std::mutex ErrMutex;
  Status FirstError = Status::ok();
  // Worker tasks adopt the coordinator's trace context so per-env spans
  // (env.step and below) stitch under the pool-level span even though
  // they run on ThreadPool threads.
  telemetry::TraceContext Ctx = telemetry::currentTraceContext();
  for (size_t W = 0; W < Envs.size(); ++W) {
    Stopwatch QueueWatch;
    Futures.push_back(Workers->submit([&, W, QueueWatch] {
      queueWaitUs().observeUs(QueueWatch.elapsedUs());
      telemetry::TraceBinding Bind(Ctx.TraceId, Ctx.SpanId);
      Status S = Fn(W);
      if (!S.isOk()) {
        std::lock_guard<std::mutex> Lock(ErrMutex);
        if (FirstError.isOk())
          FirstError = S;
      }
    }));
  }
  for (std::future<void> &F : Futures)
    F.get();
  return FirstError;
}

StatusOr<std::vector<service::Observation>> EnvPool::resetAll() {
  CG_TRACE_SPAN("pool.reset_all", "runtime");
  std::vector<service::Observation> Out(Envs.size());
  // Benchmark cursors advance on the caller thread: nextBenchmark is not
  // synchronized.
  std::vector<std::string> Uris(Envs.size());
  for (size_t W = 0; W < Envs.size(); ++W)
    Uris[W] = nextBenchmark(W);
  Status S = forEachWorker([&](size_t W) -> Status {
    if (!Uris[W].empty())
      Envs[W]->setBenchmark(Uris[W]);
    CG_ASSIGN_OR_RETURN(Out[W], Envs[W]->reset());
    return Status::ok();
  });
  if (!S.isOk())
    return S;
  return Out;
}

StatusOr<std::vector<core::StepResult>>
EnvPool::stepBatch(const std::vector<std::vector<int>> &Actions) {
  return stepBatch(Actions, {}, {});
}

StatusOr<std::vector<core::StepResult>>
EnvPool::stepBatch(const std::vector<std::vector<int>> &Actions,
                   const std::vector<std::string> &ObsSpaces,
                   const std::vector<std::string> &RewardSpaces) {
  if (Actions.size() != Envs.size())
    return invalidArgument("stepBatch: " + std::to_string(Actions.size()) +
                           " action lists for " +
                           std::to_string(Envs.size()) + " workers");
  CG_TRACE_SPAN("pool.step_batch", "runtime");
  std::vector<core::StepResult> Out(Envs.size());
  size_t Steps = 0;
  for (const std::vector<int> &A : Actions)
    Steps += A.size();
  Status S = forEachWorker([&](size_t W) -> Status {
    CG_ASSIGN_OR_RETURN(Out[W],
                        Envs[W]->step(Actions[W], ObsSpaces, RewardSpaces));
    return Status::ok();
  });
  if (!S.isOk())
    return S;
  stepsTotal().inc(Steps);
  std::lock_guard<std::mutex> Lock(StatsMutex);
  Aggregate.StepsExecuted += Steps;
  return Out;
}

Status EnvPool::collect(size_t Episodes, const EpisodeFn &Fn) {
  CG_TRACE_SPAN("pool.collect", "runtime");
  std::atomic<size_t> NextEpisode{0};
  return forEachWorker([&](size_t W) -> Status {
    for (;;) {
      size_t Episode = NextEpisode.fetch_add(1, std::memory_order_relaxed);
      if (Episode >= Episodes)
        return Status::ok();
      std::string Uri = nextBenchmark(W);
      if (!Uri.empty())
        Envs[W]->setBenchmark(Uri);
      CG_ASSIGN_OR_RETURN(service::Observation Obs, Envs[W]->reset());
      CG_RETURN_IF_ERROR(Fn(W, Episode, *Envs[W], Obs));
      episodesTotal().inc();
      stepsTotal().inc(Envs[W]->episodeLength());
      std::lock_guard<std::mutex> Lock(StatsMutex);
      Aggregate.EpisodesCompleted += 1;
      Aggregate.StepsExecuted += Envs[W]->episodeLength();
      Aggregate.EpisodeReward.add(Envs[W]->episodeReward());
    }
  });
}

StatusOr<std::vector<double>> EnvPool::evaluateSequences(
    const std::vector<std::vector<int>> &Candidates) {
  CG_TRACE_SPAN("pool.evaluate", "runtime");
  std::vector<double> Rewards(Candidates.size(), 0.0);
  std::atomic<size_t> Next{0};
  Status S = forEachWorker([&](size_t W) -> Status {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Candidates.size())
        return Status::ok();
      CG_ASSIGN_OR_RETURN(service::Observation Obs, Envs[W]->reset());
      (void)Obs;
      if (!Candidates[I].empty()) {
        CG_ASSIGN_OR_RETURN(core::StepResult R, Envs[W]->step(Candidates[I]));
        (void)R;
      }
      Rewards[I] = Envs[W]->episodeReward();
      episodesTotal().inc();
      stepsTotal().inc(Candidates[I].size());
      std::lock_guard<std::mutex> Lock(StatsMutex);
      Aggregate.EpisodesCompleted += 1;
      Aggregate.StepsExecuted += Candidates[I].size();
      Aggregate.EpisodeReward.add(Rewards[I]);
    }
  });
  if (!S.isOk())
    return S;
  return Rewards;
}

StatusOr<std::vector<double>> EnvPool::evaluateDirect(
    const std::vector<std::vector<int64_t>> &Candidates) {
  CG_TRACE_SPAN("pool.evaluate", "runtime");
  std::vector<double> Rewards(Candidates.size(), 0.0);
  std::atomic<size_t> Next{0};
  Status S = forEachWorker([&](size_t W) -> Status {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Candidates.size())
        return Status::ok();
      CG_ASSIGN_OR_RETURN(service::Observation Obs, Envs[W]->reset());
      (void)Obs;
      CG_ASSIGN_OR_RETURN(core::StepResult R,
                          Envs[W]->stepDirect(Candidates[I]));
      (void)R;
      Rewards[I] = Envs[W]->episodeReward();
      episodesTotal().inc();
      stepsTotal().inc();
      std::lock_guard<std::mutex> Lock(StatsMutex);
      Aggregate.EpisodesCompleted += 1;
      Aggregate.StepsExecuted += 1;
      Aggregate.EpisodeReward.add(Rewards[I]);
    }
  });
  if (!S.isOk())
    return S;
  return Rewards;
}

StatusOr<std::vector<double>> EnvPool::evaluateContinuations(
    core::CompilerEnv &Parent,
    const std::vector<std::vector<int>> &Candidates) {
  CG_TRACE_SPAN("pool.fanout", "runtime");
  const double ParentReward = Parent.episodeReward();
  std::vector<double> Rewards(Candidates.size(), 0.0);
  std::atomic<size_t> Next{0};
  Status S = forEachWorker([&](size_t W) -> Status {
    // Exactly one slot (at most) owns the parent; it must not rebase its
    // own env out from under the caller, so it evaluates on throwaway
    // forks of the parent instead. Safe single-threaded use of the
    // parent's shared client: only this worker thread touches it.
    const bool OwnsParent = Envs[W].get() == &Parent;
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Candidates.size())
        return Status::ok();
      double Reward = 0.0;
      if (OwnsParent) {
        CG_ASSIGN_OR_RETURN(std::unique_ptr<core::CompilerEnv> Fork,
                            Parent.fork());
        if (!Candidates[I].empty()) {
          CG_ASSIGN_OR_RETURN(core::StepResult R, Fork->step(Candidates[I]));
          (void)R;
        }
        Reward = Fork->episodeReward() - ParentReward;
      } else {
        // Cross-shard fork: restore the parent's snapshot into this
        // worker's own session (own client, own shard), then run the
        // suffix there.
        CG_RETURN_IF_ERROR(Envs[W]->rebase(Parent));
        if (!Candidates[I].empty()) {
          CG_ASSIGN_OR_RETURN(core::StepResult R,
                              Envs[W]->step(Candidates[I]));
          (void)R;
        }
        Reward = Envs[W]->episodeReward() - ParentReward;
      }
      fanoutForksTotal().inc();
      Rewards[I] = Reward;
      episodesTotal().inc();
      stepsTotal().inc(Candidates[I].size());
      std::lock_guard<std::mutex> Lock(StatsMutex);
      Aggregate.EpisodesCompleted += 1;
      Aggregate.StepsExecuted += Candidates[I].size();
      Aggregate.EpisodeReward.add(Reward);
    }
  });
  if (!S.isOk())
    return S;
  return Rewards;
}

PoolStats EnvPool::stats() const {
  PoolStats Out;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Out = Aggregate;
  }
  for (const std::unique_ptr<core::CompilerEnv> &E : Envs)
    Out.EnvRecoveries += E->serviceRecoveries();
  Out.ShardRestarts = Broker->shardRestarts();
  if (ObservationCache *Cache = Broker->observationCache()) {
    Out.CacheHits = Cache->hits();
    Out.CacheMisses = Cache->misses();
  }
  return Out;
}
