//===- runtime/EnvPool.h - Vectorized parallel environments -----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EnvPool: a vectorized front-end over M CompilerEnv workers attached to
/// the shards of a ServiceBroker. The pool drives all M environments
/// concurrently on a util::ThreadPool — resetAll() / stepBatch() for
/// lock-step vectorized use (RL), collect() for episode-parallel use,
/// evaluateSequences() / evaluateDirect() for autotuner candidate
/// fan-out from the initial state, and evaluateContinuations() for
/// candidate fan-out from a shared mid-episode prefix (O(1) snapshot
/// forks instead of per-candidate reset+replay). Benchmark lists are
/// sharded across workers via DatasetRegistry, and per-worker statistics
/// aggregate into PoolStats. Crash recovery is inherited from the env
/// layer: a worker whose shard dies restores its last snapshot (or
/// replays its episode) on the restarted shard, so a pool run loses no
/// episodes to injected (or real) compiler faults.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RUNTIME_ENVPOOL_H
#define COMPILER_GYM_RUNTIME_ENVPOOL_H

#include "core/Registry.h"
#include "runtime/ServiceBroker.h"
#include "util/Stats.h"
#include "util/ThreadPool.h"

#include <functional>
#include <memory>
#include <vector>

namespace compiler_gym {
namespace runtime {

struct EnvPoolOptions {
  std::string EnvId = "llvm-v0";
  /// Per-env settings (benchmark/observation/reward). MakeOptions::Faults
  /// is not applied here — backend faults are a property of the shard
  /// fleet, so set BrokerOptions::Faults instead.
  core::MakeOptions Make;
  size_t NumWorkers = 4; ///< M concurrently stepped environments.
  /// Broker configuration. Broker.NumShards == 0 means one shard per
  /// worker (full parallelism); fewer shards co-locate envs per shard.
  BrokerOptions Broker;
  /// Explicit benchmark URIs sharded across workers (worker i cycles
  /// through URIs i, i+M, i+2M, ...). Empty: use DatasetUri, then the
  /// Make/preset default benchmark.
  std::vector<std::string> Benchmarks;
  /// Dataset to shard across workers, e.g. "benchmark://cbench-v1".
  std::string DatasetUri;
  size_t MaxDatasetBenchmarks = 64; ///< Cap when expanding DatasetUri.
};

/// Aggregated cross-worker statistics.
struct PoolStats {
  size_t EpisodesCompleted = 0;
  size_t StepsExecuted = 0;
  uint64_t EnvRecoveries = 0; ///< Env-level restart+replay recoveries.
  uint64_t ShardRestarts = 0; ///< Broker monitor restarts.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  RunningStat EpisodeReward;
};

/// M environments over N service shards, stepped in parallel.
///
/// Thread-safety: the batch entry points (resetAll, stepBatch, collect,
/// evaluate*) drive the workers on the internal thread pool and must be
/// called from one coordinating thread at a time — concurrent batch calls
/// on the same pool would step the same envs from two threads. Individual
/// worker envs (env(i)) are not thread-safe either; touch them only
/// between batch operations. nextBenchmark() and stats() are safe from any
/// thread.
class EnvPool {
public:
  /// Builds the broker fleet, attaches one CompilerEnv per worker to its
  /// leased shard, and expands/shards the benchmark list.
  static StatusOr<std::unique_ptr<EnvPool>> create(EnvPoolOptions Opts);
  /// Joins the worker thread pool, destroys the envs (ending their backend
  /// sessions), then stops the broker and its monitor thread.
  ~EnvPool();

  EnvPool(const EnvPool &) = delete;
  EnvPool &operator=(const EnvPool &) = delete;

  /// Number of worker environments (M).
  size_t size() const { return Envs.size(); }
  /// Direct access to one worker env (tests, custom drivers). Not
  /// thread-safe against a concurrently running batch operation.
  core::CompilerEnv &env(size_t Worker) { return *Envs[Worker]; }
  /// The shard fleet behind the workers.
  ServiceBroker &broker() { return *Broker; }

  /// Advances worker \p Worker to its next assigned benchmark and returns
  /// the URI ("" when the pool has no benchmark list). Thread-safe.
  std::string nextBenchmark(size_t Worker);

  // -- Vectorized API ---------------------------------------------------------

  /// Resets every worker env concurrently (each on its next benchmark when
  /// a benchmark list is configured). Fails on the first env error.
  StatusOr<std::vector<service::Observation>> resetAll();

  /// Steps every worker env concurrently; Actions[i] is the (batched)
  /// action list for worker i. Requires Actions.size() == size().
  StatusOr<std::vector<core::StepResult>> stepBatch(
      const std::vector<std::vector<int>> &Actions);

  /// Vectorized multi-space step: every worker additionally computes the
  /// named observation and reward spaces, each worker in its single step
  /// RPC (M workers => M RPCs total, regardless of how many spaces).
  StatusOr<std::vector<core::StepResult>> stepBatch(
      const std::vector<std::vector<int>> &Actions,
      const std::vector<std::string> &ObsSpaces,
      const std::vector<std::string> &RewardSpaces = {});

  // -- Episode-parallel API ---------------------------------------------------

  /// Runs one episode on a worker env (already reset; \p InitialObs is the
  /// reset observation). Returning an error aborts the collection.
  using EpisodeFn =
      std::function<Status(size_t Worker, size_t Episode,
                           core::CompilerEnv &E,
                           const service::Observation &InitialObs)>;

  /// Runs \p Episodes episodes across the workers: each worker pulls the
  /// next episode index, advances to its next benchmark, resets, and runs
  /// \p Fn. Returns the first error, after all workers drain.
  Status collect(size_t Episodes, const EpisodeFn &Fn);

  // -- Autotuner fan-out ------------------------------------------------------

  /// Evaluates candidate action sequences in parallel: each candidate runs
  /// reset + one batched step on a worker env; result is the episode
  /// reward, in candidate order.
  StatusOr<std::vector<double>> evaluateSequences(
      const std::vector<std::vector<int>> &Candidates);

  /// Same for direct choice-vector candidates (GCC flag tuning).
  StatusOr<std::vector<double>> evaluateDirect(
      const std::vector<std::vector<int64_t>> &Candidates);

  /// Candidate *continuation* fan-out from \p Parent's current mid-episode
  /// state (the autotuner inner loop): evaluates each candidate action
  /// suffix as if appended to the parent's episode, without re-running the
  /// prefix. Workers fork from the parent's content-addressed snapshot —
  /// an O(1)-in-module-size restore (CompilerEnv::rebase), no prefix
  /// replay — so K candidates cost O(K), not O(K·|episode|·|module|) as
  /// reset+replay would. If the parent is one of this pool's workers, its
  /// slot evaluates on throwaway CompilerEnv::fork() clones instead (same
  /// shard, still O(1)). Returns reward *deltas* relative to the parent
  /// (candidate episodeReward minus the parent's), in candidate order.
  /// The parent is only read, never stepped or mutated; other worker envs
  /// are left at rebased states, so reset them (resetAll / collect)
  /// before lock-step use.
  StatusOr<std::vector<double>> evaluateContinuations(
      core::CompilerEnv &Parent,
      const std::vector<std::vector<int>> &Candidates);

  /// Aggregated statistics snapshot. Safe to call concurrently with batch
  /// operations: the per-env recovery counters are relaxed atomics, so a
  /// mid-batch snapshot is race-free but may lag the still-running
  /// episodes' episode/step aggregates.
  PoolStats stats() const;

private:
  EnvPool(EnvPoolOptions Opts, std::unique_ptr<ServiceBroker> Broker);

  /// Runs Fn(worker) once per worker concurrently; returns first error.
  Status forEachWorker(const std::function<Status(size_t)> &Fn);

  EnvPoolOptions Opts;
  std::unique_ptr<ServiceBroker> Broker;
  std::unique_ptr<ThreadPool> Workers;
  std::vector<std::unique_ptr<core::CompilerEnv>> Envs;
  std::vector<size_t> ShardOf;              ///< Worker -> shard lease.
  std::vector<std::vector<std::string>> BenchmarkSlices; ///< Per worker.
  std::vector<size_t> BenchmarkCursor;      ///< Per worker.
  std::mutex CursorMutex;                   ///< Guards BenchmarkCursor.

  mutable std::mutex StatsMutex;
  PoolStats Aggregate;
};

} // namespace runtime
} // namespace compiler_gym

#endif // COMPILER_GYM_RUNTIME_ENVPOOL_H
