//===- runtime/ServiceBroker.h - Sharded compiler-service fleet -*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ServiceBroker: owns a fleet of CompilerService shards — each a service
/// instance behind its own QueueTransport dispatcher thread, the in-process
/// stand-in for one backend process — and routes environment sessions to
/// the least-loaded shard. A monitor thread watches the shards through the
/// same FaultPlan machinery the single-env robustness tests use: a shard
/// whose service reports crashed() is restarted in place. Environments
/// attached through the broker (CompilerEnv::attach) then re-establish
/// their sessions by replaying their action histories, which scales the
/// paper's §IV-B crash-recovery semantics from one env/one service to a
/// whole fleet. Hung shards surface as client-side DeadlineExceeded and are
/// recovered by the same env-side path.
///
/// Hung-shard watchdog (opt-in via StallWindowMs): every service publishes
/// a relaxed-atomic progress heartbeat (bumped per completed RPC and per
/// cancel-token poll inside pass execution). A shard that stays busy with
/// a standing-still heartbeat for a full stall window is wedged — work
/// that neither finishes nor polls — and cannot be restarted in place
/// (the stuck op owns the service mutex and the dispatcher thread). The
/// watchdog instead poisons the old service (abort + crashed, so queued
/// ops bounce immediately) and swaps a fresh service/transport pair into
/// the shard slot; the retired pair is parked until destruction so the
/// stuck thread can drain. Sessions resume on the fresh shard from their
/// last snapshot (gateway migration / env recovery), with zero replay.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_RUNTIME_SERVICEBROKER_H
#define COMPILER_GYM_RUNTIME_SERVICEBROKER_H

#include "runtime/ObservationCache.h"
#include "service/ServiceClient.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <thread>
#include <vector>

namespace compiler_gym {
namespace runtime {

struct BrokerOptions {
  size_t NumShards = 2;
  /// Fault plan applied to every shard (robustness tests / benches).
  service::FaultPlan Faults;
  /// Call policy for clients minted by makeClient().
  service::ClientOptions Client;
  /// Monitor sweep interval; 0 disables the monitor thread (tests can
  /// drive sweeps manually via checkShards()).
  int MonitorIntervalMs = 20;
  /// Hung-shard watchdog: a shard busy for this long with no heartbeat
  /// progress is declared wedged and force-restarted by replacement.
  /// 0 disables the watchdog (the default: legitimate non-polling work —
  /// e.g. the FaultPlan hang tests — must not be misread as a wedge).
  /// Size it to several times the longest honest pause between heartbeat
  /// polls (pass boundaries / per-function polls), plus monitor jitter.
  int StallWindowMs = 0;
  /// Share one ObservationCache across all shards.
  bool EnableObservationCache = true;
  ObservationCacheOptions Cache;
};

/// Owns N service shards; routes sessions; restarts dead shards.
class ServiceBroker {
public:
  explicit ServiceBroker(BrokerOptions Opts = {});
  ~ServiceBroker();

  ServiceBroker(const ServiceBroker &) = delete;
  ServiceBroker &operator=(const ServiceBroker &) = delete;

  size_t numShards() const {
    std::lock_guard<std::mutex> Lock(ShardsMutex);
    return Shards.size();
  }

  /// Adds one more shard to the fleet (gateway scale-out) and returns its
  /// index. Existing shard indices stay valid: shards are only ever
  /// appended, never removed — a drained shard just stops receiving new
  /// sessions.
  size_t addShard();

  /// Reserves the least-loaded shard and returns its index. Every acquire
  /// must be balanced by a release; EnvPool holds one lease per worker env
  /// for its lifetime.
  size_t acquireShard();
  void releaseShard(size_t Index);

  /// A dedicated client over shard \p Index's shared transport. Each env
  /// gets its own client so retry policy and telemetry stay per-env while
  /// the transport and service are shared.
  std::shared_ptr<service::ServiceClient> makeClient(size_t Index);

  std::shared_ptr<service::CompilerService> shardService(size_t Index);
  std::shared_ptr<service::Transport> shardTransport(size_t Index);

  size_t shardLoad(size_t Index) const;

  /// One monitor sweep: restarts every shard whose service crashed, and
  /// (with StallWindowMs > 0) force-restarts wedged shards by replacement.
  /// Called periodically by the monitor thread; callable from tests.
  /// Returns the number of shards restarted (both kinds).
  size_t checkShards();

  /// Crash restarts performed by the broker (monitor + sweeps); hung-shard
  /// force-restarts are counted separately in hungRestarts().
  uint64_t shardRestarts() const {
    return Restarts.load(std::memory_order_relaxed);
  }

  /// Wedged shards force-restarted by the watchdog.
  uint64_t hungRestarts() const {
    return HungRestarts.load(std::memory_order_relaxed);
  }

  /// The shared observation cache; nullptr when disabled.
  ObservationCache *observationCache() { return ObsCache.get(); }

private:
  struct Shard {
    std::shared_ptr<service::CompilerService> Service;
    std::shared_ptr<service::Transport> Channel;
    std::atomic<size_t> Load{0};
    /// Watchdog bookkeeping, guarded by ShardsMutex: the heartbeat value
    /// last observed and when it last moved (or the shard was last idle).
    uint64_t WatchTicks = 0;
    std::chrono::steady_clock::time_point WatchSince{};
  };

  void monitorLoop();
  std::unique_ptr<Shard> makeShard();

  BrokerOptions Opts;
  /// Guards the vector's structure (addShard appends concurrently with
  /// routing); the shards themselves are internally synchronized.
  mutable std::mutex ShardsMutex;
  std::vector<std::unique_ptr<Shard>> Shards;
  /// Wedged service/transport pairs retired by the watchdog: their
  /// dispatcher threads are stuck inside the wedge, so destruction (which
  /// joins them) is deferred until the broker itself is torn down.
  std::vector<std::pair<std::shared_ptr<service::CompilerService>,
                        std::shared_ptr<service::Transport>>>
      Graveyard;
  std::shared_ptr<ObservationCache> ObsCache;
  std::atomic<uint64_t> Restarts{0};
  std::atomic<uint64_t> HungRestarts{0};

  std::mutex MonitorMutex;
  std::condition_variable MonitorWake;
  bool Stopping = false;
  std::thread Monitor;
};

} // namespace runtime
} // namespace compiler_gym

#endif // COMPILER_GYM_RUNTIME_SERVICEBROKER_H
