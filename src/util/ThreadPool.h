//===- util/ThreadPool.h - Fixed-size worker pool ---------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size thread pool. The compiler service runtime uses it to
/// execute session operations off the caller thread so that deadlines can be
/// enforced; the parallel-search example uses it for worker fan-out.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_UTIL_THREADPOOL_H
#define COMPILER_GYM_UTIL_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace compiler_gym {

/// Fixed-size pool executing std::function<void()> jobs FIFO.
class ThreadPool {
public:
  explicit ThreadPool(size_t NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Job; returns a future for its completion.
  std::future<void> submit(std::function<void()> Job);

  /// Blocks until every queued job has finished.
  void wait();

  size_t size() const { return Workers.size(); }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::packaged_task<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable Ready;
  std::condition_variable Idle;
  size_t ActiveJobs = 0;
  bool Stopping = false;
};

} // namespace compiler_gym

#endif // COMPILER_GYM_UTIL_THREADPOOL_H
