//===- util/Rng.cpp -------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "util/Rng.h"

#include <cmath>

using namespace compiler_gym;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

void Rng::reseed(uint64_t Seed) {
  uint64_t X = Seed;
  for (auto &S : State)
    S = splitmix64(X);
  HasSpareGaussian = false;
}

static inline uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

uint64_t Rng::next() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::bounded(uint64_t Bound) {
  assert(Bound > 0 && "bounded() with zero bound");
  // Lemire's nearly-divisionless method with rejection for exactness.
  uint64_t X = next();
  __uint128_t M = static_cast<__uint128_t>(X) * Bound;
  uint64_t L = static_cast<uint64_t>(M);
  if (L < Bound) {
    uint64_t Threshold = -Bound % Bound;
    while (L < Threshold) {
      X = next();
      M = static_cast<__uint128_t>(X) * Bound;
      L = static_cast<uint64_t>(M);
    }
  }
  return static_cast<uint64_t>(M >> 64);
}

int64_t Rng::range(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "range() with inverted bounds");
  return Lo + static_cast<int64_t>(
                  bounded(static_cast<uint64_t>(Hi - Lo) + 1));
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) { return Lo + (Hi - Lo) * uniform(); }

double Rng::gaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  double U1 = 0.0;
  while (U1 == 0.0)
    U1 = uniform();
  double U2 = uniform();
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  SpareGaussian = R * std::sin(Theta);
  HasSpareGaussian = true;
  return R * std::cos(Theta);
}

size_t Rng::weightedIndex(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "weightedIndex() with no weights");
  double Total = 0.0;
  for (double W : Weights)
    Total += W;
  if (Total <= 0.0)
    return Weights.size() - 1;
  double Target = uniform() * Total;
  double Acc = 0.0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Acc += Weights[I];
    if (Target < Acc)
      return I;
  }
  return Weights.size() - 1;
}
