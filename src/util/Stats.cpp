//===- util/Stats.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "util/Stats.h"

#include <algorithm>
#include <cmath>

using namespace compiler_gym;

double compiler_gym::percentile(std::vector<double> Values, double Pct) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  double Rank = (Pct / 100.0) * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double compiler_gym::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double compiler_gym::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Acc = 0.0;
  for (double V : Values)
    Acc += (V - M) * (V - M);
  return std::sqrt(Acc / static_cast<double>(Values.size()));
}

double compiler_gym::geomean(const std::vector<double> &Values, double Floor) {
  if (Values.empty())
    return 1.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(std::max(V, Floor));
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

LatencySummary
compiler_gym::summarizeLatencies(const std::vector<double> &Values) {
  LatencySummary S;
  S.Count = Values.size();
  if (Values.empty())
    return S;
  S.P50 = percentile(Values, 50.0);
  S.P99 = percentile(Values, 99.0);
  S.Mean = mean(Values);
  return S;
}

void RunningStat::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::vector<double>
compiler_gym::gaussianFilter1d(const std::vector<double> &Values,
                               double Sigma) {
  if (Values.empty() || Sigma <= 0.0)
    return Values;
  int Radius = static_cast<int>(std::ceil(3.0 * Sigma));
  std::vector<double> Kernel(2 * Radius + 1);
  double Norm = 0.0;
  for (int I = -Radius; I <= Radius; ++I) {
    double W = std::exp(-(I * I) / (2.0 * Sigma * Sigma));
    Kernel[I + Radius] = W;
    Norm += W;
  }
  for (double &W : Kernel)
    W /= Norm;

  int N = static_cast<int>(Values.size());
  std::vector<double> Out(Values.size());
  for (int I = 0; I < N; ++I) {
    double Acc = 0.0;
    for (int J = -Radius; J <= Radius; ++J) {
      int Idx = I + J;
      // Reflect at boundaries.
      if (Idx < 0)
        Idx = -Idx - 1;
      if (Idx >= N)
        Idx = 2 * N - Idx - 1;
      Idx = std::clamp(Idx, 0, N - 1);
      Acc += Values[Idx] * Kernel[J + Radius];
    }
    Out[I] = Acc;
  }
  return Out;
}

double compiler_gym::empiricalCdf(const std::vector<double> &SortedValues,
                                  double X) {
  if (SortedValues.empty())
    return 0.0;
  auto It = std::upper_bound(SortedValues.begin(), SortedValues.end(), X);
  return static_cast<double>(It - SortedValues.begin()) /
         static_cast<double>(SortedValues.size());
}
