//===- util/Stats.h - Summary statistics for benchmarking ------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Percentiles, means, geometric means, and a streaming accumulator — the
/// statistics the paper reports in Tables II-VII (p50/p99/mu wall times,
/// geomean reward ratios) plus the Gaussian smoothing filter used in Fig 9.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_UTIL_STATS_H
#define COMPILER_GYM_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace compiler_gym {

/// Interpolated percentile of \p Values; \p Pct in [0, 100]. Copies and
/// sorts internally; returns 0 for empty input.
double percentile(std::vector<double> Values, double Pct);

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double> &Values);

/// Population standard deviation; 0 for fewer than two values.
double stddev(const std::vector<double> &Values);

/// Geometric mean; values must be positive, 1.0 for empty input. Values that
/// are not positive are clamped to \p Floor to keep aggregate scores finite
/// (the paper's geomean speedups can include near-zero entries, e.g. the
/// PPO llvm-stress 0.097x cell).
double geomean(const std::vector<double> &Values, double Floor = 1e-6);

/// Fixed-width summary of a latency distribution.
struct LatencySummary {
  double P50 = 0.0;
  double P99 = 0.0;
  double Mean = 0.0;
  size_t Count = 0;
};

/// Computes p50/p99/mean in one pass over \p Values.
LatencySummary summarizeLatencies(const std::vector<double> &Values);

/// Streaming count/mean/min/max/variance accumulator (Welford).
class RunningStat {
public:
  void add(double X);
  size_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }
  double min() const { return N ? Min : 0.0; }
  double max() const { return N ? Max : 0.0; }
  double variance() const { return N > 1 ? M2 / static_cast<double>(N) : 0.0; }
  double stddev() const;

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// 1-D Gaussian filter with reflective boundaries (as used to smooth the
/// learning curves in the paper's Fig 9, sigma = 5).
std::vector<double> gaussianFilter1d(const std::vector<double> &Values,
                                     double Sigma);

/// Empirical CDF support: returns the fraction of \p Values <= \p X.
double empiricalCdf(const std::vector<double> &SortedValues, double X);

} // namespace compiler_gym

#endif // COMPILER_GYM_UTIL_STATS_H
