//===- util/Status.h - Error handling without exceptions -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Status and StatusOr<T>: lightweight recoverable-error types modeled on
/// LLVM's Error/Expected discipline (the project builds without exceptions
/// or RTTI in the hot paths). A Status is cheap to copy; StatusOr<T> holds
/// either a value or a failure Status.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_UTIL_STATUS_H
#define COMPILER_GYM_UTIL_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace compiler_gym {

/// Machine-readable failure category, mirroring the RPC status codes the
/// paper's gRPC service surface exposes.
enum class StatusCode {
  Ok = 0,
  InvalidArgument,
  NotFound,
  OutOfRange,
  Internal,
  DeadlineExceeded,
  Unavailable,     ///< Transient failure; the caller may retry.
  FailedPrecondition,
  Aborted,         ///< The backend session died (crash / kill).
};

/// Returns a stable human-readable name for \p Code.
const char *statusCodeName(StatusCode Code);

/// A success-or-failure result with a message. Statuses are ordinary values:
/// unlike llvm::Error they do not abort when dropped, but callers are
/// expected to check `ok()` before proceeding.
class Status {
public:
  /// Constructs a success status.
  Status() : Code(StatusCode::Ok) {}
  Status(StatusCode Code, std::string Message)
      : Code(Code), Message(std::move(Message)) {}

  static Status ok() { return Status(); }

  bool isOk() const { return Code == StatusCode::Ok; }
  explicit operator bool() const { return isOk(); }

  StatusCode code() const { return Code; }
  const std::string &message() const { return Message; }

  /// Renders "CODE: message" for logs and test assertions.
  std::string toString() const;

  bool operator==(const Status &Other) const {
    return Code == Other.Code && Message == Other.Message;
  }

private:
  StatusCode Code;
  std::string Message;
};

/// Convenience constructors for the common failure categories.
Status invalidArgument(std::string Message);
Status notFound(std::string Message);
Status outOfRange(std::string Message);
Status internalError(std::string Message);
Status deadlineExceeded(std::string Message);
Status unavailable(std::string Message);
Status failedPrecondition(std::string Message);
Status abortedError(std::string Message);

/// Either a value of type \p T or a failure Status. Accessing the value of a
/// failed StatusOr is a programmatic error (asserts).
template <typename T> class StatusOr {
public:
  /*implicit*/ StatusOr(T Value) : Value(std::move(Value)) {}
  /*implicit*/ StatusOr(Status S) : Failure(std::move(S)) {
    assert(!Failure.isOk() && "StatusOr constructed from OK status");
  }

  bool isOk() const { return Value.has_value(); }
  explicit operator bool() const { return isOk(); }

  const Status &status() const {
    static const Status OkStatus;
    return Value.has_value() ? OkStatus : Failure;
  }

  T &value() {
    assert(Value.has_value() && "value() on failed StatusOr");
    return *Value;
  }
  const T &value() const {
    assert(Value.has_value() && "value() on failed StatusOr");
    return *Value;
  }

  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  /// Moves the contained value out; the StatusOr must be in success state.
  T takeValue() {
    assert(Value.has_value() && "takeValue() on failed StatusOr");
    T Out = std::move(*Value);
    Value.reset();
    return Out;
  }

private:
  std::optional<T> Value;
  Status Failure;
};

/// Evaluates \p Expr (a Status expression) and returns it from the enclosing
/// function on failure.
#define CG_RETURN_IF_ERROR(Expr)                                              \
  do {                                                                        \
    ::compiler_gym::Status StatusTmp_ = (Expr);                               \
    if (!StatusTmp_.isOk())                                                   \
      return StatusTmp_;                                                      \
  } while (false)

#define CG_DETAIL_CONCAT_IMPL(A, B) A##B
#define CG_DETAIL_CONCAT(A, B) CG_DETAIL_CONCAT_IMPL(A, B)
#define CG_DETAIL_ASSIGN_OR_RETURN(Tmp, Lhs, Expr)                            \
  auto Tmp = (Expr);                                                          \
  if (!Tmp.isOk())                                                            \
    return Tmp.status();                                                      \
  Lhs = Tmp.takeValue()

/// Evaluates \p Expr (a StatusOr expression), propagating failure; on success
/// binds the value to \p Lhs.
#define CG_ASSIGN_OR_RETURN(Lhs, Expr)                                        \
  CG_DETAIL_ASSIGN_OR_RETURN(CG_DETAIL_CONCAT(StatusOrTmp_, __LINE__), Lhs,   \
                             Expr)

} // namespace compiler_gym

#endif // COMPILER_GYM_UTIL_STATUS_H
