//===- util/Status.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "util/Status.h"

using namespace compiler_gym;

const char *compiler_gym::statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "OK";
  case StatusCode::InvalidArgument:
    return "INVALID_ARGUMENT";
  case StatusCode::NotFound:
    return "NOT_FOUND";
  case StatusCode::OutOfRange:
    return "OUT_OF_RANGE";
  case StatusCode::Internal:
    return "INTERNAL";
  case StatusCode::DeadlineExceeded:
    return "DEADLINE_EXCEEDED";
  case StatusCode::Unavailable:
    return "UNAVAILABLE";
  case StatusCode::FailedPrecondition:
    return "FAILED_PRECONDITION";
  case StatusCode::Aborted:
    return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::toString() const {
  if (isOk())
    return "OK";
  return std::string(statusCodeName(Code)) + ": " + Message;
}

namespace compiler_gym {

Status invalidArgument(std::string Message) {
  return Status(StatusCode::InvalidArgument, std::move(Message));
}
Status notFound(std::string Message) {
  return Status(StatusCode::NotFound, std::move(Message));
}
Status outOfRange(std::string Message) {
  return Status(StatusCode::OutOfRange, std::move(Message));
}
Status internalError(std::string Message) {
  return Status(StatusCode::Internal, std::move(Message));
}
Status deadlineExceeded(std::string Message) {
  return Status(StatusCode::DeadlineExceeded, std::move(Message));
}
Status unavailable(std::string Message) {
  return Status(StatusCode::Unavailable, std::move(Message));
}
Status failedPrecondition(std::string Message) {
  return Status(StatusCode::FailedPrecondition, std::move(Message));
}
Status abortedError(std::string Message) {
  return Status(StatusCode::Aborted, std::move(Message));
}

} // namespace compiler_gym
