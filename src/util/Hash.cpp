//===- util/Hash.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "util/Hash.h"

#include <cstdio>

using namespace compiler_gym;

std::string StateHash::hex() const {
  char Buf[41];
  std::snprintf(Buf, sizeof(Buf), "%08x%08x%08x%08x%08x", Words[0], Words[1],
                Words[2], Words[3], Words[4]);
  return std::string(Buf, 40);
}

static bool hexNibble(char C, uint32_t &Out) {
  if (C >= '0' && C <= '9') {
    Out = static_cast<uint32_t>(C - '0');
    return true;
  }
  if (C >= 'a' && C <= 'f') {
    Out = static_cast<uint32_t>(C - 'a' + 10);
    return true;
  }
  if (C >= 'A' && C <= 'F') {
    Out = static_cast<uint32_t>(C - 'A' + 10);
    return true;
  }
  return false;
}

bool StateHash::fromHex(std::string_view Hex, StateHash &Out) {
  if (Hex.size() != 40)
    return false;
  for (int W = 0; W < 5; ++W) {
    uint32_t Word = 0;
    for (int I = 0; I < 8; ++I) {
      uint32_t Nibble;
      if (!hexNibble(Hex[W * 8 + I], Nibble))
        return false;
      Word = (Word << 4) | Nibble;
    }
    Out.Words[W] = Word;
  }
  return true;
}

uint64_t compiler_gym::fnv1a(std::string_view Bytes) {
  uint64_t H = 0xCBF29CE484222325ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 0x100000001B3ull;
  }
  return H;
}

uint64_t compiler_gym::hashCombine(uint64_t Seed, uint64_t Value) {
  // 64-bit variant of boost::hash_combine with a strong mixer.
  Seed ^= Value + 0x9E3779B97F4A7C15ull + (Seed << 12) + (Seed >> 4);
  Seed *= 0xFF51AFD7ED558CCDull;
  Seed ^= Seed >> 33;
  return Seed;
}

StateHash compiler_gym::hashBytes(std::string_view Bytes) {
  // Five independently-seeded FNV lanes, finalized with avalanche mixing.
  static const uint64_t Seeds[5] = {
      0x243F6A8885A308D3ull, 0x13198A2E03707344ull, 0xA4093822299F31D0ull,
      0x082EFA98EC4E6C89ull, 0x452821E638D01377ull};
  StateHash Out;
  for (int Lane = 0; Lane < 5; ++Lane) {
    uint64_t H = Seeds[Lane];
    for (unsigned char C : Bytes) {
      H ^= C;
      H *= 0x100000001B3ull;
      H ^= H >> 29;
    }
    H = hashCombine(H, Bytes.size());
    Out.Words[Lane] = static_cast<uint32_t>(H ^ (H >> 32));
  }
  return Out;
}
