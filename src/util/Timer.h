//===- util/Timer.h - Wall-clock timing -------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stopwatch and scoped timing helpers used by the Table II/III latency
/// measurements and by the service runtime's operation deadlines.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_UTIL_TIMER_H
#define COMPILER_GYM_UTIL_TIMER_H

#include <chrono>
#include <vector>

namespace compiler_gym {

/// Monotonic stopwatch reporting elapsed milliseconds.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  void restart() { Start = Clock::now(); }

  /// Elapsed milliseconds since construction or last restart().
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

  /// Elapsed microseconds.
  double elapsedUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - Start)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Appends the scope's elapsed milliseconds to a sample vector on
/// destruction. Used to collect latency distributions.
class ScopedLatencySample {
public:
  explicit ScopedLatencySample(std::vector<double> &Sink) : Sink(Sink) {}
  ~ScopedLatencySample() { Sink.push_back(Watch.elapsedMs()); }

  ScopedLatencySample(const ScopedLatencySample &) = delete;
  ScopedLatencySample &operator=(const ScopedLatencySample &) = delete;

private:
  std::vector<double> &Sink;
  Stopwatch Watch;
};

} // namespace compiler_gym

#endif // COMPILER_GYM_UTIL_TIMER_H
