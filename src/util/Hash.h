//===- util/Hash.h - 160-bit state hashing ----------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// StateHash: a 160-bit digest used wherever the paper uses SHA1 (state
/// identity in the State Transition Dataset, replay validation, and
/// reproducibility checks on compiler passes). The digest is a five-lane
/// seeded FNV/mix construction: not cryptographic, but stable across runs
/// and with negligible collision odds at our scale.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_UTIL_HASH_H
#define COMPILER_GYM_UTIL_HASH_H

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace compiler_gym {

/// A 160-bit digest that plays the role of the paper's SHA1 state_id.
struct StateHash {
  std::array<uint32_t, 5> Words = {0, 0, 0, 0, 0};

  bool operator==(const StateHash &Other) const = default;
  bool operator<(const StateHash &Other) const { return Words < Other.Words; }

  /// 40-char lowercase hex rendering.
  std::string hex() const;

  /// Parses a 40-char hex digest; returns false on malformed input.
  static bool fromHex(std::string_view Hex, StateHash &Out);

  /// Truncation to 64 bits for use as a map key.
  uint64_t low64() const {
    return (static_cast<uint64_t>(Words[0]) << 32) | Words[1];
  }
};

/// Digests an arbitrary byte string.
StateHash hashBytes(std::string_view Bytes);

/// Combines two 64-bit hashes (boost-style).
uint64_t hashCombine(uint64_t Seed, uint64_t Value);

/// FNV-1a over a byte string, for cheap 64-bit keys.
uint64_t fnv1a(std::string_view Bytes);

} // namespace compiler_gym

template <> struct std::hash<compiler_gym::StateHash> {
  size_t operator()(const compiler_gym::StateHash &H) const noexcept {
    return static_cast<size_t>(H.low64());
  }
};

#endif // COMPILER_GYM_UTIL_HASH_H
