//===- util/Logging.h - Minimal leveled logging -----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny leveled logger. Defaults to warnings-and-above on stderr so that
/// test and bench output stays clean; the service runtime logs recoverable
/// faults (retries, restarts) at Info.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_UTIL_LOGGING_H
#define COMPILER_GYM_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace compiler_gym {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that is emitted.
void setLogLevel(LogLevel Level);
LogLevel logLevel();

/// Emits a single log line (thread-safe) if \p Level passes the filter.
void logMessage(LogLevel Level, const std::string &Message);

namespace detail {
/// Stream-style builder that emits on destruction.
class LogLine {
public:
  explicit LogLine(LogLevel Level) : Level(Level) {}
  ~LogLine() { logMessage(Level, Buffer.str()); }
  template <typename T> LogLine &operator<<(const T &V) {
    Buffer << V;
    return *this;
  }

private:
  LogLevel Level;
  std::ostringstream Buffer;
};
} // namespace detail

} // namespace compiler_gym

#define CG_LOG_DEBUG ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Debug)
#define CG_LOG_INFO ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Info)
#define CG_LOG_WARN ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Warning)
#define CG_LOG_ERROR ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Error)

#endif // COMPILER_GYM_UTIL_LOGGING_H
