//===- util/Logging.h - Minimal leveled logging -----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny leveled logger. Defaults to warnings-and-above on stderr so that
/// test and bench output stays clean; the service runtime logs recoverable
/// faults (retries, restarts) at Info.
///
/// Correlation: the CG_LOG_*_FOR macros tag a line with the emitting
/// component and a session/env/shard id, and every line appends the
/// thread's active trace id (when telemetry/Trace.h has installed its
/// provider), so log lines join up with exported trace spans:
///
///   [compiler_gym INFO env id=3 trace=0x1f2] replaying 7 actions
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_UTIL_LOGGING_H
#define COMPILER_GYM_UTIL_LOGGING_H

#include <cstdint>
#include <sstream>
#include <string>

namespace compiler_gym {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that is emitted.
void setLogLevel(LogLevel Level);
LogLevel logLevel();

/// Emits a single log line (thread-safe) if \p Level passes the filter.
void logMessage(LogLevel Level, const std::string &Message);

/// Tagged form: \p Component names the emitting subsystem ("env",
/// "broker", "service", ...) and \p Id carries a session/env/shard id
/// (0 = no id, omitted from the line).
void logMessage(LogLevel Level, const char *Component, uint64_t Id,
                const std::string &Message);

/// Hook returning the calling thread's active trace id (0 = none).
/// Installed by the telemetry layer; util/ stays dependency-free.
using LogTraceIdProvider = uint64_t (*)();
void setLogTraceIdProvider(LogTraceIdProvider Provider);

/// Builds the formatted line (sans trailing newline) exactly as it would
/// be emitted. Exposed for tests of the tagging format.
std::string formatLogLine(LogLevel Level, const char *Component, uint64_t Id,
                          uint64_t TraceId, const std::string &Message);

namespace detail {
/// Stream-style builder that emits on destruction.
class LogLine {
public:
  explicit LogLine(LogLevel Level, const char *Component = nullptr,
                   uint64_t Id = 0)
      : Level(Level), Component(Component), Id(Id) {}
  ~LogLine() { logMessage(Level, Component, Id, Buffer.str()); }
  template <typename T> LogLine &operator<<(const T &V) {
    Buffer << V;
    return *this;
  }

private:
  LogLevel Level;
  const char *Component;
  uint64_t Id;
  std::ostringstream Buffer;
};
} // namespace detail

} // namespace compiler_gym

#define CG_LOG_DEBUG ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Debug)
#define CG_LOG_INFO ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Info)
#define CG_LOG_WARN ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Warning)
#define CG_LOG_ERROR ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Error)

/// Component/id-tagged variants: CG_LOG_INFO_FOR("env", SessionId) << ...
#define CG_LOG_DEBUG_FOR(Component, Id)                                       \
  ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Debug,            \
                                  (Component), (Id))
#define CG_LOG_INFO_FOR(Component, Id)                                        \
  ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Info,             \
                                  (Component), (Id))
#define CG_LOG_WARN_FOR(Component, Id)                                        \
  ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Warning,          \
                                  (Component), (Id))
#define CG_LOG_ERROR_FOR(Component, Id)                                       \
  ::compiler_gym::detail::LogLine(::compiler_gym::LogLevel::Error,            \
                                  (Component), (Id))

#endif // COMPILER_GYM_UTIL_LOGGING_H
