//===- util/Logging.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "util/Logging.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <mutex>

using namespace compiler_gym;

static std::atomic<int> GlobalLevel{static_cast<int>(LogLevel::Warning)};
static std::mutex LogMutex;
static std::atomic<LogTraceIdProvider> TraceIdProvider{nullptr};

void compiler_gym::setLogLevel(LogLevel Level) {
  GlobalLevel.store(static_cast<int>(Level), std::memory_order_relaxed);
}

LogLevel compiler_gym::logLevel() {
  return static_cast<LogLevel>(GlobalLevel.load(std::memory_order_relaxed));
}

void compiler_gym::setLogTraceIdProvider(LogTraceIdProvider Provider) {
  TraceIdProvider.store(Provider, std::memory_order_relaxed);
}

static const char *levelName(LogLevel Level) {
  switch (Level) {
  case LogLevel::Debug:
    return "DEBUG";
  case LogLevel::Info:
    return "INFO";
  case LogLevel::Warning:
    return "WARN";
  case LogLevel::Error:
    return "ERROR";
  case LogLevel::Off:
    return "OFF";
  }
  return "?";
}

std::string compiler_gym::formatLogLine(LogLevel Level, const char *Component,
                                        uint64_t Id, uint64_t TraceId,
                                        const std::string &Message) {
  std::string Line = "[compiler_gym ";
  Line += levelName(Level);
  if (Component) {
    Line += ' ';
    Line += Component;
  }
  char Buf[48];
  if (Id) {
    std::snprintf(Buf, sizeof(Buf), " id=%" PRIu64, Id);
    Line += Buf;
  }
  if (TraceId) {
    std::snprintf(Buf, sizeof(Buf), " trace=0x%" PRIx64, TraceId);
    Line += Buf;
  }
  Line += "] ";
  Line += Message;
  return Line;
}

void compiler_gym::logMessage(LogLevel Level, const char *Component,
                              uint64_t Id, const std::string &Message) {
  if (static_cast<int>(Level) < GlobalLevel.load(std::memory_order_relaxed))
    return;
  uint64_t TraceId = 0;
  if (LogTraceIdProvider P = TraceIdProvider.load(std::memory_order_relaxed))
    TraceId = P();
  std::string Line = formatLogLine(Level, Component, Id, TraceId, Message);
  std::lock_guard<std::mutex> Lock(LogMutex);
  std::fprintf(stderr, "%s\n", Line.c_str());
}

void compiler_gym::logMessage(LogLevel Level, const std::string &Message) {
  logMessage(Level, nullptr, 0, Message);
}
