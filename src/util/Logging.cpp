//===- util/Logging.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "util/Logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

using namespace compiler_gym;

static std::atomic<int> GlobalLevel{static_cast<int>(LogLevel::Warning)};
static std::mutex LogMutex;

void compiler_gym::setLogLevel(LogLevel Level) {
  GlobalLevel.store(static_cast<int>(Level), std::memory_order_relaxed);
}

LogLevel compiler_gym::logLevel() {
  return static_cast<LogLevel>(GlobalLevel.load(std::memory_order_relaxed));
}

static const char *levelName(LogLevel Level) {
  switch (Level) {
  case LogLevel::Debug:
    return "DEBUG";
  case LogLevel::Info:
    return "INFO";
  case LogLevel::Warning:
    return "WARN";
  case LogLevel::Error:
    return "ERROR";
  case LogLevel::Off:
    return "OFF";
  }
  return "?";
}

void compiler_gym::logMessage(LogLevel Level, const std::string &Message) {
  if (static_cast<int>(Level) < GlobalLevel.load(std::memory_order_relaxed))
    return;
  std::lock_guard<std::mutex> Lock(LogMutex);
  std::fprintf(stderr, "[compiler_gym %s] %s\n", levelName(Level),
               Message.c_str());
}
