//===- util/Rng.h - Deterministic pseudo-random numbers ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic RNG (xoshiro256**, seeded via splitmix64).
/// Every stochastic component of the library (program generators, runtime
/// noise models, search algorithms, RL) takes an explicit Rng so experiments
/// replay bit-for-bit from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_UTIL_RNG_H
#define COMPILER_GYM_UTIL_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace compiler_gym {

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
public:
  using result_type = uint64_t;

  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64.
  void reseed(uint64_t Seed);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }

  uint64_t operator()() { return next(); }

  /// Next raw 64-bit output.
  uint64_t next();

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t bounded(uint64_t Bound);

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Standard normal via Box-Muller.
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double Mean, double Stddev) {
    return Mean + Stddev * gaussian();
  }

  /// Bernoulli draw with probability \p P of returning true.
  bool chance(double P) { return uniform() < P; }

  /// Picks a uniformly random element of \p Items (must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick() from empty vector");
    return Items[bounded(Items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[bounded(I)]);
  }

  /// Samples an index according to the (non-negative, not necessarily
  /// normalized) weights. Returns Weights.size()-1 on total weight ~ 0.
  size_t weightedIndex(const std::vector<double> &Weights);

  /// Derives an independent child generator (useful for per-thread streams).
  Rng split() { return Rng(next() ^ 0xA3C59AC2EB0AA5D7ull); }

private:
  uint64_t State[4];
  bool HasSpareGaussian = false;
  double SpareGaussian = 0.0;
};

} // namespace compiler_gym

#endif // COMPILER_GYM_UTIL_RNG_H
