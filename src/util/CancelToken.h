//===- util/CancelToken.h - Cooperative cancellation ------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative cancellation token threaded from the RPC boundary down into
/// pass execution. A token aggregates three independent stop signals:
///
///   - an explicit cancel() flag (tests, shutdown paths),
///   - an absolute deadline armed from the request's remaining budget
///     (RequestEnvelope::DeadlineMs), and
///   - an external abort flag owned by someone else (the broker watchdog
///     poisons a wedged CompilerService through its AbortRequested atomic).
///
/// Long-running work polls the token between natural units of progress
/// (between passes, between functions inside a FunctionPass, between chunks
/// of an injected delay). Every poll() optionally bumps a progress-tick
/// counter, so the same polls that make cancellation prompt also feed the
/// hung-shard watchdog's liveness heartbeat: code that polls can be
/// cancelled by deadline and never needs a force-restart; code that cannot
/// poll is exactly what the watchdog exists for.
///
/// Tokens are stack-allocated per request and passed down as a nullable
/// `const CancelToken *`; a null pointer (or a token with no signal armed)
/// makes every check a cheap early-out so the fault-free fast path pays at
/// most a relaxed atomic load per poll site.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_UTIL_CANCELTOKEN_H
#define COMPILER_GYM_UTIL_CANCELTOKEN_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>

namespace compiler_gym {
namespace util {

class CancelToken {
  using Clock = std::chrono::steady_clock;

public:
  CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Arms an absolute deadline \p BudgetMs from now (remaining-budget form,
  /// matching RequestEnvelope::DeadlineMs).
  void armDeadlineMs(uint32_t BudgetMs) {
    Deadline = Clock::now() + std::chrono::milliseconds(BudgetMs);
    HasDeadline = true;
  }

  /// Attaches an externally owned abort flag (e.g. the service's
  /// watchdog-poisoned AbortRequested atomic). The flag must outlive the
  /// token.
  void watchAbortFlag(const std::atomic<bool> *Flag) { Abort = Flag; }

  /// Attaches a progress-tick counter bumped once per poll(); the broker
  /// watchdog reads it to distinguish "slow but alive" from "wedged".
  void attachProgressCounter(std::atomic<uint64_t> *Ticks) { Progress = Ticks; }

  /// Requests cancellation explicitly.
  void cancel() { Cancelled.store(true, std::memory_order_relaxed); }

  /// True when any stop signal is armed; lets hot paths skip clock reads
  /// entirely when the request carried no deadline.
  bool armed() const {
    return HasDeadline || Abort != nullptr ||
           Cancelled.load(std::memory_order_relaxed);
  }

  /// The liveness-proving cancellation check: bumps the progress counter
  /// (if attached) and returns true when the work should stop.
  bool poll() const {
    if (Progress)
      Progress->fetch_add(1, std::memory_order_relaxed);
    if (Cancelled.load(std::memory_order_relaxed))
      return true;
    if (Abort && Abort->load(std::memory_order_relaxed))
      return true;
    return HasDeadline && Clock::now() >= Deadline;
  }

  /// True when the armed deadline has passed (ignores flag signals).
  bool expired() const { return HasDeadline && Clock::now() >= Deadline; }

  /// True when the external abort flag (watchdog poisoning) fired.
  bool aborted() const {
    return (Abort && Abort->load(std::memory_order_relaxed)) ||
           Cancelled.load(std::memory_order_relaxed);
  }

  /// Milliseconds of budget left, clamped at zero; max() when no deadline
  /// is armed.
  int64_t remainingMs() const {
    if (!HasDeadline)
      return std::numeric_limits<int64_t>::max();
    auto Rem = std::chrono::duration_cast<std::chrono::milliseconds>(
                   Deadline - Clock::now())
                   .count();
    return Rem < 0 ? 0 : Rem;
  }

private:
  std::atomic<bool> Cancelled{false};
  const std::atomic<bool> *Abort = nullptr;
  std::atomic<uint64_t> *Progress = nullptr;
  Clock::time_point Deadline{};
  bool HasDeadline = false;
};

/// Sleeps up to \p TotalMs, polling \p Tok every \p PollIntervalMs so an
/// armed token interrupts the sleep within one poll interval (the "no
/// deadline overshoot beyond one poll interval" invariant). A null or
/// unarmed token degrades to a single uninterruptible sleep. Returns true
/// if the sleep was cut short by cancellation.
inline bool cancellableSleepMs(const CancelToken *Tok, int TotalMs,
                               int PollIntervalMs = 5) {
  if (TotalMs <= 0)
    return Tok && Tok->poll();
  if (!Tok || !Tok->armed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(TotalMs));
    return false;
  }
  int Slept = 0;
  while (Slept < TotalMs) {
    if (Tok->poll())
      return true;
    int Chunk = std::min(PollIntervalMs, TotalMs - Slept);
    std::this_thread::sleep_for(std::chrono::milliseconds(Chunk));
    Slept += Chunk;
  }
  return Tok->poll();
}

} // namespace util
} // namespace compiler_gym

#endif // COMPILER_GYM_UTIL_CANCELTOKEN_H
