//===- util/ThreadPool.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "util/ThreadPool.h"

#include <cassert>

using namespace compiler_gym;

ThreadPool::ThreadPool(size_t NumThreads) {
  assert(NumThreads > 0 && "thread pool needs at least one worker");
  Workers.reserve(NumThreads);
  for (size_t I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Ready.notify_all();
  for (auto &W : Workers)
    W.join();
}

std::future<void> ThreadPool::submit(std::function<void()> Job) {
  std::packaged_task<void()> Task(std::move(Job));
  std::future<void> Result = Task.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  Ready.notify_one();
  return Result;
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Queue.empty() && ActiveJobs == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::packaged_task<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Ready.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Stopping && Queue.empty())
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++ActiveJobs;
    }
    Task();
    // Release the job's captures before declaring it done: a waiter may own
    // resources (e.g. this pool, transitively) through shared_ptrs held in
    // the closure, and wait() returning must guarantee those references are
    // gone — otherwise the last release can happen on this worker thread
    // and a destructor ends up joining it.
    Task = std::packaged_task<void()>();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --ActiveJobs;
      if (Queue.empty() && ActiveJobs == 0)
        Idle.notify_all();
    }
  }
}
