//===- util/StringUtils.h - Small string helpers ----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Split/join/trim helpers used by the IR parser, benchmark URIs, and the
/// command-line example tools. Header-only.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_UTIL_STRINGUTILS_H
#define COMPILER_GYM_UTIL_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace compiler_gym {

/// Splits \p Text on \p Sep. Keeps empty fields.
inline std::vector<std::string> splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Out.emplace_back(Text.substr(Start));
      return Out;
    }
    Out.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

/// Joins \p Parts with \p Sep.
inline std::string joinStrings(const std::vector<std::string> &Parts,
                               std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

/// Strips leading and trailing whitespace.
inline std::string_view trimString(std::string_view Text) {
  size_t Begin = Text.find_first_not_of(" \t\r\n");
  if (Begin == std::string_view::npos)
    return {};
  size_t End = Text.find_last_not_of(" \t\r\n");
  return Text.substr(Begin, End - Begin + 1);
}

} // namespace compiler_gym

#endif // COMPILER_GYM_UTIL_STRINGUTILS_H
