//===- service/Serialization.cpp ------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Serialization.h"

#include <cstring>

using namespace compiler_gym;
using namespace compiler_gym::service;

namespace {

/// Append-only little-endian writer.
class Writer {
public:
  void u32(uint32_t V) { raw(&V, 4); }
  void u64(uint64_t V) { raw(&V, 8); }
  void i64(int64_t V) { raw(&V, 8); }
  void f64(double V) { raw(&V, 8); }
  void b(bool V) { u32(V ? 1 : 0); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S);
  }
  void i64s(const std::vector<int64_t> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (int64_t X : V)
      i64(X);
  }
  void f64s(const std::vector<double> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (double X : V)
      f64(X);
  }
  void strs(const std::vector<std::string> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (const std::string &S : V)
      str(S);
  }
  std::string take() { return std::move(Out); }

private:
  void raw(const void *P, size_t N) {
    Out.append(static_cast<const char *>(P), N);
  }
  std::string Out;
};

/// Bounds-checked reader. Every accessor returns false on truncation.
class Reader {
public:
  explicit Reader(const std::string &In) : In(In) {}

  bool u32(uint32_t &V) { return raw(&V, 4); }
  bool u64(uint64_t &V) { return raw(&V, 8); }
  bool i64(int64_t &V) { return raw(&V, 8); }
  bool f64(double &V) { return raw(&V, 8); }
  bool b(bool &V) {
    uint32_t U;
    if (!u32(U))
      return false;
    V = U != 0;
    return true;
  }
  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || Cursor + N > In.size())
      return false;
    S.assign(In, Cursor, N);
    Cursor += N;
    return true;
  }
  bool i64s(std::vector<int64_t> &V) {
    uint32_t N;
    if (!u32(N) || Cursor + static_cast<size_t>(N) * 8 > In.size())
      return false;
    V.resize(N);
    for (auto &X : V)
      if (!i64(X))
        return false;
    return true;
  }
  bool f64s(std::vector<double> &V) {
    uint32_t N;
    if (!u32(N) || Cursor + static_cast<size_t>(N) * 8 > In.size())
      return false;
    V.resize(N);
    for (auto &X : V)
      if (!f64(X))
        return false;
    return true;
  }
  bool strs(std::vector<std::string> &V) {
    uint32_t N;
    if (!u32(N) || N > In.size()) // Each string needs >= 4 bytes of header.
      return false;
    V.resize(N);
    for (auto &S : V)
      if (!str(S))
        return false;
    return true;
  }
  bool done() const { return Cursor == In.size(); }

private:
  bool raw(void *P, size_t N) {
    if (Cursor + N > In.size())
      return false;
    std::memcpy(P, In.data() + Cursor, N);
    Cursor += N;
    return true;
  }
  const std::string &In;
  size_t Cursor = 0;
};

// -- Component encoders -------------------------------------------------------

void putBenchmark(Writer &W, const datasets::Benchmark &B) {
  W.str(B.Uri);
  W.str(B.IrText);
  W.b(B.Runnable);
  W.i64s(B.Inputs);
}

bool getBenchmark(Reader &R, datasets::Benchmark &B) {
  return R.str(B.Uri) && R.str(B.IrText) && R.b(B.Runnable) &&
         R.i64s(B.Inputs);
}

void putActionSpace(Writer &W, const ActionSpace &S) {
  W.str(S.Name);
  W.strs(S.ActionNames);
}

bool getActionSpace(Reader &R, ActionSpace &S) {
  return R.str(S.Name) && R.strs(S.ActionNames);
}

void putObsInfo(Writer &W, const ObservationSpaceInfo &O) {
  W.str(O.Name);
  W.u32(static_cast<uint32_t>(O.Type));
  W.i64s(O.Shape);
  W.f64(O.RangeMin);
  W.f64(O.RangeMax);
  W.b(O.Deterministic);
  W.b(O.PlatformDependent);
}

bool getObsInfo(Reader &R, ObservationSpaceInfo &O) {
  uint32_t Ty;
  if (!R.str(O.Name) || !R.u32(Ty) || !R.i64s(O.Shape) ||
      !R.f64(O.RangeMin) || !R.f64(O.RangeMax) || !R.b(O.Deterministic) ||
      !R.b(O.PlatformDependent))
    return false;
  if (Ty > static_cast<uint32_t>(ObservationType::DoubleValue))
    return false;
  O.Type = static_cast<ObservationType>(Ty);
  return true;
}

void putObservation(Writer &W, const Observation &O) {
  W.u32(static_cast<uint32_t>(O.Type));
  W.i64s(O.Ints);
  W.f64s(O.Doubles);
  W.str(O.Str);
  W.i64(O.IntValue);
  W.f64(O.DoubleValue);
}

bool getObservation(Reader &R, Observation &O) {
  uint32_t Ty;
  if (!R.u32(Ty) || Ty > static_cast<uint32_t>(ObservationType::DoubleValue))
    return false;
  O.Type = static_cast<ObservationType>(Ty);
  return R.i64s(O.Ints) && R.f64s(O.Doubles) && R.str(O.Str) &&
         R.i64(O.IntValue) && R.f64(O.DoubleValue);
}

void putAction(Writer &W, const Action &A) {
  W.u32(static_cast<uint32_t>(A.Index));
  W.i64s(A.Values);
}

bool getAction(Reader &R, Action &A) {
  uint32_t Idx;
  if (!R.u32(Idx))
    return false;
  A.Index = static_cast<int32_t>(Idx);
  return R.i64s(A.Values);
}

} // namespace

std::string service::encodeRequest(const RequestEnvelope &Req) {
  Writer W;
  W.u32(static_cast<uint32_t>(Req.Kind));
  W.u64(Req.RequestId);
  switch (Req.Kind) {
  case RequestKind::StartSession:
    W.str(Req.Start.CompilerName);
    putBenchmark(W, Req.Start.Bench);
    W.str(Req.Start.ActionSpaceName);
    break;
  case RequestKind::EndSession:
    W.u64(Req.End.SessionId);
    break;
  case RequestKind::Step: {
    W.u64(Req.Step.SessionId);
    W.u32(static_cast<uint32_t>(Req.Step.Actions.size()));
    for (const Action &A : Req.Step.Actions)
      putAction(W, A);
    W.strs(Req.Step.ObservationSpaces);
    break;
  }
  case RequestKind::Fork:
    W.u64(Req.Fork.SessionId);
    break;
  case RequestKind::Heartbeat:
    break;
  }
  return W.take();
}

StatusOr<RequestEnvelope> service::decodeRequest(const std::string &Bytes) {
  Reader R(Bytes);
  RequestEnvelope Req;
  uint32_t Kind;
  if (!R.u32(Kind) || Kind < 1 ||
      Kind > static_cast<uint32_t>(RequestKind::Heartbeat))
    return invalidArgument("malformed request envelope");
  Req.Kind = static_cast<RequestKind>(Kind);
  if (!R.u64(Req.RequestId))
    return invalidArgument("malformed request envelope");
  bool Ok = true;
  switch (Req.Kind) {
  case RequestKind::StartSession:
    Ok = R.str(Req.Start.CompilerName) && getBenchmark(R, Req.Start.Bench) &&
         R.str(Req.Start.ActionSpaceName);
    break;
  case RequestKind::EndSession:
    Ok = R.u64(Req.End.SessionId);
    break;
  case RequestKind::Step: {
    uint32_t NumActions;
    Ok = R.u64(Req.Step.SessionId) && R.u32(NumActions) &&
         NumActions <= Bytes.size();
    if (Ok) {
      Req.Step.Actions.resize(NumActions);
      for (Action &A : Req.Step.Actions)
        Ok = Ok && getAction(R, A);
      Ok = Ok && R.strs(Req.Step.ObservationSpaces);
    }
    break;
  }
  case RequestKind::Fork:
    Ok = R.u64(Req.Fork.SessionId);
    break;
  case RequestKind::Heartbeat:
    break;
  }
  if (!Ok || !R.done())
    return invalidArgument("truncated or trailing request bytes");
  return Req;
}

std::string service::encodeReply(const ReplyEnvelope &Reply) {
  Writer W;
  W.u32(static_cast<uint32_t>(Reply.Code));
  W.str(Reply.ErrorMessage);
  // Start.
  W.u64(Reply.Start.SessionId);
  putActionSpace(W, Reply.Start.Space);
  W.u32(static_cast<uint32_t>(Reply.Start.ObservationSpaces.size()));
  for (const auto &O : Reply.Start.ObservationSpaces)
    putObsInfo(W, O);
  // Step.
  W.b(Reply.Step.EndOfSession);
  W.b(Reply.Step.ActionSpaceChanged);
  putActionSpace(W, Reply.Step.NewSpace);
  W.strs(Reply.Step.ObservationNames);
  W.u32(static_cast<uint32_t>(Reply.Step.Observations.size()));
  for (const auto &O : Reply.Step.Observations)
    putObservation(W, O);
  // Fork.
  W.u64(Reply.Fork.SessionId);
  return W.take();
}

StatusOr<ReplyEnvelope> service::decodeReply(const std::string &Bytes) {
  Reader R(Bytes);
  ReplyEnvelope Reply;
  uint32_t Code;
  if (!R.u32(Code) ||
      Code > static_cast<uint32_t>(StatusCode::Aborted))
    return invalidArgument("malformed reply envelope");
  Reply.Code = static_cast<StatusCode>(Code);
  if (!R.str(Reply.ErrorMessage))
    return invalidArgument("truncated reply");

  uint32_t NumObsInfos;
  bool Ok = R.u64(Reply.Start.SessionId) &&
            getActionSpace(R, Reply.Start.Space) && R.u32(NumObsInfos) &&
            NumObsInfos <= Bytes.size();
  if (Ok) {
    Reply.Start.ObservationSpaces.resize(NumObsInfos);
    for (auto &O : Reply.Start.ObservationSpaces)
      Ok = Ok && getObsInfo(R, O);
  }
  uint32_t NumObs = 0;
  Ok = Ok && R.b(Reply.Step.EndOfSession) &&
       R.b(Reply.Step.ActionSpaceChanged) &&
       getActionSpace(R, Reply.Step.NewSpace) &&
       R.strs(Reply.Step.ObservationNames) && R.u32(NumObs) &&
       NumObs <= Bytes.size();
  if (Ok) {
    Reply.Step.Observations.resize(NumObs);
    for (auto &O : Reply.Step.Observations)
      Ok = Ok && getObservation(R, O);
  }
  Ok = Ok && R.u64(Reply.Fork.SessionId);
  if (!Ok || !R.done())
    return invalidArgument("truncated or trailing reply bytes");
  return Reply;
}
