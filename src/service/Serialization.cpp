//===- service/Serialization.cpp ------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Serialization.h"

#include <cstring>

using namespace compiler_gym;
using namespace compiler_gym::service;

namespace {

/// Append-only little-endian writer.
class Writer {
public:
  void u32(uint32_t V) { raw(&V, 4); }
  void u64(uint64_t V) { raw(&V, 8); }
  void i64(int64_t V) { raw(&V, 8); }
  void f64(double V) { raw(&V, 8); }
  void b(bool V) { u32(V ? 1 : 0); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S);
  }
  void i64s(const std::vector<int64_t> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (int64_t X : V)
      i64(X);
  }
  void u64s(const std::vector<uint64_t> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (uint64_t X : V)
      u64(X);
  }
  void f64s(const std::vector<double> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (double X : V)
      f64(X);
  }
  void strs(const std::vector<std::string> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (const std::string &S : V)
      str(S);
  }
  std::string take() { return std::move(Out); }

private:
  void raw(const void *P, size_t N) {
    Out.append(static_cast<const char *>(P), N);
  }
  std::string Out;
};

/// Bounds-checked reader. Every accessor returns false on truncation.
class Reader {
public:
  explicit Reader(const std::string &In) : In(In) {}

  bool u32(uint32_t &V) { return raw(&V, 4); }
  bool u64(uint64_t &V) { return raw(&V, 8); }
  bool i64(int64_t &V) { return raw(&V, 8); }
  bool f64(double &V) { return raw(&V, 8); }
  bool b(bool &V) {
    uint32_t U;
    if (!u32(U))
      return false;
    V = U != 0;
    return true;
  }
  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || Cursor + N > In.size())
      return false;
    S.assign(In, Cursor, N);
    Cursor += N;
    return true;
  }
  bool i64s(std::vector<int64_t> &V) {
    uint32_t N;
    if (!u32(N) || Cursor + static_cast<size_t>(N) * 8 > In.size())
      return false;
    V.resize(N);
    for (auto &X : V)
      if (!i64(X))
        return false;
    return true;
  }
  bool u64s(std::vector<uint64_t> &V) {
    uint32_t N;
    if (!u32(N) || Cursor + static_cast<size_t>(N) * 8 > In.size())
      return false;
    V.resize(N);
    for (auto &X : V)
      if (!u64(X))
        return false;
    return true;
  }
  bool f64s(std::vector<double> &V) {
    uint32_t N;
    if (!u32(N) || Cursor + static_cast<size_t>(N) * 8 > In.size())
      return false;
    V.resize(N);
    for (auto &X : V)
      if (!f64(X))
        return false;
    return true;
  }
  bool strs(std::vector<std::string> &V) {
    uint32_t N;
    if (!u32(N) || N > In.size()) // Each string needs >= 4 bytes of header.
      return false;
    V.resize(N);
    for (auto &S : V)
      if (!str(S))
        return false;
    return true;
  }
  bool done() const { return Cursor == In.size(); }

private:
  bool raw(void *P, size_t N) {
    if (Cursor + N > In.size())
      return false;
    std::memcpy(P, In.data() + Cursor, N);
    Cursor += N;
    return true;
  }
  const std::string &In;
  size_t Cursor = 0;
};

// -- Component encoders -------------------------------------------------------

void putBenchmark(Writer &W, const datasets::Benchmark &B) {
  W.str(B.Uri);
  W.str(B.IrText);
  W.b(B.Runnable);
  W.i64s(B.Inputs);
}

bool getBenchmark(Reader &R, datasets::Benchmark &B) {
  return R.str(B.Uri) && R.str(B.IrText) && R.b(B.Runnable) &&
         R.i64s(B.Inputs);
}

void putActionSpace(Writer &W, const ActionSpace &S) {
  W.str(S.Name);
  W.strs(S.ActionNames);
}

bool getActionSpace(Reader &R, ActionSpace &S) {
  return R.str(S.Name) && R.strs(S.ActionNames);
}

void putObsInfo(Writer &W, const ObservationSpaceInfo &O) {
  W.str(O.Name);
  W.u32(static_cast<uint32_t>(O.Type));
  W.i64s(O.Shape);
  W.f64(O.RangeMin);
  W.f64(O.RangeMax);
  W.b(O.Deterministic);
  W.b(O.PlatformDependent);
}

bool getObsInfo(Reader &R, ObservationSpaceInfo &O) {
  uint32_t Ty;
  if (!R.str(O.Name) || !R.u32(Ty) || !R.i64s(O.Shape) ||
      !R.f64(O.RangeMin) || !R.f64(O.RangeMax) || !R.b(O.Deterministic) ||
      !R.b(O.PlatformDependent))
    return false;
  if (Ty > static_cast<uint32_t>(ObservationType::DoubleValue))
    return false;
  O.Type = static_cast<ObservationType>(Ty);
  return true;
}

void putSegment(Writer &W, const ObservationSegment &S) {
  W.u64(S.Start);
  W.u64(S.DropCount);
  W.i64s(S.Ints);
  W.f64s(S.Doubles);
  W.str(S.Str);
}

bool getSegment(Reader &R, ObservationSegment &S) {
  return R.u64(S.Start) && R.u64(S.DropCount) && R.i64s(S.Ints) &&
         R.f64s(S.Doubles) && R.str(S.Str);
}

void putObservation(Writer &W, const Observation &O) {
  W.u32(static_cast<uint32_t>(O.Type));
  W.i64s(O.Ints);
  W.f64s(O.Doubles);
  W.str(O.Str);
  W.i64(O.IntValue);
  W.f64(O.DoubleValue);
  W.u64(O.StateKey);
  W.b(O.IsDelta);
  W.u64(O.BaseKey);
  W.u32(static_cast<uint32_t>(O.Segments.size()));
  for (const ObservationSegment &S : O.Segments)
    putSegment(W, S);
}

bool getObservation(Reader &R, Observation &O, size_t WireSize) {
  uint32_t Ty;
  if (!R.u32(Ty) || Ty > static_cast<uint32_t>(ObservationType::DoubleValue))
    return false;
  O.Type = static_cast<ObservationType>(Ty);
  uint32_t NumSegments;
  if (!(R.i64s(O.Ints) && R.f64s(O.Doubles) && R.str(O.Str) &&
        R.i64(O.IntValue) && R.f64(O.DoubleValue) && R.u64(O.StateKey) &&
        R.b(O.IsDelta) && R.u64(O.BaseKey) && R.u32(NumSegments)))
    return false;
  // Each segment occupies >= 28 bytes on the wire; reject counts the
  // buffer cannot possibly hold before resize() allocates for them.
  if (static_cast<size_t>(NumSegments) * 28 > WireSize)
    return false;
  O.Segments.resize(NumSegments);
  for (ObservationSegment &S : O.Segments)
    if (!getSegment(R, S))
      return false;
  return true;
}

void putAction(Writer &W, const Action &A) {
  W.u32(static_cast<uint32_t>(A.Index));
  W.i64s(A.Values);
}

bool getAction(Reader &R, Action &A) {
  uint32_t Idx;
  if (!R.u32(Idx))
    return false;
  A.Index = static_cast<int32_t>(Idx);
  return R.i64s(A.Values);
}

} // namespace

std::string service::encodeRequest(const RequestEnvelope &Req) {
  Writer W;
  W.u32(static_cast<uint32_t>(Req.Kind));
  W.u64(Req.RequestId);
  W.u64(Req.TraceId);
  W.u64(Req.SpanId);
  W.u32(Req.DeadlineMs);
  W.str(Req.AuthToken);
  switch (Req.Kind) {
  case RequestKind::StartSession:
    W.str(Req.Start.CompilerName);
    putBenchmark(W, Req.Start.Bench);
    W.str(Req.Start.ActionSpaceName);
    W.u64(Req.Start.RestoreStateKey);
    break;
  case RequestKind::EndSession:
    W.u64(Req.End.SessionId);
    break;
  case RequestKind::Step: {
    W.u64(Req.Step.SessionId);
    W.u32(static_cast<uint32_t>(Req.Step.Actions.size()));
    for (const Action &A : Req.Step.Actions)
      putAction(W, A);
    W.strs(Req.Step.ObservationSpaces);
    W.u64s(Req.Step.ObservationBaseKeys);
    break;
  }
  case RequestKind::Fork:
    W.u64(Req.Fork.SessionId);
    break;
  case RequestKind::Heartbeat:
    break;
  }
  return W.take();
}

StatusOr<RequestEnvelope> service::decodeRequest(const std::string &Bytes) {
  Reader R(Bytes);
  RequestEnvelope Req;
  uint32_t Kind;
  if (!R.u32(Kind) || Kind < 1 ||
      Kind > static_cast<uint32_t>(RequestKind::Heartbeat))
    return invalidArgument("malformed request envelope");
  Req.Kind = static_cast<RequestKind>(Kind);
  if (!R.u64(Req.RequestId) || !R.u64(Req.TraceId) || !R.u64(Req.SpanId) ||
      !R.u32(Req.DeadlineMs) || !R.str(Req.AuthToken))
    return invalidArgument("malformed request envelope");
  bool Ok = true;
  switch (Req.Kind) {
  case RequestKind::StartSession:
    Ok = R.str(Req.Start.CompilerName) && getBenchmark(R, Req.Start.Bench) &&
         R.str(Req.Start.ActionSpaceName) && R.u64(Req.Start.RestoreStateKey);
    break;
  case RequestKind::EndSession:
    Ok = R.u64(Req.End.SessionId);
    break;
  case RequestKind::Step: {
    uint32_t NumActions;
    Ok = R.u64(Req.Step.SessionId) && R.u32(NumActions) &&
         NumActions <= Bytes.size();
    if (Ok) {
      Req.Step.Actions.resize(NumActions);
      for (Action &A : Req.Step.Actions)
        Ok = Ok && getAction(R, A);
      Ok = Ok && R.strs(Req.Step.ObservationSpaces) &&
           R.u64s(Req.Step.ObservationBaseKeys);
    }
    break;
  }
  case RequestKind::Fork:
    Ok = R.u64(Req.Fork.SessionId);
    break;
  case RequestKind::Heartbeat:
    break;
  }
  if (!Ok || !R.done())
    return invalidArgument("truncated or trailing request bytes");
  return Req;
}

std::string service::encodeReply(const ReplyEnvelope &Reply) {
  Writer W;
  W.u32(static_cast<uint32_t>(Reply.Code));
  W.str(Reply.ErrorMessage);
  W.u32(Reply.RetryAfterMs);
  // Start.
  W.u64(Reply.Start.SessionId);
  putActionSpace(W, Reply.Start.Space);
  W.u32(static_cast<uint32_t>(Reply.Start.ObservationSpaces.size()));
  for (const auto &O : Reply.Start.ObservationSpaces)
    putObsInfo(W, O);
  W.b(Reply.Start.Restored);
  // Step.
  W.b(Reply.Step.EndOfSession);
  W.b(Reply.Step.ActionSpaceChanged);
  putActionSpace(W, Reply.Step.NewSpace);
  W.strs(Reply.Step.ObservationNames);
  W.u32(static_cast<uint32_t>(Reply.Step.Observations.size()));
  for (const auto &O : Reply.Step.Observations)
    putObservation(W, O);
  W.u64(Reply.Step.SessionStateKey);
  // Fork.
  W.u64(Reply.Fork.SessionId);
  return W.take();
}

StatusOr<ReplyEnvelope> service::decodeReply(const std::string &Bytes) {
  Reader R(Bytes);
  ReplyEnvelope Reply;
  uint32_t Code;
  if (!R.u32(Code) ||
      Code > static_cast<uint32_t>(StatusCode::Aborted))
    return invalidArgument("malformed reply envelope");
  Reply.Code = static_cast<StatusCode>(Code);
  if (!R.str(Reply.ErrorMessage) || !R.u32(Reply.RetryAfterMs))
    return invalidArgument("truncated reply");

  uint32_t NumObsInfos;
  bool Ok = R.u64(Reply.Start.SessionId) &&
            getActionSpace(R, Reply.Start.Space) && R.u32(NumObsInfos) &&
            NumObsInfos <= Bytes.size();
  if (Ok) {
    Reply.Start.ObservationSpaces.resize(NumObsInfos);
    for (auto &O : Reply.Start.ObservationSpaces)
      Ok = Ok && getObsInfo(R, O);
  }
  Ok = Ok && R.b(Reply.Start.Restored);
  uint32_t NumObs = 0;
  Ok = Ok && R.b(Reply.Step.EndOfSession) &&
       R.b(Reply.Step.ActionSpaceChanged) &&
       getActionSpace(R, Reply.Step.NewSpace) &&
       R.strs(Reply.Step.ObservationNames) && R.u32(NumObs) &&
       NumObs <= Bytes.size();
  if (Ok) {
    Reply.Step.Observations.resize(NumObs);
    for (auto &O : Reply.Step.Observations)
      Ok = Ok && getObservation(R, O, Bytes.size());
  }
  Ok = Ok && R.u64(Reply.Step.SessionStateKey);
  Ok = Ok && R.u64(Reply.Fork.SessionId);
  if (!Ok || !R.done())
    return invalidArgument("truncated or trailing reply bytes");
  return Reply;
}

// -- Observation delta encoding -----------------------------------------------

bool service::deltaEligible(ObservationType T) {
  return T == ObservationType::Int64List || T == ObservationType::DoubleList ||
         T == ObservationType::String || T == ObservationType::Binary;
}

size_t service::observationWireSize(const Observation &O) {
  // Mirrors putObservation: type + payload vectors + scalars + key/delta
  // fields + segments.
  size_t Size = 4 + (4 + O.Ints.size() * 8) + (4 + O.Doubles.size() * 8) +
                (4 + O.Str.size()) + 8 + 8 + 8 + 4 + 8 + 4;
  for (const ObservationSegment &S : O.Segments)
    Size += 8 + 8 + (4 + S.Ints.size() * 8) + (4 + S.Doubles.size() * 8) +
            (4 + S.Str.size());
  return Size;
}

namespace {

/// Emits one segment per changed run between equal-length sequences,
/// merging runs separated by fewer than MinGap unchanged elements so
/// segment-header overhead stays bounded. Appends into Segs via Emit,
/// which copies [From, To) of the full sequence into a segment payload.
template <typename Len, typename Equal, typename Emit>
void diffEqualLength(Len N, Equal Eq, Emit EmitSeg) {
  constexpr size_t MinGap = 8;
  size_t I = 0;
  while (I < N) {
    if (Eq(I)) {
      ++I;
      continue;
    }
    size_t Start = I;
    size_t End = I + 1;
    size_t Unchanged = 0;
    for (size_t J = End; J < N; ++J) {
      if (Eq(J)) {
        if (++Unchanged >= MinGap)
          break;
      } else {
        End = J + 1;
        Unchanged = 0;
      }
    }
    EmitSeg(Start, End);
    I = End;
  }
}

/// Single common-prefix/suffix window for length-changing edits.
template <typename Len, typename EqualAt>
void prefixSuffixWindow(Len BaseN, Len FullN, EqualAt Eq, size_t &Prefix,
                        size_t &Suffix) {
  Prefix = 0;
  size_t Max = std::min<size_t>(BaseN, FullN);
  while (Prefix < Max && Eq(Prefix, Prefix))
    ++Prefix;
  Suffix = 0;
  while (Suffix < Max - Prefix &&
         Eq(BaseN - 1 - Suffix, FullN - 1 - Suffix))
    ++Suffix;
}

template <typename Vec, typename Assign>
void diffPayload(const Vec &Base, const Vec &Full,
                 std::vector<ObservationSegment> &Segs, Assign AssignSeg) {
  if (Base.size() == Full.size()) {
    diffEqualLength(
        Base.size(), [&](size_t I) { return Base[I] == Full[I]; },
        [&](size_t Start, size_t End) {
          ObservationSegment S;
          S.Start = Start;
          S.DropCount = End - Start;
          AssignSeg(S, Start, End);
          Segs.push_back(std::move(S));
        });
    return;
  }
  size_t Prefix, Suffix;
  prefixSuffixWindow(
      Base.size(), Full.size(),
      [&](size_t BI, size_t FI) { return Base[BI] == Full[FI]; }, Prefix,
      Suffix);
  ObservationSegment S;
  S.Start = Prefix;
  S.DropCount = Base.size() - Prefix - Suffix;
  AssignSeg(S, Prefix, Full.size() - Suffix);
  Segs.push_back(std::move(S));
}

/// Applies segments onto a base payload; false on any out-of-bounds or
/// out-of-order segment.
template <typename Vec, typename SegPayload>
bool applyPayload(const Vec &Base, const std::vector<ObservationSegment> &Segs,
                  SegPayload Payload, Vec &Out) {
  size_t Cursor = 0;
  for (const ObservationSegment &S : Segs) {
    if (S.Start < Cursor || S.Start > Base.size() ||
        S.DropCount > Base.size() - S.Start)
      return false;
    Out.insert(Out.end(), Base.begin() + Cursor, Base.begin() + S.Start);
    const auto &P = Payload(S);
    Out.insert(Out.end(), P.begin(), P.end());
    Cursor = S.Start + S.DropCount;
  }
  Out.insert(Out.end(), Base.begin() + Cursor, Base.end());
  return true;
}

} // namespace

bool service::encodeObservationDelta(const Observation &Base,
                                     const Observation &Full,
                                     Observation &Out) {
  if (Base.Type != Full.Type || !deltaEligible(Full.Type))
    return false;
  Observation Delta;
  Delta.Type = Full.Type;
  Delta.IsDelta = true;
  switch (Full.Type) {
  case ObservationType::Int64List:
    diffPayload(Base.Ints, Full.Ints, Delta.Segments,
                [&](ObservationSegment &S, size_t From, size_t To) {
                  S.Ints.assign(Full.Ints.begin() + From,
                                Full.Ints.begin() + To);
                });
    break;
  case ObservationType::DoubleList:
    diffPayload(Base.Doubles, Full.Doubles, Delta.Segments,
                [&](ObservationSegment &S, size_t From, size_t To) {
                  S.Doubles.assign(Full.Doubles.begin() + From,
                                   Full.Doubles.begin() + To);
                });
    break;
  case ObservationType::String:
  case ObservationType::Binary:
    diffPayload(Base.Str, Full.Str, Delta.Segments,
                [&](ObservationSegment &S, size_t From, size_t To) {
                  S.Str.assign(Full.Str, From, To - From);
                });
    break;
  default:
    return false;
  }
  if (observationWireSize(Delta) >= observationWireSize(Full))
    return false;
  Out = std::move(Delta);
  return true;
}

StatusOr<Observation> service::applyObservationDelta(const Observation &Base,
                                                     const Observation &Delta) {
  if (!Delta.IsDelta)
    return invalidArgument("observation is not a delta");
  if (Base.Type != Delta.Type)
    return invalidArgument("delta type does not match its base");
  Observation Out;
  Out.Type = Delta.Type;
  Out.StateKey = Delta.StateKey;
  bool Ok = true;
  switch (Delta.Type) {
  case ObservationType::Int64List:
    Ok = applyPayload(Base.Ints, Delta.Segments,
                      [](const ObservationSegment &S) -> const auto & {
                        return S.Ints;
                      },
                      Out.Ints);
    break;
  case ObservationType::DoubleList:
    Ok = applyPayload(Base.Doubles, Delta.Segments,
                      [](const ObservationSegment &S) -> const auto & {
                        return S.Doubles;
                      },
                      Out.Doubles);
    break;
  case ObservationType::String:
  case ObservationType::Binary:
    Ok = applyPayload(Base.Str, Delta.Segments,
                      [](const ObservationSegment &S) -> const auto & {
                        return S.Str;
                      },
                      Out.Str);
    break;
  default:
    return invalidArgument("scalar observations are never delta-encoded");
  }
  if (!Ok)
    return invalidArgument("delta segments do not fit the base observation");
  return Out;
}
