//===- service/CompilerService.cpp ----------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/CompilerService.h"

#include "fault/FaultRegistry.h"
#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"
#include "util/Logging.h"
#include "util/Timer.h"

#include <thread>

using namespace compiler_gym;
using namespace compiler_gym::service;

namespace {

using telemetry::Counter;
using telemetry::Histogram;
using telemetry::MetricsRegistry;

Counter &rpcsTotal(RequestKind Kind) {
  static MetricsRegistry &M = MetricsRegistry::global();
  static const char *Help = "RPCs dispatched by the compiler service";
  static Counter &Start =
      M.counter("cg_service_rpcs_total", {{"kind", "start_session"}}, Help);
  static Counter &End =
      M.counter("cg_service_rpcs_total", {{"kind", "end_session"}}, Help);
  static Counter &Step =
      M.counter("cg_service_rpcs_total", {{"kind", "step"}}, Help);
  static Counter &Fork =
      M.counter("cg_service_rpcs_total", {{"kind", "fork"}}, Help);
  static Counter &Heartbeat =
      M.counter("cg_service_rpcs_total", {{"kind", "heartbeat"}}, Help);
  switch (Kind) {
  case RequestKind::StartSession:
    return Start;
  case RequestKind::EndSession:
    return End;
  case RequestKind::Step:
    return Step;
  case RequestKind::Fork:
    return Fork;
  case RequestKind::Heartbeat:
    return Heartbeat;
  }
  return Heartbeat;
}

Histogram &rpcLatencyUs(RequestKind Kind) {
  static MetricsRegistry &M = MetricsRegistry::global();
  static const char *Help =
      "Service-side RPC handling latency (decode to encoded reply, us)";
  static Histogram &Start = M.histogram(
      "cg_service_rpc_latency_us", {{"kind", "start_session"}}, Help);
  static Histogram &End = M.histogram("cg_service_rpc_latency_us",
                                      {{"kind", "end_session"}}, Help);
  static Histogram &Step =
      M.histogram("cg_service_rpc_latency_us", {{"kind", "step"}}, Help);
  static Histogram &Fork =
      M.histogram("cg_service_rpc_latency_us", {{"kind", "fork"}}, Help);
  static Histogram &Heartbeat = M.histogram("cg_service_rpc_latency_us",
                                            {{"kind", "heartbeat"}}, Help);
  switch (Kind) {
  case RequestKind::StartSession:
    return Start;
  case RequestKind::EndSession:
    return End;
  case RequestKind::Step:
    return Step;
  case RequestKind::Fork:
    return Fork;
  case RequestKind::Heartbeat:
    return Heartbeat;
  }
  return Heartbeat;
}

Counter &deadlineExceededServiceTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_rpc_deadline_exceeded_total", {{"layer", "service"}},
      "RPCs abandoned at a layer because the remaining deadline budget ran "
      "out");
  return C;
}

Counter &dedupReplaysTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_service_dedup_replays_total", {},
      "Requests answered from the idempotency reply cache");
  return C;
}

Counter &deltaRepliesTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_service_observation_replies_total", {{"encoding", "delta"}},
      "Step observations answered as deltas vs full payloads");
  return C;
}

Counter &fullRepliesTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_service_observation_replies_total", {{"encoding", "full"}},
      "Step observations answered as deltas vs full payloads");
  return C;
}

} // namespace

CompilerService::CompilerService(FaultPlan Plan) : Plan(Plan) {
  // Pre-register (PR 6 convention): the zero-valued series shows up on the
  // first scrape, before any deadline is ever missed.
  (void)deadlineExceededServiceTotal();
}

ObservationCacheBase::~ObservationCacheBase() = default;

void CompilerService::restart() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Sessions.clear();
  ServedReplies.clear();
  ServedOrder.clear();
  LastSent.clear();
  Crashed.store(false, std::memory_order_relaxed);
  AbortRequested.store(false, std::memory_order_relaxed);
  OpsHandled.store(0, std::memory_order_relaxed);
  CG_LOG_INFO_FOR("service", 0) << "compiler service restarted";
}

uint64_t CompilerService::deltaRepliesSent() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return DeltaRepliesSent;
}

void CompilerService::setObservationCache(
    std::shared_ptr<ObservationCacheBase> Cache) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ObsCache = std::move(Cache);
}

size_t CompilerService::numSessions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Sessions.size();
}

std::string CompilerService::handle(const std::string &RequestBytes) {
  StatusOr<RequestEnvelope> Req = decodeRequest(RequestBytes);
  if (!Req.isOk()) {
    ReplyEnvelope Reply;
    Reply.Code = Req.status().code();
    Reply.ErrorMessage = Req.status().message();
    return encodeReply(Reply);
  }
  // Adopt the client's trace identity for the duration of this request:
  // the spans below (and any opened inside sessions/passes) stitch under
  // the client's RPC span even though we run on the dispatcher thread.
  telemetry::TraceBinding Bind(Req->TraceId, Req->SpanId);
  telemetry::SpanScope Span(
      telemetry::Tracer::global().enabled()
          ? std::string("service:") + requestKindName(Req->Kind)
          : std::string(),
      "service");
  Stopwatch Watch;
  // The request's cancel token: deadline from the wire budget, abort from
  // the watchdog's poisoning flag, and every poll bumps the liveness
  // heartbeat the watchdog reads.
  util::CancelToken Token;
  if (Req->DeadlineMs)
    Token.armDeadlineMs(Req->DeadlineMs);
  Token.watchAbortFlag(&AbortRequested);
  Token.attachProgressCounter(&ProgressTicks);
  OpsStarted.fetch_add(1, std::memory_order_relaxed);
  std::string ReplyBytes = handleLocked(*Req, Token);
  OpsFinished.fetch_add(1, std::memory_order_relaxed);
  ProgressTicks.fetch_add(1, std::memory_order_relaxed);
  rpcsTotal(Req->Kind).inc();
  rpcLatencyUs(Req->Kind).observeUs(Watch.elapsedUs());
  return ReplyBytes;
}

std::string CompilerService::handleLocked(const RequestEnvelope &Req,
                                          const util::CancelToken &Token) {
  ReplyEnvelope Reply;
  std::lock_guard<std::mutex> Lock(Mutex);
  // Retry of a request we already executed: replay the stored reply. This
  // is checked before the fault-plan op accounting — a dedup hit performs
  // no compiler work. DeadlineExceeded replies are cached like any other
  // executed result: the retry of a logical call only ever has *less*
  // budget, so replaying the stored rejection is always correct, and it
  // keeps a partially-applied batch from being applied twice.
  if (Req.RequestId) {
    auto Served = ServedReplies.find(Req.RequestId);
    if (Served != ServedReplies.end()) {
      dedupReplaysTotal().inc();
      return Served->second;
    }
  }
  uint64_t Op = OpsHandled.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Plan.HangOnOp && Op == Plan.HangOnOp)
    std::this_thread::sleep_for(std::chrono::milliseconds(Plan.HangMs));
  if (fault::FaultAction F = CG_FAULT_POINT("service.handle", &Token)) {
    if (F.isCrash())
      Crashed.store(true, std::memory_order_relaxed);
    else if (F.isError()) {
      // An injected pre-dispatch error is proof the op never executed, so
      // (like session-loss replies) it is not pinned in the dedup cache: a
      // retry of the same RequestId should re-execute, not replay it.
      Reply.Code = F.Error.code();
      Reply.ErrorMessage = F.Error.message();
      return encodeReply(Reply);
    }
  }
  if (Plan.CrashAfterOps && Op > Plan.CrashAfterOps)
    Crashed.store(true, std::memory_order_relaxed);
  if (Crashed.load(std::memory_order_relaxed)) {
    Reply.Code = StatusCode::Aborted;
    Reply.ErrorMessage = "compiler service crashed";
    return encodeReply(Reply);
  }
  if (Token.expired()) {
    // Reject before doing any work: the client has already (or will have,
    // by the time this reply crosses the queue) given up on this budget.
    deadlineExceededServiceTotal().inc();
    telemetry::SpanScope RejectSpan("deadline.reject", "service");
    Reply.Code = StatusCode::DeadlineExceeded;
    Reply.ErrorMessage = "deadline expired before dispatch (budget " +
                         std::to_string(Req.DeadlineMs) + "ms)";
  } else if (Token.aborted()) {
    // Watchdog poisoning raced this op into the queue; bounce it like a
    // crash so the client fails over immediately.
    Reply.Code = StatusCode::Aborted;
    Reply.ErrorMessage = "compiler service abort requested";
    return encodeReply(Reply);
  } else {
    Reply = dispatch(Req, Token);
  }
  std::string ReplyBytes;
  {
    telemetry::SpanScope EncodeSpan("encode.reply", "service");
    ReplyBytes = encodeReply(Reply);
  }
  // A session-loss reply is proof the op never executed, so at-most-once
  // does not require pinning it; caching it would make a retry of the same
  // RequestId replay the error even after the session was restored
  // (gateway snapshot restore re-issues the op under its original id).
  bool SessionLoss = Reply.Code == StatusCode::NotFound &&
                     Reply.ErrorMessage.rfind("no session", 0) == 0;
  if (Req.RequestId && !SessionLoss) {
    ServedReplies.emplace(Req.RequestId, ReplyBytes);
    ServedOrder.push_back(Req.RequestId);
    if (ServedOrder.size() > DedupWindow) {
      ServedReplies.erase(ServedOrder.front());
      ServedOrder.pop_front();
    }
  }
  return ReplyBytes;
}

ReplyEnvelope CompilerService::dispatch(const RequestEnvelope &Req,
                                        const util::CancelToken &Token) {
  ReplyEnvelope Reply;
  auto fail = [&](const Status &S) {
    Reply.Code = S.code();
    Reply.ErrorMessage = S.message();
    return Reply;
  };

  switch (Req.Kind) {
  case RequestKind::Heartbeat:
    return Reply;

  case RequestKind::StartSession: {
    std::unique_ptr<CompilationSession> Session =
        createCompilationSession(Req.Start.CompilerName);
    if (!Session)
      return fail(notFound("no compiler service registered as '" +
                           Req.Start.CompilerName + "'"));
    std::vector<ActionSpace> Spaces = Session->getActionSpaces();
    if (Spaces.empty())
      return fail(internalError("compiler exposes no action spaces"));
    const ActionSpace *Chosen = &Spaces.front();
    if (!Req.Start.ActionSpaceName.empty()) {
      Chosen = nullptr;
      for (const ActionSpace &S : Spaces)
        if (S.Name == Req.Start.ActionSpaceName)
          Chosen = &S;
      if (!Chosen)
        return fail(notFound("no action space '" +
                             Req.Start.ActionSpaceName + "'"));
    }
    if (Status S = Session->init(*Chosen, Req.Start.Bench); !S.isOk())
      return fail(S);
    // Replay-free crash recovery: a recovering client names the state it
    // was at; the backend restores the matching snapshot when it still
    // exists. On failure the session simply starts at the initial state
    // and the client replays (the pre-snapshot protocol).
    if (Req.Start.RestoreStateKey)
      Reply.Start.Restored = Session->restore(Req.Start.RestoreStateKey);
    Reply.Start.SessionId = NextSessionId++;
    Reply.Start.Space = *Chosen;
    Reply.Start.ObservationSpaces = Session->getObservationSpaces();
    Sessions.emplace(Reply.Start.SessionId, std::move(Session));
    return Reply;
  }

  case RequestKind::EndSession: {
    Sessions.erase(Req.End.SessionId);
    LastSent.erase(Req.End.SessionId);
    return Reply;
  }

  case RequestKind::Step: {
    auto It = Sessions.find(Req.Step.SessionId);
    if (It == Sessions.end())
      return fail(notFound("no session " +
                           std::to_string(Req.Step.SessionId)));
    CompilationSession &Session = *It->second;
    // Attach the request's token for the duration of this RPC so the
    // backend's long-running work (pass pipelines) can poll it; the token
    // is stack-allocated in handle(), hence the unconditional detach.
    Session.setCancelToken(&Token);
    struct TokenDetach {
      CompilationSession &S;
      ~TokenDetach() { S.setCancelToken(nullptr); }
    } Detach{Session};
    bool End = false, SpaceChanged = false;
    {
      // Batched execution (§III-B5): apply every action, observe once.
      telemetry::SpanScope ApplySpan("session.apply_actions", "service");
      for (const Action &A : Req.Step.Actions) {
        if (fault::FaultAction F =
                CG_FAULT_POINT("service.apply_actions", &Token)) {
          if (F.isCrash()) {
            Crashed.store(true, std::memory_order_relaxed);
            return fail(abortedError("compiler service crashed"));
          }
          if (F.isError())
            return fail(F.Error);
        }
        bool StepEnd = false, StepChanged = false;
        if (Status S = Session.applyAction(A, StepEnd, StepChanged);
            !S.isOk()) {
          if (S.code() == StatusCode::DeadlineExceeded)
            deadlineExceededServiceTotal().inc();
          return fail(S);
        }
        End |= StepEnd;
        SpaceChanged |= StepChanged;
        if (End)
          break;
      }
    }
    Reply.Step.EndOfSession = End;
    Reply.Step.ActionSpaceChanged = SpaceChanged;
    if (SpaceChanged)
      Reply.Step.NewSpace = Session.currentActionSpace();
    // Space metadata is only needed when observations were requested; the
    // common step-without-observation request skips building the list.
    std::vector<ObservationSpaceInfo> Known;
    if (!Req.Step.ObservationSpaces.empty())
      Known = Session.getObservationSpaces();
    // State key for the observation cache and the delta handshake,
    // computed at most once per request.
    uint64_t StateKey = 0;
    bool HaveStateKey = false;
    auto stateKeyOnce = [&] {
      if (!HaveStateKey) {
        StateKey = Session.stateKey();
        HaveStateKey = true;
      }
      return StateKey;
    };
    for (size_t I = 0; I < Req.Step.ObservationSpaces.size(); ++I) {
      const std::string &SpaceName = Req.Step.ObservationSpaces[I];
      const ObservationSpaceInfo *Info = nullptr;
      for (const ObservationSpaceInfo &O : Known)
        if (O.Name == SpaceName)
          Info = &O;
      if (!Info)
        return fail(notFound("no observation space '" + SpaceName + "'"));
      telemetry::SpanScope ObsSpan(
          telemetry::Tracer::global().enabled() ? "observe:" + SpaceName
                                                : std::string(),
          "service");
      // Only deterministic observations are cacheable or delta-encodable;
      // Runtime-style spaces vary per measurement and must always be
      // recomputed and shipped in full.
      bool Cacheable =
          ObsCache && Info->Deterministic && stateKeyOnce() != 0;
      uint64_t CurKey =
          Info->Deterministic && deltaEligible(Info->Type) ? stateKeyOnce()
                                                           : 0;
      // Delta handshake: the client advertised the key of a full value it
      // retains. When the state has not moved since, reply with an empty
      // "unchanged" delta before computing (or even copying) anything —
      // the repeat-query hot path costs a state-key compare.
      uint64_t BaseKey = I < Req.Step.ObservationBaseKeys.size()
                             ? Req.Step.ObservationBaseKeys[I]
                             : 0;
      Reply.Step.ObservationNames.push_back(SpaceName);
      if (CurKey && BaseKey == CurKey) {
        Observation Delta;
        Delta.Type = Info->Type;
        Delta.IsDelta = true;
        Delta.StateKey = CurKey;
        Delta.BaseKey = BaseKey;
        ++DeltaRepliesSent;
        deltaRepliesTotal().inc();
        Reply.Step.Observations.push_back(std::move(Delta));
        continue;
      }
      Observation Obs;
      bool FromCache = Cacheable && ObsCache->lookup(StateKey, SpaceName, Obs);
      if (!FromCache) {
        if (Status S = Session.computeObservation(*Info, Obs); !S.isOk())
          return fail(S);
        Obs.StateKey = CurKey;
        if (Cacheable)
          ObsCache->insert(StateKey, SpaceName, Obs);
      } else {
        Obs.StateKey = CurKey;
      }

      // The state moved (or the client holds no base): answer with only
      // the changed segments when we retain (or can look up) the client's
      // base, falling back to the legacy full payload. Base values are
      // only retained for clients that speak the handshake — a
      // delta-unaware client should not cost a per-session payload copy.
      bool ClientDeltas = !Req.Step.ObservationBaseKeys.empty();
      if (CurKey && BaseKey) {
        telemetry::SpanScope DeltaSpan("delta.encode", "service");
        const Observation *Base = nullptr;
        Observation CachedBase;
        auto SessIt = LastSent.find(Req.Step.SessionId);
        if (SessIt != LastSent.end()) {
          auto SpIt = SessIt->second.find(SpaceName);
          if (SpIt != SessIt->second.end() &&
              SpIt->second.StateKey == BaseKey)
            Base = &SpIt->second;
        }
        if (!Base && ObsCache &&
            ObsCache->lookup(BaseKey, SpaceName, CachedBase) &&
            CachedBase.Type == Obs.Type)
          Base = &CachedBase;
        Observation Delta;
        if (Base && encodeObservationDelta(*Base, Obs, Delta)) {
          Delta.StateKey = CurKey;
          Delta.BaseKey = BaseKey;
          ++DeltaRepliesSent;
          deltaRepliesTotal().inc();
          LastSent[Req.Step.SessionId][SpaceName] = std::move(Obs);
          Reply.Step.Observations.push_back(std::move(Delta));
          continue;
        }
      }
      if (CurKey && ClientDeltas)
        LastSent[Req.Step.SessionId][SpaceName] = Obs;
      fullRepliesTotal().inc();
      Reply.Step.Observations.push_back(std::move(Obs));
    }
    // Tell the client where it now is, so a later crash recovery can
    // restore this exact state by key instead of replaying actions.
    Reply.Step.SessionStateKey = stateKeyOnce();
    return Reply;
  }

  case RequestKind::Fork: {
    auto It = Sessions.find(Req.Fork.SessionId);
    if (It == Sessions.end())
      return fail(notFound("no session " +
                           std::to_string(Req.Fork.SessionId)));
    StatusOr<std::unique_ptr<CompilationSession>> Forked =
        It->second->fork();
    if (!Forked.isOk())
      return fail(Forked.status());
    Reply.Fork.SessionId = NextSessionId++;
    Sessions.emplace(Reply.Fork.SessionId, Forked.takeValue());
    return Reply;
  }
  }
  return fail(internalError("unhandled request kind"));
}
