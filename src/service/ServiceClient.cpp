//===- service/ServiceClient.cpp ------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ServiceClient.h"

#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"
#include "util/Logging.h"
#include "util/Timer.h"

#include <atomic>
#include <thread>

using namespace compiler_gym;
using namespace compiler_gym::service;

namespace {

using telemetry::Counter;
using telemetry::Histogram;
using telemetry::MetricsRegistry;

Counter &rpcAttemptsTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_client_rpcs_total", {},
      "RPC attempts issued by frontend clients (retries included)");
  return C;
}

Counter &retriesTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_client_retries_total", {},
      "Transient-failure RPC retries (unavailable, deadline, garbled)");
  return C;
}

Counter &restartsTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_client_service_restarts_total", {},
      "Backend relaunches requested after crash/hang");
  return C;
}

Counter &reconnectsTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_client_reconnects_total", {},
      "Retries that followed channel loss (Unavailable) — reconnect-shaped "
      "failures, as opposed to deadline or garbled-reply retries");
  return C;
}

Counter &deadlineExceededClientTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_rpc_deadline_exceeded_total", {{"layer", "client"}},
      "RPCs abandoned at a layer because the remaining deadline budget ran "
      "out");
  return C;
}

Counter &backpressureRetriesTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_client_backpressure_retries_total", {},
      "Retries that honored a typed retry-after hint from server-side flow "
      "control (gateway admission/rate/queue limits)");
  return C;
}

Counter &wireBytes(bool Sent) {
  static Counter &S = MetricsRegistry::global().counter(
      "cg_wire_bytes_total", {{"direction", "sent"}},
      "Serialized RPC bytes through frontend clients");
  static Counter &R = MetricsRegistry::global().counter(
      "cg_wire_bytes_total", {{"direction", "received"}},
      "Serialized RPC bytes through frontend clients");
  return Sent ? S : R;
}

Histogram &rpcLatencyUs(RequestKind Kind) {
  static MetricsRegistry &M = MetricsRegistry::global();
  static const char *Help =
      "Client-observed RPC latency (all attempts, in microseconds)";
  static Histogram &Start = M.histogram(
      "cg_client_rpc_latency_us", {{"kind", "start_session"}}, Help);
  static Histogram &End =
      M.histogram("cg_client_rpc_latency_us", {{"kind", "end_session"}}, Help);
  static Histogram &Step =
      M.histogram("cg_client_rpc_latency_us", {{"kind", "step"}}, Help);
  static Histogram &Fork =
      M.histogram("cg_client_rpc_latency_us", {{"kind", "fork"}}, Help);
  static Histogram &Heartbeat =
      M.histogram("cg_client_rpc_latency_us", {{"kind", "heartbeat"}}, Help);
  switch (Kind) {
  case RequestKind::StartSession:
    return Start;
  case RequestKind::EndSession:
    return End;
  case RequestKind::Step:
    return Step;
  case RequestKind::Fork:
    return Fork;
  case RequestKind::Heartbeat:
    return Heartbeat;
  }
  return Heartbeat;
}

} // namespace

ServiceClient::ServiceClient(std::shared_ptr<CompilerService> Service,
                             std::shared_ptr<Transport> Channel,
                             ClientOptions Opts)
    : Service(std::move(Service)), Channel(std::move(Channel)), Opts(Opts) {
  (void)deadlineExceededClientTotal();
}

ServiceClient::ServiceClient(std::shared_ptr<CompilerService> Service,
                             ClientOptions Opts)
    : Service(Service),
      Channel(std::make_shared<QueueTransport>(
          [Service](const std::string &Bytes) {
            return Service->handle(Bytes);
          })),
      Opts(Opts) {
  (void)deadlineExceededClientTotal();
}

void ServiceClient::restartService() {
  // Remote channels have no in-process backend handle; restarting the far
  // end is the server fleet's job and this degrades to a no-op.
  if (!Service)
    return;
  ++RestartCount;
  restartsTotal().inc();
  Service->restart();
}

StatusOr<ReplyEnvelope> ServiceClient::call(RequestEnvelope &Req) {
  // Process-wide unique: several clients may share one service shard.
  static std::atomic<uint64_t> NextRequestId{1};
  Req.RequestId = NextRequestId.fetch_add(1, std::memory_order_relaxed);
  Req.AuthToken = Opts.AuthToken;
  telemetry::SpanScope Span(
      telemetry::Tracer::global().enabled()
          ? std::string("rpc:") + requestKindName(Req.Kind)
          : std::string(),
      "client");
  // Stitch service-side spans under this RPC span: the context now names
  // the span just opened above (or zeros when tracing is off/unsampled).
  telemetry::TraceContext Ctx = telemetry::currentTraceContext();
  Req.TraceId = Ctx.TraceId;
  Req.SpanId = Ctx.SpanId;
  Stopwatch Watch;
  StatusOr<ReplyEnvelope> Reply = callAttempts(Req);
  rpcLatencyUs(Req.Kind).observeUs(Watch.elapsedUs());
  return Reply;
}

int ServiceClient::backoffDelayMs(int Attempt, uint32_t RetryAfterHintMs) {
  // min(cap, base * 2^(attempt-1)), computed without overflow for large
  // attempt counts.
  int64_t DelayMs = Opts.RetryBackoffMs > 0 ? Opts.RetryBackoffMs : 1;
  for (int I = 1; I < Attempt && DelayMs < Opts.RetryBackoffMaxMs; ++I)
    DelayMs *= 2;
  if (DelayMs > Opts.RetryBackoffMaxMs)
    DelayMs = Opts.RetryBackoffMaxMs;
  // ±50% jitter de-synchronizes client fleets that failed in lockstep.
  DelayMs = DelayMs / 2 + static_cast<int64_t>(BackoffJitter.bounded(
                              static_cast<uint64_t>(DelayMs) + 1));
  if (DelayMs < RetryAfterHintMs)
    DelayMs = RetryAfterHintMs;
  return static_cast<int>(DelayMs);
}

StatusOr<ReplyEnvelope> ServiceClient::callAttempts(RequestEnvelope &Req) {
  // With deadline propagation, TimeoutMs is an *overall* per-call budget:
  // every attempt is stamped with (and waits no longer than) the budget
  // still remaining, and backoff sleeps draw the budget down instead of
  // extending the call. With it off, each attempt gets the full TimeoutMs
  // and no deadline crosses the wire (legacy behavior).
  Stopwatch Budget;
  Status LastError = internalError("no attempt made");
  // Flow-control rejections carry a typed retry-after hint; the next
  // attempt honors it as a floor on the backoff delay, and if retries run
  // out the decoded envelope (not a channel error) is what we return.
  uint32_t RetryAfterHintMs = 0;
  bool HaveTypedRejection = false;
  ReplyEnvelope TypedRejection;
  bool BudgetExhausted = false;
  bool Attempted = false;
  for (int Attempt = 0; Attempt <= Opts.MaxRetries; ++Attempt) {
    if (Attempt > 0) {
      int DelayMs = backoffDelayMs(Attempt, RetryAfterHintMs);
      if (Opts.PropagateDeadline &&
          Budget.elapsedMs() + DelayMs >= Opts.TimeoutMs) {
        // Sleeping would burn the rest of the budget; give up now rather
        // than stamp a zero deadline the service would just bounce.
        BudgetExhausted = true;
        break;
      }
      ++RetryCount;
      retriesTotal().inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
      RetryAfterHintMs = 0;
    }
    int AttemptTimeoutMs = Opts.TimeoutMs;
    if (Opts.PropagateDeadline) {
      int64_t RemainingMs =
          Opts.TimeoutMs - static_cast<int64_t>(Budget.elapsedMs());
      if (RemainingMs <= 0) {
        BudgetExhausted = true;
        break;
      }
      Req.DeadlineMs = static_cast<uint32_t>(RemainingMs);
      AttemptTimeoutMs = static_cast<int>(RemainingMs);
    }
    std::string Bytes = encodeRequest(Req);
    Attempted = true;
    ++RpcCount;
    rpcAttemptsTotal().inc();
    WireBytesSent += Bytes.size();
    wireBytes(true).inc(Bytes.size());
    StatusOr<std::string> ReplyBytes = Channel->roundTrip(Bytes,
                                                          AttemptTimeoutMs);
    if (ReplyBytes.isOk()) {
      WireBytesReceived += ReplyBytes->size();
      wireBytes(false).inc(ReplyBytes->size());
    }
    if (!ReplyBytes.isOk()) {
      LastError = ReplyBytes.status();
      // Unavailable and dropped replies are transient; hangs surface as
      // DeadlineExceeded which we also retry (the request may simply have
      // been slow) before giving up.
      if (LastError.code() == StatusCode::Unavailable) {
        ++ReconnectCount;
        reconnectsTotal().inc();
        continue;
      }
      if (LastError.code() == StatusCode::DeadlineExceeded)
        continue;
      return LastError;
    }
    StatusOr<ReplyEnvelope> Reply = decodeReply(*ReplyBytes);
    if (!Reply.isOk()) {
      // Garbled reply: a transport fault; retry.
      LastError = unavailable("garbled reply: " + Reply.status().message());
      CG_LOG_INFO_FOR("client", Req.RequestId)
          << "retrying garbled service reply";
      continue;
    }
    if (Reply->Code == StatusCode::Unavailable && Reply->RetryAfterMs > 0 &&
        Attempt < Opts.MaxRetries) {
      // Typed backpressure: the server rejected the request by flow
      // control, not because anything died. Retrying the same envelope
      // (same RequestId — dedup-safe) after the hinted delay is correct;
      // surfacing it would wrongly trigger restart-and-replay recovery.
      backpressureRetriesTotal().inc();
      RetryAfterHintMs = Reply->RetryAfterMs;
      HaveTypedRejection = true;
      TypedRejection = std::move(*Reply);
      CG_LOG_INFO_FOR("client", Req.RequestId)
          << "backpressure: retrying after " << RetryAfterHintMs << "ms";
      continue;
    }
    return Reply;
  }
  // Out of retries. A typed rejection beats a channel error: callers see
  // the server's Unavailable + message rather than a transport artifact.
  if (BudgetExhausted)
    deadlineExceededClientTotal().inc();
  if (HaveTypedRejection)
    return TypedRejection;
  if (BudgetExhausted && !Attempted)
    return deadlineExceeded("RPC budget exhausted before any attempt");
  return LastError;
}

StatusOr<StartSessionReply>
ServiceClient::startSession(const StartSessionRequest &Req) {
  RequestEnvelope Env;
  Env.Kind = RequestKind::StartSession;
  Env.Start = Req;
  CG_ASSIGN_OR_RETURN(ReplyEnvelope Reply, call(Env));
  if (Status S = Reply.status(); !S.isOk())
    return S;
  return Reply.Start;
}

Status ServiceClient::endSession(uint64_t SessionId) {
  RequestEnvelope Env;
  Env.Kind = RequestKind::EndSession;
  Env.End.SessionId = SessionId;
  StatusOr<ReplyEnvelope> Reply = call(Env);
  if (!Reply.isOk())
    return Reply.status();
  return Reply->status();
}

StatusOr<StepReply> ServiceClient::step(const StepRequest &Req) {
  RequestEnvelope Env;
  Env.Kind = RequestKind::Step;
  Env.Step = Req;
  CG_ASSIGN_OR_RETURN(ReplyEnvelope Reply, call(Env));
  if (Status S = Reply.status(); !S.isOk())
    return S;
  return Reply.Step;
}

StatusOr<uint64_t> ServiceClient::fork(uint64_t SessionId) {
  RequestEnvelope Env;
  Env.Kind = RequestKind::Fork;
  Env.Fork.SessionId = SessionId;
  CG_ASSIGN_OR_RETURN(ReplyEnvelope Reply, call(Env));
  if (Status S = Reply.status(); !S.isOk())
    return S;
  return Reply.Fork.SessionId;
}

Status ServiceClient::heartbeat() {
  RequestEnvelope Env;
  Env.Kind = RequestKind::Heartbeat;
  StatusOr<ReplyEnvelope> Reply = call(Env);
  if (!Reply.isOk())
    return Reply.status();
  return Reply->status();
}
