//===- service/ServiceClient.cpp ------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ServiceClient.h"

#include "util/Logging.h"

#include <atomic>
#include <thread>

using namespace compiler_gym;
using namespace compiler_gym::service;

ServiceClient::ServiceClient(std::shared_ptr<CompilerService> Service,
                             std::shared_ptr<Transport> Channel,
                             ClientOptions Opts)
    : Service(std::move(Service)), Channel(std::move(Channel)), Opts(Opts) {}

ServiceClient::ServiceClient(std::shared_ptr<CompilerService> Service,
                             ClientOptions Opts)
    : Service(Service),
      Channel(std::make_shared<QueueTransport>(
          [Service](const std::string &Bytes) {
            return Service->handle(Bytes);
          })),
      Opts(Opts) {}

void ServiceClient::restartService() {
  ++RestartCount;
  Service->restart();
}

StatusOr<ReplyEnvelope> ServiceClient::call(RequestEnvelope &Req) {
  // Process-wide unique: several clients may share one service shard.
  static std::atomic<uint64_t> NextRequestId{1};
  Req.RequestId = NextRequestId.fetch_add(1, std::memory_order_relaxed);
  std::string Bytes = encodeRequest(Req);
  Status LastError = internalError("no attempt made");
  for (int Attempt = 0; Attempt <= Opts.MaxRetries; ++Attempt) {
    if (Attempt > 0) {
      ++RetryCount;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Opts.RetryBackoffMs));
    }
    ++RpcCount;
    WireBytesSent += Bytes.size();
    StatusOr<std::string> ReplyBytes = Channel->roundTrip(Bytes,
                                                          Opts.TimeoutMs);
    if (ReplyBytes.isOk())
      WireBytesReceived += ReplyBytes->size();
    if (!ReplyBytes.isOk()) {
      LastError = ReplyBytes.status();
      // Unavailable and dropped replies are transient; hangs surface as
      // DeadlineExceeded which we also retry (the request may simply have
      // been slow) before giving up.
      if (LastError.code() == StatusCode::Unavailable ||
          LastError.code() == StatusCode::DeadlineExceeded)
        continue;
      return LastError;
    }
    StatusOr<ReplyEnvelope> Reply = decodeReply(*ReplyBytes);
    if (!Reply.isOk()) {
      // Garbled reply: a transport fault; retry.
      LastError = unavailable("garbled reply: " + Reply.status().message());
      CG_LOG_INFO << "retrying garbled service reply";
      continue;
    }
    return Reply;
  }
  return LastError;
}

StatusOr<StartSessionReply>
ServiceClient::startSession(const StartSessionRequest &Req) {
  RequestEnvelope Env;
  Env.Kind = RequestKind::StartSession;
  Env.Start = Req;
  CG_ASSIGN_OR_RETURN(ReplyEnvelope Reply, call(Env));
  if (Status S = Reply.status(); !S.isOk())
    return S;
  return Reply.Start;
}

Status ServiceClient::endSession(uint64_t SessionId) {
  RequestEnvelope Env;
  Env.Kind = RequestKind::EndSession;
  Env.End.SessionId = SessionId;
  StatusOr<ReplyEnvelope> Reply = call(Env);
  if (!Reply.isOk())
    return Reply.status();
  return Reply->status();
}

StatusOr<StepReply> ServiceClient::step(const StepRequest &Req) {
  RequestEnvelope Env;
  Env.Kind = RequestKind::Step;
  Env.Step = Req;
  CG_ASSIGN_OR_RETURN(ReplyEnvelope Reply, call(Env));
  if (Status S = Reply.status(); !S.isOk())
    return S;
  return Reply.Step;
}

StatusOr<uint64_t> ServiceClient::fork(uint64_t SessionId) {
  RequestEnvelope Env;
  Env.Kind = RequestKind::Fork;
  Env.Fork.SessionId = SessionId;
  CG_ASSIGN_OR_RETURN(ReplyEnvelope Reply, call(Env));
  if (Status S = Reply.status(); !S.isOk())
    return S;
  return Reply.Fork.SessionId;
}

Status ServiceClient::heartbeat() {
  RequestEnvelope Env;
  Env.Kind = RequestKind::Heartbeat;
  StatusOr<ReplyEnvelope> Reply = call(Env);
  if (!Reply.isOk())
    return Reply.status();
  return Reply->status();
}
