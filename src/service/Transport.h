//===- service/Transport.h - Client/server message channel ------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level channel between frontend and backend. The paper runs
/// compiler services in separate processes behind gRPC; here the boundary
/// is preserved as serialized messages crossing a queue to a dedicated
/// service thread (QueueTransport), with an optional fault-injecting
/// wrapper (FlakyTransport) used by the robustness tests to simulate the
/// network dropping, delaying or corrupting traffic.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_SERVICE_TRANSPORT_H
#define COMPILER_GYM_SERVICE_TRANSPORT_H

#include "util/Rng.h"
#include "util/Status.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

namespace compiler_gym {
namespace service {

/// Abstract request/reply channel.
class Transport {
public:
  virtual ~Transport();

  /// Sends \p RequestBytes and blocks up to \p TimeoutMs for the reply.
  /// DeadlineExceeded on timeout; Unavailable when the channel is down.
  virtual StatusOr<std::string> roundTrip(const std::string &RequestBytes,
                                          int TimeoutMs) = 0;
};

/// Serialized-queue transport: requests cross a mutex-protected queue to a
/// dedicated dispatcher thread running \p Handler (the service), replies
/// come back through a per-call promise. This is the process boundary
/// stand-in: all traffic is fully serialized and the caller can time out
/// independently of the service making progress.
class QueueTransport : public Transport {
public:
  using Handler = std::function<std::string(const std::string &)>;

  explicit QueueTransport(Handler Handle);
  ~QueueTransport() override;

  StatusOr<std::string> roundTrip(const std::string &RequestBytes,
                                  int TimeoutMs) override;

private:
  struct Call {
    std::string Request;
    std::shared_ptr<std::promise<std::string>> Reply;
  };

  void dispatchLoop();

  Handler Handle;
  std::mutex Mutex;
  std::condition_variable Ready;
  std::deque<Call> Queue;
  bool Stopping = false;
  std::thread Dispatcher;
};

/// Fault plan for FlakyTransport.
struct TransportFaults {
  double DropProbability = 0.0;    ///< Reply never arrives (client times out).
  double GarbageProbability = 0.0; ///< Reply is corrupted bytes.
  /// The channel itself fails before the request is delivered — the socket
  /// analogue of a connection reset. Surfaces as Unavailable, the
  /// reconnect-shaped failure ServiceClient's backoff policy retries.
  double DisconnectProbability = 0.0;
  /// The reply is cut off mid-stream (a partial write on the peer): the
  /// client receives a truncated buffer that fails to decode.
  double PartialWriteProbability = 0.0;
  int ExtraLatencyMs = 0;          ///< Added to every call.
  uint64_t Seed = 0x5EED;
};

/// Wraps another transport and injects faults. Deterministic per seed.
class FlakyTransport : public Transport {
public:
  FlakyTransport(std::shared_ptr<Transport> Inner, TransportFaults Faults)
      : Inner(std::move(Inner)), Faults(Faults), Gen(Faults.Seed) {}

  StatusOr<std::string> roundTrip(const std::string &RequestBytes,
                                  int TimeoutMs) override;

private:
  std::shared_ptr<Transport> Inner;
  TransportFaults Faults;
  Rng Gen;
  std::mutex Mutex;
};

} // namespace service
} // namespace compiler_gym

#endif // COMPILER_GYM_SERVICE_TRANSPORT_H
