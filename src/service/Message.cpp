//===- service/Message.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// Message types are plain data; this TU anchors the header in the build.

#include "service/Message.h"
