//===- service/ServiceClient.h - Frontend RPC client ------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed client over the transport: the frontend half of the RPC boundary.
/// Handles per-call deadlines and transparent retry of transient
/// (Unavailable / garbled-reply) failures; non-transient failures
/// (Aborted = service crash, DeadlineExceeded = hang) are surfaced so the
/// environment layer can restart the service and replay its state, which
/// is the paper's fault-tolerance story (§IV-B).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_SERVICE_SERVICECLIENT_H
#define COMPILER_GYM_SERVICE_SERVICECLIENT_H

#include "service/CompilerService.h"
#include "service/Transport.h"

#include <memory>

namespace compiler_gym {
namespace service {

/// Client-side call policy.
struct ClientOptions {
  int TimeoutMs = 10000;
  int MaxRetries = 2;      ///< For transient failures only.
  /// Base retry delay. Retry N waits RetryBackoffMs * 2^(N-1), capped at
  /// RetryBackoffMaxMs, with ±50% jitter — in-process channels recover in
  /// microseconds, but a remote channel mid-reconnect (or a fleet of
  /// clients retrying in lockstep) needs capped exponential backoff.
  int RetryBackoffMs = 2;
  int RetryBackoffMaxMs = 250;
  /// Tenant credential stamped on every request envelope. Empty for
  /// in-process use; required by a multi-tenant gateway endpoint.
  std::string AuthToken;
  /// Stamp RequestEnvelope::DeadlineMs with the call's remaining budget on
  /// every attempt. TimeoutMs then acts as an *overall* per-call budget:
  /// retries and backoff sleeps consume it rather than extending it, the
  /// service rejects/cancels work that can no longer finish in time, and
  /// the gateway sheds queued requests that would expire anyway. Disable
  /// to get the legacy per-attempt timeout with no server-side deadline
  /// (the deadline-overhead bench baseline).
  bool PropagateDeadline = true;
};

/// A connection to one compiler service.
class ServiceClient {
public:
  /// Connects through an explicit transport (tests inject FlakyTransport;
  /// remote clients pass a net::SocketTransport). \p Service may be null
  /// for remote channels: there is no in-process backend to restart, so
  /// restartService() becomes a no-op and recovery is the server fleet's
  /// job (broker monitor / gateway).
  ServiceClient(std::shared_ptr<CompilerService> Service,
                std::shared_ptr<Transport> Channel, ClientOptions Opts = {});

  /// Convenience: builds the standard queue transport over \p Service.
  explicit ServiceClient(std::shared_ptr<CompilerService> Service,
                         ClientOptions Opts = {});

  StatusOr<StartSessionReply> startSession(const StartSessionRequest &Req);
  Status endSession(uint64_t SessionId);
  StatusOr<StepReply> step(const StepRequest &Req);
  StatusOr<uint64_t> fork(uint64_t SessionId);
  Status heartbeat();

  /// Relaunches the backend (used by the environment after crash/hang).
  /// No-op on remote channels (null service handle).
  void restartService();

  /// Per-client telemetry for the robustness tests and Table II
  /// accounting. Thin shims: the same events also feed the process-wide
  /// telemetry::MetricsRegistry (cg_client_* / cg_wire_bytes_total).
  uint64_t rpcCount() const { return RpcCount; }
  uint64_t retryCount() const { return RetryCount; }
  uint64_t restartCount() const { return RestartCount; }
  /// Retries that followed a channel-loss (Unavailable) failure — the
  /// reconnect-shaped subset of retryCount().
  uint64_t reconnectCount() const { return ReconnectCount; }
  /// Serialized request/reply bytes through this client (wire accounting
  /// for the observation-delta benches: a delta reply shows up directly
  /// as fewer bytes received).
  uint64_t wireBytesSent() const { return WireBytesSent; }
  uint64_t wireBytesReceived() const { return WireBytesReceived; }

  const std::shared_ptr<CompilerService> &service() const { return Service; }

private:
  /// Stamps \p Req with a process-unique RequestId (shared across retries,
  /// so the service can deduplicate re-executions) and the caller's trace
  /// context, opens the client RPC span, and performs the call.
  StatusOr<ReplyEnvelope> call(RequestEnvelope &Req);
  /// The retry loop proper (split out so call() can time it end-to-end).
  StatusOr<ReplyEnvelope> callAttempts(RequestEnvelope &Req);

  /// Delay before retry \p Attempt: capped exponential backoff with ±50%
  /// jitter, never less than \p RetryAfterHintMs (a typed backpressure
  /// hint from the server).
  int backoffDelayMs(int Attempt, uint32_t RetryAfterHintMs);

  std::shared_ptr<CompilerService> Service;
  std::shared_ptr<Transport> Channel;
  ClientOptions Opts;
  Rng BackoffJitter{0xBACC0FF};
  uint64_t RpcCount = 0;
  uint64_t RetryCount = 0;
  uint64_t RestartCount = 0;
  uint64_t ReconnectCount = 0;
  uint64_t WireBytesSent = 0;
  uint64_t WireBytesReceived = 0;
};

} // namespace service
} // namespace compiler_gym

#endif // COMPILER_GYM_SERVICE_SERVICECLIENT_H
