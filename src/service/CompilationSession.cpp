//===- service/CompilationSession.cpp -------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/CompilationSession.h"

#include <map>
#include <mutex>

using namespace compiler_gym;
using namespace compiler_gym::service;

CompilationSession::~CompilationSession() = default;

ActionSpace CompilationSession::currentActionSpace() {
  std::vector<ActionSpace> Spaces = getActionSpaces();
  return Spaces.empty() ? ActionSpace{} : Spaces.front();
}

StatusOr<std::unique_ptr<CompilationSession>> CompilationSession::fork() {
  return failedPrecondition("this compiler session does not support fork()");
}

namespace {
std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}
std::map<std::string, SessionFactory> &factoryMap() {
  static std::map<std::string, SessionFactory> Factories;
  return Factories;
}
} // namespace

void service::registerCompilationSession(const std::string &CompilerName,
                                         SessionFactory Factory) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  factoryMap()[CompilerName] = std::move(Factory);
}

std::unique_ptr<CompilationSession>
service::createCompilationSession(const std::string &CompilerName) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  auto It = factoryMap().find(CompilerName);
  if (It == factoryMap().end())
    return nullptr;
  return It->second();
}

std::vector<std::string> service::registeredCompilers() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  std::vector<std::string> Names;
  for (const auto &[Name, Factory] : factoryMap())
    Names.push_back(Name);
  return Names;
}
