//===- service/CompilerService.h - Backend session host ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common compiler-service runtime (§IV-B): hosts CompilationSession
/// instances behind the message protocol, independent of any particular
/// compiler. Includes the fault-injection hooks used to test the
/// frontend's crash recovery (a FaultPlan can make the service "crash"
/// after N operations or hang on a specific operation, standing in for
/// real compiler segfaults and infinite loops).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_SERVICE_COMPILERSERVICE_H
#define COMPILER_GYM_SERVICE_COMPILERSERVICE_H

#include "service/CompilationSession.h"
#include "service/Serialization.h"

#include <map>
#include <memory>
#include <mutex>

namespace compiler_gym {
namespace service {

/// Fault-injection plan for robustness testing.
struct FaultPlan {
  uint64_t CrashAfterOps = 0; ///< >0: service dies after N operations.
  uint64_t HangOnOp = 0;      ///< >0: operation N sleeps HangMs.
  int HangMs = 200;
};

/// Hosts sessions; decodes requests, dispatches, encodes replies.
class CompilerService {
public:
  explicit CompilerService(FaultPlan Plan = {});

  /// The transport handler: one serialized request in, one serialized
  /// reply out. Thread-compatible (called from the dispatcher thread).
  std::string handle(const std::string &RequestBytes);

  /// Simulates a process relaunch: clears all sessions and the crash flag.
  void restart();

  bool crashed() const;
  size_t numSessions() const;
  uint64_t opsHandled() const { return OpsHandled; }

private:
  ReplyEnvelope dispatch(const RequestEnvelope &Req);

  FaultPlan Plan;
  mutable std::mutex Mutex;
  bool Crashed = false;
  uint64_t OpsHandled = 0;
  uint64_t NextSessionId = 1;
  std::map<uint64_t, std::unique_ptr<CompilationSession>> Sessions;
};

} // namespace service
} // namespace compiler_gym

#endif // COMPILER_GYM_SERVICE_COMPILERSERVICE_H
