//===- service/CompilerService.h - Backend session host ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common compiler-service runtime (§IV-B): hosts CompilationSession
/// instances behind the message protocol, independent of any particular
/// compiler. Includes the fault-injection hooks used to test the
/// frontend's crash recovery (a FaultPlan can make the service "crash"
/// after N operations or hang on a specific operation, standing in for
/// real compiler segfaults and infinite loops).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_SERVICE_COMPILERSERVICE_H
#define COMPILER_GYM_SERVICE_COMPILERSERVICE_H

#include "service/CompilationSession.h"
#include "service/Serialization.h"

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace compiler_gym {
namespace service {

/// Fault-injection plan for robustness testing.
struct FaultPlan {
  uint64_t CrashAfterOps = 0; ///< >0: service dies after N operations.
  uint64_t HangOnOp = 0;      ///< >0: operation N sleeps HangMs.
  int HangMs = 200;
};

/// Interface to a cross-service observation cache. Implemented by
/// runtime::ObservationCache; declared here so the service layer does not
/// depend on the runtime layer. Implementations must be thread-safe: one
/// cache is typically shared by every shard of a ServiceBroker.
class ObservationCacheBase {
public:
  virtual ~ObservationCacheBase();

  /// Returns true and fills \p Out when (StateKey, SpaceName) is cached.
  virtual bool lookup(uint64_t StateKey, const std::string &SpaceName,
                      Observation &Out) = 0;

  /// Stores a computed observation under (StateKey, SpaceName).
  virtual void insert(uint64_t StateKey, const std::string &SpaceName,
                      const Observation &Obs) = 0;
};

/// Hosts sessions; decodes requests, dispatches, encodes replies.
class CompilerService {
public:
  explicit CompilerService(FaultPlan Plan = {});

  /// The transport handler: one serialized request in, one serialized
  /// reply out. Thread-compatible (called from the dispatcher thread).
  std::string handle(const std::string &RequestBytes);

  /// Simulates a process relaunch: clears all sessions and the crash flag.
  void restart();

  /// Installs a shared cache consulted for deterministic observations of
  /// sessions that expose a stateKey(). May be shared across services.
  void setObservationCache(std::shared_ptr<ObservationCacheBase> Cache);

  bool crashed() const { return Crashed.load(std::memory_order_relaxed); }
  size_t numSessions() const;
  uint64_t opsHandled() const {
    return OpsHandled.load(std::memory_order_relaxed);
  }

  /// Liveness heartbeat for the broker's hung-shard watchdog: bumped once
  /// per completed RPC and once per cancel-token poll inside long-running
  /// work (pass pipelines, cancellation-aware injected delays). A shard
  /// that is busy() but whose ticks stand still is wedged, not slow.
  uint64_t progressTicks() const {
    return ProgressTicks.load(std::memory_order_relaxed);
  }
  /// True while at least one RPC is inside handle(). Relaxed reads — the
  /// watchdog tolerates momentary skew.
  bool busy() const {
    return OpsStarted.load(std::memory_order_relaxed) !=
           OpsFinished.load(std::memory_order_relaxed);
  }
  /// Watchdog poisoning: asks in-flight work to stop at its next token
  /// poll. Cleared by restart().
  void requestAbort() { AbortRequested.store(true, std::memory_order_relaxed); }
  /// Marks the service crashed without waiting for in-flight work — the
  /// watchdog uses it to bounce every op still queued behind a wedge with
  /// Aborted so clients fail over instead of waiting out their timeouts.
  void markCrashed() { Crashed.store(true, std::memory_order_relaxed); }
  /// Observations answered as deltas instead of full payloads (telemetry
  /// for the wire-delta tests and benches).
  uint64_t deltaRepliesSent() const;

private:
  /// The mutex-guarded request path (dedup window, fault plan, dispatch,
  /// reply encoding); handle() wraps it with trace binding, the request's
  /// cancel token, and telemetry.
  std::string handleLocked(const RequestEnvelope &Req,
                           const util::CancelToken &Token);
  ReplyEnvelope dispatch(const RequestEnvelope &Req,
                         const util::CancelToken &Token);

  FaultPlan Plan;
  mutable std::mutex Mutex;
  /// Atomics below: read by broker monitor threads without taking Mutex
  /// (a watchdog that needed the Mutex would block behind the very wedge
  /// it is trying to detect).
  std::atomic<bool> Crashed{false};
  std::atomic<bool> AbortRequested{false};
  std::atomic<uint64_t> ProgressTicks{0};
  std::atomic<uint64_t> OpsStarted{0};
  std::atomic<uint64_t> OpsFinished{0};
  std::atomic<uint64_t> OpsHandled{0};
  uint64_t NextSessionId = 1;
  std::map<uint64_t, std::unique_ptr<CompilationSession>> Sessions;
  std::shared_ptr<ObservationCacheBase> ObsCache;
  /// Reply cache for request deduplication (idempotent retries): a retry
  /// carrying a RequestId we already served replays the stored reply
  /// instead of re-executing — a timed-out request is not removed from the
  /// transport queue, so without this the original and the retry would
  /// both apply their actions. Bounded FIFO window.
  static constexpr size_t DedupWindow = 512;
  std::unordered_map<uint64_t, std::string> ServedReplies;
  std::deque<uint64_t> ServedOrder;
  /// Per-session retained copy of the last full observation sent per
  /// delta-eligible space (each carries its StateKey): the base the next
  /// delta is computed against even when no shared ObservationCache is
  /// installed. Bounded by live sessions x delta-eligible spaces; dropped
  /// on EndSession and restart().
  std::map<uint64_t, std::unordered_map<std::string, Observation>> LastSent;
  uint64_t DeltaRepliesSent = 0;
};

} // namespace service
} // namespace compiler_gym

#endif // COMPILER_GYM_SERVICE_COMPILERSERVICE_H
