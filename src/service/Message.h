//===- service/Message.h - RPC message schema -------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request/reply message schema spoken between the frontend and the
/// compiler services — the analogue of CompilerGym's gRPC protocol. All
/// frontend/backend traffic is serialized through these types (see
/// Serialization.h), preserving the paper's process-isolation design even
/// though both ends live in one address space here.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_SERVICE_MESSAGE_H
#define COMPILER_GYM_SERVICE_MESSAGE_H

#include "datasets/Benchmark.h"
#include "util/Status.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace compiler_gym {
namespace service {

/// A discrete action space: a named list of action names.
struct ActionSpace {
  std::string Name;
  std::vector<std::string> ActionNames;

  size_t size() const { return ActionNames.size(); }
};

/// Value type of an observation space.
enum class ObservationType {
  Int64List,  ///< E.g. Autophase / InstCount vectors.
  DoubleList, ///< E.g. inst2vec embeddings (flattened).
  String,     ///< E.g. the IR text.
  Binary,     ///< E.g. serialized ProGraML graphs, object code.
  Int64Value, ///< E.g. code size.
  DoubleValue ///< E.g. runtime seconds.
};

/// Static description of an observation space: the typed descriptor the
/// frontend surfaces as core::SpaceInfo (§III-B). Shape and range are
/// advisory metadata — empty shape means scalar or dynamically sized, and
/// the default range is unbounded.
struct ObservationSpaceInfo {
  std::string Name;
  ObservationType Type = ObservationType::Int64Value;
  /// Fixed dimensions when statically known (e.g. {56} for Autophase);
  /// empty for scalars and dynamically-sized payloads (Ir text, graphs).
  std::vector<int64_t> Shape;
  /// Inclusive element bounds. Defaults are unbounded (infinities).
  double RangeMin = -std::numeric_limits<double>::infinity();
  double RangeMax = std::numeric_limits<double>::infinity();
  bool Deterministic = true;
  bool PlatformDependent = false;
};

/// One contiguous patch inside a delta-encoded observation: replaces
/// DropCount elements (bytes for String/Binary payloads) of the base value
/// starting at Start with this segment's payload. Exactly one of the
/// payload fields is populated, matching the observation's type.
struct ObservationSegment {
  uint64_t Start = 0;
  uint64_t DropCount = 0;
  std::vector<int64_t> Ints;
  std::vector<double> Doubles;
  std::string Str;
};

/// One observation value (tagged union, flat for easy serialization).
///
/// Epoch handshake: a reply observation may carry StateKey — the
/// content-addressed key (CompilationSession::stateKey()) of the state the
/// value was computed at. A client that retains the full value can
/// advertise that key in the next StepRequest (ObservationBaseKeys); the
/// service then answers with IsDelta set and only the changed
/// ObservationSegments relative to BaseKey, instead of the full payload.
/// An empty segment list with IsDelta means "unchanged since your base".
/// Keys are content-addressed, so they survive fork() and crash-recovery
/// replay. A service that cannot produce a delta (no base retained, space
/// nondeterministic or scalar) falls back to the legacy full payload with
/// IsDelta unset.
struct Observation {
  ObservationType Type = ObservationType::Int64Value;
  std::vector<int64_t> Ints;
  std::vector<double> Doubles;
  std::string Str;   ///< Also carries Binary payloads.
  int64_t IntValue = 0;
  double DoubleValue = 0.0;

  /// State key of the (full) value this observation represents; 0 = the
  /// backend does not expose state identity (no delta support).
  uint64_t StateKey = 0;
  /// When set, the payload lives in Segments (relative to BaseKey) and the
  /// flat payload fields above are empty.
  bool IsDelta = false;
  uint64_t BaseKey = 0;
  std::vector<ObservationSegment> Segments;
};

/// One action: an index into the session's action space, plus optional
/// integer payload for composite spaces (e.g. the GCC direct choice
/// space sets option values directly).
struct Action {
  int32_t Index = 0;
  std::vector<int64_t> Values;
};

// -- Requests / replies -------------------------------------------------------

enum class RequestKind : int32_t {
  StartSession = 1,
  EndSession,
  Step,
  Fork,
  Heartbeat,
};

/// Stable lowercase name of a request kind, used as the "kind" label on
/// per-RPC telemetry and in span names.
inline const char *requestKindName(RequestKind Kind) {
  switch (Kind) {
  case RequestKind::StartSession:
    return "start_session";
  case RequestKind::EndSession:
    return "end_session";
  case RequestKind::Step:
    return "step";
  case RequestKind::Fork:
    return "fork";
  case RequestKind::Heartbeat:
    return "heartbeat";
  }
  return "unknown";
}

struct StartSessionRequest {
  std::string CompilerName; ///< "llvm", "gcc", "loop_tool".
  datasets::Benchmark Bench;
  std::string ActionSpaceName; ///< Empty: use the default space.
  /// Crash recovery: when nonzero, ask the backend to restore the session
  /// to the snapshot content-addressed by this state key (the
  /// SessionStateKey of the last successful step) instead of starting from
  /// the benchmark's initial state. Best-effort: if the snapshot is gone
  /// (evicted, different process), the session starts fresh and the client
  /// falls back to action replay.
  uint64_t RestoreStateKey = 0;
};

struct StartSessionReply {
  uint64_t SessionId = 0;
  ActionSpace Space;
  std::vector<ObservationSpaceInfo> ObservationSpaces;
  /// True when RestoreStateKey was honored: the session already sits at
  /// the requested state and no action replay is needed.
  bool Restored = false;
};

struct EndSessionRequest {
  uint64_t SessionId = 0;
};

struct StepRequest {
  uint64_t SessionId = 0;
  std::vector<Action> Actions; ///< >1 = batched step (§III-B5).
  /// Lazy multi-space selection: every named space (observations and the
  /// metrics backing reward spaces alike) is computed in this one RPC and
  /// returned name-keyed in the reply.
  std::vector<std::string> ObservationSpaces;
  /// Delta handshake, parallel to ObservationSpaces (may be shorter or
  /// empty; missing entries mean 0): the StateKey of the newest full value
  /// the client retains for that space. Nonzero invites the service to
  /// reply with a delta against that base (see Observation).
  std::vector<uint64_t> ObservationBaseKeys;
};

struct StepReply {
  bool EndOfSession = false;
  bool ActionSpaceChanged = false;
  ActionSpace NewSpace; ///< Valid when ActionSpaceChanged.
  /// Space name of Observations[i] — the reply is self-describing so the
  /// frontend demuxes by name instead of by request-order cursor.
  std::vector<std::string> ObservationNames;
  std::vector<Observation> Observations;
  /// Content-addressed key of the session state after the batch applied
  /// (CompilationSession::stateKey(); 0 = backend has no state identity).
  /// Clients record it so a later crash recovery can restore the matching
  /// snapshot via StartSessionRequest::RestoreStateKey.
  uint64_t SessionStateKey = 0;
};

struct ForkRequest {
  uint64_t SessionId = 0;
};

struct ForkReply {
  uint64_t SessionId = 0;
};

/// The envelope that actually travels over the transport.
struct RequestEnvelope {
  RequestKind Kind = RequestKind::Heartbeat;
  /// Idempotency token: retries of one logical call carry the same id, and
  /// the service replays the cached reply instead of re-executing. Without
  /// it, a request that timed out in the transport queue (or behind a hang)
  /// would execute once for the original and once for the retry, silently
  /// double-applying actions. 0 = no deduplication.
  uint64_t RequestId = 0;
  /// Distributed-trace correlation (telemetry/Trace.h): the client stamps
  /// the trace id and the span id of its in-flight RPC span here, so
  /// service-side spans — running on the transport's dispatcher thread —
  /// stitch into the same trace as children of the client span. 0 = no
  /// sampled trace active.
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
  /// Remaining-budget deadline in milliseconds: how much of the caller's
  /// per-call timeout is left when this envelope is encoded. The client
  /// re-stamps it on every retry (budget minus elapsed attempts/backoff),
  /// the gateway re-stamps it after queueing and sheds requests that can
  /// no longer make it, and the service rejects already-expired requests
  /// with DeadlineExceeded before doing work and arms a CancelToken from
  /// it so pass pipelines abort mid-flight. 0 = no deadline.
  uint32_t DeadlineMs = 0;
  /// Multi-tenant credential (gateway/Gateway.h): remote clients present
  /// their tenant token on every request; the gateway maps it to a tenant
  /// for admission control, rate limiting and fair dispatch. Empty for
  /// in-process transports, and ignored by CompilerService itself.
  std::string AuthToken;
  StartSessionRequest Start;
  EndSessionRequest End;
  StepRequest Step;
  ForkRequest Fork;
};

struct ReplyEnvelope {
  StatusCode Code = StatusCode::Ok;
  std::string ErrorMessage;
  /// Typed backpressure (gateway): with Code == Unavailable, a nonzero
  /// value tells the client how long to wait before retrying — the request
  /// was rejected by flow control (full shard queue, rate limit, admission
  /// cap), not lost. Clients honor it in their retry backoff instead of
  /// treating the failure as a dead backend.
  uint32_t RetryAfterMs = 0;
  StartSessionReply Start;
  StepReply Step;
  ForkReply Fork;

  Status status() const {
    return Code == StatusCode::Ok ? Status::ok() : Status(Code, ErrorMessage);
  }
};

} // namespace service
} // namespace compiler_gym

#endif // COMPILER_GYM_SERVICE_MESSAGE_H
