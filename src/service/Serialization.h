//===- service/Serialization.h - Wire encoding ------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of the RPC message schema. A simple length-prefixed
/// little-endian format: fast, deterministic, and strict on decode (every
/// malformed buffer yields an error, never UB) — the transport boundary is
/// also a fuzz surface (see tests/service_fuzz_test).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_SERVICE_SERIALIZATION_H
#define COMPILER_GYM_SERVICE_SERIALIZATION_H

#include "service/Message.h"

namespace compiler_gym {
namespace service {

std::string encodeRequest(const RequestEnvelope &Req);
StatusOr<RequestEnvelope> decodeRequest(const std::string &Bytes);

std::string encodeReply(const ReplyEnvelope &Reply);
StatusOr<ReplyEnvelope> decodeReply(const std::string &Bytes);

} // namespace service
} // namespace compiler_gym

#endif // COMPILER_GYM_SERVICE_SERIALIZATION_H
