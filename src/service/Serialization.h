//===- service/Serialization.h - Wire encoding ------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of the RPC message schema. A simple length-prefixed
/// little-endian format: fast, deterministic, and strict on decode (every
/// malformed buffer yields an error, never UB) — the transport boundary is
/// also a fuzz surface (see tests/service_fuzz_test).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_SERVICE_SERIALIZATION_H
#define COMPILER_GYM_SERVICE_SERIALIZATION_H

#include "service/Message.h"

namespace compiler_gym {
namespace service {

std::string encodeRequest(const RequestEnvelope &Req);
StatusOr<RequestEnvelope> decodeRequest(const std::string &Bytes);

std::string encodeReply(const ReplyEnvelope &Reply);
StatusOr<ReplyEnvelope> decodeReply(const std::string &Bytes);

// -- Observation delta encoding -----------------------------------------------
//
// A step whose observation shares a cached state key with the client ships
// only changed segments (see the epoch-handshake contract on Observation in
// Message.h). These helpers implement the encoding; the policy — when to
// delta, against which base — lives in CompilerService and CompilerEnv.

/// True for payload types the delta encoder supports: element lists and
/// string/binary payloads. Scalars always travel in full.
bool deltaEligible(ObservationType T);

/// Serialized size in bytes of \p O inside a reply (wire accounting for
/// the delta-vs-full decision and the benches).
size_t observationWireSize(const Observation &O);

/// Builds \p Out as a delta from \p Base to \p Full: equal-length list
/// payloads diff into one segment per changed run; length-changing edits
/// and string/binary payloads diff into a single common-prefix/suffix
/// window. Returns false — \p Out untouched — when the types mismatch,
/// the type is not delta-eligible, or the delta would not be smaller than
/// the full payload. Key fields (StateKey/BaseKey) are the caller's job.
bool encodeObservationDelta(const Observation &Base, const Observation &Full,
                            Observation &Out);

/// Reconstructs the full observation from \p Base + \p Delta. Fails with
/// InvalidArgument on type mismatch or segments that do not fit the base
/// (the transport is a fuzz surface; a malformed delta must never read
/// out of bounds). The result carries Delta's StateKey.
StatusOr<Observation> applyObservationDelta(const Observation &Base,
                                            const Observation &Delta);

} // namespace service
} // namespace compiler_gym

#endif // COMPILER_GYM_SERVICE_SERIALIZATION_H
