//===- service/Transport.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Transport.h"

#include <future>

using namespace compiler_gym;
using namespace compiler_gym::service;

Transport::~Transport() = default;

QueueTransport::QueueTransport(Handler Handle)
    : Handle(std::move(Handle)), Dispatcher([this] { dispatchLoop(); }) {}

QueueTransport::~QueueTransport() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Ready.notify_all();
  Dispatcher.join();
}

void QueueTransport::dispatchLoop() {
  for (;;) {
    Call C;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Ready.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Stopping && Queue.empty())
        return;
      C = std::move(Queue.front());
      Queue.pop_front();
    }
    C.Reply->set_value(Handle(C.Request));
  }
}

StatusOr<std::string> QueueTransport::roundTrip(const std::string &Bytes,
                                                int TimeoutMs) {
  auto Promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> Future = Promise->get_future();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping)
      return unavailable("transport is shut down");
    Queue.push_back({Bytes, Promise});
  }
  Ready.notify_one();
  if (Future.wait_for(std::chrono::milliseconds(TimeoutMs)) !=
      std::future_status::ready)
    return deadlineExceeded("no reply within " + std::to_string(TimeoutMs) +
                            "ms");
  return Future.get();
}

StatusOr<std::string> FlakyTransport::roundTrip(const std::string &Bytes,
                                                int TimeoutMs) {
  double DropRoll, GarbageRoll, DisconnectRoll, PartialRoll;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    DropRoll = Gen.uniform();
    GarbageRoll = Gen.uniform();
    // Disabled faults must not consume draws: fault sequences are seeded
    // and tests depend on the stream staying stable per configuration.
    DisconnectRoll = Faults.DisconnectProbability > 0 ? Gen.uniform() : 1.0;
    PartialRoll = Faults.PartialWriteProbability > 0 ? Gen.uniform() : 1.0;
  }
  if (Faults.ExtraLatencyMs > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Faults.ExtraLatencyMs));
  if (DisconnectRoll < Faults.DisconnectProbability)
    return unavailable("connection reset by flaky transport");
  if (DropRoll < Faults.DropProbability)
    return deadlineExceeded("reply dropped by flaky transport");
  StatusOr<std::string> Reply = Inner->roundTrip(Bytes, TimeoutMs);
  if (!Reply.isOk())
    return Reply;
  if (PartialRoll < Faults.PartialWriteProbability)
    return Reply->substr(0, Reply->size() / 2);
  if (GarbageRoll < Faults.GarbageProbability) {
    std::string Corrupted = *Reply;
    if (!Corrupted.empty())
      Corrupted[Corrupted.size() / 2] ^= 0x5A;
    else
      Corrupted = "\xFF\xFF";
    return Corrupted;
  }
  return Reply;
}
