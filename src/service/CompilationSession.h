//===- service/CompilationSession.h - Compiler integration API --*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CompilationSession interface from §IV-A / Listing 3 of the paper:
/// the complete contract a compiler must implement to become a
/// CompilerGym environment. The common runtime (CompilerService) maps
/// implementations onto the Gym API.
///
/// \code
///   struct MyCompilationSession : public CompilationSession {
///     std::vector<ActionSpace> getActionSpaces() override {...}
///     std::vector<ObservationSpaceInfo> getObservationSpaces() override {...}
///     Status init(const ActionSpace&, const Benchmark&) override {...}
///     Status applyAction(const Action&, bool& endOfEpisode,
///                        bool& actionSpaceChanged) override {...}
///     Status computeObservation(const ObservationSpaceInfo&,
///                               Observation&) override {...}
///   };
///   registerCompilationSession("my-compiler",
///                              [] { return std::make_unique<My...>(); });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_SERVICE_COMPILATIONSESSION_H
#define COMPILER_GYM_SERVICE_COMPILATIONSESSION_H

#include "service/Message.h"
#include "util/CancelToken.h"

#include <functional>
#include <memory>

namespace compiler_gym {
namespace service {

/// One episode of compilation: a stateful dialogue between the runtime and
/// a compiler.
class CompilationSession {
public:
  virtual ~CompilationSession();

  /// The action spaces this compiler supports (first is the default).
  virtual std::vector<ActionSpace> getActionSpaces() = 0;

  /// The observation spaces this compiler supports.
  virtual std::vector<ObservationSpaceInfo> getObservationSpaces() = 0;

  /// Begins a session on \p Bench using \p Space.
  virtual Status init(const ActionSpace &Space,
                      const datasets::Benchmark &Bench) = 0;

  /// Applies one action. Sets \p EndOfEpisode when the session cannot
  /// continue, and \p ActionSpaceChanged when the space mutated (fetch the
  /// new one via currentActionSpace()).
  virtual Status applyAction(const Action &A, bool &EndOfEpisode,
                             bool &ActionSpaceChanged) = 0;

  /// Computes one observation of the current state.
  virtual Status computeObservation(const ObservationSpaceInfo &Space,
                                    Observation &Out) = 0;

  /// The action space after a change (default: first static space).
  virtual ActionSpace currentActionSpace();

  /// Cheap 64-bit digest identifying the session's current state (benchmark
  /// plus applied actions), used by the observation cache to deduplicate
  /// recomputation across sessions that reach identical states. Return 0
  /// (the default) to opt out of caching.
  virtual uint64_t stateKey() { return 0; }

  /// Deep copy for the fork() operator (§III-B6). Optional.
  virtual StatusOr<std::unique_ptr<CompilationSession>> fork();

  /// Crash recovery: restores the session (already init()-ed on its
  /// benchmark) to the state content-addressed by \p StateKey, typically
  /// from a snapshot store. Returns true on success — the session then
  /// sits at exactly the state whose stateKey() equals \p StateKey, and
  /// the client skips action replay. The default cannot restore.
  virtual bool restore(uint64_t StateKey) {
    (void)StateKey;
    return false;
  }

  /// Cooperative cancellation: the runtime attaches the request's token for
  /// the duration of one RPC (and detaches it afterwards — the token is
  /// stack-allocated in the RPC handler). Long-running backends poll it
  /// between units of work and abort with the session left in its last
  /// committed state; backends that never look at it simply run to
  /// completion.
  void setCancelToken(const util::CancelToken *Tok) { Cancel = Tok; }

protected:
  /// The token attached to the in-flight RPC, or null. Valid only while a
  /// runtime call into this session is on the stack.
  const util::CancelToken *cancelToken() const { return Cancel; }

private:
  const util::CancelToken *Cancel = nullptr;
};

using SessionFactory = std::function<std::unique_ptr<CompilationSession>()>;

/// Registers a compiler integration under \p CompilerName (the analogue of
/// runtime::createAndRunService<T> from Listing 3).
void registerCompilationSession(const std::string &CompilerName,
                                SessionFactory Factory);

/// Instantiates a session for \p CompilerName; nullptr if unregistered.
std::unique_ptr<CompilationSession>
createCompilationSession(const std::string &CompilerName);

/// Names of all registered compilers.
std::vector<std::string> registeredCompilers();

} // namespace service
} // namespace compiler_gym

#endif // COMPILER_GYM_SERVICE_COMPILATIONSESSION_H
