//===- gateway/Gateway.h - Multi-tenant service gateway ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-tenant front door: one socket endpoint (net/NetServer)
/// multiplexing many remote clients onto a runtime::ServiceBroker shard
/// fleet. This is the piece that turns the single-user client/service
/// pair into the paper's deployment story — a shared compiler-optimization
/// service that many users hit concurrently without interfering with each
/// other.
///
/// Per request the gateway:
///   1. authenticates the envelope's AuthToken against the tenant table;
///   2. admits or rejects new sessions (per-tenant and global caps);
///   3. rate-limits steps through the tenant's token bucket;
///   4. queues the op on its session's shard (bounded queue — a full
///      queue is an explicit Unavailable + RetryAfterMs reply, never a
///      silent drop) where a per-shard dispatcher serves tenants by
///      weighted round-robin. At dequeue time, deadline-carrying ops whose
///      remaining budget has expired — or is smaller than the shard's
///      observed (EWMA) backend service time — are shed with a typed reply
///      instead of burning a backend call that cannot finish in time;
///   5. forwards the envelope to the backend with the session id rewritten
///      to the backend's — but the client's RequestId, TraceId and SpanId
///      preserved, so idempotent retry dedup and trace stitching work
///      end-to-end through the gateway.
///
/// Sessions are gateway-scoped: clients hold gateway session ids, the
/// gateway maps them to (shard, backend id) with session→shard affinity.
/// When a shard crashes (the broker monitor restarts it) the next op on an
/// affected session triggers a transparent snapshot restore from the
/// session's last state key; when that is impossible the client sees the
/// standard "no session <id>" loss signal and its own replay recovery
/// takes over. drainShard() migrates sessions off a shard the same way,
/// mid-episode, for graceful scale-in; addShard() grows the fleet.
///
/// Step replies are forwarded byte-for-byte (they carry no session ids),
/// so observation payloads — including wire deltas — are exactly what the
/// backend produced.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_GATEWAY_GATEWAY_H
#define COMPILER_GYM_GATEWAY_GATEWAY_H

#include "net/NetServer.h"
#include "runtime/ServiceBroker.h"
#include "service/Message.h"

#include <memory>
#include <string>
#include <vector>

namespace compiler_gym {
namespace gateway {

/// One tenant's identity and resource envelope.
struct TenantConfig {
  std::string Name;
  /// Credential presented in RequestEnvelope::AuthToken.
  std::string Token;
  /// Weighted-fair share of each shard dispatcher (relative to the other
  /// tenants; a weight-3 tenant gets 3 ops served per round for a
  /// weight-1 tenant's one, when both have work queued).
  int Weight = 1;
  /// Cap on this tenant's live sessions (0 = unlimited).
  size_t MaxSessions = 64;
  /// Token-bucket rate limit on step/fork ops (0 = unlimited).
  double StepsPerSec = 0.0;
  double Burst = 8.0;
};

struct GatewayOptions {
  /// Endpoint to listen on ("tcp:127.0.0.1:0" / "unix:/tmp/cg.sock").
  net::NetAddress Listen;
  /// The tenant table. Empty = one implicit tenant with an empty token
  /// and no limits (single-user deployments, benches).
  std::vector<TenantConfig> Tenants;
  size_t NumShards = 2;
  /// Global live-session cap across all tenants (0 = unlimited).
  size_t MaxSessionsTotal = 256;
  /// Bounded per-shard dispatch queue; ops beyond this are rejected with
  /// Unavailable + RetryAfterMs.
  size_t MaxQueuePerShard = 128;
  /// Retry hints attached to flow-control rejections. Rate-limit
  /// rejections compute theirs from the bucket deficit instead.
  uint32_t QueueRetryAfterMs = 10;
  uint32_t AdmissionRetryAfterMs = 50;
  /// Deadline for one backend RPC issued on behalf of a client op. Ops
  /// carrying a client deadline (RequestEnvelope::DeadlineMs) cap this
  /// further to their remaining budget.
  int BackendTimeoutMs = 10000;
  /// Fault plan applied to every shard (robustness tests).
  service::FaultPlan ShardFaults;
  /// Broker monitor sweep interval (restarts crashed shards); 0 disables.
  int MonitorIntervalMs = 20;
  /// Hung-shard watchdog stall window, passed through to the broker
  /// (see BrokerOptions::StallWindowMs); 0 disables.
  int StallWindowMs = 0;
  net::NetServerOptions Server;
};

/// A listening, serving gateway. Construction starts it; destruction
/// stops the listener, drains the dispatchers and tears down the fleet.
class Gateway {
public:
  static StatusOr<std::unique_ptr<Gateway>> serve(GatewayOptions Opts);

  ~Gateway();
  Gateway(const Gateway &) = delete;
  Gateway &operator=(const Gateway &) = delete;

  /// The bound listen address (real port for tcp:...:0) — dial this.
  const net::NetAddress &boundAddress() const;

  size_t numShards() const;
  size_t sessionCount() const;
  runtime::ServiceBroker &broker();

  /// Grows the fleet by one shard and returns its index. New sessions
  /// start landing on it immediately (least-loaded placement).
  size_t addShard();

  /// Gracefully drains shard \p Index: it stops receiving new sessions,
  /// and every live session on it is migrated to another shard via
  /// snapshot restore (mid-episode, transparent to the client). Sessions
  /// whose state cannot be restored elsewhere are dropped — their clients
  /// see session loss and replay. Returns the number migrated. The shard
  /// itself keeps running (it may still be a migration target later via
  /// undrainShard()).
  size_t drainShard(size_t Index);
  void undrainShard(size_t Index);

  // -- Introspection / test hooks --------------------------------------------
  /// Ops dispatched to backends on behalf of \p TenantName.
  uint64_t dispatchedFor(const std::string &TenantName) const;
  /// Transparent snapshot restores performed after backend session loss.
  uint64_t restores() const;
  /// Queued ops shed at dequeue time for exhausted/insufficient deadline
  /// budget.
  uint64_t shedExpired() const;
  /// Sessions moved by drainShard().
  uint64_t migrations() const;
  /// Ops sitting in dispatch queues right now, across all shards.
  size_t queuedTotal() const;
  /// Freezes / resumes every shard dispatcher (ops queue but are not
  /// served) — lets tests load queues deterministically.
  void pauseDispatch();
  void resumeDispatch();

private:
  struct Impl;
  explicit Gateway(std::unique_ptr<Impl> I);
  std::unique_ptr<Impl> I;
};

} // namespace gateway
} // namespace compiler_gym

#endif // COMPILER_GYM_GATEWAY_GATEWAY_H
