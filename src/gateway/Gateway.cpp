//===- gateway/Gateway.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Locking hierarchy (acquire downwards, never upwards):
//   SessionEntry::M  — per-session op lock; serializes backend ops,
//                      transparent restore and drain migration for one
//                      session. Held across backend RPCs (by design: the
//                      backend protocol is one-op-per-session-at-a-time).
//   SessionsM        — the session table, tenant/global admission counts
//                      and per-shard placement counts. Never held across
//                      an RPC.
//   ShardState::M    — one shard's dispatch queues. Never held across an
//                      RPC.
// TenantState::BucketM is a leaf (token-bucket arithmetic only).
//
//===----------------------------------------------------------------------===//

#include "gateway/Gateway.h"

#include "fault/FaultRegistry.h"
#include "service/Serialization.h"
#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"
#include "util/Logging.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::gateway;
using service::ReplyEnvelope;
using service::RequestEnvelope;
using service::RequestKind;

namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::MetricsRegistry;

Counter &requestsTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_gateway_requests_total", {}, "Requests received by gateways");
  return C;
}

Counter &authFailuresTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_gateway_auth_failures_total", {},
      "Requests rejected for an unknown tenant token");
  return C;
}

Counter &rejectedTotal(const char *Reason) {
  static MetricsRegistry &M = MetricsRegistry::global();
  static const char *Help =
      "Flow-control rejections (explicit Unavailable + retry-after), by "
      "reason";
  static Counter &Admission = M.counter("cg_gateway_rejected_total",
                                        {{"reason", "admission"}}, Help);
  static Counter &Rate =
      M.counter("cg_gateway_rejected_total", {{"reason", "rate"}}, Help);
  static Counter &Queue =
      M.counter("cg_gateway_rejected_total", {{"reason", "queue"}}, Help);
  if (std::string(Reason) == "admission")
    return Admission;
  if (std::string(Reason) == "rate")
    return Rate;
  return Queue;
}

Gauge &sessionsGauge() {
  static Gauge &G = MetricsRegistry::global().gauge(
      "cg_gateway_sessions", {}, "Live gateway sessions across all tenants");
  return G;
}

Counter &restoresTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_gateway_restores_total", {},
      "Transparent snapshot restores after backend session loss");
  return C;
}

Counter &migrationsTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_gateway_migrations_total", {},
      "Sessions moved between shards by drainShard()");
  return C;
}

Counter &shedExpiredTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_gateway_shed_expired_total", {},
      "Queued ops shed at dequeue for exhausted/insufficient deadline "
      "budget");
  return C;
}

Counter &deadlineExceededGatewayTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_rpc_deadline_exceeded_total", {{"layer", "gateway"}},
      "RPCs rejected for an expired deadline, by layer");
  return C;
}

/// Serialized flow-control / error reply.
std::string errorReply(const Status &S, uint32_t RetryAfterMs) {
  ReplyEnvelope Reply;
  Reply.Code = S.code();
  Reply.ErrorMessage = S.message();
  Reply.RetryAfterMs = RetryAfterMs;
  return service::encodeReply(Reply);
}

bool isBackendSessionLoss(const ReplyEnvelope &Reply) {
  return Reply.Code == StatusCode::NotFound &&
         Reply.ErrorMessage.rfind("no session", 0) == 0;
}

} // namespace

namespace {

struct TenantState {
  TenantConfig Cfg;
  size_t Index = 0;       ///< Position in the dispatcher queue arrays.
  Counter *DispatchedCtr = nullptr;

  // Token bucket.
  std::mutex BucketM;
  double Tokens = 0;
  std::chrono::steady_clock::time_point LastRefill;

  // Guarded by Impl::SessionsM.
  size_t LiveSessions = 0;

  std::atomic<uint64_t> Dispatched{0};

  /// Takes one token; false = rejected, with the refill wait in
  /// \p RetryAfterMs.
  bool allow(uint32_t &RetryAfterMs) {
    if (Cfg.StepsPerSec <= 0)
      return true;
    std::lock_guard<std::mutex> Lock(BucketM);
    auto Now = std::chrono::steady_clock::now();
    double Dt = std::chrono::duration<double>(Now - LastRefill).count();
    LastRefill = Now;
    Tokens = std::min(Cfg.Burst, Tokens + Dt * Cfg.StepsPerSec);
    if (Tokens >= 1.0) {
      Tokens -= 1.0;
      return true;
    }
    double NeedSec = (1.0 - Tokens) / Cfg.StepsPerSec;
    RetryAfterMs = static_cast<uint32_t>(
        std::max(1.0, std::ceil(NeedSec * 1000.0)));
    return false;
  }
};

struct SessionEntry {
  std::mutex M; ///< Op lock; see the hierarchy note at the top.
  uint64_t GwId = 0;
  /// Atomic so the handler can read a routing hint without M; writes
  /// (migration) happen under M.
  std::atomic<size_t> Shard{0};
  uint64_t BackendId = 0;
  /// Content-addressed key of the last committed step — what a restore
  /// or migration reconstructs from.
  uint64_t LastStateKey = 0;
  /// The original start parameters, replayed on restore/migration.
  service::StartSessionRequest Start;
  TenantState *Tenant = nullptr;
  bool Dead = false; ///< Dropped from the table; queued ops must bounce.
};

struct Job {
  RequestEnvelope Env;
  net::ReplyFn Reply;
  std::shared_ptr<SessionEntry> Entry; ///< Null for StartSession.
  TenantState *Tenant = nullptr;
  /// StartSession/Fork reserved an admission slot that must be released
  /// if the op fails or is abandoned.
  bool HoldsAdmission = false;
  /// Absolute deadline derived from the envelope's remaining-budget
  /// DeadlineMs at intake; drives dequeue-time shedding and the backend
  /// re-stamp.
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline{};
};

struct ShardState {
  explicit ShardState(size_t Index, size_t NumTenants)
      : Index(Index), Queues(NumTenants) {}

  const size_t Index;
  std::mutex M;
  std::condition_variable Work;
  std::vector<std::deque<Job>> Queues; ///< One per tenant.
  size_t Pending = 0;
  bool Paused = false;
  bool Stopping = false;
  size_t Cursor = 0;        ///< WRR: tenant currently being served.
  size_t ServedInBurst = 0; ///< Ops served from Cursor this turn.
  /// EWMA of this shard's backend round-trip time, µs (0 until the first
  /// sample). Relaxed: a stale read only mistunes one shed decision.
  std::atomic<int64_t> EwmaUs{0};
  std::thread Dispatcher;
};

} // namespace

struct Gateway::Impl {
  explicit Impl(GatewayOptions O)
      : Opts(std::move(O)), Broker(brokerOptions(Opts)) {}

  static runtime::BrokerOptions brokerOptions(const GatewayOptions &O) {
    runtime::BrokerOptions B;
    B.NumShards = std::max<size_t>(1, O.NumShards);
    B.Faults = O.ShardFaults;
    B.MonitorIntervalMs = O.MonitorIntervalMs;
    B.StallWindowMs = O.StallWindowMs;
    return B;
  }

  GatewayOptions Opts;
  runtime::ServiceBroker Broker;
  std::vector<std::unique_ptr<TenantState>> Tenants;
  std::unordered_map<std::string, TenantState *> ByToken;

  mutable std::mutex SessionsM;
  std::unordered_map<uint64_t, std::shared_ptr<SessionEntry>> Sessions;
  uint64_t NextGwId = 1;
  size_t TotalSessions = 0;
  std::vector<size_t> ShardSessions; ///< Placement counts, per shard.
  std::vector<bool> ShardDraining;

  mutable std::mutex ShardsM;
  std::vector<std::unique_ptr<ShardState>> Queues;

  std::atomic<uint64_t> Restores{0};
  std::atomic<uint64_t> Migrations{0};
  std::atomic<uint64_t> Shed{0};

  /// Created last, torn down first: while it lives, onRequest may fire.
  std::unique_ptr<net::NetServer> Server;

  // -- Lifecycle -------------------------------------------------------------

  Status start() {
    // Pre-register the robustness series so they scrape as zero before the
    // first shed/expiry instead of being absent.
    shedExpiredTotal();
    deadlineExceededGatewayTotal();
    if (Opts.Tenants.empty()) {
      // Single-user mode: one implicit tenant matching the default empty
      // client token, with no limits.
      TenantConfig Anon;
      Anon.Name = "default";
      Anon.MaxSessions = 0;
      Opts.Tenants.push_back(Anon);
    }
    for (size_t I = 0; I < Opts.Tenants.size(); ++I) {
      auto T = std::make_unique<TenantState>();
      T->Cfg = Opts.Tenants[I];
      T->Index = I;
      T->Tokens = T->Cfg.Burst;
      T->LastRefill = std::chrono::steady_clock::now();
      T->DispatchedCtr = &MetricsRegistry::global().counter(
          "cg_gateway_dispatched_total", {{"tenant", T->Cfg.Name}},
          "Ops dispatched to backend shards, per tenant");
      if (!ByToken.emplace(T->Cfg.Token, T.get()).second)
        return invalidArgument("duplicate tenant token for '" + T->Cfg.Name +
                               "'");
      Tenants.push_back(std::move(T));
    }
    size_t NumShards = Broker.numShards();
    ShardSessions.assign(NumShards, 0);
    ShardDraining.assign(NumShards, false);
    for (size_t I = 0; I < NumShards; ++I)
      startDispatcher(I);
    CG_ASSIGN_OR_RETURN(
        Server, net::NetServer::serve(
                    Opts.Listen,
                    [this](std::string Bytes, net::ReplyFn Reply) {
                      onRequest(std::move(Bytes), std::move(Reply));
                    },
                    Opts.Server));
    return Status::ok();
  }

  void startDispatcher(size_t Shard) {
    std::lock_guard<std::mutex> Lock(ShardsM);
    Queues.push_back(std::make_unique<ShardState>(Shard, Tenants.size()));
    ShardState *S = Queues.back().get();
    S->Dispatcher = std::thread([this, S] { dispatchLoop(*S); });
  }

  void stop() {
    // Listener first: after this no handler can enqueue.
    Server.reset();
    std::vector<ShardState *> All;
    {
      std::lock_guard<std::mutex> Lock(ShardsM);
      for (auto &S : Queues)
        All.push_back(S.get());
    }
    for (ShardState *S : All) {
      {
        std::lock_guard<std::mutex> Lock(S->M);
        S->Stopping = true;
      }
      S->Work.notify_all();
    }
    for (ShardState *S : All)
      if (S->Dispatcher.joinable())
        S->Dispatcher.join();
    // Broker (and its shards' dispatcher threads) dies with Impl.
  }

  ShardState &shardQueue(size_t Shard) {
    std::lock_guard<std::mutex> Lock(ShardsM);
    return *Queues[Shard];
  }

  // -- Admission / placement -------------------------------------------------

  TenantState *authenticate(const std::string &Token) {
    auto It = ByToken.find(Token); // Table is immutable after start().
    return It == ByToken.end() ? nullptr : It->second;
  }

  Status admitSession(TenantState *T) {
    std::lock_guard<std::mutex> Lock(SessionsM);
    if (T->Cfg.MaxSessions && T->LiveSessions >= T->Cfg.MaxSessions)
      return unavailable("tenant '" + T->Cfg.Name +
                         "' is at its session limit (" +
                         std::to_string(T->Cfg.MaxSessions) + ")");
    if (Opts.MaxSessionsTotal && TotalSessions >= Opts.MaxSessionsTotal)
      return unavailable("gateway is at its session limit (" +
                         std::to_string(Opts.MaxSessionsTotal) + ")");
    ++T->LiveSessions;
    ++TotalSessions;
    return Status::ok();
  }

  void releaseAdmission(TenantState *T) {
    std::lock_guard<std::mutex> Lock(SessionsM);
    --T->LiveSessions;
    --TotalSessions;
  }

  /// Least-populated non-draining shard; bumps its placement count.
  /// SIZE_MAX when every shard is draining.
  size_t reserveShard() {
    std::lock_guard<std::mutex> Lock(SessionsM);
    size_t Best = SIZE_MAX;
    for (size_t I = 0; I < ShardSessions.size(); ++I) {
      if (ShardDraining[I])
        continue;
      if (Best == SIZE_MAX || ShardSessions[I] < ShardSessions[Best])
        Best = I;
    }
    if (Best != SIZE_MAX)
      ++ShardSessions[Best];
    return Best;
  }

  void unreserveShard(size_t Shard) {
    std::lock_guard<std::mutex> Lock(SessionsM);
    --ShardSessions[Shard];
  }

  std::shared_ptr<SessionEntry> findSession(uint64_t GwId) {
    std::lock_guard<std::mutex> Lock(SessionsM);
    auto It = Sessions.find(GwId);
    return It == Sessions.end() ? nullptr : It->second;
  }

  /// Registers a freshly created backend session. The admission slot was
  /// reserved by the handler; the shard slot by reserveShard().
  std::shared_ptr<SessionEntry>
  registerSession(TenantState *T, size_t Shard, uint64_t BackendId,
                  const service::StartSessionRequest &Start,
                  uint64_t LastStateKey) {
    auto Entry = std::make_shared<SessionEntry>();
    Entry->Shard.store(Shard, std::memory_order_relaxed);
    Entry->BackendId = BackendId;
    Entry->Start = Start;
    Entry->Start.RestoreStateKey = 0;
    Entry->LastStateKey = LastStateKey;
    Entry->Tenant = T;
    std::lock_guard<std::mutex> Lock(SessionsM);
    Entry->GwId = NextGwId++;
    Sessions.emplace(Entry->GwId, Entry);
    sessionsGauge().add(1);
    return Entry;
  }

  /// Removes \p Entry from the table and returns its resources. Caller
  /// holds Entry->M.
  void dropSession(SessionEntry &Entry) {
    if (Entry.Dead)
      return;
    Entry.Dead = true;
    {
      std::lock_guard<std::mutex> Lock(SessionsM);
      Sessions.erase(Entry.GwId);
      --Entry.Tenant->LiveSessions;
      --TotalSessions;
      --ShardSessions[Entry.Shard.load(std::memory_order_relaxed)];
    }
    sessionsGauge().add(-1);
  }

  // -- Request intake (NetServer handler threads) ----------------------------

  void reject(const char *Reason, net::ReplyFn &Reply, const Status &S,
              uint32_t RetryAfterMs) {
    rejectedTotal(Reason).inc();
    Reply(errorReply(S, RetryAfterMs));
  }

  void onRequest(std::string Bytes, net::ReplyFn Reply) {
    requestsTotal().inc();
    StatusOr<RequestEnvelope> Req = service::decodeRequest(Bytes);
    if (!Req.isOk()) {
      Reply(errorReply(Req.status(), 0));
      return;
    }
    TenantState *T = authenticate(Req->AuthToken);
    if (!T) {
      authFailuresTotal().inc();
      Reply(errorReply(
          failedPrecondition("unknown tenant token"), 0));
      return;
    }
    // Heartbeats answer locally: they probe the gateway, not a shard, and
    // must work even when every queue is saturated.
    if (Req->Kind == RequestKind::Heartbeat) {
      Reply(service::encodeReply(ReplyEnvelope{}));
      return;
    }

    Job J;
    J.Env = std::move(*Req);
    J.Reply = std::move(Reply);
    J.Tenant = T;
    if (J.Env.DeadlineMs > 0) {
      // Convert the remaining-budget stamp to an absolute deadline at
      // intake: queue wait then counts against the budget, which is what
      // dequeue-time shedding and the backend re-stamp measure against.
      J.HasDeadline = true;
      J.Deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(J.Env.DeadlineMs);
    }
    size_t QueueShard = 0;

    switch (J.Env.Kind) {
    case RequestKind::StartSession: {
      Status Adm = admitSession(T);
      if (!Adm.isOk()) {
        reject("admission", J.Reply, Adm, Opts.AdmissionRetryAfterMs);
        return;
      }
      J.HoldsAdmission = true;
      // Placement happens at dispatch time (the queue wait may overlap a
      // drain); queue residency just needs spread: round-robin by id.
      QueueShard = leastLoadedQueue();
      break;
    }
    case RequestKind::Step:
    case RequestKind::Fork: {
      uint32_t Wait = 0;
      if (!T->allow(Wait)) {
        reject("rate", J.Reply,
               unavailable("rate limit exceeded for tenant '" + T->Cfg.Name +
                           "'"),
               Wait);
        return;
      }
      uint64_t GwId = J.Env.Kind == RequestKind::Step
                          ? J.Env.Step.SessionId
                          : J.Env.Fork.SessionId;
      J.Entry = findSession(GwId);
      if (!J.Entry) {
        J.Reply(errorReply(notFound("no session " + std::to_string(GwId)),
                           0));
        return;
      }
      if (J.Env.Kind == RequestKind::Fork) {
        Status Adm = admitSession(T);
        if (!Adm.isOk()) {
          reject("admission", J.Reply, Adm, Opts.AdmissionRetryAfterMs);
          return;
        }
        J.HoldsAdmission = true;
      }
      QueueShard = J.Entry->Shard.load(std::memory_order_relaxed);
      break;
    }
    case RequestKind::EndSession: {
      J.Entry = findSession(J.Env.End.SessionId);
      if (!J.Entry) {
        // Unknown EndSession is Ok, matching CompilerService semantics
        // (idempotent teardown).
        J.Reply(service::encodeReply(ReplyEnvelope{}));
        return;
      }
      QueueShard = J.Entry->Shard.load(std::memory_order_relaxed);
      break;
    }
    case RequestKind::Heartbeat:
      return; // Handled above.
    }

    // On rejection enqueue() already replied and refunded the admission
    // slot; nothing more to do either way.
    enqueue(QueueShard, std::move(J));
  }

  /// Queue spread for StartSession jobs (their backend shard is chosen at
  /// dispatch): the emptiest dispatch queue.
  size_t leastLoadedQueue() {
    std::lock_guard<std::mutex> Lock(ShardsM);
    size_t Best = 0, BestPending = SIZE_MAX;
    for (size_t I = 0; I < Queues.size(); ++I) {
      std::lock_guard<std::mutex> QLock(Queues[I]->M);
      if (Queues[I]->Pending < BestPending) {
        Best = I;
        BestPending = Queues[I]->Pending;
      }
    }
    return Best;
  }

  /// False = rejected (queue full / stopping); the job's Reply has been
  /// invoked and any admission reservation refunded.
  bool enqueue(size_t Shard, Job J) {
    ShardState &S = shardQueue(Shard);
    {
      std::lock_guard<std::mutex> Lock(S.M);
      if (!S.Stopping && S.Pending < Opts.MaxQueuePerShard) {
        S.Queues[J.Tenant->Index].push_back(std::move(J));
        ++S.Pending;
        S.Work.notify_one();
        return true;
      }
    }
    if (J.HoldsAdmission)
      releaseAdmission(J.Tenant);
    reject("queue", J.Reply,
           unavailable("shard " + std::to_string(Shard) +
                       " dispatch queue is full"),
           Opts.QueueRetryAfterMs);
    return false;
  }

  // -- Dispatch (per-shard dispatcher threads) -------------------------------

  void dispatchLoop(ShardState &S) {
    std::unique_lock<std::mutex> Lock(S.M);
    for (;;) {
      S.Work.wait(Lock, [&] {
        return S.Stopping || (!S.Paused && S.Pending > 0);
      });
      if (S.Stopping) {
        // Explicit goodbye to everything still queued — never a silent
        // drop (the reply usually evaporates with the stopped listener,
        // but a still-connected client sees a typed failure).
        for (auto &Q : S.Queues)
          while (!Q.empty()) {
            Job J = std::move(Q.front());
            Q.pop_front();
            if (J.HoldsAdmission)
              releaseAdmission(J.Tenant);
            J.Reply(errorReply(unavailable("gateway shutting down"), 0));
          }
        S.Pending = 0;
        return;
      }
      // Weighted round-robin: keep serving S.Cursor's queue until its
      // weight is spent or it runs dry, then advance.
      size_t NumTenants = S.Queues.size();
      size_t Pick = NumTenants;
      for (size_t I = 0; I < NumTenants; ++I) {
        size_t Idx = (S.Cursor + I) % NumTenants;
        if (!S.Queues[Idx].empty()) {
          Pick = Idx;
          break;
        }
      }
      if (Pick == NumTenants)
        continue; // Raced with a reject; nothing runnable.
      if (Pick != S.Cursor) {
        S.Cursor = Pick;
        S.ServedInBurst = 0;
      }
      Job J = std::move(S.Queues[Pick].front());
      S.Queues[Pick].pop_front();
      --S.Pending;
      int Weight = std::max(1, Tenants[Pick]->Cfg.Weight);
      if (++S.ServedInBurst >= static_cast<size_t>(Weight)) {
        S.Cursor = (Pick + 1) % NumTenants;
        S.ServedInBurst = 0;
      }
      Lock.unlock();
      if (!shedIfExpired(J, S))
        processJob(J);
      Lock.lock();
    }
  }

  /// Dequeue-time load shedding: a deadline-carrying op whose budget has
  /// expired in the queue — or whose remainder is smaller than the shard's
  /// observed backend service time — cannot succeed, so it is answered
  /// typed right now instead of burning a doomed backend call. True =
  /// shed (reply sent, admission refunded). EndSession is exempt:
  /// teardown must run regardless of budget or the session would leak.
  bool shedIfExpired(Job &J, ShardState &S) {
    if (!J.HasDeadline || J.Env.Kind == RequestKind::EndSession)
      return false;
    int64_t RemainingUs =
        std::chrono::duration_cast<std::chrono::microseconds>(
            J.Deadline - std::chrono::steady_clock::now())
            .count();
    int64_t Ewma = S.EwmaUs.load(std::memory_order_relaxed);
    bool Expired = RemainingUs <= 0;
    if (!Expired && (Ewma == 0 || RemainingUs >= Ewma))
      return false;
    telemetry::SpanScope Span("gateway.shed", "gateway");
    Shed.fetch_add(1, std::memory_order_relaxed);
    shedExpiredTotal().inc();
    if (J.HoldsAdmission)
      releaseAdmission(J.Tenant);
    if (Expired) {
      deadlineExceededGatewayTotal().inc();
      J.Reply(errorReply(
          deadlineExceeded("deadline expired in gateway dispatch queue"),
          0));
    } else {
      J.Reply(errorReply(
          unavailable("remaining deadline budget (" +
                      std::to_string(RemainingUs / 1000) +
                      "ms) below shard " + std::to_string(S.Index) +
                      " service time"),
          Opts.QueueRetryAfterMs));
    }
    return true;
  }

  /// Re-stamps the outgoing envelope's DeadlineMs from the job's remaining
  /// budget so the backend sees its *current* budget, not the stale intake
  /// value. False = the budget is gone: a typed DeadlineExceeded reply was
  /// sent and any admission reservation refunded.
  bool restampDeadline(Job &J) {
    if (!J.HasDeadline)
      return true;
    int64_t RemainingMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            J.Deadline - std::chrono::steady_clock::now())
            .count();
    if (RemainingMs <= 0) {
      deadlineExceededGatewayTotal().inc();
      if (J.HoldsAdmission)
        releaseAdmission(J.Tenant);
      J.Reply(errorReply(
          deadlineExceeded("deadline expired before backend dispatch"), 0));
      return false;
    }
    J.Env.DeadlineMs = static_cast<uint32_t>(RemainingMs);
    return true;
  }

  /// One backend round trip: encode, send to \p Shard, decode. A non-zero
  /// envelope deadline caps the transport timeout to the remaining budget;
  /// the observed round-trip time feeds the shard's shedding EWMA.
  StatusOr<ReplyEnvelope> backendCall(size_t Shard,
                                      const RequestEnvelope &Env,
                                      std::string *RawOut = nullptr) {
    // Chaos hook for the gateway→backend link (the in-process stand-in
    // for a lost or flaky shard connection).
    fault::FaultAction F = CG_FAULT_POINT("gateway.backend_call", nullptr);
    if (F.isError())
      return F.Error;
    if (F.isCrash())
      return unavailable("injected backend link failure");
    int TimeoutMs = Opts.BackendTimeoutMs;
    if (Env.DeadlineMs > 0)
      TimeoutMs = std::min<int64_t>(TimeoutMs, Env.DeadlineMs);
    std::string Bytes = service::encodeRequest(Env);
    auto CallStart = std::chrono::steady_clock::now();
    CG_ASSIGN_OR_RETURN(
        std::string Raw,
        Broker.shardTransport(Shard)->roundTrip(Bytes, TimeoutMs));
    int64_t TookUs = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - CallStart)
                         .count();
    {
      ShardState &S = shardQueue(Shard);
      int64_t Old = S.EwmaUs.load(std::memory_order_relaxed);
      S.EwmaUs.store(Old == 0 ? TookUs : (3 * Old + TookUs) / 4,
                     std::memory_order_relaxed);
    }
    if (F.isCorrupt() && Raw.size() > 1)
      Raw[Raw.size() / 2] ^= 0x5A;
    StatusOr<ReplyEnvelope> Reply = service::decodeReply(Raw);
    if (Reply.isOk() && RawOut)
      *RawOut = std::move(Raw);
    return Reply;
  }

  void processJob(Job &J) {
    J.Tenant->Dispatched.fetch_add(1, std::memory_order_relaxed);
    J.Tenant->DispatchedCtr->inc();
    switch (J.Env.Kind) {
    case RequestKind::StartSession:
      processStart(J);
      return;
    case RequestKind::Step:
      processStep(J);
      return;
    case RequestKind::Fork:
      processFork(J);
      return;
    case RequestKind::EndSession:
      processEnd(J);
      return;
    case RequestKind::Heartbeat:
      return; // Never queued.
    }
  }

  void processStart(Job &J) {
    if (!restampDeadline(J))
      return;
    size_t Shard = reserveShard();
    if (Shard == SIZE_MAX) {
      releaseAdmission(J.Tenant);
      J.Reply(errorReply(unavailable("no shard accepting sessions"),
                         Opts.AdmissionRetryAfterMs));
      return;
    }
    StatusOr<ReplyEnvelope> Reply = backendCall(Shard, J.Env);
    if (!Reply.isOk() || Reply->Code != StatusCode::Ok) {
      unreserveShard(Shard);
      releaseAdmission(J.Tenant);
      if (!Reply.isOk())
        J.Reply(errorReply(Reply.status(), 0));
      else
        J.Reply(service::encodeReply(*Reply));
      return;
    }
    auto Entry = registerSession(J.Tenant, Shard, Reply->Start.SessionId,
                                 J.Env.Start,
                                 /*LastStateKey=*/J.Env.Start.RestoreStateKey &&
                                         Reply->Start.Restored
                                     ? J.Env.Start.RestoreStateKey
                                     : 0);
    Reply->Start.SessionId = Entry->GwId;
    J.Reply(service::encodeReply(*Reply));
  }

  /// Re-establishes \p Entry's backend session at its recorded state via
  /// snapshot restore. Caller holds Entry->M. False = the state is
  /// unreachable (snapshot gone) and the caller must drop the session.
  bool tryRestore(SessionEntry &Entry) {
    RequestEnvelope R;
    R.Kind = RequestKind::StartSession;
    R.Start = Entry.Start;
    R.Start.RestoreStateKey = Entry.LastStateKey;
    size_t Shard = Entry.Shard.load(std::memory_order_relaxed);
    StatusOr<ReplyEnvelope> Reply = backendCall(Shard, R);
    if (!Reply.isOk() || Reply->Code != StatusCode::Ok)
      return false;
    // A fresh (unrestored) session only matches when the episode never
    // stepped — its initial state *is* the recorded state.
    if (Reply->Start.Restored || Entry.LastStateKey == 0) {
      Entry.BackendId = Reply->Start.SessionId;
      Restores.fetch_add(1, std::memory_order_relaxed);
      restoresTotal().inc();
      CG_LOG_INFO_FOR("gateway", Entry.GwId)
          << "restored backend session at state " << Entry.LastStateKey;
      return true;
    }
    // Wrong state: give the orphan back before reporting failure.
    RequestEnvelope End;
    End.Kind = RequestKind::EndSession;
    End.End.SessionId = Reply->Start.SessionId;
    (void)backendCall(Shard, End);
    return false;
  }

  void processStep(Job &J) {
    SessionEntry &Entry = *J.Entry;
    std::lock_guard<std::mutex> OpLock(Entry.M);
    if (Entry.Dead) {
      J.Reply(errorReply(
          notFound("no session " + std::to_string(Entry.GwId)), 0));
      return;
    }
    for (int Round = 0; Round < 2; ++Round) {
      // Budget may have shrunk waiting on the op lock or across the
      // restore round; the backend must see what actually remains.
      if (!restampDeadline(J))
        return;
      J.Env.Step.SessionId = Entry.BackendId;
      std::string Raw;
      StatusOr<ReplyEnvelope> Reply =
          backendCall(Entry.Shard.load(std::memory_order_relaxed), J.Env,
                      &Raw);
      if (!Reply.isOk()) {
        J.Reply(errorReply(Reply.status(), 0));
        return;
      }
      if (isBackendSessionLoss(*Reply) && Round == 0) {
        // The shard restarted under us (crash + broker monitor). Try a
        // transparent snapshot restore and re-issue the op once.
        if (tryRestore(Entry))
          continue;
        dropSession(Entry);
        J.Reply(errorReply(
            notFound("no session " + std::to_string(Entry.GwId)), 0));
        return;
      }
      if (Reply->Code == StatusCode::Ok && Reply->Step.SessionStateKey)
        Entry.LastStateKey = Reply->Step.SessionStateKey;
      // Step replies carry no session ids: forward the backend's bytes
      // untouched so payloads (deltas included) are exactly what it
      // produced.
      J.Reply(std::move(Raw));
      return;
    }
  }

  void processFork(Job &J) {
    SessionEntry &Entry = *J.Entry;
    std::lock_guard<std::mutex> OpLock(Entry.M);
    if (Entry.Dead) {
      releaseAdmission(J.Tenant);
      J.Reply(errorReply(
          notFound("no session " + std::to_string(Entry.GwId)), 0));
      return;
    }
    for (int Round = 0; Round < 2; ++Round) {
      if (!restampDeadline(J))
        return;
      J.Env.Fork.SessionId = Entry.BackendId;
      size_t Shard = Entry.Shard.load(std::memory_order_relaxed);
      StatusOr<ReplyEnvelope> Reply = backendCall(Shard, J.Env);
      if (!Reply.isOk() || Reply->Code != StatusCode::Ok) {
        if (Reply.isOk() && isBackendSessionLoss(*Reply) && Round == 0 &&
            tryRestore(Entry))
          continue;
        releaseAdmission(J.Tenant);
        if (!Reply.isOk())
          J.Reply(errorReply(Reply.status(), 0));
        else
          J.Reply(service::encodeReply(*Reply));
        return;
      }
      // The clone lives on the parent's shard (fork is an intra-service
      // O(1) snapshot share).
      {
        std::lock_guard<std::mutex> Lock(SessionsM);
        ++ShardSessions[Shard];
      }
      auto Clone = registerSession(J.Tenant, Shard, Reply->Fork.SessionId,
                                   Entry.Start, Entry.LastStateKey);
      Reply->Fork.SessionId = Clone->GwId;
      J.Reply(service::encodeReply(*Reply));
      return;
    }
  }

  void processEnd(Job &J) {
    SessionEntry &Entry = *J.Entry;
    std::lock_guard<std::mutex> OpLock(Entry.M);
    if (Entry.Dead) {
      J.Reply(service::encodeReply(ReplyEnvelope{}));
      return;
    }
    J.Env.End.SessionId = Entry.BackendId;
    // Teardown is never deadline-rejected (the session would leak on the
    // backend); strip any client budget.
    J.Env.DeadlineMs = 0;
    std::string Raw;
    StatusOr<ReplyEnvelope> Reply = backendCall(
        Entry.Shard.load(std::memory_order_relaxed), J.Env, &Raw);
    dropSession(Entry);
    if (!Reply.isOk()) {
      // The backend will reap the session on its next restart; the
      // client's teardown still succeeds.
      J.Reply(service::encodeReply(ReplyEnvelope{}));
      return;
    }
    J.Reply(std::move(Raw));
  }

  // -- Drain / scale ---------------------------------------------------------

  size_t drainShard(size_t Index) {
    std::vector<std::shared_ptr<SessionEntry>> OnShard;
    {
      std::lock_guard<std::mutex> Lock(SessionsM);
      if (Index >= ShardDraining.size())
        return 0;
      ShardDraining[Index] = true;
      for (auto &[Id, Entry] : Sessions)
        if (Entry->Shard.load(std::memory_order_relaxed) == Index)
          OnShard.push_back(Entry);
    }
    size_t Moved = 0;
    for (auto &EntryPtr : OnShard) {
      SessionEntry &Entry = *EntryPtr;
      std::lock_guard<std::mutex> OpLock(Entry.M);
      if (Entry.Dead ||
          Entry.Shard.load(std::memory_order_relaxed) != Index)
        continue;
      size_t Target = reserveShard();
      if (Target == SIZE_MAX) {
        // Nowhere to go: the session stays; the shard keeps serving it.
        continue;
      }
      RequestEnvelope R;
      R.Kind = RequestKind::StartSession;
      R.Start = Entry.Start;
      R.Start.RestoreStateKey = Entry.LastStateKey;
      StatusOr<ReplyEnvelope> Reply = backendCall(Target, R);
      bool Landed = Reply.isOk() && Reply->Code == StatusCode::Ok &&
                    (Reply->Start.Restored || Entry.LastStateKey == 0);
      if (!Landed) {
        if (Reply.isOk() && Reply->Code == StatusCode::Ok) {
          RequestEnvelope End;
          End.Kind = RequestKind::EndSession;
          End.End.SessionId = Reply->Start.SessionId;
          (void)backendCall(Target, End);
        }
        unreserveShard(Target);
        // Snapshot is gone: the client must replay. Drop the entry so its
        // next op reports session loss.
        dropSession(Entry);
        continue;
      }
      // Retire the old backend session (best-effort; a crashed shard
      // already lost it).
      RequestEnvelope End;
      End.Kind = RequestKind::EndSession;
      End.End.SessionId = Entry.BackendId;
      (void)backendCall(Index, End);
      {
        std::lock_guard<std::mutex> Lock(SessionsM);
        --ShardSessions[Index];
      }
      Entry.Shard.store(Target, std::memory_order_relaxed);
      Entry.BackendId = Reply->Start.SessionId;
      ++Moved;
      Migrations.fetch_add(1, std::memory_order_relaxed);
      migrationsTotal().inc();
      CG_LOG_INFO_FOR("gateway", Entry.GwId)
          << "migrated session from shard " << Index << " to " << Target;
    }
    return Moved;
  }

  void undrainShard(size_t Index) {
    std::lock_guard<std::mutex> Lock(SessionsM);
    if (Index < ShardDraining.size())
      ShardDraining[Index] = false;
  }

  size_t addShard() {
    size_t Index = Broker.addShard();
    startDispatcher(Index);
    std::lock_guard<std::mutex> Lock(SessionsM);
    ShardSessions.push_back(0);
    ShardDraining.push_back(false);
    return Index;
  }

  void setPaused(bool Paused) {
    std::lock_guard<std::mutex> Lock(ShardsM);
    for (auto &S : Queues) {
      {
        std::lock_guard<std::mutex> QLock(S->M);
        S->Paused = Paused;
      }
      S->Work.notify_all();
    }
  }
};

// -- Public surface -----------------------------------------------------------

Gateway::Gateway(std::unique_ptr<Impl> I) : I(std::move(I)) {}

Gateway::~Gateway() { I->stop(); }

StatusOr<std::unique_ptr<Gateway>> Gateway::serve(GatewayOptions Opts) {
  auto I = std::make_unique<Impl>(std::move(Opts));
  CG_RETURN_IF_ERROR(I->start());
  return std::unique_ptr<Gateway>(new Gateway(std::move(I)));
}

const net::NetAddress &Gateway::boundAddress() const {
  return I->Server->boundAddress();
}

size_t Gateway::numShards() const { return I->Broker.numShards(); }

size_t Gateway::sessionCount() const {
  std::lock_guard<std::mutex> Lock(I->SessionsM);
  return I->Sessions.size();
}

runtime::ServiceBroker &Gateway::broker() { return I->Broker; }

size_t Gateway::addShard() { return I->addShard(); }

size_t Gateway::drainShard(size_t Index) { return I->drainShard(Index); }

void Gateway::undrainShard(size_t Index) { I->undrainShard(Index); }

uint64_t Gateway::dispatchedFor(const std::string &TenantName) const {
  for (auto &T : I->Tenants)
    if (T->Cfg.Name == TenantName)
      return T->Dispatched.load(std::memory_order_relaxed);
  return 0;
}

uint64_t Gateway::restores() const {
  return I->Restores.load(std::memory_order_relaxed);
}

uint64_t Gateway::shedExpired() const {
  return I->Shed.load(std::memory_order_relaxed);
}

uint64_t Gateway::migrations() const {
  return I->Migrations.load(std::memory_order_relaxed);
}

size_t Gateway::queuedTotal() const {
  std::lock_guard<std::mutex> Lock(I->ShardsM);
  size_t Total = 0;
  for (auto &Q : I->Queues) {
    std::lock_guard<std::mutex> QLock(Q->M);
    Total += Q->Pending;
  }
  return Total;
}

void Gateway::pauseDispatch() { I->setPaused(true); }

void Gateway::resumeDispatch() { I->setPaused(false); }
