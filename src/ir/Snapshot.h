//===- ir/Snapshot.h - Content-addressed module snapshot store --*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, content-addressed store of immutable module snapshots,
/// keyed by the session state key (benchmark URI hash combined with the
/// module's printed-form digest — the same identity the observation caches
/// and the transition database use).
///
/// A snapshot is a frozen structural share (Module::share() of the stored
/// module): publishing one costs O(#functions) pointer copies, restoring
/// one costs the same, and mutation after a restore copy-on-writes in the
/// pass layer. This is what makes crash recovery replay-free: a recovering
/// environment asks the (restarted) service to restore its last state key
/// instead of replaying the episode's action history, and falls back to
/// replay only when the snapshot was evicted.
///
/// The store is bounded (entry count and approximate bytes, LRU eviction)
/// and thread-safe: sessions on different service shards publish and
/// restore concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_SNAPSHOT_H
#define COMPILER_GYM_IR_SNAPSHOT_H

#include "ir/Module.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace compiler_gym {
namespace ir {

/// One restorable state: the frozen module plus the benchmark it belongs
/// to (restore re-derives reward baselines from the benchmark source).
struct Snapshot {
  std::shared_ptr<const Module> Mod;
  std::string BenchmarkUri;
};

/// Bounded LRU map: state key -> snapshot.
class SnapshotStore {
public:
  SnapshotStore(size_t MaxEntries = 256,
                size_t MaxBytes = 64ull * 1024 * 1024)
      : MaxEntries(MaxEntries), MaxBytes(MaxBytes) {}

  /// The process-wide store. Living outside any service instance is the
  /// point: an in-process service "crash" (CompilerService::restart())
  /// destroys every session but not the snapshots, mirroring a snapshot
  /// directory that outlives a service process.
  static SnapshotStore &global();

  /// Publishes \p Mod under \p Key. The module must no longer be mutated
  /// through the stored handle (callers pass a fresh share()). Re-publishing
  /// an existing key refreshes its LRU position only.
  void put(uint64_t Key, std::shared_ptr<const Module> Mod,
           std::string BenchmarkUri);

  /// Looks up \p Key, refreshing its LRU position. Counts a hit or miss.
  std::optional<Snapshot> get(uint64_t Key);

  /// Test hooks.
  void clear();
  void setCapacity(size_t Entries, size_t Bytes);
  size_t entries() const;
  size_t approxBytes() const;

  SnapshotStore(const SnapshotStore &) = delete;
  SnapshotStore &operator=(const SnapshotStore &) = delete;

private:
  struct Entry {
    Snapshot Snap;
    size_t Bytes = 0;
    std::list<uint64_t>::iterator LruIt;
  };

  void evictLocked();

  mutable std::mutex Mutex;
  size_t MaxEntries;
  size_t MaxBytes;
  size_t TotalBytes = 0;
  std::list<uint64_t> Lru; ///< Front = most recently used.
  std::unordered_map<uint64_t, Entry> Map;
};

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_SNAPSHOT_H
