//===- ir/Parser.h - Textual IR parsing -------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual format emitted by Printer.h back into a Module.
/// Parsing is two-pass within each function so forward references (branch
/// targets, phi inputs defined later) resolve. Errors are reported with
/// line numbers via Status.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_PARSER_H
#define COMPILER_GYM_IR_PARSER_H

#include "ir/Module.h"
#include "util/Status.h"

#include <memory>
#include <string_view>

namespace compiler_gym {
namespace ir {

/// Parses \p Text into a Module. On failure returns an InvalidArgument
/// status naming the offending line.
StatusOr<std::unique_ptr<Module>> parseModule(std::string_view Text);

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_PARSER_H
