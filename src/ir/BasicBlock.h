//===- ir/BasicBlock.h - CFG node -------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock: an ordered list of instructions ending in a terminator.
/// Blocks own their instructions. Blocks are Values (type Label) so branch
/// instructions can reference them as ordinary operands.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_BASICBLOCK_H
#define COMPILER_GYM_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <vector>

namespace compiler_gym {
namespace ir {

class Function;

/// A straight-line sequence of instructions with a single terminator.
class BasicBlock : public Value {
public:
  explicit BasicBlock(std::string Name)
      : Value(ValueKind::Block, Type::Label) {
    setName(std::move(Name));
  }

  Function *parent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Insts;
  }

  /// Appends \p I (takes ownership) and returns the raw pointer.
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts before index \p Pos.
  Instruction *insert(size_t Pos, std::unique_ptr<Instruction> I);

  /// Removes and destroys the instruction at index \p Pos.
  void erase(size_t Pos);

  /// Removes the instruction at \p Pos and transfers ownership to caller.
  std::unique_ptr<Instruction> detach(size_t Pos);

  /// Index of \p I within this block; asserts if absent.
  size_t indexOf(const Instruction *I) const;

  /// The terminator, or nullptr if the block is empty / malformed.
  Instruction *terminator() const;

  /// Successor blocks (from the terminator).
  std::vector<BasicBlock *> successors() const;

  /// Predecessor blocks, computed by scanning the parent function.
  std::vector<BasicBlock *> predecessors() const;

  /// Phi-node prefix length (phis must be grouped at the top).
  size_t firstNonPhi() const;

  static bool classof(const Value *V) { return V->kind() == ValueKind::Block; }

private:
  Function *Parent = nullptr;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_BASICBLOCK_H
