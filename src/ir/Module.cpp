//===- ir/Module.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "ir/Printer.h"

#include <algorithm>
#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::ir;

Function *Module::createFunction(std::string FnName, Type ReturnType) {
  Funcs.push_back(std::make_shared<Function>(std::move(FnName), ReturnType));
  Funcs.back()->setParent(this);
  return Funcs.back().get();
}

Function *Module::findFunction(const std::string &FnName) const {
  for (const auto &F : Funcs)
    if (F->name() == FnName)
      return F.get();
  return nullptr;
}

void Module::eraseFunction(Function *F) {
  // The FunctionRefs pool is left untouched: refs are name-based and a
  // ref to an erased function simply stops resolving. Erasing from a
  // potentially shared pool would mutate sibling modules.
  auto It = std::find_if(Funcs.begin(), Funcs.end(),
                         [&](const auto &P) { return P.get() == F; });
  assert(It != Funcs.end() && "function not in module");
  Funcs.erase(It);
}

GlobalVariable *Module::createGlobal(std::string GlobalName,
                                     uint32_t SizeWords) {
  Globals.push_back(
      std::make_shared<GlobalVariable>(std::move(GlobalName), SizeWords));
  return Globals.back().get();
}

GlobalVariable *Module::findGlobal(const std::string &GlobalName) const {
  for (const auto &G : Globals)
    if (G->name() == GlobalName)
      return G.get();
  return nullptr;
}

void Module::detachPoolsForInsert() {
  if (P.use_count() > 1)
    P = std::make_shared<Pools>(*P);
}

Constant *Module::getConstInt(Type Ty, int64_t V) {
  assert(isIntegerType(Ty) && "getConstInt with non-integer type");
  if (Ty == Type::I1)
    V = V ? 1 : 0;
  else if (Ty == Type::I32)
    V = static_cast<int32_t>(V);
  auto Key = std::make_pair(static_cast<int>(Ty), V);
  auto It = P->IntConstants.find(Key);
  if (It != P->IntConstants.end())
    return It->second.get();
  detachPoolsForInsert();
  auto C = std::make_shared<Constant>(Ty, V);
  Constant *Out = C.get();
  P->IntConstants.emplace(Key, std::move(C));
  return Out;
}

Constant *Module::getConstFloat(double V) {
  auto It = P->FloatConstants.find(V);
  if (It != P->FloatConstants.end())
    return It->second.get();
  detachPoolsForInsert();
  auto C = std::make_shared<Constant>(V);
  Constant *Out = C.get();
  P->FloatConstants.emplace(V, std::move(C));
  return Out;
}

FunctionRef *Module::getFunctionRef(const std::string &CalleeName) {
  auto It = P->FunctionRefs.find(CalleeName);
  if (It != P->FunctionRefs.end())
    return It->second.get();
  detachPoolsForInsert();
  auto Ref = std::make_shared<FunctionRef>(CalleeName);
  FunctionRef *Out = Ref.get();
  P->FunctionRefs.emplace(CalleeName, std::move(Ref));
  return Out;
}

FunctionRef *Module::getFunctionRef(const Function *F) {
  return getFunctionRef(F->name());
}

size_t Module::instructionCount() const {
  size_t N = 0;
  for (const auto &F : Funcs)
    N += F->instructionCount();
  return N;
}

namespace {

/// Deep-copies the body of \p Src into the empty function \p Dst, remapping
/// function-local values (arguments, blocks, instruction results). Operands
/// resolved through module-level pools (constants, globals, function refs)
/// are aliased, not copied: pool identity is stable across clone targets
/// that share pools, and the deep-clone path pre-seeds \p Map with its own
/// remapped globals/constants via \p Remap.
void cloneFunctionBody(
    const Function &Src, Function &Dst,
    std::unordered_map<const Value *, Value *> &Map,
    const std::function<Value *(const Value *)> &RemapPooled) {
  for (size_t I = 0; I < Src.numArgs(); ++I) {
    Argument *A = Src.arg(I);
    Map[A] = Dst.addArgument(A->type(), A->name());
  }
  for (const auto &BB : Src.blocks())
    Map[BB.get()] = Dst.createBlock(BB->name());

  for (const auto &BB : Src.blocks()) {
    auto *NewBB = cast<BasicBlock>(Map.at(BB.get()));
    for (const auto &I : BB->instructions()) {
      auto NewI = std::make_unique<Instruction>(I->opcode(), I->type());
      NewI->setName(I->name());
      NewI->setPred(I->pred());
      NewI->setAllocaWords(I->allocaWords());
      NewBB->append(std::move(NewI));
      Map[I.get()] = NewBB->back();
    }
  }
  // Second pass: wire operands (instruction results may be forward refs).
  for (const auto &BB : Src.blocks()) {
    auto *NewBB = cast<BasicBlock>(Map.at(BB.get()));
    for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
      const Instruction *OldI = BB->instructions()[Idx].get();
      Instruction *NewI = NewBB->instructions()[Idx].get();
      for (const Value *Op : OldI->operands()) {
        auto It = Map.find(Op);
        if (It != Map.end()) {
          NewI->operands().push_back(It->second);
          continue;
        }
        Value *Pooled = RemapPooled(Op);
        assert(Pooled && "unmapped value during clone");
        NewI->operands().push_back(Pooled);
      }
    }
  }
}

} // namespace

std::shared_ptr<Function> Module::unshareFunction(size_t Idx) {
  assert(Idx < Funcs.size() && "function index out of range");
  std::shared_ptr<Function> Old = Funcs[Idx];
  auto Copy = std::make_shared<Function>(Old->name(), Old->returnType());
  Copy->setNoInline(Old->isNoInline());
  Copy->setParent(this);

  std::unordered_map<const Value *, Value *> Map;
  cloneFunctionBody(*Old, *Copy, Map, [&](const Value *Op) -> Value * {
    // Constants, globals and function refs live in pools shared across the
    // fork family: alias them. The const_cast is sound because pool
    // entries are uniqued immutable values.
    return const_cast<Value *>(Op);
  });

  Funcs[Idx] = std::move(Copy);
  return Old;
}

void Module::restoreFunction(size_t Idx, std::shared_ptr<Function> Original) {
  assert(Idx < Funcs.size() && "function index out of range");
  assert(Original && "restoring a null payload");
  Funcs[Idx] = std::move(Original);
}

std::unique_ptr<Module> Module::clone() const {
  auto Out = std::make_unique<Module>(Name);
  std::unordered_map<const Value *, Value *> Map;

  for (const auto &G : Globals)
    Map[G.get()] = Out->createGlobal(G->name(), G->sizeWords());

  // First pass: create empty functions so calls resolve by name.
  for (const auto &F : Funcs) {
    Function *NewF = Out->createFunction(F->name(), F->returnType());
    NewF->setNoInline(F->isNoInline());
  }

  auto RemapPooled = [&](const Value *V) -> Value * {
    if (const auto *C = dyn_cast<Constant>(V)) {
      if (C->type() == Type::F64)
        return Out->getConstFloat(C->floatValue());
      return Out->getConstInt(C->type(), C->intValue());
    }
    if (const auto *FR = dyn_cast<FunctionRef>(V))
      return Out->getFunctionRef(FR->calleeName());
    return nullptr;
  };

  for (size_t I = 0; I < Funcs.size(); ++I)
    cloneFunctionBody(*Funcs[I], *Out->Funcs[I], Map, RemapPooled);
  return Out;
}

std::unique_ptr<Module> Module::share() const {
  auto Out = std::make_unique<Module>(Name);
  Out->Funcs = Funcs;     // Payloads aliased; COW on first mutation.
  Out->Globals = Globals; // Globals are shared for the module's lifetime.
  Out->P = P;             // Pools detach on first insert.
  return Out;
}

StateHash Module::hash() const { return hashBytes(printModule(*this)); }
