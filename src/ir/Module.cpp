//===- ir/Module.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "ir/Printer.h"

#include <algorithm>
#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::ir;

Function *Module::createFunction(std::string FnName, Type ReturnType) {
  Funcs.push_back(std::make_unique<Function>(std::move(FnName), ReturnType));
  Funcs.back()->setParent(this);
  return Funcs.back().get();
}

Function *Module::findFunction(const std::string &FnName) const {
  for (const auto &F : Funcs)
    if (F->name() == FnName)
      return F.get();
  return nullptr;
}

void Module::eraseFunction(Function *F) {
  FunctionRefs.erase(F);
  auto It = std::find_if(Funcs.begin(), Funcs.end(),
                         [&](const auto &P) { return P.get() == F; });
  assert(It != Funcs.end() && "function not in module");
  Funcs.erase(It);
}

GlobalVariable *Module::createGlobal(std::string GlobalName,
                                     uint32_t SizeWords) {
  Globals.push_back(
      std::make_unique<GlobalVariable>(std::move(GlobalName), SizeWords));
  return Globals.back().get();
}

GlobalVariable *Module::findGlobal(const std::string &GlobalName) const {
  for (const auto &G : Globals)
    if (G->name() == GlobalName)
      return G.get();
  return nullptr;
}

Constant *Module::getConstInt(Type Ty, int64_t V) {
  assert(isIntegerType(Ty) && "getConstInt with non-integer type");
  if (Ty == Type::I1)
    V = V ? 1 : 0;
  else if (Ty == Type::I32)
    V = static_cast<int32_t>(V);
  auto Key = std::make_pair(static_cast<int>(Ty), V);
  auto It = IntConstants.find(Key);
  if (It != IntConstants.end())
    return It->second.get();
  auto C = std::make_unique<Constant>(Ty, V);
  Constant *Out = C.get();
  IntConstants.emplace(Key, std::move(C));
  return Out;
}

Constant *Module::getConstFloat(double V) {
  auto It = FloatConstants.find(V);
  if (It != FloatConstants.end())
    return It->second.get();
  auto C = std::make_unique<Constant>(V);
  Constant *Out = C.get();
  FloatConstants.emplace(V, std::move(C));
  return Out;
}

FunctionRef *Module::getFunctionRef(Function *F) {
  auto It = FunctionRefs.find(F);
  if (It != FunctionRefs.end())
    return It->second.get();
  auto Ref = std::make_unique<FunctionRef>(F);
  FunctionRef *Out = Ref.get();
  FunctionRefs.emplace(F, std::move(Ref));
  return Out;
}

size_t Module::instructionCount() const {
  size_t N = 0;
  for (const auto &F : Funcs)
    N += F->instructionCount();
  return N;
}

std::unique_ptr<Module> Module::clone() const {
  auto Out = std::make_unique<Module>(Name);
  std::unordered_map<const Value *, Value *> Map;

  for (const auto &G : Globals)
    Map[G.get()] = Out->createGlobal(G->name(), G->sizeWords());

  // First pass: create functions, arguments, empty blocks.
  for (const auto &F : Funcs) {
    Function *NewF = Out->createFunction(F->name(), F->returnType());
    NewF->setNoInline(F->isNoInline());
    for (size_t I = 0; I < F->numArgs(); ++I) {
      Argument *A = F->arg(I);
      Map[A] = NewF->addArgument(A->type(), A->name());
    }
    for (const auto &BB : F->blocks())
      Map[BB.get()] = NewF->createBlock(BB->name());
  }

  // Second pass: clone instructions with remapped operands.
  auto remap = [&](const Value *V) -> Value * {
    if (const auto *C = dyn_cast<Constant>(V)) {
      if (C->type() == Type::F64)
        return Out->getConstFloat(C->floatValue());
      return Out->getConstInt(C->type(), C->intValue());
    }
    if (const auto *FR = dyn_cast<FunctionRef>(V)) {
      Function *NewCallee = Out->findFunction(FR->function()->name());
      assert(NewCallee && "call target missing in cloned module");
      return Out->getFunctionRef(NewCallee);
    }
    auto It = Map.find(V);
    assert(It != Map.end() && "unmapped value during clone");
    return It->second;
  };

  for (const auto &F : Funcs) {
    for (const auto &BB : F->blocks()) {
      auto *NewBB = cast<BasicBlock>(Map.at(BB.get()));
      for (const auto &I : BB->instructions()) {
        auto NewI =
            std::make_unique<Instruction>(I->opcode(), I->type());
        NewI->setName(I->name());
        NewI->setPred(I->pred());
        NewI->setAllocaWords(I->allocaWords());
        NewBB->append(std::move(NewI));
        Map[I.get()] = NewBB->back();
      }
    }
  }
  // Third pass: wire operands (instruction results may be forward refs).
  for (const auto &F : Funcs) {
    for (const auto &BB : F->blocks()) {
      auto *NewBB = cast<BasicBlock>(Map.at(BB.get()));
      for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
        const Instruction *OldI = BB->instructions()[Idx].get();
        Instruction *NewI = NewBB->instructions()[Idx].get();
        for (const Value *Op : OldI->operands())
          NewI->operands().push_back(remap(Op));
      }
    }
  }
  return Out;
}

StateHash Module::hash() const { return hashBytes(printModule(*this)); }
