//===- ir/Dominators.h - Dominator tree and natural loops -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm) and
/// natural-loop discovery via back edges. Used by the verifier (defs must
/// dominate uses), LICM, loop unrolling and GVN.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_DOMINATORS_H
#define COMPILER_GYM_IR_DOMINATORS_H

#include "ir/Function.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace compiler_gym {
namespace ir {

/// Dominator tree over the reachable CFG of one function.
class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  /// True if \p A dominates \p B (reflexive). Unreachable blocks dominate
  /// nothing and are dominated by everything (conservative).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Immediate dominator; nullptr for the entry or unreachable blocks.
  BasicBlock *idom(const BasicBlock *BB) const;

  /// True if the block was reachable from the entry at analysis time.
  bool isReachable(const BasicBlock *BB) const {
    return PostorderIndex.count(BB) != 0;
  }

  /// Reverse postorder over reachable blocks.
  const std::vector<BasicBlock *> &reversePostorder() const { return Rpo; }

  /// Structural equality with \p Other (same RPO, reachability and idoms
  /// over \p F's blocks). Used by the pass layer's preservation checker to
  /// compare a cached tree against a from-scratch recomputation.
  bool structurallyEquals(const Function &F, const DominatorTree &Other) const;

  /// Exact incremental update for the linear-chain block merge (\p Gone,
  /// the unique successor of \p Into with \p Into as its unique
  /// predecessor, was spliced into \p Into and erased). The patch is
  /// provably equivalent to a recomputation: \p Gone's idom was \p Into,
  /// so blocks immediately dominated by \p Gone retarget to \p Into, and
  /// removing \p Gone from the postorder leaves every other block's
  /// relative DFS order unchanged (the merged block expands \p Gone's old
  /// successor list in place). \p Gone may already be destroyed; it is
  /// used only as a key.
  void applyBlockMerged(BasicBlock *Into, const BasicBlock *Gone);

private:
  std::unordered_map<const BasicBlock *, BasicBlock *> Idom;
  std::unordered_map<const BasicBlock *, int> PostorderIndex;
  std::vector<BasicBlock *> Rpo;
};

/// A natural loop: header plus the set of blocks on paths from latches back
/// to the header.
struct NaturalLoop {
  BasicBlock *Header = nullptr;
  std::vector<BasicBlock *> Latches;              ///< Blocks with back edges.
  std::unordered_set<BasicBlock *> Blocks;        ///< Includes the header.

  bool contains(const BasicBlock *BB) const {
    return Blocks.count(const_cast<BasicBlock *>(BB)) != 0;
  }
};

/// Finds all natural loops (one per header; back edges to the same header
/// are merged). Loops are returned outermost-first by header RPO position.
std::vector<NaturalLoop> findNaturalLoops(const Function &F,
                                          const DominatorTree &DT);

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_DOMINATORS_H
