//===- ir/Function.h - IR function ------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function: arguments plus an owned list of basic blocks; the first block
/// is the entry. Functions provide whole-function helpers (use scanning,
/// RAUW) that passes rely on instead of per-value use lists.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_FUNCTION_H
#define COMPILER_GYM_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

namespace compiler_gym {
namespace ir {

class Module;

/// A function definition.
class Function {
public:
  Function(std::string Name, Type ReturnType) : Name(std::move(Name)),
        ReturnType(ReturnType) {}

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  Type returnType() const { return ReturnType; }

  Module *parent() const { return Parent; }
  void setParent(Module *M) { Parent = M; }

  /// Marks library-boundary functions that must not be inlined or removed
  /// (the mini-IR analogue of external linkage).
  bool isNoInline() const { return NoInline; }
  void setNoInline(bool V) { NoInline = V; }

  // -- Arguments ---------------------------------------------------------
  Argument *addArgument(Type Ty, std::string ArgName);
  size_t numArgs() const { return Args.size(); }
  Argument *arg(size_t I) const { return Args[I].get(); }

  // -- Blocks ------------------------------------------------------------
  bool empty() const { return Blocks.empty(); }
  size_t numBlocks() const { return Blocks.size(); }
  BasicBlock *entry() const { return Blocks.empty() ? nullptr
                                                    : Blocks.front().get(); }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  /// Creates and appends a new block.
  BasicBlock *createBlock(std::string BlockName);

  /// Removes (and destroys) \p BB. Branches to it must already be gone.
  void eraseBlock(BasicBlock *BB);

  /// Moves \p BB to position \p Pos in the block order (entry stays at 0
  /// by convention of callers).
  void moveBlock(BasicBlock *BB, size_t Pos);

  /// Finds a block by name; nullptr if absent.
  BasicBlock *findBlock(const std::string &BlockName) const;

  // -- Whole-function utilities ------------------------------------------
  /// Total instruction count.
  size_t instructionCount() const;

  /// Applies \p Fn to every instruction (in block/instruction order).
  void forEachInstruction(
      const std::function<void(BasicBlock &, Instruction &)> &Fn) const;

  /// Replaces every operand use of \p Old with \p New across the function
  /// (including phi incoming values; not block operands). Returns the
  /// number of uses rewritten.
  size_t replaceAllUsesWith(Value *Old, Value *New);

  /// Counts operand uses of every instruction/argument in one scan.
  std::unordered_map<const Value *, size_t> computeUseCounts() const;

  /// True if \p V has at least one operand use in this function.
  bool hasUses(const Value *V) const;

private:
  std::string Name;
  Type ReturnType;
  Module *Parent = nullptr;
  bool NoInline = false;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_FUNCTION_H
