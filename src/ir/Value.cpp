//===- ir/Value.cpp -------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// Out-of-line anchor for the Value hierarchy vtable.

#include "ir/Value.h"

using namespace compiler_gym;
using namespace compiler_gym::ir;

Value::~Value() = default;
