//===- ir/Lowering.h - Code emission cost model -----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers modules to a pseudo machine target to provide the paper's
/// platform-dependent size observations and rewards: the size in bytes of
/// the .text section (LLVM environment's "binary size"), plus the GCC
/// environment's assembly-text and object-code observation spaces. The
/// target descriptor makes "platform-dependent" literal: changing the
/// target changes sizes deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_LOWERING_H
#define COMPILER_GYM_IR_LOWERING_H

#include "ir/Module.h"

#include <cstdint>
#include <string>

namespace compiler_gym {
namespace ir {

/// A pseudo machine target. Encodings are bytes-per-machine-op; the
/// defaults model a generic x86-64-like CISC target.
struct TargetDescriptor {
  std::string Name = "cg64";
  uint32_t FunctionPrologueBytes = 11; ///< push/mov/sub frame setup.
  uint32_t FunctionEpilogueBytes = 7;
  uint32_t BranchBytes = 5;
  uint32_t CondBranchBytes = 8; ///< cmp-fused test + jcc.
  uint32_t CallBytes = 5;
  uint32_t RetBytes = 1;
  uint32_t MemOpBytes = 7;  ///< Load/store with addressing mode.
  uint32_t AluOpBytes = 4;
  uint32_t MulBytes = 5;
  uint32_t DivBytes = 9;    ///< Includes sign-extension setup.
  uint32_t FloatOpBytes = 6;
  uint32_t CmpBytes = 4;
  uint32_t SelectBytes = 8; ///< cmp + cmov.
  uint32_t CastBytes = 3;
  uint32_t PhiMovBytes = 3; ///< Phi-elimination register copy per edge.
};

/// Result of lowering a module.
struct LoweredModule {
  uint64_t TextSizeBytes = 0;   ///< Paper's ObjectTextSizeBytes analogue.
  uint64_t DataSizeBytes = 0;   ///< Globals.
  uint64_t MachineInstructions = 0;
  std::string Assembly;         ///< Pseudo-assembly listing (GCC env "asm").
  std::string ObjectBytes;      ///< Flat encoded "object code" (GCC env).
};

/// Machine-op byte size of a single IR instruction on \p Target.
uint32_t loweredSizeBytes(const Instruction &I, const TargetDescriptor &Target);

/// Lowers \p M. \p EmitText controls whether the (comparatively expensive)
/// assembly string is produced.
LoweredModule lowerModule(const Module &M,
                          const TargetDescriptor &Target = TargetDescriptor(),
                          bool EmitText = false);

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_LOWERING_H
