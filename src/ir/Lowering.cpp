//===- ir/Lowering.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Lowering.h"

#include <sstream>

using namespace compiler_gym;
using namespace compiler_gym::ir;

uint32_t ir::loweredSizeBytes(const Instruction &I,
                              const TargetDescriptor &T) {
  switch (I.opcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    return T.AluOpBytes;
  case Opcode::Mul:
    return T.MulBytes;
  case Opcode::SDiv:
  case Opcode::SRem:
    return T.DivBytes;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    return T.FloatOpBytes;
  case Opcode::ICmp:
  case Opcode::FCmp:
    return T.CmpBytes;
  case Opcode::Alloca:
    return T.AluOpBytes; // Stack pointer adjust.
  case Opcode::Load:
  case Opcode::Store:
    return T.MemOpBytes;
  case Opcode::Gep:
    return T.AluOpBytes; // lea.
  case Opcode::Br:
    return T.BranchBytes;
  case Opcode::CondBr:
    return T.CondBranchBytes;
  case Opcode::Ret:
    return T.RetBytes;
  case Opcode::Unreachable:
    return 2; // ud2.
  case Opcode::Call:
    // Argument marshalling plus the call itself.
    return T.CallBytes +
           static_cast<uint32_t>(I.numCallArgs()) * T.PhiMovBytes;
  case Opcode::Phi:
    // Cost charged per incoming edge (copies in predecessors).
    return static_cast<uint32_t>(I.numIncoming()) * T.PhiMovBytes;
  case Opcode::Select:
    return T.SelectBytes;
  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::SIToFP:
  case Opcode::FPToSI:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
    return T.CastBytes;
  }
  return T.AluOpBytes;
}

LoweredModule ir::lowerModule(const Module &M, const TargetDescriptor &T,
                              bool EmitText) {
  LoweredModule Out;
  std::ostringstream Asm;
  std::string Obj;

  if (EmitText)
    Asm << "\t.file\t\"" << M.name() << "\"\n\t.text\n";

  for (const auto &G : M.globals()) {
    Out.DataSizeBytes += static_cast<uint64_t>(G->sizeWords()) * 8;
    if (EmitText)
      Asm << "\t.comm\t" << G->name() << ',' << (G->sizeWords() * 8) << '\n';
  }

  for (const auto &F : M.functions()) {
    Out.TextSizeBytes += T.FunctionPrologueBytes + T.FunctionEpilogueBytes;
    Out.MachineInstructions += 4; // Prologue/epilogue ops.
    if (EmitText) {
      Asm << F->name() << ":\n";
      Asm << "\tpush\trbp\n\tmov\trbp, rsp\n";
    }
    int LocalLabel = 0;
    for (const auto &BB : F->blocks()) {
      if (EmitText)
        Asm << ".L" << F->name() << '_' << LocalLabel++ << ":\t; "
            << BB->name() << '\n';
      for (const auto &I : BB->instructions()) {
        uint32_t Bytes = loweredSizeBytes(*I, T);
        Out.TextSizeBytes += Bytes;
        Out.MachineInstructions +=
            I->opcode() == Opcode::Phi ? I->numIncoming() : 1;
        // Encoded "object code": opcode byte + size filler. Deterministic
        // and size-faithful, which is all the GCC env observation needs.
        Obj.push_back(static_cast<char>(static_cast<int>(I->opcode()) + 1));
        Obj.append(Bytes > 0 ? Bytes - 1 : 0, '\x90');
        if (EmitText)
          Asm << '\t' << opcodeName(I->opcode()) << "\t; " << Bytes
              << " bytes\n";
      }
    }
    if (EmitText)
      Asm << "\tpop\trbp\n\tret\n";
  }

  if (EmitText)
    Out.Assembly = Asm.str();
  Out.ObjectBytes = std::move(Obj);
  return Out;
}
