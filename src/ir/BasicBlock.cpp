//===- ir/BasicBlock.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

#include "ir/Function.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::ir;

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  I->setParent(this);
  Insts.push_back(std::move(I));
  return Insts.back().get();
}

Instruction *BasicBlock::insert(size_t Pos, std::unique_ptr<Instruction> I) {
  assert(Pos <= Insts.size() && "insert position out of range");
  I->setParent(this);
  auto It = Insts.insert(Insts.begin() + Pos, std::move(I));
  return It->get();
}

void BasicBlock::erase(size_t Pos) {
  assert(Pos < Insts.size() && "erase position out of range");
  Insts.erase(Insts.begin() + Pos);
}

std::unique_ptr<Instruction> BasicBlock::detach(size_t Pos) {
  assert(Pos < Insts.size() && "detach position out of range");
  std::unique_ptr<Instruction> Out = std::move(Insts[Pos]);
  Insts.erase(Insts.begin() + Pos);
  Out->setParent(nullptr);
  return Out;
}

size_t BasicBlock::indexOf(const Instruction *I) const {
  for (size_t Idx = 0; Idx < Insts.size(); ++Idx)
    if (Insts[Idx].get() == I)
      return Idx;
  assert(false && "instruction not in block");
  return Insts.size();
}

Instruction *BasicBlock::terminator() const {
  if (Insts.empty())
    return nullptr;
  Instruction *Last = Insts.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *Term = terminator();
  return Term ? Term->successors() : std::vector<BasicBlock *>();
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Preds;
  if (!Parent)
    return Preds;
  for (const auto &BB : Parent->blocks()) {
    std::vector<BasicBlock *> Succs = BB->successors();
    if (std::find(Succs.begin(), Succs.end(), this) != Succs.end())
      Preds.push_back(BB.get());
  }
  return Preds;
}

size_t BasicBlock::firstNonPhi() const {
  size_t I = 0;
  while (I < Insts.size() && Insts[I]->opcode() == Opcode::Phi)
    ++I;
  return I;
}
