//===- ir/Value.h - SSA value hierarchy -------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is the base of everything an instruction can reference: constants,
/// function arguments, globals, instructions, basic blocks (as branch
/// targets) and functions (as call targets). LLVM-style opt-in RTTI is
/// provided via ValueKind + classof, enabling isa<>/cast<>/dyn_cast<>.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_VALUE_H
#define COMPILER_GYM_IR_VALUE_H

#include "ir/Type.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace compiler_gym {
namespace ir {

class Function;
class BasicBlock;

/// Discriminator for the Value hierarchy.
enum class ValueKind {
  Constant,
  Argument,
  Global,
  Instruction,
  Block,
  FunctionRef,
};

/// Base class for all IR entities that may appear as operands.
class Value {
public:
  virtual ~Value(); // Out-of-line vtable anchor (see Value.cpp).

  ValueKind kind() const { return Kind; }
  Type type() const { return Ty; }
  void setType(Type T) { Ty = T; }

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

protected:
  Value(ValueKind Kind, Type Ty) : Kind(Kind), Ty(Ty) {}

private:
  ValueKind Kind;
  Type Ty;
  std::string Name;
};

/// LLVM-style cast machinery (no C++ RTTI).
template <typename To> bool isa(const Value *V) {
  return V && To::classof(V);
}
template <typename To> To *cast(Value *V) {
  assert(isa<To>(V) && "cast<> on incompatible value");
  return static_cast<To *>(V);
}
template <typename To> const To *cast(const Value *V) {
  assert(isa<To>(V) && "cast<> on incompatible value");
  return static_cast<const To *>(V);
}
template <typename To> To *dyn_cast(Value *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}
template <typename To> const To *dyn_cast(const Value *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

/// A literal constant. Integers (including i1) store their value in IntBits;
/// f64 constants in FloatBits. Constants are uniqued by the owning Module.
class Constant : public Value {
public:
  Constant(Type Ty, int64_t IntValue)
      : Value(ValueKind::Constant, Ty), IntBits(IntValue) {
    assert(isIntegerType(Ty) && "integer constant with non-integer type");
  }
  explicit Constant(double FloatValue)
      : Value(ValueKind::Constant, Type::F64), FloatBits(FloatValue) {}

  int64_t intValue() const {
    assert(isIntegerType(type()) && "intValue() on float constant");
    return IntBits;
  }
  double floatValue() const {
    assert(type() == Type::F64 && "floatValue() on int constant");
    return FloatBits;
  }

  bool isZero() const {
    return type() == Type::F64 ? FloatBits == 0.0 : IntBits == 0;
  }
  bool isOne() const {
    return type() == Type::F64 ? FloatBits == 1.0 : IntBits == 1;
  }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Constant;
  }

private:
  int64_t IntBits = 0;
  double FloatBits = 0.0;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type Ty, unsigned Index, Function *Parent)
      : Value(ValueKind::Argument, Ty), Index(Index), Parent(Parent) {}

  unsigned index() const { return Index; }
  Function *parent() const { return Parent; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Argument;
  }

private:
  unsigned Index;
  Function *Parent;
};

/// A module-level word-addressed memory region. Its value is its address
/// (type Ptr). Initial contents are zero unless Init is set.
class GlobalVariable : public Value {
public:
  GlobalVariable(std::string Name, uint32_t SizeWords)
      : Value(ValueKind::Global, Type::Ptr), SizeWords(SizeWords) {
    setName(std::move(Name));
  }

  uint32_t sizeWords() const { return SizeWords; }
  void setSizeWords(uint32_t W) { SizeWords = W; }

  static bool classof(const Value *V) { return V->kind() == ValueKind::Global; }

private:
  uint32_t SizeWords;
};

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_VALUE_H
