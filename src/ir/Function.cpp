//===- ir/Function.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::ir;

Argument *Function::addArgument(Type Ty, std::string ArgName) {
  auto Arg = std::make_unique<Argument>(
      Ty, static_cast<unsigned>(Args.size()), this);
  Arg->setName(std::move(ArgName));
  Args.push_back(std::move(Arg));
  return Args.back().get();
}

BasicBlock *Function::createBlock(std::string BlockName) {
  auto BB = std::make_unique<BasicBlock>(std::move(BlockName));
  BB->setParent(this);
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

void Function::eraseBlock(BasicBlock *BB) {
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [&](const auto &P) { return P.get() == BB; });
  assert(It != Blocks.end() && "block not in function");
  Blocks.erase(It);
}

void Function::moveBlock(BasicBlock *BB, size_t Pos) {
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [&](const auto &P) { return P.get() == BB; });
  assert(It != Blocks.end() && "block not in function");
  assert(Pos < Blocks.size() && "move position out of range");
  std::unique_ptr<BasicBlock> Owned = std::move(*It);
  Blocks.erase(It);
  Blocks.insert(Blocks.begin() + Pos, std::move(Owned));
}

BasicBlock *Function::findBlock(const std::string &BlockName) const {
  for (const auto &BB : Blocks)
    if (BB->name() == BlockName)
      return BB.get();
  return nullptr;
}

size_t Function::instructionCount() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->size();
  return N;
}

void Function::forEachInstruction(
    const std::function<void(BasicBlock &, Instruction &)> &Fn) const {
  for (const auto &BB : Blocks)
    for (const auto &I : BB->instructions())
      Fn(*BB, *I);
}

size_t Function::replaceAllUsesWith(Value *Old, Value *New) {
  assert(Old != New && "RAUW with identical values");
  size_t Rewritten = 0;
  forEachInstruction([&](BasicBlock &, Instruction &I) {
    for (size_t OpIdx = 0; OpIdx < I.numOperands(); ++OpIdx) {
      if (I.operand(OpIdx) == Old) {
        I.setOperand(OpIdx, New);
        ++Rewritten;
      }
    }
  });
  return Rewritten;
}

std::unordered_map<const Value *, size_t> Function::computeUseCounts() const {
  std::unordered_map<const Value *, size_t> Counts;
  forEachInstruction([&](BasicBlock &, Instruction &I) {
    for (const Value *Op : I.operands())
      ++Counts[Op];
  });
  return Counts;
}

bool Function::hasUses(const Value *V) const {
  bool Found = false;
  forEachInstruction([&](BasicBlock &, Instruction &I) {
    if (Found)
      return;
    for (const Value *Op : I.operands())
      if (Op == V) {
        Found = true;
        return;
      }
  });
  return Found;
}
