//===- ir/Printer.h - Textual IR emission -----------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules/functions in the mini-IR textual format. The format
/// round-trips through Parser.h and serves as the environment's "LLVM-IR"
/// string observation space and the wire format for benchmarks.
///
/// Example:
/// \code
///   module "example"
///   global @buf = words 16
///   func @main(i64 %n) -> i64 {
///   entry:
///     %cmp = icmp gt i64 %n, 0
///     condbr i1 %cmp, label %loop, label %exit
///   ...
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_PRINTER_H
#define COMPILER_GYM_IR_PRINTER_H

#include <string>

namespace compiler_gym {
namespace ir {

class Module;
class Function;

/// Renders the whole module as text.
std::string printModule(const Module &M);

/// Renders a single function as text.
std::string printFunction(const Function &F);

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_PRINTER_H
