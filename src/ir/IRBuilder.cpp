//===- ir/IRBuilder.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

using namespace compiler_gym;
using namespace compiler_gym::ir;

Instruction *IRBuilder::create(Opcode Op, Type ResultTy,
                               std::vector<Value *> Operands) {
  assert(BB && "no insertion point");
  auto I = std::make_unique<Instruction>(Op, ResultTy, std::move(Operands));
  return BB->append(std::move(I));
}

Instruction *IRBuilder::createBinary(Opcode Op, Value *L, Value *R) {
  assert(L->type() == R->type() && "binary op with mismatched types");
  return create(Op, L->type(), {L, R});
}

Instruction *IRBuilder::createICmp(Pred P, Value *L, Value *R) {
  assert(L->type() == R->type() && "icmp with mismatched types");
  Instruction *I = create(Opcode::ICmp, Type::I1, {L, R});
  I->setPred(P);
  return I;
}

Instruction *IRBuilder::createFCmp(Pred P, Value *L, Value *R) {
  Instruction *I = create(Opcode::FCmp, Type::I1, {L, R});
  I->setPred(P);
  return I;
}

Instruction *IRBuilder::createSelect(Value *Cond, Value *T, Value *E) {
  assert(T->type() == E->type() && "select with mismatched arms");
  return create(Opcode::Select, T->type(), {Cond, T, E});
}

Instruction *IRBuilder::createAlloca(uint32_t Words) {
  Instruction *I = create(Opcode::Alloca, Type::Ptr);
  I->setAllocaWords(Words);
  return I;
}

Instruction *IRBuilder::createLoad(Type Ty, Value *Ptr) {
  return create(Opcode::Load, Ty, {Ptr});
}

Instruction *IRBuilder::createStore(Value *V, Value *Ptr) {
  return create(Opcode::Store, Type::Void, {V, Ptr});
}

Instruction *IRBuilder::createGep(Value *Ptr, Value *Index) {
  return create(Opcode::Gep, Type::Ptr, {Ptr, Index});
}

Instruction *IRBuilder::createBr(BasicBlock *Dest) {
  return create(Opcode::Br, Type::Void, {Dest});
}

Instruction *IRBuilder::createCondBr(Value *Cond, BasicBlock *T,
                                     BasicBlock *E) {
  return create(Opcode::CondBr, Type::Void, {Cond, T, E});
}

Instruction *IRBuilder::createRet(Value *V) {
  if (V)
    return create(Opcode::Ret, Type::Void, {V});
  return create(Opcode::Ret, Type::Void);
}

Instruction *IRBuilder::createUnreachable() {
  return create(Opcode::Unreachable, Type::Void);
}

Instruction *IRBuilder::createCall(Function *Callee,
                                   std::vector<Value *> Args) {
  assert(BB && BB->parent() && BB->parent()->parent() &&
         "call requires a module context");
  Module *M = BB->parent()->parent();
  std::vector<Value *> Operands;
  Operands.reserve(Args.size() + 1);
  Operands.push_back(M->getFunctionRef(Callee));
  for (Value *A : Args)
    Operands.push_back(A);
  return create(Opcode::Call, Callee->returnType(), std::move(Operands));
}

Instruction *IRBuilder::createPhi(Type Ty) { return create(Opcode::Phi, Ty); }

Instruction *IRBuilder::createCast(Opcode Op, Value *V, Type DestTy) {
  assert((Op == Opcode::Trunc || Op == Opcode::ZExt || Op == Opcode::SExt ||
          Op == Opcode::SIToFP || Op == Opcode::FPToSI ||
          Op == Opcode::PtrToInt || Op == Opcode::IntToPtr) &&
         "not a cast opcode");
  return create(Op, DestTy, {V});
}
