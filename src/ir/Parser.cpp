//===- ir/Parser.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "util/StringUtils.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::ir;

namespace {

/// Whitespace/comma tokenizer for one line of IR text. Brackets and '='
/// are standalone tokens; ';' starts a comment.
std::vector<std::string> tokenize(std::string_view Line) {
  std::vector<std::string> Tokens;
  std::string Current;
  auto flush = [&] {
    if (!Current.empty()) {
      Tokens.push_back(Current);
      Current.clear();
    }
  };
  for (char C : Line) {
    if (C == ';')
      break;
    if (C == ' ' || C == '\t' || C == ',' || C == '(' || C == ')') {
      flush();
      continue;
    }
    if (C == '[' || C == ']' || C == '=' || C == '{' || C == '}') {
      flush();
      Tokens.push_back(std::string(1, C));
      continue;
    }
    Current += C;
  }
  flush();
  return Tokens;
}

bool isIntToken(const std::string &Tok) {
  if (Tok.empty())
    return false;
  size_t Start = (Tok[0] == '-') ? 1 : 0;
  if (Start == Tok.size())
    return false;
  for (size_t I = Start; I < Tok.size(); ++I)
    if (!isdigit(static_cast<unsigned char>(Tok[I])))
      return false;
  return true;
}

bool isFloatToken(const std::string &Tok) {
  if (Tok.empty())
    return false;
  char *End = nullptr;
  std::strtod(Tok.c_str(), &End);
  return End == Tok.c_str() + Tok.size() &&
         Tok.find_first_of(".eEni") != std::string::npos;
}

/// Parser state for one module.
class ModuleParser {
public:
  explicit ModuleParser(std::string_view Text) : Text(Text) {}

  StatusOr<std::unique_ptr<Module>> run();

private:
  Status error(const std::string &Message) const {
    return invalidArgument("line " + std::to_string(LineNo) + ": " + Message);
  }

  /// Reads the next non-empty line; false at EOF.
  bool nextLine(std::vector<std::string> &Tokens);

  Status parseGlobal(const std::vector<std::string> &Tokens);
  Status parseFunctionHeader(const std::vector<std::string> &Tokens);
  Status parseFunctionBody();
  Status parseInstruction(const std::vector<std::string> &Tokens);

  /// Resolves "<type> <ref>" operand starting at Tokens[I]; advances I.
  StatusOr<Value *> parseTypedOperand(const std::vector<std::string> &Tokens,
                                      size_t &I, Instruction *User);

  /// Resolves a local %name now or registers a fixup on \p User at the slot
  /// that will be appended next.
  Value *localOrFixup(const std::string &Name, Type Ty, Instruction *User);

  BasicBlock *blockForName(const std::string &Name);

  std::string_view Text;
  size_t Cursor = 0;
  int LineNo = 0;

  std::unique_ptr<Module> M = std::make_unique<Module>();
  Function *F = nullptr;             // Current function.
  BasicBlock *BB = nullptr;          // Current block.
  std::unordered_map<std::string, Value *> Locals; // %name -> value.
  std::unordered_map<std::string, BasicBlock *> BlocksByName;
  std::vector<BasicBlock *> DefinedBlockOrder; // Label-line order.

  struct Fixup {
    Instruction *User;
    size_t OperandIndex;
    std::string Name;
    Type Ty;
    int Line;
  };
  std::vector<Fixup> Fixups;
};

bool ModuleParser::nextLine(std::vector<std::string> &Tokens) {
  while (Cursor < Text.size()) {
    size_t End = Text.find('\n', Cursor);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = Text.substr(Cursor, End - Cursor);
    Cursor = End + 1;
    ++LineNo;
    Tokens = tokenize(Line);
    if (!Tokens.empty())
      return true;
  }
  return false;
}

BasicBlock *ModuleParser::blockForName(const std::string &Name) {
  auto It = BlocksByName.find(Name);
  if (It != BlocksByName.end())
    return It->second;
  BasicBlock *NewBB = F->createBlock(Name);
  BlocksByName.emplace(Name, NewBB);
  return NewBB;
}

Value *ModuleParser::localOrFixup(const std::string &Name, Type Ty,
                                  Instruction *User) {
  auto It = Locals.find(Name);
  if (It != Locals.end())
    return It->second;
  Fixups.push_back({User, User->numOperands(), Name, Ty, LineNo});
  return nullptr; // Placeholder; slot filled after function body.
}

StatusOr<Value *>
ModuleParser::parseTypedOperand(const std::vector<std::string> &Tokens,
                                size_t &I, Instruction *User) {
  if (I >= Tokens.size())
    return error("expected operand");
  Type Ty;
  if (!typeFromName(Tokens[I], Ty)) {
    if (Tokens[I] == "func")
      Ty = Type::FunctionTy;
    else
      return error("expected operand type, got '" + Tokens[I] + "'");
  }
  ++I;
  if (I >= Tokens.size())
    return error("expected operand reference");
  const std::string &Ref = Tokens[I];
  ++I;

  if (Ty == Type::Label) {
    if (Ref.empty() || Ref[0] != '%')
      return error("label operand must be %name");
    return static_cast<Value *>(blockForName(Ref.substr(1)));
  }
  if (Ty == Type::FunctionTy) {
    if (Ref.empty() || Ref[0] != '@')
      return error("function operand must be @name");
    Function *Callee = M->findFunction(Ref.substr(1));
    if (!Callee)
      return error("unknown function '" + Ref + "'");
    return static_cast<Value *>(M->getFunctionRef(Callee));
  }
  if (Ref[0] == '%') {
    Value *V = localOrFixup(Ref.substr(1), Ty, User);
    return V; // May be nullptr placeholder.
  }
  if (Ref[0] == '@') {
    GlobalVariable *G = M->findGlobal(Ref.substr(1));
    if (!G)
      return error("unknown global '" + Ref + "'");
    return static_cast<Value *>(G);
  }
  if (isIntToken(Ref)) {
    if (!isIntegerType(Ty))
      return error("integer literal with non-integer type");
    return static_cast<Value *>(M->getConstInt(Ty, std::strtoll(
        Ref.c_str(), nullptr, 10)));
  }
  if (isFloatToken(Ref))
    return static_cast<Value *>(M->getConstFloat(std::strtod(
        Ref.c_str(), nullptr)));
  return error("malformed operand '" + Ref + "'");
}

Status ModuleParser::parseGlobal(const std::vector<std::string> &Tokens) {
  // global @name = words N
  if (Tokens.size() != 5 || Tokens[1][0] != '@' || Tokens[2] != "=" ||
      Tokens[3] != "words" || !isIntToken(Tokens[4]))
    return error("malformed global declaration");
  // Pre-scan in run() already created the global; nothing more to do.
  if (!M->findGlobal(Tokens[1].substr(1)))
    M->createGlobal(Tokens[1].substr(1),
                    static_cast<uint32_t>(std::strtoull(
                        Tokens[4].c_str(), nullptr, 10)));
  return Status::ok();
}

Status
ModuleParser::parseFunctionHeader(const std::vector<std::string> &Tokens) {
  // func [noinline] @name(ty %a, ...) -> retty {
  size_t I = 1;
  bool NoInline = false;
  if (I < Tokens.size() && Tokens[I] == "noinline") {
    NoInline = true;
    ++I;
  }
  if (I >= Tokens.size() || Tokens[I][0] != '@')
    return error("expected @function-name");
  std::string FnName = Tokens[I].substr(1);
  ++I;

  // Arguments: pairs of (type, %name) until "->".
  std::vector<std::pair<Type, std::string>> ArgSpecs;
  while (I < Tokens.size() && Tokens[I] != "->") {
    Type Ty;
    if (!typeFromName(Tokens[I], Ty))
      return error("expected argument type, got '" + Tokens[I] + "'");
    ++I;
    if (I >= Tokens.size() || Tokens[I][0] != '%')
      return error("expected argument name");
    ArgSpecs.emplace_back(Ty, Tokens[I].substr(1));
    ++I;
  }
  if (I >= Tokens.size() || Tokens[I] != "->")
    return error("expected '->' in function header");
  ++I;
  Type RetTy;
  if (I >= Tokens.size() || !typeFromName(Tokens[I], RetTy))
    return error("expected return type");
  ++I;
  if (I >= Tokens.size() || Tokens[I] != "{")
    return error("expected '{'");

  // The pre-scan in run() creates stub functions so calls can reference
  // later definitions; reuse the stub here.
  F = M->findFunction(FnName);
  if (F && !F->empty())
    return error("duplicate function '@" + FnName + "'");
  if (!F)
    F = M->createFunction(FnName, RetTy);
  F->setNoInline(NoInline);
  Locals.clear();
  BlocksByName.clear();
  Fixups.clear();
  DefinedBlockOrder.clear();
  BB = nullptr;
  for (auto &[Ty, Name] : ArgSpecs) {
    Argument *A = F->addArgument(Ty, Name);
    Locals.emplace(Name, A);
  }
  return parseFunctionBody();
}

Status ModuleParser::parseFunctionBody() {
  std::vector<std::string> Tokens;
  while (nextLine(Tokens)) {
    if (Tokens.size() == 1 && Tokens[0] == "}") {
      // Resolve fixups now that all locals are defined.
      for (const Fixup &Fx : Fixups) {
        auto It = Locals.find(Fx.Name);
        if (It == Locals.end())
          return invalidArgument("line " + std::to_string(Fx.Line) +
                                 ": undefined local '%" + Fx.Name + "'");
        Fx.User->setOperand(Fx.OperandIndex, It->second);
      }
      // Restore source (label-definition) block order; forward branch
      // references may have created blocks early.
      for (size_t Pos = 0; Pos < DefinedBlockOrder.size(); ++Pos)
        F->moveBlock(DefinedBlockOrder[Pos], Pos);
      F = nullptr;
      return Status::ok();
    }
    // Label line: "name:".
    if (Tokens.size() == 1 && Tokens[0].back() == ':') {
      BB = blockForName(Tokens[0].substr(0, Tokens[0].size() - 1));
      DefinedBlockOrder.push_back(BB);
      continue;
    }
    if (!BB)
      return error("instruction outside a basic block");
    CG_RETURN_IF_ERROR(parseInstruction(Tokens));
  }
  return error("unexpected end of input inside function");
}

Status ModuleParser::parseInstruction(const std::vector<std::string> &Tokens) {
  size_t I = 0;
  std::string ResultName;
  if (Tokens[I][0] == '%') {
    ResultName = Tokens[I].substr(1);
    ++I;
    if (I >= Tokens.size() || Tokens[I] != "=")
      return error("expected '=' after result name");
    ++I;
  }
  if (I >= Tokens.size())
    return error("expected opcode");
  Opcode Op;
  if (!opcodeFromName(Tokens[I], Op))
    return error("unknown opcode '" + Tokens[I] + "'");
  ++I;

  Type ResultTy = Type::Void;
  if (!ResultName.empty()) {
    if (I >= Tokens.size() || !typeFromName(Tokens[I], ResultTy))
      return error("expected result type");
    ++I;
  }

  auto Inst = std::make_unique<Instruction>(Op, ResultTy);
  Instruction *IPtr = Inst.get();
  IPtr->setName(ResultName);
  // Append now so fixup operand indices are stable; operands are pushed
  // below.
  BB->append(std::move(Inst));

  bool ParseGenericOperands = true;
  switch (Op) {
  case Opcode::ICmp:
  case Opcode::FCmp: {
    Pred P;
    if (I >= Tokens.size() || !predFromName(Tokens[I], P))
      return error("expected comparison predicate");
    IPtr->setPred(P);
    ++I;
    break;
  }
  case Opcode::Alloca: {
    if (I + 1 >= Tokens.size() || Tokens[I] != "words" ||
        !isIntToken(Tokens[I + 1]))
      return error("expected 'words N' after alloca");
    IPtr->setAllocaWords(static_cast<uint32_t>(
        std::strtoull(Tokens[I + 1].c_str(), nullptr, 10)));
    I += 2;
    if (!ResultName.empty())
      Locals.emplace(ResultName, IPtr);
    return Status::ok();
  }
  case Opcode::Phi: {
    // [ v, %bb ] pairs.
    while (I < Tokens.size()) {
      if (Tokens[I] != "[")
        return error("expected '[' in phi");
      ++I;
      if (I >= Tokens.size())
        return error("truncated phi");
      const std::string &ValTok = Tokens[I];
      Value *V = nullptr;
      if (ValTok[0] == '%') {
        V = localOrFixup(ValTok.substr(1), ResultTy, IPtr);
      } else if (ValTok[0] == '@') {
        V = M->findGlobal(ValTok.substr(1));
        if (!V)
          return error("unknown global in phi");
      } else if (isIntToken(ValTok)) {
        if (ResultTy == Type::F64)
          V = M->getConstFloat(std::strtod(ValTok.c_str(), nullptr));
        else
          V = M->getConstInt(ResultTy, std::strtoll(ValTok.c_str(),
                                                    nullptr, 10));
      } else if (isFloatToken(ValTok)) {
        V = M->getConstFloat(std::strtod(ValTok.c_str(), nullptr));
      } else {
        return error("malformed phi value '" + ValTok + "'");
      }
      IPtr->operands().push_back(V);
      ++I;
      if (I >= Tokens.size() || Tokens[I][0] != '%')
        return error("expected %block in phi");
      IPtr->operands().push_back(blockForName(Tokens[I].substr(1)));
      ++I;
      if (I >= Tokens.size() || Tokens[I] != "]")
        return error("expected ']' in phi");
      ++I;
    }
    ParseGenericOperands = false;
    break;
  }
  case Opcode::Ret:
    if (I < Tokens.size() && Tokens[I] == "void") {
      ++I;
      ParseGenericOperands = false;
    }
    break;
  default:
    break;
  }

  if (ParseGenericOperands) {
    while (I < Tokens.size()) {
      CG_ASSIGN_OR_RETURN(Value *Operand, parseTypedOperand(Tokens, I, IPtr));
      IPtr->operands().push_back(Operand);
    }
  }

  if (!ResultName.empty()) {
    if (Locals.count(ResultName))
      return error("duplicate definition of '%" + ResultName + "'");
    Locals.emplace(ResultName, IPtr);
  }
  return Status::ok();
}

StatusOr<std::unique_ptr<Module>> ModuleParser::run() {
  // Pre-scan: create stub functions for every `func` header and every
  // global so forward references resolve during the main pass.
  {
    size_t SavedCursor = Cursor;
    int SavedLine = LineNo;
    std::vector<std::string> Tokens;
    while (nextLine(Tokens)) {
      if (Tokens.empty())
        continue;
      if (Tokens[0] == "global") {
        if (Tokens.size() == 5 && Tokens[1][0] == '@' &&
            isIntToken(Tokens[4]) && !M->findGlobal(Tokens[1].substr(1)))
          M->createGlobal(Tokens[1].substr(1),
                          static_cast<uint32_t>(
                              std::strtoull(Tokens[4].c_str(), nullptr, 10)));
        continue;
      }
      if (Tokens[0] != "func")
        continue;
      size_t I = 1;
      if (I < Tokens.size() && Tokens[I] == "noinline")
        ++I;
      if (I >= Tokens.size() || Tokens[I][0] != '@')
        continue; // Main pass reports the malformed header.
      std::string FnName = Tokens[I].substr(1);
      auto Arrow = std::find(Tokens.begin(), Tokens.end(), "->");
      Type RetTy = Type::Void;
      if (Arrow != Tokens.end() && Arrow + 1 != Tokens.end())
        typeFromName(*(Arrow + 1), RetTy);
      if (!M->findFunction(FnName))
        M->createFunction(FnName, RetTy);
    }
    Cursor = SavedCursor;
    LineNo = SavedLine;
  }

  std::vector<std::string> Tokens;
  while (nextLine(Tokens)) {
    if (Tokens[0] == "module") {
      if (Tokens.size() >= 2) {
        std::string Name = Tokens[1];
        // Strip quotes.
        if (Name.size() >= 2 && Name.front() == '"' && Name.back() == '"')
          Name = Name.substr(1, Name.size() - 2);
        M->setName(Name);
      }
      continue;
    }
    if (Tokens[0] == "global") {
      CG_RETURN_IF_ERROR(parseGlobal(Tokens));
      continue;
    }
    if (Tokens[0] == "func") {
      CG_RETURN_IF_ERROR(parseFunctionHeader(Tokens));
      continue;
    }
    return error("unexpected top-level token '" + Tokens[0] + "'");
  }
  return std::move(M);
}

} // namespace

StatusOr<std::unique_ptr<Module>> ir::parseModule(std::string_view Text) {
  ModuleParser P(Text);
  return P.run();
}
