//===- ir/Snapshot.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Snapshot.h"

#include "telemetry/MetricsRegistry.h"

using namespace compiler_gym;
using namespace compiler_gym::ir;

namespace {

telemetry::Gauge &storeEntries() {
  static telemetry::Gauge &G = telemetry::MetricsRegistry::global().gauge(
      "cg_snapshot_store_entries", {}, "Module snapshots currently stored");
  return G;
}

telemetry::Gauge &storeBytes() {
  static telemetry::Gauge &G = telemetry::MetricsRegistry::global().gauge(
      "cg_snapshot_store_bytes", {},
      "Approximate bytes owned by stored module snapshots");
  return G;
}

telemetry::Counter &storeLookups(bool Hit) {
  static telemetry::MetricsRegistry &M = telemetry::MetricsRegistry::global();
  static const char *Help = "Snapshot store lookups by outcome";
  static telemetry::Counter &Hits = M.counter(
      "cg_snapshot_store_hits_total", {{"outcome", "hit"}}, Help);
  static telemetry::Counter &Misses = M.counter(
      "cg_snapshot_store_hits_total", {{"outcome", "miss"}}, Help);
  return Hit ? Hits : Misses;
}

telemetry::Counter &storeEvictions() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_snapshot_store_evictions_total", {},
      "Snapshots dropped by LRU capacity eviction");
  return C;
}

/// Approximate retained size. Shared payloads are charged to every
/// snapshot referencing them (an upper bound — sharing makes the true
/// footprint smaller), which keeps the accounting O(1) per put.
size_t approxModuleBytes(const Module &M) {
  size_t Bytes = 0;
  for (const auto &F : M.functions())
    Bytes += 96 * F->instructionCount() + 64 * F->numBlocks() + 128;
  return Bytes + 64 * M.globals().size() + 256;
}

} // namespace

SnapshotStore &SnapshotStore::global() {
  static SnapshotStore *S = new SnapshotStore();
  return *S;
}

void SnapshotStore::put(uint64_t Key, std::shared_ptr<const Module> Mod,
                        std::string BenchmarkUri) {
  if (!Mod)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Map.find(Key);
  if (It != Map.end()) {
    Lru.erase(It->second.LruIt);
    It->second.LruIt = Lru.insert(Lru.begin(), Key);
    return;
  }
  size_t Bytes = approxModuleBytes(*Mod);
  Entry E;
  E.Snap = {std::move(Mod), std::move(BenchmarkUri)};
  E.Bytes = Bytes;
  E.LruIt = Lru.insert(Lru.begin(), Key);
  Map.emplace(Key, std::move(E));
  TotalBytes += Bytes;
  evictLocked();
  storeEntries().set(static_cast<int64_t>(Map.size()));
  storeBytes().set(static_cast<int64_t>(TotalBytes));
}

std::optional<Snapshot> SnapshotStore::get(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    storeLookups(false).inc();
    return std::nullopt;
  }
  Lru.erase(It->second.LruIt);
  It->second.LruIt = Lru.insert(Lru.begin(), Key);
  storeLookups(true).inc();
  return It->second.Snap;
}

void SnapshotStore::evictLocked() {
  while (Map.size() > MaxEntries ||
         (TotalBytes > MaxBytes && Map.size() > 1)) {
    uint64_t Victim = Lru.back();
    auto It = Map.find(Victim);
    TotalBytes -= It->second.Bytes;
    Lru.pop_back();
    Map.erase(It);
    storeEvictions().inc();
  }
}

void SnapshotStore::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Map.clear();
  Lru.clear();
  TotalBytes = 0;
  storeEntries().set(0);
  storeBytes().set(0);
}

void SnapshotStore::setCapacity(size_t Entries, size_t Bytes) {
  std::lock_guard<std::mutex> Lock(Mutex);
  MaxEntries = Entries;
  MaxBytes = Bytes;
  evictLocked();
  storeEntries().set(static_cast<int64_t>(Map.size()));
  storeBytes().set(static_cast<int64_t>(TotalBytes));
}

size_t SnapshotStore::entries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Map.size();
}

size_t SnapshotStore::approxBytes() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return TotalBytes;
}
