//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and SSA validation of modules: every block terminated, operand
/// types legal per opcode, phi inputs matching predecessors, and defs
/// dominating uses. Every optimization pass must leave modules verified;
/// the pass-manager tests enforce this invariant over random pipelines.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_VERIFIER_H
#define COMPILER_GYM_IR_VERIFIER_H

#include "ir/Module.h"
#include "util/Status.h"

namespace compiler_gym {
namespace ir {

/// Verifies the whole module; returns the first violation found.
Status verifyModule(const Module &M);

/// Verifies a single function. When \p M is provided, call sites are
/// resolved against it and checked against the callee signature; without a
/// module, symbolic call targets cannot be resolved and signature checks
/// are skipped.
Status verifyFunction(const Function &F, const Module *M = nullptr);

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_VERIFIER_H
