//===- ir/IRBuilder.h - Instruction construction helper ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder: appends instructions to a basic block with type inference,
/// used by the program generators and tests. Mirrors (a small part of)
/// llvm::IRBuilder.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_IRBUILDER_H
#define COMPILER_GYM_IR_IRBUILDER_H

#include "ir/Module.h"

namespace compiler_gym {
namespace ir {

/// Builds instructions at the end of a block.
class IRBuilder {
public:
  explicit IRBuilder(BasicBlock *BB = nullptr) : BB(BB) {}

  void setInsertPoint(BasicBlock *Block) { BB = Block; }
  BasicBlock *insertBlock() const { return BB; }

  /// Generic escape hatch: creates an instruction with explicit fields.
  Instruction *create(Opcode Op, Type ResultTy,
                      std::vector<Value *> Operands = {});

  // -- Arithmetic / bitwise -------------------------------------------------
  Instruction *createBinary(Opcode Op, Value *L, Value *R);
  Instruction *createAdd(Value *L, Value *R) {
    return createBinary(Opcode::Add, L, R);
  }
  Instruction *createSub(Value *L, Value *R) {
    return createBinary(Opcode::Sub, L, R);
  }
  Instruction *createMul(Value *L, Value *R) {
    return createBinary(Opcode::Mul, L, R);
  }

  Instruction *createICmp(Pred P, Value *L, Value *R);
  Instruction *createFCmp(Pred P, Value *L, Value *R);
  Instruction *createSelect(Value *Cond, Value *T, Value *E);

  // -- Memory ---------------------------------------------------------------
  Instruction *createAlloca(uint32_t Words);
  Instruction *createLoad(Type Ty, Value *Ptr);
  Instruction *createStore(Value *V, Value *Ptr);
  Instruction *createGep(Value *Ptr, Value *Index);

  // -- Control flow ----------------------------------------------------------
  Instruction *createBr(BasicBlock *Dest);
  Instruction *createCondBr(Value *Cond, BasicBlock *T, BasicBlock *E);
  Instruction *createRet(Value *V = nullptr);
  Instruction *createUnreachable();

  // -- Calls / phis -----------------------------------------------------------
  Instruction *createCall(Function *Callee, std::vector<Value *> Args);
  Instruction *createPhi(Type Ty);

  // -- Casts ------------------------------------------------------------------
  Instruction *createCast(Opcode Op, Value *V, Type DestTy);

private:
  BasicBlock *BB;
};

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_IRBUILDER_H
