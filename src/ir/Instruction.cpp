//===- ir/Instruction.cpp -------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Module.h"

#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::ir;

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::SRem:
    return "srem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::LShr:
    return "lshr";
  case Opcode::AShr:
    return "ashr";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::FCmp:
    return "fcmp";
  case Opcode::Alloca:
    return "alloca";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Gep:
    return "gep";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  case Opcode::Unreachable:
    return "unreachable";
  case Opcode::Call:
    return "call";
  case Opcode::Phi:
    return "phi";
  case Opcode::Select:
    return "select";
  case Opcode::Trunc:
    return "trunc";
  case Opcode::ZExt:
    return "zext";
  case Opcode::SExt:
    return "sext";
  case Opcode::SIToFP:
    return "sitofp";
  case Opcode::FPToSI:
    return "fptosi";
  case Opcode::PtrToInt:
    return "ptrtoint";
  case Opcode::IntToPtr:
    return "inttoptr";
  }
  return "?";
}

bool ir::opcodeFromName(const std::string &Name, Opcode &Out) {
  static const std::unordered_map<std::string, Opcode> Table = [] {
    std::unordered_map<std::string, Opcode> T;
    for (int I = 0; I < NumOpcodes; ++I) {
      Opcode Op = static_cast<Opcode>(I);
      T.emplace(opcodeName(Op), Op);
    }
    return T;
  }();
  auto It = Table.find(Name);
  if (It == Table.end())
    return false;
  Out = It->second;
  return true;
}

const char *ir::predName(Pred P) {
  switch (P) {
  case Pred::EQ:
    return "eq";
  case Pred::NE:
    return "ne";
  case Pred::LT:
    return "lt";
  case Pred::LE:
    return "le";
  case Pred::GT:
    return "gt";
  case Pred::GE:
    return "ge";
  }
  return "?";
}

bool ir::predFromName(const std::string &Name, Pred &Out) {
  if (Name == "eq")
    Out = Pred::EQ;
  else if (Name == "ne")
    Out = Pred::NE;
  else if (Name == "lt")
    Out = Pred::LT;
  else if (Name == "le")
    Out = Pred::LE;
  else if (Name == "gt")
    Out = Pred::GT;
  else if (Name == "ge")
    Out = Pred::GE;
  else
    return false;
  return true;
}

BasicBlock *Instruction::incomingBlock(unsigned I) const {
  return cast<BasicBlock>(operand(2 * I + 1));
}

void Instruction::addIncoming(Value *V, BasicBlock *BB) {
  assert(Op == Opcode::Phi && "addIncoming() on non-phi");
  Operands.push_back(V);
  Operands.push_back(BB);
}

void Instruction::removeIncoming(unsigned I) {
  assert(Op == Opcode::Phi && "removeIncoming() on non-phi");
  assert(2 * I + 1 < Operands.size() && "incoming index out of range");
  Operands.erase(Operands.begin() + 2 * I, Operands.begin() + 2 * I + 2);
}

Function *Instruction::calledFunction(const Module &M) const {
  assert(Op == Opcode::Call && "calledFunction() on non-call");
  return M.findFunction(cast<FunctionRef>(operand(0))->calleeName());
}

const std::string &Instruction::calleeName() const {
  assert(Op == Opcode::Call && "calleeName() on non-call");
  return cast<FunctionRef>(operand(0))->calleeName();
}

std::vector<BasicBlock *> Instruction::successors() const {
  switch (Op) {
  case Opcode::Br:
    return {cast<BasicBlock>(operand(0))};
  case Opcode::CondBr:
    return {cast<BasicBlock>(operand(1)), cast<BasicBlock>(operand(2))};
  default:
    return {};
  }
}

void Instruction::replaceSuccessor(BasicBlock *From, BasicBlock *To) {
  switch (Op) {
  case Opcode::Br:
    if (operand(0) == From)
      setOperand(0, To);
    return;
  case Opcode::CondBr:
    if (operand(1) == From)
      setOperand(1, To);
    if (operand(2) == From)
      setOperand(2, To);
    return;
  default:
    return;
  }
}
