//===- ir/Printer.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Module.h"

#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::ir;

namespace {

/// Assigns unique printable names to local values (instructions, arguments,
/// blocks) within one function.
class NameTable {
public:
  std::string nameOf(const Value *V) {
    auto It = Names.find(V);
    if (It != Names.end())
      return It->second;
    std::string Base = V->name().empty() ? defaultBase(V) : V->name();
    std::string Candidate = Base;
    int Suffix = 0;
    while (!Used.insert(Candidate).second)
      Candidate = Base + "." + std::to_string(++Suffix);
    Names.emplace(V, Candidate);
    return Candidate;
  }

private:
  std::string defaultBase(const Value *V) {
    if (isa<BasicBlock>(V))
      return "bb" + std::to_string(Counter++);
    return "t" + std::to_string(Counter++);
  }

  int Counter = 0;
  std::unordered_map<const Value *, std::string> Names;
  std::unordered_set<std::string> Used;
};

std::string formatFloat(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  std::string S(Buf);
  // Guarantee the token reads back as a float (contains '.', 'e' or special).
  if (S.find_first_of(".eEni") == std::string::npos)
    S += ".0";
  return S;
}

/// Renders one operand as "<type> <ref>".
void printOperand(std::ostringstream &OS, const Value *V, NameTable &Names) {
  if (const auto *C = dyn_cast<Constant>(V)) {
    OS << typeName(C->type()) << ' ';
    if (C->type() == Type::F64)
      OS << formatFloat(C->floatValue());
    else
      OS << C->intValue();
    return;
  }
  if (const auto *G = dyn_cast<GlobalVariable>(V)) {
    OS << "ptr @" << G->name();
    return;
  }
  if (const auto *FR = dyn_cast<FunctionRef>(V)) {
    OS << "func @" << FR->calleeName();
    return;
  }
  if (const auto *BB = dyn_cast<BasicBlock>(V)) {
    OS << "label %" << Names.nameOf(BB);
    return;
  }
  OS << typeName(V->type()) << " %" << Names.nameOf(V);
}

/// Renders a phi incoming value (type implied by the phi's result type).
void printPhiValue(std::ostringstream &OS, const Value *V, NameTable &Names) {
  if (const auto *C = dyn_cast<Constant>(V)) {
    if (C->type() == Type::F64)
      OS << formatFloat(C->floatValue());
    else
      OS << C->intValue();
    return;
  }
  if (const auto *G = dyn_cast<GlobalVariable>(V)) {
    OS << '@' << G->name();
    return;
  }
  OS << '%' << Names.nameOf(V);
}

void printInstruction(std::ostringstream &OS, const Instruction &I,
                      NameTable &Names) {
  OS << "  ";
  if (I.type() != Type::Void)
    OS << '%' << Names.nameOf(&I) << " = ";
  OS << opcodeName(I.opcode());
  if (I.type() != Type::Void)
    OS << ' ' << typeName(I.type());

  switch (I.opcode()) {
  case Opcode::ICmp:
  case Opcode::FCmp:
    OS << ' ' << predName(I.pred());
    break;
  case Opcode::Alloca:
    OS << " words " << I.allocaWords();
    return; // Alloca has no operands.
  case Opcode::Phi: {
    for (unsigned Inc = 0; Inc < I.numIncoming(); ++Inc) {
      OS << (Inc ? ", [ " : " [ ");
      printPhiValue(OS, I.incomingValue(Inc), Names);
      OS << ", %" << Names.nameOf(I.incomingBlock(Inc)) << " ]";
    }
    return;
  }
  case Opcode::Ret:
    if (I.numOperands() == 0) {
      OS << " void";
      return;
    }
    break;
  default:
    break;
  }

  for (size_t Op = 0; Op < I.numOperands(); ++Op) {
    OS << (Op ? ", " : " ");
    printOperand(OS, I.operand(Op), Names);
  }
}

} // namespace

std::string ir::printFunction(const Function &F) {
  NameTable Names;
  std::ostringstream OS;
  OS << "func ";
  if (F.isNoInline())
    OS << "noinline ";
  OS << '@' << F.name() << '(';
  for (size_t I = 0; I < F.numArgs(); ++I) {
    if (I)
      OS << ", ";
    OS << typeName(F.arg(I)->type()) << " %" << Names.nameOf(F.arg(I));
  }
  OS << ") -> " << typeName(F.returnType()) << " {\n";
  for (const auto &BB : F.blocks()) {
    OS << Names.nameOf(BB.get()) << ":\n";
    for (const auto &I : BB->instructions()) {
      printInstruction(OS, *I, Names);
      OS << '\n';
    }
  }
  OS << "}\n";
  return OS.str();
}

std::string ir::printModule(const Module &M) {
  std::ostringstream OS;
  OS << "module \"" << M.name() << "\"\n";
  for (const auto &G : M.globals())
    OS << "global @" << G->name() << " = words " << G->sizeWords() << '\n';
  for (const auto &F : M.functions())
    OS << printFunction(*F);
  return OS.str();
}
