//===- ir/Interpreter.h - Reference executor --------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic reference interpreter for the mini-IR. It provides:
///  * the *runtime* reward signal (executed-cycle cost model; the
///    environment layers measurement noise on top, mirroring the paper's
///    nondeterministic wall-time rewards);
///  * *semantics validation* via differential testing (§III-B4): observable
///    behaviour is the return value plus final global memory, which legal
///    optimizations must preserve;
///  * trap detection (division by zero, out-of-bounds, fuel exhaustion),
///    standing in for the sanitizers the paper integrates.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_INTERPRETER_H
#define COMPILER_GYM_IR_INTERPRETER_H

#include "ir/Module.h"
#include "util/Status.h"

#include <array>
#include <cstdint>
#include <vector>

namespace compiler_gym {
namespace ir {

/// Interpreter limits and program inputs.
struct InterpreterOptions {
  uint64_t MaxInstructions = 2'000'000; ///< Fuel; trap when exhausted.
  uint32_t MemoryWords = 1u << 18;      ///< Flat word-addressed memory.
  uint32_t MaxCallDepth = 200;
  std::vector<int64_t> Args;            ///< Integer arguments for the entry.
};

/// Outcome of one execution.
struct ExecutionResult {
  bool Completed = false;     ///< False on trap / fuel exhaustion.
  std::string TrapReason;     ///< Set when !Completed.
  int64_t ReturnInt = 0;      ///< Integer-typed return value (bits).
  double ReturnFloat = 0.0;   ///< f64-typed return value.
  uint64_t InstructionsExecuted = 0;
  std::array<uint64_t, NumOpcodes> OpcodeCounts{}; ///< Dynamic mix.
  uint64_t SimulatedCycles = 0; ///< Per-opcode cost model total.
  uint64_t OutputHash = 0;    ///< Hash of (return bits, global memory).

  /// Simulated wall seconds at the model's clock rate.
  double simulatedSeconds() const {
    return static_cast<double>(SimulatedCycles) / 2.5e9;
  }
};

/// Cost in cycles charged for executing \p Op once.
uint32_t opcodeCycleCost(Opcode Op);

/// Executes \p Entry ("main" by default) of \p M. Returns NotFound if the
/// entry function does not exist; execution traps are reported in-band via
/// ExecutionResult (a trapped run is still a successful *measurement*).
StatusOr<ExecutionResult> interpret(const Module &M,
                                    const InterpreterOptions &Opts = {},
                                    const std::string &Entry = "main");

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_INTERPRETER_H
