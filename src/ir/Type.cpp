//===- ir/Type.cpp --------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include <cassert>

using namespace compiler_gym;
using namespace compiler_gym::ir;

const char *ir::typeName(Type Ty) {
  switch (Ty) {
  case Type::Void:
    return "void";
  case Type::I1:
    return "i1";
  case Type::I32:
    return "i32";
  case Type::I64:
    return "i64";
  case Type::F64:
    return "f64";
  case Type::Ptr:
    return "ptr";
  case Type::Label:
    return "label";
  case Type::FunctionTy:
    return "function";
  }
  return "?";
}

bool ir::typeFromName(const std::string &Name, Type &Out) {
  if (Name == "void")
    Out = Type::Void;
  else if (Name == "i1")
    Out = Type::I1;
  else if (Name == "i32")
    Out = Type::I32;
  else if (Name == "i64")
    Out = Type::I64;
  else if (Name == "f64")
    Out = Type::F64;
  else if (Name == "ptr")
    Out = Type::Ptr;
  else if (Name == "label")
    Out = Type::Label;
  else if (Name == "function")
    Out = Type::FunctionTy;
  else
    return false;
  return true;
}

int ir::integerBitWidth(Type Ty) {
  switch (Ty) {
  case Type::I1:
    return 1;
  case Type::I32:
    return 32;
  case Type::I64:
    return 64;
  default:
    assert(false && "not an integer type");
    return 0;
  }
}
