//===- ir/Dominators.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include <algorithm>
#include <deque>

using namespace compiler_gym;
using namespace compiler_gym::ir;

DominatorTree::DominatorTree(const Function &F) {
  if (F.empty())
    return;
  BasicBlock *Entry = F.entry();

  // Postorder DFS over reachable blocks.
  std::vector<BasicBlock *> Postorder;
  std::unordered_set<BasicBlock *> Visited;
  // Iterative DFS with explicit (block, successor-cursor) stack.
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  Stack.emplace_back(Entry, 0);
  Visited.insert(Entry);
  while (!Stack.empty()) {
    auto &[BB, Cursor] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (Cursor < Succs.size()) {
      BasicBlock *Next = Succs[Cursor++];
      if (Visited.insert(Next).second)
        Stack.emplace_back(Next, 0);
      continue;
    }
    Postorder.push_back(BB);
    Stack.pop_back();
  }
  for (size_t I = 0; I < Postorder.size(); ++I)
    PostorderIndex[Postorder[I]] = static_cast<int>(I);
  Rpo.assign(Postorder.rbegin(), Postorder.rend());

  // Cooper-Harvey-Kennedy iteration.
  auto intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (PostorderIndex.at(A) < PostorderIndex.at(B))
        A = Idom.at(A);
      while (PostorderIndex.at(B) < PostorderIndex.at(A))
        B = Idom.at(B);
    }
    return A;
  };

  Idom[Entry] = Entry;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : Rpo) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIdom = nullptr;
      for (BasicBlock *Pred : BB->predecessors()) {
        if (!PostorderIndex.count(Pred))
          continue; // Unreachable predecessor.
        if (!Idom.count(Pred))
          continue; // Not yet processed this round.
        NewIdom = NewIdom ? intersect(NewIdom, Pred) : Pred;
      }
      if (!NewIdom)
        continue;
      auto It = Idom.find(BB);
      if (It == Idom.end() || It->second != NewIdom) {
        Idom[BB] = NewIdom;
        Changed = true;
      }
    }
  }
}

void DominatorTree::applyBlockMerged(BasicBlock *Into,
                                     const BasicBlock *Gone) {
  if (!PostorderIndex.count(Gone))
    return; // Unreachable at analysis time: not in the tree.
  for (auto &[BB, ID] : Idom)
    if (ID == Gone)
      ID = Into;
  Idom.erase(Gone);
  PostorderIndex.erase(Gone);
  Rpo.erase(std::remove(Rpo.begin(), Rpo.end(),
                        const_cast<BasicBlock *>(Gone)),
            Rpo.end());
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (!PostorderIndex.count(B))
    return true; // B unreachable: vacuously dominated.
  if (!PostorderIndex.count(A))
    return false; // A unreachable: dominates nothing reachable.
  const BasicBlock *Runner = B;
  while (true) {
    if (Runner == A)
      return true;
    auto It = Idom.find(Runner);
    if (It == Idom.end() || It->second == Runner)
      return Runner == A;
    Runner = It->second;
  }
}

BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  auto It = Idom.find(BB);
  if (It == Idom.end() || It->second == BB)
    return nullptr;
  return It->second;
}

std::vector<NaturalLoop>
ir::findNaturalLoops(const Function &F, const DominatorTree &DT) {
  std::unordered_map<BasicBlock *, NaturalLoop> LoopsByHeader;

  for (const auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    if (!DT.isReachable(BB))
      continue;
    for (BasicBlock *Succ : BB->successors()) {
      if (!DT.dominates(Succ, BB))
        continue; // Not a back edge.
      NaturalLoop &Loop = LoopsByHeader[Succ];
      Loop.Header = Succ;
      Loop.Latches.push_back(BB);
      // Walk predecessors from the latch up to the header.
      Loop.Blocks.insert(Succ);
      std::deque<BasicBlock *> Work{BB};
      while (!Work.empty()) {
        BasicBlock *Cur = Work.front();
        Work.pop_front();
        if (!Loop.Blocks.insert(Cur).second)
          continue;
        for (BasicBlock *Pred : Cur->predecessors())
          if (DT.isReachable(Pred))
            Work.push_back(Pred);
      }
    }
  }

  std::vector<NaturalLoop> Out;
  Out.reserve(LoopsByHeader.size());
  for (auto &[Header, Loop] : LoopsByHeader)
    Out.push_back(std::move(Loop));
  // Outermost (earliest header in RPO) first, deterministically.
  std::unordered_map<const BasicBlock *, size_t> RpoPos;
  for (size_t I = 0; I < DT.reversePostorder().size(); ++I)
    RpoPos[DT.reversePostorder()[I]] = I;
  std::sort(Out.begin(), Out.end(),
            [&](const NaturalLoop &A, const NaturalLoop &B) {
              return RpoPos.at(A.Header) < RpoPos.at(B.Header);
            });
  return Out;
}

bool DominatorTree::structurallyEquals(const Function &F,
                                       const DominatorTree &Other) const {
  if (Rpo != Other.Rpo)
    return false;
  for (const auto &BB : F.blocks()) {
    if (isReachable(BB.get()) != Other.isReachable(BB.get()))
      return false;
    if (idom(BB.get()) != Other.idom(BB.get()))
      return false;
  }
  return true;
}
