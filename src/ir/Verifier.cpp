//===- ir/Verifier.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Dominators.h"

#include <algorithm>
#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::ir;

namespace {

Status fail(const Function &F, const std::string &Message) {
  return internalError("verifier: @" + F.name() + ": " + Message);
}

Status checkOperandTypes(const Function &F, const Instruction &I,
                         const Module *M) {
  auto want = [&](size_t Idx, Type Ty) -> Status {
    if (I.numOperands() <= Idx)
      return fail(F, std::string(opcodeName(I.opcode())) +
                         ": missing operand " + std::to_string(Idx));
    if (I.operand(Idx)->type() != Ty)
      return fail(F, std::string(opcodeName(I.opcode())) + ": operand " +
                         std::to_string(Idx) + " has type " +
                         typeName(I.operand(Idx)->type()) + ", expected " +
                         typeName(Ty));
    return Status::ok();
  };
  auto wantCount = [&](size_t N) -> Status {
    if (I.numOperands() != N)
      return fail(F, std::string(opcodeName(I.opcode())) + ": expected " +
                         std::to_string(N) + " operands, got " +
                         std::to_string(I.numOperands()));
    return Status::ok();
  };

  switch (I.opcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::SDiv:
  case Opcode::SRem:
    CG_RETURN_IF_ERROR(wantCount(2));
    if (I.type() != Type::I32 && I.type() != Type::I64)
      return fail(F, "integer arithmetic must be i32/i64");
    CG_RETURN_IF_ERROR(want(0, I.type()));
    return want(1, I.type());
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    CG_RETURN_IF_ERROR(wantCount(2));
    if (!isIntegerType(I.type()))
      return fail(F, "bitwise op must be integer-typed");
    CG_RETURN_IF_ERROR(want(0, I.type()));
    return want(1, I.type());
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    CG_RETURN_IF_ERROR(wantCount(2));
    if (I.type() != Type::F64)
      return fail(F, "float arithmetic must be f64");
    CG_RETURN_IF_ERROR(want(0, Type::F64));
    return want(1, Type::F64);
  case Opcode::ICmp:
    CG_RETURN_IF_ERROR(wantCount(2));
    if (I.type() != Type::I1)
      return fail(F, "icmp result must be i1");
    if (!isIntegerType(I.operand(0)->type()) &&
        I.operand(0)->type() != Type::Ptr)
      return fail(F, "icmp operands must be integer or ptr");
    if (I.operand(0)->type() != I.operand(1)->type())
      return fail(F, "icmp operand types differ");
    return Status::ok();
  case Opcode::FCmp:
    CG_RETURN_IF_ERROR(wantCount(2));
    if (I.type() != Type::I1)
      return fail(F, "fcmp result must be i1");
    CG_RETURN_IF_ERROR(want(0, Type::F64));
    return want(1, Type::F64);
  case Opcode::Alloca:
    CG_RETURN_IF_ERROR(wantCount(0));
    if (I.type() != Type::Ptr)
      return fail(F, "alloca result must be ptr");
    if (I.allocaWords() == 0)
      return fail(F, "alloca of zero words");
    return Status::ok();
  case Opcode::Load:
    CG_RETURN_IF_ERROR(wantCount(1));
    if (!isFirstClassType(I.type()))
      return fail(F, "load of non-first-class type");
    return want(0, Type::Ptr);
  case Opcode::Store:
    CG_RETURN_IF_ERROR(wantCount(2));
    if (!isFirstClassType(I.operand(0)->type()))
      return fail(F, "store of non-first-class value");
    return want(1, Type::Ptr);
  case Opcode::Gep:
    CG_RETURN_IF_ERROR(wantCount(2));
    CG_RETURN_IF_ERROR(want(0, Type::Ptr));
    return want(1, Type::I64);
  case Opcode::Br:
    CG_RETURN_IF_ERROR(wantCount(1));
    return want(0, Type::Label);
  case Opcode::CondBr:
    CG_RETURN_IF_ERROR(wantCount(3));
    CG_RETURN_IF_ERROR(want(0, Type::I1));
    CG_RETURN_IF_ERROR(want(1, Type::Label));
    return want(2, Type::Label);
  case Opcode::Ret:
    if (F.returnType() == Type::Void)
      return wantCount(0);
    CG_RETURN_IF_ERROR(wantCount(1));
    return want(0, F.returnType());
  case Opcode::Unreachable:
    return wantCount(0);
  case Opcode::Call: {
    if (I.numOperands() < 1 || !isa<FunctionRef>(I.operand(0)))
      return fail(F, "call operand 0 must be a function reference");
    if (!M)
      return Status::ok(); // Symbolic callee: unresolvable without a module.
    const Function *Callee = I.calledFunction(*M);
    if (!Callee)
      return fail(F, "call to unknown function @" + I.calleeName());
    if (I.numCallArgs() != Callee->numArgs())
      return fail(F, "call to @" + Callee->name() + " with " +
                         std::to_string(I.numCallArgs()) + " args, expected " +
                         std::to_string(Callee->numArgs()));
    for (unsigned A = 0; A < I.numCallArgs(); ++A)
      if (I.callArg(A)->type() != Callee->arg(A)->type())
        return fail(F, "call argument " + std::to_string(A) +
                           " type mismatch");
    if (I.type() != Callee->returnType())
      return fail(F, "call result type differs from callee return type");
    return Status::ok();
  }
  case Opcode::Phi: {
    if (I.numOperands() % 2 != 0)
      return fail(F, "phi with dangling operand");
    if (!isFirstClassType(I.type()))
      return fail(F, "phi of non-first-class type");
    for (unsigned K = 0; K < I.numIncoming(); ++K) {
      if (I.incomingValue(K)->type() != I.type())
        return fail(F, "phi incoming value type mismatch");
      if (!isa<BasicBlock>(I.operand(2 * K + 1)))
        return fail(F, "phi incoming block operand is not a block");
    }
    return Status::ok();
  }
  case Opcode::Select:
    CG_RETURN_IF_ERROR(wantCount(3));
    CG_RETURN_IF_ERROR(want(0, Type::I1));
    if (I.operand(1)->type() != I.type() || I.operand(2)->type() != I.type())
      return fail(F, "select arm type mismatch");
    return Status::ok();
  case Opcode::Trunc:
    CG_RETURN_IF_ERROR(wantCount(1));
    CG_RETURN_IF_ERROR(want(0, Type::I64));
    if (I.type() != Type::I32)
      return fail(F, "trunc must produce i32");
    return Status::ok();
  case Opcode::ZExt:
  case Opcode::SExt: {
    CG_RETURN_IF_ERROR(wantCount(1));
    Type Src = I.operand(0)->type();
    if (!isIntegerType(Src) || !isIntegerType(I.type()) ||
        integerBitWidth(Src) >= integerBitWidth(I.type()))
      return fail(F, "ext must widen an integer");
    return Status::ok();
  }
  case Opcode::SIToFP:
    CG_RETURN_IF_ERROR(wantCount(1));
    if (!isIntegerType(I.operand(0)->type()) || I.type() != Type::F64)
      return fail(F, "sitofp must be int -> f64");
    return Status::ok();
  case Opcode::FPToSI:
    CG_RETURN_IF_ERROR(wantCount(1));
    CG_RETURN_IF_ERROR(want(0, Type::F64));
    if (I.type() != Type::I64)
      return fail(F, "fptosi must produce i64");
    return Status::ok();
  case Opcode::PtrToInt:
    CG_RETURN_IF_ERROR(wantCount(1));
    CG_RETURN_IF_ERROR(want(0, Type::Ptr));
    if (I.type() != Type::I64)
      return fail(F, "ptrtoint must produce i64");
    return Status::ok();
  case Opcode::IntToPtr:
    CG_RETURN_IF_ERROR(wantCount(1));
    CG_RETURN_IF_ERROR(want(0, Type::I64));
    if (I.type() != Type::Ptr)
      return fail(F, "inttoptr must produce ptr");
    return Status::ok();
  }
  return Status::ok();
}

} // namespace

Status ir::verifyFunction(const Function &F, const Module *M) {
  if (F.empty())
    return fail(F, "function has no blocks");

  // Structure: every block has exactly one terminator, at the end; phis
  // lead their block.
  for (const auto &BB : F.blocks()) {
    if (BB->empty())
      return fail(F, "empty block '" + BB->name() + "'");
    for (size_t I = 0; I < BB->size(); ++I) {
      const Instruction *Inst = BB->instructions()[I].get();
      if (Inst->isTerminator() && I + 1 != BB->size())
        return fail(F, "terminator not at end of block '" + BB->name() + "'");
      if (Inst->opcode() == Opcode::Phi && I >= BB->firstNonPhi())
        return fail(F, "phi after non-phi in block '" + BB->name() + "'");
      if (Inst->parent() != BB.get())
        return fail(F, "instruction parent link broken");
    }
    if (!BB->terminator())
      return fail(F, "block '" + BB->name() + "' missing terminator");
  }

  // Types.
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      CG_RETURN_IF_ERROR(checkOperandTypes(F, *I, M));

  DominatorTree DT(F);

  // Phi inputs exactly cover predecessors (for reachable blocks).
  for (const auto &BB : F.blocks()) {
    if (!DT.isReachable(BB.get()))
      continue;
    std::vector<BasicBlock *> Preds = BB->predecessors();
    for (const auto &I : BB->instructions()) {
      if (I->opcode() != Opcode::Phi)
        break;
      if (I->numIncoming() != Preds.size())
        return fail(F, "phi in '" + BB->name() + "' has " +
                           std::to_string(I->numIncoming()) +
                           " incoming, block has " +
                           std::to_string(Preds.size()) + " preds");
      for (unsigned K = 0; K < I->numIncoming(); ++K) {
        BasicBlock *In = I->incomingBlock(K);
        if (std::find(Preds.begin(), Preds.end(), In) == Preds.end())
          return fail(F, "phi incoming block '" + In->name() +
                             "' is not a predecessor of '" + BB->name() + "'");
      }
      // No duplicate incoming blocks.
      std::unordered_set<const BasicBlock *> Seen;
      for (unsigned K = 0; K < I->numIncoming(); ++K)
        if (!Seen.insert(I->incomingBlock(K)).second)
          return fail(F, "phi has duplicate incoming block");
    }
  }

  // SSA dominance: each instruction operand must be defined in a block that
  // dominates the use (same-block: defined earlier). Phi uses are checked
  // against the incoming edge.
  std::unordered_map<const Instruction *, size_t> InstIndex;
  for (const auto &BB : F.blocks())
    for (size_t I = 0; I < BB->size(); ++I)
      InstIndex[BB->instructions()[I].get()] = I;

  for (const auto &BB : F.blocks()) {
    if (!DT.isReachable(BB.get()))
      continue;
    for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
      const Instruction *I = BB->instructions()[Idx].get();
      if (I->opcode() == Opcode::Phi) {
        for (unsigned K = 0; K < I->numIncoming(); ++K) {
          const auto *Def = dyn_cast<Instruction>(I->incomingValue(K));
          if (!Def)
            continue;
          if (!DT.dominates(Def->parent(), I->incomingBlock(K)))
            return fail(F, "phi input does not dominate incoming edge");
        }
        continue;
      }
      for (const Value *Op : I->operands()) {
        const auto *Def = dyn_cast<Instruction>(Op);
        if (!Def)
          continue;
        const BasicBlock *DefBB = Def->parent();
        if (!DefBB)
          return fail(F, "operand refers to detached instruction");
        if (DefBB == BB.get()) {
          if (InstIndex.at(Def) >= Idx)
            return fail(F, "use of '" + Def->name() +
                               "' before definition in block '" + BB->name() +
                               "'");
        } else if (!DT.dominates(DefBB, BB.get())) {
          return fail(F, "operand definition does not dominate use");
        }
      }
    }
  }
  return Status::ok();
}

Status ir::verifyModule(const Module &M) {
  for (const auto &F : M.functions())
    CG_RETURN_IF_ERROR(verifyFunction(*F, &M));
  return Status::ok();
}
