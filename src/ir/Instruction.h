//===- ir/Instruction.h - IR instructions -----------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction: an operation inside a BasicBlock. Operands are raw Value
/// pointers; ownership of instructions belongs to their block. Phi nodes
/// store operands as interleaved [value, block] pairs. Comparison
/// instructions carry a predicate; alloca carries its size in words.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_INSTRUCTION_H
#define COMPILER_GYM_IR_INSTRUCTION_H

#include "ir/Value.h"

#include <vector>

namespace compiler_gym {
namespace ir {

class BasicBlock;
class Function;
class Module;

/// Every operation the mini-IR supports. Kept in one flat enum so feature
/// extractors (InstCount / Autophase) can index count vectors by opcode.
enum class Opcode {
  // Integer arithmetic (i32/i64).
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  // Bitwise (i1/i32/i64).
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  // Float arithmetic (f64).
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Comparisons: result i1; predicate in pred().
  ICmp,
  FCmp,
  // Memory.
  Alloca, ///< Stack allocation; size in words in allocaWords().
  Load,   ///< Load word at ptr operand; result type from instruction type.
  Store,  ///< operands: [value, ptr].
  Gep,    ///< Pointer arithmetic: operands [ptr, i64 index] -> ptr.
  // Control flow (terminators).
  Br,     ///< operands: [destBlock].
  CondBr, ///< operands: [i1 cond, trueBlock, falseBlock].
  Ret,    ///< operands: [] or [value].
  Unreachable,
  // Other.
  Call,   ///< operands: [callee(FunctionRef), args...].
  Phi,    ///< operands: [v0, bb0, v1, bb1, ...].
  Select, ///< operands: [i1 cond, trueVal, falseVal].
  // Casts.
  Trunc,  ///< i64 -> i32.
  ZExt,   ///< i1/i32 -> i32/i64 zero extend.
  SExt,   ///< i1/i32 -> i32/i64 sign extend.
  SIToFP, ///< i32/i64 -> f64.
  FPToSI, ///< f64 -> i64.
  PtrToInt, ///< ptr -> i64.
  IntToPtr, ///< i64 -> ptr.
};

/// Number of opcodes (for fixed-size count vectors).
constexpr int NumOpcodes = static_cast<int>(Opcode::IntToPtr) + 1;

/// Returns the canonical mnemonic ("add", "icmp", ...).
const char *opcodeName(Opcode Op);

/// Parses a mnemonic; returns false if unknown.
bool opcodeFromName(const std::string &Name, Opcode &Out);

/// Comparison predicates shared by ICmp (signed) and FCmp (ordered).
enum class Pred { EQ, NE, LT, LE, GT, GE };

const char *predName(Pred P);
bool predFromName(const std::string &Name, Pred &Out);

/// An SSA instruction. The instruction's Value type is its result type
/// (Void for stores/branches/etc.).
class Instruction : public Value {
public:
  Instruction(Opcode Op, Type ResultTy, std::vector<Value *> Operands = {})
      : Value(ValueKind::Instruction, ResultTy), Op(Op),
        Operands(std::move(Operands)) {}

  Opcode opcode() const { return Op; }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  size_t numOperands() const { return Operands.size(); }
  Value *operand(size_t I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(size_t I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = V;
  }
  std::vector<Value *> &operands() { return Operands; }
  const std::vector<Value *> &operands() const { return Operands; }

  /// Comparison predicate (ICmp/FCmp only).
  Pred pred() const { return Predicate; }
  void setPred(Pred P) { Predicate = P; }

  /// Alloca size in 64-bit words (Alloca only).
  uint32_t allocaWords() const { return AllocaWords; }
  void setAllocaWords(uint32_t W) { AllocaWords = W; }

  /// Phi helpers; operands are [v0, bb0, v1, bb1, ...].
  unsigned numIncoming() const {
    assert(Op == Opcode::Phi && "numIncoming() on non-phi");
    return static_cast<unsigned>(Operands.size() / 2);
  }
  Value *incomingValue(unsigned I) const { return operand(2 * I); }
  BasicBlock *incomingBlock(unsigned I) const;
  void addIncoming(Value *V, BasicBlock *BB);
  /// Removes the i-th incoming pair.
  void removeIncoming(unsigned I);

  /// Call helpers; operand 0 is the callee (a name-based FunctionRef).
  /// Resolution requires the enclosing module: refs are symbolic so a
  /// copy-on-write copy of the callee in one fork never retargets call
  /// sites in functions still shared with sibling modules.
  Function *calledFunction(const Module &M) const;
  /// The callee's name without resolving it.
  const std::string &calleeName() const;
  unsigned numCallArgs() const {
    assert(Op == Opcode::Call && "numCallArgs() on non-call");
    return static_cast<unsigned>(Operands.size() - 1);
  }
  Value *callArg(unsigned I) const { return operand(I + 1); }

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret ||
           Op == Opcode::Unreachable;
  }
  bool isBinaryOp() const {
    return Op >= Opcode::Add && Op <= Opcode::FDiv;
  }
  bool isIntArith() const { return Op >= Opcode::Add && Op <= Opcode::SRem; }
  bool isBitwise() const { return Op >= Opcode::And && Op <= Opcode::AShr; }
  bool isFloatArith() const { return Op >= Opcode::FAdd && Op <= Opcode::FDiv; }
  bool isCast() const { return Op >= Opcode::Trunc && Op <= Opcode::IntToPtr; }
  bool isCommutative() const {
    return Op == Opcode::Add || Op == Opcode::Mul || Op == Opcode::And ||
           Op == Opcode::Or || Op == Opcode::Xor || Op == Opcode::FAdd ||
           Op == Opcode::FMul;
  }

  /// True if the instruction writes memory or has control effects — such
  /// instructions must not be removed by DCE even when unused.
  bool hasSideEffects() const {
    return Op == Opcode::Store || Op == Opcode::Call || isTerminator();
  }

  /// True if the result depends only on the operand values (safe to CSE /
  /// hoist). Loads are excluded (memory may change); calls are excluded
  /// (may have effects).
  bool isPure() const {
    return !hasSideEffects() && Op != Opcode::Load && Op != Opcode::Alloca &&
           Op != Opcode::Phi;
  }

  /// Branch successor list (terminators only; empty for Ret/Unreachable).
  std::vector<BasicBlock *> successors() const;
  /// Rewrites every successor edge equal to \p From to point at \p To.
  void replaceSuccessor(BasicBlock *From, BasicBlock *To);

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Instruction;
  }

private:
  Opcode Op;
  std::vector<Value *> Operands;
  BasicBlock *Parent = nullptr;
  Pred Predicate = Pred::EQ;
  uint32_t AllocaWords = 1;
};

/// A call-target operand: a symbolic (name-based) reference so the operand
/// list stays homogeneous (Value*). Refs are immutable and uniqued in the
/// module's shared pool; they carry no Function pointer so that function
/// payloads can be shared and copy-on-write replaced across forked modules
/// without rewriting call sites. Resolve with Module::findFunction or
/// Instruction::calledFunction(M).
class FunctionRef : public Value {
public:
  explicit FunctionRef(std::string CalleeName)
      : Value(ValueKind::FunctionRef, Type::FunctionTy),
        CalleeName(std::move(CalleeName)) {}

  const std::string &calleeName() const { return CalleeName; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::FunctionRef;
  }

private:
  const std::string CalleeName;
};

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_INSTRUCTION_H
