//===- ir/Interpreter.cpp -------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include "util/Hash.h"

#include <bit>
#include <cmath>
#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::ir;

uint32_t ir::opcodeCycleCost(Opcode Op) {
  switch (Op) {
  case Opcode::Mul:
    return 3;
  case Opcode::SDiv:
  case Opcode::SRem:
    return 20;
  case Opcode::FAdd:
  case Opcode::FSub:
    return 3;
  case Opcode::FMul:
    return 5;
  case Opcode::FDiv:
    return 15;
  case Opcode::Load:
  case Opcode::Store:
    return 4;
  case Opcode::CondBr:
    return 2;
  case Opcode::Call:
    return 10;
  case Opcode::Ret:
    return 2;
  case Opcode::Phi:
    return 0;
  default:
    return 1;
  }
}

namespace {

/// A runtime value: integer/pointer payload or double. Pointers are word
/// addresses stored in I.
struct RtValue {
  int64_t I = 0;
  double F = 0.0;
};

class Machine {
public:
  Machine(const Module &M, const InterpreterOptions &Opts)
      : M(M), Opts(Opts), Memory(Opts.MemoryWords, 0) {
    // Globals occupy [1, GlobalEnd); address 0 is reserved as null.
    uint32_t Addr = 1;
    for (const auto &G : M.globals()) {
      GlobalBase[G.get()] = Addr;
      Addr += G->sizeWords();
    }
    GlobalEnd = Addr;
    StackPointer = GlobalEnd;
  }

  ExecutionResult run(const Function &Entry);

private:
  struct Frame {
    const Function *F;
    const BasicBlock *Block = nullptr;
    const BasicBlock *PrevBlock = nullptr; ///< For phi resolution.
    size_t Pc = 0;
    uint32_t SavedStackPointer = 0;
    const Instruction *CallSite = nullptr; ///< Call that created this frame.
    std::unordered_map<const Value *, RtValue> Regs;
  };

  bool trap(const std::string &Reason) {
    Result.Completed = false;
    Result.TrapReason = Reason;
    Trapped = true;
    return false;
  }

  RtValue eval(const Frame &Fr, const Value *V) {
    if (const auto *C = dyn_cast<Constant>(V)) {
      RtValue Out;
      if (C->type() == Type::F64)
        Out.F = C->floatValue();
      else
        Out.I = C->intValue();
      return Out;
    }
    if (const auto *G = dyn_cast<GlobalVariable>(V)) {
      RtValue Out;
      Out.I = GlobalBase.at(G);
      return Out;
    }
    auto It = Fr.Regs.find(V);
    if (It != Fr.Regs.end())
      return It->second;
    return RtValue{}; // Unreachable-path phi input; zero is safe.
  }

  bool load(int64_t Addr, int64_t &Out) {
    if (Addr <= 0 || Addr >= static_cast<int64_t>(Memory.size()))
      return trap("load out of bounds at address " + std::to_string(Addr));
    Out = Memory[static_cast<size_t>(Addr)];
    return true;
  }

  bool store(int64_t Addr, int64_t Bits) {
    if (Addr <= 0 || Addr >= static_cast<int64_t>(Memory.size()))
      return trap("store out of bounds at address " + std::to_string(Addr));
    Memory[static_cast<size_t>(Addr)] = Bits;
    return true;
  }

  /// Executes one instruction of the top frame. Returns false when the
  /// machine stops (final return or trap).
  bool step();

  const Module &M;
  const InterpreterOptions &Opts;
  std::vector<int64_t> Memory;
  std::unordered_map<const GlobalVariable *, uint32_t> GlobalBase;
  uint32_t GlobalEnd = 1;
  uint32_t StackPointer = 1;
  std::vector<Frame> Stack;
  std::unordered_map<const Value *, const Function *> CalleeMemo;
  ExecutionResult Result;
  bool Trapped = false;
};

int64_t truncToWidth(Type Ty, int64_t V) {
  switch (Ty) {
  case Type::I1:
    return V & 1;
  case Type::I32:
    return static_cast<int32_t>(V);
  default:
    return V;
  }
}

bool Machine::step() {
  Frame &Fr = Stack.back();
  if (Fr.Pc >= Fr.Block->size())
    return trap("fell off end of block '" + Fr.Block->name() + "'");
  const Instruction &I = *Fr.Block->instructions()[Fr.Pc];

  ++Result.InstructionsExecuted;
  ++Result.OpcodeCounts[static_cast<int>(I.opcode())];
  Result.SimulatedCycles += opcodeCycleCost(I.opcode());
  if (Result.InstructionsExecuted > Opts.MaxInstructions)
    return trap("fuel exhausted");

  auto setReg = [&](RtValue V) {
    if (isIntegerType(I.type()))
      V.I = truncToWidth(I.type(), V.I);
    Fr.Regs[&I] = V;
  };

  switch (I.opcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::SDiv:
  case Opcode::SRem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr: {
    int64_t L = eval(Fr, I.operand(0)).I;
    int64_t R = eval(Fr, I.operand(1)).I;
    int64_t Out = 0;
    switch (I.opcode()) {
    case Opcode::Add:
      Out = static_cast<int64_t>(static_cast<uint64_t>(L) +
                                 static_cast<uint64_t>(R));
      break;
    case Opcode::Sub:
      Out = static_cast<int64_t>(static_cast<uint64_t>(L) -
                                 static_cast<uint64_t>(R));
      break;
    case Opcode::Mul:
      Out = static_cast<int64_t>(static_cast<uint64_t>(L) *
                                 static_cast<uint64_t>(R));
      break;
    case Opcode::SDiv:
      if (R == 0)
        return trap("division by zero");
      if (L == INT64_MIN && R == -1)
        return trap("signed division overflow");
      Out = L / R;
      break;
    case Opcode::SRem:
      if (R == 0)
        return trap("remainder by zero");
      if (L == INT64_MIN && R == -1)
        return trap("signed remainder overflow");
      Out = L % R;
      break;
    case Opcode::And:
      Out = L & R;
      break;
    case Opcode::Or:
      Out = L | R;
      break;
    case Opcode::Xor:
      Out = L ^ R;
      break;
    case Opcode::Shl:
      Out = static_cast<int64_t>(static_cast<uint64_t>(L)
                                 << (static_cast<uint64_t>(R) & 63));
      break;
    case Opcode::LShr:
      Out = static_cast<int64_t>(static_cast<uint64_t>(L) >>
                                 (static_cast<uint64_t>(R) & 63));
      break;
    case Opcode::AShr:
      Out = L >> (static_cast<uint64_t>(R) & 63);
      break;
    default:
      break;
    }
    setReg({Out, 0.0});
    break;
  }
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv: {
    double L = eval(Fr, I.operand(0)).F;
    double R = eval(Fr, I.operand(1)).F;
    double Out = 0.0;
    switch (I.opcode()) {
    case Opcode::FAdd:
      Out = L + R;
      break;
    case Opcode::FSub:
      Out = L - R;
      break;
    case Opcode::FMul:
      Out = L * R;
      break;
    case Opcode::FDiv:
      Out = R == 0.0 ? 0.0 : L / R; // Well-defined: no FP traps.
      break;
    default:
      break;
    }
    setReg({0, Out});
    break;
  }
  case Opcode::ICmp: {
    int64_t L = eval(Fr, I.operand(0)).I;
    int64_t R = eval(Fr, I.operand(1)).I;
    bool Out = false;
    switch (I.pred()) {
    case Pred::EQ:
      Out = L == R;
      break;
    case Pred::NE:
      Out = L != R;
      break;
    case Pred::LT:
      Out = L < R;
      break;
    case Pred::LE:
      Out = L <= R;
      break;
    case Pred::GT:
      Out = L > R;
      break;
    case Pred::GE:
      Out = L >= R;
      break;
    }
    setReg({Out ? 1 : 0, 0.0});
    break;
  }
  case Opcode::FCmp: {
    double L = eval(Fr, I.operand(0)).F;
    double R = eval(Fr, I.operand(1)).F;
    bool Out = false;
    switch (I.pred()) {
    case Pred::EQ:
      Out = L == R;
      break;
    case Pred::NE:
      Out = L != R;
      break;
    case Pred::LT:
      Out = L < R;
      break;
    case Pred::LE:
      Out = L <= R;
      break;
    case Pred::GT:
      Out = L > R;
      break;
    case Pred::GE:
      Out = L >= R;
      break;
    }
    setReg({Out ? 1 : 0, 0.0});
    break;
  }
  case Opcode::Alloca: {
    if (StackPointer + I.allocaWords() >= Memory.size())
      return trap("stack overflow");
    setReg({static_cast<int64_t>(StackPointer), 0.0});
    StackPointer += I.allocaWords();
    break;
  }
  case Opcode::Load: {
    int64_t Bits;
    if (!load(eval(Fr, I.operand(0)).I, Bits))
      return false;
    RtValue V;
    if (I.type() == Type::F64)
      V.F = std::bit_cast<double>(Bits);
    else
      V.I = Bits;
    setReg(V);
    break;
  }
  case Opcode::Store: {
    RtValue V = eval(Fr, I.operand(0));
    int64_t Bits =
        I.operand(0)->type() == Type::F64 ? std::bit_cast<int64_t>(V.F) : V.I;
    if (!store(eval(Fr, I.operand(1)).I, Bits))
      return false;
    break;
  }
  case Opcode::Gep: {
    int64_t Base = eval(Fr, I.operand(0)).I;
    int64_t Index = eval(Fr, I.operand(1)).I;
    setReg({Base + Index, 0.0});
    break;
  }
  case Opcode::Br:
  case Opcode::CondBr: {
    const BasicBlock *Dest;
    if (I.opcode() == Opcode::Br) {
      Dest = cast<BasicBlock>(I.operand(0));
    } else {
      bool Cond = eval(Fr, I.operand(0)).I != 0;
      Dest = cast<BasicBlock>(I.operand(Cond ? 1 : 2));
    }
    // Two-phase phi resolution: read all incoming values before writing.
    std::vector<std::pair<const Value *, RtValue>> PhiWrites;
    for (const auto &Phi : Dest->instructions()) {
      if (Phi->opcode() != Opcode::Phi)
        break;
      for (unsigned K = 0; K < Phi->numIncoming(); ++K) {
        if (Phi->incomingBlock(K) == Fr.Block) {
          RtValue V = eval(Fr, Phi->incomingValue(K));
          if (isIntegerType(Phi->type()))
            V.I = truncToWidth(Phi->type(), V.I);
          PhiWrites.emplace_back(Phi.get(), V);
          break;
        }
      }
    }
    for (auto &[PhiVal, V] : PhiWrites)
      Fr.Regs[PhiVal] = V;
    Fr.PrevBlock = Fr.Block;
    Fr.Block = Dest;
    Fr.Pc = Dest->firstNonPhi();
    // Account for the skipped phis.
    return !Trapped;
  }
  case Opcode::Ret: {
    RtValue RetV;
    bool IsFloat = false;
    if (I.numOperands() == 1) {
      RetV = eval(Fr, I.operand(0));
      IsFloat = I.operand(0)->type() == Type::F64;
    }
    StackPointer = Fr.SavedStackPointer;
    const Instruction *CallSite = Fr.CallSite;
    Stack.pop_back();
    if (Stack.empty()) {
      Result.Completed = true;
      if (IsFloat)
        Result.ReturnFloat = RetV.F;
      else
        Result.ReturnInt = RetV.I;
      return false;
    }
    Frame &Caller = Stack.back();
    if (CallSite && CallSite->type() != Type::Void) {
      if (isIntegerType(CallSite->type()))
        RetV.I = truncToWidth(CallSite->type(), RetV.I);
      Caller.Regs[CallSite] = RetV;
    }
    ++Caller.Pc;
    // Fr is dangling after pop_back(); skip the shared Pc increment below.
    return !Trapped;
  }
  case Opcode::Unreachable:
    return trap("executed unreachable");
  case Opcode::Call: {
    if (Stack.size() >= Opts.MaxCallDepth)
      return trap("call depth exceeded");
    // Call targets are symbolic; memoize resolution per uniqued ref so a
    // hot call site costs one hash lookup, not a name scan.
    const Value *RefOp = I.operand(0);
    auto [MemoIt, Inserted] = CalleeMemo.try_emplace(RefOp, nullptr);
    if (Inserted)
      MemoIt->second = I.calledFunction(M);
    const Function *Callee = MemoIt->second;
    if (!Callee)
      return trap("call to unknown function @" + I.calleeName());
    if (Callee->empty())
      return trap("call to empty function @" + Callee->name());
    Frame New;
    New.F = Callee;
    New.Block = Callee->entry();
    New.Pc = 0;
    New.SavedStackPointer = StackPointer;
    New.CallSite = &I;
    for (unsigned A = 0; A < I.numCallArgs(); ++A)
      New.Regs[Callee->arg(A)] = eval(Fr, I.callArg(A));
    Stack.push_back(std::move(New));
    return true; // Do not advance caller Pc until return.
  }
  case Opcode::Phi:
    // Handled at block entry; executing one directly means the entry block
    // starts with a phi, which the verifier rejects.
    return trap("naked phi execution");
  case Opcode::Select: {
    bool Cond = eval(Fr, I.operand(0)).I != 0;
    setReg(eval(Fr, I.operand(Cond ? 1 : 2)));
    break;
  }
  case Opcode::Trunc:
  case Opcode::ZExt: {
    int64_t V = eval(Fr, I.operand(0)).I;
    Type Src = I.operand(0)->type();
    uint64_t U = static_cast<uint64_t>(V);
    if (Src == Type::I1)
      U &= 1;
    else if (Src == Type::I32)
      U &= 0xFFFFFFFFull;
    setReg({static_cast<int64_t>(U), 0.0});
    break;
  }
  case Opcode::SExt: {
    int64_t V = eval(Fr, I.operand(0)).I;
    Type Src = I.operand(0)->type();
    if (Src == Type::I1)
      V = (V & 1) ? -1 : 0;
    else if (Src == Type::I32)
      V = static_cast<int32_t>(V);
    setReg({V, 0.0});
    break;
  }
  case Opcode::SIToFP:
    setReg({0, static_cast<double>(eval(Fr, I.operand(0)).I)});
    break;
  case Opcode::FPToSI: {
    double V = eval(Fr, I.operand(0)).F;
    if (!std::isfinite(V) || V > 9.2e18 || V < -9.2e18)
      V = 0.0; // Saturate-to-zero: keeps behaviour defined.
    setReg({static_cast<int64_t>(V), 0.0});
    break;
  }
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
    setReg(eval(Fr, I.operand(0)));
    break;
  }

  ++Fr.Pc;
  return !Trapped;
}

ExecutionResult Machine::run(const Function &Entry) {
  Frame Fr;
  Fr.F = &Entry;
  Fr.Block = Entry.entry();
  Fr.SavedStackPointer = StackPointer;
  for (size_t A = 0; A < Entry.numArgs(); ++A) {
    RtValue V;
    V.I = A < Opts.Args.size() ? Opts.Args[A] : 0;
    V.F = static_cast<double>(V.I);
    Fr.Regs[Entry.arg(A)] = V;
  }
  Stack.push_back(std::move(Fr));

  while (step()) {
  }

  // Observable output: return bits + global memory contents.
  uint64_t H = hashCombine(0x5EEDF00Dull,
                           static_cast<uint64_t>(Result.ReturnInt));
  H = hashCombine(H, std::bit_cast<uint64_t>(Result.ReturnFloat));
  for (uint32_t A = 1; A < GlobalEnd; ++A)
    H = hashCombine(H, static_cast<uint64_t>(Memory[A]));
  Result.OutputHash = H;
  return Result;
}

} // namespace

StatusOr<ExecutionResult> ir::interpret(const Module &M,
                                        const InterpreterOptions &Opts,
                                        const std::string &Entry) {
  const Function *F = M.findFunction(Entry);
  if (!F)
    return notFound("no entry function '@" + Entry + "'");
  if (F->empty())
    return failedPrecondition("entry function '@" + Entry + "' is empty");
  Machine Mach(M, Opts);
  return Mach.run(*F);
}
