//===- ir/Module.h - Top-level IR container ---------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Module owns functions, globals, constants and function-reference
/// wrappers through refcounted handles, so modules support two copy
/// operations:
///  * clone() — deep structural copy; every Value is duplicated and
///    remapped. O(|module|).
///  * share() — structural sharing: the new module references the same
///    per-function payloads and the same uniqued-symbol pools. O(#functions)
///    pointer copies, which backs the O(1) environment fork() operator and
///    the crash-recovery snapshot store.
///
/// A shared function payload is immutable by contract: mutation goes
/// through the pass layer, which calls unshareFunction() (copy-on-write)
/// before handing a function to a transform. Cross-function call operands
/// are name-based (FunctionRef stores the callee's name, resolved against
/// the enclosing module), so a COW copy of one function never invalidates
/// call sites in functions still shared with other modules.
///
/// Modules are hashable (printed-form digest), which backs state identity
/// in the transition database, the observation caches and the snapshot
/// store.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_MODULE_H
#define COMPILER_GYM_IR_MODULE_H

#include "ir/Function.h"
#include "util/Hash.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace compiler_gym {
namespace ir {

/// A whole translation unit of the mini-IR.
class Module {
public:
  Module() : P(std::make_shared<Pools>()) {}
  explicit Module(std::string Name)
      : Name(std::move(Name)), P(std::make_shared<Pools>()) {}

  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  // -- Functions -----------------------------------------------------------
  Function *createFunction(std::string FnName, Type ReturnType);
  Function *findFunction(const std::string &FnName) const;
  void eraseFunction(Function *F);
  const std::vector<std::shared_ptr<Function>> &functions() const {
    return Funcs;
  }

  /// True if the function at \p Idx is shared with another module (or a
  /// snapshot) and must be copied before mutation.
  bool isFunctionShared(size_t Idx) const {
    return Funcs[Idx].use_count() > 1;
  }

  /// Copy-on-write: replaces the (shared) payload at \p Idx with a deep
  /// copy owned exclusively by this module and returns it. Operands that
  /// point into the shared symbol pools (constants, globals, function
  /// refs) are NOT remapped — pool identity is stable across a fork
  /// family. Returns the original shared payload so the caller can revert
  /// the slot if the planned mutation turns out to be a no-op.
  std::shared_ptr<Function> unshareFunction(size_t Idx);

  /// Reverts a COW performed by unshareFunction(): reinstates \p Original
  /// as the payload of slot \p Idx, destroying the copy. Only valid when
  /// the copy was never mutated.
  void restoreFunction(size_t Idx, std::shared_ptr<Function> Original);

  // -- Globals -------------------------------------------------------------
  GlobalVariable *createGlobal(std::string GlobalName, uint32_t SizeWords);
  GlobalVariable *findGlobal(const std::string &GlobalName) const;
  const std::vector<std::shared_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  // -- Constant pool (uniqued) ----------------------------------------------
  Constant *getConstInt(Type Ty, int64_t V);
  Constant *getConstFloat(double V);
  Constant *getTrue() { return getConstInt(Type::I1, 1); }
  Constant *getFalse() { return getConstInt(Type::I1, 0); }

  /// Function-reference operand naming \p CalleeName (uniqued). The ref is
  /// purely symbolic: it resolves against whatever module the containing
  /// instruction is reached through, so shared functions calling a
  /// COW-copied sibling see the copy.
  FunctionRef *getFunctionRef(const std::string &CalleeName);
  FunctionRef *getFunctionRef(const Function *F);

  // -- Whole-module utilities ------------------------------------------------
  size_t instructionCount() const;

  /// Deep structural copy. All Value pointers are remapped.
  std::unique_ptr<Module> clone() const;

  /// Structurally shared copy: O(#functions). The new module aliases every
  /// function payload, global and pool entry; first mutation of a shared
  /// function triggers unshareFunction() in the pass layer.
  std::unique_ptr<Module> share() const;

  /// Digest of the printed form; stable state identity for the transition
  /// database and nondeterminism detection.
  StateHash hash() const;

private:
  /// Uniqued symbols shared copy-on-write across a fork family. Lookup
  /// never mutates; insertion detaches the pool first when it is shared,
  /// so concurrent sessions forked from one parent never write to a map
  /// another session is reading.
  struct Pools {
    std::map<std::pair<int, int64_t>, std::shared_ptr<Constant>> IntConstants;
    std::map<double, std::shared_ptr<Constant>> FloatConstants;
    std::map<std::string, std::shared_ptr<FunctionRef>> FunctionRefs;
  };

  /// Clones the pool maps (shallow: entries stay shared, preserving
  /// Constant/FunctionRef pointer identity) when another module holds them.
  void detachPoolsForInsert();

  std::string Name;
  std::vector<std::shared_ptr<Function>> Funcs;
  std::vector<std::shared_ptr<GlobalVariable>> Globals;
  std::shared_ptr<Pools> P;
};

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_MODULE_H
