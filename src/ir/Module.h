//===- ir/Module.h - Top-level IR container ---------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Module owns functions, globals, constants and function-reference
/// wrappers. Modules are deep-copyable (clone()), which backs the
/// environment fork() operator, and hashable, which backs state identity in
/// the transition database and reproducibility validation.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_MODULE_H
#define COMPILER_GYM_IR_MODULE_H

#include "ir/Function.h"
#include "util/Hash.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace compiler_gym {
namespace ir {

/// A whole translation unit of the mini-IR.
class Module {
public:
  Module() = default;
  explicit Module(std::string Name) : Name(std::move(Name)) {}

  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  // -- Functions -----------------------------------------------------------
  Function *createFunction(std::string FnName, Type ReturnType);
  Function *findFunction(const std::string &FnName) const;
  void eraseFunction(Function *F);
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  // -- Globals -------------------------------------------------------------
  GlobalVariable *createGlobal(std::string GlobalName, uint32_t SizeWords);
  GlobalVariable *findGlobal(const std::string &GlobalName) const;
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  // -- Constant pool (uniqued) ----------------------------------------------
  Constant *getConstInt(Type Ty, int64_t V);
  Constant *getConstFloat(double V);
  Constant *getTrue() { return getConstInt(Type::I1, 1); }
  Constant *getFalse() { return getConstInt(Type::I1, 0); }

  /// Function-reference operand for \p F (uniqued).
  FunctionRef *getFunctionRef(Function *F);

  // -- Whole-module utilities ------------------------------------------------
  size_t instructionCount() const;

  /// Deep structural copy. All Value pointers are remapped.
  std::unique_ptr<Module> clone() const;

  /// Digest of the printed form; stable state identity for the transition
  /// database and nondeterminism detection.
  StateHash hash() const;

private:
  std::string Name;
  std::vector<std::unique_ptr<Function>> Funcs;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::map<std::pair<int, int64_t>, std::unique_ptr<Constant>> IntConstants;
  std::map<double, std::unique_ptr<Constant>> FloatConstants;
  std::map<Function *, std::unique_ptr<FunctionRef>> FunctionRefs;
};

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_MODULE_H
