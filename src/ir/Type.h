//===- ir/Type.h - IR type system -------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-IR's type system: a closed set of first-class scalar types plus
/// pointers and labels. The IR is strongly typed; the verifier enforces
/// operand type rules per opcode.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_IR_TYPE_H
#define COMPILER_GYM_IR_TYPE_H

#include <string>

namespace compiler_gym {
namespace ir {

/// First-class types of the mini-IR. Pointers are untyped word addresses
/// (memory is word-addressed, see Interpreter.h). Label is the type of
/// basic blocks; FunctionTy the type of function symbols used as call
/// targets.
enum class Type {
  Void,
  I1,
  I32,
  I64,
  F64,
  Ptr,
  Label,
  FunctionTy,
};

/// Returns the textual spelling used by the printer/parser ("i32", ...).
const char *typeName(Type Ty);

/// Parses a type name; returns false if \p Name is not a type.
bool typeFromName(const std::string &Name, Type &Out);

/// True for i1/i32/i64.
inline bool isIntegerType(Type Ty) {
  return Ty == Type::I1 || Ty == Type::I32 || Ty == Type::I64;
}

/// True for types a value can have (excludes Void/Label/FunctionTy).
inline bool isFirstClassType(Type Ty) {
  return Ty == Type::I1 || Ty == Type::I32 || Ty == Type::I64 ||
         Ty == Type::F64 || Ty == Type::Ptr;
}

/// Bit width of an integer type (1, 32 or 64).
int integerBitWidth(Type Ty);

} // namespace ir
} // namespace compiler_gym

#endif // COMPILER_GYM_IR_TYPE_H
