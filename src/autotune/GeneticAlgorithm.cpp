//===- autotune/GeneticAlgorithm.cpp - GCC GA -------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Genetic algorithm over GCC choice vectors (Table V): population of 100,
/// elitism, roulette selection, uniform crossover and per-gene mutation —
/// the defaults of the `geneticalgorithm` Python package the paper uses.
///
//===----------------------------------------------------------------------===//

#include "autotune/Search.h"

#include "envs/gcc/GccSession.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::autotune;

namespace {

class GccGeneticAlgorithm : public Search {
public:
  GccGeneticAlgorithm(uint64_t Seed, size_t Population)
      : Gen(Seed), PopulationSize(Population) {}

  std::string name() const override { return "Genetic Algorithm"; }

  StatusOr<SearchResult> run(core::CompilerEnv &E,
                             const SearchBudget &Budget) override {
    const envs::GccOptionSpace &Spec = envs::GccSession::optionSpace();
    const auto &Options = Spec.options();
    BudgetTracker Tracker(Budget);
    SearchResult Result;
    CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
    (void)Obs;

    auto evaluate = [&](const std::vector<int64_t> &Genome)
        -> StatusOr<double> {
      CG_ASSIGN_OR_RETURN(core::StepResult R, E.stepDirect(Genome));
      (void)R;
      Tracker.addCompilation();
      Tracker.addSteps(1);
      return E.episodeReward();
    };

    // Fitness for a batch of genomes, fanned out across the evaluation
    // pool: each genome is an independent reset + stepDirect, so
    // candidates parallelize perfectly. Reward telescoping makes this
    // equivalent to the sequential no-reset evaluation — the episode
    // reward after applying a full choice vector is the size reduction
    // from the default config either way. Budget note: the pooled path
    // checks the budget per batch, so a tight MaxCompilations can
    // overshoot by at most one batch.
    auto evaluatePooled = [&](const std::vector<std::vector<int64_t>> &Genomes)
        -> StatusOr<std::vector<double>> {
      CG_ASSIGN_OR_RETURN(std::vector<double> Fitness,
                          EvalPool->evaluateDirect(Genomes));
      for (size_t I = 0; I < Genomes.size(); ++I) {
        Tracker.addCompilation();
        Tracker.addSteps(1);
      }
      return Fitness;
    };

    auto randomGenome = [&] {
      std::vector<int64_t> Genome(Options.size());
      for (size_t I = 0; I < Options.size(); ++I)
        Genome[I] = static_cast<int64_t>(
            Gen.bounded(static_cast<uint64_t>(Options[I].Cardinality)));
      return Genome;
    };

    struct Individual {
      std::vector<int64_t> Genome;
      double Fitness = 0.0;
    };
    std::vector<Individual> Population;

    // Seed population: the default config plus randoms.
    if (EvalPool) {
      // The batch is capped by the remaining compilation budget so the
      // parallel path honors MaxCompilations like the sequential one.
      std::vector<std::vector<int64_t>> Seeds;
      Seeds.push_back(Spec.defaultChoices());
      size_t SeedCap =
          std::min(PopulationSize,
                   std::max<size_t>(1, Tracker.remainingCompilations()));
      while (Seeds.size() < SeedCap && !Tracker.exhausted())
        Seeds.push_back(randomGenome());
      CG_ASSIGN_OR_RETURN(std::vector<double> Fitness, evaluatePooled(Seeds));
      for (size_t I = 0; I < Seeds.size(); ++I)
        Population.push_back(Individual{std::move(Seeds[I]), Fitness[I]});
    } else {
      Individual Default;
      Default.Genome = Spec.defaultChoices();
      CG_ASSIGN_OR_RETURN(Default.Fitness, evaluate(Default.Genome));
      Population.push_back(std::move(Default));
      while (Population.size() < PopulationSize && !Tracker.exhausted()) {
        Individual Ind;
        Ind.Genome = randomGenome();
        CG_ASSIGN_OR_RETURN(Ind.Fitness, evaluate(Ind.Genome));
        Population.push_back(std::move(Ind));
      }
    }

    auto updateBest = [&] {
      for (const Individual &Ind : Population) {
        if (Ind.Fitness > Result.BestReward ||
            Result.BestActions.empty()) {
          if (Ind.Fitness >= Result.BestReward) {
            Result.BestReward = Ind.Fitness;
            Result.BestActions.assign(Ind.Genome.begin(), Ind.Genome.end());
          }
        }
      }
    };
    updateBest();

    const double MutationProb = 0.1;   // Package defaults.
    const double CrossoverProb = 0.5;
    const double EliteFraction = 0.01;

    while (!Tracker.exhausted()) {
      std::sort(Population.begin(), Population.end(),
                [](const Individual &A, const Individual &B) {
                  return A.Fitness > B.Fitness;
                });
      size_t Elites = std::max<size_t>(
          1, static_cast<size_t>(EliteFraction *
                                 static_cast<double>(Population.size())));
      std::vector<Individual> Next(Population.begin(),
                                   Population.begin() +
                                       static_cast<long>(Elites));

      // Roulette weights shifted to be positive.
      double MinFit = Population.back().Fitness;
      std::vector<double> Weights;
      for (const Individual &Ind : Population)
        Weights.push_back(Ind.Fitness - MinFit + 1e-6);

      auto makeChild = [&] {
        const Individual &ParentA = Population[Gen.weightedIndex(Weights)];
        const Individual &ParentB = Population[Gen.weightedIndex(Weights)];
        std::vector<int64_t> Genome = ParentA.Genome;
        for (size_t I = 0; I < Genome.size(); ++I) {
          if (Gen.chance(CrossoverProb))
            Genome[I] = ParentB.Genome[I];
          if (Gen.chance(MutationProb))
            Genome[I] = static_cast<int64_t>(Gen.bounded(
                static_cast<uint64_t>(Options[I].Cardinality)));
        }
        return Genome;
      };

      if (EvalPool) {
        std::vector<std::vector<int64_t>> Children;
        size_t ChildCap = std::min(Population.size() - Next.size(),
                                   Tracker.remainingCompilations());
        while (Children.size() < ChildCap && !Tracker.exhausted())
          Children.push_back(makeChild());
        CG_ASSIGN_OR_RETURN(std::vector<double> Fitness,
                            evaluatePooled(Children));
        for (size_t I = 0; I < Children.size(); ++I)
          Next.push_back(Individual{std::move(Children[I]), Fitness[I]});
      } else {
        while (Next.size() < Population.size() && !Tracker.exhausted()) {
          Individual Child;
          Child.Genome = makeChild();
          CG_ASSIGN_OR_RETURN(Child.Fitness, evaluate(Child.Genome));
          Next.push_back(std::move(Child));
        }
      }
      Population = std::move(Next);
      updateBest();
    }

    Result.StepsUsed = Tracker.steps();
    Result.CompilationsUsed = Tracker.compilations();
    Result.WallSeconds = Tracker.wallSeconds();
    return Result;
  }

private:
  Rng Gen;
  size_t PopulationSize;
};

} // namespace

std::unique_ptr<Search>
autotune::createGccGeneticAlgorithm(uint64_t Seed, size_t Population) {
  return std::make_unique<GccGeneticAlgorithm>(Seed, Population);
}
