//===- autotune/Search.h - Autotuning interfaces -----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autotuning interface shared by the Table IV (LLVM phase ordering)
/// and Table V (GCC flag tuning) techniques: run a search over an
/// environment under a budget, return the best action sequence found and
/// its cumulative reward.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_AUTOTUNE_SEARCH_H
#define COMPILER_GYM_AUTOTUNE_SEARCH_H

#include "core/CompilerEnv.h"
#include "runtime/EnvPool.h"
#include "util/Rng.h"
#include "util/Timer.h"

#include <limits>
#include <memory>
#include <string>

namespace compiler_gym {
namespace autotune {

/// Search termination budget; 0 means unbounded for each field.
struct SearchBudget {
  size_t MaxSteps = 0;          ///< Total environment steps.
  double MaxWallSeconds = 0.0;  ///< Wall-clock cap (the paper's 1 h).
  size_t MaxCompilations = 0;   ///< Episodes/compilations (Table V: 1000).
};

/// Search outcome.
struct SearchResult {
  std::vector<int> BestActions;
  double BestReward = 0.0;
  size_t StepsUsed = 0;
  size_t CompilationsUsed = 0;
  double WallSeconds = 0.0;
};

/// Base class for sequence-search autotuners (LLVM phase ordering).
class Search {
public:
  virtual ~Search();
  virtual std::string name() const = 0;
  /// Runs the search on \p E (the env is reset as needed).
  virtual StatusOr<SearchResult> run(core::CompilerEnv &E,
                                     const SearchBudget &Budget) = 0;

  /// Seeds the search with a known-good action sequence (typically the
  /// default pipeline's actions) that it evaluates as its first candidate
  /// and adopts as the initial incumbent. This is standard autotuning
  /// practice — OpenTuner and Nevergrad both accept the default
  /// configuration as a seed — and it floors the search result at the
  /// default pipeline's quality. Evaluating the seed counts against the
  /// budget like any other candidate.
  void setWarmStart(std::vector<int> Actions) {
    WarmStart = std::move(Actions);
  }

  /// Attaches a parallel evaluation pool. Searches that support it
  /// (RandomSearch, the GCC genetic algorithm) evaluate candidates
  /// concurrently across the pool's workers instead of sequentially on the
  /// run() env; others ignore it. The pool must be configured for the same
  /// environment/benchmark as the env passed to run(), and stays owned by
  /// the caller.
  void setEvaluationPool(runtime::EnvPool *Pool) { EvalPool = Pool; }

protected:
  std::vector<int> WarmStart; ///< Empty = no warm start.
  runtime::EnvPool *EvalPool = nullptr; ///< Optional parallel evaluator.
};

/// Budget bookkeeping shared by implementations.
class BudgetTracker {
public:
  explicit BudgetTracker(const SearchBudget &Budget) : Budget(Budget) {}

  bool exhausted() const {
    if (Budget.MaxSteps && Steps >= Budget.MaxSteps)
      return true;
    if (Budget.MaxCompilations && Compilations >= Budget.MaxCompilations)
      return true;
    if (Budget.MaxWallSeconds > 0.0 &&
        Watch.elapsedMs() / 1000.0 >= Budget.MaxWallSeconds)
      return true;
    return false;
  }

  void addSteps(size_t N) { Steps += N; }
  void addCompilation() { ++Compilations; }

  /// Compilations left before MaxCompilations trips; SIZE_MAX when that
  /// budget axis is unbounded. Pool-backed searches cap their batch sizes
  /// with this so parallel evaluation honors the same budget contract as
  /// sequential evaluation (overshoot bounded by zero, not a batch).
  size_t remainingCompilations() const {
    if (!Budget.MaxCompilations)
      return std::numeric_limits<size_t>::max();
    return Budget.MaxCompilations > Compilations
               ? Budget.MaxCompilations - Compilations
               : 0;
  }

  size_t steps() const { return Steps; }
  size_t compilations() const { return Compilations; }
  double wallSeconds() const { return Watch.elapsedMs() / 1000.0; }

private:
  SearchBudget Budget;
  Stopwatch Watch;
  size_t Steps = 0;
  size_t Compilations = 0;
};

/// Replays \p Actions on a fresh episode in one batched step; returns the
/// cumulative reward. Counts one compilation.
StatusOr<double> evaluateSequence(core::CompilerEnv &E,
                                  const std::vector<int> &Actions,
                                  BudgetTracker &Tracker);

/// Maps the pass pipeline of \p Level ("-Oz", "-O3", ...) onto action
/// indices in \p E's action space, skipping any pipeline pass that is not
/// exposed as an action. The result is suitable for Search::setWarmStart().
std::vector<int> pipelineActions(const core::CompilerEnv &E,
                                 const std::string &Level);

// -- Factories (LLVM phase ordering, Table IV) -------------------------------
std::unique_ptr<Search> createRandomSearch(uint64_t Seed = 1,
                                           size_t Patience = 32);
std::unique_ptr<Search> createGreedySearch();
std::unique_ptr<Search> createLaMctsSearch(uint64_t Seed = 1);
std::unique_ptr<Search> createNevergradSearch(uint64_t Seed = 1,
                                              size_t SequenceLength = 24);
std::unique_ptr<Search> createOpenTunerSearch(uint64_t Seed = 1,
                                              size_t SequenceLength = 24);

// -- Factories (GCC flag tuning, Table V) -------------------------------------
/// These searches drive the gcc-direct-v0 space via stepDirect().
std::unique_ptr<Search> createGccRandomSearch(uint64_t Seed = 1);
std::unique_ptr<Search> createGccHillClimb(uint64_t Seed = 1,
                                           size_t MutationsPerStep = 4);
std::unique_ptr<Search> createGccGeneticAlgorithm(uint64_t Seed = 1,
                                                  size_t Population = 100);

} // namespace autotune
} // namespace compiler_gym

#endif // COMPILER_GYM_AUTOTUNE_SEARCH_H
