//===- autotune/OpenTunerLite.cpp - AUC-bandit ensemble ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An OpenTuner-style meta-search (Ansel et al., PACT'14) over pass
/// sequences: a result database shared by several techniques (greedy
/// mutation, pattern crossover, random restart), with the AUC credit-
/// assignment bandit choosing which technique proposes next. OpenTuner was
/// designed for recompile-per-test workflows, so every candidate is a full
/// fresh compilation — which is exactly why its per-step costs in Table II
/// are the highest.
///
//===----------------------------------------------------------------------===//

#include "autotune/Search.h"

#include <algorithm>
#include <cmath>
#include <deque>

using namespace compiler_gym;
using namespace compiler_gym::autotune;

namespace {

class OpenTunerLite : public Search {
public:
  OpenTunerLite(uint64_t Seed, size_t SequenceLength)
      : Gen(Seed), Length(SequenceLength) {}

  std::string name() const override { return "OpenTuner"; }

  StatusOr<SearchResult> run(core::CompilerEnv &E,
                             const SearchBudget &Budget) override {
    BudgetTracker Tracker(Budget);
    SearchResult Result;
    CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
    (void)Obs;
    NumActions = E.actionSpace().size();

    // Result database (best-first, capped).
    struct DbEntry {
      std::vector<int> Seq;
      double Reward;
    };
    std::vector<DbEntry> Db;

    // OpenTuner accepts seed configurations; a warm start enters the
    // database first and anchors the sequence length.
    if (!WarmStart.empty()) {
      Length = WarmStart.size();
      CG_ASSIGN_OR_RETURN(double Reward,
                          evaluateSequence(E, WarmStart, Tracker));
      Db.push_back({WarmStart, Reward});
      if (Reward > Result.BestReward) {
        Result.BestReward = Reward;
        Result.BestActions = WarmStart;
      }
    }

    constexpr int NumTechniques = 3;
    std::deque<std::pair<int, bool>> History; // (technique, improved).

    auto aucScore = [&](int Technique) {
      // Area-under-curve credit assignment: recent improvements weigh more.
      double Score = 0.0, Weight = 1.0;
      for (auto It = History.rbegin(); It != History.rend(); ++It) {
        if (It->first == Technique)
          Score += Weight * (It->second ? 1.0 : 0.0);
        Weight *= 0.97;
      }
      return Score;
    };

    while (!Tracker.exhausted()) {
      // Pick a technique by AUC score with epsilon exploration.
      int Technique;
      if (Db.empty() || Gen.chance(0.15)) {
        Technique = 2; // Random restart seeds the database.
      } else {
        double Best = -1.0;
        Technique = 0;
        for (int T = 0; T < NumTechniques; ++T) {
          double Score = aucScore(T) + 0.05;
          if (Score > Best) {
            Best = Score;
            Technique = T;
          }
        }
      }

      std::vector<int> Candidate;
      switch (Technique) {
      case 0: { // Greedy mutation of the best known config.
        Candidate = Db.front().Seq;
        size_t Mutations = 1 + Gen.bounded(3);
        for (size_t M = 0; M < Mutations; ++M)
          Candidate[Gen.bounded(Candidate.size())] =
              static_cast<int>(Gen.bounded(NumActions));
        break;
      }
      case 1: { // Crossover of two database entries.
        if (Db.size() < 2) {
          Candidate = randomSequence();
          break;
        }
        const auto &A = Db[Gen.bounded(std::min<size_t>(Db.size(), 8))].Seq;
        const auto &B = Db[Gen.bounded(Db.size())].Seq;
        size_t Cut = Gen.bounded(Length);
        Candidate.assign(A.begin(), A.begin() + Cut);
        Candidate.insert(Candidate.end(), B.begin() + Cut, B.end());
        break;
      }
      default:
        Candidate = randomSequence();
        break;
      }

      CG_ASSIGN_OR_RETURN(double Reward,
                          evaluateSequence(E, Candidate, Tracker));
      bool Improved = Db.empty() || Reward > Db.front().Reward;
      Db.push_back({Candidate, Reward});
      std::sort(Db.begin(), Db.end(), [](const DbEntry &A, const DbEntry &B) {
        return A.Reward > B.Reward;
      });
      if (Db.size() > 32)
        Db.pop_back();
      History.emplace_back(Technique, Improved);
      if (History.size() > 128)
        History.pop_front();
      if (Reward > Result.BestReward) {
        Result.BestReward = Reward;
        Result.BestActions = Candidate;
      }
    }

    Result.StepsUsed = Tracker.steps();
    Result.CompilationsUsed = Tracker.compilations();
    Result.WallSeconds = Tracker.wallSeconds();
    return Result;
  }

private:
  std::vector<int> randomSequence() {
    std::vector<int> Out(Length);
    for (int &A : Out)
      A = static_cast<int>(Gen.bounded(NumActions));
    return Out;
  }

  Rng Gen;
  size_t Length;
  size_t NumActions = 1;
};

} // namespace

std::unique_ptr<Search>
autotune::createOpenTunerSearch(uint64_t Seed, size_t SequenceLength) {
  return std::make_unique<OpenTunerLite>(Seed, SequenceLength);
}
