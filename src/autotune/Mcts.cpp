//===- autotune/Mcts.cpp - LaMCTS-style tree search -------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monte Carlo tree search over pass sequences with latent-action space
/// partitioning in the spirit of LaMCTS (Wang et al., NeurIPS'20): sampled
/// rewards per first-action cluster split the action space into promising /
/// unpromising regions on the fly, and UCT search is biased into the
/// winning region. (The original partitions a continuous space with
/// learned classifiers; over a discrete pass space, reward-ranked action
/// bisection plays that role.)
///
//===----------------------------------------------------------------------===//

#include "autotune/Search.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

using namespace compiler_gym;
using namespace compiler_gym::autotune;

namespace {

struct TreeNode {
  std::map<int, std::unique_ptr<TreeNode>> Children;
  double TotalReward = 0.0;
  size_t Visits = 0;
};

class LaMctsSearch : public Search {
public:
  explicit LaMctsSearch(uint64_t Seed) : Gen(Seed) {}

  std::string name() const override { return "LaMCTS"; }

  StatusOr<SearchResult> run(core::CompilerEnv &E,
                             const SearchBudget &Budget) override {
    BudgetTracker Tracker(Budget);
    SearchResult Result;
    CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
    (void)Obs;
    size_t NumActions = E.actionSpace().size();

    if (!WarmStart.empty()) {
      CG_ASSIGN_OR_RETURN(double Reward,
                          evaluateSequence(E, WarmStart, Tracker));
      if (Reward > Result.BestReward) {
        Result.BestReward = Reward;
        Result.BestActions = WarmStart;
      }
    }

    // Phase 1 (space partitioning): sample each action once from the root
    // to rank regions of the space.
    std::vector<double> ActionMean(NumActions, 0.0);
    for (size_t A = 0; A < NumActions && !Tracker.exhausted(); ++A) {
      CG_ASSIGN_OR_RETURN(double Reward,
                          evaluateSequence(E, {static_cast<int>(A)},
                                           Tracker));
      ActionMean[A] = Reward;
      if (Reward > Result.BestReward) {
        Result.BestReward = Reward;
        Result.BestActions = {static_cast<int>(A)};
      }
    }
    // Promising region: the top half of actions by sampled reward.
    std::vector<int> Ranked(NumActions);
    for (size_t A = 0; A < NumActions; ++A)
      Ranked[A] = static_cast<int>(A);
    std::sort(Ranked.begin(), Ranked.end(), [&](int A, int B) {
      return ActionMean[A] > ActionMean[B];
    });
    std::vector<int> GoodRegion(
        Ranked.begin(), Ranked.begin() + std::max<size_t>(4, NumActions / 2));

    // Phase 2: UCT over sequences drawn mostly from the good region.
    TreeNode Root;
    const size_t MaxDepth = 24;
    const double ExploreC = 0.6;
    while (!Tracker.exhausted()) {
      // Selection + expansion down the tree.
      std::vector<int> Sequence;
      TreeNode *Node = &Root;
      while (Sequence.size() < MaxDepth) {
        // Progressive widening: only consider a few children per node.
        size_t WidthCap = 2 + static_cast<size_t>(
                                  std::sqrt(static_cast<double>(Node->Visits)));
        int Action;
        if (Node->Children.size() < WidthCap) {
          // Expand with a fresh action, biased into the good region.
          const std::vector<int> &Pool =
              Gen.chance(0.8) ? GoodRegion : Ranked;
          Action = Pool[Gen.bounded(Pool.size())];
        } else {
          // UCT over existing children.
          double BestScore = -1e300;
          Action = Node->Children.begin()->first;
          for (auto &[A, Child] : Node->Children) {
            double Mean = Child->Visits
                              ? Child->TotalReward /
                                    static_cast<double>(Child->Visits)
                              : 0.0;
            double Score = Mean + ExploreC *
                                      std::sqrt(std::log(1.0 + Node->Visits) /
                                                (1.0 + Child->Visits));
            if (Score > BestScore) {
              BestScore = Score;
              Action = A;
            }
          }
        }
        Sequence.push_back(Action);
        auto &Slot = Node->Children[Action];
        if (!Slot) {
          Slot = std::make_unique<TreeNode>();
          Node = Slot.get();
          break; // Expanded a new leaf; stop selection.
        }
        Node = Slot.get();
        if (Gen.chance(0.15))
          break; // Occasional early cutoff diversifies sequence lengths.
      }

      CG_ASSIGN_OR_RETURN(double Reward,
                          evaluateSequence(E, Sequence, Tracker));
      if (Reward > Result.BestReward) {
        Result.BestReward = Reward;
        Result.BestActions = Sequence;
      }
      // Backpropagate along the path.
      TreeNode *Cur = &Root;
      Cur->Visits++;
      Cur->TotalReward += Reward;
      for (int A : Sequence) {
        auto It = Cur->Children.find(A);
        if (It == Cur->Children.end())
          break;
        Cur = It->second.get();
        Cur->Visits++;
        Cur->TotalReward += Reward;
      }
    }

    Result.StepsUsed = Tracker.steps();
    Result.CompilationsUsed = Tracker.compilations();
    Result.WallSeconds = Tracker.wallSeconds();
    return Result;
  }

private:
  Rng Gen;
};

} // namespace

std::unique_ptr<Search> autotune::createLaMctsSearch(uint64_t Seed) {
  return std::make_unique<LaMctsSearch>(Seed);
}
