//===- autotune/RandomSearch.cpp - Random search baselines ------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random search for both environments. For LLVM phase ordering (Table
/// IV): "selects actions randomly until a configurable number of steps
/// have elapsed without a positive reward", then restarts. For GCC flag
/// tuning (Table V): "a random list of 502 integers from the allowable
/// range is selected at each step".
///
//===----------------------------------------------------------------------===//

#include "autotune/Search.h"

#include "envs/gcc/GccSession.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::autotune;

namespace {

class RandomSearch : public Search {
public:
  RandomSearch(uint64_t Seed, size_t Patience)
      : Gen(Seed), Patience(Patience) {}

  std::string name() const override { return "Random Search"; }

  StatusOr<SearchResult> run(core::CompilerEnv &E,
                             const SearchBudget &Budget) override {
    BudgetTracker Tracker(Budget);
    SearchResult Result;
    if (!WarmStart.empty()) {
      // The seed only floors the reported result; the random episodes
      // below stay pure.
      CG_ASSIGN_OR_RETURN(double Reward,
                          evaluateSequence(E, WarmStart, Tracker));
      if (Reward > Result.BestReward) {
        Result.BestReward = Reward;
        Result.BestActions = WarmStart;
      }
    }
    if (EvalPool)
      return runPooled(E, Tracker, Result);
    while (!Tracker.exhausted()) {
      CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
      (void)Obs;
      Tracker.addCompilation();
      size_t NumActions = E.actionSpace().size();
      std::vector<int> Episode;
      size_t StepsSincePositive = 0;
      double Cumulative = 0.0;
      // One episode: run until patience runs out, remembering the best
      // reward prefix seen.
      while (StepsSincePositive < Patience && !Tracker.exhausted()) {
        int Action = static_cast<int>(Gen.bounded(NumActions));
        CG_ASSIGN_OR_RETURN(core::StepResult R, E.step(Action));
        Tracker.addSteps(1);
        Episode.push_back(Action);
        Cumulative += R.Reward;
        if (R.Reward > 0.0)
          StepsSincePositive = 0;
        else
          ++StepsSincePositive;
        if (Cumulative > Result.BestReward) {
          Result.BestReward = Cumulative;
          Result.BestActions = Episode;
        }
        if (R.Done)
          break;
      }
    }
    Result.StepsUsed = Tracker.steps();
    Result.CompilationsUsed = Tracker.compilations();
    Result.WallSeconds = Tracker.wallSeconds();
    return Result;
  }

private:
  /// Pool-backed fan-out: random fixed-length candidates are evaluated
  /// concurrently across the pool workers. Patience-adaptive episode
  /// lengths do not vectorize, so candidates use Patience as the sequence
  /// length — the mean episode length of the sequential variant.
  StatusOr<SearchResult> runPooled(core::CompilerEnv &E,
                                   BudgetTracker &Tracker,
                                   SearchResult Result) {
    CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
    (void)Obs;
    size_t NumActions = E.actionSpace().size();
    size_t SequenceLength = std::max<size_t>(1, Patience);
    while (!Tracker.exhausted()) {
      size_t Batch = std::min(EvalPool->size() * 2,
                              Tracker.remainingCompilations());
      std::vector<std::vector<int>> Candidates(Batch);
      for (std::vector<int> &Candidate : Candidates) {
        Candidate.resize(SequenceLength);
        for (int &A : Candidate)
          A = static_cast<int>(Gen.bounded(NumActions));
      }
      CG_ASSIGN_OR_RETURN(std::vector<double> Rewards,
                          EvalPool->evaluateSequences(Candidates));
      for (size_t I = 0; I < Candidates.size(); ++I) {
        Tracker.addCompilation();
        Tracker.addSteps(Candidates[I].size());
        if (Rewards[I] > Result.BestReward) {
          Result.BestReward = Rewards[I];
          Result.BestActions = Candidates[I];
        }
      }
    }
    Result.StepsUsed = Tracker.steps();
    Result.CompilationsUsed = Tracker.compilations();
    Result.WallSeconds = Tracker.wallSeconds();
    return Result;
  }

  Rng Gen;
  size_t Patience;
};

/// Random choice vectors over the GCC option space.
class GccRandomSearch : public Search {
public:
  explicit GccRandomSearch(uint64_t Seed) : Gen(Seed) {}

  std::string name() const override { return "Random Search"; }

  StatusOr<SearchResult> run(core::CompilerEnv &E,
                             const SearchBudget &Budget) override {
    const envs::GccOptionSpace &Spec = envs::GccSession::optionSpace();
    BudgetTracker Tracker(Budget);
    SearchResult Result;
    CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
    (void)Obs;
    bool First = true;
    while (!Tracker.exhausted()) {
      std::vector<int64_t> Choices(Spec.options().size());
      for (size_t I = 0; I < Choices.size(); ++I)
        Choices[I] = static_cast<int64_t>(
            Gen.bounded(static_cast<uint64_t>(Spec.options()[I].Cardinality)));
      CG_ASSIGN_OR_RETURN(core::StepResult R, E.stepDirect(Choices));
      Tracker.addCompilation();
      Tracker.addSteps(1);
      // Cumulative episode reward is the total size reduction from the
      // default config to this config.
      double Total = E.episodeReward();
      if (First || Total > Result.BestReward) {
        Result.BestReward = Total;
        Result.BestActions.assign(Choices.begin(), Choices.end());
        First = false;
      }
      (void)R;
    }
    Result.StepsUsed = Tracker.steps();
    Result.CompilationsUsed = Tracker.compilations();
    Result.WallSeconds = Tracker.wallSeconds();
    return Result;
  }

private:
  Rng Gen;
};

} // namespace

std::unique_ptr<Search> autotune::createRandomSearch(uint64_t Seed,
                                                     size_t Patience) {
  return std::make_unique<RandomSearch>(Seed, Patience);
}

std::unique_ptr<Search> autotune::createGccRandomSearch(uint64_t Seed) {
  return std::make_unique<GccRandomSearch>(Seed);
}
