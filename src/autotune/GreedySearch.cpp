//===- autotune/GreedySearch.cpp - Fork-based greedy search -----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy search (Table IV): "at each step evaluates all possible actions
/// and selects the action which provides the greatest reward, terminating
/// once no positive reward can be achieved". Implemented exactly as §III-B6
/// describes the fork() use case: n forks of the environment, one action
/// each, keep the winner.
///
//===----------------------------------------------------------------------===//

#include "autotune/Search.h"

using namespace compiler_gym;
using namespace compiler_gym::autotune;

namespace {

class GreedySearch : public Search {
public:
  std::string name() const override { return "Greedy Search"; }

  StatusOr<SearchResult> run(core::CompilerEnv &E,
                             const SearchBudget &Budget) override {
    BudgetTracker Tracker(Budget);
    SearchResult Result;
    CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
    (void)Obs;
    Tracker.addCompilation();
    size_t NumActions = E.actionSpace().size();

    // With a warm start the greedy refinement begins from the seeded
    // sequence's state instead of the unoptimized program.
    if (!WarmStart.empty()) {
      CG_ASSIGN_OR_RETURN(core::StepResult R, E.step(WarmStart));
      (void)R;
      Tracker.addSteps(WarmStart.size());
      Result.BestActions = WarmStart;
      Result.BestReward = E.episodeReward();
    }

    while (!Tracker.exhausted()) {
      int BestAction = -1;
      double BestReward = 0.0;
      for (size_t A = 0; A < NumActions && !Tracker.exhausted(); ++A) {
        CG_ASSIGN_OR_RETURN(std::unique_ptr<core::CompilerEnv> Fork,
                            E.fork());
        CG_ASSIGN_OR_RETURN(core::StepResult R,
                            Fork->step(static_cast<int>(A)));
        Tracker.addSteps(1);
        if (R.Reward > BestReward) {
          BestReward = R.Reward;
          BestAction = static_cast<int>(A);
        }
      }
      if (BestAction < 0)
        break; // No action yields positive reward: local optimum reached.
      CG_ASSIGN_OR_RETURN(core::StepResult R, E.step(BestAction));
      (void)R;
      Tracker.addSteps(1);
      Result.BestActions.push_back(BestAction);
      Result.BestReward = E.episodeReward();
    }
    Result.StepsUsed = Tracker.steps();
    Result.CompilationsUsed = Tracker.compilations();
    Result.WallSeconds = Tracker.wallSeconds();
    return Result;
  }
};

} // namespace

std::unique_ptr<Search> autotune::createGreedySearch() {
  return std::make_unique<GreedySearch>();
}
