//===- autotune/Search.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "autotune/Search.h"

#include "passes/PassRegistry.h"
#include "passes/Pipelines.h"

#include <unordered_map>

using namespace compiler_gym;
using namespace compiler_gym::autotune;

Search::~Search() = default;

StatusOr<double> autotune::evaluateSequence(core::CompilerEnv &E,
                                            const std::vector<int> &Actions,
                                            BudgetTracker &Tracker) {
  CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
  (void)Obs;
  Tracker.addCompilation();
  if (Actions.empty())
    return 0.0;
  CG_ASSIGN_OR_RETURN(core::StepResult R, E.step(Actions));
  (void)R;
  Tracker.addSteps(Actions.size());
  return E.episodeReward();
}

std::vector<int> autotune::pipelineActions(const core::CompilerEnv &E,
                                           const std::string &Level) {
  std::vector<int> Out;
  StatusOr<std::vector<std::string>> Passes =
      passes::pipelineForLevel(Level);
  if (!Passes.isOk())
    return Out;
  // Gym envs populate their action space on the first reset(); before
  // that the LLVM env's space is known statically to be the registry's
  // default action list, so fall back to it rather than silently mapping
  // nothing.
  const std::vector<std::string> &Names =
      E.actionSpace().size() > 0
          ? E.actionSpace().ActionNames
          : passes::PassRegistry::instance().defaultActionNames();
  std::unordered_map<std::string, int> Index;
  for (size_t I = 0; I < Names.size(); ++I)
    Index.emplace(Names[I], static_cast<int>(I));
  for (const std::string &Pass : *Passes) {
    auto It = Index.find(Pass);
    if (It != Index.end())
      Out.push_back(It->second);
  }
  return Out;
}
