//===- autotune/HillClimb.cpp - GCC hill climbing ---------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hill climbing for the GCC flag space (Table V): "at each step a small
/// number of random changes are made to the current choices. If this
/// improves the objective then the current state is accepted and future
/// steps modify from there."
///
//===----------------------------------------------------------------------===//

#include "autotune/Search.h"

#include "envs/gcc/GccSession.h"

using namespace compiler_gym;
using namespace compiler_gym::autotune;

namespace {

class GccHillClimb : public Search {
public:
  GccHillClimb(uint64_t Seed, size_t MutationsPerStep)
      : Gen(Seed), MutationsPerStep(MutationsPerStep) {}

  std::string name() const override { return "Hill Climbing"; }

  StatusOr<SearchResult> run(core::CompilerEnv &E,
                             const SearchBudget &Budget) override {
    const envs::GccOptionSpace &Spec = envs::GccSession::optionSpace();
    BudgetTracker Tracker(Budget);
    SearchResult Result;
    CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
    (void)Obs;

    std::vector<int64_t> Current = Spec.defaultChoices();
    double CurrentReward = 0.0; // Reward of the default configuration.
    Result.BestActions.assign(Current.begin(), Current.end());

    while (!Tracker.exhausted()) {
      std::vector<int64_t> Candidate = Current;
      size_t NumMutations = 1 + Gen.bounded(MutationsPerStep);
      for (size_t M = 0; M < NumMutations; ++M) {
        size_t Opt = Gen.bounded(Candidate.size());
        Candidate[Opt] = static_cast<int64_t>(Gen.bounded(
            static_cast<uint64_t>(Spec.options()[Opt].Cardinality)));
      }
      CG_ASSIGN_OR_RETURN(core::StepResult R, E.stepDirect(Candidate));
      (void)R;
      Tracker.addCompilation();
      Tracker.addSteps(1);
      double Reward = E.episodeReward();
      if (Reward > CurrentReward) {
        Current = Candidate;
        CurrentReward = Reward;
        if (Reward > Result.BestReward) {
          Result.BestReward = Reward;
          Result.BestActions.assign(Current.begin(), Current.end());
        }
      }
    }
    Result.StepsUsed = Tracker.steps();
    Result.CompilationsUsed = Tracker.compilations();
    Result.WallSeconds = Tracker.wallSeconds();
    return Result;
  }

private:
  Rng Gen;
  size_t MutationsPerStep;
};

} // namespace

std::unique_ptr<Search> autotune::createGccHillClimb(uint64_t Seed,
                                                     size_t MutationsPerStep) {
  return std::make_unique<GccHillClimb>(Seed, MutationsPerStep);
}
