//===- autotune/NevergradLite.cpp - Black-box ensemble ----------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Nevergrad-flavoured gradient-free optimizer over fixed-length pass
/// sequences (Table IV): a portfolio of (1+1) evolution with adaptive
/// mutation rate, differential evolution, and pure random sampling, with a
/// softmax bandit allocating the evaluation budget across them — the
/// "ensemble of techniques" design of Rapin & Teytaud's library.
///
//===----------------------------------------------------------------------===//

#include "autotune/Search.h"

#include <algorithm>
#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::autotune;

namespace {

class NevergradLite : public Search {
public:
  NevergradLite(uint64_t Seed, size_t SequenceLength)
      : Gen(Seed), Length(SequenceLength) {}

  std::string name() const override { return "Nevergrad"; }

  StatusOr<SearchResult> run(core::CompilerEnv &E,
                             const SearchBudget &Budget) override {
    BudgetTracker Tracker(Budget);
    SearchResult Result;
    CG_ASSIGN_OR_RETURN(service::Observation Obs, E.reset());
    (void)Obs;
    NumActions = E.actionSpace().size();

    // A warm start becomes the (1+1)-ES starting point; the sequence
    // length follows it so mutation and DE recombination stay aligned.
    if (!WarmStart.empty())
      Length = WarmStart.size();

    // Shared archive for DE and the (1+1)-ES incumbent.
    std::vector<std::pair<std::vector<int>, double>> Archive;
    std::vector<int> Incumbent =
        WarmStart.empty() ? randomSequence() : WarmStart;
    CG_ASSIGN_OR_RETURN(double IncumbentReward,
                        evaluateSequence(E, Incumbent, Tracker));
    Archive.emplace_back(Incumbent, IncumbentReward);
    updateBest(Result, Incumbent, IncumbentReward);
    double MutationRate = 0.25;

    // Bandit over the three techniques.
    double TechniqueScore[3] = {0.0, 0.0, 0.0};
    size_t TechniqueUses[3] = {1, 1, 1};

    while (!Tracker.exhausted()) {
      int Technique = pickTechnique(TechniqueScore, TechniqueUses);
      std::vector<int> Candidate;
      switch (Technique) {
      case 0: { // (1+1)-ES mutation of the incumbent.
        Candidate = Incumbent;
        for (int &A : Candidate)
          if (Gen.chance(MutationRate))
            A = static_cast<int>(Gen.bounded(NumActions));
        break;
      }
      case 1: { // Differential evolution: recombine three archive members.
        if (Archive.size() < 3) {
          Candidate = randomSequence();
          break;
        }
        const auto &X = Archive[Gen.bounded(Archive.size())].first;
        const auto &Y = Archive[Gen.bounded(Archive.size())].first;
        const auto &Z = Archive[Gen.bounded(Archive.size())].first;
        Candidate.resize(Length);
        for (size_t I = 0; I < Length; ++I) {
          int Base = X[I];
          if (Gen.chance(0.5))
            Base = Y[I] != Z[I] ? Y[I] : Base; // Discrete differential.
          Candidate[I] = Gen.chance(0.1)
                             ? static_cast<int>(Gen.bounded(NumActions))
                             : Base;
        }
        break;
      }
      default:
        Candidate = randomSequence();
        break;
      }

      CG_ASSIGN_OR_RETURN(double Reward,
                          evaluateSequence(E, Candidate, Tracker));
      Archive.emplace_back(Candidate, Reward);
      if (Archive.size() > 64)
        Archive.erase(Archive.begin());
      bool Improved = Reward > IncumbentReward;
      if (Technique == 0) {
        // 1/5th-rule adaptation.
        MutationRate = std::clamp(Improved ? MutationRate * 1.5
                                           : MutationRate * 0.95,
                                  0.02, 0.6);
      }
      if (Improved) {
        Incumbent = Candidate;
        IncumbentReward = Reward;
      }
      TechniqueScore[Technique] =
          0.9 * TechniqueScore[Technique] + (Improved ? 1.0 : 0.0);
      ++TechniqueUses[Technique];
      updateBest(Result, Candidate, Reward);
    }

    Result.StepsUsed = Tracker.steps();
    Result.CompilationsUsed = Tracker.compilations();
    Result.WallSeconds = Tracker.wallSeconds();
    return Result;
  }

private:
  std::vector<int> randomSequence() {
    std::vector<int> Out(Length);
    for (int &A : Out)
      A = static_cast<int>(Gen.bounded(NumActions));
    return Out;
  }

  int pickTechnique(const double Score[3], const size_t Uses[3]) {
    // Softmax over score-per-use plus exploration noise.
    std::vector<double> Weights(3);
    for (int T = 0; T < 3; ++T)
      Weights[T] =
          std::exp(2.0 * Score[T] / static_cast<double>(Uses[T])) + 0.2;
    return static_cast<int>(Gen.weightedIndex(Weights));
  }

  void updateBest(SearchResult &Result, const std::vector<int> &Seq,
                  double Reward) {
    if (Reward > Result.BestReward) {
      Result.BestReward = Reward;
      Result.BestActions = Seq;
    }
  }

  Rng Gen;
  size_t Length;
  size_t NumActions = 1;
};

} // namespace

std::unique_ptr<Search>
autotune::createNevergradSearch(uint64_t Seed, size_t SequenceLength) {
  return std::make_unique<NevergradLite>(Seed, SequenceLength);
}
