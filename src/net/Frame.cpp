//===- net/Frame.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Frame.h"

#include <array>
#include <cstring>

using namespace compiler_gym;
using namespace compiler_gym::net;

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}

void putU32(std::string &Out, uint32_t V) {
  Out.push_back(static_cast<char>(V & 0xFF));
  Out.push_back(static_cast<char>((V >> 8) & 0xFF));
  Out.push_back(static_cast<char>((V >> 16) & 0xFF));
  Out.push_back(static_cast<char>((V >> 24) & 0xFF));
}

uint32_t getU32(const char *P) {
  return static_cast<uint32_t>(static_cast<unsigned char>(P[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(P[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(P[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(P[3])) << 24;
}

} // namespace

uint32_t net::crc32(const void *Data, size_t Size) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I < Size; ++I)
    C = Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

std::string net::encodeFrame(const std::string &Payload) {
  std::string Out;
  Out.reserve(FrameHeaderBytes + Payload.size());
  putU32(Out, FrameMagic);
  putU32(Out, FrameVersion);
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, crc32(Payload.data(), Payload.size()));
  Out.append(Payload);
  return Out;
}

FrameDecoder::Result FrameDecoder::fail(ErrorKind K, std::string Message) {
  Kind = K;
  Error = std::move(Message);
  Buffer.clear(); // Poisoned: nothing buffered is trustworthy.
  return Result::Error;
}

FrameDecoder::Result FrameDecoder::next(std::string &Payload) {
  if (Kind != ErrorKind::None)
    return Result::Error;
  if (Buffer.size() < FrameHeaderBytes)
    return Result::NeedMore;
  const char *H = Buffer.data();
  uint32_t Magic = getU32(H);
  uint32_t Version = getU32(H + 4);
  uint32_t Length = getU32(H + 8);
  uint32_t Crc = getU32(H + 12);
  // Validation order matters for diagnosis: a wrong magic means the peer
  // is not speaking this protocol at all, so report that before anything
  // derived from the rest of the header.
  if (Magic != FrameMagic)
    return fail(ErrorKind::BadMagic, "bad frame magic");
  if (Version != FrameVersion)
    return fail(ErrorKind::BadVersion,
                "unsupported frame version " + std::to_string(Version));
  if (Length > MaxFrameBytes)
    return fail(ErrorKind::Oversized,
                "frame of " + std::to_string(Length) + " bytes exceeds cap " +
                    std::to_string(MaxFrameBytes));
  if (Buffer.size() < FrameHeaderBytes + Length)
    return Result::NeedMore;
  if (crc32(H + FrameHeaderBytes, Length) != Crc)
    return fail(ErrorKind::BadCrc, "frame checksum mismatch");
  Payload.assign(H + FrameHeaderBytes, Length);
  Buffer.erase(0, FrameHeaderBytes + Length);
  return Result::Frame;
}

const char *net::frameErrorKindName(FrameDecoder::ErrorKind Kind) {
  switch (Kind) {
  case FrameDecoder::ErrorKind::None:
    return "none";
  case FrameDecoder::ErrorKind::BadMagic:
    return "bad_magic";
  case FrameDecoder::ErrorKind::BadVersion:
    return "bad_version";
  case FrameDecoder::ErrorKind::Oversized:
    return "oversized";
  case FrameDecoder::ErrorKind::BadCrc:
    return "bad_crc";
  }
  return "unknown";
}
