//===- net/SocketTransport.h - Client socket transport ----------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// service::Transport over a TCP or Unix-domain socket: the client half of
/// the cross-process RPC path. One framed request out, one framed reply
/// back, fully serialized per connection (calls take a mutex — envs own
/// their client, so per-env calls are already sequential, and concurrent
/// sharers queue exactly as they would on QueueTransport).
///
/// Failure model: any I/O error, framing error or timeout closes the
/// connection — a reply that never arrived may still be in flight, and
/// with no correlation ids in the protocol the only safe stream state is
/// a fresh one. That is sound because every retry path above this layer
/// is idempotent (RequestEnvelope::RequestId dedup + episode replay
/// recovery). The next call redials with capped exponential backoff plus
/// jitter, so a restarting server sees a trickle, not a stampede.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_NET_SOCKETTRANSPORT_H
#define COMPILER_GYM_NET_SOCKETTRANSPORT_H

#include "net/Frame.h"
#include "net/Socket.h"
#include "service/Transport.h"
#include "util/Rng.h"

#include <mutex>

namespace compiler_gym {
namespace net {

struct SocketTransportOptions {
  /// Cap on connection establishment (per dial attempt).
  int ConnectTimeoutMs = 5000;
  /// Reconnect backoff: delay before redial N is
  /// min(Max, Base * 2^(N-1)) with ±50% jitter. Reset by a successful
  /// round trip.
  int ReconnectBackoffMs = 10;
  int ReconnectBackoffMaxMs = 2000;
  /// Largest reply frame accepted.
  size_t MaxFrameBytes = DefaultMaxFrameBytes;
  uint64_t JitterSeed = 0x50C4E7;
};

/// Client transport dialing one server endpoint.
class SocketTransport : public service::Transport {
public:
  SocketTransport(NetAddress Addr, SocketTransportOptions Opts = {});

  /// Convenience: parses \p Spec ("tcp:host:port" / "unix:/path") and
  /// dials it lazily on first use.
  static StatusOr<std::shared_ptr<SocketTransport>>
  dial(const std::string &Spec, SocketTransportOptions Opts = {});

  StatusOr<std::string> roundTrip(const std::string &RequestBytes,
                                  int TimeoutMs) override;

  /// Connections established over this transport's lifetime (1 = never
  /// lost the link; tests assert reconnects happened).
  uint64_t connectCount() const;

private:
  /// Ensures Conn is a live connection, honoring backoff between redials
  /// and the caller's remaining deadline budget. Caller holds Mutex.
  Status ensureConnected(int DeadlineMs);

  /// One framed request/reply exchange on the live connection. Caller
  /// holds Mutex. Any failure closes the connection before returning.
  StatusOr<std::string> exchange(const std::string &RequestBytes,
                                 int TimeoutMs);

  NetAddress Addr;
  SocketTransportOptions Opts;
  mutable std::mutex Mutex;
  Socket Conn;
  Rng Jitter;
  uint64_t Connects = 0;
  int FailedDials = 0; ///< Consecutive; resets on success.
};

} // namespace net
} // namespace compiler_gym

#endif // COMPILER_GYM_NET_SOCKETTRANSPORT_H
