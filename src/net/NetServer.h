//===- net/NetServer.h - Poll-based frame server ----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server half of the socket transport: accepts TCP / Unix-domain
/// connections, reassembles request frames, and dispatches each payload to
/// a handler on a small thread pool. One poll thread multiplexes every
/// connection; handlers never block it.
///
/// Concurrency contract: at most one request per connection is in flight
/// at a time (the connection stops being read until its reply is sent),
/// which preserves the strict request→reply alternation the client
/// transport assumes — while requests from different connections execute
/// in parallel. The handler is asynchronous: it receives a ReplyFn and may
/// complete on any thread (the gateway queues work and replies from its
/// dispatchers); replying twice is a programming error and the second
/// reply is dropped. If the connection died while the handler ran, the
/// reply is discarded — the client's retry/idempotency machinery owns
/// that case.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_NET_NETSERVER_H
#define COMPILER_GYM_NET_NETSERVER_H

#include "net/Frame.h"
#include "net/Socket.h"
#include "util/Status.h"

#include <functional>
#include <memory>

namespace compiler_gym {
namespace net {

struct NetServerOptions {
  /// Worker threads running handlers (the poll thread is extra).
  int Threads = 4;
  /// Largest request frame accepted; larger (or damaged) frames drop the
  /// connection with a cg_net_frame_errors_total tick.
  size_t MaxFrameBytes = DefaultMaxFrameBytes;
  /// Cap on simultaneously connected clients; excess accepts are closed
  /// immediately.
  size_t MaxConnections = 1024;
};

/// Sends the reply payload for one request. Safe to call from any thread,
/// at most once; calls after the first (or after server stop / connection
/// death) are no-ops.
using ReplyFn = std::function<void(std::string ReplyBytes)>;

/// Request handler: \p RequestBytes is one decoded frame payload (an
/// encoded RequestEnvelope). Runs on a worker thread.
using AsyncHandler = std::function<void(std::string RequestBytes,
                                        ReplyFn Reply)>;

/// A listening frame server.
class NetServer {
public:
  /// Binds \p Addr and starts serving \p Handler. TCP port 0 picks a free
  /// port — read it back from boundAddress().
  static StatusOr<std::unique_ptr<NetServer>>
  serve(const NetAddress &Addr, AsyncHandler Handler,
        NetServerOptions Opts = {});

  /// Convenience for synchronous handlers (e.g. CompilerService::handle):
  /// wraps \p Handler so the reply is sent when it returns.
  static StatusOr<std::unique_ptr<NetServer>>
  serveSync(const NetAddress &Addr,
            std::function<std::string(const std::string &)> Handler,
            NetServerOptions Opts = {});

  ~NetServer(); ///< Stops accepting, closes connections, joins threads.

  NetServer(const NetServer &) = delete;
  NetServer &operator=(const NetServer &) = delete;

  /// The bound listen address (real port for tcp:...:0).
  const NetAddress &boundAddress() const;

  /// Live connection count (tests and the cg_net_server_connections gauge).
  size_t connectionCount() const;

private:
  struct Core;
  explicit NetServer(std::shared_ptr<Core> C);

  /// Shared with every in-flight ReplyFn: replies arriving after the
  /// server object died still find a live Core and drop cleanly.
  std::shared_ptr<Core> C;
};

} // namespace net
} // namespace compiler_gym

#endif // COMPILER_GYM_NET_NETSERVER_H
