//===- net/Socket.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace compiler_gym;
using namespace compiler_gym::net;

namespace {

Status errnoError(const std::string &What) {
  return unavailable(What + ": " + std::strerror(errno));
}

Status setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0 || ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) < 0)
    return errnoError("fcntl(O_NONBLOCK)");
  return Status::ok();
}

/// Waits for \p Events on \p Fd. Ok when ready; DeadlineExceeded on
/// timeout; Unavailable on poll error or socket error/hangup.
Status pollFor(int Fd, short Events, int TimeoutMs) {
  struct pollfd P = {};
  P.fd = Fd;
  P.events = Events;
  for (;;) {
    int N = ::poll(&P, 1, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errnoError("poll");
    }
    if (N == 0)
      return deadlineExceeded("socket not ready within " +
                              std::to_string(TimeoutMs) + "ms");
    // POLLERR/POLLHUP still allow a final read to drain buffered data and
    // observe EOF; let the caller's recv/send surface the condition.
    return Status::ok();
  }
}

StatusOr<struct sockaddr_in> tcpSockaddr(const NetAddress &Addr) {
  struct sockaddr_in Sa = {};
  Sa.sin_family = AF_INET;
  Sa.sin_port = htons(Addr.Port);
  std::string Host = Addr.Host == "localhost" ? "127.0.0.1" : Addr.Host;
  if (::inet_pton(AF_INET, Host.c_str(), &Sa.sin_addr) != 1)
    return invalidArgument("not a numeric IPv4 address: '" + Addr.Host +
                           "' (only numeric IPv4 and 'localhost' are "
                           "supported)");
  return Sa;
}

StatusOr<struct sockaddr_un> unixSockaddr(const NetAddress &Addr) {
  struct sockaddr_un Sa = {};
  Sa.sun_family = AF_UNIX;
  if (Addr.Path.empty() || Addr.Path.size() >= sizeof(Sa.sun_path))
    return invalidArgument("unix socket path empty or longer than " +
                           std::to_string(sizeof(Sa.sun_path) - 1) +
                           " bytes: '" + Addr.Path + "'");
  std::memcpy(Sa.sun_path, Addr.Path.c_str(), Addr.Path.size() + 1);
  return Sa;
}

} // namespace

StatusOr<NetAddress> NetAddress::parse(const std::string &Spec) {
  NetAddress Addr;
  if (Spec.rfind("unix:", 0) == 0) {
    Addr.Kind = Family::Unix;
    Addr.Path = Spec.substr(5);
    if (Addr.Path.empty())
      return invalidArgument("empty unix socket path in '" + Spec + "'");
    return Addr;
  }
  if (Spec.rfind("tcp:", 0) == 0) {
    Addr.Kind = Family::Tcp;
    std::string Rest = Spec.substr(4);
    size_t Colon = Rest.rfind(':');
    if (Colon == std::string::npos || Colon == 0 || Colon + 1 == Rest.size())
      return invalidArgument("expected tcp:<host>:<port> in '" + Spec + "'");
    Addr.Host = Rest.substr(0, Colon);
    std::string PortStr = Rest.substr(Colon + 1);
    long Port = 0;
    for (char C : PortStr) {
      if (C < '0' || C > '9')
        return invalidArgument("bad port '" + PortStr + "' in '" + Spec +
                               "'");
      Port = Port * 10 + (C - '0');
      if (Port > 65535)
        return invalidArgument("port out of range in '" + Spec + "'");
    }
    Addr.Port = static_cast<uint16_t>(Port);
    return Addr;
  }
  return invalidArgument("address must start with tcp: or unix: — got '" +
                         Spec + "'");
}

std::string NetAddress::str() const {
  if (Kind == Family::Unix)
    return "unix:" + Path;
  return "tcp:" + Host + ":" + std::to_string(Port);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket &&Other) noexcept
    : Fd(Other.Fd), Bound(std::move(Other.Bound)),
      UnlinkOnClose(Other.UnlinkOnClose) {
  Other.Fd = -1;
  Other.UnlinkOnClose = false;
}

Socket &Socket::operator=(Socket &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Bound = std::move(Other.Bound);
    UnlinkOnClose = Other.UnlinkOnClose;
    Other.Fd = -1;
    Other.UnlinkOnClose = false;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (UnlinkOnClose && !Bound.Path.empty()) {
    ::unlink(Bound.Path.c_str());
    UnlinkOnClose = false;
  }
}

StatusOr<Socket> Socket::connect(const NetAddress &Addr, int TimeoutMs) {
  int Family = Addr.Kind == NetAddress::Family::Tcp ? AF_INET : AF_UNIX;
  int Fd = ::socket(Family, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoError("socket");
  Socket Sock(Fd);
  CG_RETURN_IF_ERROR(setNonBlocking(Fd));

  int Rc;
  if (Addr.Kind == NetAddress::Family::Tcp) {
    CG_ASSIGN_OR_RETURN(struct sockaddr_in Sa, tcpSockaddr(Addr));
    // Step RPCs are small and latency-bound; never batch them.
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    Rc = ::connect(Fd, reinterpret_cast<struct sockaddr *>(&Sa), sizeof(Sa));
  } else {
    CG_ASSIGN_OR_RETURN(struct sockaddr_un Sa, unixSockaddr(Addr));
    Rc = ::connect(Fd, reinterpret_cast<struct sockaddr *>(&Sa), sizeof(Sa));
  }
  if (Rc < 0 && errno != EINPROGRESS)
    return errnoError("connect to " + Addr.str());
  if (Rc < 0) {
    // Non-blocking connect in flight: writability signals the outcome.
    CG_RETURN_IF_ERROR(pollFor(Fd, POLLOUT, TimeoutMs));
    int Err = 0;
    socklen_t Len = sizeof(Err);
    if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &Len) < 0)
      return errnoError("getsockopt(SO_ERROR)");
    if (Err != 0)
      return unavailable("connect to " + Addr.str() + ": " +
                         std::strerror(Err));
  }
  return std::move(Sock);
}

StatusOr<Socket> Socket::listen(const NetAddress &Addr, int Backlog) {
  int Family = Addr.Kind == NetAddress::Family::Tcp ? AF_INET : AF_UNIX;
  int Fd = ::socket(Family, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoError("socket");
  Socket Sock(Fd);
  CG_RETURN_IF_ERROR(setNonBlocking(Fd));
  Sock.Bound = Addr;

  if (Addr.Kind == NetAddress::Family::Tcp) {
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    CG_ASSIGN_OR_RETURN(struct sockaddr_in Sa, tcpSockaddr(Addr));
    if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Sa), sizeof(Sa)) < 0)
      return errnoError("bind " + Addr.str());
    // Resolve a port-0 bind to the real port for boundAddress().
    struct sockaddr_in Actual = {};
    socklen_t Len = sizeof(Actual);
    if (::getsockname(Fd, reinterpret_cast<struct sockaddr *>(&Actual),
                      &Len) == 0)
      Sock.Bound.Port = ntohs(Actual.sin_port);
  } else {
    CG_ASSIGN_OR_RETURN(struct sockaddr_un Sa, unixSockaddr(Addr));
    ::unlink(Addr.Path.c_str()); // Stale socket from a dead server.
    if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Sa), sizeof(Sa)) < 0)
      return errnoError("bind " + Addr.str());
    Sock.UnlinkOnClose = true;
  }
  if (::listen(Fd, Backlog) < 0)
    return errnoError("listen " + Addr.str());
  return std::move(Sock);
}

StatusOr<Socket> Socket::accept(int TimeoutMs) {
  for (;;) {
    int ClientFd = ::accept(Fd, nullptr, nullptr);
    if (ClientFd >= 0) {
      Socket Client(ClientFd);
      CG_RETURN_IF_ERROR(setNonBlocking(ClientFd));
      if (Bound.Kind == NetAddress::Family::Tcp) {
        int One = 1;
        ::setsockopt(ClientFd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      }
      return std::move(Client);
    }
    if (errno == EINTR)
      continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK)
      return errnoError("accept");
    CG_RETURN_IF_ERROR(pollFor(Fd, POLLIN, TimeoutMs));
  }
}

StatusOr<std::string> Socket::readSome(size_t MaxBytes, int TimeoutMs) {
  std::string Out;
  Out.resize(MaxBytes);
  for (;;) {
    ssize_t N = ::recv(Fd, &Out[0], MaxBytes, 0);
    if (N > 0) {
      Out.resize(static_cast<size_t>(N));
      return std::move(Out);
    }
    if (N == 0)
      return std::string(); // Orderly EOF.
    if (errno == EINTR)
      continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK)
      return errnoError("recv");
    CG_RETURN_IF_ERROR(pollFor(Fd, POLLIN, TimeoutMs));
  }
}

Status Socket::writeAll(const std::string &Data, int TimeoutMs) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off,
                       MSG_NOSIGNAL);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
      return errnoError("send");
    CG_RETURN_IF_ERROR(pollFor(Fd, POLLOUT, TimeoutMs));
  }
  return Status::ok();
}
