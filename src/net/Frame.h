//===- net/Frame.h - Length-prefixed wire framing ---------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-stream framing under the socket transport. TCP and Unix-domain
/// sockets deliver an undelimited byte stream; each RPC envelope
/// (service/Serialization.h) is wrapped in a fixed 16-byte header so the
/// peer can find message boundaries and reject damage before the payload
/// ever reaches the envelope decoder:
///
///   [magic u32 "CGF1"] [version u32] [length u32] [crc32 u32] [payload]
///
/// All fields little-endian, matching the envelope serialization. The
/// decoder is incremental (feed whatever the socket produced, take frames
/// as they complete) and strict: wrong magic, unknown version, a length
/// above the configured cap, or a CRC mismatch each fail with a typed
/// error kind — a framing error means the stream position is unknown, so
/// the connection must be dropped, never resynchronized by scanning.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_NET_FRAME_H
#define COMPILER_GYM_NET_FRAME_H

#include "util/Status.h"

#include <cstdint>
#include <string>

namespace compiler_gym {
namespace net {

/// "CGF1" read as a little-endian u32.
constexpr uint32_t FrameMagic = 0x31464743u;
constexpr uint32_t FrameVersion = 1;
constexpr size_t FrameHeaderBytes = 16;
/// Default payload cap. Generous for RPC envelopes (a full ProGraML graph
/// observation is a few MB) while bounding what a malicious peer can make
/// us buffer.
constexpr size_t DefaultMaxFrameBytes = 64u << 20;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of \p Size bytes at \p Data.
uint32_t crc32(const void *Data, size_t Size);

/// Wraps \p Payload in a frame header.
std::string encodeFrame(const std::string &Payload);

/// Incremental frame parser over a received byte stream.
class FrameDecoder {
public:
  enum class Result {
    NeedMore, ///< No complete frame buffered yet.
    Frame,    ///< A frame was extracted into the out-parameter.
    Error,    ///< The stream is damaged; the connection must be dropped.
  };

  /// What specifically failed, for telemetry labels and test assertions.
  enum class ErrorKind { None, BadMagic, BadVersion, Oversized, BadCrc };

  explicit FrameDecoder(size_t MaxFrameBytes = DefaultMaxFrameBytes)
      : MaxFrameBytes(MaxFrameBytes) {}

  /// Appends received bytes to the internal buffer. Cheap; parsing happens
  /// in next().
  void feed(const char *Data, size_t Size) { Buffer.append(Data, Size); }
  void feed(const std::string &Data) { feed(Data.data(), Data.size()); }

  /// Extracts the next complete frame's payload into \p Payload. After
  /// Result::Error the decoder is poisoned: every further call returns the
  /// same error (the stream position is unrecoverable).
  Result next(std::string &Payload);

  ErrorKind errorKind() const { return Kind; }
  /// Human-readable description of the framing error (empty when none).
  const std::string &errorMessage() const { return Error; }

  /// Bytes buffered but not yet consumed (bounded by MaxFrameBytes plus
  /// one read's worth of slack).
  size_t bufferedBytes() const { return Buffer.size(); }

private:
  Result fail(ErrorKind K, std::string Message);

  size_t MaxFrameBytes;
  std::string Buffer;
  ErrorKind Kind = ErrorKind::None;
  std::string Error;
};

/// Stable lowercase name of a framing error kind ("bad_magic", ...), used
/// as the "kind" label on cg_net_frame_errors_total.
const char *frameErrorKindName(FrameDecoder::ErrorKind Kind);

} // namespace net
} // namespace compiler_gym

#endif // COMPILER_GYM_NET_FRAME_H
