//===- net/SocketTransport.cpp --------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/SocketTransport.h"

#include "telemetry/MetricsRegistry.h"
#include "util/Logging.h"
#include "util/Timer.h"

#include <algorithm>
#include <thread>

using namespace compiler_gym;
using namespace compiler_gym::net;

namespace {

using telemetry::Counter;
using telemetry::MetricsRegistry;

Counter &connectsTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_net_connects_total", {},
      "Socket connections established by client transports");
  return C;
}

Counter &connectFailuresTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_net_connect_failures_total", {},
      "Failed socket dial attempts by client transports");
  return C;
}

Counter &netBytes(bool Sent) {
  static Counter &S = MetricsRegistry::global().counter(
      "cg_net_bytes_total", {{"direction", "sent"}},
      "Framed bytes over socket transports (headers included)");
  static Counter &R = MetricsRegistry::global().counter(
      "cg_net_bytes_total", {{"direction", "received"}},
      "Framed bytes over socket transports (headers included)");
  return Sent ? S : R;
}

Counter &netFrames(bool Sent) {
  static Counter &S = MetricsRegistry::global().counter(
      "cg_net_frames_total", {{"direction", "sent"}},
      "Frames over socket transports");
  static Counter &R = MetricsRegistry::global().counter(
      "cg_net_frames_total", {{"direction", "received"}},
      "Frames over socket transports");
  return Sent ? S : R;
}

} // namespace

namespace compiler_gym {
namespace net {

/// Shared with NetServer.cpp: framing damage counter, labeled by kind.
Counter &frameErrorsTotal(FrameDecoder::ErrorKind Kind) {
  static MetricsRegistry &M = MetricsRegistry::global();
  static const char *Help =
      "Framing errors that forced a connection drop, by kind";
  static Counter &Magic = M.counter("cg_net_frame_errors_total",
                                    {{"kind", "bad_magic"}}, Help);
  static Counter &Version = M.counter("cg_net_frame_errors_total",
                                      {{"kind", "bad_version"}}, Help);
  static Counter &Oversized = M.counter("cg_net_frame_errors_total",
                                        {{"kind", "oversized"}}, Help);
  static Counter &Crc = M.counter("cg_net_frame_errors_total",
                                  {{"kind", "bad_crc"}}, Help);
  static Counter &None = M.counter("cg_net_frame_errors_total",
                                   {{"kind", "none"}}, Help);
  switch (Kind) {
  case FrameDecoder::ErrorKind::BadMagic:
    return Magic;
  case FrameDecoder::ErrorKind::BadVersion:
    return Version;
  case FrameDecoder::ErrorKind::Oversized:
    return Oversized;
  case FrameDecoder::ErrorKind::BadCrc:
    return Crc;
  case FrameDecoder::ErrorKind::None:
    return None;
  }
  return None;
}

} // namespace net
} // namespace compiler_gym

SocketTransport::SocketTransport(NetAddress Addr, SocketTransportOptions Opts)
    : Addr(std::move(Addr)), Opts(Opts), Jitter(Opts.JitterSeed) {}

StatusOr<std::shared_ptr<SocketTransport>>
SocketTransport::dial(const std::string &Spec, SocketTransportOptions Opts) {
  CG_ASSIGN_OR_RETURN(NetAddress Addr, NetAddress::parse(Spec));
  return std::make_shared<SocketTransport>(std::move(Addr), Opts);
}

uint64_t SocketTransport::connectCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Connects;
}

Status SocketTransport::ensureConnected(int DeadlineMs) {
  if (Conn.valid())
    return Status::ok();
  Stopwatch Watch;
  for (;;) {
    if (FailedDials > 0) {
      // min(cap, base * 2^(fails-1)) with ±50% jitter, clipped to the
      // caller's remaining budget.
      int64_t Delay = Opts.ReconnectBackoffMs > 0 ? Opts.ReconnectBackoffMs
                                                  : 1;
      for (int I = 1; I < FailedDials && Delay < Opts.ReconnectBackoffMaxMs;
           ++I)
        Delay *= 2;
      if (Delay > Opts.ReconnectBackoffMaxMs)
        Delay = Opts.ReconnectBackoffMaxMs;
      Delay = Delay / 2 + static_cast<int64_t>(Jitter.bounded(
                              static_cast<uint64_t>(Delay) + 1));
      int64_t Remaining = DeadlineMs - static_cast<int64_t>(Watch.elapsedMs());
      if (Delay >= Remaining)
        return deadlineExceeded("no connection to " + Addr.str() +
                                " within " + std::to_string(DeadlineMs) +
                                "ms");
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
    }
    int Remaining = DeadlineMs - static_cast<int>(Watch.elapsedMs());
    if (Remaining <= 0)
      return deadlineExceeded("no connection to " + Addr.str() + " within " +
                              std::to_string(DeadlineMs) + "ms");
    StatusOr<Socket> Dialed =
        Socket::connect(Addr, std::min(Remaining, Opts.ConnectTimeoutMs));
    if (Dialed.isOk()) {
      Conn = std::move(*Dialed);
      ++Connects;
      connectsTotal().inc();
      FailedDials = 0;
      return Status::ok();
    }
    ++FailedDials;
    connectFailuresTotal().inc();
    CG_LOG_INFO_FOR("net", Connects)
        << "dial " << Addr.str() << " failed (attempt " << FailedDials
        << "): " << Dialed.status().message();
  }
}

StatusOr<std::string> SocketTransport::exchange(
    const std::string &RequestBytes, int TimeoutMs) {
  Stopwatch Watch;
  std::string Frame = encodeFrame(RequestBytes);
  Status Sent = Conn.writeAll(Frame, TimeoutMs);
  if (!Sent.isOk()) {
    Conn.close();
    return Sent;
  }
  netBytes(true).inc(Frame.size());
  netFrames(true).inc();

  FrameDecoder Decoder(Opts.MaxFrameBytes);
  std::string Payload;
  for (;;) {
    switch (Decoder.next(Payload)) {
    case FrameDecoder::Result::Frame:
      netFrames(false).inc();
      return std::move(Payload);
    case FrameDecoder::Result::Error:
      frameErrorsTotal(Decoder.errorKind()).inc();
      Conn.close();
      return unavailable("framing error from " + Addr.str() + ": " +
                         Decoder.errorMessage());
    case FrameDecoder::Result::NeedMore:
      break;
    }
    int Remaining = TimeoutMs - static_cast<int>(Watch.elapsedMs());
    if (Remaining <= 0) {
      // The reply may still arrive later; with no way to correlate it to
      // a request, the stream is unusable — drop it.
      Conn.close();
      return deadlineExceeded("no reply from " + Addr.str() + " within " +
                              std::to_string(TimeoutMs) + "ms");
    }
    StatusOr<std::string> Chunk = Conn.readSome(64 * 1024, Remaining);
    if (!Chunk.isOk()) {
      Conn.close();
      return Chunk.status();
    }
    if (Chunk->empty()) {
      Conn.close();
      return unavailable("connection closed by " + Addr.str());
    }
    netBytes(false).inc(Chunk->size());
    Decoder.feed(*Chunk);
  }
}

StatusOr<std::string> SocketTransport::roundTrip(
    const std::string &RequestBytes, int TimeoutMs) {
  std::lock_guard<std::mutex> Lock(Mutex);
  CG_RETURN_IF_ERROR(ensureConnected(TimeoutMs));
  return exchange(RequestBytes, TimeoutMs);
}
