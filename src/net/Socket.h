//===- net/Socket.h - RAII sockets with poll timeouts -----------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin POSIX socket layer for the cross-process transport: address
/// parsing ("tcp:host:port" / "unix:/path"), and an RAII, movable Socket
/// wrapping a non-blocking fd with poll-based connect / accept / read /
/// write timeouts. Status-based like the rest of the codebase — no
/// exceptions, no silent partial writes. Everything above (framing,
/// transport, server) treats this as the only place that touches errno.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_NET_SOCKET_H
#define COMPILER_GYM_NET_SOCKET_H

#include "util/Status.h"

#include <cstdint>
#include <string>

namespace compiler_gym {
namespace net {

/// A parsed endpoint. Two families: TCP over IPv4 ("tcp:127.0.0.1:4242",
/// host "localhost" accepted as loopback shorthand; port 0 lets the OS
/// pick and is resolved by Socket::listen) and Unix-domain stream sockets
/// ("unix:/tmp/cg.sock").
struct NetAddress {
  enum class Family { Tcp, Unix };

  Family Kind = Family::Tcp;
  std::string Host; ///< Numeric IPv4 or "localhost" (TCP only).
  uint16_t Port = 0;
  std::string Path; ///< Filesystem path (Unix only).

  /// Parses "tcp:<host>:<port>" or "unix:<path>".
  static StatusOr<NetAddress> parse(const std::string &Spec);

  /// Canonical spec string ("tcp:127.0.0.1:4242").
  std::string str() const;
};

/// RAII non-blocking socket. Move-only; the destructor closes the fd (and
/// unlinks the bound Unix socket path for listeners).
class Socket {
public:
  Socket() = default;
  ~Socket();
  Socket(Socket &&Other) noexcept;
  Socket &operator=(Socket &&Other) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  /// Dials \p Addr, waiting up to \p TimeoutMs for the connection to
  /// establish. Unavailable on refusal/failure, DeadlineExceeded on
  /// timeout.
  static StatusOr<Socket> connect(const NetAddress &Addr, int TimeoutMs);

  /// Binds and listens on \p Addr. For Unix sockets a stale path is
  /// unlinked first; for TCP port 0 the bound address (with the OS-chosen
  /// port) is available from boundAddress().
  static StatusOr<Socket> listen(const NetAddress &Addr, int Backlog = 64);

  /// Accepts one connection, waiting up to \p TimeoutMs (-1 = forever;
  /// servers normally learn readiness from their own poll loop and pass 0).
  StatusOr<Socket> accept(int TimeoutMs);

  /// Reads whatever is available (at most \p MaxBytes), waiting up to
  /// \p TimeoutMs for the first byte. Returns the bytes read; an empty
  /// string means orderly EOF. DeadlineExceeded on timeout, Unavailable on
  /// connection error.
  StatusOr<std::string> readSome(size_t MaxBytes, int TimeoutMs);

  /// Writes all of \p Data, waiting up to \p TimeoutMs for writability
  /// whenever the kernel buffer fills. Short writes are resumed; SIGPIPE
  /// is suppressed.
  Status writeAll(const std::string &Data, int TimeoutMs);

  /// The address this listener is bound to, with the real port filled in
  /// (TCP port 0 resolution).
  const NetAddress &boundAddress() const { return Bound; }

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  void close();

private:
  explicit Socket(int Fd) : Fd(Fd) {}

  int Fd = -1;
  NetAddress Bound;
  bool UnlinkOnClose = false; ///< Listener owns its Unix socket path.
};

} // namespace net
} // namespace compiler_gym

#endif // COMPILER_GYM_NET_SOCKET_H
