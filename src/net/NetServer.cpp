//===- net/NetServer.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/NetServer.h"

#include "telemetry/MetricsRegistry.h"
#include "util/Logging.h"
#include "util/ThreadPool.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <mutex>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace compiler_gym;
using namespace compiler_gym::net;

namespace compiler_gym {
namespace net {
// Defined in SocketTransport.cpp; shared so client and server framing
// damage lands in one metric family.
telemetry::Counter &frameErrorsTotal(FrameDecoder::ErrorKind Kind);
} // namespace net
} // namespace compiler_gym

namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::MetricsRegistry;

Counter &acceptsTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_net_server_accepts_total", {}, "Connections accepted by servers");
  return C;
}

Counter &requestsTotal() {
  static Counter &C = MetricsRegistry::global().counter(
      "cg_net_server_requests_total", {},
      "Request frames dispatched to server handlers");
  return C;
}

Gauge &connectionsGauge() {
  static Gauge &G = MetricsRegistry::global().gauge(
      "cg_net_server_connections", {}, "Currently connected clients");
  return G;
}

} // namespace

struct NetServer::Core : std::enable_shared_from_this<NetServer::Core> {
  Core(NetServerOptions Opts, AsyncHandler Handler)
      : Opts(Opts), Handler(std::move(Handler)),
        Pool(static_cast<size_t>(Opts.Threads > 0 ? Opts.Threads : 1)) {}

  ~Core() {
    if (WakeRead >= 0)
      ::close(WakeRead);
    if (WakeWrite >= 0)
      ::close(WakeWrite);
  }

  /// One client connection. InFlight gates reading: while a request is
  /// being handled the poll loop ignores the socket's input, enforcing
  /// request→reply alternation per connection.
  struct Conn {
    Socket Sock;
    FrameDecoder Decoder;
    std::string Outbox;
    bool InFlight = false;

    explicit Conn(Socket S, size_t MaxFrameBytes)
        : Sock(std::move(S)), Decoder(MaxFrameBytes) {}
  };

  NetServerOptions Opts;
  AsyncHandler Handler;
  Socket Listener;
  int WakeRead = -1, WakeWrite = -1;
  ThreadPool Pool;
  std::thread Poller;

  mutable std::mutex Mutex;
  bool Stopping = false;
  uint64_t NextConnId = 1;
  std::map<uint64_t, std::unique_ptr<Conn>> Conns;

  Status start(const NetAddress &Addr) {
    CG_ASSIGN_OR_RETURN(Listener, Socket::listen(Addr));
    int Pipe[2];
    if (::pipe(Pipe) != 0)
      return unavailable(std::string("pipe: ") + std::strerror(errno));
    WakeRead = Pipe[0];
    WakeWrite = Pipe[1];
    // Both ends non-blocking: the poll loop drains the read end without
    // hanging, and wake() never blocks on a full pipe.
    ::fcntl(WakeRead, F_SETFL, O_NONBLOCK);
    ::fcntl(WakeWrite, F_SETFL, O_NONBLOCK);
    Poller = std::thread([Self = shared_from_this()] { Self->pollLoop(); });
    return Status::ok();
  }

  void wake() {
    char B = 1;
    // Best-effort: a full pipe already guarantees a pending wakeup.
    (void)!::write(WakeWrite, &B, 1);
  }

  void stop() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Stopping)
        return;
      Stopping = true;
    }
    wake();
    if (Poller.joinable())
      Poller.join();
    // Drain handler tasks while we still hold a Core reference, so the
    // last release never happens on a pool worker (which would make the
    // Core destructor join the pool from inside it).
    Pool.wait();
    std::lock_guard<std::mutex> Lock(Mutex);
    connectionsGauge().add(-static_cast<int64_t>(Conns.size()));
    Conns.clear();
    Listener.close();
  }

  void dropConn(uint64_t Id) {
    if (Conns.erase(Id))
      connectionsGauge().add(-1);
  }

  /// Queues \p Bytes as a reply frame on connection \p Id and re-arms it
  /// for reading. Called from any thread (worker, gateway dispatcher).
  void reply(uint64_t Id, std::string Bytes) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Stopping)
        return;
      auto It = Conns.find(Id);
      if (It == Conns.end())
        return; // Connection died while the handler ran.
      It->second->Outbox += encodeFrame(Bytes);
      It->second->InFlight = false;
    }
    wake();
  }

  /// Non-blocking drain of a connection's outbox. Caller holds Mutex.
  /// False when the connection failed and must be dropped.
  bool flushOutbox(Conn &C) {
    while (!C.Outbox.empty()) {
      ssize_t N = ::send(C.Sock.fd(), C.Outbox.data(), C.Outbox.size(),
                         MSG_NOSIGNAL);
      if (N > 0) {
        C.Outbox.erase(0, static_cast<size_t>(N));
        continue;
      }
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return true; // Kernel buffer full; poll will retry on POLLOUT.
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    return true;
  }

  /// Hands one decoded request to the handler on the pool. Caller holds
  /// Mutex; the connection is already marked InFlight.
  void dispatch(uint64_t Id, std::string Payload) {
    requestsTotal().inc();
    auto Done = std::make_shared<std::atomic<bool>>(false);
    ReplyFn Send = [Self = shared_from_this(), Id, Done](std::string Bytes) {
      if (Done->exchange(true))
        return; // At-most-once reply.
      Self->reply(Id, std::move(Bytes));
    };
    Pool.submit([Self = shared_from_this(), Payload = std::move(Payload),
                 Send = std::move(Send)]() mutable {
      Self->Handler(std::move(Payload), std::move(Send));
    });
  }

  /// Reads whatever the socket has, feeds the decoder, and dispatches at
  /// most one request. Caller holds Mutex. False = drop the connection.
  bool pumpConn(uint64_t Id, Conn &C, bool SocketReadable) {
    if (SocketReadable) {
      char Buf[64 * 1024];
      for (;;) {
        ssize_t N = ::recv(C.Sock.fd(), Buf, sizeof(Buf), 0);
        if (N > 0) {
          C.Decoder.feed(Buf, static_cast<size_t>(N));
          if (static_cast<size_t>(N) < sizeof(Buf))
            break;
          continue;
        }
        if (N == 0)
          return false; // EOF.
        if (errno == EINTR)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          break;
        return false;
      }
    }
    if (C.InFlight)
      return true; // Buffered bytes wait until the reply goes out.
    std::string Payload;
    switch (C.Decoder.next(Payload)) {
    case FrameDecoder::Result::Frame:
      C.InFlight = true;
      dispatch(Id, std::move(Payload));
      return true;
    case FrameDecoder::Result::Error:
      frameErrorsTotal(C.Decoder.errorKind()).inc();
      CG_LOG_INFO_FOR("net", Id)
          << "dropping connection: " << C.Decoder.errorMessage();
      return false;
    case FrameDecoder::Result::NeedMore:
      return true;
    }
    return true;
  }

  void acceptPending() {
    for (;;) {
      StatusOr<Socket> Client = Listener.accept(/*TimeoutMs=*/0);
      if (!Client.isOk())
        return; // DeadlineExceeded = nothing pending; errors = try later.
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Conns.size() >= Opts.MaxConnections) {
        // Refuse by closing: the client sees connection loss and backs
        // off through its reconnect policy.
        continue;
      }
      acceptsTotal().inc();
      connectionsGauge().add(1);
      uint64_t Id = NextConnId++;
      Conns.emplace(Id, std::make_unique<Conn>(std::move(*Client),
                                               Opts.MaxFrameBytes));
    }
  }

  void pollLoop() {
    std::vector<struct pollfd> Fds;
    std::vector<uint64_t> FdConn; // Parallel: Conns id per pollfd (0 = n/a).
    for (;;) {
      Fds.clear();
      FdConn.clear();
      Fds.push_back({WakeRead, POLLIN, 0});
      FdConn.push_back(0);
      Fds.push_back({Listener.fd(), POLLIN, 0});
      FdConn.push_back(0);
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        if (Stopping)
          return;
        for (auto &[Id, C] : Conns) {
          short Events = 0;
          if (!C->InFlight)
            Events |= POLLIN;
          if (!C->Outbox.empty())
            Events |= POLLOUT;
          if (Events == 0)
            continue;
          Fds.push_back({C->Sock.fd(), Events, 0});
          FdConn.push_back(Id);
        }
      }
      int N = ::poll(Fds.data(), Fds.size(), /*timeout=*/1000);
      if (N < 0 && errno != EINTR)
        return;
      if (Fds[0].revents & POLLIN) {
        char Buf[256];
        while (::read(WakeRead, Buf, sizeof(Buf)) > 0)
          ; // Wake pipe is not O_NONBLOCK-critical: drain what's there.
      }
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        if (Stopping)
          return;
      }
      if (Fds[1].revents & POLLIN)
        acceptPending();
      std::lock_guard<std::mutex> Lock(Mutex);
      for (size_t I = 2; I < Fds.size(); ++I) {
        auto It = Conns.find(FdConn[I]);
        if (It == Conns.end())
          continue;
        Conn &C = *It->second;
        bool Alive = true;
        if (Fds[I].revents & POLLOUT)
          Alive = flushOutbox(C);
        // Error/hangup funnels through the read path: recv drains any
        // final bytes and then reports EOF or the socket error.
        if (Alive)
          Alive = pumpConn(FdConn[I], C,
                           (Fds[I].revents &
                            (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0);
        if (!Alive)
          dropConn(FdConn[I]);
      }
      // A reply may have re-armed a connection whose next request is
      // already buffered; give every idle connection a readless pump so
      // pipelined frames are not stranded until new bytes arrive.
      for (auto It = Conns.begin(); It != Conns.end();) {
        uint64_t Id = It->first;
        Conn &C = *It->second;
        ++It;
        if (!C.InFlight && C.Decoder.bufferedBytes() >= FrameHeaderBytes)
          if (!pumpConn(Id, C, /*SocketReadable=*/false))
            dropConn(Id);
      }
    }
  }
};

NetServer::NetServer(std::shared_ptr<Core> C) : C(std::move(C)) {}

NetServer::~NetServer() { C->stop(); }

const NetAddress &NetServer::boundAddress() const {
  return C->Listener.boundAddress();
}

size_t NetServer::connectionCount() const {
  std::lock_guard<std::mutex> Lock(C->Mutex);
  return C->Conns.size();
}

StatusOr<std::unique_ptr<NetServer>>
NetServer::serve(const NetAddress &Addr, AsyncHandler Handler,
                 NetServerOptions Opts) {
  auto C = std::make_shared<Core>(Opts, std::move(Handler));
  CG_RETURN_IF_ERROR(C->start(Addr));
  return std::unique_ptr<NetServer>(new NetServer(std::move(C)));
}

StatusOr<std::unique_ptr<NetServer>>
NetServer::serveSync(const NetAddress &Addr,
                     std::function<std::string(const std::string &)> Handler,
                     NetServerOptions Opts) {
  return serve(
      Addr,
      [Handler = std::move(Handler)](std::string Req, ReplyFn Reply) {
        Reply(Handler(Req));
      },
      Opts);
}
