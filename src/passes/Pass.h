//===- passes/Pass.h - Optimization pass interface --------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization pass interface. Passes transform a Module in place
/// under a shared AnalysisManager: they consume cached analyses (dominator
/// tree, loop info) instead of recomputing them, and report a
/// PreservedAnalyses set so only what a transform actually clobbered is
/// invalidated — the unit of action in the LLVM phase-ordering
/// environment. Function passes get a convenience subclass that handles
/// per-function invalidation.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_PASSES_PASS_H
#define COMPILER_GYM_PASSES_PASS_H

#include "ir/Module.h"
#include "passes/AnalysisManager.h"

#include <memory>
#include <string>

namespace compiler_gym {
namespace passes {

/// Base class for all transforms.
class Pass {
public:
  virtual ~Pass();

  /// The registry name (stable, used as the environment action name).
  virtual std::string name() const = 0;

  /// AnalysisKind mask of analyses this pass consumes. Informational (the
  /// manager computes lazily); lets tooling pre-warm or audit pipelines.
  virtual unsigned requiredAnalyses() const { return 0; }

  /// Applies the transform. Implementations must report invalidation to
  /// \p AM at the finest granularity available — FunctionPass does this per
  /// changed function; module-scoped passes invalidate module-wide and
  /// call AM.functionErased() before deleting a function.
  virtual PassResult run(ir::Module &M, AnalysisManager &AM) = 0;

  /// Legacy convenience: runs under a throwaway AnalysisManager and
  /// returns only the changed bit.
  bool runOnModule(ir::Module &M);

  /// Passes that intentionally exhibit nondeterminism (for the
  /// reproducibility-validation machinery) override this to return false.
  virtual bool isDeterministic() const { return true; }
};

/// Convenience base: run per function. Invalidates each changed function
/// in the AnalysisManager with the PreservedAnalyses its transform
/// reported, so an action that only touches one function leaves every
/// other function's cached analyses (and feature vectors) warm.
class FunctionPass : public Pass {
public:
  PassResult run(ir::Module &M, AnalysisManager &AM) override;

  /// Applies the transform to one function.
  virtual PassResult runOnFunction(ir::Function &F, AnalysisManager &AM) = 0;
};

} // namespace passes
} // namespace compiler_gym

#endif // COMPILER_GYM_PASSES_PASS_H
