//===- passes/Pass.h - Optimization pass interface --------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization pass interface. Passes transform a Module in place and
/// report whether anything changed — the unit of action in the LLVM
/// phase-ordering environment. Function passes get a convenience subclass.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_PASSES_PASS_H
#define COMPILER_GYM_PASSES_PASS_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace compiler_gym {
namespace passes {

/// Base class for all transforms.
class Pass {
public:
  virtual ~Pass();

  /// The registry name (stable, used as the environment action name).
  virtual std::string name() const = 0;

  /// Applies the transform; returns true if the module changed.
  virtual bool runOnModule(ir::Module &M) = 0;

  /// Passes that intentionally exhibit nondeterminism (for the
  /// reproducibility-validation machinery) override this to return false.
  virtual bool isDeterministic() const { return true; }
};

/// Convenience base: run per function.
class FunctionPass : public Pass {
public:
  bool runOnModule(ir::Module &M) override;

  /// Applies the transform to one function; returns true on change.
  virtual bool runOnFunction(ir::Function &F) = 0;
};

} // namespace passes
} // namespace compiler_gym

#endif // COMPILER_GYM_PASSES_PASS_H
