//===- passes/Loops.cpp - Loop transforms ----------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop passes. loop-simplify creates preheaders; licm requires them (a
/// real pass-ordering interaction, as in LLVM); loop-unroll fully unrolls
/// single-block counted loops; loop-delete removes side-effect-free loops
/// whose values are unused.
///
//===----------------------------------------------------------------------===//

#include "passes/Transforms.h"
#include "passes/Utils.h"

#include "ir/Dominators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::passes;
using namespace compiler_gym::ir;

namespace {

/// Returns the preheader of \p Loop: the unique out-of-loop predecessor of
/// the header, whose only successor is the header. nullptr if absent.
BasicBlock *findPreheader(const NaturalLoop &Loop) {
  BasicBlock *Candidate = nullptr;
  for (BasicBlock *Pred : Loop.Header->predecessors()) {
    if (Loop.contains(Pred))
      continue;
    if (Candidate)
      return nullptr; // Multiple outside preds.
    Candidate = Pred;
  }
  if (!Candidate)
    return nullptr;
  std::vector<BasicBlock *> Succs = Candidate->successors();
  std::unordered_set<BasicBlock *> Unique(Succs.begin(), Succs.end());
  if (Unique.size() != 1)
    return nullptr;
  return Candidate;
}

/// Creates preheaders for loops that lack one.
class LoopSimplifyPass : public FunctionPass {
public:
  std::string name() const override { return "loop-simplify"; }

  unsigned requiredAnalyses() const override { return AK_DomTree | AK_Loops; }

  PassResult runOnFunction(Function &F, AnalysisManager &AM) override {
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      const std::vector<NaturalLoop> &Loops = AM.loops(F);
      for (const NaturalLoop &Loop : Loops) {
        if (findPreheader(Loop))
          continue;
        if (Loop.Header == F.entry())
          continue; // Entry cannot have a preheader inserted before it.
        if (insertPreheader(F, Loop)) {
          // CFG changed: Loops is now stale — drop it and break out so the
          // next round re-discovers from fresh analyses.
          AM.invalidate(F, PreservedAnalyses::none());
          LocalChange = Changed = true;
          break;
        }
      }
    }
    // invalidate(F, none()) already ran at every CFG edit and the final
    // no-change round refetched fresh analyses: they are valid for the
    // next pass (licm), so suppress the end-of-run re-invalidation.
    PassResult R = PassResult::make(Changed, PreservedAnalyses::none());
    R.InvalidationApplied = true;
    return R;
  }

private:
  static bool insertPreheader(Function &F, const NaturalLoop &Loop) {
    BasicBlock *Header = Loop.Header;
    std::vector<BasicBlock *> OutsidePreds;
    for (BasicBlock *Pred : Header->predecessors())
      if (!Loop.contains(Pred))
        OutsidePreds.push_back(Pred);
    if (OutsidePreds.empty())
      return false; // Unreachable loop; nothing to do.

    BasicBlock *PH = F.createBlock(Header->name() + ".preheader");

    // Each header phi splits: outside incoming move to a new phi in PH.
    for (size_t PhiIdx = 0; PhiIdx < Header->firstNonPhi(); ++PhiIdx) {
      Instruction *Phi = Header->instructions()[PhiIdx].get();
      auto NewPhi = std::make_unique<Instruction>(Opcode::Phi, Phi->type());
      Instruction *PHPhi = nullptr;
      std::vector<std::pair<Value *, BasicBlock *>> Outside;
      for (unsigned K = 0; K < Phi->numIncoming();) {
        if (!Loop.contains(Phi->incomingBlock(K))) {
          Outside.emplace_back(Phi->incomingValue(K), Phi->incomingBlock(K));
          Phi->removeIncoming(K);
        } else {
          ++K;
        }
      }
      if (Outside.size() == 1) {
        // Single outside edge: no phi needed in the preheader.
        Phi->addIncoming(Outside[0].first, PH);
        continue;
      }
      PHPhi = PH->append(std::move(NewPhi));
      for (auto &[V, BB] : Outside)
        PHPhi->addIncoming(V, BB);
      Phi->addIncoming(PHPhi, PH);
    }

    auto Br = std::make_unique<Instruction>(Opcode::Br, Type::Void,
                                            std::vector<Value *>{Header});
    PH->append(std::move(Br));
    for (BasicBlock *Pred : OutsidePreds)
      Pred->terminator()->replaceSuccessor(Header, PH);
    return true;
  }
};

/// Hoists loop-invariant pure instructions into the preheader. The
/// aggressive variant also hoists loads out of loops that contain no
/// stores or calls.
class LicmPass : public FunctionPass {
public:
  explicit LicmPass(bool HoistLoads) : HoistLoads(HoistLoads) {}

  std::string name() const override {
    return HoistLoads ? "licm-promote" : "licm";
  }

  unsigned requiredAnalyses() const override { return AK_DomTree | AK_Loops; }

  PassResult runOnFunction(Function &F, AnalysisManager &AM) override {
    const std::vector<NaturalLoop> &Loops = AM.loops(F);
    bool Changed = false;
    for (const NaturalLoop &Loop : Loops) {
      BasicBlock *PH = findPreheader(Loop);
      if (!PH)
        continue; // loop-simplify has not run: a real ordering dependency.

      bool LoopHasMemEffects = false;
      for (BasicBlock *BB : Loop.Blocks)
        for (const auto &I : BB->instructions())
          if (I->opcode() == Opcode::Store || I->opcode() == Opcode::Call)
            LoopHasMemEffects = true;

      // Values defined inside the loop.
      std::unordered_set<const Value *> InLoop;
      for (BasicBlock *BB : Loop.Blocks)
        for (const auto &I : BB->instructions())
          InLoop.insert(I.get());

      bool LocalChange = true;
      while (LocalChange) {
        LocalChange = false;
        for (BasicBlock *BB : Loop.Blocks) {
          for (size_t I = 0; I < BB->size(); ++I) {
            Instruction *Inst = BB->instructions()[I].get();
            // Loads are only hoisted from effect-free loops and when the
            // address is trivially in-bounds (a global or alloca base), so
            // speculation cannot introduce a trap.
            bool SafeLoad = HoistLoads && Inst->opcode() == Opcode::Load &&
                            !LoopHasMemEffects &&
                            (isa<GlobalVariable>(Inst->operand(0)) ||
                             (isa<Instruction>(Inst->operand(0)) &&
                              cast<Instruction>(Inst->operand(0))->opcode() ==
                                  Opcode::Alloca));
            bool Hoistable = Inst->isPure() || SafeLoad;
            if (!Hoistable || Inst->isTerminator())
              continue;
            bool Invariant = true;
            for (const Value *Op : Inst->operands())
              if (InLoop.count(Op))
                Invariant = false;
            if (!Invariant)
              continue;
            // Division can trap; hoisting may introduce a trap on paths
            // that never executed it. Only hoist trapping ops when the
            // divisor is a non-zero constant.
            if (Inst->opcode() == Opcode::SDiv ||
                Inst->opcode() == Opcode::SRem) {
              const auto *Divisor = dyn_cast<Constant>(Inst->operand(1));
              if (!Divisor || Divisor->isZero())
                continue;
            }
            std::unique_ptr<Instruction> Owned = BB->detach(I);
            --I;
            Instruction *Raw = Owned.get();
            Owned->setParent(PH);
            PH->insert(PH->size() - 1, std::move(Owned));
            InLoop.erase(Raw);
            LocalChange = Changed = true;
          }
        }
      }
    }
    // Hoisting moves instructions along existing edges; the block graph —
    // and therefore the cached loops just iterated — stay valid.
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }

private:
  bool HoistLoads;
};

/// Fully unrolls single-block counted loops with a constant trip count of
/// at most MaxTripCount iterations.
class LoopUnrollPass : public FunctionPass {
public:
  explicit LoopUnrollPass(unsigned MaxTripCount)
      : MaxTripCount(MaxTripCount) {}

  std::string name() const override {
    return "loop-unroll<" + std::to_string(MaxTripCount) + ">";
  }

  unsigned requiredAnalyses() const override { return AK_DomTree | AK_Loops; }

  PassResult runOnFunction(Function &F, AnalysisManager &AM) override {
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      const std::vector<NaturalLoop> &Loops = AM.loops(F);
      for (const NaturalLoop &Loop : Loops) {
        if (Loop.Blocks.size() != 1)
          continue; // Only self-loop blocks (rotated form).
        if (tryUnroll(F, Loop)) {
          AM.invalidate(F, PreservedAnalyses::none());
          LocalChange = Changed = true;
          break;
        }
      }
    }
    // As in loop-simplify: mid-run invalidation + final-round refetch
    // leave valid cached analyses behind.
    PassResult R = PassResult::make(Changed, PreservedAnalyses::none());
    R.InvalidationApplied = true;
    return R;
  }

private:
  bool tryUnroll(Function &F, const NaturalLoop &Loop) {
    BasicBlock *B = Loop.Header;
    BasicBlock *PH = findPreheader(Loop);
    if (!PH)
      return false;
    Instruction *Term = B->terminator();
    if (!Term || Term->opcode() != Opcode::CondBr)
      return false;
    auto *TrueBB = cast<BasicBlock>(Term->operand(1));
    auto *FalseBB = cast<BasicBlock>(Term->operand(2));
    if (TrueBB == FalseBB)
      return false;
    BasicBlock *Exit = (TrueBB == B) ? FalseBB : TrueBB;
    bool ContinueOnTrue = TrueBB == B;
    if (Exit == B)
      return false;

    // Collect phis: each must have exactly two incoming (PH and B).
    std::vector<Instruction *> Phis;
    for (size_t I = 0; I < B->firstNonPhi(); ++I)
      Phis.push_back(B->instructions()[I].get());
    std::unordered_map<Instruction *, Value *> Init, Next;
    for (Instruction *Phi : Phis) {
      if (Phi->numIncoming() != 2)
        return false;
      for (unsigned K = 0; K < 2; ++K) {
        if (Phi->incomingBlock(K) == PH)
          Init[Phi] = Phi->incomingValue(K);
        else if (Phi->incomingBlock(K) == B)
          Next[Phi] = Phi->incomingValue(K);
        else
          return false;
      }
      if (!Init.count(Phi) || !Next.count(Phi))
        return false;
    }

    // Simulate the loop over constants to find the trip count. All phis
    // must start from constants and every instruction must fold.
    uint64_t Trip = 0;
    if (!computeTripCount(B, Phis, Init, Next, ContinueOnTrue, Trip))
      return false;
    if (Trip == 0 || Trip > MaxTripCount)
      return false;

    unroll(F, B, PH, Exit, Phis, Init, Next, ContinueOnTrue,
           static_cast<unsigned>(Trip));
    return true;
  }

  /// Abstractly executes the loop body with constant phi values. Returns
  /// false if anything does not fold or the loop fails to exit within
  /// MaxTripCount+1 iterations.
  bool computeTripCount(BasicBlock *B, const std::vector<Instruction *> &Phis,
                        std::unordered_map<Instruction *, Value *> &Init,
                        std::unordered_map<Instruction *, Value *> &Next,
                        bool ContinueOnTrue, uint64_t &TripOut) {
    Module &M = *B->parent()->parent();
    std::unordered_map<const Value *, Constant *> Env;
    for (Instruction *Phi : Phis) {
      auto *C = dyn_cast<Constant>(Init.at(Phi));
      if (!C)
        return false;
      Env[Phi] = C;
    }
    Instruction *Term = B->terminator();
    auto evalConst = [&](const Value *V) -> Constant * {
      if (auto *C = dyn_cast<Constant>(const_cast<Value *>(V)))
        return C;
      auto It = Env.find(V);
      return It == Env.end() ? nullptr : It->second;
    };

    for (uint64_t Iter = 0; Iter <= MaxTripCount; ++Iter) {
      // Evaluate body instructions. Values that do not fold (loads, calls,
      // geps on globals, ...) are simply "unknown"; we bail out only when
      // an unknown value feeds the exit condition or a phi update.
      for (size_t I = B->firstNonPhi(); I + 1 < B->size(); ++I) {
        Instruction *Inst = B->instructions()[I].get();
        if (!Inst->isPure())
          continue; // Unknown result (and effects are replicated anyway).
        std::vector<Value *> ConstOps;
        bool AllConst = true;
        for (const Value *Op : Inst->operands()) {
          Constant *C = evalConst(Op);
          if (!C) {
            AllConst = false;
            break;
          }
          ConstOps.push_back(C);
        }
        if (!AllConst) {
          Env.erase(Inst); // Stale values from earlier iterations are wrong.
          continue;
        }
        Instruction Temp(Inst->opcode(), Inst->type(), std::move(ConstOps));
        Temp.setPred(Inst->pred());
        if (Constant *Folded = foldConstant(Temp, M))
          Env[Inst] = Folded;
        else
          Env.erase(Inst); // E.g. division by zero this iteration.
      }
      Constant *Cond = evalConst(Term->operand(0));
      if (!Cond)
        return false;
      bool Continue = ContinueOnTrue ? Cond->intValue() != 0
                                     : Cond->intValue() == 0;
      if (!Continue) {
        TripOut = Iter + 1; // Body ran Iter+1 times.
        return true;
      }
      // Advance phis.
      std::unordered_map<const Value *, Constant *> NewEnv;
      for (Instruction *Phi : Phis) {
        Constant *C = evalConst(Next.at(Phi));
        if (!C)
          return false;
        NewEnv[Phi] = C;
      }
      for (auto &[Phi, C] : NewEnv)
        Env[Phi] = C;
    }
    return false; // Did not exit within the threshold.
  }

  void unroll(Function &F, BasicBlock *B, BasicBlock *PH, BasicBlock *Exit,
              const std::vector<Instruction *> &Phis,
              std::unordered_map<Instruction *, Value *> &Init,
              std::unordered_map<Instruction *, Value *> &Next,
              bool ContinueOnTrue, unsigned Trip) {
    // Current SSA value for each phi, starting from the preheader inputs.
    std::unordered_map<const Value *, Value *> PhiVal;
    for (Instruction *Phi : Phis)
      PhiVal[Phi] = Init.at(Phi);

    std::vector<BasicBlock *> Copies;
    std::unordered_map<const Value *, Value *> LastMap;

    for (unsigned Iter = 0; Iter < Trip; ++Iter) {
      BasicBlock *Copy =
          F.createBlock(B->name() + ".unroll" + std::to_string(Iter));
      Copies.push_back(Copy);
      std::unordered_map<const Value *, Value *> Map = PhiVal;
      for (size_t I = B->firstNonPhi(); I + 1 < B->size(); ++I) {
        Instruction *Inst = B->instructions()[I].get();
        auto Clone = std::make_unique<Instruction>(Inst->opcode(),
                                                   Inst->type());
        Clone->setPred(Inst->pred());
        Clone->setAllocaWords(Inst->allocaWords());
        for (Value *Op : Inst->operands()) {
          auto It = Map.find(Op);
          Clone->operands().push_back(It == Map.end() ? Op : It->second);
        }
        Map[Inst] = Copy->append(std::move(Clone));
      }
      // Advance the phi values through the latch edge.
      std::unordered_map<const Value *, Value *> NewPhiVal;
      for (Instruction *Phi : Phis) {
        Value *N = Next.at(Phi);
        auto It = Map.find(N);
        NewPhiVal[Phi] = It == Map.end() ? N : It->second;
      }
      PhiVal = std::move(NewPhiVal);
      LastMap = std::move(Map);
    }

    // Chain the copies: PH -> copy0 -> ... -> copyN-1 -> Exit.
    PH->terminator()->replaceSuccessor(B, Copies.front());
    for (unsigned Iter = 0; Iter < Trip; ++Iter) {
      BasicBlock *To = (Iter + 1 < Trip) ? Copies[Iter + 1] : Exit;
      auto Br = std::make_unique<Instruction>(Opcode::Br, Type::Void,
                                              std::vector<Value *>{To});
      Copies[Iter]->append(std::move(Br));
    }

    // Rewire the world outside the loop:
    //  * uses of B's phis become the final phi values;
    //  * uses of B's body instructions become the last copy's clones;
    //  * Exit's phis see the last copy as predecessor instead of B.
    for (Instruction *Phi : Phis)
      F.replaceAllUsesWith(Phi, PhiVal.at(Phi));
    for (size_t I = B->firstNonPhi(); I + 1 < B->size(); ++I) {
      Instruction *Inst = B->instructions()[I].get();
      auto It = LastMap.find(Inst);
      if (It != LastMap.end() && F.hasUses(Inst))
        F.replaceAllUsesWith(Inst, It->second);
    }
    replacePhiIncomingBlock(*Exit, B, Copies.back());

    // B is now unreachable; its self-edges vanish with it.
    // Remove B's instructions' references then the block.
    while (!B->empty())
      B->erase(B->size() - 1);
    F.eraseBlock(B);
  }

  unsigned MaxTripCount;
};

/// Deletes loops with no side effects whose values are unused outside.
class LoopDeletePass : public FunctionPass {
public:
  std::string name() const override { return "loop-delete"; }

  unsigned requiredAnalyses() const override { return AK_DomTree | AK_Loops; }

  PassResult runOnFunction(Function &F, AnalysisManager &AM) override {
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      const std::vector<NaturalLoop> &Loops = AM.loops(F);
      for (const NaturalLoop &Loop : Loops) {
        if (tryDelete(F, Loop)) {
          AM.invalidate(F, PreservedAnalyses::none());
          LocalChange = Changed = true;
          break;
        }
      }
    }
    // As in loop-simplify: mid-run invalidation + final-round refetch
    // leave valid cached analyses behind.
    PassResult R = PassResult::make(Changed, PreservedAnalyses::none());
    R.InvalidationApplied = true;
    return R;
  }

private:
  static bool tryDelete(Function &F, const NaturalLoop &Loop) {
    BasicBlock *PH = findPreheader(Loop);
    if (!PH)
      return false;
    // No side effects inside.
    for (BasicBlock *BB : Loop.Blocks)
      for (const auto &I : BB->instructions())
        if (I->opcode() == Opcode::Store || I->opcode() == Opcode::Call)
          return false;
    // Exactly one exit target, outside the loop, with no phis.
    std::unordered_set<BasicBlock *> Exits;
    for (BasicBlock *BB : Loop.Blocks)
      for (BasicBlock *Succ : BB->successors())
        if (!Loop.contains(Succ))
          Exits.insert(Succ);
    if (Exits.size() != 1)
      return false;
    BasicBlock *Exit = *Exits.begin();
    if (Exit->firstNonPhi() > 0)
      return false;
    // Nothing defined inside may be used outside.
    std::unordered_set<const Value *> InLoop;
    for (BasicBlock *BB : Loop.Blocks)
      for (const auto &I : BB->instructions())
        InLoop.insert(I.get());
    bool UsedOutside = false;
    F.forEachInstruction([&](BasicBlock &BB, Instruction &I) {
      if (Loop.contains(&BB))
        return;
      for (const Value *Op : I.operands())
        if (InLoop.count(Op))
          UsedOutside = true;
    });
    if (UsedOutside)
      return false;

    // Redirect the preheader straight to the exit and drop the loop.
    PH->terminator()->replaceSuccessor(Loop.Header, Exit);
    removeUnreachableBlocks(F);
    return true;
  }
};

} // namespace

std::unique_ptr<Pass> passes::createLoopSimplifyPass() {
  return std::make_unique<LoopSimplifyPass>();
}
std::unique_ptr<Pass> passes::createLicmPass(bool HoistLoads) {
  return std::make_unique<LicmPass>(HoistLoads);
}
std::unique_ptr<Pass> passes::createLoopUnrollPass(unsigned MaxTripCount) {
  return std::make_unique<LoopUnrollPass>(MaxTripCount);
}
std::unique_ptr<Pass> passes::createLoopDeletePass() {
  return std::make_unique<LoopDeletePass>();
}
