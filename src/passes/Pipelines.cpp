//===- passes/Pipelines.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Pipelines.h"

#include "passes/PassManager.h"

using namespace compiler_gym;
using namespace compiler_gym::passes;

std::vector<std::string> passes::optimizationLevels() {
  return {"-O0", "-O1", "-O2", "-O3", "-Os", "-Oz"};
}

StatusOr<std::vector<std::string>>
passes::pipelineForLevel(const std::string &Level) {
  if (Level == "-O0")
    return std::vector<std::string>{};
  if (Level == "-O1")
    return std::vector<std::string>{
        "mem2reg",     "instcombine", "simplifycfg",
        "early-cse",   "dce",         "phi-simplify",
    };
  if (Level == "-O2")
    return std::vector<std::string>{
        "mem2reg",       "instcombine", "simplifycfg",  "sccp",
        "inline<100>",   "early-cse",   "gvn",          "loop-simplify",
        "licm",          "reassociate", "instcombine",  "jump-threading",
        "simplifycfg",   "dse-local",   "store-forward", "adce",
        "phi-simplify",
    };
  if (Level == "-O3")
    return std::vector<std::string>{
        "mem2reg",        "instcombine",     "simplifycfg",
        "sccp",           "inline<300>",     "early-cse",
        "gvn",            "loop-simplify",   "licm-promote",
        "loop-unroll<32>", "reassociate",    "instcombine",
        "jump-threading", "simplifycfg",     "dse-local",
        "store-forward",  "redundant-load-elim", "sink",
        "adce",           "phi-simplify",    "global-dce",
    };
  if (Level == "-Os")
    return std::vector<std::string>{
        "mem2reg",      "instcombine", "simplifycfg", "sccp",
        "inline<20>",   "early-cse",   "gvn",         "loop-simplify",
        "licm",         "loop-delete", "dse-local",   "store-forward",
        "adce",         "phi-simplify", "simplifycfg", "global-dce",
    };
  if (Level == "-Oz")
    return std::vector<std::string>{
        "mem2reg",      "instcombine",  "simplifycfg", "sccp",
        "early-cse",    "gvn",          "loop-simplify", "licm",
        "loop-delete",  "dse-local",    "store-forward",
        "redundant-load-elim", "adce",  "phi-simplify", "simplifycfg",
        "global-dce",
    };
  return notFound("unknown optimization level '" + Level + "'");
}

Status passes::runOptimizationLevel(ir::Module &M, const std::string &Level) {
  CG_ASSIGN_OR_RETURN(std::vector<std::string> Pipeline,
                      pipelineForLevel(Level));
  if (Pipeline.empty())
    return Status::ok();
  CG_ASSIGN_OR_RETURN(bool Changed,
                      runPipelineToFixpoint(M, Pipeline, /*MaxRounds=*/3));
  (void)Changed;
  return Status::ok();
}
