//===- passes/Pipelines.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Pipelines.h"

#include "passes/PassManager.h"

#include <map>

using namespace compiler_gym;
using namespace compiler_gym::passes;

std::vector<std::string> passes::optimizationLevels() {
  return {"-O0", "-O1", "-O2", "-O3", "-Os", "-Oz"};
}

namespace {

/// Level -> pass list, constructed once per process (pipelineForLevel used
/// to rebuild these vectors from string literals on every call — and it is
/// called per candidate in the autotuners' inner loops).
const std::map<std::string, std::vector<std::string>> &pipelineTable() {
  static const std::map<std::string, std::vector<std::string>> Table = {
      {"-O0", {}},
      {"-O1",
       {
           "mem2reg",     "instcombine", "simplifycfg",
           "early-cse",   "dce",         "phi-simplify",
       }},
      {"-O2",
       {
           "mem2reg",       "instcombine", "simplifycfg",  "sccp",
           "inline<100>",   "early-cse",   "gvn",          "loop-simplify",
           "licm",          "reassociate", "instcombine",  "jump-threading",
           "simplifycfg",   "dse-local",   "store-forward", "adce",
           "phi-simplify",
       }},
      {"-O3",
       {
           "mem2reg",        "instcombine",     "simplifycfg",
           "sccp",           "inline<300>",     "early-cse",
           "gvn",            "loop-simplify",   "licm-promote",
           "loop-unroll<32>", "reassociate",    "instcombine",
           "jump-threading", "simplifycfg",     "dse-local",
           "store-forward",  "redundant-load-elim", "sink",
           "adce",           "phi-simplify",    "global-dce",
       }},
      {"-Os",
       {
           "mem2reg",      "instcombine", "simplifycfg", "sccp",
           "inline<20>",   "early-cse",   "gvn",         "loop-simplify",
           "licm",         "loop-delete", "dse-local",   "store-forward",
           "adce",         "phi-simplify", "simplifycfg", "global-dce",
       }},
      {"-Oz",
       {
           "mem2reg",      "instcombine",  "simplifycfg", "sccp",
           "early-cse",    "gvn",          "loop-simplify", "licm",
           "loop-delete",  "dse-local",    "store-forward",
           "redundant-load-elim", "adce",  "phi-simplify", "simplifycfg",
           "global-dce",
       }},
  };
  return Table;
}

} // namespace

StatusOr<std::vector<std::string>>
passes::pipelineForLevel(const std::string &Level) {
  const auto &Table = pipelineTable();
  auto It = Table.find(Level);
  if (It == Table.end())
    return notFound("unknown optimization level '" + Level + "'");
  return It->second;
}

Status passes::runOptimizationLevel(ir::Module &M, const std::string &Level) {
  CG_ASSIGN_OR_RETURN(std::vector<std::string> Pipeline,
                      pipelineForLevel(Level));
  if (Pipeline.empty())
    return Status::ok();
  CG_ASSIGN_OR_RETURN(bool Changed,
                      runPipelineToFixpoint(M, Pipeline, /*MaxRounds=*/3));
  (void)Changed;
  return Status::ok();
}
