//===- passes/PassManager.h - Pipeline execution ----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs sequences of named passes over a module — the unit of work behind
/// both the environment's step() (a single pass) and the preset pipelines
/// (-Oz/-O3 baselines the paper scales rewards against).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_PASSES_PASSMANAGER_H
#define COMPILER_GYM_PASSES_PASSMANAGER_H

#include "passes/PassRegistry.h"
#include "util/Status.h"

#include <string>
#include <vector>

namespace compiler_gym {
namespace passes {

/// Runs a single pass by name. Returns whether the module changed, or
/// NotFound for unknown pass names.
StatusOr<bool> runPass(ir::Module &M, const std::string &Name);

/// Runs \p Names in order; returns true if any pass changed the module.
StatusOr<bool> runPipeline(ir::Module &M,
                           const std::vector<std::string> &Names);

/// Runs \p Names repeatedly (at most \p MaxRounds rounds) until a fixpoint.
StatusOr<bool> runPipelineToFixpoint(ir::Module &M,
                                     const std::vector<std::string> &Names,
                                     int MaxRounds = 4);

} // namespace passes
} // namespace compiler_gym

#endif // COMPILER_GYM_PASSES_PASSMANAGER_H
