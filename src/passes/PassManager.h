//===- passes/PassManager.h - Stateful pipeline execution -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stateful pass manager bound to one module: it owns constructed pass
/// instances (one per name, reused across step() calls instead of hitting
/// the registry factory every time) and an AnalysisManager that carries
/// dominator trees, loop info and observation feature vectors across pass
/// executions — the unit of work behind both the environment's step() (a
/// single pass) and the preset pipelines (-Oz/-O3 baselines the paper
/// scales rewards against).
///
/// The free runPass/runPipeline/runPipelineToFixpoint functions remain as
/// thin wrappers over a transient PassManager for one-shot callers
/// (autotuners, validation, tests).
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_PASSES_PASSMANAGER_H
#define COMPILER_GYM_PASSES_PASSMANAGER_H

#include "passes/PassRegistry.h"
#include "util/Status.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace compiler_gym {
namespace passes {

/// Executes passes over one module with cached analyses and cached pass
/// instances. Not thread-safe; sessions own one each.
class PassManager {
public:
  explicit PassManager(ir::Module &M);

  /// Runs the registered pass \p Name. Returns whether the module changed,
  /// or NotFound for unknown names. When preservation verification is on,
  /// a pass whose PreservedAnalyses claim is wrong yields Internal.
  StatusOr<bool> run(const std::string &Name);

  /// Runs an externally-owned pass instance (test hook for unregistered
  /// passes).
  StatusOr<bool> run(Pass &P);

  /// Runs \p Names in order; true if any pass changed the module.
  StatusOr<bool> runPipeline(const std::vector<std::string> &Names);

  /// Runs \p Names repeatedly (at most \p MaxRounds rounds) until a
  /// fixpoint. Pass instances are constructed once and reused across
  /// rounds.
  StatusOr<bool> runToFixpoint(const std::vector<std::string> &Names,
                               int MaxRounds = 4);

  /// The shared analysis state (also carries the feature cache the LLVM
  /// session serves InstCount/Autophase observations from).
  AnalysisManager &analysisManager() { return AM; }

  /// Installs (or clears, with null) the in-flight request's cancel token.
  /// run()/runPipeline*() poll it before every pass and FunctionPass::run
  /// polls it between functions; a fired token surfaces as a
  /// DeadlineExceeded status with all completed work correctly committed,
  /// letting the session roll back to its last committed state.
  void setCancelToken(const util::CancelToken *Tok) {
    Cancel = Tok;
    AM.setCancelToken(Tok);
  }

  /// After every pass run, recompute each analysis the pass claimed to
  /// preserve and fail the run on mismatch. Defaults to on in debug
  /// (!NDEBUG) builds; expensive, so Release builds leave it off.
  void setVerifyPreservation(bool Enabled) { VerifyPreservation = Enabled; }
  bool verifyPreservation() const { return VerifyPreservation; }

  // -- Telemetry -----------------------------------------------------------
  struct Stats {
    uint64_t PassesRun = 0;
    uint64_t PassInstancesCreated = 0; ///< Registry factory invocations.
  };
  const Stats &stats() const { return St; }

private:
  /// The cached instance for \p Name, constructing it on first use.
  Pass *getPass(const std::string &Name);

  ir::Module &M;
  AnalysisManager AM;
  std::unordered_map<std::string, std::unique_ptr<Pass>> Instances;
  const util::CancelToken *Cancel = nullptr;
  bool VerifyPreservation;
  Stats St;
};

/// Runs a single pass by name. Returns whether the module changed, or
/// NotFound for unknown pass names.
StatusOr<bool> runPass(ir::Module &M, const std::string &Name);

/// Runs \p Names in order; returns true if any pass changed the module.
StatusOr<bool> runPipeline(ir::Module &M,
                           const std::vector<std::string> &Names);

/// Runs \p Names repeatedly (at most \p MaxRounds rounds) until a fixpoint.
StatusOr<bool> runPipelineToFixpoint(ir::Module &M,
                                     const std::vector<std::string> &Names,
                                     int MaxRounds = 4);

} // namespace passes
} // namespace compiler_gym

#endif // COMPILER_GYM_PASSES_PASSMANAGER_H
