//===- passes/Transforms.h - Factory functions for all passes ---*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factory functions for every built-in transform. Implementations live in
/// Cleanup.cpp / Scalar.cpp / SimplifyCFG.cpp / GVN.cpp / Loops.cpp /
/// Inliner.cpp / Mem2Reg.cpp. The PassRegistry instantiates the action
/// space from these factories.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_PASSES_TRANSFORMS_H
#define COMPILER_GYM_PASSES_TRANSFORMS_H

#include "passes/Pass.h"

#include <memory>

namespace compiler_gym {
namespace passes {

// Cleanup.cpp ---------------------------------------------------------------
std::unique_ptr<Pass> createDcePass();          ///< Trivial dead code elim.
std::unique_ptr<Pass> createAdcePass();         ///< Aggressive (mark/sweep).
std::unique_ptr<Pass> createGlobalDcePass();    ///< Unused funcs/globals.
std::unique_ptr<Pass> createStripNamesPass();   ///< Drop local value names.
std::unique_ptr<Pass> createMergeReturnPass();  ///< Unify exit nodes.
std::unique_ptr<Pass> createUnreachableBlockElimPass();
std::unique_ptr<Pass> createReg2MemPass();      ///< Demote phis to stack.

// Scalar.cpp -----------------------------------------------------------------
std::unique_ptr<Pass> createConstFoldPass();
std::unique_ptr<Pass> createInstSimplifyPass();
std::unique_ptr<Pass> createInstCombinePass();
std::unique_ptr<Pass> createReassociatePass();
std::unique_ptr<Pass> createCmpCanonicalizePass();
std::unique_ptr<Pass> createShiftCombinePass();
std::unique_ptr<Pass> createStrengthReducePass();
std::unique_ptr<Pass> createSccpPass();
std::unique_ptr<Pass> createSinkPass();
std::unique_ptr<Pass> createLocalCsePass();
std::unique_ptr<Pass> createLocalDsePass();
std::unique_ptr<Pass> createStoreForwardPass();
std::unique_ptr<Pass> createRedundantLoadElimPass();
std::unique_ptr<Pass> createLowerSelectPass();  ///< select -> CFG diamond.
std::unique_ptr<Pass> createPhiSimplifyPass();

// SimplifyCFG.cpp ------------------------------------------------------------
std::unique_ptr<Pass> createSimplifyCfgPass();
std::unique_ptr<Pass> createBlockMergePass();
std::unique_ptr<Pass> createJumpThreadingPass();
std::unique_ptr<Pass> createCanonicalizeBlockOrderPass(); ///< RPO layout.

// GVN.cpp ---------------------------------------------------------------------
std::unique_ptr<Pass> createGvnPass();
std::unique_ptr<Pass> createEarlyCsePass();
/// Deliberately nondeterministic (sorts blocks by pointer address),
/// reproducing the LLVM -gvn-sink reproducibility bug from the paper.
/// Quarantined out of the default action space.
std::unique_ptr<Pass> createGvnSinkPass();

// Mem2Reg.cpp -----------------------------------------------------------------
std::unique_ptr<Pass> createMem2RegPass();

// Loops.cpp --------------------------------------------------------------------
std::unique_ptr<Pass> createLoopSimplifyPass(); ///< Insert preheaders.
std::unique_ptr<Pass> createLicmPass(bool HoistLoads);
std::unique_ptr<Pass> createLoopUnrollPass(unsigned MaxTripCount);
std::unique_ptr<Pass> createLoopDeletePass();

// Inliner.cpp -------------------------------------------------------------------
std::unique_ptr<Pass> createInlinerPass(unsigned SizeThreshold);

} // namespace passes
} // namespace compiler_gym

#endif // COMPILER_GYM_PASSES_TRANSFORMS_H
